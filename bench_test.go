// Benchmarks regenerating each table and figure of the paper's
// evaluation (one benchmark per artefact, short horizons so `go test
// -bench` stays tractable; use cmd/probebench for paper-scale runs).
// Custom metrics attach the reproduced quantities to the benchmark
// output, e.g. fig5's load_mean ≈ 9.7 probes/s.
package presence_test

import (
	"math"
	"testing"

	"presence"
)

// runExperimentBench runs one experiment per iteration and reports the
// selected metrics through the benchmark framework.
func runExperimentBench(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last *presence.ExperimentReport
	for i := 0; i < b.N; i++ {
		rep, err := presence.RunExperiment(id, presence.ExperimentOptions{
			Seed:  2005 + uint64(i),
			Scale: presence.ScaleShort,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	for _, name := range metrics {
		if m, ok := last.Metric(name); ok && !math.IsNaN(m.Got) {
			b.ReportMetric(m.Got, name)
		}
	}
}

// BenchmarkTabSAPPSteadyState reproduces the Section 3 steady-state
// numbers: device load ≈ L_nom, tiny buffer occupancy, bimodal per-CP
// delays.
func BenchmarkTabSAPPSteadyState(b *testing.B) {
	runExperimentBench(b, "tab-sapp-steady",
		"device_load_mean", "buffer_mean_occupancy", "cp_delay_p10", "cp_delay_p90")
}

// BenchmarkFig2SAPP3CPs reproduces Figure 2: three SAPP CPs, one
// starving.
func BenchmarkFig2SAPP3CPs(b *testing.B) {
	runExperimentBench(b, "fig2-sapp-3cps", "tail_freq_min", "tail_freq_max", "fairness_jain")
}

// BenchmarkFig3SAPPZoom reproduces Figure 3: the one-minute zoom showing
// oscillating probe frequencies.
func BenchmarkFig3SAPPZoom(b *testing.B) {
	runExperimentBench(b, "fig3-sapp-zoom", "window_cps_active", "max_freq_amplitude")
}

// BenchmarkFig4SAPPMassLeave reproduces Figure 4: 18 of 20 CPs leave;
// the survivors stay unbalanced.
func BenchmarkFig4SAPPMassLeave(b *testing.B) {
	runExperimentBench(b, "fig4-sapp-leave", "survivor_freq_ratio", "post_leave_load")
}

// BenchmarkFig5DCPPChurn reproduces Figure 5: device load under
// worst-case churn (paper: mean 9.7, variance 20.0).
func BenchmarkFig5DCPPChurn(b *testing.B) {
	runExperimentBench(b, "fig5-dcpp-churn", "load_mean", "load_var", "load_peak")
}

// BenchmarkTabDCPPSteadyState reproduces the Section 5 batch-means
// steady-state estimate.
func BenchmarkTabDCPPSteadyState(b *testing.B) {
	runExperimentBench(b, "tab-dcpp-steady", "load_mean", "load_var", "ci_halfwidth")
}

// BenchmarkTabDCPPStatic reproduces the Section 5 static-population
// claim: load = min(k·f_max, L_nom).
func BenchmarkTabDCPPStatic(b *testing.B) {
	runExperimentBench(b, "tab-dcpp-static", "load_k1", "load_k5", "load_k20", "load_k60")
}

// BenchmarkExtFairness quantifies the SAPP-vs-DCPP fairness gap with
// Jain's index.
func BenchmarkExtFairness(b *testing.B) {
	runExperimentBench(b, "ext-fairness", "jain_sapp", "jain_dcpp", "jain_naive")
}

// BenchmarkExtDetection measures silent-crash detection latency vs
// population size.
func BenchmarkExtDetection(b *testing.B) {
	runExperimentBench(b, "ext-detect", "dcpp_k1_mean", "dcpp_k20_mean", "dcpp_k40_max")
}

// BenchmarkExtDCPPLoss exercises the Section 5 packet-loss prediction.
func BenchmarkExtDCPPLoss(b *testing.B) {
	runExperimentBench(b, "ext-dcpp-loss",
		"load_mean_no_loss", "load_mean_bernoulli_5pct", "load_p99_no_loss", "load_p99_bernoulli_5pct")
}

// BenchmarkExtOverlay measures leave-notice dissemination over the
// last-two-probers overlay.
func BenchmarkExtOverlay(b *testing.B) {
	runExperimentBench(b, "ext-overlay", "coverage", "informed_max", "own_detection_max")
}

// BenchmarkExtSAPPAdaptiveDelta exercises the device-side Δ-doubling
// throttle.
func BenchmarkExtSAPPAdaptiveDelta(b *testing.B) {
	runExperimentBench(b, "ext-sapp-adelta", "load_fixed_delta", "load_adaptive_delta")
}

// BenchmarkExtNaiveLoad shows the baseline's linear overload in k.
func BenchmarkExtNaiveLoad(b *testing.B) {
	runExperimentBench(b, "ext-naive-load", "load_k1", "load_k10", "load_k80")
}

// BenchmarkSimulationThroughput measures raw simulator speed: simulated
// seconds per wall second for the Fig. 5 scenario.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := presence.NewSimulation(presence.SimConfig{
			Protocol: presence.ProtocolDCPP,
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.StartChurn(presence.DefaultUniformChurn()); err != nil {
			b.Fatal(err)
		}
		w.Run(60 * 1e9) // 60 simulated seconds
		b.ReportMetric(float64(w.Sim().Executed()), "events/op")
	}
}

// BenchmarkExtDiscovery measures announcement-expiry vs probe-based
// detection of a silent crash.
func BenchmarkExtDiscovery(b *testing.B) {
	runExperimentBench(b, "ext-discovery", "expiry_detect_mean", "probe_detect_mean", "speedup")
}

// BenchmarkExtSeeds runs the independent-replications estimate of the
// Fig. 5 headline numbers.
func BenchmarkExtSeeds(b *testing.B) {
	runExperimentBench(b, "ext-seeds", "replication_mean_of_means", "replication_mean_of_vars")
}
