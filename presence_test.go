package presence_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"presence"
	"presence/internal/ident"
)

func TestSimulationFacade(t *testing.T) {
	w, err := presence.NewSimulation(presence.SimConfig{
		Protocol: presence.ProtocolDCPP,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddCPs(10); err != nil {
		t.Fatal(err)
	}
	w.Run(2 * time.Minute)
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load <= 0 || load > 10.5 {
		t.Fatalf("facade DCPP load = %g", load)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	r := presence.DefaultRetransmit()
	if r.FirstTimeout != 22*time.Millisecond || r.RetryTimeout != 21*time.Millisecond || r.MaxRetransmits != 3 {
		t.Fatalf("retransmit defaults = %+v", r)
	}
	d := presence.DefaultDCPPDeviceConfig()
	if d.MinGap != 100*time.Millisecond || d.MinCPDelay != 500*time.Millisecond {
		t.Fatalf("DCPP defaults = %+v", d)
	}
	s := presence.DefaultSAPPDeviceConfig()
	if s.IdealLoad != 1e6 || s.NominalLoad != 10 {
		t.Fatalf("SAPP device defaults = %+v", s)
	}
	cp := presence.DefaultSAPPCPConfig()
	if cp.AlphaInc != 2 || cp.AlphaDec != 1.5 || cp.Beta != 1.5 {
		t.Fatalf("SAPP CP defaults = %+v", cp)
	}
	churn := presence.DefaultUniformChurn()
	if churn.Min != 1 || churn.Max != 60 || churn.Rate != 0.05 {
		t.Fatalf("churn defaults = %+v", churn)
	}
}

func TestExperimentFacade(t *testing.T) {
	all := presence.Experiments()
	if len(all) < 13 {
		t.Fatalf("only %d experiments exposed", len(all))
	}
	rep, err := presence.RunExperiment("tab-dcpp-static", presence.ExperimentOptions{
		Seed: 1, Scale: presence.ScaleShort,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("experiment produced no metrics")
	}
	_, err = presence.RunExperiment("no-such-experiment", presence.ExperimentOptions{})
	var unknown *presence.UnknownExperimentError
	if !errors.As(err, &unknown) || unknown.ID != "no-such-experiment" {
		t.Fatalf("err = %v, want UnknownExperimentError", err)
	}
}

func TestUDPFacadeEndToEnd(t *testing.T) {
	devCfg := presence.DefaultDCPPDeviceConfig()
	devCfg.MinGap = 20 * time.Millisecond
	devCfg.MinCPDelay = 50 * time.Millisecond
	dev, err := presence.NewUDPDCPPDevice(presence.UDPDeviceConfig{
		ID: 1, ListenAddr: "127.0.0.1:0",
	}, devCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Start(); err != nil {
		t.Fatal(err)
	}
	cp, err := presence.NewUDPDCPPControlPoint(presence.UDPControlPointConfig{
		ID: 2, Device: 1, DeviceAddr: dev.Addr().String(),
		Retransmit: presence.RetransmitConfig{
			FirstTimeout: 60 * time.Millisecond, RetryTimeout: 40 * time.Millisecond, MaxRetransmits: 3,
		},
	}, presence.DCPPPolicyConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cp.Stats().CyclesOK >= 3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("only %d cycles completed over loopback", cp.Stats().CyclesOK)
}

func TestUDPSAPPAndNaiveDeviceConstructors(t *testing.T) {
	sappDev, err := presence.NewUDPSAPPDevice(presence.UDPDeviceConfig{
		ID: 1, ListenAddr: "127.0.0.1:0",
	}, presence.DefaultSAPPDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sappDev.Close()
	naiveDev, err := presence.NewUDPNaiveDevice(presence.UDPDeviceConfig{
		ID: 2, ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer naiveDev.Close()
	cpCfg := presence.DefaultSAPPCPConfig()
	cp, err := presence.NewUDPSAPPControlPoint(presence.UDPControlPointConfig{
		ID: 3, Device: 1, DeviceAddr: sappDev.Addr().String(),
	}, cpCfg, presence.NopListener{})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
}

func TestFleetFacade(t *testing.T) {
	f, err := presence.NewFleet(presence.FleetConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	devCfg := presence.DefaultDCPPDeviceConfig()
	devCfg.MinGap = 20 * time.Millisecond
	devCfg.MinCPDelay = 50 * time.Millisecond
	dev, err := f.AddDevice(1, presence.NewDCPPDeviceBuilder(1, devCfg))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := presence.NewFleetDCPPControlPoint(f, presence.FleetCPConfig{
		ID: 2, Device: 1, DeviceAddr: dev.Addr().String(),
		Retransmit: presence.RetransmitConfig{
			FirstTimeout: 60 * time.Millisecond, RetryTimeout: 40 * time.Millisecond, MaxRetransmits: 3,
		},
	}, presence.DCPPPolicyConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cp.Stats().CyclesOK >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if cp.Stats().CyclesOK < 3 {
		t.Fatalf("only %d cycles completed through the fleet facade", cp.Stats().CyclesOK)
	}
	snap := f.Snapshot()
	if snap.Total.ControlPoints != 1 || snap.Total.Devices != 1 {
		t.Fatalf("fleet snapshot = %+v", snap.Total)
	}
	if snap.Total.SyscallsIn == 0 || snap.Total.SyscallsOut == 0 {
		t.Fatalf("fleet snapshot carries no transport-call accounting: %+v", snap.Total)
	}
}

// TestFleetFacadeSingleDatagram pins the facade's knob for the
// portable one-datagram-per-call path: traffic flows and every packet
// costs exactly one transport call.
func TestFleetFacadeSingleDatagram(t *testing.T) {
	f, err := presence.NewFleet(presence.FleetConfig{Shards: 1, ForceSingleDatagram: true, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := f.AddDevice(1, presence.NewDCPPDeviceBuilder(1, presence.DefaultDCPPDeviceConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := presence.NewFleetDCPPControlPoint(f, presence.FleetCPConfig{
		ID: 2, Device: 1, DeviceAddr: dev.Addr().String(),
	}, presence.DCPPPolicyConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && cp.Stats().CyclesOK < 1 {
		time.Sleep(10 * time.Millisecond)
	}
	if cp.Stats().CyclesOK < 1 {
		t.Fatal("no cycle completed on the single-datagram path")
	}
	snap := f.Snapshot()
	if snap.Total.SyscallsOut != snap.Total.PacketsOut {
		t.Fatalf("single-datagram path: %d packets out over %d calls, want 1:1",
			snap.Total.PacketsOut, snap.Total.SyscallsOut)
	}
}

// TestFacadeConstructorErrorPaths: every facade constructor must turn
// an invalid configuration into an error — never a panic, never a
// half-built node. Table-driven over the fleet, UDP and scenario entry
// points.
func TestFacadeConstructorErrorPaths(t *testing.T) {
	// A started fleet for the NewFleet*ControlPoint rows.
	f, err := presence.NewFleet(presence.FleetConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// A stopped (never started) fleet.
	idle, err := presence.NewFleet(presence.FleetConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	validCP := presence.FleetCPConfig{ID: 2, Device: 1, DeviceAddr: "127.0.0.1:9"}

	cases := []struct {
		name string
		call func() error
	}{
		{"fleet-dcpp-cp/negative-max-wait", func() error {
			_, err := presence.NewFleetDCPPControlPoint(f, validCP,
				presence.DCPPPolicyConfig{MaxWait: -time.Second}, nil)
			return err
		}},
		{"fleet-dcpp-cp/zero-id", func() error {
			_, err := presence.NewFleetDCPPControlPoint(f, presence.FleetCPConfig{
				Device: 1, DeviceAddr: "127.0.0.1:9",
			}, presence.DCPPPolicyConfig{}, nil)
			return err
		}},
		{"fleet-dcpp-cp/bad-device-addr", func() error {
			_, err := presence.NewFleetDCPPControlPoint(f, presence.FleetCPConfig{
				ID: 2, Device: 1, DeviceAddr: "not-an-address:xx",
			}, presence.DCPPPolicyConfig{}, nil)
			return err
		}},
		{"fleet-dcpp-cp/not-started", func() error {
			_, err := presence.NewFleetDCPPControlPoint(idle, validCP, presence.DCPPPolicyConfig{}, nil)
			return err
		}},
		{"fleet-sapp-cp/negative-min-delay", func() error {
			cfg := presence.DefaultSAPPCPConfig()
			cfg.MinDelay = -time.Second
			_, err := presence.NewFleetSAPPControlPoint(f, validCP, cfg, nil)
			return err
		}},
		{"fleet-sapp-cp/inverted-delay-bounds", func() error {
			cfg := presence.DefaultSAPPCPConfig()
			cfg.MinDelay, cfg.MaxDelay = time.Second, time.Millisecond
			_, err := presence.NewFleetSAPPControlPoint(f, validCP, cfg, nil)
			return err
		}},
		{"fleet/negative-shards", func() error {
			_, err := presence.NewFleet(presence.FleetConfig{Shards: -3})
			return err
		}},
		{"udp-dcpp-device/bad-listen-addr", func() error {
			_, err := presence.NewUDPDCPPDevice(presence.UDPDeviceConfig{
				ID: 1, ListenAddr: "no-such-host-xyz:badport",
			}, presence.DefaultDCPPDeviceConfig())
			return err
		}},
		{"udp-dcpp-device/negative-min-gap", func() error {
			_, err := presence.NewUDPDCPPDevice(presence.UDPDeviceConfig{
				ID: 1, ListenAddr: "127.0.0.1:0",
			}, presence.DCPPDeviceConfig{MinGap: -time.Second, MinCPDelay: time.Second})
			return err
		}},
		{"udp-sapp-device/zero-nominal-load", func() error {
			cfg := presence.DefaultSAPPDeviceConfig()
			cfg.NominalLoad = -1
			_, err := presence.NewUDPSAPPDevice(presence.UDPDeviceConfig{
				ID: 1, ListenAddr: "127.0.0.1:0",
			}, cfg)
			return err
		}},
		{"udp-naive-device/zero-id", func() error {
			_, err := presence.NewUDPNaiveDevice(presence.UDPDeviceConfig{ListenAddr: "127.0.0.1:0"})
			return err
		}},
		{"udp-dcpp-cp/bad-device-addr", func() error {
			_, err := presence.NewUDPDCPPControlPoint(presence.UDPControlPointConfig{
				ID: 2, Device: 1, DeviceAddr: "not-an-address:xx",
			}, presence.DCPPPolicyConfig{}, nil)
			return err
		}},
		{"udp-sapp-cp/negative-max-wait-analogue", func() error {
			cfg := presence.DefaultSAPPCPConfig()
			cfg.Beta = 0
			_, err := presence.NewUDPSAPPControlPoint(presence.UDPControlPointConfig{
				ID: 2, Device: 1, DeviceAddr: "127.0.0.1:9",
			}, cfg, nil)
			return err
		}},
		{"resolve-scenario/unknown", func() error {
			_, err := presence.ResolveScenario("no-such-scenario-or-file")
			return err
		}},
		{"decode-scenario/garbage", func() error {
			_, err := presence.DecodeScenario([]byte(`{"protocol":"swim"}`))
			return err
		}},
		{"simulation/bad-protocol", func() error {
			_, err := presence.NewSimulation(presence.SimConfig{Protocol: "swim"})
			return err
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("constructor panicked: %v", r)
				}
			}()
			if err := tc.call(); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}

func TestNodeIDAlias(t *testing.T) {
	var id presence.NodeID = 7
	if id != ident.NodeID(7) {
		t.Fatal("NodeID alias broken")
	}
	if presence.Version == "" {
		t.Fatal("version empty")
	}
}

func TestDiscoveryFacade(t *testing.T) {
	w, err := presence.NewSimulation(presence.SimConfig{
		Protocol: presence.ProtocolDCPP,
		Seed:     3,
		Devices:  2,
		Discovery: presence.DiscoveryConfig{
			Enabled:          true,
			Announce:         presence.AnnouncerConfig{MaxAge: 30 * time.Second, Period: 10 * time.Second},
			ProbeOnDiscovery: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(time.Minute)
	for _, d := range w.Devices() {
		if _, ok := h.DiscoveredDevice(d.ID); !ok {
			t.Fatalf("device %v not discovered through the facade", d.ID)
		}
	}
	if len(w.Devices()) != 2 {
		t.Fatalf("Devices() = %d", len(w.Devices()))
	}
}

func TestRenderPlotFacade(t *testing.T) {
	w, err := presence.NewSimulation(presence.SimConfig{Protocol: presence.ProtocolDCPP, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddCP(); err != nil {
		t.Fatal(err)
	}
	w.Run(30 * time.Second)
	out := presence.RenderPlot([]*presence.TimeSeries{w.DeviceLoad().Series()},
		presence.PlotOptions{Title: "load", Width: 40, Height: 8})
	if !strings.Contains(out, "load") || !strings.Contains(out, "+") {
		t.Fatalf("plot output unexpected:\n%s", out)
	}
}
