package presence

import (
	"presence/internal/asciiplot"
	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/discovery"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/experiments"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/metrics"
	"presence/internal/obs"
	"presence/internal/rtnet"
	"presence/internal/scenario"
	"presence/internal/simrun"
	"presence/internal/stats"
)

// Version of the library.
const Version = "1.0.0"

// NodeID identifies a node (device or control point).
type NodeID = ident.NodeID

// Protocol selects SAPP, DCPP or the naive baseline.
type Protocol = simrun.Protocol

// The available protocols.
const (
	ProtocolSAPP  = simrun.ProtocolSAPP
	ProtocolDCPP  = simrun.ProtocolDCPP
	ProtocolNaive = simrun.ProtocolNaive
)

// Simulation API (see internal/simrun for details).
type (
	// SimConfig assembles a simulated world.
	SimConfig = simrun.Config
	// World is a deterministic simulated deployment.
	World = simrun.World
	// CPHost is one simulated control point with its measurements.
	CPHost = simrun.CPHost
	// DeviceHost is the simulated device.
	DeviceHost = simrun.DeviceHost
	// ProcessingConfig models device computation time.
	ProcessingConfig = simrun.ProcessingConfig
	// DiscoveryConfig enables the UPnP-style announcement layer.
	DiscoveryConfig = simrun.DiscoveryConfig
	// AnnouncerConfig parameterises device announcements (max-age,
	// period).
	AnnouncerConfig = discovery.AnnouncerConfig
)

// Population models (see internal/simrun): install one with
// World.StartPopulation before Run.
type (
	// PopulationModel drives CP membership over simulated time.
	PopulationModel = simrun.PopulationModel
	// StaticPopulation joins a fixed set of CPs staggered over a spread.
	StaticPopulation = simrun.StaticPopulation
	// MassLeavePopulation is the paper's Fig. 4 dynamic.
	MassLeavePopulation = simrun.MassLeavePopulation
	// UniformChurn is the paper's Fig. 5 churn scenario.
	UniformChurn = simrun.UniformChurn
	// FlashCrowd models correlated join/leave bursts.
	FlashCrowd = simrun.FlashCrowd
	// MarkovSessions models per-CP exponential on/off sessions.
	MarkovSessions = simrun.MarkovSessions
	// HeavyTailLifetimes models Poisson arrivals with Pareto or
	// lognormal session lengths.
	HeavyTailLifetimes = simrun.HeavyTailLifetimes
	// DiurnalArrivals models sinusoid-modulated Poisson arrivals.
	DiurnalArrivals = simrun.DiurnalArrivals
)

// NewSimulation builds a simulated world: one device (of the configured
// protocol), no control points yet.
func NewSimulation(cfg SimConfig) (*World, error) {
	return simrun.NewWorld(cfg)
}

// DefaultUniformChurn returns the paper's churn parameters
// (population U{1..60}, redrawn at rate 0.05/s).
func DefaultUniformChurn() UniformChurn { return simrun.DefaultUniformChurn() }

// Scenario engine (see internal/scenario): declarative specs that
// compile into simulated worlds and round-trip through JSON.
type (
	// Scenario is a declarative scenario spec.
	Scenario = scenario.Spec
)

// Scenarios returns every registered scenario (deep copies).
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioByName returns a deep copy of a registered scenario.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.ByName(name) }

// LoadScenario reads and validates a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// DecodeScenario parses and validates scenario JSON.
func DecodeScenario(b []byte) (*Scenario, error) { return scenario.Decode(b) }

// ResolveScenario returns the scenario for a registered name or a JSON
// file path.
func ResolveScenario(nameOrPath string) (*Scenario, error) { return scenario.Resolve(nameOrPath) }

// Protocol configuration (paper defaults via the Default* functions).
type (
	// RetransmitConfig is the probe cycle of Fig. 1 (TOF, TOS, 3
	// retransmissions).
	RetransmitConfig = core.RetransmitConfig
	// SAPPDeviceConfig parameterises a SAPP device (L_ideal, L_nom, Δ).
	SAPPDeviceConfig = sapp.DeviceConfig
	// SAPPCPConfig parameterises SAPP's adaptation rule (1).
	SAPPCPConfig = sapp.CPConfig
	// DCPPDeviceConfig parameterises a DCPP device (δ_min, d_min).
	DCPPDeviceConfig = dcpp.DeviceConfig
	// DCPPPolicyConfig parameterises the DCPP control point.
	DCPPPolicyConfig = dcpp.PolicyConfig
)

// DefaultRetransmit returns the paper's probe-cycle parameters.
func DefaultRetransmit() RetransmitConfig { return core.DefaultRetransmit() }

// DefaultSAPPDeviceConfig returns the paper's SAPP device parameters.
func DefaultSAPPDeviceConfig() SAPPDeviceConfig { return sapp.DefaultDeviceConfig() }

// DefaultSAPPCPConfig returns the paper's SAPP CP parameters.
func DefaultSAPPCPConfig() SAPPCPConfig { return sapp.DefaultCPConfig() }

// DefaultDCPPDeviceConfig returns the paper's DCPP parameters.
func DefaultDCPPDeviceConfig() DCPPDeviceConfig { return dcpp.DefaultDeviceConfig() }

// Presence events.
type (
	// Listener observes presence events (alive, lost, bye).
	Listener = core.Listener
	// CycleResult describes a successful probe cycle.
	CycleResult = core.CycleResult
	// NopListener ignores all events.
	NopListener = core.NopListener
)

// Experiment suite (the paper's tables and figures).
type (
	// Experiment is a registered reproduction unit.
	Experiment = experiments.Experiment
	// ExperimentOptions parameterise a run (seed, scale, output dir).
	ExperimentOptions = experiments.Options
	// ExperimentReport is an experiment's outcome.
	ExperimentReport = experiments.Report
)

// Experiment scales.
const (
	ScaleShort = experiments.ScaleShort
	ScalePaper = experiments.ScalePaper
)

// Experiments returns every registered experiment in presentation
// order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment runs one experiment by id (e.g. "fig5-dcpp-churn").
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return e.Run(opts)
}

// UnknownExperimentError reports a RunExperiment id that is not
// registered.
type UnknownExperimentError struct {
	ID string
}

func (e *UnknownExperimentError) Error() string {
	return "presence: unknown experiment " + e.ID
}

// Measurement and presentation helpers.
type (
	// TimeSeries records (time, value) samples (per-CP frequency
	// traces, device-load bins).
	TimeSeries = stats.TimeSeries
	// SummaryStats is an online mean/variance accumulator.
	SummaryStats = stats.Welford
	// PlotOptions configure RenderPlot.
	PlotOptions = asciiplot.Options
)

// JainIndex returns Jain's fairness index of the given allocations
// (1 = perfectly fair).
func JainIndex(xs []float64) float64 { return stats.JainIndex(xs) }

// RenderPlot draws time series as an ASCII scatter plot for terminal
// output.
func RenderPlot(series []*TimeSeries, opts PlotOptions) string {
	return asciiplot.Render(series, opts)
}

// UDP runtime (see internal/rtnet for details).
type (
	// UDPDeviceConfig configures a UDP device server.
	UDPDeviceConfig = rtnet.DeviceServerConfig
	// UDPDevice hosts a device engine on a UDP socket.
	UDPDevice = rtnet.DeviceServer
	// UDPControlPointConfig configures a UDP control point.
	UDPControlPointConfig = rtnet.ControlPointConfig
	// UDPControlPoint monitors one device over UDP.
	UDPControlPoint = rtnet.ControlPoint
)

// NewUDPDCPPDevice runs a DCPP device on a UDP socket.
func NewUDPDCPPDevice(cfg UDPDeviceConfig, dev DCPPDeviceConfig) (*UDPDevice, error) {
	return rtnet.NewDeviceServer(cfg, func(env core.Env) (core.Device, error) {
		return dcpp.NewDevice(cfg.ID, env, dev)
	})
}

// NewUDPSAPPDevice runs a SAPP device on a UDP socket.
func NewUDPSAPPDevice(cfg UDPDeviceConfig, dev SAPPDeviceConfig) (*UDPDevice, error) {
	return rtnet.NewDeviceServer(cfg, func(env core.Env) (core.Device, error) {
		return sapp.NewDevice(cfg.ID, env, dev)
	})
}

// NewUDPNaiveDevice runs the naive baseline device on a UDP socket.
func NewUDPNaiveDevice(cfg UDPDeviceConfig) (*UDPDevice, error) {
	return rtnet.NewDeviceServer(cfg, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(cfg.ID, env)
	})
}

// Fleet runtime (see internal/fleet): a sharded shared-socket presence
// server hosting hundreds of thousands of control points per process —
// N shards, each one UDP socket, one event-loop goroutine and one
// hierarchical timer wheel; no per-node goroutines or timers. Shard
// I/O is batched and allocation-free: on Linux whole bursts move per
// recvmmsg/sendmmsg syscall, elsewhere (and with
// FleetConfig.ForceSingleDatagram) a portable one-datagram-per-call
// fallback carries the same traffic byte for byte.
type (
	// FleetConfig assembles a Fleet (shards, listen address, timer
	// tick, transport batch).
	FleetConfig = fleet.Config
	// Fleet hosts protocol engines across shards.
	Fleet = fleet.Fleet
	// FleetCPConfig configures a fleet-hosted control point.
	FleetCPConfig = fleet.CPConfig
	// FleetControlPoint is the handle to a fleet-hosted control point.
	FleetControlPoint = fleet.ControlPoint
	// FleetDevice is the handle to a fleet-hosted (loopback) device.
	FleetDevice = fleet.Device
	// FleetCounters tracks one shard's activity.
	FleetCounters = fleet.Counters
	// FleetSnapshot aggregates per-shard counters.
	FleetSnapshot = fleet.Snapshot
	// FleetScaleOptions parameterises the loopback scale harness.
	FleetScaleOptions = fleet.ScaleOptions
	// FleetScaleResult is what the loopback scale harness measured.
	FleetScaleResult = fleet.ScaleResult
	// FleetRuntimeConfig carries every fleet knob changeable while the
	// fleet runs (Fleet.SetConfig / Fleet.ConfigSnapshot): harden
	// toggles, replay/pending windows, per-device probe budgets, the
	// admin-command admission bound and the frame-authentication key
	// (pushing a new AuthKey rotates live, with a dual-key grace).
	FleetRuntimeConfig = fleet.RuntimeConfig
	// FleetVerdictEvent is one terminal presence verdict, delivered to
	// FleetConfig.Verdicts.
	FleetVerdictEvent = fleet.VerdictEvent
	// FleetVerdictKind names a verdict: lost or bye.
	FleetVerdictKind = fleet.VerdictKind
	// FleetTransport opens one packet conn per shard (custom networks).
	FleetTransport = fleet.Transport
	// FleetPacketConn is the single-datagram transport contract.
	FleetPacketConn = fleet.PacketConn
	// FleetAuthConfig enables wire v2 frame authentication: a master
	// key (inline or from a file) every frame is HMAC-tagged under,
	// and optionally Require to refuse unauthenticated v1 frames.
	// Runtime rotation goes through FleetRuntimeConfig.AuthKey.
	FleetAuthConfig = fleet.AuthConfig
	// FleetBatchPacketConn is the batched transport contract: a
	// PacketConn that moves []FleetDatagram per call; the fleet uses it
	// automatically when a transport provides it.
	FleetBatchPacketConn = fleet.BatchPacketConn
	// FleetDatagram is one packet of a batched transport call.
	FleetDatagram = fleet.Datagram
)

// The verdict kinds (FleetVerdictEvent.Kind).
const (
	FleetVerdictLost = fleet.VerdictLost
	FleetVerdictBye  = fleet.VerdictBye
)

// NewFleet builds a sharded presence server. Call Start, then
// AddControlPoint/AddDevice; Close tears it down. A running fleet is
// mutable throughout: AddControlPoint/RemoveControlPoint and
// AddDevice/RemoveDevice churn membership live, DrainShard/Rebalance
// migrate control points between shards without losing pending probe
// cycles, and SetConfig pushes versioned runtime-configuration changes
// — all executed on the owning shard's event loop, leaving the packet
// hot path lock-free and allocation-free.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewDCPPDeviceBuilder returns a builder for a DCPP device engine,
// usable with Fleet.AddDevice (and rtnet.NewDeviceServer).
func NewDCPPDeviceBuilder(id NodeID, dev DCPPDeviceConfig) fleet.DeviceBuilder {
	return func(env core.Env) (core.Device, error) { return dcpp.NewDevice(id, env, dev) }
}

// NewSAPPDeviceBuilder returns a builder for a SAPP device engine.
func NewSAPPDeviceBuilder(id NodeID, dev SAPPDeviceConfig) fleet.DeviceBuilder {
	return func(env core.Env) (core.Device, error) { return sapp.NewDevice(id, env, dev) }
}

// NewFleetDCPPControlPoint hosts a DCPP control point in a started
// fleet. The listener may be nil.
func NewFleetDCPPControlPoint(f *Fleet, cfg FleetCPConfig, policy DCPPPolicyConfig, lst Listener) (*FleetControlPoint, error) {
	p, err := dcpp.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	cfg.Listener = lst
	return f.AddControlPoint(cfg)
}

// NewFleetSAPPControlPoint hosts a SAPP control point in a started
// fleet. The listener may be nil.
func NewFleetSAPPControlPoint(f *Fleet, cfg FleetCPConfig, policy SAPPCPConfig, lst Listener) (*FleetControlPoint, error) {
	p, err := sapp.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	cfg.Listener = lst
	return f.AddControlPoint(cfg)
}

// FleetLoopbackScale runs the loopback scale harness: a fleet of
// control points probing in-process DCPP devices, measured at steady
// state.
func FleetLoopbackScale(opts FleetScaleOptions) (FleetScaleResult, error) {
	return fleet.LoopbackScale(opts)
}

// LoadFleetAuthKey reads a frame-authentication master key from a
// keyfile (surrounding whitespace trimmed), for FleetAuthConfig.Key or
// a FleetRuntimeConfig.AuthKey rotation push.
func LoadFleetAuthKey(path string) ([]byte, error) { return fleet.LoadAuthKey(path) }

// Telemetry plane (see internal/metrics, internal/obs and the fleet's
// Histograms/FlightSnapshot methods): allocation-free per-shard
// histograms on the probe hot path, a Prometheus /metrics + /statusz
// status server, and a bounded flight recorder of probe-lifecycle
// events.
type (
	// FleetHistograms is the fleet's merged latency/fill histogram
	// snapshot (probe RTT, detection latency, handoff latency, batch
	// fill, timer-cascade duration).
	FleetHistograms = fleet.Histograms
	// HistogramSnapshot is one immutable log₂-bucket histogram snapshot.
	HistogramSnapshot = metrics.HistogramSnapshot
	// StatusConfig wires a fleet (and optionally a memnet network) into
	// a status server.
	StatusConfig = obs.Config
	// StatusServer serves /metrics, /healthz, /statusz, /debug/flight
	// and the pprof handlers for one fleet.
	StatusServer = obs.Server
	// StatusSnapshot is the /statusz document.
	StatusSnapshot = obs.Status
)

// NewStatusServer builds the status plane for a fleet. Call Start to
// serve it, or mount Handler on an existing mux.
func NewStatusServer(cfg StatusConfig) (*StatusServer, error) { return obs.New(cfg) }

// NewUDPDCPPControlPoint monitors a DCPP device over UDP. The listener
// may be nil.
func NewUDPDCPPControlPoint(cfg UDPControlPointConfig, policy DCPPPolicyConfig, lst Listener) (*UDPControlPoint, error) {
	p, err := dcpp.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	cfg.Listener = lst
	return rtnet.NewControlPoint(cfg)
}

// NewUDPSAPPControlPoint monitors a SAPP device over UDP. The listener
// may be nil.
func NewUDPSAPPControlPoint(cfg UDPControlPointConfig, policy SAPPCPConfig, lst Listener) (*UDPControlPoint, error) {
	p, err := sapp.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	cfg.Listener = lst
	return rtnet.NewControlPoint(cfg)
}
