// sapp-unfairness reproduces the paper's central negative result
// (Fig. 2): under the self-adaptive probe protocol, control points
// monitoring the same device end up with wildly different probe
// frequencies — some starve and never recover — even though every CP
// runs exactly the same adaptation rule.
package main

import (
	"fmt"
	"log"
	"time"

	"presence"
)

func main() {
	log.SetFlags(0)
	const horizon = 20000 * time.Second // the paper's Fig. 2 horizon
	w, err := presence.NewSimulation(presence.SimConfig{
		Protocol:       presence.ProtocolSAPP,
		Seed:           12,
		RecordCPSeries: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AddCPsStaggered(3, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	w.Run(horizon)

	fmt.Println("SAPP, 1 device, 3 control points — the Fig. 2 scenario")
	fmt.Println()
	var series []*presence.TimeSeries
	var freqs []float64
	for _, h := range w.AllCPs() {
		series = append(series, h.Freq)
		f := h.Freq.MeanAfter(horizon - horizon/5)
		freqs = append(freqs, f)
		sum := h.Freq.Summary()
		fmt.Printf("  %s: tail frequency %.2f /s (mean %.2f, variance %.2f)\n",
			h.Name, f, sum.Mean(), sum.Variance())
	}
	fmt.Printf("\n  Jain fairness index: %.3f (1 would be fair; the fair share is %.2f /s each)\n",
		presence.JainIndex(freqs), 10.0/3)
	fmt.Println()
	fmt.Println(presence.RenderPlot(series, presence.PlotOptions{
		Title:  "probe frequency 1/δ (probes/s) over time — compare the paper's Fig. 2",
		Width:  100,
		Height: 22,
		YLabel: "1/δ",
	}))
	fmt.Println("Every CP runs the same rule; the experienced-load estimate cannot tell")
	fmt.Println("\"many medium CPs\" from \"few fast ones\", so the fast react first and the")
	fmt.Println("slow starve — the unfairness that motivates DCPP (see examples/churn).")
}
