// discovery shows why the paper exists: UPnP-style announcements with a
// max-age detect a silently crashed device only after the max-age
// lapses (the UPnP spec minimum is 30 minutes!), while the probe
// protocol layered on top of discovery meets the paper's "order of one
// second" requirement.
//
// The scenario: three devices announce themselves; ten control points
// discover them dynamically and start DCPP probers; one device then
// crashes silently.
package main

import (
	"fmt"
	"log"
	"time"

	"presence"
)

func main() {
	log.SetFlags(0)
	const (
		maxAge = 60 * time.Second
		period = 20 * time.Second
	)
	w, err := presence.NewSimulation(presence.SimConfig{
		Protocol: presence.ProtocolDCPP,
		Seed:     7,
		Devices:  3,
		Discovery: presence.DiscoveryConfig{
			Enabled:          true,
			Announce:         presence.AnnouncerConfig{MaxAge: maxAge, Period: period},
			ProbeOnDiscovery: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.AddCPs(10); err != nil {
		log.Fatal(err)
	}

	// Let the periodic announcements reach the CPs and the probers spin
	// up.
	w.Run(45 * time.Second)
	fmt.Println("3 devices announcing (max-age 60s), 10 CPs discovering + DCPP-probing")
	fmt.Println()
	cp := w.ActiveCPs()[0]
	for _, d := range w.Devices() {
		at, ok := cp.DiscoveredDevice(d.ID)
		if !ok {
			log.Fatalf("device %v never discovered", d.ID)
		}
		fmt.Printf("  %s discovered device %v at t=%v; probing it at ≤ f_max\n",
			cp.Name, d.ID, at.Round(time.Millisecond))
	}

	victim := w.Devices()[2]
	killAt := w.KillDeviceID(victim.ID)
	fmt.Printf("\ndevice %v crashes silently at t=%v\n\n", victim.ID, killAt.Round(time.Second))
	w.Run(killAt + maxAge + 10*time.Second)

	var probeWorst, expiryWorst time.Duration
	for _, h := range w.ActiveCPs() {
		if at, ok := h.LostDevice(victim.ID); ok {
			if lat := at - killAt; lat > probeWorst {
				probeWorst = lat
			}
		}
	}
	// For comparison, the announcement-expiry path: last announcement ≤
	// period before the crash, expiry max-age later.
	expiryWorst = maxAge + time.Second // + registry sweep granularity

	fmt.Printf("  probe-layer detection:       worst %v across 10 CPs\n", probeWorst.Round(time.Millisecond))
	fmt.Printf("  announcement-expiry fallback: up to %v (max-age + sweep)\n", expiryWorst)
	fmt.Printf("  at the UPnP spec minimum max-age of 1800s the gap becomes three orders of magnitude\n\n")

	// The healthy devices are unaffected.
	for _, d := range w.Devices()[:2] {
		st := d.Load.Stats()
		fmt.Printf("  healthy device %v: load %.2f probes/s (bounded by its own L_nom)\n", d.ID, st.Mean())
	}
	fmt.Println("\nThis is the paper's premise in one run: discovery tells you who is there,")
	fmt.Println("only probing tells you — quickly — who still is.")
}
