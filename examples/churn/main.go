// churn reproduces the paper's Fig. 5: a DCPP device under worst-case
// membership churn — the control-point population is redrawn uniformly
// from {1..60} every ~20 s — keeps its probe load pinned at the nominal
// limit, with only short spikes when many CPs join at once.
//
// The whole scenario is declarative: scenario.json (embedded below)
// names the protocol, the churn model and the horizon, and compiles into
// the simulated world. Edit the file — or point probesim at it with
// -scenario — to explore other dynamics without touching Go code.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"presence"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	log.SetFlags(0)
	spec, err := presence.DecodeScenario(scenarioJSON)
	if err != nil {
		log.Fatal(err)
	}
	w, err := spec.World(2005)
	if err != nil {
		log.Fatal(err)
	}
	w.Run(spec.Horizon.Std())

	load := w.DeviceLoad().Stats()
	cps := w.CPCountStats()
	fmt.Printf("scenario %q: %s\n", spec.Name, spec.Description)
	fmt.Println()
	fmt.Printf("  device load:  mean %.2f probes/s, variance %.1f, σ %.2f (paper: 9.7, 20.0, ±4.5)\n",
		load.Mean(), load.Variance(), load.StdDev())
	fmt.Printf("  load peak:    %.0f probes/s (join bursts), falls back to L_nom = 10 immediately\n", load.Max())
	fmt.Printf("  population:   mean %.1f CPs (E[U{1..60}] = 30.5)\n", cps.Mean())
	fmt.Println()
	fmt.Println(presence.RenderPlot(
		[]*presence.TimeSeries{w.DeviceLoad().Series(), w.CPCountSeries()},
		presence.PlotOptions{
			Title:  "device load (+) and active CPs (x) over 30 simulated minutes",
			Width:  100,
			Height: 22,
		}))
	fmt.Println("However many CPs arrive, the device schedules their probes ≥ δ_min apart,")
	fmt.Println("so the steady load can never exceed L_nom — the paper's core guarantee.")
}
