// udp-live runs the protocol on real UDP sockets: a DCPP device and
// three control points on the loopback interface. After a second of
// monitoring, the device is killed silently (no bye) and the example
// measures how long each control point takes to notice — the "are you
// still there?" question answered on a real network rather than in the
// simulator.
//
// Timeouts are scaled up from the paper's LAN values so the demo is
// robust on loaded machines; the structure (TOF > TOS, 3 retransmits)
// is the paper's.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"presence"
)

// watcher records presence events for one control point.
type watcher struct {
	name string

	mu     sync.Mutex
	cycles int
	lostAt time.Time
	lost   bool
}

func (w *watcher) DeviceAlive(presence.NodeID, presence.CycleResult) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cycles++
}

func (w *watcher) DeviceLost(presence.NodeID, time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lost = true
	w.lostAt = time.Now()
}

func (w *watcher) DeviceBye(presence.NodeID, time.Duration) {}

func main() {
	log.SetFlags(0)
	devCfg := presence.DefaultDCPPDeviceConfig()
	devCfg.MinGap = 25 * time.Millisecond     // L_nom = 40 probes/s
	devCfg.MinCPDelay = 80 * time.Millisecond // f_max = 12.5 probes/s per CP
	dev, err := presence.NewUDPDCPPDevice(presence.UDPDeviceConfig{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
	}, devCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device 1 (DCPP) listening on %s\n", dev.Addr())

	retransmit := presence.RetransmitConfig{
		FirstTimeout:   80 * time.Millisecond,
		RetryTimeout:   60 * time.Millisecond,
		MaxRetransmits: 3,
	}
	watchers := make([]*watcher, 3)
	cps := make([]*presence.UDPControlPoint, 3)
	for i := range cps {
		watchers[i] = &watcher{name: fmt.Sprintf("cp%d", i+2)}
		cp, err := presence.NewUDPDCPPControlPoint(presence.UDPControlPointConfig{
			ID:         presence.NodeID(i + 2),
			Device:     1,
			DeviceAddr: dev.Addr().String(),
			Retransmit: retransmit,
		}, presence.DCPPPolicyConfig{}, watchers[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := cp.Start(); err != nil {
			log.Fatal(err)
		}
		cps[i] = cp
		defer cp.Close()
	}

	fmt.Println("monitoring for 1 second ...")
	time.Sleep(time.Second)
	for _, w := range watchers {
		w.mu.Lock()
		fmt.Printf("  %s: %d successful probe cycles\n", w.name, w.cycles)
		w.mu.Unlock()
	}

	fmt.Println("killing the device silently (no bye) ...")
	killed := time.Now()
	if err := dev.Close(); err != nil {
		log.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, w := range watchers {
			w.mu.Lock()
			lost := w.lost
			w.mu.Unlock()
			if !lost {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Worst case: assigned wait (≤ max(d_min, 3·δ_min) = 80 ms) + failed
	// cycle (TOF + 3·TOS = 260 ms).
	fmt.Println("detection latencies (bound ≈ wait + TOF + 3·TOS ≈ 340 ms + scheduling slack):")
	for _, w := range watchers {
		w.mu.Lock()
		if w.lost {
			fmt.Printf("  %s: lost after %v\n", w.name, w.lostAt.Sub(killed).Round(time.Millisecond))
		} else {
			fmt.Printf("  %s: not yet detected (unexpected)\n", w.name)
		}
		w.mu.Unlock()
	}
}
