// Quickstart: simulate a DCPP deployment — one device, 20 control
// points — for five simulated minutes and print what the paper promises:
// the device load stays at its nominal limit and every control point
// gets the same probe frequency.
package main

import (
	"fmt"
	"log"
	"time"

	"presence"
)

func main() {
	log.SetFlags(0)
	w, err := presence.NewSimulation(presence.SimConfig{
		Protocol: presence.ProtocolDCPP,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.AddCPs(20); err != nil {
		log.Fatal(err)
	}
	// Let the schedule absorb the join burst, then measure five minutes.
	w.Run(30 * time.Second)
	w.ResetMeasurements()
	w.Run(30*time.Second + 5*time.Minute)

	load := w.DeviceLoad().Stats()
	freqs := w.CPFrequencies()
	fmt.Println("DCPP, 1 device (L_nom = 10 probes/s), 20 control points, 5 simulated minutes")
	fmt.Printf("  device load:     %.2f probes/s (never above %.1f)\n", load.Mean(), load.Max())
	fmt.Printf("  per-CP rate:     %.3g .. %.3g probes/s (fair share is L_nom/k = 0.5)\n",
		freqs[0], freqs[len(freqs)-1])
	fmt.Printf("  Jain fairness:   %.4f (1 = perfectly fair)\n", presence.JainIndex(freqs))

	// Now crash the device silently and measure how fast the CPs notice.
	killAt := w.KillDevice()
	w.Run(killAt + 10*time.Second)
	var worst time.Duration
	detected := 0
	for _, h := range w.ActiveCPs() {
		if h.Lost {
			detected++
			if lat := h.LostAt - killAt; lat > worst {
				worst = lat
			}
		}
	}
	fmt.Printf("  silent crash:    %d/%d CPs detected it, worst latency %v\n",
		detected, len(w.ActiveCPs()), worst.Round(time.Millisecond))
	fmt.Println("\n(the worst case is the CP's scheduled wait, k·δ_min = 2s, plus a full")
	fmt.Println(" failed probe cycle TOF + 3·TOS = 85ms — exactly what the schedule predicts)")
}
