// Command probefleet boots a fleet: a sharded presence server hosting
// many control points (and, in loopback mode, the devices they monitor)
// inside one process — the internal/fleet runtime as a daemon. It
// prints live aggregate stats and, on SIGINT/SIGTERM, a final per-shard
// counter dump before shutting the fleet down cleanly.
//
// Usage:
//
//	probefleet [-cps N] [-shards N] [-protocol sapp|dcpp|naive] [-period D] [-rate F]
//	           [-loopback N | -device ADDR -device-id N]
//	           [-min-gap D] [-min-cp-delay D]
//	           [-duration D] [-interval D] [-join-ramp D]
//	           [-batch N] [-single] [-reuseport] [-harden]
//	           [-status ADDR] [-admin] [-churn F]
//
// By default it runs self-contained: -loopback N hosts N devices of the
// chosen protocol in a second, devices-only fleet and points the CPs at
// them round-robin. With -device/-device-id the CPs monitor an external
// daemon (cmd/probed) instead.
//
// -rate F is the per-CP probe budget in probes/s: shorthand for
// -protocol naive -period 1/F, the configuration that stresses the
// batched transport path instead of exercising DCPP's frugality.
// -single forces the one-datagram-per-syscall fallback (the baseline
// the batching win is measured against), and -harden switches on the
// adversarial defenses (fleet Config.Harden) and reports their
// counters in the final dump.
//
// -status ADDR serves the fleet's status plane (internal/obs) on ADDR:
// Prometheus /metrics (counters plus the probe-RTT, detection-latency,
// handoff-latency, batch-fill and timer-cascade histograms), /healthz,
// /statusz (per-shard JSON snapshot), /debug/flight (the flight
// recorder's newest probe-lifecycle events per shard) and the pprof
// handlers — one mux, explicitly registered, shut down gracefully with
// the daemon. -pprof ADDR is the deprecated alias that used to serve
// only pprof. SIGQUIT dumps the flight recorder to stdout without
// stopping the daemon (the classic thread-dump idiom); the final
// SIGINT/SIGTERM dump also prints a latency digest off the histograms.
//
// -admin arms the runtime-administration endpoints on the -status mux
// (POST /admin/cp/add, /admin/cp/remove, /admin/device/add,
// /admin/device/remove, /admin/drain, /admin/rebalance and GET/POST
// /admin/config — see internal/obs): live control-point and device
// churn, shard drain/rebalance and config pushes against the running
// daemon, e.g.
//
//	curl -X POST -d '{"shard":0}' http://localhost:6060/admin/drain
//
// -churn F drives synthetic runtime churn at F ops/s through the same
// admin plane the endpoints use: each operation adds a control point
// (fresh id, round-robin device) until a rolling pool of 100 is live,
// then alternates removing the oldest and adding a new one — the
// steady-state add/remove mix a self-configuring network produces.
// Live stats then also show the churn pool and total ops.
//
// -reuseport binds every CP-fleet shard socket to one shared UDP port
// with SO_REUSEPORT (fleet Config.ReusePort): the kernel demultiplexes
// inbound load across shard sockets by flow hash, and frames it lands
// on the wrong shard ride the in-process handoff path (reported live
// and in the final dump). On platforms without the option the fleet
// falls back to one port per shard with routing still on. Live stats
// then also show the per-shard packet spread (max/mean over the
// interval — 1.00 is a perfectly even demux).
//
// Core count: each shard runs one event-loop goroutine, so shards
// beyond GOMAXPROCS time-share cores. For a scaling run pin both, e.g.
// GOMAXPROCS=4 probefleet -shards 4 -reuseport; with -shards 0 the
// fleet already sizes itself to GOMAXPROCS.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/obs"
	"presence/internal/rtnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, signalChan()); err != nil {
		fmt.Fprintln(os.Stderr, "probefleet:", err)
		os.Exit(1)
	}
}

func signalChan() <-chan os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT, syscall.SIGHUP)
	return sig
}

type options struct {
	cps         int
	shards      int
	protocol    string
	period      time.Duration
	rate        float64
	loopback    int
	device      string
	deviceID    uint
	minGap      time.Duration
	minCPDelay  time.Duration
	duration    time.Duration
	interval    time.Duration
	joinRamp    time.Duration
	batch       int
	single      bool
	reuseport   bool
	harden      bool
	authKeyfile string
	authRequire bool
	statusAddr  string
	pprofAddr   string
	admin       bool
	churn       float64
}

func run(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("probefleet", flag.ContinueOnError)
	var o options
	fs.IntVar(&o.cps, "cps", 1000, "number of hosted control points")
	fs.IntVar(&o.shards, "shards", 0, "shard count (0 = GOMAXPROCS)")
	fs.StringVar(&o.protocol, "protocol", "dcpp", "protocol: sapp, dcpp or naive")
	fs.DurationVar(&o.period, "period", time.Second, "naive probe period")
	fs.IntVar(&o.loopback, "loopback", 1, "host this many loopback devices in-process (0 with -device)")
	fs.StringVar(&o.device, "device", "", "external device UDP address (disables loopback)")
	fs.UintVar(&o.deviceID, "device-id", 1, "external device node id")
	fs.DurationVar(&o.minGap, "min-gap", dcpp.DefaultMinGap, "DCPP δ_min for loopback devices")
	fs.DurationVar(&o.minCPDelay, "min-cp-delay", dcpp.DefaultMinCPDelay, "DCPP d_min for loopback devices")
	fs.DurationVar(&o.duration, "duration", 0, "run time (0 = until SIGINT/SIGTERM)")
	fs.DurationVar(&o.interval, "interval", time.Second, "live stats interval")
	fs.DurationVar(&o.joinRamp, "join-ramp", 0, "spread CP joins over this long (0 = 200µs per CP, negative disables)")
	fs.Float64Var(&o.rate, "rate", 0, "per-CP probe budget in probes/s (shorthand for -protocol naive -period 1/F)")
	fs.IntVar(&o.batch, "batch", 0, "transport batch: datagrams per recvmmsg/sendmmsg call (0 = fleet default)")
	fs.BoolVar(&o.single, "single", false, "force the one-datagram-per-syscall fallback path")
	fs.BoolVar(&o.reuseport, "reuseport", false, "share one UDP port across CP-fleet shards via SO_REUSEPORT (kernel flow-hash demux; falls back to distinct ports where unsupported)")
	fs.BoolVar(&o.harden, "harden", false, "enable the adversarial defenses (BYE verification, source pinning, replay window, per-source shedding) on both fleets")
	fs.StringVar(&o.authKeyfile, "auth-keyfile", "", "authenticate frames (wire v2 HMAC tags) with the master key read from this file; SIGHUP re-reads it and rotates live")
	fs.BoolVar(&o.authRequire, "auth-require", false, "refuse unauthenticated v1 frames outright (needs -auth-keyfile)")
	fs.StringVar(&o.statusAddr, "status", "", "serve the status plane (/metrics, /healthz, /statusz, /debug/flight, pprof) on this address (e.g. localhost:6060)")
	fs.StringVar(&o.pprofAddr, "pprof", "", "deprecated alias for -status (the pprof handlers live on the status mux)")
	fs.BoolVar(&o.admin, "admin", false, "mount the runtime admin endpoints (/admin/...) on the -status mux")
	fs.Float64Var(&o.churn, "churn", 0, "drive synthetic runtime churn at this many control-point add/remove ops per second")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.cps < 1 {
		return fmt.Errorf("-cps %d must be positive", o.cps)
	}
	if o.device == "" && o.loopback < 1 {
		return fmt.Errorf("need -loopback ≥ 1 or an external -device")
	}
	if o.interval <= 0 {
		return fmt.Errorf("-interval %v must be positive", o.interval)
	}
	if o.rate < 0 {
		return fmt.Errorf("-rate %g must be non-negative", o.rate)
	}
	if o.rate > 0 {
		o.protocol = "naive"
		o.period = time.Duration(float64(time.Second) / o.rate)
	}
	if o.joinRamp == 0 {
		o.joinRamp = fleet.DefaultJoinRamp(o.cps)
	}
	if o.statusAddr == "" {
		o.statusAddr = o.pprofAddr // deprecated alias
	}
	if o.admin && o.statusAddr == "" {
		return fmt.Errorf("-admin needs -status ADDR to serve the endpoints on")
	}
	if o.churn < 0 {
		return fmt.Errorf("-churn %g must be non-negative", o.churn)
	}
	if o.authRequire && o.authKeyfile == "" {
		return fmt.Errorf("-auth-require needs -auth-keyfile")
	}
	auth := fleet.AuthConfig{KeyFile: o.authKeyfile, Require: o.authRequire}

	cpFleet, err := fleet.New(fleet.Config{Shards: o.shards, Batch: o.batch, ForceSingleDatagram: o.single, ReusePort: o.reuseport, Harden: o.harden, Auth: auth})
	if err != nil {
		return err
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		return err
	}
	if o.statusAddr != "" {
		status, err := obs.New(obs.Config{Fleet: cpFleet, Admin: o.admin})
		if err != nil {
			return err
		}
		addr, err := status.Start(o.statusAddr)
		if err != nil {
			return fmt.Errorf("status plane: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := status.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "probefleet: status shutdown: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "probefleet: status plane on http://%s/ (metrics, statusz, debug/flight, debug/pprof)\n", addr)
	}
	if o.reuseport {
		if cpFleet.ReusePortActive() {
			fmt.Fprintf(out, "probefleet: SO_REUSEPORT active — %d shard socket(s) share port %d\n",
				cpFleet.Shards(), cpFleet.Addrs()[0].Port())
		} else {
			fmt.Fprintln(out, "probefleet: SO_REUSEPORT unavailable here — distinct ports per shard, routing still on")
		}
	}
	if o.authKeyfile != "" {
		mode := "v1 accepted until a peer speaks v2"
		if o.authRequire {
			mode = "unauthenticated frames refused"
		}
		fmt.Fprintf(out, "probefleet: frame authentication on (key from %s, %s); SIGHUP rotates\n", o.authKeyfile, mode)
	}

	// The devices the CPs monitor: in-process loopback or external.
	type target struct {
		id   ident.NodeID
		addr netip.AddrPort
	}
	var targets []target
	var ids ident.Allocator
	var devFleet *fleet.Fleet
	if o.device != "" {
		if o.deviceID == 0 || uint64(o.deviceID) > uint64(^uint32(0)) {
			return fmt.Errorf("-device-id %d out of range", o.deviceID)
		}
		addr, err := rtnet.ResolveUDPAddrPort(o.device)
		if err != nil {
			return err
		}
		targets = []target{{id: ident.NodeID(uint32(o.deviceID)), addr: addr}}
	} else {
		var err error
		devFleet, err = fleet.New(fleet.Config{Shards: o.loopback, Batch: o.batch, ForceSingleDatagram: o.single, Harden: o.harden, Auth: auth})
		if err != nil {
			return err
		}
		defer devFleet.Close()
		if err := devFleet.Start(); err != nil {
			return err
		}
		for i := 0; i < o.loopback; i++ {
			id := ids.Next()
			build, err := deviceBuilder(o, id)
			if err != nil {
				return err
			}
			dev, err := devFleet.AddDevice(id, build)
			if err != nil {
				return err
			}
			targets = append(targets, target{id: id, addr: dev.Addr()})
		}
		fmt.Fprintf(out, "probefleet: %d loopback %s device(s) up, first at %s\n",
			o.loopback, o.protocol, targets[0].addr)
	}

	fmt.Fprintf(out, "probefleet: joining %d %s control points on %d shard(s) over %v\n",
		o.cps, o.protocol, cpFleet.Shards(), o.joinRamp.Round(time.Millisecond))
	pacer := fleet.NewJoinPacer(o.cps, o.joinRamp)
	for i := 0; i < o.cps; i++ {
		policy, err := cpPolicy(o)
		if err != nil {
			return err
		}
		tgt := targets[i%len(targets)]
		if _, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID:             ids.Next(),
			Device:         tgt.id,
			DeviceAddrPort: tgt.addr,
			Policy:         policy,
		}); err != nil {
			return fmt.Errorf("add cp %d: %w", i, err)
		}
		pacer.Tick()
	}
	fmt.Fprintf(out, "probefleet: all %d control points joined\n", o.cps)

	// The -churn driver: a rolling pool of extra control points added
	// and removed through the fleet's admin plane at the requested rate.
	var churnTick <-chan time.Time
	var churnIDs []ident.NodeID
	var churnOps uint64
	churnNext := ident.NodeID(1 << 20) // clear of the Allocator's ids
	if o.churn > 0 {
		iv := time.Duration(float64(time.Second) / o.churn)
		if iv < time.Millisecond {
			iv = time.Millisecond // ticker floor; ops coalesce below it
		}
		ct := time.NewTicker(iv)
		defer ct.Stop()
		churnTick = ct.C
	}
	const churnPool = 100

	ticker := time.NewTicker(o.interval)
	defer ticker.Stop()
	var timeout <-chan time.Time
	if o.duration > 0 {
		timeout = time.After(o.duration)
	}
	prev := cpFleet.Snapshot()
	for {
		select {
		case <-ticker.C:
			cur := cpFleet.Snapshot()
			printLive(out, prev, cur)
			if o.churn > 0 {
				fmt.Fprintf(out, "          churn pool=%d ops=%d\n", len(churnIDs), churnOps)
			}
			prev = cur
		case <-churnTick:
			churnOps++
			if len(churnIDs) >= churnPool {
				// Remove the oldest pool member, then fall through to add so
				// the pool stays full: one remove+add pair per tick at
				// saturation.
				if err := cpFleet.RemoveControlPoint(churnIDs[0]); err != nil {
					fmt.Fprintf(os.Stderr, "probefleet: churn remove: %v\n", err)
				}
				churnIDs = churnIDs[1:]
				churnOps++
			}
			policy, err := cpPolicy(o)
			if err != nil {
				return err
			}
			tgt := targets[int(churnNext)%len(targets)]
			if _, err := cpFleet.AddControlPoint(fleet.CPConfig{
				ID:             churnNext,
				Device:         tgt.id,
				DeviceAddrPort: tgt.addr,
				Policy:         policy,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "probefleet: churn add: %v\n", err)
			} else {
				churnIDs = append(churnIDs, churnNext)
			}
			churnNext++
		case s := <-sig:
			if s == syscall.SIGQUIT {
				// Thread-dump idiom: dump the flight recorder, keep running.
				fmt.Fprintln(out, "probefleet: SIGQUIT — flight recorder dump")
				if err := cpFleet.WriteFlight(out); err != nil {
					fmt.Fprintf(os.Stderr, "probefleet: flight dump: %v\n", err)
				}
				continue
			}
			if s == syscall.SIGHUP {
				// Live key rotation: re-read the keyfile and push it through
				// the admin plane of every fleet this process runs. The
				// dual-key grace keeps in-flight frames verifying.
				if o.authKeyfile == "" {
					fmt.Fprintln(out, "probefleet: SIGHUP ignored — no -auth-keyfile to reload")
					continue
				}
				key, err := fleet.LoadAuthKey(o.authKeyfile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "probefleet: SIGHUP key reload: %v\n", err)
					continue
				}
				for _, fl := range []*fleet.Fleet{devFleet, cpFleet} {
					if fl == nil {
						continue
					}
					rc, _ := fl.ConfigSnapshot()
					rc.AuthKey = key
					if _, err := fl.SetConfig(rc); err != nil {
						fmt.Fprintf(os.Stderr, "probefleet: SIGHUP key rotation: %v\n", err)
					}
				}
				fmt.Fprintf(out, "probefleet: SIGHUP — auth key reloaded from %s\n", o.authKeyfile)
				continue
			}
			fmt.Fprintln(out, "probefleet: signal received, shutting down")
			return finalDump(out, cpFleet, devFleet)
		case <-timeout:
			return finalDump(out, cpFleet, devFleet)
		}
	}
}

func deviceBuilder(o options, id ident.NodeID) (fleet.DeviceBuilder, error) {
	switch o.protocol {
	case "dcpp":
		cfg := dcpp.DefaultDeviceConfig()
		cfg.MinGap, cfg.MinCPDelay = o.minGap, o.minCPDelay
		return func(env core.Env) (core.Device, error) { return dcpp.NewDevice(id, env, cfg) }, nil
	case "sapp":
		return func(env core.Env) (core.Device, error) {
			return sapp.NewDevice(id, env, sapp.DefaultDeviceConfig())
		}, nil
	case "naive":
		return func(env core.Env) (core.Device, error) { return naive.NewDevice(id, env) }, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", o.protocol)
	}
}

func cpPolicy(o options) (core.DelayPolicy, error) {
	switch o.protocol {
	case "dcpp":
		return dcpp.NewPolicy(dcpp.PolicyConfig{})
	case "sapp":
		return sapp.NewPolicy(sapp.DefaultCPConfig())
	case "naive":
		return naive.NewPolicy(o.period)
	default:
		return nil, fmt.Errorf("unknown protocol %q", o.protocol)
	}
}

func printLive(out io.Writer, prev, cur fleet.Snapshot) {
	dt := (cur.At - prev.At).Seconds()
	if dt <= 0 {
		return
	}
	rate := func(a, b uint64) float64 { return float64(b-a) / dt }
	fill := func(pkts0, pkts1, calls0, calls1 uint64) float64 {
		if calls1 == calls0 {
			return 0
		}
		return float64(pkts1-pkts0) / float64(calls1-calls0)
	}
	fmt.Fprintf(out,
		"[%7s] cps=%d/%d probes/s=%.1f replies/s=%.1f timers/s=%.1f fill=%.1f/%.1f wheel=%d pending=%d errs dec=%d send=%d drop=%d coll=%d",
		cur.At.Round(time.Second),
		cur.Total.LiveControlPoints, cur.Total.ControlPoints,
		rate(prev.Total.ProbesOut, cur.Total.ProbesOut),
		rate(prev.Total.RepliesIn, cur.Total.RepliesIn),
		rate(prev.Total.TimersFired, cur.Total.TimersFired),
		fill(prev.Total.PacketsIn, cur.Total.PacketsIn, prev.Total.SyscallsIn, cur.Total.SyscallsIn),
		fill(prev.Total.PacketsOut, cur.Total.PacketsOut, prev.Total.SyscallsOut, cur.Total.SyscallsOut),
		cur.Total.WheelDepth, cur.Total.PendingProbes,
		cur.Total.DecodeErrors, cur.Total.SendErrors,
		cur.Total.DemuxDrops, cur.Total.DemuxCollisions)
	if cur.Total.HandoffsOut > 0 || cur.Total.HandoffsIn > 0 {
		fmt.Fprintf(out, " handoffs/s=%.1f spread=%.2f",
			rate(prev.Total.HandoffsIn, cur.Total.HandoffsIn),
			shardSpread(prev, cur))
	}
	fmt.Fprintln(out)
}

// shardSpread is max/mean packets (in+out) per shard over the interval:
// 1.00 when the kernel's flow-hash demux (or the NodeID hash) spreads
// load perfectly evenly, larger when one shard carries more than its
// share. 0 means no packets moved.
func shardSpread(prev, cur fleet.Snapshot) float64 {
	if len(cur.Shards) != len(prev.Shards) || len(cur.Shards) == 0 {
		return 0
	}
	var sum, peak uint64
	for i := range cur.Shards {
		p := cur.Shards[i].PacketsIn - prev.Shards[i].PacketsIn +
			cur.Shards[i].PacketsOut - prev.Shards[i].PacketsOut
		sum += p
		if p > peak {
			peak = p
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(peak) * float64(len(cur.Shards)) / float64(sum)
}

// finalDump closes the fleet and prints the last counters — aggregate
// first, then per shard, so the per-shard sums can be eyeballed against
// the total. devFleet is the loopback device fleet when one exists (nil
// with -device); its counters carry the device-side hardening activity
// (probe shedding, forged byes) that never shows on the CP fleet.
func finalDump(out io.Writer, f, devFleet *fleet.Fleet) error {
	snap := f.Snapshot()
	var hist fleet.Histograms
	if f.TelemetryEnabled() {
		hist = f.Histograms()
	}
	err := f.Close()
	t := snap.Total
	if devFleet != nil {
		d := devFleet.Snapshot().Total
		t.AttemptMismatches += d.AttemptMismatches
		t.RepliesForged += d.RepliesForged
		t.ByesForged += d.ByesForged
		t.RepliesReplayed += d.RepliesReplayed
		t.ProbesShed += d.ProbesShed
		t.AuthVerified += d.AuthVerified
		t.AuthStaleKey += d.AuthStaleKey
		t.AuthRejected += d.AuthRejected
		t.AuthDowngraded += d.AuthDowngraded
		t.BadFrames += d.BadFrames
	}
	fmt.Fprintf(out, "probefleet: final after %s — cps=%d/%d in=%d out=%d syscalls=%d/%d probes=%d replies=%d timers=%d errs dec=%d send=%d drop=%d coll=%d\n",
		snap.At.Round(time.Millisecond),
		t.LiveControlPoints, t.ControlPoints, t.PacketsIn, t.PacketsOut,
		t.SyscallsIn, t.SyscallsOut,
		t.ProbesOut, t.RepliesIn, t.TimersFired,
		t.DecodeErrors, t.SendErrors, t.DemuxDrops, t.DemuxCollisions)
	if t.HandoffsOut > 0 || t.HandoffsIn > 0 {
		fmt.Fprintf(out, "probefleet: handoffs — out=%d in=%d (frames the demux landed on a non-owning shard)\n",
			t.HandoffsOut, t.HandoffsIn)
	}
	if h := t.AttemptMismatches + t.RepliesForged + t.ByesForged + t.RepliesReplayed + t.ProbesShed; h > 0 {
		fmt.Fprintf(out, "probefleet: hardening — attempt-mismatch=%d forged replies=%d byes=%d replayed=%d shed=%d\n",
			t.AttemptMismatches, t.RepliesForged, t.ByesForged, t.RepliesReplayed, t.ProbesShed)
	}
	if a := t.AuthVerified + t.AuthStaleKey + t.AuthRejected + t.AuthDowngraded; a > 0 {
		fmt.Fprintf(out, "probefleet: auth — verified=%d stale-key=%d rejected=%d downgrades=%d bad-frames=%d\n",
			t.AuthVerified, t.AuthStaleKey, t.AuthRejected, t.AuthDowngraded, t.BadFrames)
	}
	if hist.ProbeRTT.Count > 0 {
		us := func(v uint64) time.Duration { return (time.Duration(v) * time.Microsecond).Round(time.Microsecond) }
		fmt.Fprintf(out, "probefleet: latency — rtt p50≤%v p99≤%v (n=%d)",
			us(hist.ProbeRTT.Quantile(0.5)), us(hist.ProbeRTT.Quantile(0.99)), hist.ProbeRTT.Count)
		if hist.DetectionLatency.Count > 0 {
			fmt.Fprintf(out, " detect p50≤%v (n=%d)",
				us(hist.DetectionLatency.Quantile(0.5)), hist.DetectionLatency.Count)
		}
		if hist.HandoffLatency.Count > 0 {
			fmt.Fprintf(out, " handoff p99≤%v", us(hist.HandoffLatency.Quantile(0.99)))
		}
		fmt.Fprintf(out, " fill mean=%.1f\n", hist.BatchFill.Mean())
	}
	for i, c := range snap.Shards {
		fmt.Fprintf(out, "  shard %2d: cps=%d/%d in=%d out=%d probes=%d replies=%d wheel=%d handoffs=%d/%d\n",
			i, c.LiveControlPoints, c.ControlPoints, c.PacketsIn, c.PacketsOut,
			c.ProbesOut, c.RepliesIn, c.WheelDepth, c.HandoffsOut, c.HandoffsIn)
	}
	return err
}
