package main

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRejectsBadInputs exercises every flag-validation exit path.
func TestRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown protocol", []string{"-protocol", "swim", "-cps", "1", "-duration", "1ms"}},
		{"zero cps", []string{"-cps", "0"}},
		{"no devices at all", []string{"-loopback", "0"}},
		{"device id out of range", []string{"-device", "127.0.0.1:9300", "-device-id", "0"}},
		{"bad device address", []string{"-device", "nope:xx", "-cps", "1", "-duration", "1ms"}},
		{"unparseable duration", []string{"-duration", "soon"}},
		{"unknown flag", []string{"-bogus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(c.args, &out, nil); err == nil {
				t.Errorf("args %v accepted, want error", c.args)
			}
		})
	}
}

func TestLoopbackRunToDuration(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-cps", "50", "-shards", "2", "-loopback", "2",
		"-min-gap", "5ms", "-min-cp-delay", "20ms",
		"-duration", "700ms", "-interval", "200ms", "-join-ramp", "50ms",
	}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"2 loopback dcpp device(s) up",
		"all 50 control points joined",
		"probes/s=",
		"probefleet: final after",
		"shard  0:",
		"shard  1:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "cps=50/50") {
		t.Fatalf("output missing live cps=50/50:\n%s", s)
	}
}

func TestSignalTriggersFinalDump(t *testing.T) {
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{
			"-cps", "10", "-shards", "1", "-loopback", "1",
			"-min-gap", "5ms", "-min-cp-delay", "20ms",
			"-interval", "50ms", "-join-ramp", "1ms",
		}, &out, sig)
	}()
	time.Sleep(400 * time.Millisecond)
	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after the signal")
	}
	s := out.String()
	if !strings.Contains(s, "signal received") || !strings.Contains(s, "probefleet: final after") {
		t.Fatalf("signal path output:\n%s", s)
	}
}

// TestAuthKeyfileAndSIGHUPReload runs an authenticated loopback fleet
// (wire v2 tags required on every frame), rotates the master key live
// via SIGHUP mid-run, and checks the daemon keeps probing across the
// rotation with zero rejected frames — the dual-key grace at work.
func TestAuthKeyfileAndSIGHUPReload(t *testing.T) {
	keyfile := filepath.Join(t.TempDir(), "master.key")
	if err := os.WriteFile(keyfile, []byte("probefleet-test-master-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{
			"-cps", "20", "-shards", "1", "-loopback", "1",
			"-min-gap", "5ms", "-min-cp-delay", "20ms",
			"-interval", "100ms", "-join-ramp", "1ms",
			"-auth-keyfile", keyfile, "-auth-require",
		}, &out, sig)
	}()
	time.Sleep(400 * time.Millisecond)
	if err := os.WriteFile(keyfile, []byte("probefleet-test-rotated-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	sig <- syscall.SIGHUP
	time.Sleep(400 * time.Millisecond)
	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after the signal")
	}
	s := out.String()
	for _, want := range []string{
		"frame authentication on (key from " + keyfile + ", unauthenticated frames refused); SIGHUP rotates",
		"SIGHUP — auth key reloaded from " + keyfile,
		"probefleet: auth — verified=",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Every frame in a loopback run shares the keyfile, so nothing may
	// be rejected — a rejection here means rotation broke verification.
	if strings.Contains(s, "rejected=") && !strings.Contains(s, "rejected=0 ") {
		t.Fatalf("auth rejections in a benign authenticated run:\n%s", s)
	}
}

func TestAuthRequireNeedsKeyfile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-auth-require", "-cps", "1", "-duration", "1ms"}, &out, nil); err == nil {
		t.Fatal("-auth-require without -auth-keyfile accepted, want error")
	}
}

func TestNaiveProtocolLoopback(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-cps", "5", "-shards", "1", "-loopback", "1", "-protocol", "naive",
		"-period", "50ms", "-duration", "400ms", "-interval", "100ms", "-join-ramp", "1ms",
	}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loopback naive device(s) up") {
		t.Fatalf("output:\n%s", out.String())
	}
}
