package main

import "testing"

func TestRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-protocol", "swim"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-device", "not-an-address:xx"}); err == nil {
		t.Error("bad device address accepted")
	}
}
