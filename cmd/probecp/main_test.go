package main

import "testing"

// TestRejectsBadInputs exercises every flag-validation exit path: the
// CLI must fail fast on malformed input instead of starting a monitor it
// can never run.
func TestRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown protocol", []string{"-protocol", "swim"}},
		{"negative naive period", []string{"-protocol", "naive", "-period", "-1s"}},
		{"bad device address", []string{"-device", "not-an-address:xx"}},
		{"invalid cp id", []string{"-id", "0"}},
		{"invalid device id", []string{"-device-id", "0"}},
		{"unparseable duration", []string{"-period", "soon"}},
		{"unknown flag", []string{"-bogus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.args); err == nil {
				t.Errorf("args %v accepted, want error", c.args)
			}
		})
	}
}
