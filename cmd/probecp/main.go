// Command probecp runs a control point that monitors a device daemon
// (cmd/probed) over UDP, printing presence events as they happen.
//
// Usage:
//
//	probecp [-device ADDR] [-device-id N] [-id N]
//	        [-protocol sapp|dcpp|naive] [-period D] [-restart]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/ident"
	"presence/internal/rtnet"
)

// printer logs presence events with wall-clock timestamps.
type printer struct {
	mu      sync.Mutex
	start   time.Time
	lost    chan struct{}
	verbose bool
}

func (p *printer) stamp() string {
	return time.Since(p.start).Round(time.Millisecond).String()
}

func (p *printer) DeviceAlive(dev ident.NodeID, res core.CycleResult) {
	if !p.verbose {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Printf("[%s] device %v alive (attempts %d, rtt %v)\n",
		p.stamp(), dev, res.Attempts, res.RepliedAt-res.SentAt)
}

func (p *printer) DeviceLost(dev ident.NodeID, _ time.Duration) {
	p.mu.Lock()
	fmt.Printf("[%s] device %v LOST (no reply to a full probe cycle)\n", p.stamp(), dev)
	p.mu.Unlock()
	select {
	case p.lost <- struct{}{}:
	default:
	}
}

func (p *printer) DeviceBye(dev ident.NodeID, _ time.Duration) {
	p.mu.Lock()
	fmt.Printf("[%s] device %v said BYE (graceful leave)\n", p.stamp(), dev)
	p.mu.Unlock()
	select {
	case p.lost <- struct{}{}:
	default:
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "probecp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("probecp", flag.ContinueOnError)
	var (
		device   = fs.String("device", "127.0.0.1:9300", "device UDP address")
		deviceID = fs.Uint("device-id", 1, "device node id")
		id       = fs.Uint("id", 2, "this control point's node id")
		protocol = fs.String("protocol", "dcpp", "protocol: sapp, dcpp or naive")
		period   = fs.Duration("period", time.Second, "naive probe period")
		restart  = fs.Bool("restart", false, "keep probing after the device is lost")
		verbose  = fs.Bool("v", false, "log every successful cycle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		policy core.DelayPolicy
		err    error
	)
	switch *protocol {
	case "dcpp":
		policy, err = dcpp.NewPolicy(dcpp.PolicyConfig{})
	case "sapp":
		policy, err = sapp.NewPolicy(sapp.DefaultCPConfig())
	case "naive":
		policy, err = naive.NewPolicy(*period)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		return err
	}
	lst := &printer{start: time.Now(), lost: make(chan struct{}, 1), verbose: *verbose}
	cp, err := rtnet.NewControlPoint(rtnet.ControlPointConfig{
		ID:         ident.NodeID(uint32(*id)),
		Device:     ident.NodeID(uint32(*deviceID)),
		DeviceAddr: *device,
		Policy:     policy,
		Listener:   lst,
	})
	if err != nil {
		return err
	}
	defer cp.Close()
	if err := cp.Start(); err != nil {
		return err
	}
	fmt.Printf("probecp: monitoring device %d at %s via %s\n", *deviceID, *device, *protocol)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			signal.Stop(sig) // a second Ctrl-C kills us the ordinary way
			fmt.Println("probecp: shutting down")
			return finalDump(cp)
		case <-lst.lost:
			if !*restart {
				fmt.Println("probecp: stopping after loss")
				return finalDump(cp)
			}
			fmt.Println("probecp: restarting monitor")
			time.Sleep(time.Second)
			if err := cp.Restart(); err != nil {
				return err
			}
		}
	}
}

// finalDump closes the control point cleanly (stopping the prober and
// the read loop) and prints the final cycle and wire counters.
func finalDump(cp *rtnet.ControlPoint) error {
	err := cp.Close()
	st := cp.Stats()
	c := cp.Counters()
	fmt.Printf("probecp: %d cycles ok, %d failed, %d probes, %d retransmits, %d stale replies\n",
		st.CyclesOK, st.CyclesFailed, st.ProbesSent, st.Retransmits, st.StaleReplies)
	fmt.Printf("probecp: %d packets in, %d out; %d decode errors, %d send errors\n",
		c.PacketsIn, c.PacketsOut, c.DecodeErrors, c.SendErrors)
	return err
}
