// Command probebench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments) and writes a Markdown
// report and gnuplot-ready .dat files.
//
// Usage:
//
//	probebench [-scale paper|short] [-seed N] [-out DIR] [-only ID[,ID...]] [-plot]
//
// The defaults reproduce EXPERIMENTS.md: paper scale, seed 2005, output
// under ./out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"presence/internal/asciiplot"
	"presence/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "probebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("probebench", flag.ContinueOnError)
	var (
		scale = fs.String("scale", "paper", "experiment scale: paper or short")
		seed  = fs.Uint64("seed", 2005, "simulation seed")
		dir   = fs.String("out", "out", "output directory for report.md and .dat series ('' disables)")
		only  = fs.String("only", "", "comma-separated experiment ids (default: all)")
		plot  = fs.Bool("plot", false, "render recorded series as ASCII plots on stdout")
		list  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-18s %s (%s)\n", e.ID, e.Title, e.Artefact)
		}
		return nil
	}
	s := experiments.Scale(*scale)
	if !s.Valid() {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	opts := experiments.Options{Seed: *seed, Scale: s, OutDir: *dir}

	selected := experiments.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# Reproduction report — seed %d, scale %s\n\n", *seed, s)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		fmt.Fprintf(out, "==> %s (%s)\n", e.ID, e.Artefact)
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if opts.OutDir != "" {
			if err := rep.WriteSeries(opts.OutDir); err != nil {
				return err
			}
		}
		text := rep.Format()
		fmt.Fprintln(out, text)
		report.WriteString(text)
		report.WriteString("\n")
		if *plot && len(rep.Series) > 0 {
			fmt.Fprintln(out, asciiplot.Render(rep.Series, asciiplot.Options{
				Title: rep.Title, Width: 100, Height: 24,
			}))
		}
		fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.OutDir, "report.md")
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	return nil
}
