// Command probebench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments) and writes a Markdown
// report and gnuplot-ready .dat files.
//
// Usage:
//
//	probebench [-scale paper|short] [-seed N] [-out DIR] [-only ID[,ID...]] [-plot] [-json [PATH]]
//	           [-fleet] [-fleet-cps N] [-fleet-devices N] [-fleet-window D]
//	probebench -scenario NAME|FILE [-seed N] [-out DIR] [-plot]
//	probebench -list | -list-scenarios
//
// The defaults reproduce EXPERIMENTS.md: paper scale, seed 2005, output
// under ./out. With -json, a machine-readable snapshot of the simulator's
// raw throughput (events/sec, allocs/op from the Fig. 5 churn scenario)
// and of every experiment metric is written to PATH, or to the next free
// BENCH_<n>.json in the working directory when PATH is empty — the
// cross-PR performance trajectory. With -fleet, the internal/fleet
// loopback scale harness also runs (10k control points against loopback
// DCPP devices by default) and its measurements land in the snapshot's
// "fleet" section. With -scenario, one declarative scenario (registered
// name or JSON file, see internal/scenario) runs instead of the suite
// and is summarised as a report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"presence/internal/asciiplot"
	"presence/internal/experiments"
	"presence/internal/fleet"
	"presence/internal/scenario"
	"presence/internal/simrun"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "probebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("probebench", flag.ContinueOnError)
	var (
		scale = fs.String("scale", "paper", "experiment scale: paper or short")
		seed  = fs.Uint64("seed", 2005, "simulation seed")
		dir   = fs.String("out", "out", "output directory for report.md and .dat series ('' disables)")
		only  = fs.String("only", "", "comma-separated experiment ids (default: all)")
		plot  = fs.Bool("plot", false, "render recorded series as ASCII plots on stdout")
		list  = fs.Bool("list", false, "list experiment ids and exit")
		emit  = fs.Bool("json", false, "write benchmark metrics to -jsonpath (or the next free BENCH_<n>.json)")
		jpath = fs.String("jsonpath", "", "path for the -json snapshot ('' = auto-numbered BENCH_<n>.json)")
		scen  = fs.String("scenario", "", "run one declarative scenario (name or JSON file) instead of the experiment suite")
		lscen = fs.Bool("list-scenarios", false, "list registered scenario names and exit")

		fleetRun     = fs.Bool("fleet", false, "also run the fleet loopback scale harness (results land in the -json snapshot)")
		fleetCPs     = fs.Int("fleet-cps", 10_000, "control points for -fleet")
		fleetDevices = fs.Int("fleet-devices", 8, "loopback devices for -fleet")
		fleetWindow  = fs.Duration("fleet-window", 5*time.Second, "steady-state measurement window for -fleet")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-18s %s (%s)\n", e.ID, e.Title, e.Artefact)
		}
		return nil
	}
	if *lscen {
		for _, s := range scenario.All() {
			fmt.Fprintf(out, "%-20s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if *scen != "" {
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, conflicting := range []string{"scale", "only", "json", "jsonpath", "fleet", "fleet-cps", "fleet-devices", "fleet-window"} {
			if explicit[conflicting] {
				return fmt.Errorf("-%s applies to the experiment suite, not to -scenario (the scenario defines its own horizon)", conflicting)
			}
		}
		spec, err := scenario.Resolve(*scen)
		if err != nil {
			return err
		}
		rep, err := experiments.ScenarioReport(spec, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep.Format())
		if *plot && len(rep.Series) > 0 {
			fmt.Fprintln(out, asciiplot.Render(rep.Series, asciiplot.Options{
				Title: rep.Title, Width: 100, Height: 24,
			}))
		}
		if *dir != "" {
			if err := rep.WriteSeries(*dir); err != nil {
				return err
			}
			fmt.Fprintf(out, "series written under %s\n", *dir)
		}
		return nil
	}
	s := experiments.Scale(*scale)
	if !s.Valid() {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	opts := experiments.Options{Seed: *seed, Scale: s, OutDir: *dir}

	selected := experiments.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# Reproduction report — seed %d, scale %s\n\n", *seed, s)
	start := time.Now()
	metricsByExperiment := make(map[string]map[string]float64)
	for _, e := range selected {
		t0 := time.Now()
		fmt.Fprintf(out, "==> %s (%s)\n", e.ID, e.Artefact)
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if opts.OutDir != "" {
			if err := rep.WriteSeries(opts.OutDir); err != nil {
				return err
			}
		}
		ms := make(map[string]float64, len(rep.Metrics))
		for _, m := range rep.Metrics {
			ms[m.Name] = m.Got
		}
		metricsByExperiment[e.ID] = ms
		text := rep.Format()
		fmt.Fprintln(out, text)
		report.WriteString(text)
		report.WriteString("\n")
		if *plot && len(rep.Series) > 0 {
			fmt.Fprintln(out, asciiplot.Render(rep.Series, asciiplot.Options{
				Title: rep.Title, Width: 100, Height: 24,
			}))
		}
		fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
	var fleetRes *fleet.ScaleResult
	if *fleetRun {
		fmt.Fprintf(out, "==> fleet loopback scale (%d CPs, %d devices, %v window)\n",
			*fleetCPs, *fleetDevices, *fleetWindow)
		res, err := fleet.LoopbackScale(fleet.ScaleOptions{
			CPs:     *fleetCPs,
			Devices: *fleetDevices,
			Window:  *fleetWindow,
		})
		if err != nil {
			return fmt.Errorf("fleet scale: %w", err)
		}
		fleetRes = &res
		fmt.Fprintf(out, "    %d CPs steady on %d shard goroutine(s) after %.2fs; %.1f probes/s (budget %.1f/s); wheel depth %d; %d goroutines total\n",
			res.SteadyCPs, res.Shards, res.JoinSeconds,
			res.SteadyProbesPerSec, res.BudgetProbesPerSec,
			res.WheelDepth, res.Goroutines)
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.OutDir, "report.md")
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	if *emit {
		path, err := writeJSONSnapshot(*jpath, *seed, s, metricsByExperiment, fleetRes)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "benchmark snapshot written to %s\n", path)
	}
	return nil
}

// benchSnapshot is the schema of the BENCH_<n>.json files: one throughput
// measurement of the raw event loop plus every experiment metric (and,
// with -fleet, the UDP fleet scale measurements), so PRs can be compared
// mechanically.
type benchSnapshot struct {
	Generated  string                        `json:"generated"`
	Seed       uint64                        `json:"seed"`
	Scale      string                        `json:"scale"`
	Throughput throughputStats               `json:"throughput"`
	Fleet      *fleet.ScaleResult            `json:"fleet,omitempty"`
	Metrics    map[string]map[string]float64 `json:"metrics"`
}

type throughputStats struct {
	// EventsPerSec is simulator events executed per wall-clock second in
	// the Fig. 5 churn scenario (DCPP, 60 simulated seconds per op).
	EventsPerSec float64 `json:"events_per_sec"`
	EventsPerOp  float64 `json:"events_per_op"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SimSecPerSec float64 `json:"sim_seconds_per_wall_second"`
}

// measureThroughput reruns BenchmarkSimulationThroughput's scenario under
// testing.Benchmark so the CLI reports the same numbers as `go test
// -bench`.
func measureThroughput() (throughputStats, error) {
	var totalEvents uint64
	var iterations int
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		// Each benchmark attempt starts fresh; only the final attempt's
		// totals survive, matching res.N.
		totalEvents, iterations = 0, b.N
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := simrun.NewWorld(simrun.Config{Protocol: simrun.ProtocolDCPP, Seed: uint64(i)})
			if err != nil {
				benchErr = err
				return
			}
			if err := w.StartChurn(simrun.DefaultUniformChurn()); err != nil {
				benchErr = err
				return
			}
			w.Run(60 * time.Second)
			totalEvents += w.Sim().Executed()
		}
	})
	if benchErr != nil {
		return throughputStats{}, benchErr
	}
	ns := res.NsPerOp()
	st := throughputStats{
		NsPerOp:     ns,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if iterations > 0 {
		// Mean events per op over all iterations, so the ratio against
		// the mean ns/op is consistent (seeds vary per iteration).
		st.EventsPerOp = float64(totalEvents) / float64(iterations)
	}
	if ns > 0 {
		st.EventsPerSec = st.EventsPerOp / (float64(ns) / 1e9)
		st.SimSecPerSec = 60 / (float64(ns) / 1e9)
	}
	return st, nil
}

// writeJSONSnapshot measures throughput and writes the snapshot to path,
// or to the next free BENCH_<n>.json when path is empty.
func writeJSONSnapshot(path string, seed uint64, scale experiments.Scale, metrics map[string]map[string]float64, fleetRes *fleet.ScaleResult) (string, error) {
	tp, err := measureThroughput()
	if err != nil {
		return "", err
	}
	snap := benchSnapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Seed:       seed,
		Scale:      string(scale),
		Throughput: tp,
		Fleet:      fleetRes,
		Metrics:    metrics,
	}
	if path == "" {
		for n := 1; ; n++ {
			candidate := fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(candidate); os.IsNotExist(err) {
				path = candidate
				break
			}
		}
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}
