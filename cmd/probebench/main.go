// Command probebench regenerates every table and figure of the paper's
// evaluation (plus the extension experiments) and writes a Markdown
// report and gnuplot-ready .dat files.
//
// Usage:
//
//	probebench [-scale paper|short] [-seed N] [-out DIR] [-only ID[,ID...]] [-plot] [-json [PATH]]
//	           [-fleet] [-fleet-cps N] [-fleet-shards N] [-fleet-devices N] [-fleet-window D]
//	           [-fleet-rate F] [-fleet-single] [-fleet-reuseport] [-fleet-sweep SHARDSxCPSxRATE[s][m][r],...]
//	           [-fleet-scaling SHARDS[-SHARDS...]xCPSxRATE[s][m][r][@P],...] [-fleet-profile DIR]
//	           [-conformance] [-conformance-seed N] [-conformance-scenario NAME]
//	           [-adversarial] [-adversarial-seed N]
//	probebench -scenario NAME|FILE [-seed N] [-out DIR] [-plot]
//	probebench -compare OLD.json NEW.json [-compare-max-slowdown F] [-compare-max-alloc-growth F]
//	probebench -list | -list-scenarios
//
// The defaults reproduce EXPERIMENTS.md: paper scale, seed 2005, output
// under ./out. With -json, a machine-readable snapshot of the simulator's
// raw throughput (events/sec, allocs/op from the Fig. 5 churn scenario)
// and of every experiment metric is written to PATH, or to the next free
// BENCH_<n>.json in the working directory when PATH is empty — the
// cross-PR performance trajectory (every -json snapshot also carries a
// "shard_hot_path" section: BenchmarkShardHotPath's ns and allocs per
// op for the batch and single-datagram paths, gated by -compare, an
// "observability" section measuring the hot path with the telemetry
// plane on vs off — -compare requires the metrics-on side to stay at 0
// allocs/op — and an "auth" section measuring it with wire v2 frame
// authentication (HMAC tags signed and verified per exchange) on vs
// off, gated the same way: the authenticated side must also stay at 0
// allocs/op). With
// -fleet, the internal/fleet loopback scale harness also runs (10k
// control points against loopback DCPP devices by default; -fleet-rate
// switches to the high-rate naive mode) and its measurements land in
// the snapshot's "fleet.scale" section; -fleet-sweep appends high-rate
// entries ("s" = single-datagram path, "m" = memnet transport, "r" =
// SO_REUSEPORT shared-port layout) to "fleet.sweep". -fleet-scaling runs
// the multi-core scaling study: each spec names a list of shard counts
// ("1-2-4"), CPs and per-CP rate, with the same suffix letters plus
// "@P" to pin GOMAXPROCS, and every shard count runs once; the runs and
// the derived shards→packets/s speedup curve land in the snapshot's
// "fleet.scaling" section, which -compare re-gates (every run must keep
// all its CPs alive with zero decode errors). -fleet-profile writes
// mutex and block profiles covering the fleet runs to DIR, for auditing
// shard-loop contention. With -conformance, the simulator-vs-fleet
// differential battery (internal/conformance) runs and its results land
// in the snapshot's "conformance" section; any failing case makes the
// command exit non-zero. With -adversarial, the adversarial battery
// (internal/conformance's adv-* scenarios) runs twice — hardened and
// unhardened — followed by the adv-auth-* battery (frame tampering,
// forged tags, tag stripping, version downgrade) with authentication
// on and off, and all four sides land in the snapshot's "adversarial"
// section; a hardened or authenticated case with any false verdict
// exits non-zero, and -compare re-gates both when diffing snapshots.
// With -scenario,
// one declarative scenario
// (registered name or JSON file, see internal/scenario) runs instead of
// the suite and is summarised as a report. With -compare, two previously
// written snapshots are diffed and the command exits non-zero on a
// throughput or allocation regression beyond the configured limits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"presence/internal/asciiplot"
	"presence/internal/conformance"
	"presence/internal/experiments"
	"presence/internal/fleet"
	"presence/internal/memnet"
	"presence/internal/scenario"
	"presence/internal/simrun"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "probebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("probebench", flag.ContinueOnError)
	var (
		scale = fs.String("scale", "paper", "experiment scale: paper or short")
		seed  = fs.Uint64("seed", 2005, "simulation seed")
		dir   = fs.String("out", "out", "output directory for report.md and .dat series ('' disables)")
		only  = fs.String("only", "", "comma-separated experiment ids (default: all)")
		plot  = fs.Bool("plot", false, "render recorded series as ASCII plots on stdout")
		list  = fs.Bool("list", false, "list experiment ids and exit")
		emit  = fs.Bool("json", false, "write benchmark metrics to -jsonpath (or the next free BENCH_<n>.json)")
		jpath = fs.String("jsonpath", "", "path for the -json snapshot ('' = auto-numbered BENCH_<n>.json)")
		scen  = fs.String("scenario", "", "run one declarative scenario (name or JSON file) instead of the experiment suite")
		lscen = fs.Bool("list-scenarios", false, "list registered scenario names and exit")

		fleetRun     = fs.Bool("fleet", false, "also run the fleet loopback scale harness (results land in the -json snapshot)")
		fleetCPs     = fs.Int("fleet-cps", 10_000, "control points for -fleet")
		fleetShards  = fs.Int("fleet-shards", 0, "CP-fleet shard count for -fleet (0 = GOMAXPROCS)")
		fleetDevices = fs.Int("fleet-devices", 8, "loopback devices for -fleet")
		fleetWindow  = fs.Duration("fleet-window", 5*time.Second, "steady-state measurement window for -fleet")
		fleetRate    = fs.Float64("fleet-rate", 0, "per-CP probe budget (probes/s) for -fleet: high-rate naive mode instead of DCPP (0 = DCPP)")
		fleetSingle  = fs.Bool("fleet-single", false, "run -fleet on the one-datagram-per-syscall fallback path")
		fleetReuse   = fs.Bool("fleet-reuseport", false, "run -fleet on the SO_REUSEPORT shared-port layout (kernel flow-hash demux across shard sockets)")
		fleetSweep   = fs.String("fleet-sweep", "", "comma-separated high-rate entries SHARDSxCPSxRATE[s][m][r] (s = single-datagram path, m = memnet transport, r = SO_REUSEPORT), run after -fleet and recorded in the snapshot's fleet sweep")
		fleetScaling = fs.String("fleet-scaling", "", "comma-separated scaling specs SHARDS[-SHARDS...]xCPSxRATE[s][m][r][@P] (@P pins GOMAXPROCS); each shard count runs once and the shards→packets/s curve lands in the snapshot's fleet scaling section")
		fleetProfile = fs.String("fleet-profile", "", "directory for mutex/block profiles covering the fleet runs ('' disables)")

		confRun  = fs.Bool("conformance", false, "also run the simulator-vs-fleet conformance battery (internal/conformance); a failing case exits non-zero")
		confSeed = fs.Uint64("conformance-seed", 2005, "seed for -conformance")
		confOnly = fs.String("conformance-scenario", "", "run a single conformance case by scenario name (default: all)")

		advRun  = fs.Bool("adversarial", false, "also run the adversarial battery hardened and unhardened, plus the adv-auth-* battery authenticated and not; a hardened or authenticated false verdict exits non-zero")
		advSeed = fs.Uint64("adversarial-seed", 2005, "seed for -adversarial")

		compare  = fs.Bool("compare", false, "compare two BENCH_<n>.json snapshots (probebench -compare OLD NEW) and exit non-zero on regression")
		cmpSlow  = fs.Float64("compare-max-slowdown", 1.0, "-compare: max relative ns/op growth (1.0 = +100%; 0 disables the wall-time gate — it is machine-dependent)")
		cmpAlloc = fs.Float64("compare-max-alloc-growth", 0.10, "-compare: max relative allocs/op growth (machine-independent; the strict gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		paths := fs.Args()
		if len(paths) != 2 {
			return fmt.Errorf("-compare needs exactly two snapshot paths, got %d", len(paths))
		}
		return runCompare(out, paths[0], paths[1], *cmpSlow, *cmpAlloc)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-18s %s (%s)\n", e.ID, e.Title, e.Artefact)
		}
		return nil
	}
	if *lscen {
		for _, s := range scenario.All() {
			fmt.Fprintf(out, "%-20s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if *scen != "" {
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, conflicting := range []string{"scale", "only", "json", "jsonpath", "fleet", "fleet-cps", "fleet-shards", "fleet-devices", "fleet-window", "fleet-rate", "fleet-single", "fleet-reuseport", "fleet-sweep", "fleet-scaling", "fleet-profile", "conformance", "conformance-seed", "conformance-scenario", "adversarial", "adversarial-seed"} {
			if explicit[conflicting] {
				return fmt.Errorf("-%s applies to the experiment suite, not to -scenario (the scenario defines its own horizon)", conflicting)
			}
		}
		spec, err := scenario.Resolve(*scen)
		if err != nil {
			return err
		}
		rep, err := experiments.ScenarioReport(spec, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep.Format())
		if *plot && len(rep.Series) > 0 {
			fmt.Fprintln(out, asciiplot.Render(rep.Series, asciiplot.Options{
				Title: rep.Title, Width: 100, Height: 24,
			}))
		}
		if *dir != "" {
			if err := rep.WriteSeries(*dir); err != nil {
				return err
			}
			fmt.Fprintf(out, "series written under %s\n", *dir)
		}
		return nil
	}
	s := experiments.Scale(*scale)
	if !s.Valid() {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	opts := experiments.Options{Seed: *seed, Scale: s, OutDir: *dir}

	selected := experiments.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}
	// Resolve the conformance battery up front: a typo in
	// -conformance-scenario must not surface only after the experiment
	// suite has run for minutes.
	var confCases []conformance.Case
	if *confRun {
		confCases = conformance.DefaultCases()
		if *confOnly != "" {
			var picked []conformance.Case
			for _, c := range confCases {
				if c.Scenario == *confOnly {
					picked = append(picked, c)
				}
			}
			if len(picked) == 0 {
				return fmt.Errorf("unknown conformance scenario %q (battery: %v)", *confOnly, conformanceNames(confCases))
			}
			confCases = picked
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# Reproduction report — seed %d, scale %s\n\n", *seed, s)
	start := time.Now()
	metricsByExperiment := make(map[string]map[string]float64)
	for _, e := range selected {
		t0 := time.Now()
		fmt.Fprintf(out, "==> %s (%s)\n", e.ID, e.Artefact)
		rep, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if opts.OutDir != "" {
			if err := rep.WriteSeries(opts.OutDir); err != nil {
				return err
			}
		}
		ms := make(map[string]float64, len(rep.Metrics))
		for _, m := range rep.Metrics {
			ms[m.Name] = m.Got
		}
		metricsByExperiment[e.ID] = ms
		text := rep.Format()
		fmt.Fprintln(out, text)
		report.WriteString(text)
		report.WriteString("\n")
		if *plot && len(rep.Series) > 0 {
			fmt.Fprintln(out, asciiplot.Render(rep.Series, asciiplot.Options{
				Title: rep.Title, Width: 100, Height: 24,
			}))
		}
		fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
	if *fleetProfile != "" {
		// Profile only the fleet runs: contention in the shard loops is
		// what the audit is after, not the single-threaded simulator's.
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(int(100 * time.Microsecond))
		defer func() {
			runtime.SetMutexProfileFraction(0)
			runtime.SetBlockProfileRate(0)
		}()
	}
	var fleetSec *fleetSection
	if *fleetRun {
		fmt.Fprintf(out, "==> fleet loopback scale (%d CPs, %d shard(s), %d devices, %v window)\n",
			*fleetCPs, *fleetShards, *fleetDevices, *fleetWindow)
		res, err := fleet.LoopbackScale(fleet.ScaleOptions{
			CPs:                 *fleetCPs,
			Shards:              *fleetShards,
			Devices:             *fleetDevices,
			Window:              *fleetWindow,
			ProbeHz:             *fleetRate,
			ForceSingleDatagram: *fleetSingle,
			ReusePort:           *fleetReuse,
		})
		if err != nil {
			return fmt.Errorf("fleet scale: %w", err)
		}
		fleetSec = &fleetSection{Scale: &res}
		fmt.Fprintf(out, "    %d CPs steady on %d shard goroutine(s) after %.2fs; %.1f probes/s (budget %.1f/s); %.0f packets/s; batch fill %.1f in / %.1f out; wheel depth %d; %d goroutines total\n",
			res.SteadyCPs, res.Shards, res.JoinSeconds,
			res.SteadyProbesPerSec, res.BudgetProbesPerSec, res.SteadyPacketsPerSec,
			res.BatchFillMeanIn, res.BatchFillMeanOut,
			res.WheelDepth, res.Goroutines)
	}
	if *fleetSweep != "" {
		entries, err := parseFleetSweep(*fleetSweep)
		if err != nil {
			return err
		}
		if fleetSec == nil {
			fleetSec = &fleetSection{}
		}
		for _, opts := range entries {
			res, err := runSweepEntry(out, "fleet sweep", opts, *fleetWindow)
			if err != nil {
				return fmt.Errorf("fleet sweep: %w", err)
			}
			fleetSec.Sweep = append(fleetSec.Sweep, res)
		}
	}
	if *fleetScaling != "" {
		specs, err := parseFleetScaling(*fleetScaling)
		if err != nil {
			return err
		}
		if fleetSec == nil {
			fleetSec = &fleetSection{}
		}
		scaling := &scalingSection{}
		for _, e := range specs {
			res, err := runSweepEntry(out, "fleet scaling", e, *fleetWindow)
			if err != nil {
				return fmt.Errorf("fleet scaling: %w", err)
			}
			scaling.Runs = append(scaling.Runs, res)
		}
		scaling.Curve = scalingCurve(scaling.Runs)
		for _, p := range scaling.Curve {
			fmt.Fprintf(out, "    scaling: %d shard(s) @ GOMAXPROCS %d: %.0f packets/s (%.2fx vs %d shard(s)), imbalance %.2f, %.2f syscalls/packet\n",
				p.Shards, p.GoMaxProcs, p.PacketsPerSec, p.Speedup, p.BaseShards, p.ShardImbalance, p.SyscallsPerPacket)
		}
		fleetSec.Scaling = scaling
	}
	if *fleetProfile != "" && fleetSec != nil {
		if err := writeFleetProfiles(*fleetProfile); err != nil {
			return err
		}
		fmt.Fprintf(out, "mutex/block profiles written under %s\n", *fleetProfile)
	}
	var confResults []*conformance.Result
	if *confRun {
		failed := 0
		for _, c := range confCases {
			fmt.Fprintf(out, "==> conformance %s (seed %d)\n", c.Scenario, *confSeed)
			t0 := time.Now()
			res, err := conformance.Run(c, *confSeed)
			if err != nil {
				return fmt.Errorf("conformance %s: %w", c.Scenario, err)
			}
			confResults = append(confResults, res)
			fmt.Fprintln(out, res.Format())
			fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
			report.WriteString(res.Format())
			report.WriteString("\n")
			if !res.Pass {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("conformance: %d of %d cases failed", failed, len(confCases))
		}
	}
	var advSec *adversarialSection
	if *advRun {
		advSec = &adversarialSection{}
		for _, harden := range []bool{true, false} {
			mode := "hardened"
			if !harden {
				mode = "unhardened"
			}
			fmt.Fprintf(out, "==> adversarial battery, %s (seed %d)\n", mode, *advSeed)
			t0 := time.Now()
			results, err := conformance.RunAdversarialSuite(*advSeed, harden)
			if err != nil {
				return fmt.Errorf("adversarial (%s): %w", mode, err)
			}
			for _, res := range results {
				fmt.Fprintln(out, res.Format())
				report.WriteString(res.Format())
				report.WriteString("\n")
			}
			fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
			if harden {
				advSec.Hardened = results
			} else {
				advSec.Unhardened = results
			}
		}
		for _, auth := range []bool{true, false} {
			mode := "authenticated"
			if !auth {
				mode = "unauthenticated"
			}
			fmt.Fprintf(out, "==> auth adversarial battery, %s (seed %d)\n", mode, *advSeed)
			t0 := time.Now()
			results, err := conformance.RunAuthAdversarialSuite(*advSeed, auth)
			if err != nil {
				return fmt.Errorf("auth adversarial (%s): %w", mode, err)
			}
			for _, res := range results {
				fmt.Fprintln(out, res.Format())
				report.WriteString(res.Format())
				report.WriteString("\n")
			}
			fmt.Fprintf(out, "    (%s)\n\n", time.Since(t0).Round(time.Millisecond))
			if auth {
				advSec.AuthAuthenticated = results
			} else {
				advSec.AuthUnauthenticated = results
			}
		}
		if fails := append(gateAdversarial(advSec.Hardened), gateAdversarial(advSec.AuthAuthenticated)...); len(fails) > 0 {
			return fmt.Errorf("adversarial: %s", strings.Join(fails, "; "))
		}
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.OutDir, "report.md")
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", path)
	}
	if *emit {
		path, err := writeJSONSnapshot(*jpath, *seed, s, metricsByExperiment, fleetSec, confResults, advSec)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "benchmark snapshot written to %s\n", path)
	}
	return nil
}

// conformanceNames lists the battery's scenario names.
func conformanceNames(cases []conformance.Case) []string {
	names := make([]string, len(cases))
	for i, c := range cases {
		names[i] = c.Scenario
	}
	return names
}

// sweepEntry is one parsed -fleet-sweep or -fleet-scaling element.
type sweepEntry struct {
	opts   fleet.ScaleOptions
	memnet bool
}

// trimSweepSuffixes strips the trailing option letters shared by the
// sweep and scaling grammars: "s" single-datagram, "m" memnet
// transport, "r" SO_REUSEPORT layout (with memnet: shard-aware routing
// over distinct in-memory addresses — the flow-hash demux itself is
// kernel behaviour, emulated and pinned by the equivalence tests).
func trimSweepSuffixes(part string, e *sweepEntry) string {
	for {
		switch {
		case strings.HasSuffix(part, "s"):
			e.opts.ForceSingleDatagram = true
			part = strings.TrimSuffix(part, "s")
		case strings.HasSuffix(part, "m"):
			e.memnet = true
			part = strings.TrimSuffix(part, "m")
		case strings.HasSuffix(part, "r"):
			e.opts.ReusePort = true
			part = strings.TrimSuffix(part, "r")
		default:
			return part
		}
	}
}

// parseFleetSweep parses "SHARDSxCPSxRATE[s][m][r],..." — e.g.
// "1x20000x10,1x20000x10s,1x20000x10m,2x20000x10r": shards, CPs,
// probes/s per CP, on the batch or single path over kernel UDP or
// memnet, optionally on the SO_REUSEPORT shared-port layout.
func parseFleetSweep(spec string) ([]sweepEntry, error) {
	var out []sweepEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e := sweepEntry{}
		part = trimSweepSuffixes(part, &e)
		var rate float64
		var shards, cps int
		if _, err := fmt.Sscanf(part, "%dx%dx%g", &shards, &cps, &rate); err != nil {
			return nil, fmt.Errorf("-fleet-sweep entry %q: want SHARDSxCPSxRATE[s][m][r]: %v", part, err)
		}
		e.opts.Shards, e.opts.CPs, e.opts.ProbeHz = shards, cps, rate
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet-sweep %q holds no entries", spec)
	}
	return out, nil
}

// parseFleetScaling parses "SHARDS[-SHARDS...]xCPSxRATE[s][m][r][@P],..."
// — e.g. "1-2-4x20000x25r@4": run 1, 2 and 4 shards of 20k CPs at 25
// probes/s each on the SO_REUSEPORT layout with GOMAXPROCS pinned to 4.
// Each shard count becomes one scaling run.
func parseFleetScaling(spec string) ([]sweepEntry, error) {
	var out []sweepEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		proto := sweepEntry{}
		if at := strings.LastIndexByte(part, '@'); at >= 0 {
			procs, err := strconv.Atoi(part[at+1:])
			if err != nil || procs < 1 {
				return nil, fmt.Errorf("-fleet-scaling entry %q: @P needs a positive GOMAXPROCS", part)
			}
			proto.opts.GoMaxProcs = procs
			part = part[:at]
		}
		part = trimSweepSuffixes(part, &proto)
		fields := strings.SplitN(part, "x", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("-fleet-scaling entry %q: want SHARDS[-SHARDS...]xCPSxRATE[s][m][r][@P]", part)
		}
		cps, err := strconv.Atoi(fields[1])
		if err != nil || cps < 1 {
			return nil, fmt.Errorf("-fleet-scaling entry %q: bad CP count %q", part, fields[1])
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("-fleet-scaling entry %q: bad rate %q", part, fields[2])
		}
		for _, s := range strings.Split(fields[0], "-") {
			shards, err := strconv.Atoi(s)
			if err != nil || shards < 1 {
				return nil, fmt.Errorf("-fleet-scaling entry %q: bad shard count %q", part, s)
			}
			e := proto
			e.opts.Shards, e.opts.CPs, e.opts.ProbeHz = shards, cps, rate
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet-scaling %q holds no entries", spec)
	}
	return out, nil
}

// runSweepEntry runs one high-rate LoopbackScale entry and narrates it.
func runSweepEntry(out io.Writer, what string, e sweepEntry, window time.Duration) (fleet.ScaleResult, error) {
	transport := "udp"
	if e.memnet {
		transport = "memnet"
		net := memnet.New(memnet.Faults{})
		e.opts.Transport = fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
	}
	e.opts.Window = window
	fmt.Fprintf(out, "==> %s %dx%dx%g %s single=%v reuseport=%v gomaxprocs=%d\n",
		what, e.opts.Shards, e.opts.CPs, e.opts.ProbeHz, transport, e.opts.ForceSingleDatagram, e.opts.ReusePort, e.opts.GoMaxProcs)
	res, err := fleet.LoopbackScale(e.opts)
	if err != nil {
		return res, err
	}
	res.Transport = transport
	fmt.Fprintf(out, "    %d CPs steady; %.0f probes/s of %.0f offered; %.0f packets/s; batch fill %.1f in / %.1f out; syscalls %d in / %d out; imbalance %.2f; handoffs %d in / %d out\n",
		res.SteadyCPs, res.SteadyProbesPerSec, res.BudgetProbesPerSec, res.SteadyPacketsPerSec,
		res.BatchFillMeanIn, res.BatchFillMeanOut, res.SyscallsIn, res.SyscallsOut,
		res.ShardImbalance, res.HandoffsIn, res.HandoffsOut)
	return res, nil
}

// writeFleetProfiles dumps the accumulated mutex and block profiles,
// which at this point cover every fleet scale/sweep/scaling run.
func writeFleetProfiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range []string{"mutex", "block"} {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, name+".pb.gz"))
		if err != nil {
			return err
		}
		err = p.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s profile: %w", name, err)
		}
	}
	return nil
}

// benchSnapshot is the schema of the BENCH_<n>.json files: one throughput
// measurement of the raw event loop plus every experiment metric (and,
// with -fleet, the UDP fleet scale measurements), so PRs can be compared
// mechanically.
type benchSnapshot struct {
	Generated  string          `json:"generated"`
	Seed       uint64          `json:"seed"`
	Scale      string          `json:"scale"`
	Throughput throughputStats `json:"throughput"`
	// HotPath pins the shard packet path (BenchmarkShardHotPath, batch
	// and single-datagram variants); -compare gates its allocs/op like
	// the simulator's.
	HotPath *hotPathSection `json:"shard_hot_path,omitempty"`
	// Observability measures what the telemetry plane (per-shard
	// histograms + flight recorder) costs on the hot path; -compare
	// requires the metrics-on side to stay at 0 allocs/op.
	Observability *observabilitySection `json:"observability,omitempty"`
	// Auth measures what wire v2 frame authentication (HMAC-SHA256
	// tags, sign + verify per exchange) costs on the hot path; -compare
	// requires the auth-on side to stay at 0 allocs/op.
	Auth        *authSection                  `json:"auth,omitempty"`
	Fleet       *fleetSection                 `json:"fleet,omitempty"`
	Conformance []*conformance.Result         `json:"conformance,omitempty"`
	Adversarial *adversarialSection           `json:"adversarial,omitempty"`
	Metrics     map[string]map[string]float64 `json:"metrics"`
}

// adversarialSection is the snapshot's robustness block: the adv-*
// battery run with the fleet defenses on and off, and the adv-auth-*
// battery (frame tampering, forged tags, tag stripping, version
// downgrade) with frame authentication on and off. The hardened and
// authenticated sides are gates (zero false verdicts, re-checked by
// -compare); the unhardened/unauthenticated sides document what the
// attacks do to an undefended runtime.
type adversarialSection struct {
	Hardened            []*conformance.AdvResult `json:"hardened,omitempty"`
	Unhardened          []*conformance.AdvResult `json:"unhardened,omitempty"`
	AuthAuthenticated   []*conformance.AdvResult `json:"auth_authenticated,omitempty"`
	AuthUnauthenticated []*conformance.AdvResult `json:"auth_unauthenticated,omitempty"`
}

// gateAdversarial re-derives the hardened pass condition from a
// snapshot section, so -compare gates committed snapshots the same way
// the live run was gated.
func gateAdversarial(hardened []*conformance.AdvResult) []string {
	var fails []string
	for _, r := range hardened {
		if r.Adv.FalseAbsent != 0 || r.Adv.FalsePresent != 0 || len(r.Violations) != 0 || !r.Pass {
			fails = append(fails, fmt.Sprintf("hardened %s: %d false-ABSENT, %d false-PRESENT, %d violations",
				r.Scenario, r.Adv.FalseAbsent, r.Adv.FalsePresent, len(r.Violations)))
		}
	}
	return fails
}

// fleetSection is the snapshot's fleet block: the protocol-budget
// scale run, any high-rate sweep entries, and the multi-core scaling
// study. (Snapshots before PR 5 stored a bare ScaleResult here; old
// files still load — -compare only gates the sections present.)
type fleetSection struct {
	Scale   *fleet.ScaleResult  `json:"scale,omitempty"`
	Sweep   []fleet.ScaleResult `json:"sweep,omitempty"`
	Scaling *scalingSection     `json:"scaling,omitempty"`
}

// scalingSection is the multi-core scaling study: the raw runs plus the
// derived shards→packets/s curve. Speedups are relative to the
// lowest-shard-count run of the same (CPs, rate, path, transport,
// GOMAXPROCS pin) family, so one section can carry several families.
type scalingSection struct {
	Runs  []fleet.ScaleResult `json:"runs"`
	Curve []scalingPoint      `json:"curve"`
}

// scalingPoint is one point of the derived curve.
type scalingPoint struct {
	Shards            int     `json:"shards"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	PacketsPerSec     float64 `json:"packets_per_sec"`
	BaseShards        int     `json:"base_shards"`
	Speedup           float64 `json:"speedup"`
	ShardImbalance    float64 `json:"shard_imbalance"`
	SyscallsPerPacket float64 `json:"syscalls_per_packet"`
}

// scalingCurve derives speedups from the raw runs, grouping runs into
// families that differ only in shard count.
func scalingCurve(runs []fleet.ScaleResult) []scalingPoint {
	type base struct {
		shards int
		pps    float64
	}
	family := func(r fleet.ScaleResult) string {
		return fmt.Sprintf("%dx%g|%v|%v|%s|%d", r.CPs, r.ProbeHz, r.SingleDatagram, r.ReusePort, r.Transport, r.GoMaxProcs)
	}
	bases := make(map[string]base)
	for _, r := range runs {
		k := family(r)
		if b, ok := bases[k]; !ok || r.Shards < b.shards {
			bases[k] = base{r.Shards, r.SteadyPacketsPerSec}
		}
	}
	pts := make([]scalingPoint, len(runs))
	for i, r := range runs {
		b := bases[family(r)]
		p := scalingPoint{
			Shards:            r.Shards,
			GoMaxProcs:        r.GoMaxProcs,
			PacketsPerSec:     r.SteadyPacketsPerSec,
			BaseShards:        b.shards,
			ShardImbalance:    r.ShardImbalance,
			SyscallsPerPacket: r.SyscallsPerPacket,
		}
		if b.pps > 0 {
			p.Speedup = r.SteadyPacketsPerSec / b.pps
		}
		pts[i] = p
	}
	return pts
}

// gateScaling re-derives the scaling study's health condition from a
// snapshot section: every run kept all its CPs alive and decoded every
// frame it accepted. Throughput itself is machine-dependent and not
// gated, like the wall-clock side of the simulator comparison.
func gateScaling(sec *scalingSection) []string {
	var fails []string
	for _, r := range sec.Runs {
		if r.SteadyCPs != r.CPs || r.DecodeErrors != 0 {
			fails = append(fails, fmt.Sprintf("scaling %dx%dx%g (%s): %d of %d CPs steady, %d decode errors",
				r.Shards, r.CPs, r.ProbeHz, r.Transport, r.SteadyCPs, r.CPs, r.DecodeErrors))
		}
	}
	return fails
}

// hotPathSection holds the shard hot-path measurements for both I/O
// paths.
type hotPathSection struct {
	Batch  fleet.HotPathStats `json:"batch"`
	Single fleet.HotPathStats `json:"single"`
}

type throughputStats struct {
	// EventsPerSec is simulator events executed per wall-clock second in
	// the Fig. 5 churn scenario (DCPP, 60 simulated seconds per op).
	EventsPerSec float64 `json:"events_per_sec"`
	EventsPerOp  float64 `json:"events_per_op"`
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SimSecPerSec float64 `json:"sim_seconds_per_wall_second"`
}

// measureThroughput reruns BenchmarkSimulationThroughput's scenario under
// testing.Benchmark so the CLI reports the same numbers as `go test
// -bench`.
func measureThroughput() (throughputStats, error) {
	var totalEvents uint64
	var iterations int
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		// Each benchmark attempt starts fresh; only the final attempt's
		// totals survive, matching res.N.
		totalEvents, iterations = 0, b.N
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w, err := simrun.NewWorld(simrun.Config{Protocol: simrun.ProtocolDCPP, Seed: uint64(i)})
			if err != nil {
				benchErr = err
				return
			}
			if err := w.StartChurn(simrun.DefaultUniformChurn()); err != nil {
				benchErr = err
				return
			}
			w.Run(60 * time.Second)
			totalEvents += w.Sim().Executed()
		}
	})
	if benchErr != nil {
		return throughputStats{}, benchErr
	}
	ns := res.NsPerOp()
	st := throughputStats{
		NsPerOp:     ns,
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if iterations > 0 {
		// Mean events per op over all iterations, so the ratio against
		// the mean ns/op is consistent (seeds vary per iteration).
		st.EventsPerOp = float64(totalEvents) / float64(iterations)
	}
	if ns > 0 {
		st.EventsPerSec = st.EventsPerOp / (float64(ns) / 1e9)
		st.SimSecPerSec = 60 / (float64(ns) / 1e9)
	}
	return st, nil
}

// benchHotPath runs the shard hot-path harness under testing.Benchmark
// with the given options — the same numbers as `go test -bench
// BenchmarkShardHotPath` for the matching configuration.
func benchHotPath(opts fleet.HotPathOptions) (fleet.HotPathStats, error) {
	var (
		setupErr   error
		cps, perOp int
	)
	res := testing.Benchmark(func(b *testing.B) {
		h, err := fleet.NewHotPathBench(opts)
		if err != nil {
			setupErr = err
			return
		}
		defer h.Close()
		cps, perOp = h.CPs(), h.PacketsPerStep()
		for i := 0; i < 10; i++ {
			h.Step() // warm-up, as in TestShardHotPathZeroAlloc
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Step()
		}
	})
	if setupErr != nil {
		return fleet.HotPathStats{}, setupErr
	}
	st := fleet.HotPathStats{
		CPs:          cps,
		NsPerOp:      res.NsPerOp(),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		PacketsPerOp: perOp,
	}
	if ns := res.NsPerOp(); ns > 0 {
		st.PacketsPerSec = float64(perOp) / (float64(ns) / 1e9)
	}
	return st, nil
}

// measureHotPath pins the shard packet path for both I/O paths, with
// telemetry in its default (on) state.
func measureHotPath() (*hotPathSection, error) {
	batch, err := benchHotPath(fleet.HotPathOptions{})
	if err != nil {
		return nil, err
	}
	single, err := benchHotPath(fleet.HotPathOptions{ForceSingleDatagram: true})
	if err != nil {
		return nil, err
	}
	return &hotPathSection{Batch: batch, Single: single}, nil
}

// observabilitySection is the snapshot's telemetry-cost block: the same
// hot-path measurement with the histograms + flight recorder on (the
// default, the shape the 0 allocs/op gate runs) and off, plus the
// derived per-packet overhead. -compare gates the on-side allocations
// at absolute zero — the telemetry plane must never buy observability
// with heap traffic.
type observabilitySection struct {
	MetricsOn  fleet.HotPathStats `json:"metrics_on"`
	MetricsOff fleet.HotPathStats `json:"metrics_off"`
	// OverheadNsPerPacket is (on − off) ns/op over packets/op; negative
	// measurements (noise) are reported as measured, not clamped.
	OverheadNsPerPacket float64 `json:"overhead_ns_per_packet"`
	OverheadPercent     float64 `json:"overhead_percent"`
}

// measureObservability measures the telemetry plane's hot-path cost.
func measureObservability() (*observabilitySection, error) {
	on, err := benchHotPath(fleet.HotPathOptions{})
	if err != nil {
		return nil, err
	}
	off, err := benchHotPath(fleet.HotPathOptions{DisableTelemetry: true})
	if err != nil {
		return nil, err
	}
	sec := &observabilitySection{MetricsOn: on, MetricsOff: off}
	if on.PacketsPerOp > 0 {
		sec.OverheadNsPerPacket = float64(on.NsPerOp-off.NsPerOp) / float64(on.PacketsPerOp)
	}
	if off.NsPerOp > 0 {
		sec.OverheadPercent = 100 * float64(on.NsPerOp-off.NsPerOp) / float64(off.NsPerOp)
	}
	return sec, nil
}

// gateObservability re-derives the telemetry-cost pass condition from a
// snapshot section: the instrumented hot path must stay allocation-free.
func gateObservability(sec *observabilitySection) []string {
	var fails []string
	if sec.MetricsOn.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("observability: metrics-on hot path allocates (%d allocs/op, want 0)",
			sec.MetricsOn.AllocsPerOp))
	}
	return fails
}

// authSection is the snapshot's frame-authentication cost block: the
// hot-path measurement with wire v2 HMAC tags required on every frame
// (sign each probe, verify each reply) and without, plus the derived
// per-packet cost of authenticating. -compare gates the auth-on side
// at absolute zero allocations — the MAC must ride the same pooled
// buffers as the rest of the packet path.
type authSection struct {
	AuthOn  fleet.HotPathStats `json:"auth_on"`
	AuthOff fleet.HotPathStats `json:"auth_off"`
	// OverheadNsPerPacket is (on − off) ns/op over packets/op — the cost
	// of one HMAC-SHA256 sign plus one verify per probe/reply exchange.
	OverheadNsPerPacket float64 `json:"overhead_ns_per_packet"`
	OverheadPercent     float64 `json:"overhead_percent"`
}

// measureAuth measures what frame authentication costs on the hot path.
func measureAuth() (*authSection, error) {
	on, err := benchHotPath(fleet.HotPathOptions{Auth: true})
	if err != nil {
		return nil, err
	}
	off, err := benchHotPath(fleet.HotPathOptions{})
	if err != nil {
		return nil, err
	}
	sec := &authSection{AuthOn: on, AuthOff: off}
	if on.PacketsPerOp > 0 {
		sec.OverheadNsPerPacket = float64(on.NsPerOp-off.NsPerOp) / float64(on.PacketsPerOp)
	}
	if off.NsPerOp > 0 {
		sec.OverheadPercent = 100 * float64(on.NsPerOp-off.NsPerOp) / float64(off.NsPerOp)
	}
	return sec, nil
}

// gateAuth re-derives the authentication-cost pass condition from a
// snapshot section: the authenticated hot path must stay allocation-free.
func gateAuth(sec *authSection) []string {
	var fails []string
	if sec.AuthOn.AllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("auth: authenticated hot path allocates (%d allocs/op, want 0)",
			sec.AuthOn.AllocsPerOp))
	}
	return fails
}

// writeJSONSnapshot measures throughput and writes the snapshot to path,
// or to the next free BENCH_<n>.json when path is empty.
func writeJSONSnapshot(path string, seed uint64, scale experiments.Scale, metrics map[string]map[string]float64, fleetSec *fleetSection, confResults []*conformance.Result, advSec *adversarialSection) (string, error) {
	tp, err := measureThroughput()
	if err != nil {
		return "", err
	}
	hp, err := measureHotPath()
	if err != nil {
		return "", err
	}
	obsSec, err := measureObservability()
	if err != nil {
		return "", err
	}
	authSec, err := measureAuth()
	if err != nil {
		return "", err
	}
	snap := benchSnapshot{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		Seed:          seed,
		Scale:         string(scale),
		Throughput:    tp,
		HotPath:       hp,
		Observability: obsSec,
		Auth:          authSec,
		Fleet:         fleetSec,
		Conformance:   confResults,
		Adversarial:   advSec,
		Metrics:       metrics,
	}
	if path == "" {
		for n := 1; ; n++ {
			candidate := fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(candidate); os.IsNotExist(err) {
				path = candidate
				break
			}
		}
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}

// loadSnapshot reads one BENCH_<n>.json file.
func loadSnapshot(path string) (benchSnapshot, error) {
	var snap benchSnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// runCompare diffs two benchmark snapshots and fails on regressions.
// Allocations per op are deterministic and machine-independent — the
// strict gate. Wall-clock throughput is machine-dependent: comparing a
// committed reference-box snapshot against a CI box only catches
// catastrophic slowdowns, hence the loose default (and 0 to disable).
// Experiment metrics are compared exactly when both snapshots used the
// same seed and scale — informational, since the determinism tests
// already pin them.
func runCompare(out io.Writer, oldPath, newPath string, maxSlow, maxAlloc float64) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	growth := func(oldV, newV float64) float64 {
		if oldV <= 0 {
			return 0
		}
		return (newV - oldV) / oldV
	}
	allocGrowth := growth(float64(oldSnap.Throughput.AllocsPerOp), float64(newSnap.Throughput.AllocsPerOp))
	slowdown := growth(float64(oldSnap.Throughput.NsPerOp), float64(newSnap.Throughput.NsPerOp))
	fmt.Fprintf(out, "comparing %s (seed %d, %s) → %s (seed %d, %s)\n\n",
		oldPath, oldSnap.Seed, oldSnap.Scale, newPath, newSnap.Seed, newSnap.Scale)
	fmt.Fprintf(out, "%-16s %14s %14s %9s\n", "throughput", "old", "new", "delta")
	fmt.Fprintf(out, "%-16s %14d %14d %+8.1f%%\n", "ns/op", oldSnap.Throughput.NsPerOp, newSnap.Throughput.NsPerOp, 100*slowdown)
	fmt.Fprintf(out, "%-16s %14d %14d %+8.1f%%\n", "allocs/op", oldSnap.Throughput.AllocsPerOp, newSnap.Throughput.AllocsPerOp, 100*allocGrowth)
	fmt.Fprintf(out, "%-16s %14.0f %14.0f %+8.1f%%\n", "events/op", oldSnap.Throughput.EventsPerOp, newSnap.Throughput.EventsPerOp,
		100*growth(oldSnap.Throughput.EventsPerOp, newSnap.Throughput.EventsPerOp))

	if oldSnap.Seed == newSnap.Seed && oldSnap.Scale == newSnap.Scale {
		shared, differing := 0, 0
		for id, oldMs := range oldSnap.Metrics {
			newMs, ok := newSnap.Metrics[id]
			if !ok {
				continue
			}
			for name, oldV := range oldMs {
				if newV, ok := newMs[name]; ok {
					shared++
					if newV != oldV {
						differing++
						if differing <= 10 {
							fmt.Fprintf(out, "metric %s/%s: %g → %g\n", id, name, oldV, newV)
						}
					}
				}
			}
		}
		fmt.Fprintf(out, "\nexperiment metrics: %d shared, %d differing\n", shared, differing)
	} else {
		fmt.Fprintf(out, "\nexperiment metrics skipped (seed/scale differ)\n")
	}

	var fails []string
	if maxAlloc > 0 && allocGrowth > maxAlloc {
		fails = append(fails, fmt.Sprintf("allocs/op grew %.1f%% (limit %.1f%%)", 100*allocGrowth, 100*maxAlloc))
	}
	if maxSlow > 0 && slowdown > maxSlow {
		fails = append(fails, fmt.Sprintf("ns/op grew %.1f%% (limit %.1f%%)", 100*slowdown, 100*maxSlow))
	}
	// The shard hot path is pinned at 0 allocs/op: with a zero old
	// value a relative-growth gate cannot bite, so any regression at
	// all fails (old snapshots without the section are skipped).
	if oldSnap.HotPath != nil && newSnap.HotPath != nil {
		oldA, newA := oldSnap.HotPath.Batch.AllocsPerOp, newSnap.HotPath.Batch.AllocsPerOp
		fmt.Fprintf(out, "%-16s %14d %14d\n", "hotpath allocs", oldA, newA)
		if maxAlloc > 0 && newA > oldA && float64(newA-oldA) > maxAlloc*float64(max(oldA, 1)) {
			fails = append(fails, fmt.Sprintf("shard hot path allocs/op grew %d → %d", oldA, newA))
		}
	}
	// The observability section is an absolute gate on the new snapshot:
	// the instrumented (default) hot path must stay allocation-free, and
	// its measured overhead is printed for the reader.
	if obs := newSnap.Observability; obs != nil {
		fmt.Fprintf(out, "%-16s %14d %14d  (overhead %+.1f ns/packet, %+.1f%%)\n", "telemetry allocs",
			obs.MetricsOff.AllocsPerOp, obs.MetricsOn.AllocsPerOp,
			obs.OverheadNsPerPacket, obs.OverheadPercent)
		fails = append(fails, gateObservability(obs)...)
	}
	// The auth section is likewise an absolute gate on the new snapshot:
	// signing and verifying every frame must not buy integrity with heap
	// traffic; the measured per-packet cost is printed for the reader.
	if auth := newSnap.Auth; auth != nil {
		fmt.Fprintf(out, "%-16s %14d %14d  (overhead %+.1f ns/packet, %+.1f%%)\n", "auth allocs",
			auth.AuthOff.AllocsPerOp, auth.AuthOn.AllocsPerOp,
			auth.OverheadNsPerPacket, auth.OverheadPercent)
		fails = append(fails, gateAuth(auth)...)
	}
	// The scaling study is likewise an absolute health gate on the new
	// snapshot (all CPs alive, zero decode errors); the curve itself is
	// printed for the reader, not gated — it is machine-dependent.
	if f := newSnap.Fleet; f != nil && f.Scaling != nil {
		fmt.Fprintf(out, "\n%-10s %10s %14s %8s %10s\n", "scaling", "gomaxprocs", "packets/s", "speedup", "imbalance")
		for _, p := range f.Scaling.Curve {
			fmt.Fprintf(out, "%-10d %10d %14.0f %7.2fx %10.2f\n", p.Shards, p.GoMaxProcs, p.PacketsPerSec, p.Speedup, p.ShardImbalance)
		}
		fails = append(fails, gateScaling(f.Scaling)...)
	}
	// The adversarial section is an absolute gate, not a diff: the new
	// snapshot's hardened battery must show zero false verdicts
	// regardless of what (or whether) the old snapshot recorded —
	// snapshots before the robustness PR simply lack the section.
	if adv := newSnap.Adversarial; adv != nil {
		fmt.Fprintf(out, "\n%-18s %6s %14s %14s %10s\n", "adversarial", "mode", "false-absent", "false-present", "shed-rate")
		rows := func(mode string, results []*conformance.AdvResult) {
			for _, r := range results {
				fmt.Fprintf(out, "%-18s %6s %14d %14d %10.2f\n",
					r.Scenario, mode, r.Adv.FalseAbsent, r.Adv.FalsePresent, r.Adv.ShedRate)
			}
		}
		rows("hard", adv.Hardened)
		rows("none", adv.Unhardened)
		rows("auth", adv.AuthAuthenticated)
		rows("plain", adv.AuthUnauthenticated)
		fails = append(fails, gateAdversarial(adv.Hardened)...)
		fails = append(fails, gateAdversarial(adv.AuthAuthenticated)...)
	}
	if len(fails) > 0 {
		return fmt.Errorf("regression: %s", strings.Join(fails, "; "))
	}
	fmt.Fprintln(out, "no regression")
	return nil
}
