package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2-sapp-3cps", "fig5-dcpp-churn", "tab-sapp-steady", "ext-fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunOnlyShortScale(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-scale", "short", "-only", "fig5-dcpp-churn", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "load_mean") {
		t.Fatalf("missing metrics in output:\n%s", out.String())
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "fig5-dcpp-churn") {
		t.Fatal("report.md missing the experiment")
	}
	dats, err := filepath.Glob(filepath.Join(dir, "fig5-dcpp-churn_*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dats) != 2 {
		t.Fatalf("wrote %d .dat files, want 2 (load + #CPs)", len(dats))
	}
}

func TestRunWithPlot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scale", "short", "-only", "fig2-sapp-3cps", "-out", "", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cp_01_freq") {
		t.Fatalf("plot legend missing:\n%s", out.String())
	}
}

func TestRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-only", "no-such-id"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
