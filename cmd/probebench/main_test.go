package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"presence/internal/conformance"
	"presence/internal/fleet"
)

func TestListExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2-sapp-3cps", "fig5-dcpp-churn", "tab-sapp-steady", "ext-fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunOnlyShortScale(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-scale", "short", "-only", "fig5-dcpp-churn", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "load_mean") {
		t.Fatalf("missing metrics in output:\n%s", out.String())
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "fig5-dcpp-churn") {
		t.Fatal("report.md missing the experiment")
	}
	dats, err := filepath.Glob(filepath.Join(dir, "fig5-dcpp-churn_*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dats) != 2 {
		t.Fatalf("wrote %d .dat files, want 2 (load + #CPs)", len(dats))
	}
}

func TestRunWithPlot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scale", "short", "-only", "fig2-sapp-3cps", "-out", "", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cp_01_freq") {
		t.Fatalf("plot legend missing:\n%s", out.String())
	}
}

func TestJSONSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	var out strings.Builder
	err := run([]string{"-scale", "short", "-only", "ext-naive-load", "-out", "", "-json", "-jsonpath", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Throughput.EventsPerSec <= 0 || snap.Throughput.AllocsPerOp < 0 {
		t.Fatalf("throughput section not populated: %+v", snap.Throughput)
	}
	if _, ok := snap.Metrics["ext-naive-load"]["load_k10"]; !ok {
		t.Fatalf("experiment metrics missing from snapshot: %+v", snap.Metrics)
	}
}

func TestJSONAutoNumbering(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	if err := os.WriteFile("BENCH_1.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, err := writeJSONSnapshot("", 1, "short", nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if path != "BENCH_2.json" {
		t.Fatalf("auto-numbered path = %q, want BENCH_2.json", path)
	}
	if _, err := os.Stat("BENCH_2.json"); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-only", "no-such-id"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scenario", "fig5-uniform-churn", "-fleet"}, &out); err == nil {
		t.Error("-scenario with -fleet accepted")
	}
	if err := run([]string{"-scenario", "fig5-uniform-churn", "-conformance"}, &out); err == nil {
		t.Error("-scenario with -conformance accepted")
	}
	if err := run([]string{"-compare", "only-one.json"}, &out); err == nil {
		t.Error("-compare with one path accepted")
	}
	if err := run([]string{"-scale", "short", "-only", "ext-naive-load", "-out", "", "-conformance", "-conformance-scenario", "nope"}, &out); err == nil {
		t.Error("unknown conformance scenario accepted")
	}
}

// writeSnapshotFile writes a hand-built snapshot for -compare tests.
func writeSnapshotFile(t *testing.T, path string, snap benchSnapshot) {
	t.Helper()
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	base := benchSnapshot{
		Seed: 2005, Scale: "short",
		Throughput: throughputStats{NsPerOp: 1_000_000, AllocsPerOp: 1500, EventsPerOp: 50000},
		Metrics:    map[string]map[string]float64{"fig5-dcpp-churn": {"load_mean": 9.7}},
	}
	writeSnapshotFile(t, oldPath, base)

	// Within limits: slightly fewer allocs, slightly slower.
	improved := base
	improved.Throughput = throughputStats{NsPerOp: 1_050_000, AllocsPerOp: 1400, EventsPerOp: 50000}
	writeSnapshotFile(t, newPath, improved)
	var out strings.Builder
	if err := run([]string{"-compare", oldPath, newPath}, &out); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}

	// Alloc regression beyond 10%.
	leaky := base
	leaky.Throughput = throughputStats{NsPerOp: 1_000_000, AllocsPerOp: 2000, EventsPerOp: 50000}
	writeSnapshotFile(t, newPath, leaky)
	out.Reset()
	err := run([]string{"-compare", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", err)
	}

	// Catastrophic slowdown beyond the default 100%.
	slow := base
	slow.Throughput = throughputStats{NsPerOp: 2_500_000, AllocsPerOp: 1500, EventsPerOp: 50000}
	writeSnapshotFile(t, newPath, slow)
	out.Reset()
	err = run([]string{"-compare", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("slowdown not flagged: %v", err)
	}
	// ... unless the wall-time gate is disabled (flags precede the
	// positional snapshot paths, per package flag).
	out.Reset()
	if err := run([]string{"-compare", "-compare-max-slowdown", "0", oldPath, newPath}, &out); err != nil {
		t.Fatalf("disabled time gate still failed: %v", err)
	}

	// The auth section is an absolute gate on the new snapshot: the
	// authenticated hot path must stay allocation-free.
	leakyAuth := base
	leakyAuth.Auth = &authSection{
		AuthOn:  fleet.HotPathStats{NsPerOp: 95000, AllocsPerOp: 3, PacketsPerOp: 256},
		AuthOff: fleet.HotPathStats{NsPerOp: 57000, AllocsPerOp: 0, PacketsPerOp: 256},
	}
	writeSnapshotFile(t, newPath, leakyAuth)
	out.Reset()
	err = run([]string{"-compare", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "authenticated hot path allocates") {
		t.Fatalf("auth alloc regression not flagged: %v", err)
	}

	// ... and the authenticated adversarial battery is re-gated like the
	// hardened one: an accepted forgery in a committed snapshot fails.
	forged := base
	forged.Adversarial = &adversarialSection{
		AuthAuthenticated: []*conformance.AdvResult{{
			Scenario: "adv-auth-downgrade", Seed: 42, Harden: true, Auth: true,
			Adv:  conformance.AdvMetrics{FalsePresent: 8},
			Pass: false,
		}},
	}
	writeSnapshotFile(t, newPath, forged)
	out.Reset()
	err = run([]string{"-compare", oldPath, newPath}, &out)
	if err == nil || !strings.Contains(err.Error(), "adv-auth-downgrade") {
		t.Fatalf("auth adversarial regression not flagged: %v", err)
	}

	// Metric drift is reported (informationally) when seed+scale match.
	drift := base
	drift.Metrics = map[string]map[string]float64{"fig5-dcpp-churn": {"load_mean": 9.9}}
	writeSnapshotFile(t, newPath, drift)
	out.Reset()
	if err := run([]string{"-compare", oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 differing") {
		t.Fatalf("metric drift not reported:\n%s", out.String())
	}
}

// TestConformanceSection runs one conformance case through the CLI and
// checks the report and the snapshot section.
func TestConformanceSection(t *testing.T) {
	if testing.Short() {
		t.Skip("5s real-time fleet replay")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_conf.json")
	var out strings.Builder
	err := run([]string{
		"-scale", "short", "-only", "ext-naive-load", "-out", "",
		"-conformance", "-conformance-scenario", "conf-churn",
		"-json", "-jsonpath", path,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "conformance conf-churn") || !strings.Contains(out.String(), "PASS") {
		t.Fatalf("conformance section missing:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Conformance) != 1 || !snap.Conformance[0].Pass || snap.Conformance[0].Scenario != "conf-churn" {
		t.Fatalf("conformance snapshot section = %+v", snap.Conformance)
	}
}

func TestFleetSnapshotSection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_fleet.json")
	var out strings.Builder
	err := run([]string{
		"-scale", "short", "-only", "ext-naive-load", "-out", "",
		"-fleet", "-fleet-cps", "200", "-fleet-devices", "2", "-fleet-window", "500ms",
		"-json", "-jsonpath", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "CPs steady on") {
		t.Fatalf("fleet summary missing from output:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Fleet == nil || snap.Fleet.Scale == nil {
		t.Fatal("snapshot has no fleet scale section")
	}
	if snap.Fleet.Scale.SteadyCPs != 200 || snap.Fleet.Scale.SteadyProbesPerSec <= 0 {
		t.Fatalf("fleet scale section = %+v", snap.Fleet.Scale)
	}
	if snap.Fleet.Scale.SyscallsIn == 0 || snap.Fleet.Scale.BatchFillMeanIn <= 0 {
		t.Fatalf("fleet scale section missing syscall accounting: %+v", snap.Fleet.Scale)
	}
	if snap.HotPath == nil || snap.HotPath.Batch.PacketsPerSec <= 0 || snap.HotPath.Single.PacketsPerSec <= 0 {
		t.Fatalf("snapshot hot-path section = %+v", snap.HotPath)
	}
	if snap.HotPath.Batch.AllocsPerOp != 0 {
		t.Fatalf("shard hot path allocates: %+v", snap.HotPath.Batch)
	}
}

func TestParseFleetSweep(t *testing.T) {
	entries, err := parseFleetSweep("1x200x10,2x300x2.5s,1x100x1m,1x100x1sm")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("got %d entries", len(entries))
	}
	e := entries[1]
	if e.opts.Shards != 2 || e.opts.CPs != 300 || e.opts.ProbeHz != 2.5 || !e.opts.ForceSingleDatagram || e.memnet {
		t.Fatalf("entry 1 = %+v", e)
	}
	if !entries[2].memnet || entries[2].opts.ForceSingleDatagram {
		t.Fatalf("entry 2 = %+v", entries[2])
	}
	if !entries[3].memnet || !entries[3].opts.ForceSingleDatagram {
		t.Fatalf("entry 3 = %+v", entries[3])
	}
	if _, err := parseFleetSweep("bogus"); err == nil {
		t.Fatal("want error for malformed sweep")
	}
}

func TestListScenariosAndScenarioRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig5-uniform-churn", "flash-crowd", "diurnal", "bursty-loss"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list-scenarios missing %q:\n%s", want, out.String())
		}
	}

	// Run one scenario from a JSON file and check the report plus the
	// written series.
	dir := t.TempDir()
	spec := `{"name":"mini-churn","protocol":"dcpp","horizon":"1m0s",` +
		`"population":{"uniform_churn":{"min":1,"max":10,"rate":0.1}}}`
	path := filepath.Join(dir, "mini.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	outDir := filepath.Join(dir, "series")
	if err := run([]string{"-scenario", path, "-seed", "5", "-out", outDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scenario-mini-churn") || !strings.Contains(out.String(), "load_mean") {
		t.Fatalf("scenario report missing:\n%s", out.String())
	}
	dats, err := filepath.Glob(filepath.Join(outDir, "scenario-mini-churn_*.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dats) != 2 {
		t.Fatalf("wrote %d .dat files, want load + #CPs", len(dats))
	}
	if err := run([]string{"-scenario", "no-such-scenario"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// Suite flags are rejected, not silently ignored, in scenario mode.
	for _, args := range [][]string{
		{"-scenario", "flash-crowd", "-scale", "short"},
		{"-scenario", "flash-crowd", "-only", "fig5-dcpp-churn"},
		{"-scenario", "flash-crowd", "-json"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want conflict error", args)
		}
	}
}
