// Command probesim runs a single presence-protocol simulation scenario
// and prints the measured device load, per-CP fairness and detection
// statistics.
//
// Scenarios come either from flags (protocol, population, loss) or from
// the declarative scenario engine: -scenario accepts a registered name
// (see -list-scenarios) or a path to a scenario JSON file, and
// -dump-scenario writes the selected scenario as JSON for editing.
//
// Usage:
//
//	probesim [-protocol sapp|dcpp|naive] [-cps N] [-duration D] [-seed N]
//	         [-churn] [-kill-at D] [-leave-at D -leave-to N]
//	         [-loss P] [-ge-loss-bad P -ge-good-to-bad P -ge-bad-to-good P [-ge-loss-good P]]
//	         [-scenario NAME|FILE] [-dump-scenario FILE] [-list-scenarios]
//	         [-plot] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"presence/internal/asciiplot"
	"presence/internal/scenario"
	"presence/internal/simnet"
	"presence/internal/simrun"
	"presence/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "probesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("probesim", flag.ContinueOnError)
	var (
		protocol  = fs.String("protocol", "dcpp", "protocol: sapp, dcpp or naive")
		cps       = fs.Int("cps", 20, "number of control points")
		duration  = fs.Duration("duration", 10*time.Minute, "simulated horizon")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		churn     = fs.Bool("churn", false, "enable the paper's Fig. 5 churn instead of a static population")
		killAt    = fs.Duration("kill-at", 0, "crash the device silently at this time (0 = never)")
		leaveAt   = fs.Duration("leave-at", 0, "mass-leave time (0 = never)")
		leaveTo   = fs.Int("leave-to", 2, "population remaining after the mass leave")
		loss      = fs.Float64("loss", 0, "Bernoulli packet-loss probability")
		geLossBad = fs.Float64("ge-loss-bad", 0, "Gilbert-Elliott loss probability in the Bad state")
		geLossGd  = fs.Float64("ge-loss-good", 0, "Gilbert-Elliott loss probability in the Good state")
		geG2B     = fs.Float64("ge-good-to-bad", 0, "Gilbert-Elliott P(Good→Bad) per message")
		geB2G     = fs.Float64("ge-bad-to-good", 0, "Gilbert-Elliott P(Bad→Good) per message")
		devices   = fs.Int("devices", 1, "number of devices (every CP monitors each)")
		discovery = fs.Bool("discovery", false, "enable UPnP-style announcements; CPs discover devices dynamically")
		traceFile = fs.String("trace", "", "write a deterministic event trace to this file")
		plot      = fs.Bool("plot", false, "render the device load as an ASCII plot")
		outFile   = fs.String("out", "", "write the device-load series to this .dat file")
		scenFlag  = fs.String("scenario", "", "run a declarative scenario: a registered name or a JSON file path")
		dumpFile  = fs.String("dump-scenario", "", "write the selected -scenario as JSON to FILE and exit")
		listScen  = fs.Bool("list-scenarios", false, "list registered scenario names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listScen {
		for _, s := range scenario.All() {
			fmt.Fprintf(out, "%-20s %s\n", s.Name, s.Description)
		}
		return nil
	}

	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	geSet := explicit["ge-loss-bad"] || explicit["ge-loss-good"] ||
		explicit["ge-good-to-bad"] || explicit["ge-bad-to-good"]
	if geSet && explicit["loss"] {
		return fmt.Errorf("-loss and the -ge-* flags select competing loss models; use one")
	}
	if geSet && *geG2B == 0 && *geLossGd == 0 {
		// The channel starts in the Good state; with no Good-state loss
		// and no Good→Bad transition it can never lose a message.
		return fmt.Errorf("the Gilbert-Elliott channel needs -ge-good-to-bad > 0 (or -ge-loss-good > 0); as given it would never lose anything")
	}

	var (
		w       *simrun.World
		horizon = *duration
	)
	if *scenFlag != "" {
		// Declarative path: the scenario defines protocol, population and
		// models; only -seed, -duration and the output flags compose.
		// -kill-at deliberately composes with -scenario (it adds a
		// schedule event rather than overriding the scenario's models).
		for _, conflicting := range []string{
			"protocol", "cps", "churn", "leave-at", "leave-to",
			"loss", "ge-loss-bad", "ge-loss-good", "ge-good-to-bad", "ge-bad-to-good",
			"devices", "discovery",
		} {
			if explicit[conflicting] {
				return fmt.Errorf("-%s conflicts with -scenario (the scenario defines it); edit the scenario instead", conflicting)
			}
		}
		spec, err := scenario.Resolve(*scenFlag)
		if err != nil {
			return err
		}
		if *dumpFile != "" {
			b, err := spec.Encode()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*dumpFile, b, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "scenario written  %s\n", *dumpFile)
			return nil
		}
		cfg, err := spec.Config(*seed)
		if err != nil {
			return err
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			cfg.Trace = f
		}
		w, err = simrun.NewWorld(cfg)
		if err != nil {
			return err
		}
		if err := spec.Populate(w); err != nil {
			return err
		}
		if !explicit["duration"] {
			horizon = spec.Horizon.Std()
		}
		fmt.Fprintf(out, "scenario        %s\n", spec.Name)
	} else {
		if *dumpFile != "" {
			return fmt.Errorf("-dump-scenario requires -scenario")
		}
		cfg := simrun.Config{
			Protocol:       simrun.Protocol(*protocol),
			Seed:           *seed,
			Devices:        *devices,
			RecordCPSeries: false,
		}
		if *loss > 0 {
			cfg.Net.Loss = simnet.Bernoulli{P: *loss}
		}
		if geSet {
			ge := &simnet.GilbertElliott{
				GoodToBad: *geG2B, BadToGood: *geB2G,
				LossGood: *geLossGd, LossBad: *geLossBad,
			}
			if err := ge.Validate(); err != nil {
				return err
			}
			cfg.Net.Loss = ge
		}
		if *discovery {
			cfg.Discovery = simrun.DiscoveryConfig{Enabled: true, ProbeOnDiscovery: true}
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			cfg.Trace = f
		}
		var err error
		w, err = simrun.NewWorld(cfg)
		if err != nil {
			return err
		}
		if *churn {
			if err := w.StartChurn(simrun.DefaultUniformChurn()); err != nil {
				return err
			}
		} else if err := w.AddCPsStaggered(*cps, 5*time.Second); err != nil {
			return err
		}
		if *leaveAt > 0 {
			if err := w.ScheduleMassLeave(*leaveAt, *leaveTo); err != nil {
				return err
			}
		}
	}
	var killTime time.Duration
	if *killAt > 0 {
		killTime = *killAt
		w.ScheduleDeviceCrash(*killAt)
	}
	w.Run(horizon)

	load := w.DeviceLoad().Stats()
	fmt.Fprintf(out, "protocol        %s\n", w.Config().Protocol)
	fmt.Fprintf(out, "simulated       %v (%d events)\n", horizon, w.Sim().Executed())
	fmt.Fprintf(out, "device load     mean %.3f /s, var %.3f, peak %.1f /s (%d probes)\n",
		load.Mean(), load.Variance(), load.Max(), w.DeviceLoad().Total())
	occ := w.Net().BufferOccupancy()
	fmt.Fprintf(out, "net buffer      mean %.4g msgs, max %.0f\n", occ.Mean(), occ.Max())
	c := w.Net().Counters()
	fmt.Fprintf(out, "net counters    sent %d delivered %d lost %d overflowed %d unroutable %d\n",
		c.Sent, c.Delivered, c.LostInFlight, c.Overflowed, c.Unroutable)
	freqs := w.CPFrequencies()
	if len(freqs) > 0 {
		lo, hi := freqs[0], freqs[len(freqs)-1]
		fmt.Fprintf(out, "cp frequencies  %d active, range [%.3g, %.3g] /s, Jain fairness %.4f\n",
			len(freqs), lo, hi, stats.JainIndex(freqs))
	}
	if killTime > 0 {
		var lat stats.Welford
		detected := 0
		for _, h := range w.ActiveCPs() {
			if h.Lost {
				detected++
				lat.Add((h.LostAt - killTime).Seconds())
			}
		}
		fmt.Fprintf(out, "crash detection %d/%d CPs, latency mean %.3fs max %.3fs\n",
			detected, len(w.ActiveCPs()), lat.Mean(), lat.Max())
	}
	if *plot {
		fmt.Fprintln(out, asciiplot.Render([]*stats.TimeSeries{w.DeviceLoad().Series()}, asciiplot.Options{
			Title: "device load (probes/s)", Width: 100, Height: 20,
		}))
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := w.DeviceLoad().Series().WriteDAT(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "series written  %s\n", *outFile)
	}
	return nil
}
