package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStaticScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-protocol", "dcpp", "-cps", "5", "-duration", "1m", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"protocol        dcpp", "device load", "Jain fairness"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestChurnWithKillAndPlot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-churn", "-duration", "2m", "-kill-at", "90s", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crash detection") {
		t.Fatalf("missing detection summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "device load (probes/s)") {
		t.Fatal("missing ASCII plot")
	}
}

func TestMassLeaveAndLossAndDATOutput(t *testing.T) {
	dat := filepath.Join(t.TempDir(), "load.dat")
	var out strings.Builder
	err := run([]string{"-protocol", "sapp", "-cps", "10", "-duration", "2m",
		"-leave-at", "1m", "-leave-to", "2", "-loss", "0.05", "-out", dat}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# t(sec)") {
		t.Fatal("dat file missing header")
	}
}

func TestRejectsBadProtocol(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-protocol", "swim"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMultiDeviceDiscoveryTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.trace")
	var out strings.Builder
	err := run([]string{"-devices", "2", "-discovery", "-cps", "4",
		"-duration", "90s", "-trace", traceFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), " join cp_01") || !strings.Contains(string(data), " probe ") {
		t.Fatalf("trace missing events: %.200s", string(data))
	}
}

func TestScenarioByName(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scenario", "fig5-uniform-churn", "-duration", "45s", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"scenario        fig5-uniform-churn", "protocol        dcpp", "device load"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestScenarioDumpAndFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scen.json")
	var out strings.Builder
	if err := run([]string{"-scenario", "markov-sessions", "-dump-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"markov_sessions"`) {
		t.Fatalf("dumped scenario missing population model:\n%s", data)
	}
	// The dumped file must run.
	out.Reset()
	if err := run([]string{"-scenario", path, "-duration", "45s"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scenario        markov-sessions") {
		t.Fatalf("file-loaded scenario did not run:\n%s", out.String())
	}
}

func TestScenarioUsesSpecHorizonByDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.json")
	spec := `{"name":"tiny","protocol":"dcpp","horizon":"30s","population":{"static":{"cps":2,"spread":"2s"}}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulated       30s") {
		t.Fatalf("spec horizon not used:\n%s", out.String())
	}
}

func TestScenarioKillAtComposes(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scenario", "heavy-tail", "-duration", "90s", "-kill-at", "60s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crash detection") {
		t.Fatalf("missing detection summary:\n%s", out.String())
	}
}

func TestScenarioFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown scenario", []string{"-scenario", "no-such-scenario"}},
		{"scenario conflicts with protocol", []string{"-scenario", "fig5-uniform-churn", "-protocol", "sapp"}},
		{"scenario conflicts with cps", []string{"-scenario", "fig5-uniform-churn", "-cps", "5"}},
		{"scenario conflicts with churn", []string{"-scenario", "fig5-uniform-churn", "-churn"}},
		{"scenario conflicts with loss", []string{"-scenario", "fig5-uniform-churn", "-loss", "0.1"}},
		{"dump without scenario", []string{"-dump-scenario", "x.json"}},
		{"loss and ge are exclusive", []string{"-loss", "0.1", "-ge-loss-bad", "0.5"}},
		{"ge probability out of range", []string{"-ge-loss-bad", "1.5", "-ge-good-to-bad", "0.1", "-duration", "10s"}},
		{"ge channel that can never lose", []string{"-ge-loss-bad", "0.5", "-duration", "10s"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(c.args, &out); err == nil {
				t.Errorf("args %v accepted, want error", c.args)
			}
		})
	}
}

func TestGilbertElliottLossFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-cps", "10", "-duration", "2m",
		"-ge-loss-bad", "0.6", "-ge-loss-good", "0.01",
		"-ge-good-to-bad", "0.05", "-ge-bad-to-good", "0.2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	i := strings.Index(text, "lost ")
	if i < 0 {
		t.Fatalf("missing counters line:\n%s", text)
	}
	var lost int
	if _, err := fmt.Sscanf(text[i:], "lost %d", &lost); err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Fatalf("Gilbert-Elliott channel lost nothing:\n%s", text)
	}
}

func TestListScenarios(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4-mass-leave", "fig5-uniform-churn", "flash-crowd", "markov-sessions", "heavy-tail", "diurnal", "bursty-loss"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list-scenarios missing %q:\n%s", want, out.String())
		}
	}
}
