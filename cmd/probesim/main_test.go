package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStaticScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-protocol", "dcpp", "-cps", "5", "-duration", "1m", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"protocol        dcpp", "device load", "Jain fairness"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestChurnWithKillAndPlot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-churn", "-duration", "2m", "-kill-at", "90s", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crash detection") {
		t.Fatalf("missing detection summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "device load (probes/s)") {
		t.Fatal("missing ASCII plot")
	}
}

func TestMassLeaveAndLossAndDATOutput(t *testing.T) {
	dat := filepath.Join(t.TempDir(), "load.dat")
	var out strings.Builder
	err := run([]string{"-protocol", "sapp", "-cps", "10", "-duration", "2m",
		"-leave-at", "1m", "-leave-to", "2", "-loss", "0.05", "-out", dat}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# t(sec)") {
		t.Fatal("dat file missing header")
	}
}

func TestRejectsBadProtocol(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-protocol", "swim"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestMultiDeviceDiscoveryTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.trace")
	var out strings.Builder
	err := run([]string{"-devices", "2", "-discovery", "-cps", "4",
		"-duration", "90s", "-trace", traceFile}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), " join cp_01") || !strings.Contains(string(data), " probe ") {
		t.Fatalf("trace missing events: %.200s", string(data))
	}
}
