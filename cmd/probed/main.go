// Command probed runs a presence-protocol device daemon on a UDP
// socket. Control points (cmd/probecp) can then monitor it; killing the
// daemon (Ctrl-C sends a bye first, SIGKILL is a silent crash) exercises
// the two leave paths the paper distinguishes.
//
// Usage:
//
//	probed [-listen ADDR] [-id N] [-protocol sapp|dcpp|naive]
//	       [-min-gap D] [-min-cp-delay D]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/ident"
	"presence/internal/rtnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "probed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("probed", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:9300", "UDP listen address")
		id         = fs.Uint("id", 1, "device node id")
		protocol   = fs.String("protocol", "dcpp", "protocol: sapp, dcpp or naive")
		minGap     = fs.Duration("min-gap", dcpp.DefaultMinGap, "DCPP δ_min (inverse nominal load)")
		minCPDelay = fs.Duration("min-cp-delay", dcpp.DefaultMinCPDelay, "DCPP d_min (inverse max CP frequency)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	devID := ident.NodeID(id64(*id))
	var build rtnet.DeviceBuilder
	switch *protocol {
	case "dcpp":
		cfg := dcpp.DefaultDeviceConfig()
		cfg.MinGap, cfg.MinCPDelay = *minGap, *minCPDelay
		build = func(env core.Env) (core.Device, error) { return dcpp.NewDevice(devID, env, cfg) }
	case "sapp":
		build = func(env core.Env) (core.Device, error) {
			return sapp.NewDevice(devID, env, sapp.DefaultDeviceConfig())
		}
	case "naive":
		build = func(env core.Env) (core.Device, error) { return naive.NewDevice(devID, env) }
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	srv, err := rtnet.NewDeviceServer(rtnet.DeviceServerConfig{ID: devID, ListenAddr: *listen}, build)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Printf("probed: %s device %v listening on %s\n", *protocol, devID, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	signal.Stop(sig) // a second Ctrl-C kills us the ordinary way
	fmt.Println("probed: announcing bye and shutting down")
	srv.Bye()
	// Give byes a moment on the wire before the socket closes.
	time.Sleep(100 * time.Millisecond)
	err = srv.Close()
	c := srv.Counters()
	fmt.Printf("probed: served %d peers; %d packets in, %d out; %d decode errors, %d send errors\n",
		srv.Peers(), c.PacketsIn, c.PacketsOut, c.DecodeErrors, c.SendErrors)
	return err
}

func id64(v uint) uint32 {
	if v == 0 || v > 1<<31 {
		return 1
	}
	return uint32(v)
}
