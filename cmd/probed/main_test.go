package main

import "testing"

func TestID64(t *testing.T) {
	cases := []struct {
		in   uint
		want uint32
	}{
		{0, 1}, // invalid → primary
		{1, 1},
		{42, 42},
		{1 << 32, 1}, // overflow → primary
	}
	for _, c := range cases {
		if got := id64(c.in); got != c.want {
			t.Errorf("id64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRejectsBadInputs exercises every flag-validation exit path.
func TestRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown protocol", []string{"-protocol", "swim"}},
		{"bad listen address", []string{"-listen", "not-an-address:xx"}},
		{"negative dcpp min gap", []string{"-protocol", "dcpp", "-min-gap", "-10ms"}},
		{"negative dcpp cp delay", []string{"-protocol", "dcpp", "-min-cp-delay", "-1ms"}},
		{"unparseable duration", []string{"-min-gap", "soon"}},
		{"unknown flag", []string{"-bogus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.args); err == nil {
				t.Errorf("args %v accepted, want error", c.args)
			}
		})
	}
}
