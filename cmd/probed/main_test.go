package main

import "testing"

func TestID64(t *testing.T) {
	cases := []struct {
		in   uint
		want uint32
	}{
		{0, 1}, // invalid → primary
		{1, 1},
		{42, 42},
		{1 << 32, 1}, // overflow → primary
	}
	for _, c := range cases {
		if got := id64(c.in); got != c.want {
			t.Errorf("id64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-protocol", "swim"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"-listen", "not-an-address:xx"}); err == nil {
		t.Error("bad listen address accepted")
	}
}
