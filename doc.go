// Package presence is a Go implementation and reproduction of
//
//	"Are You Still There? — A Lightweight Algorithm To Monitor Node
//	Presence in Self-Configuring Networks", H. Bohnenkamp, J. Gorter,
//	J. Guidi, J.-P. Katoen, DSN 2005.
//
// It provides:
//
//   - the two probe protocols the paper studies — the self-adaptive
//     probe protocol (SAPP) of Bodlaender et al. and the paper's
//     device-controlled probe protocol (DCPP) — plus a naive fixed-rate
//     baseline, all as runtime-agnostic state machines;
//   - a deterministic discrete-event simulation runtime with the paper's
//     network model, churn scenarios and measurements, replacing the
//     MODEST/MÖBIUS tool chain the authors used;
//   - a real-network UDP runtime that runs the exact same engine code on
//     sockets and the wall clock;
//   - a fleet runtime (internal/fleet) that hosts tens of thousands of
//     those engines in one process for production-scale monitoring
//     aggregation points;
//   - a declarative scenario engine (internal/scenario): a Spec names a
//     protocol, a population model (static, mass leave, uniform churn,
//     flash crowd, Markov on/off sessions, heavy-tailed lifetimes,
//     diurnal arrivals), the network's loss/delay models and a horizon,
//     compiles to the simulation runtime, and round-trips through JSON
//     so scenarios live in files (probesim -scenario, probebench
//     -scenario);
//   - the full experiment suite regenerating every table and figure of
//     the paper's evaluation (see internal/experiments, cmd/probebench
//     and EXPERIMENTS.md, which catalogues every experiment and
//     registered scenario).
//
// The root package is a facade over the internal packages; examples and
// external users need only import "presence".
//
// # Performance architecture
//
// The simulator is built to sweep paper-scale scenarios by the hundreds:
//
//   - internal/des is a zero-allocation event kernel: a hand-rolled 4-ary
//     min-heap (no interface boxing), a per-simulation free list with
//     generation-counted handles (stale Cancel/Reschedule calls are inert
//     no-ops), and an Alarm that reschedules its pending heap entry in
//     place instead of cancel+push;
//   - the hot message paths are pooled end to end: probe/reply envelopes
//     and payloads (internal/core), in-flight network envelopes
//     (internal/simnet) and processing-delay sends (internal/simrun) are
//     recycled, so the steady-state event loop performs no allocations;
//   - multi-world experiments fan out over a worker pool
//     (internal/experiments.Replications) with index-ordered folding, so
//     replication studies use every core yet produce bit-identical
//     results at any worker count.
//
// Determinism is a hard invariant throughout: for a fixed seed, event
// order, network draws and every reported metric reproduce exactly;
// regression tests in internal/des, internal/simrun and
// internal/experiments pin it. cmd/probebench -json records events/sec
// and allocs/op snapshots (BENCH_<n>.json) to keep the trajectory
// machine-readable across changes.
//
// # Fleet runtime
//
// internal/rtnet spends one UDP socket, one reader goroutine and one
// time.Timer per node — right for a phone monitoring one device,
// hopeless for an aggregation point monitoring a building. The fleet
// runtime (internal/fleet, cmd/probefleet) re-hosts the same engines on
// a fixed budget:
//
//   - N shards (default GOMAXPROCS), each owning one UDP socket and one
//     event-loop goroutine; control points fan in to shards by NodeID
//     hash, and with fleet.Config.ReusePort the shard sockets share one
//     UDP port via SO_REUSEPORT so the kernel demultiplexes inbound
//     load across cores, strays riding an in-process cross-shard
//     handoff (cycle numbers embed the owning shard);
//   - one hierarchical hashed timer wheel per shard replaces per-node
//     time.Timers (every engine owns exactly one alarm, an intrusive
//     O(1) list entry);
//   - replies are demultiplexed on the shared socket by a (device,
//     cycle) pending-probe table, with per-CP staggered cycle-number
//     spaces (core.ProberOptions.FirstCycle) keeping keys disjoint;
//   - per-shard counters roll up through Fleet.Snapshot; the loopback
//     scale harness (fleet.LoopbackScale, probebench -fleet) measures
//     CPs/process and probes/s into the BENCH_<n>.json trajectory —
//     10,000 control points reach steady state on GOMAXPROCS event-loop
//     goroutines with the aggregate probe rate pinned at DCPP's L_nom
//     budget;
//   - each shard reads and writes through the fleet.PacketConn seam:
//     kernel UDP sockets in production, or any custom fleet.Transport —
//     internal/memnet supplies a deterministic in-memory network with
//     injectable loss (Bernoulli and Gilbert–Elliott), delay,
//     duplication, reordering and partitions for driving the real shard
//     loops over hostile links;
//   - a runtime administration plane mutates a live fleet without
//     stopping it: Add/RemoveControlPoint and Add/RemoveDevice run as
//     commands on the owning shard's bounded inbox (refusals surface as
//     fleet.ErrAdmissionRejected), DrainShard/Rebalance migrate control
//     points between shards without losing a pending cycle or
//     manufacturing a verdict, SetConfig pushes versioned runtime
//     configuration (hardening, TTLs, the per-device probe budget that
//     sheds over-budget probes under overload), and probefleet -admin
//     exposes it all as HTTP endpoints next to /metrics (churn-soak and
//     drain-equivalence tests in internal/fleet pin the contracts).
//
// # Conformance harness
//
// internal/conformance proves the two runtimes implement the same
// protocol: it runs one scenario Spec through the simulator, lifts the
// realised join/leave schedule out of the run, replays it against a
// real fleet over memnet with the same loss/delay models, checks
// protocol invariants online from a wire tap (absent verdicts only
// after the retransmit budget, cycle monotonicity, bye-before-silence)
// and diffs detection-latency/load/false-positive metrics within
// documented tolerances (probebench -conformance; the conf-* scenarios
// in the registry are the standing battery).
//
// # Adversarial hardening
//
// The same machinery doubles as an attack range: memnet middleboxes
// (internal/memnet's Middlebox/Injector API) observe, drop and forge
// datagrams in transit, and the adv-* scenarios in the registry mount
// spoofed-BYE, replay, Byzantine-responder and reflection/amplification
// attacks against a live fleet. fleet.Config.Harden switches on the
// defenses — source-pinned reply acceptance, a replay window, BYE
// verification (core.ProberOptions.VerifyBye: a BYE triggers a probe
// cycle instead of an immediate verdict) and per-source admission — and
// internal/conformance diffs the attacked run against the attack-free
// simulation to score false verdicts (probebench -adversarial;
// hardened-vs-unhardened results in EXPERIMENTS.md "Adversarial
// workloads").
//
// # Authenticated frames
//
// Hardening's heuristics (source pinning, replay windows) cannot stop
// an attacker who forges well-formed frames, so the wire format has an
// authenticated version 2: every frame carries a truncated HMAC-SHA256
// tag under a key derived per (control point, device) pair from a
// master secret (internal/wire's AuthKey/DeriveKey). fleet.AuthConfig
// enables it — Key or KeyFile for the master secret, Require to refuse
// unauthenticated v1 frames — and FleetRuntimeConfig.AuthKey rotates
// the key on a live fleet with a dual-key grace (probefleet
// -auth-keyfile re-reads and rotates on SIGHUP). Peers that have
// spoken v2 are pinned to it (a per-peer high-water mark), so
// stripping the tag or replaying v1 does not downgrade them. The
// adv-auth-* scenarios (frame tampering, forged tags, tag stripping,
// version downgrade against a crashed device) gate acceptance of any
// forged frame at zero, signing and verifying stay inside the hot
// path's 0 allocs/op budget (the BENCH "auth" section), and the
// downgrade attack is kept as an expected failure of hardening alone —
// the measured reason the MAC exists (EXPERIMENTS.md "Authenticated
// frames").
//
// # Observability
//
// The fleet carries a zero-allocation telemetry plane, on by default
// (fleet.Config.DisableTelemetry / FlightRecorder opt out):
//
//   - internal/metrics: cache-line-padded atomic log₂-bucket histograms
//     record probe RTT, detection latency, cross-shard handoff latency,
//     receive-batch fill and timer-cascade duration on the shard hot
//     path (three uncontended atomic adds per observation; the 0
//     allocs/op gate runs with telemetry on), merged across shards at
//     scrape time and rendered in Prometheus text exposition format by
//     a stdlib-only writer;
//   - internal/trace: a bounded per-shard flight recorder — a ring of
//     fixed-size probe-lifecycle events (probe sent, reply matched,
//     attempt expired, verdicts, handoffs) — dumpable live
//     (/debug/flight, SIGQUIT on probefleet) and normalizable
//     (trace.Normalize) into per-CP timelines that are byte-identical
//     across same-structure memnet runs, so conformance failures carry
//     their probe-level evidence (Result.Flight);
//   - internal/obs: the status server probefleet -status mounts —
//     /metrics, /healthz, /statusz (per-shard JSON snapshot including
//     memnet middlebox counters when scraping a memnet-backed fleet)
//     and explicitly registered pprof handlers on one gracefully
//     shut-down mux. probebench snapshots the telemetry plane's
//     hot-path cost (metrics on vs off) into the BENCH_<n>.json
//     "observability" section, and -compare fails if the instrumented
//     path ever allocates.
//
// # Quick start (simulation)
//
//	w, err := presence.NewSimulation(presence.SimConfig{
//		Protocol: presence.ProtocolDCPP,
//		Seed:     1,
//	})
//	if err != nil { ... }
//	w.AddCPs(20)
//	w.Run(5 * time.Minute)
//	load := w.DeviceLoad().Stats() // ≈ 10 probes/s, never above L_nom
//
// # Quick start (real network)
//
//	dev, err := presence.NewUDPDCPPDevice(presence.UDPDeviceConfig{
//		ID: 1, ListenAddr: "127.0.0.1:0",
//	}, presence.DefaultDCPPDeviceConfig())
//	...
//	cp, err := presence.NewUDPDCPPControlPoint(presence.UDPControlPointConfig{
//		ID: 2, Device: 1, DeviceAddr: dev.Addr().String(),
//	}, presence.DCPPPolicyConfig{}, listener)
package presence
