package trace

import (
	"strings"
	"testing"
	"time"

	"presence/internal/ident"
)

func ev(kind EventKind, cp, dev ident.NodeID, cycle uint32, attempt uint8) Event {
	return Event{At: time.Millisecond, Kind: kind, CP: cp, Device: dev, Cycle: cycle, Attempt: attempt}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d events", len(got))
	}
	for i := uint32(0); i < 10; i++ {
		r.Record(ev(EvProbeSent, 1, 2, i, 0))
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Cycle != uint32(6+i) {
			t.Fatalf("snapshot[%d].Cycle = %d, want %d (oldest-first, newest retained)", i, e.Cycle, 6+i)
		}
	}
}

func TestRingRecordZeroAlloc(t *testing.T) {
	r := NewRing(64)
	e := ev(EvReplyMatched, 3, 4, 7, 1)
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(e) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestWriteFlightFormat(t *testing.T) {
	var sb strings.Builder
	events := []Event{
		ev(EvProbeSent, 12, 5, 1034, 0),
		ev(EvHandoff, ident.None, 5, 99, 0),
	}
	if err := WriteFlight(&sb, 0, events); err != nil {
		t.Fatal(err)
	}
	want := "s0 +0.001000 probe-sent dev=n5 cp=n12 cycle=1034 attempt=0\n" +
		"s0 +0.001000 handoff dev=n5 cycle=99\n"
	if sb.String() != want {
		t.Fatalf("got:\n%swant:\n%s", sb.String(), want)
	}
}

// TestNormalizeDeterministic pins the normalization rules: timestamps
// and absolute cycle numbers must not leak into the output, handoffs
// are skipped, and shard/arrival order must not matter for distinct CPs.
func TestNormalizeDeterministic(t *testing.T) {
	runA := [][]Event{{
		{At: 5 * time.Millisecond, Kind: EvProbeSent, CP: 10, Device: 2, Cycle: 1000, Attempt: 0},
		{At: 6 * time.Millisecond, Kind: EvReplyMatched, CP: 10, Device: 2, Cycle: 1000, Attempt: 0},
		{At: 7 * time.Millisecond, Kind: EvHandoff, Device: 2, Cycle: 55},
	}, {
		{At: 8 * time.Millisecond, Kind: EvProbeSent, CP: 11, Device: 3, Cycle: 7000, Attempt: 0},
		{At: 9 * time.Millisecond, Kind: EvAttemptExpired, CP: 11, Device: 3, Cycle: 7000, Attempt: 0},
		{At: 10 * time.Millisecond, Kind: EvProbeSent, CP: 11, Device: 3, Cycle: 7000, Attempt: 1},
		{At: 11 * time.Millisecond, Kind: EvVerdictLost, CP: 11, Device: 3, Cycle: 7001, Attempt: 1},
	}}
	// Same protocol history, different wall times, different absolute
	// cycle seeds, CPs on swapped shards, no handoff.
	runB := [][]Event{{
		{At: 123 * time.Millisecond, Kind: EvProbeSent, CP: 11, Device: 3, Cycle: 40, Attempt: 0},
		{At: 124 * time.Millisecond, Kind: EvAttemptExpired, CP: 11, Device: 3, Cycle: 40, Attempt: 0},
		{At: 125 * time.Millisecond, Kind: EvProbeSent, CP: 11, Device: 3, Cycle: 40, Attempt: 1},
		{At: 126 * time.Millisecond, Kind: EvVerdictLost, CP: 11, Device: 3, Cycle: 41, Attempt: 1},
	}, {
		{At: 99 * time.Millisecond, Kind: EvProbeSent, CP: 10, Device: 2, Cycle: 1, Attempt: 0},
		{At: 100 * time.Millisecond, Kind: EvReplyMatched, CP: 10, Device: 2, Cycle: 1, Attempt: 0},
	}}
	a, b := Normalize(runA), Normalize(runB)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("normalized dumps differ:\nA: %v\nB: %v", a, b)
	}
	want := []string{
		"n2<-n10: probe-sent(c+0,a0) reply-matched(c+0,a0)",
		"n3<-n11: probe-sent(c+0,a0) attempt-expired(c+0,a0) probe-sent(c+0,a1) verdict-lost(c+1,a1)",
	}
	if strings.Join(a, "\n") != strings.Join(want, "\n") {
		t.Fatalf("normalized dump:\n%v\nwant:\n%v", a, want)
	}
}
