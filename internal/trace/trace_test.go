package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Event("kind", "detail %d", 1)
	if tr.Count() != 0 {
		t.Fatal("nil tracer counted events")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if New(nil, nil) != nil {
		t.Fatal("New with nil args must return nil")
	}
}

func TestEventFormat(t *testing.T) {
	var buf strings.Builder
	now := 1500 * time.Millisecond
	tr := New(&buf, func() time.Duration { return now })
	tr.Event("join", "cp_01")
	now = 2 * time.Second
	tr.Event("deliver", "probe cp_01->n1 cycle=%d", 5)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "1.500000 join cp_01" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != "2.000000 deliver probe cp_01->n1 cycle=5" {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if tr.Count() != 2 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

// failWriter errors after n bytes.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errors.New("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestWriteErrorSurfacesOnFlush(t *testing.T) {
	tr := New(&failWriter{left: 4}, func() time.Duration { return 0 })
	for i := 0; i < 10000; i++ { // overflow the bufio buffer
		tr.Event("x", "yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy")
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("flush swallowed the write error")
	}
	// Subsequent events are dropped silently, no panic.
	tr.Event("x", "after error")
}
