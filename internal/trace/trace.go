// Package trace emits a structured, line-oriented event log of a
// simulation run. The paper stresses trustworthy analysis chains
// ("semantically sound simulation runs"); a deterministic, replayable
// event trace is the practical counterpart: two runs with the same seed
// must produce byte-identical traces, which the runtime's tests assert.
//
// Format: one event per line,
//
//	<seconds> <kind> <detail>
//
// e.g. "12.003456 deliver probe cp_01->n1 cycle=5 attempt=0".
package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// Tracer writes timestamped events. A nil *Tracer discards everything,
// so call sites need no guards. Tracer is not safe for concurrent use;
// the simulation runtime is single-threaded.
type Tracer struct {
	out   *bufio.Writer
	clock func() time.Duration
	err   error
	count uint64
}

// New returns a tracer writing to out with timestamps from clock.
func New(out io.Writer, clock func() time.Duration) *Tracer {
	if out == nil || clock == nil {
		return nil
	}
	return &Tracer{out: bufio.NewWriter(out), clock: clock}
}

// Event records one event. kind should be a short stable token
// (e.g. "deliver", "join", "lost"); detail is free-form.
func (t *Tracer) Event(kind, format string, args ...any) {
	if t == nil || t.err != nil {
		return
	}
	t.count++
	if _, err := fmt.Fprintf(t.out, "%.6f %s %s\n",
		t.clock().Seconds(), kind, fmt.Sprintf(format, args...)); err != nil {
		t.err = fmt.Errorf("trace: write event: %w", err)
	}
}

// Count returns the number of events recorded (0 on a nil tracer).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count
}

// Flush drains buffered events to the underlying writer and returns the
// first error encountered during the trace's lifetime.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if err := t.out.Flush(); err != nil && t.err == nil {
		t.err = fmt.Errorf("trace: flush: %w", err)
	}
	return t.err
}
