package trace

// Flight recorder: a bounded in-memory ring of probe-lifecycle events,
// one per fleet shard. Where the Tracer above streams a simulation's
// full history to a writer, the flight recorder answers a different
// question — "what were the last N things this shard did before the
// verdict fired?" — on a live daemon, at hot-path cost: recording one
// event is a couple of stores into a preallocated ring, no allocation,
// no locking of its own (the shard's event loop already serializes all
// writers, and dumps take the same shard mutex briefly).

import (
	"fmt"
	"io"
	"sort"
	"time"

	"presence/internal/ident"
)

// EventKind classifies one flight-recorder event.
type EventKind uint8

const (
	EvNone EventKind = iota
	// EvProbeSent: a probe datagram left for Device (CP, Cycle, Attempt).
	EvProbeSent
	// EvReplyMatched: a reply matched a pending probe and was accepted.
	EvReplyMatched
	// EvAttemptExpired: a probe attempt timed out with no reply.
	EvAttemptExpired
	// EvVerdictLost: the prober declared Device lost.
	EvVerdictLost
	// EvVerdictBye: Device announced a clean departure (BYE).
	EvVerdictBye
	// EvHandoff: a stray frame for another shard's cycle space was
	// routed through the cross-shard handoff queue (ReusePort layouts).
	EvHandoff
)

var kindNames = [...]string{
	EvNone:           "none",
	EvProbeSent:      "probe-sent",
	EvReplyMatched:   "reply-matched",
	EvAttemptExpired: "attempt-expired",
	EvVerdictLost:    "verdict-lost",
	EvVerdictBye:     "verdict-bye",
	EvHandoff:        "handoff",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-size flight-recorder record. At is time since the
// owning fleet's epoch, not wall clock — epoch-relative times make two
// same-seed memnet runs comparable.
type Event struct {
	At      time.Duration `json:"at_ns"`
	Device  ident.NodeID  `json:"device"`
	CP      ident.NodeID  `json:"cp"`
	Cycle   uint32        `json:"cycle"`
	Attempt uint8         `json:"attempt"`
	Kind    EventKind     `json:"kind"`
}

// Ring is a bounded flight-recorder buffer: the newest Cap events win,
// older ones are overwritten in place. Ring does no synchronization of
// its own — in the fleet each shard owns one Ring and every Record and
// Snapshot happens under that shard's mutex, which its event loop
// already holds on the paths that record. Record never allocates.
type Ring struct {
	buf   []Event
	total uint64
}

// NewRing returns a ring holding the newest n events (n ≥ 1 forced).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Record appends one event, overwriting the oldest once full.
func (r *Ring) Record(e Event) {
	r.buf[r.total%uint64(len(r.buf))] = e
	r.total++
}

// Total returns how many events were ever recorded.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns how many events were overwritten before being read.
func (r *Ring) Dropped() uint64 {
	if n := uint64(len(r.buf)); r.total > n {
		return r.total - n
	}
	return 0
}

// Snapshot copies the retained events oldest-first. It allocates; call
// it from dump paths, not the hot path.
func (r *Ring) Snapshot() []Event {
	n := r.total
	if max := uint64(len(r.buf)); n > max {
		n = max
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%uint64(len(r.buf))])
	}
	return out
}

// WriteFlight renders one shard's events human-readably, one per line:
//
//	s0 +12.003456 probe-sent dev=n5 cp=n12 cycle=1034 attempt=0
//
// This is the /debug/flight and SIGQUIT dump format.
func WriteFlight(w io.Writer, shard int, events []Event) error {
	for _, e := range events {
		var err error
		switch e.Kind {
		case EvHandoff:
			_, err = fmt.Fprintf(w, "s%d +%.6f %s dev=%s cycle=%d\n",
				shard, e.At.Seconds(), e.Kind, e.Device, e.Cycle)
		default:
			_, err = fmt.Fprintf(w, "s%d +%.6f %s dev=%s cp=%s cycle=%d attempt=%d\n",
				shard, e.At.Seconds(), e.Kind, e.Device, e.CP, e.Cycle, e.Attempt)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Normalize reduces per-shard flight snapshots to the portion that is
// protocol-deterministic: one line per control point listing its event
// sequence with cycles rebased to the CP's first recorded cycle. Wall
// timestamps are stripped (they vary run to run), handoff events are
// skipped (ReusePort flow hashing is layout-dependent), and lines sort
// by CP id, so two same-seed memnet runs of the same timeline produce
// byte-identical output regardless of scheduling. The conformance
// harness pins exactly that.
func Normalize(shards [][]Event) []string {
	type cpState struct {
		cp, dev ident.NodeID
		base    uint32
		seen    bool
		toks    []string
	}
	byCP := map[ident.NodeID]*cpState{}
	var order []ident.NodeID
	for _, events := range shards {
		for _, e := range events {
			if e.Kind == EvHandoff || !e.CP.Valid() {
				continue
			}
			st := byCP[e.CP]
			if st == nil {
				st = &cpState{cp: e.CP, dev: e.Device}
				byCP[e.CP] = st
				order = append(order, e.CP)
			}
			if !st.seen {
				st.base, st.seen = e.Cycle, true
			}
			st.toks = append(st.toks,
				fmt.Sprintf("%s(c%+d,a%d)", e.Kind, int64(e.Cycle)-int64(st.base), e.Attempt))
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	lines := make([]string, 0, len(order))
	for _, id := range order {
		st := byCP[id]
		line := fmt.Sprintf("%s<-%s:", st.dev, st.cp)
		for _, tok := range st.toks {
			line += " " + tok
		}
		lines = append(lines, line)
	}
	return lines
}
