// Package simrun is the simulation runtime: it binds the protocol
// engines (internal/core/...) to the discrete-event kernel (internal/des)
// and the simulated network (internal/simnet), provides the churn drivers
// used in the paper's scenarios, and instruments the world with the
// measurements the evaluation needs (device load bins, per-CP probe
// frequency traces, detection latencies, buffer occupancy).
//
// A World is fully deterministic: its behaviour is a pure function of
// (Config, Seed). All activity happens on the caller's goroutine inside
// World.Run.
package simrun

import (
	"fmt"
	"io"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/discovery"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/simnet"
)

// Protocol selects which probe protocol a World runs.
type Protocol string

// The three protocols under study.
const (
	ProtocolSAPP  Protocol = "sapp"
	ProtocolDCPP  Protocol = "dcpp"
	ProtocolNaive Protocol = "naive"
)

// Valid reports whether p is a known protocol.
func (p Protocol) Valid() bool {
	switch p {
	case ProtocolSAPP, ProtocolDCPP, ProtocolNaive:
		return true
	default:
		return false
	}
}

// ProcessingConfig models the device's computation time: each reply is
// delayed by a uniform draw from [Min, Max]. The paper's timeouts assume
// a maximal computation time of 20 ms (TOF = 2·RTT + 20 ms), so the
// default is uniform [0, 20 ms].
type ProcessingConfig struct {
	// Disabled turns processing delay off entirely (replies leave the
	// device instantly).
	Disabled bool
	// Min and Max bound the uniform draw. Both zero (with Disabled
	// false) selects the paper defaults [0, 20 ms].
	Min, Max time.Duration
}

func (p *ProcessingConfig) applyDefaults() {
	if p.Disabled {
		return
	}
	if p.Min == 0 && p.Max == 0 {
		p.Max = 20 * time.Millisecond
	}
}

func (p ProcessingConfig) validate() error {
	if p.Disabled {
		return nil
	}
	if p.Min < 0 || p.Max < p.Min {
		return fmt.Errorf("simrun: processing bounds [%v, %v] invalid", p.Min, p.Max)
	}
	return nil
}

// Config assembles a World.
type Config struct {
	// Protocol selects SAPP, DCPP or the naive baseline.
	Protocol Protocol
	// Seed determines every random draw in the run.
	Seed uint64
	// Devices is the number of devices in the world (default 1, the
	// paper's setting — it argues devices are mutually independent).
	// Every control point monitors every device with an independent
	// prober and policy.
	Devices int

	// Net configures the simulated network. Zero value = paper network
	// (three-mode delays, no loss, 20 000-message buffer).
	Net simnet.Config
	// Processing models device computation time.
	Processing ProcessingConfig
	// Retransmit configures the probe cycle. Zero value = paper values
	// (TOF 22 ms, TOS 21 ms, 3 retransmissions).
	Retransmit core.RetransmitConfig

	// SAPPDevice/SAPPCP parameterise SAPP (zero values = paper values).
	SAPPDevice sapp.DeviceConfig
	SAPPCP     sapp.CPConfig
	// DCPPDevice/DCPPPolicy parameterise DCPP (zero values = paper
	// values).
	DCPPDevice dcpp.DeviceConfig
	DCPPPolicy dcpp.PolicyConfig
	// NaivePeriod is the fixed probe period of the baseline (zero =
	// 1 s).
	NaivePeriod time.Duration

	// LoadBin is the width of the device-load measurement bins (zero =
	// 1 s, which reproduces the paper's Fig. 5 variance).
	LoadBin time.Duration
	// RecordCPSeries enables per-CP probe-frequency (1/δ) time series —
	// the traces of Figs. 2-4.
	RecordCPSeries bool
	// SeriesWindow restricts CP series recording to [From, To) when To >
	// 0 (Fig. 3 records one minute out of a 20 000 s run).
	SeriesWindow struct{ From, To time.Duration }
	// SeriesDecimate keeps every n-th sample of CP series (0/1 = all).
	SeriesDecimate int
	// EnableOverlay attaches a leave-dissemination overlay manager to
	// every CP (the extension experiments).
	EnableOverlay bool
	// Discovery enables the UPnP-style announcement layer.
	Discovery DiscoveryConfig
	// Trace, when non-nil, receives a line-oriented event log of the run
	// (joins, leaves, deliveries, detections). Two runs with the same
	// seed produce byte-identical traces.
	Trace io.Writer
}

// DiscoveryConfig enables device announcements and CP-side registries.
type DiscoveryConfig struct {
	// Enabled turns the layer on. When enabled, CPs create probers
	// dynamically as devices are discovered instead of being wired to
	// all devices at join time.
	Enabled bool
	// Announce parameterises the device announcers (zero values =
	// discovery package defaults: max-age 60 s, period max-age/3).
	Announce discovery.AnnouncerConfig
	// Sweep is the CP registry expiry-check interval (zero = 1 s).
	Sweep time.Duration
	// ProbeOnDiscovery starts a probe-protocol prober for each
	// discovered device. Disabling it leaves CPs with announcement
	// expiry as their only liveness signal — the baseline the paper's
	// "enhancing discovery with liveness" premise argues against.
	ProbeOnDiscovery bool
}

func (c *Config) applyDefaults() {
	if c.Devices == 0 {
		c.Devices = 1
	}
	if c.Retransmit == (core.RetransmitConfig{}) {
		c.Retransmit = core.DefaultRetransmit()
	}
	if c.SAPPDevice == (sapp.DeviceConfig{}) {
		c.SAPPDevice = sapp.DefaultDeviceConfig()
	}
	if c.SAPPCP == (sapp.CPConfig{}) {
		c.SAPPCP = sapp.DefaultCPConfig()
	}
	if c.DCPPDevice == (dcpp.DeviceConfig{}) {
		c.DCPPDevice = dcpp.DefaultDeviceConfig()
	}
	if c.NaivePeriod == 0 {
		c.NaivePeriod = naive.DefaultPeriod
	}
	if c.LoadBin == 0 {
		c.LoadBin = time.Second
	}
	c.Processing.applyDefaults()
}

// WithDefaults returns a copy with zero-value fields replaced by the
// paper defaults — the same normalisation NewWorld applies internally,
// exposed for runtimes that must mirror the simulator's effective
// configuration (internal/conformance builds the fleet replay's
// engines from it).
func (c Config) WithDefaults() Config {
	c.applyDefaults()
	return c
}

// Validate checks the assembled configuration.
func (c Config) Validate() error {
	if !c.Protocol.Valid() {
		return fmt.Errorf("simrun: unknown protocol %q", c.Protocol)
	}
	if err := c.Retransmit.Validate(); err != nil {
		return err
	}
	if err := c.Processing.validate(); err != nil {
		return err
	}
	if c.LoadBin < 0 {
		return fmt.Errorf("simrun: LoadBin %v must be non-negative", c.LoadBin)
	}
	if c.Devices < 1 {
		return fmt.Errorf("simrun: Devices %d must be positive", c.Devices)
	}
	if c.NaivePeriod < 0 {
		return fmt.Errorf("simrun: NaivePeriod %v must be non-negative", c.NaivePeriod)
	}
	return nil
}
