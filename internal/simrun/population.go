package simrun

import (
	"fmt"
	"math"
	"time"
)

// PopulationModel drives the control-point membership of a world over
// simulated time. A model is installed once, before the simulation runs;
// it schedules joins and leaves on the world's event kernel and derives
// every random draw from forks of the world's churn RNG, so installing a
// model never perturbs the draws seen by other components and two worlds
// with the same (Config, Seed, model) replay the same event stream.
//
// The paper's two dynamics (the Fig. 4 mass leave and the Fig. 5 uniform
// churn) are models like any other; internal/scenario compiles
// declarative specs into these values.
type PopulationModel interface {
	// Install schedules the model's joins and leaves on the world.
	Install(w *World) error
}

// StartPopulation installs a population model. Call it before Run.
func (w *World) StartPopulation(m PopulationModel) error {
	if m == nil {
		return fmt.Errorf("simrun: nil population model")
	}
	return m.Install(w)
}

// StaticPopulation joins a fixed set of CPs at independent uniform times
// in [0, Spread) and leaves them in place — the paper's steady-state
// setting. Spread zero joins all CPs immediately at install time.
type StaticPopulation struct {
	// CPs is the population size.
	CPs int
	// Spread staggers the joins uniformly over [0, Spread).
	Spread time.Duration
}

// Validate checks the model parameters.
func (p StaticPopulation) Validate() error {
	if p.CPs < 0 {
		return fmt.Errorf("simrun: negative CP count %d", p.CPs)
	}
	if p.Spread < 0 {
		return fmt.Errorf("simrun: negative spread %v", p.Spread)
	}
	return nil
}

// Install implements PopulationModel.
func (p StaticPopulation) Install(w *World) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Spread == 0 {
		// Immediate joins reproduce the historical AddCPs path exactly
		// (no stagger events, no stagger draws).
		_, err := w.AddCPs(p.CPs)
		return err
	}
	return w.AddCPsStaggered(p.CPs, p.Spread)
}

// MassLeavePopulation is the paper's Fig. 4 dynamic: a static population
// joins staggered, then at LeaveAt the active population drops to
// Remaining, the leavers chosen uniformly at random.
type MassLeavePopulation struct {
	// CPs and Spread parameterise the initial static join.
	CPs    int
	Spread time.Duration
	// LeaveAt is the mass-leave instant.
	LeaveAt time.Duration
	// Remaining is the population left after the exodus.
	Remaining int
}

// Validate checks the model parameters.
func (p MassLeavePopulation) Validate() error {
	if err := (StaticPopulation{CPs: p.CPs, Spread: p.Spread}).Validate(); err != nil {
		return err
	}
	if p.LeaveAt < 0 {
		return fmt.Errorf("simrun: negative mass-leave time %v", p.LeaveAt)
	}
	if p.Remaining < 0 {
		return fmt.Errorf("simrun: remaining %d must be non-negative", p.Remaining)
	}
	return nil
}

// Install implements PopulationModel.
func (p MassLeavePopulation) Install(w *World) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := w.AddCPsStaggered(p.CPs, p.Spread); err != nil {
		return err
	}
	return w.ScheduleMassLeave(p.LeaveAt, p.Remaining)
}

// UniformChurn is the paper's Fig. 5 worst-case dynamic scenario: "the
// number of active CPs is uniformly chosen from the set {1, ..., 60}.
// This choice is repeated every X time-units, where X is exponentially
// distributed with rate 0.05."
type UniformChurn struct {
	// Min and Max bound the uniform population draw (paper: 1 and 60).
	Min, Max int
	// Rate is the redraw rate in events per second (paper: 0.05, i.e.
	// the population changes every 20 s on average).
	Rate float64
}

// DefaultUniformChurn returns the paper's churn parameters.
func DefaultUniformChurn() UniformChurn {
	return UniformChurn{Min: 1, Max: 60, Rate: 0.05}
}

// Validate checks the churn parameters.
func (c UniformChurn) Validate() error {
	if c.Min < 0 || c.Max < c.Min {
		return fmt.Errorf("simrun: churn population bounds [%d, %d] invalid", c.Min, c.Max)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("simrun: churn rate %g must be positive", c.Rate)
	}
	return nil
}

// Install implements PopulationModel: it draws an initial population
// immediately and then redraws it at exponentially distributed intervals,
// adding fresh CPs or removing random active ones to hit each target.
func (c UniformChurn) Install(w *World) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r := w.churnRand.Fork("uniform")
	var redraw func()
	redraw = func() {
		target := r.IntBetween(c.Min, c.Max)
		if err := w.setPopulation(target, r); err != nil {
			// Construction can only fail on invalid configuration, which
			// Validate has already excluded; a failure here is a bug.
			panic(fmt.Sprintf("simrun: churn population change: %v", err))
		}
		w.sim.After(r.ExpDuration(c.Rate), redraw)
	}
	w.sim.At(w.sim.Now(), redraw)
	return nil
}

// StartChurn installs the Fig. 5 churn model. Kept as a named entry
// point because it is the paper's headline scenario; equivalent to
// StartPopulation(c).
func (w *World) StartChurn(c UniformChurn) error {
	return w.StartPopulation(c)
}

// FlashCrowd models correlated join/leave bursts: a base population is
// always present, and whole cohorts arrive together at exponentially
// distributed instants, dwell for a uniform time, and leave together —
// the "everyone tunes in for the event, everyone leaves at the whistle"
// dynamic of session-based monitoring studies.
type FlashCrowd struct {
	// Base CPs join at install time, staggered over BaseSpread.
	Base       int
	BaseSpread time.Duration
	// BurstRate is the cohort arrival rate (bursts per second).
	BurstRate float64
	// BurstMin and BurstMax bound the uniform cohort size.
	BurstMin, BurstMax int
	// DwellMin and DwellMax bound the uniform cohort dwell time; the
	// whole cohort leaves together when it elapses.
	DwellMin, DwellMax time.Duration
}

// Validate checks the model parameters.
func (c FlashCrowd) Validate() error {
	if c.Base < 0 || c.BaseSpread < 0 {
		return fmt.Errorf("simrun: flash crowd base %d/spread %v invalid", c.Base, c.BaseSpread)
	}
	if c.BurstRate <= 0 {
		return fmt.Errorf("simrun: flash crowd burst rate %g must be positive", c.BurstRate)
	}
	if c.BurstMin < 1 || c.BurstMax < c.BurstMin {
		return fmt.Errorf("simrun: flash crowd burst bounds [%d, %d] invalid", c.BurstMin, c.BurstMax)
	}
	if c.DwellMin < 0 || c.DwellMax < c.DwellMin {
		return fmt.Errorf("simrun: flash crowd dwell bounds [%v, %v] invalid", c.DwellMin, c.DwellMax)
	}
	return nil
}

// Install implements PopulationModel.
func (c FlashCrowd) Install(w *World) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r := w.churnRand.Fork("flash")
	now := w.sim.Now()
	for i := 0; i < c.Base; i++ {
		at := now
		if c.BaseSpread > 0 {
			at += r.Duration(0, c.BaseSpread)
		}
		w.sim.At(at, func() {
			if _, err := w.AddCP(); err != nil {
				panic(fmt.Sprintf("simrun: flash crowd base join: %v", err))
			}
		})
	}
	var burst func()
	burst = func() {
		size := r.IntBetween(c.BurstMin, c.BurstMax)
		cohort, err := w.AddCPs(size)
		if err != nil {
			panic(fmt.Sprintf("simrun: flash crowd burst join: %v", err))
		}
		dwell := r.Duration(c.DwellMin, c.DwellMax)
		w.sim.After(dwell, func() {
			for _, h := range cohort {
				w.RemoveCP(h.ID)
			}
		})
		w.sim.After(r.ExpDuration(c.BurstRate), burst)
	}
	w.sim.After(r.ExpDuration(c.BurstRate), burst)
	return nil
}

// MarkovSessions models a fixed set of members that alternate between
// joined (on) and absent (off) states with exponentially distributed
// sojourn times — per-CP two-state Markov on/off sessions. A returning
// member joins as a fresh CP, unaware of any schedule, which is exactly
// the disturbance the paper studies on every join.
type MarkovSessions struct {
	// Members is the number of independent on/off members.
	Members int
	// MeanOn is the mean session (joined) duration.
	MeanOn time.Duration
	// MeanOff is the mean absence duration.
	MeanOff time.Duration
	// StartOn is the probability a member starts joined.
	StartOn float64
}

// Validate checks the model parameters.
func (c MarkovSessions) Validate() error {
	if c.Members < 0 {
		return fmt.Errorf("simrun: negative member count %d", c.Members)
	}
	if c.MeanOn <= 0 || c.MeanOff <= 0 {
		return fmt.Errorf("simrun: markov sojourn means [%v, %v] must be positive", c.MeanOn, c.MeanOff)
	}
	if c.StartOn < 0 || c.StartOn > 1 {
		return fmt.Errorf("simrun: markov StartOn %g outside [0,1]", c.StartOn)
	}
	return nil
}

// Install implements PopulationModel.
func (c MarkovSessions) Install(w *World) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r := w.churnRand.Fork("markov")
	onRate := 1 / c.MeanOn.Seconds()
	offRate := 1 / c.MeanOff.Seconds()
	for i := 0; i < c.Members; i++ {
		ri := r.Fork(fmt.Sprintf("m%d", i))
		var cur *CPHost
		var flip func()
		flip = func() {
			if cur == nil {
				h, err := w.AddCP()
				if err != nil {
					panic(fmt.Sprintf("simrun: markov session join: %v", err))
				}
				cur = h
				w.sim.After(ri.ExpDuration(onRate), flip)
			} else {
				w.RemoveCP(cur.ID)
				cur = nil
				w.sim.After(ri.ExpDuration(offRate), flip)
			}
		}
		if ri.Bool(c.StartOn) {
			w.sim.At(w.sim.Now(), flip)
		} else {
			w.sim.After(ri.ExpDuration(offRate), flip)
		}
	}
	return nil
}

// Heavy-tailed lifetime distribution names.
const (
	// LifetimePareto draws lifetimes as MinLifetime·X with X ~
	// Pareto(Shape): most sessions are short, a few are very long.
	LifetimePareto = "pareto"
	// LifetimeLogNormal draws lifetimes as exp(Mu + Sigma·N) seconds.
	LifetimeLogNormal = "lognormal"
)

// HeavyTailLifetimes models Poisson CP arrivals whose session lengths
// follow a heavy-tailed (Pareto or lognormal) distribution — the
// empirical shape of peer session times in self-configuring networks,
// where a static or exponential population misses the long-tail
// stragglers entirely.
type HeavyTailLifetimes struct {
	// ArrivalRate is the Poisson CP arrival rate per second.
	ArrivalRate float64
	// Initial CPs join at install time with lifetimes drawn from the
	// same distribution.
	Initial int
	// Distribution selects LifetimePareto or LifetimeLogNormal.
	Distribution string
	// Shape is the Pareto tail index; MinLifetime scales the draw (it is
	// also the shortest possible session).
	Shape       float64
	MinLifetime time.Duration
	// Mu and Sigma parameterise the lognormal (in log-seconds).
	Mu, Sigma float64
	// MaxLifetime caps every draw when positive, bounding the tail.
	MaxLifetime time.Duration
}

// Validate checks the model parameters.
func (c HeavyTailLifetimes) Validate() error {
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("simrun: heavy-tail arrival rate %g must be positive", c.ArrivalRate)
	}
	if c.Initial < 0 {
		return fmt.Errorf("simrun: negative initial population %d", c.Initial)
	}
	switch c.Distribution {
	case LifetimePareto:
		if c.Shape <= 0 {
			return fmt.Errorf("simrun: Pareto shape %g must be positive", c.Shape)
		}
		if c.MinLifetime <= 0 {
			return fmt.Errorf("simrun: Pareto minimum lifetime %v must be positive", c.MinLifetime)
		}
	case LifetimeLogNormal:
		if c.Sigma < 0 {
			return fmt.Errorf("simrun: lognormal sigma %g must be non-negative", c.Sigma)
		}
	default:
		return fmt.Errorf("simrun: unknown lifetime distribution %q", c.Distribution)
	}
	if c.MaxLifetime < 0 {
		return fmt.Errorf("simrun: negative lifetime cap %v", c.MaxLifetime)
	}
	return nil
}

// Install implements PopulationModel.
func (c HeavyTailLifetimes) Install(w *World) error {
	if err := c.Validate(); err != nil {
		return err
	}
	// lifetimeCeiling bounds extreme tail draws. It is far beyond any
	// simulation horizon yet small enough that now+lifetime can never
	// overflow the kernel's time representation (MaxInt64 ≈ 292 years).
	const lifetimeCeiling = 100 * 365 * 24 * time.Hour
	r := w.churnRand.Fork("heavytail")
	lifetime := func() time.Duration {
		var sec float64
		switch c.Distribution {
		case LifetimePareto:
			sec = c.MinLifetime.Seconds() * r.Pareto(c.Shape)
		default: // LifetimeLogNormal, by Validate
			sec = r.LogNormal(c.Mu, c.Sigma)
		}
		d := time.Duration(sec * float64(time.Second))
		if d < 0 || d > lifetimeCeiling { // overflow of an extreme tail draw
			d = lifetimeCeiling
		}
		if c.MaxLifetime > 0 && d > c.MaxLifetime {
			d = c.MaxLifetime
		}
		return d
	}
	join := func() {
		h, err := w.AddCP()
		if err != nil {
			panic(fmt.Sprintf("simrun: heavy-tail join: %v", err))
		}
		w.sim.After(lifetime(), func() { w.RemoveCP(h.ID) })
	}
	for i := 0; i < c.Initial; i++ {
		join()
	}
	var arrive func()
	arrive = func() {
		join()
		w.sim.After(r.ExpDuration(c.ArrivalRate), arrive)
	}
	w.sim.After(r.ExpDuration(c.ArrivalRate), arrive)
	return nil
}

// DiurnalArrivals models a nonhomogeneous Poisson arrival process whose
// rate follows a sinusoid over a configurable period (a simulated "day"),
// with exponentially distributed session lengths. Arrivals are generated
// by Lewis–Shedler thinning against the peak rate, so the process is
// exact, not binned.
type DiurnalArrivals struct {
	// BaseRate is the mean arrival rate (CPs per second).
	BaseRate float64
	// Amplitude in [0, 1] is the relative swing: the instantaneous rate
	// is BaseRate·(1 + Amplitude·sin(2πt/Period + Phase)).
	Amplitude float64
	// Period is the length of one cycle.
	Period time.Duration
	// Phase offsets the sinusoid (radians).
	Phase float64
	// MeanLifetime is the mean exponential session length.
	MeanLifetime time.Duration
	// Initial CPs join at install time.
	Initial int
}

// Validate checks the model parameters.
func (c DiurnalArrivals) Validate() error {
	if c.BaseRate <= 0 {
		return fmt.Errorf("simrun: diurnal base rate %g must be positive", c.BaseRate)
	}
	if c.Amplitude < 0 || c.Amplitude > 1 {
		return fmt.Errorf("simrun: diurnal amplitude %g outside [0,1]", c.Amplitude)
	}
	if c.Period <= 0 {
		return fmt.Errorf("simrun: diurnal period %v must be positive", c.Period)
	}
	if c.MeanLifetime <= 0 {
		return fmt.Errorf("simrun: diurnal mean lifetime %v must be positive", c.MeanLifetime)
	}
	if c.Initial < 0 {
		return fmt.Errorf("simrun: negative initial population %d", c.Initial)
	}
	return nil
}

// Install implements PopulationModel.
func (c DiurnalArrivals) Install(w *World) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r := w.churnRand.Fork("diurnal")
	leaveRate := 1 / c.MeanLifetime.Seconds()
	join := func() {
		h, err := w.AddCP()
		if err != nil {
			panic(fmt.Sprintf("simrun: diurnal join: %v", err))
		}
		w.sim.After(r.ExpDuration(leaveRate), func() { w.RemoveCP(h.ID) })
	}
	for i := 0; i < c.Initial; i++ {
		join()
	}
	peak := c.BaseRate * (1 + c.Amplitude)
	var candidate func()
	candidate = func() {
		t := w.sim.Now().Seconds()
		rate := c.BaseRate * (1 + c.Amplitude*math.Sin(2*math.Pi*t/c.Period.Seconds()+c.Phase))
		if r.Bool(rate / peak) {
			join()
		}
		w.sim.After(r.ExpDuration(peak), candidate)
	}
	w.sim.After(r.ExpDuration(peak), candidate)
	return nil
}
