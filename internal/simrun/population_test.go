package simrun

import (
	"math"
	"testing"
	"time"
)

func newTestWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	w, err := NewWorld(Config{Protocol: ProtocolDCPP, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStaticPopulationMatchesStaggered: the model must replay the exact
// event stream of the historical AddCPsStaggered call — the experiments
// ported onto scenario specs depend on it.
func TestStaticPopulationMatchesStaggered(t *testing.T) {
	run := func(install func(w *World) error) (uint64, float64) {
		w := newTestWorld(t, 42)
		if err := install(w); err != nil {
			t.Fatal(err)
		}
		w.Run(120 * time.Second)
		st := w.DeviceLoad().Stats()
		return w.Sim().Executed(), st.Mean()
	}
	evA, loadA := run(func(w *World) error { return w.AddCPsStaggered(20, 10*time.Second) })
	evB, loadB := run(func(w *World) error {
		return w.StartPopulation(StaticPopulation{CPs: 20, Spread: 10 * time.Second})
	})
	if evA != evB || math.Float64bits(loadA) != math.Float64bits(loadB) {
		t.Fatalf("model diverged from AddCPsStaggered: events %d vs %d, load %g vs %g",
			evA, evB, loadA, loadB)
	}
}

// TestMassLeaveModelMatchesSchedule: same equivalence for the Fig. 4
// composition.
func TestMassLeaveModelMatchesSchedule(t *testing.T) {
	run := func(install func(w *World) error) (uint64, int) {
		w := newTestWorld(t, 7)
		if err := install(w); err != nil {
			t.Fatal(err)
		}
		w.Run(200 * time.Second)
		return w.Sim().Executed(), w.ActiveCount()
	}
	evA, nA := run(func(w *World) error {
		if err := w.AddCPsStaggered(20, 10*time.Second); err != nil {
			return err
		}
		return w.ScheduleMassLeave(100*time.Second, 2)
	})
	evB, nB := run(func(w *World) error {
		return w.StartPopulation(MassLeavePopulation{
			CPs: 20, Spread: 10 * time.Second,
			LeaveAt: 100 * time.Second, Remaining: 2,
		})
	})
	if evA != evB || nA != nB {
		t.Fatalf("mass-leave model diverged: events %d vs %d, survivors %d vs %d", evA, evB, nA, nB)
	}
	if nB != 2 {
		t.Fatalf("survivors = %d, want 2", nB)
	}
}

func TestFlashCrowdBurstsAreCorrelated(t *testing.T) {
	w := newTestWorld(t, 3)
	model := FlashCrowd{
		Base: 4, BaseSpread: 5 * time.Second,
		BurstRate: 1.0 / 60, BurstMin: 10, BurstMax: 20,
		DwellMin: 30 * time.Second, DwellMax: 90 * time.Second,
	}
	if err := w.StartPopulation(model); err != nil {
		t.Fatal(err)
	}
	w.Run(600 * time.Second)
	total := len(w.AllCPs())
	if total < model.Base+model.BurstMin {
		t.Fatalf("only %d CPs ever joined; no burst arrived in 600 s", total)
	}
	// Cohorts leave together: the CP count series must drop by at least
	// BurstMin within a single instant (each leave is its own -1 sample,
	// so sum consecutive drops sharing a timestamp).
	pts := w.CPCountSeries().Points()
	maxDrop := 0.0
	for i := 1; i < len(pts); i++ {
		drop := 0.0
		for j := i; j < len(pts) && pts[j].T == pts[i].T && pts[j].V < pts[j-1].V; j++ {
			drop += pts[j-1].V - pts[j].V
		}
		if drop > maxDrop {
			maxDrop = drop
		}
	}
	if maxDrop < float64(model.BurstMin) {
		t.Fatalf("largest population drop %.0f < burst min %d; cohort did not leave together",
			maxDrop, model.BurstMin)
	}
	// The base population never leaves.
	if w.ActiveCount() < model.Base {
		t.Fatalf("active %d < base %d", w.ActiveCount(), model.Base)
	}
}

func TestMarkovSessionsBounded(t *testing.T) {
	w := newTestWorld(t, 9)
	model := MarkovSessions{
		Members: 10,
		MeanOn:  60 * time.Second, MeanOff: 60 * time.Second,
		StartOn: 0.5,
	}
	if err := w.StartPopulation(model); err != nil {
		t.Fatal(err)
	}
	w.Run(900 * time.Second)
	for _, p := range w.CPCountSeries().Points() {
		if p.V > float64(model.Members) {
			t.Fatalf("population %v exceeds member count %d at %v", p.V, model.Members, p.T)
		}
	}
	// Sessions churned: rejoins create fresh CP hosts, so far more hosts
	// than members must exist over 15 mean on/off cycles.
	if total := len(w.AllCPs()); total <= model.Members {
		t.Fatalf("only %d CP hosts ever existed; sessions did not cycle", total)
	}
}

func TestHeavyTailLifetimes(t *testing.T) {
	for _, dist := range []string{LifetimePareto, LifetimeLogNormal} {
		w := newTestWorld(t, 11)
		model := HeavyTailLifetimes{
			ArrivalRate: 0.2, Initial: 5,
			Distribution: dist,
			Shape:        1.5, MinLifetime: 10 * time.Second,
			Mu: math.Log(30), Sigma: 1.5,
			MaxLifetime: 1800 * time.Second,
		}
		if err := w.StartPopulation(model); err != nil {
			t.Fatal(err)
		}
		w.Run(600 * time.Second)
		total := len(w.AllCPs())
		if total < model.Initial+20 {
			t.Fatalf("%s: only %d CPs ever joined at rate 0.2/s over 600 s", dist, total)
		}
		left := total - w.ActiveCount()
		if left == 0 {
			t.Fatalf("%s: no CP ever left; lifetimes not applied", dist)
		}
	}
}

// TestHeavyTailExtremeDrawsDoNotOverflow: tail draws beyond the kernel's
// time representation must be clamped, not wrapped into the past (a
// lognormal with mu=60 draws e^60 seconds routinely).
func TestHeavyTailExtremeDrawsDoNotOverflow(t *testing.T) {
	w := newTestWorld(t, 17)
	model := HeavyTailLifetimes{
		ArrivalRate:  1,
		Distribution: LifetimeLogNormal,
		Mu:           60, // e^60 s ≫ MaxInt64 ns
	}
	if err := w.StartPopulation(model); err != nil {
		t.Fatal(err)
	}
	w.Run(30 * time.Second) // panics without the overflow clamp
	if len(w.AllCPs()) == 0 {
		t.Fatal("no arrivals")
	}
}

func TestDiurnalArrivalsModulateRate(t *testing.T) {
	w := newTestWorld(t, 13)
	period := 600 * time.Second
	model := DiurnalArrivals{
		BaseRate: 0.2, Amplitude: 1, Period: period,
		MeanLifetime: 60 * time.Second,
	}
	if err := w.StartPopulation(model); err != nil {
		t.Fatal(err)
	}
	w.Run(4 * period)
	// Count joins in the sinusoid's positive half-cycles vs negative
	// half-cycles; with amplitude 1 the peak halves must dominate.
	var peakJoins, troughJoins int
	for _, h := range w.AllCPs() {
		phase := math.Mod(h.JoinedAt.Seconds(), period.Seconds()) / period.Seconds()
		if phase < 0.5 {
			peakJoins++
		} else {
			troughJoins++
		}
	}
	if peakJoins+troughJoins < 50 {
		t.Fatalf("only %d joins over 4 periods", peakJoins+troughJoins)
	}
	if float64(peakJoins) < 1.5*float64(troughJoins) {
		t.Fatalf("peak joins %d not clearly above trough joins %d; rate not modulated",
			peakJoins, troughJoins)
	}
}

// TestPopulationModelsDeterministic: every model must replay the same
// event stream for a fixed seed.
func TestPopulationModelsDeterministic(t *testing.T) {
	models := map[string]PopulationModel{
		"static":     StaticPopulation{CPs: 10, Spread: 5 * time.Second},
		"mass-leave": MassLeavePopulation{CPs: 10, Spread: 5 * time.Second, LeaveAt: 60 * time.Second, Remaining: 2},
		"uniform":    DefaultUniformChurn(),
		"flash": FlashCrowd{Base: 3, BurstRate: 0.02, BurstMin: 5, BurstMax: 10,
			DwellMin: 20 * time.Second, DwellMax: 60 * time.Second},
		"markov": MarkovSessions{Members: 8, MeanOn: 50 * time.Second, MeanOff: 50 * time.Second, StartOn: 0.5},
		"heavytail": HeavyTailLifetimes{ArrivalRate: 0.1, Initial: 3,
			Distribution: LifetimePareto, Shape: 1.2, MinLifetime: 15 * time.Second},
		"diurnal": DiurnalArrivals{BaseRate: 0.1, Amplitude: 0.8, Period: 300 * time.Second,
			MeanLifetime: 60 * time.Second, Initial: 2},
	}
	for name, m := range models {
		run := func() (uint64, float64) {
			w := newTestWorld(t, 2005)
			if err := w.StartPopulation(m); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			w.Run(300 * time.Second)
			st := w.DeviceLoad().Stats()
			return w.Sim().Executed(), st.Mean()
		}
		ev1, load1 := run()
		ev2, load2 := run()
		if ev1 != ev2 || math.Float64bits(load1) != math.Float64bits(load2) {
			t.Errorf("%s not deterministic: events %d vs %d, load %g vs %g",
				name, ev1, ev2, load1, load2)
		}
	}
}

func TestPopulationModelValidation(t *testing.T) {
	bad := map[string]PopulationModel{
		"static-negative":   StaticPopulation{CPs: -1},
		"mass-leave-remain": MassLeavePopulation{CPs: 5, Remaining: -1},
		"uniform-bounds":    UniformChurn{Min: 5, Max: 1, Rate: 1},
		"uniform-rate":      UniformChurn{Min: 1, Max: 5, Rate: 0},
		"flash-rate":        FlashCrowd{BurstRate: 0, BurstMin: 1, BurstMax: 2},
		"flash-burst":       FlashCrowd{BurstRate: 1, BurstMin: 0, BurstMax: 2},
		"flash-dwell":       FlashCrowd{BurstRate: 1, BurstMin: 1, BurstMax: 2, DwellMin: time.Second, DwellMax: 0},
		"markov-mean":       MarkovSessions{Members: 1, MeanOn: 0, MeanOff: time.Second},
		"markov-prob":       MarkovSessions{Members: 1, MeanOn: time.Second, MeanOff: time.Second, StartOn: 2},
		"heavytail-dist":    HeavyTailLifetimes{ArrivalRate: 1, Distribution: "zipf"},
		"heavytail-shape":   HeavyTailLifetimes{ArrivalRate: 1, Distribution: LifetimePareto, Shape: 0, MinLifetime: time.Second},
		"heavytail-rate":    HeavyTailLifetimes{ArrivalRate: 0, Distribution: LifetimePareto, Shape: 1, MinLifetime: time.Second},
		"diurnal-amplitude": DiurnalArrivals{BaseRate: 1, Amplitude: 1.5, Period: time.Second, MeanLifetime: time.Second},
		"diurnal-period":    DiurnalArrivals{BaseRate: 1, Amplitude: 0.5, Period: 0, MeanLifetime: time.Second},
		"diurnal-lifetime":  DiurnalArrivals{BaseRate: 1, Amplitude: 0.5, Period: time.Second, MeanLifetime: 0},
	}
	for name, m := range bad {
		w := newTestWorld(t, 1)
		if err := w.StartPopulation(m); err == nil {
			t.Errorf("%s: invalid model accepted", name)
		}
	}
	w := newTestWorld(t, 1)
	if err := w.StartPopulation(nil); err == nil {
		t.Error("nil model accepted")
	}
}
