package simrun

import (
	"time"

	"presence/internal/stats"
)

// LoadRecorder bins an event stream (probe arrivals at the device) into
// fixed-width windows and exposes the per-bin rates as both a time series
// (the Fig. 5 device-load trace) and aggregate statistics (the paper's
// steady-state load mean/variance, e.g. 9.7 and 20.0 for DCPP under
// churn).
type LoadRecorder struct {
	bin      time.Duration
	binStart time.Duration
	count    int
	total    uint64
	series   *stats.TimeSeries
	welford  stats.Welford
}

// NewLoadRecorder returns a recorder with the given bin width, starting
// at time start.
func NewLoadRecorder(name string, bin time.Duration, start time.Duration) *LoadRecorder {
	if bin <= 0 {
		bin = time.Second
	}
	return &LoadRecorder{
		bin:      bin,
		binStart: start,
		series:   stats.NewTimeSeries(name),
	}
}

// Record counts one event at time now.
func (l *LoadRecorder) Record(now time.Duration) {
	l.advanceTo(now)
	l.count++
	l.total++
}

// Flush closes all bins ending at or before now. Call once at the end of
// a run before reading statistics.
func (l *LoadRecorder) Flush(now time.Duration) {
	l.advanceTo(now)
}

// advanceTo emits every complete bin before now, zero-filling gaps.
func (l *LoadRecorder) advanceTo(now time.Duration) {
	for l.binStart+l.bin <= now {
		rate := float64(l.count) / l.bin.Seconds()
		l.series.Add(l.binStart+l.bin, rate)
		l.welford.Add(rate)
		l.count = 0
		l.binStart += l.bin
	}
}

// Reset discards all measurements and restarts binning at now — used to
// drop a warmup phase.
func (l *LoadRecorder) Reset(now time.Duration) {
	l.count = 0
	l.total = 0
	l.binStart = now
	l.series = stats.NewTimeSeries(l.series.Name())
	l.welford.Reset()
}

// Series returns the per-bin rate time series.
func (l *LoadRecorder) Series() *stats.TimeSeries { return l.series }

// Stats returns the aggregate per-bin rate statistics.
func (l *LoadRecorder) Stats() stats.Welford { return l.welford }

// Total returns the number of recorded events since the last reset.
func (l *LoadRecorder) Total() uint64 { return l.total }

// BinWidth returns the recorder's bin width.
func (l *LoadRecorder) BinWidth() time.Duration { return l.bin }
