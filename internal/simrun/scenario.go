package simrun

import (
	"fmt"
	"time"

	"presence/internal/rng"
)

// ScheduleMassLeave arranges for the active CP population to drop to
// `remaining` at time `at` — the Fig. 4 scenario ("20 CPs, 18 CPs leave,
// 2 CPs left"). The leavers are chosen uniformly at random from the CPs
// active at that moment.
func (w *World) ScheduleMassLeave(at time.Duration, remaining int) error {
	if remaining < 0 {
		return fmt.Errorf("simrun: remaining %d must be non-negative", remaining)
	}
	w.sim.At(at, func() {
		active := w.ActiveCPs()
		leave := len(active) - remaining
		if leave <= 0 {
			return
		}
		perm := w.churnRand.Perm(len(active))
		for i := 0; i < leave; i++ {
			w.RemoveCP(active[perm[i]].ID)
		}
	})
	return nil
}

// UniformChurn is the paper's Fig. 5 worst-case dynamic scenario: "the
// number of active CPs is uniformly chosen from the set {1, ..., 60}.
// This choice is repeated every X time-units, where X is exponentially
// distributed with rate 0.05."
type UniformChurn struct {
	// Min and Max bound the uniform population draw (paper: 1 and 60).
	Min, Max int
	// Rate is the redraw rate in events per second (paper: 0.05, i.e.
	// the population changes every 20 s on average).
	Rate float64
}

// DefaultUniformChurn returns the paper's churn parameters.
func DefaultUniformChurn() UniformChurn {
	return UniformChurn{Min: 1, Max: 60, Rate: 0.05}
}

// Validate checks the churn parameters.
func (c UniformChurn) Validate() error {
	if c.Min < 0 || c.Max < c.Min {
		return fmt.Errorf("simrun: churn population bounds [%d, %d] invalid", c.Min, c.Max)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("simrun: churn rate %g must be positive", c.Rate)
	}
	return nil
}

// StartChurn draws an initial population immediately and then redraws it
// at exponentially distributed intervals, adding fresh CPs or removing
// random active ones to hit each target.
func (w *World) StartChurn(c UniformChurn) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r := w.churnRand.Fork("uniform")
	var redraw func()
	redraw = func() {
		target := r.IntBetween(c.Min, c.Max)
		if err := w.setPopulation(target, r); err != nil {
			// Construction can only fail on invalid configuration, which
			// Validate has already excluded; a failure here is a bug.
			panic(fmt.Sprintf("simrun: churn population change: %v", err))
		}
		w.sim.After(r.ExpDuration(c.Rate), redraw)
	}
	w.sim.At(w.sim.Now(), redraw)
	return nil
}

// setPopulation adds or removes CPs to reach the target count. Removals
// pick uniformly among active CPs; additions join as fresh CPs unaware
// of any schedule.
func (w *World) setPopulation(target int, r *rng.Rand) error {
	active := w.ActiveCPs()
	switch {
	case target > len(active):
		if _, err := w.AddCPs(target - len(active)); err != nil {
			return err
		}
	case target < len(active):
		perm := r.Perm(len(active))
		for i := 0; i < len(active)-target; i++ {
			w.RemoveCP(active[perm[i]].ID)
		}
	}
	return nil
}

// AddCPsStaggered schedules n CP joins at independent uniform times in
// [now, now+spread). The paper keeps its CP population "continuously
// present" but does not define their start times; staggering avoids the
// artificial lock-step of all CPs joining in the same instant.
func (w *World) AddCPsStaggered(n int, spread time.Duration) error {
	if n < 0 {
		return fmt.Errorf("simrun: negative CP count %d", n)
	}
	if spread < 0 {
		return fmt.Errorf("simrun: negative spread %v", spread)
	}
	r := w.churnRand.Fork("stagger")
	now := w.sim.Now()
	for i := 0; i < n; i++ {
		at := now
		if spread > 0 {
			at += r.Duration(0, spread)
		}
		w.sim.At(at, func() {
			if _, err := w.AddCP(); err != nil {
				panic(fmt.Sprintf("simrun: staggered join: %v", err))
			}
		})
	}
	return nil
}

// ScheduleDeviceCrash kills the device silently at time at.
func (w *World) ScheduleDeviceCrash(at time.Duration) {
	w.sim.At(at, func() { w.KillDevice() })
}

// ScheduleDeviceBye makes the device leave gracefully at time at.
func (w *World) ScheduleDeviceBye(at time.Duration) {
	w.sim.At(at, func() { w.DeviceBye() })
}
