package simrun

import (
	"fmt"
	"time"

	"presence/internal/rng"
)

// This file holds the one-shot scenario schedule helpers. Recurring
// membership dynamics are PopulationModel implementations (see
// population.go); the helpers here are the primitives those models — and
// ad-hoc experiment code — compose.

// ScheduleMassLeave arranges for the active CP population to drop to
// `remaining` at time `at` — the Fig. 4 scenario ("20 CPs, 18 CPs leave,
// 2 CPs left"). The leavers are chosen uniformly at random from the CPs
// active at that moment.
func (w *World) ScheduleMassLeave(at time.Duration, remaining int) error {
	if remaining < 0 {
		return fmt.Errorf("simrun: remaining %d must be non-negative", remaining)
	}
	w.sim.At(at, func() {
		active := w.ActiveCPs()
		leave := len(active) - remaining
		if leave <= 0 {
			return
		}
		perm := w.churnRand.Perm(len(active))
		for i := 0; i < leave; i++ {
			w.RemoveCP(active[perm[i]].ID)
		}
	})
	return nil
}

// setPopulation adds or removes CPs to reach the target count. Removals
// pick uniformly among active CPs; additions join as fresh CPs unaware
// of any schedule.
func (w *World) setPopulation(target int, r *rng.Rand) error {
	active := w.ActiveCPs()
	switch {
	case target > len(active):
		if _, err := w.AddCPs(target - len(active)); err != nil {
			return err
		}
	case target < len(active):
		perm := r.Perm(len(active))
		for i := 0; i < len(active)-target; i++ {
			w.RemoveCP(active[perm[i]].ID)
		}
	}
	return nil
}

// AddCPsStaggered schedules n CP joins at independent uniform times in
// [now, now+spread). The paper keeps its CP population "continuously
// present" but does not define their start times; staggering avoids the
// artificial lock-step of all CPs joining in the same instant.
func (w *World) AddCPsStaggered(n int, spread time.Duration) error {
	if n < 0 {
		return fmt.Errorf("simrun: negative CP count %d", n)
	}
	if spread < 0 {
		return fmt.Errorf("simrun: negative spread %v", spread)
	}
	r := w.churnRand.Fork("stagger")
	now := w.sim.Now()
	for i := 0; i < n; i++ {
		at := now
		if spread > 0 {
			at += r.Duration(0, spread)
		}
		w.sim.At(at, func() {
			if _, err := w.AddCP(); err != nil {
				panic(fmt.Sprintf("simrun: staggered join: %v", err))
			}
		})
	}
	return nil
}

// ScheduleDeviceCrash kills the device silently at time at.
func (w *World) ScheduleDeviceCrash(at time.Duration) {
	w.sim.At(at, func() { w.KillDevice() })
}

// ScheduleDeviceBye makes the device leave gracefully at time at.
func (w *World) ScheduleDeviceBye(at time.Duration) {
	w.sim.At(at, func() { w.DeviceBye() })
}
