package simrun

import (
	"math"
	"testing"
	"time"
)

// TestWorldExecutionDeterminism: two worlds built from the same seed must
// execute the identical number of kernel events and measure bit-identical
// statistics — the contract the zero-allocation kernel and the pooled
// message paths must uphold.
func TestWorldExecutionDeterminism(t *testing.T) {
	run := func() (executed uint64, mean, variance float64, sent, delivered uint64) {
		w, err := NewWorld(Config{Protocol: ProtocolDCPP, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.StartChurn(DefaultUniformChurn()); err != nil {
			t.Fatal(err)
		}
		w.Run(120 * time.Second)
		load := w.DeviceLoad().Stats()
		c := w.Net().Counters()
		return w.Sim().Executed(), load.Mean(), load.Variance(), c.Sent, c.Delivered
	}
	e1, m1, v1, s1, d1 := run()
	e2, m2, v2, s2, d2 := run()
	if e1 != e2 {
		t.Errorf("Executed() differs across identical runs: %d vs %d", e1, e2)
	}
	if math.Float64bits(m1) != math.Float64bits(m2) {
		t.Errorf("load mean differs: %g vs %g", m1, m2)
	}
	if math.Float64bits(v1) != math.Float64bits(v2) {
		t.Errorf("load variance differs: %g vs %g", v1, v2)
	}
	if s1 != s2 || d1 != d2 {
		t.Errorf("network counters differ: sent %d/%d, delivered %d/%d", s1, s2, d1, d2)
	}
}

// TestWorldOverlayDeterminism pins the once-flaky overlay path: leave
// dissemination floods neighbours in sorted order, so the notice count is
// a pure function of the seed.
func TestWorldOverlayDeterminism(t *testing.T) {
	run := func() (notices uint64, informed int) {
		w, err := NewWorld(Config{Protocol: ProtocolSAPP, Seed: 99, EnableOverlay: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddCPs(12); err != nil {
			t.Fatal(err)
		}
		w.Run(60 * time.Second)
		killAt := w.KillDevice()
		w.Run(killAt + 25*time.Second)
		dev := w.Device().ID
		for _, h := range w.ActiveCPs() {
			notices += h.Overlay.NoticesSent()
			if _, ok := h.Overlay.Informed(dev); ok {
				informed++
			}
		}
		return notices, informed
	}
	n1, i1 := run()
	n2, i2 := run()
	if n1 != n2 || i1 != i2 {
		t.Errorf("overlay run not reproducible: notices %d/%d, informed %d/%d", n1, n2, i1, i2)
	}
}
