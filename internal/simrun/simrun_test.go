package simrun

import (
	"math"
	"strings"
	"testing"
	"time"

	"presence/internal/stats"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func mustWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWorld(Config{Protocol: "bogus"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := NewWorld(Config{Protocol: ProtocolDCPP, LoadBin: -time.Second}); err == nil {
		t.Error("negative LoadBin accepted")
	}
	if _, err := NewWorld(Config{Protocol: ProtocolDCPP,
		Processing: ProcessingConfig{Min: time.Second, Max: time.Millisecond}}); err == nil {
		t.Error("inverted processing bounds accepted")
	}
}

func TestProtocolValid(t *testing.T) {
	for _, p := range []Protocol{ProtocolSAPP, ProtocolDCPP, ProtocolNaive} {
		if !p.Valid() {
			t.Errorf("%q should be valid", p)
		}
	}
	if Protocol("swim").Valid() {
		t.Error("unknown protocol reported valid")
	}
}

func TestLoadRecorderBinsAndZeroFill(t *testing.T) {
	l := NewLoadRecorder("load", time.Second, 0)
	l.Record(sec(0.1))
	l.Record(sec(0.2))
	l.Record(sec(2.5)) // bin 1 empty, must be zero-filled
	l.Flush(sec(4))
	pts := l.Series().Points()
	if len(pts) != 4 {
		t.Fatalf("bins = %d, want 4", len(pts))
	}
	want := []float64{2, 0, 1, 0}
	for i, p := range pts {
		if p.V != want[i] {
			t.Fatalf("bin %d rate = %g, want %g", i, p.V, want[i])
		}
	}
	if l.Total() != 3 {
		t.Fatalf("Total = %d", l.Total())
	}
	st := l.Stats()
	if st.Count() != 4 || st.Mean() != 0.75 {
		t.Fatalf("stats = %v", st.String())
	}
}

func TestLoadRecorderReset(t *testing.T) {
	l := NewLoadRecorder("load", time.Second, 0)
	l.Record(sec(0.5))
	l.Flush(sec(2))
	l.Reset(sec(2))
	l.Record(sec(2.5))
	l.Flush(sec(3))
	if l.Total() != 1 {
		t.Fatalf("Total after reset = %d, want 1", l.Total())
	}
	pts := l.Series().Points()
	if len(pts) != 1 || pts[0].V != 1 {
		t.Fatalf("series after reset = %v", pts)
	}
}

func TestDCPPLoneCPProbesAtMaxFrequency(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 1})
	if _, err := w.AddCP(); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(120))
	// A lone CP is told to wait d_min = 0.5 s each cycle: load ≈ 2/s
	// (slightly less due to reply latency).
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load < 1.7 || load > 2.05 {
		t.Fatalf("lone-CP load = %g probes/s, want ≈2 (f_max)", load)
	}
}

func TestDCPPStaticLoadBoundedByNominal(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 2})
	if err := w.AddCPsStaggered(20, sec(5)); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(60))
	w.ResetMeasurements()
	w.Run(sec(300))
	load := w.DeviceLoad().Stats()
	if load.Mean() > 10.2 {
		t.Fatalf("static DCPP load mean = %g exceeds L_nom = 10", load.Mean())
	}
	if load.Mean() < 9.0 {
		t.Fatalf("static DCPP load mean = %g, want near L_nom", load.Mean())
	}
	if load.Max() > 10.5+1e-9 {
		t.Fatalf("static DCPP load peak = %g exceeds L_nom bound", load.Max())
	}
	// Fairness: every CP gets (almost exactly) the same frequency.
	freqs := w.CPFrequencies()
	if len(freqs) != 20 {
		t.Fatalf("frequencies for %d CPs, want 20", len(freqs))
	}
	if j := stats.JainIndex(freqs); j < 0.99 {
		t.Fatalf("DCPP static fairness J = %g, want ≈1", j)
	}
	// Per-CP frequency ≈ L_nom/k = 0.5.
	for _, f := range freqs {
		if f < 0.4 || f > 0.6 {
			t.Fatalf("per-CP frequency %g outside ≈0.5", f)
		}
	}
}

func TestDCPPFewCPsLoadIsKTimesFmax(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 3})
	if _, err := w.AddCPs(3); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(60))
	w.ResetMeasurements()
	w.Run(sec(240))
	// 3 CPs × f_max 2/s = 6 probes/s < L_nom: under-subscribed regime.
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load < 5.2 || load > 6.2 {
		t.Fatalf("3-CP load = %g, want ≈6", load)
	}
}

func TestSAPPTwoCPsStayInBand(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolSAPP, Seed: 4})
	if err := w.AddCPsStaggered(2, sec(1)); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(600))
	w.ResetMeasurements()
	w.Run(sec(1800))
	// The adaptation keeps the total probe rate R within
	// [L_nom/β, β·L_nom] = [6.67, 15]; "for one or two CPs the probe
	// frequencies were balanced".
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load < 6 || load > 16 {
		t.Fatalf("2-CP SAPP load = %g, want within adaptation band ≈[6.7, 15]", load)
	}
}

func TestSAPPManyCPsUnfairAndDeviceLoadGood(t *testing.T) {
	if testing.Short() {
		t.Skip("long SAPP run")
	}
	cfg := Config{Protocol: ProtocolSAPP, Seed: 5, RecordCPSeries: true}
	w := mustWorld(t, cfg)
	if err := w.AddCPsStaggered(20, sec(10)); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(2000))
	w.ResetMeasurements()
	w.Run(sec(6000))
	// Device load stays near L_nom (the paper: "despite this abnormal
	// behavior of the CPs, the device load is quite good").
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load < 5 || load > 16 {
		t.Fatalf("SAPP k=20 device load = %g, want near L_nom", load)
	}
	// Unfairness: the frequency spread must be extreme (paper: most CPs
	// at δ ≈ 10 s ⇒ 0.1/s, a couple fast at ≈2.5/s).
	freqs := w.CPFrequencies()
	if len(freqs) != 20 {
		t.Fatalf("%d active CPs, want 20", len(freqs))
	}
	minF, maxF := freqs[0], freqs[len(freqs)-1]
	if maxF/minF < 5 {
		t.Fatalf("SAPP frequency spread max/min = %g (min=%g max=%g), want ≫1 (unfair)", maxF/minF, minF, maxF)
	}
	if j := stats.JainIndex(freqs); j > 0.9 {
		t.Fatalf("SAPP fairness J = %g, expected clearly unfair (<0.9)", j)
	}
}

func TestNaiveLoadScalesWithPopulation(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolNaive, Seed: 6, NaivePeriod: time.Second})
	if _, err := w.AddCPs(30); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(30))
	w.ResetMeasurements()
	w.Run(sec(120))
	// 30 CPs at 1/s ≈ 30 probes/s: triple the device's nominal load —
	// the overload the paper's introduction warns about.
	loadStats := w.DeviceLoad().Stats()
	load := loadStats.Mean()
	if load < 27 || load > 31 {
		t.Fatalf("naive load = %g, want ≈30", load)
	}
}

func TestDetectionAfterSilentCrash(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 7})
	if _, err := w.AddCPs(5); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(60))
	killAt := w.KillDevice()
	w.Run(sec(70))
	// Every CP must detect the crash: worst case is its current wait
	// (≤ max(d_min, k·δ_min)) plus a full failed cycle (TOF + 3·TOS).
	for _, h := range w.ActiveCPs() {
		if !h.Lost {
			t.Fatalf("%s never detected the crash", h.Name)
		}
		latency := h.LostAt - killAt
		if latency <= 0 || latency > sec(3) {
			t.Fatalf("%s detection latency = %v, want (0, 3s]", h.Name, latency)
		}
	}
}

func TestDeviceByeNotifiesAllCPs(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 8})
	if _, err := w.AddCPs(4); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(10))
	w.DeviceBye()
	w.Run(sec(12))
	for _, h := range w.ActiveCPs() {
		if !h.SawBye {
			t.Fatalf("%s did not receive the bye", h.Name)
		}
		if h.Lost {
			t.Fatalf("%s treated a graceful leave as a crash", h.Name)
		}
	}
}

func TestDeviceReviveAndReprobe(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 9})
	if _, err := w.AddCPs(2); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(30))
	w.KillDevice()
	w.Run(sec(35))
	w.ReviveDevice()
	// Restart the stopped probers (the scenario layer owns re-discovery;
	// UPnP would re-announce the device).
	for _, h := range w.ActiveCPs() {
		if !h.Lost {
			t.Fatal("CP did not detect the crash")
		}
		h.Prober.Start()
	}
	before := w.DeviceLoad().Total()
	w.Run(sec(45))
	if w.DeviceLoad().Total() <= before {
		t.Fatal("no probes reached the revived device")
	}
}

func TestMassLeaveScenario(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 10})
	if _, err := w.AddCPs(20); err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleMassLeave(sec(30), 2); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(29))
	if w.ActiveCount() != 20 {
		t.Fatalf("population before leave = %d", w.ActiveCount())
	}
	w.Run(sec(60))
	if w.ActiveCount() != 2 {
		t.Fatalf("population after leave = %d, want 2", w.ActiveCount())
	}
	if err := w.ScheduleMassLeave(sec(70), -1); err == nil {
		t.Error("negative remaining accepted")
	}
}

func TestUniformChurnKeepsPopulationInBounds(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 11})
	churn := UniformChurn{Min: 1, Max: 60, Rate: 0.2}
	if err := w.StartChurn(churn); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(300))
	counts := w.CPCountSeries().Points()
	if len(counts) < 20 {
		t.Fatalf("only %d population changes in 300 s at rate 0.2", len(counts))
	}
	distinct := map[float64]bool{}
	for _, p := range counts {
		if p.V < 0 || p.V > 60 {
			t.Fatalf("population %g outside [0, 60]", p.V)
		}
		distinct[p.V] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("population took only %d distinct values; churn looks broken", len(distinct))
	}
	if w.CPCountStats().Mean() < 10 {
		t.Fatalf("mean population = %g, want ≈30 for U{1..60}", w.CPCountStats().Mean())
	}
}

func TestChurnValidation(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 12})
	if err := w.StartChurn(UniformChurn{Min: 5, Max: 1, Rate: 1}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if err := w.StartChurn(UniformChurn{Min: 1, Max: 5, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, float64) {
		w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: seed})
		if err := w.StartChurn(UniformChurn{Min: 1, Max: 20, Rate: 0.5}); err != nil {
			t.Fatal(err)
		}
		w.Run(sec(120))
		st := w.DeviceLoad().Stats()
		return w.DeviceLoad().Total(), st.Mean()
	}
	t1, m1 := run(42)
	t2, m2 := run(42)
	if t1 != t2 || m1 != m2 {
		t.Fatalf("same seed diverged: (%d, %g) vs (%d, %g)", t1, m1, t2, m2)
	}
	t3, _ := run(43)
	if t3 == t1 {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestOverlayDisseminatesLeave(t *testing.T) {
	cfg := Config{Protocol: ProtocolSAPP, Seed: 13, EnableOverlay: true}
	w := mustWorld(t, cfg)
	if _, err := w.AddCPs(8); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(120))
	killAt := w.KillDevice()
	w.Run(sec(180))
	informed := 0
	var firstDetect, lastInformed time.Duration
	firstDetect = time.Duration(math.MaxInt64)
	for _, h := range w.ActiveCPs() {
		if h.Lost && h.LostAt < firstDetect {
			firstDetect = h.LostAt
		}
		if at, ok := h.Overlay.Informed(w.Device().ID); ok {
			informed++
			if at > lastInformed {
				lastInformed = at
			}
		}
	}
	if informed < len(w.ActiveCPs())/2 {
		t.Fatalf("only %d/%d CPs informed of the leave", informed, len(w.ActiveCPs()))
	}
	if lastInformed < killAt {
		t.Fatal("informed before the crash?")
	}
	_ = firstDetect
}

func TestCPSeriesRecorded(t *testing.T) {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 14, RecordCPSeries: true}
	w := mustWorld(t, cfg)
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(30))
	if h.Freq == nil || h.Freq.Len() == 0 {
		t.Fatal("CP frequency series empty")
	}
	// A lone DCPP CP runs at f_max = 2/s.
	last, _ := h.Freq.Last()
	if last.V != 2 {
		t.Fatalf("lone DCPP CP frequency = %g, want 2", last.V)
	}
	if h.DelayStats.Count() == 0 {
		t.Fatal("per-CP delay stats empty")
	}
}

func TestSeriesWindowConfig(t *testing.T) {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 15, RecordCPSeries: true}
	cfg.SeriesWindow.From = sec(10)
	cfg.SeriesWindow.To = sec(20)
	w := mustWorld(t, cfg)
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(30))
	for _, p := range h.Freq.Points() {
		if p.T < sec(10) || p.T >= sec(20) {
			t.Fatalf("point at %v outside configured window", p.T)
		}
	}
	if h.Freq.Len() == 0 {
		t.Fatal("windowed series empty")
	}
}

func TestRemoveCPIdempotent(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 16})
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(1))
	w.RemoveCP(h.ID)
	w.RemoveCP(h.ID) // second removal is a no-op
	if w.ActiveCount() != 0 {
		t.Fatalf("ActiveCount = %d", w.ActiveCount())
	}
	if len(w.AllCPs()) != 1 {
		t.Fatalf("AllCPs lost the removed CP")
	}
	w.Run(sec(5))
}

func TestBufferOccupancySmall(t *testing.T) {
	// The paper: "network buffer overflow is a seldom phenomenon as the
	// average buffer length is very small (≈0.004)".
	w := mustWorld(t, Config{Protocol: ProtocolSAPP, Seed: 17})
	if err := w.AddCPsStaggered(20, sec(5)); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(600))
	occ := w.Net().BufferOccupancy().Mean()
	if occ > 0.05 {
		t.Fatalf("mean buffer occupancy = %g, want ≪1", occ)
	}
	if c := w.Net().Counters(); c.Overflowed != 0 {
		t.Fatalf("buffer overflows = %d, want 0", c.Overflowed)
	}
}

func BenchmarkWorldDCPPChurn60s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{Protocol: ProtocolDCPP, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.StartChurn(DefaultUniformChurn()); err != nil {
			b.Fatal(err)
		}
		w.Run(sec(60))
	}
}

func BenchmarkWorldSAPP20CPs60s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{Protocol: ProtocolSAPP, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.AddCPs(20); err != nil {
			b.Fatal(err)
		}
		w.Run(sec(60))
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	var buf strings.Builder
	cfg := Config{Protocol: ProtocolDCPP, Seed: 50, Trace: &buf}
	w := mustWorld(t, cfg)
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(5))
	w.KillDevice()
	w.Run(sec(15))
	w.RemoveCP(h.ID)
	w.Run(sec(16))
	out := buf.String()
	for _, want := range []string{" join cp_01", " probe ", " crash device ", " lost cp_01", " leave cp_01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%.400s", want, out)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	run := func() string {
		var buf strings.Builder
		w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 51, Trace: &buf})
		if _, err := w.AddCPs(3); err != nil {
			t.Fatal(err)
		}
		w.Run(sec(30))
		return buf.String()
	}
	if run() != run() {
		t.Fatal("same-seed traces differ")
	}
}
