package simrun

import (
	"testing"
	"time"

	"presence/internal/core/discovery"
)

func discoveryConfig(probe bool) Config {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 40}
	cfg.Discovery = DiscoveryConfig{
		Enabled:          true,
		Announce:         discovery.AnnouncerConfig{MaxAge: 30 * time.Second, Period: 10 * time.Second},
		ProbeOnDiscovery: probe,
	}
	return cfg
}

func TestDiscoveryCreatesProbersDynamically(t *testing.T) {
	w := mustWorld(t, discoveryConfig(true))
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	if h.Prober != nil {
		t.Fatal("prober exists before any announcement")
	}
	// The device announces at t=0; the announcement is in flight when
	// the CP joins at t=0? No — the join happens at t=0 too, before the
	// broadcast is delivered only to attached nodes. The next periodic
	// announcement (t=10s) reaches the CP.
	w.Run(sec(15))
	if h.Prober == nil {
		t.Fatal("prober not created after discovery")
	}
	if _, ok := h.DiscoveredDevice(w.Device().ID); !ok {
		t.Fatal("device not recorded as discovered")
	}
	w.Run(sec(60))
	if h.Prober.Stats().CyclesOK == 0 {
		t.Fatal("discovered prober never completed a cycle")
	}
	if !h.Registry.Known(w.Device().ID) {
		t.Fatal("announced device unknown to the registry")
	}
}

func TestDiscoveryOnlyExpiryIsSlow(t *testing.T) {
	w := mustWorld(t, discoveryConfig(false))
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(25)) // discovered via the t=10s and t=20s announcements
	if _, ok := h.DiscoveredDevice(w.Device().ID); !ok {
		t.Fatal("device never discovered")
	}
	if h.Prober != nil {
		t.Fatal("probe-on-discovery disabled but a prober exists")
	}
	killAt := w.KillDevice()
	w.Run(killAt + sec(45))
	expAt, ok := h.ExpiredDevice(w.Device().ID)
	if !ok {
		t.Fatal("device never expired after the crash")
	}
	latency := expAt - killAt
	// Last announcement was ≤10 s before the kill; expiry fires between
	// max-age−period = 20 s and max-age + sweep ≈ 31 s later.
	if latency < sec(15) || latency > sec(32) {
		t.Fatalf("expiry latency = %v, want within [20s, 31s]", latency)
	}
}

func TestDiscoveryPlusProbingDetectsFast(t *testing.T) {
	w := mustWorld(t, discoveryConfig(true))
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(15))
	killAt := w.KillDevice()
	w.Run(killAt + sec(10))
	if !h.Lost {
		t.Fatal("probing CP did not detect the crash")
	}
	latency := h.LostAt - killAt
	if latency > sec(2) {
		t.Fatalf("probe detection latency = %v, want ≪ max-age", latency)
	}
	// The probe-layer loss also purged the registry entry.
	if h.Registry.Known(w.Device().ID) {
		t.Fatal("registry still lists the lost device")
	}
}

func TestDiscoveryRediscoveryAfterRevival(t *testing.T) {
	w := mustWorld(t, discoveryConfig(true))
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(15))
	killAt := w.KillDevice()
	w.Run(killAt + sec(5))
	w.ReviveDevice()
	// The revived device announces again; the CP re-discovers it and the
	// (stopped) prober restarts via ensureProber's start-on-create path?
	// No: the prober exists but stopped. Re-discovery must restart it.
	w.Run(killAt + sec(40))
	if !h.Registry.Known(w.Device().ID) {
		t.Fatal("revived device not re-discovered")
	}
}

func TestDiscoveryMultiDevice(t *testing.T) {
	cfg := discoveryConfig(true)
	cfg.Devices = 3
	w := mustWorld(t, cfg)
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(20))
	for _, d := range w.Devices() {
		if _, ok := h.DiscoveredDevice(d.ID); !ok {
			t.Fatalf("device %v not discovered", d.ID)
		}
		if h.ProberFor(d.ID) == nil {
			t.Fatalf("no prober towards %v", d.ID)
		}
	}
	w.Run(sec(120))
	for _, d := range w.Devices() {
		if h.ProberFor(d.ID).Stats().CyclesOK == 0 {
			t.Fatalf("prober towards %v idle", d.ID)
		}
	}
}
