package simrun

import (
	"fmt"
	"sort"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/discovery"
	"presence/internal/core/naive"
	"presence/internal/core/overlay"
	"presence/internal/core/sapp"
	"presence/internal/des"
	"presence/internal/ident"
	"presence/internal/rng"
	"presence/internal/simnet"
	"presence/internal/stats"
	"presence/internal/trace"
)

// hostEnv implements core.Env for one engine instance in the simulated
// world. Control points hosting several probers (multi-device worlds)
// get one hostEnv per prober, since every engine owns one alarm slot.
type hostEnv struct {
	w     *World
	id    ident.NodeID
	alarm *des.Alarm
	// proc, when non-nil, draws the processing delay applied before each
	// outgoing message (device computation time).
	proc func() time.Duration
}

var _ core.Env = (*hostEnv)(nil)

func (e *hostEnv) Now() time.Duration { return e.w.sim.Now() }

func (e *hostEnv) Send(to ident.NodeID, msg core.Message) {
	if e.proc == nil {
		e.w.net.Send(e.id, to, msg)
		return
	}
	d := e.proc()
	e.w.sim.After(d, e.w.acquireSend(e.id, to, msg).fire)
}

// pendingSend is a message waiting out its sender's processing delay.
// Worlds recycle them (with their pre-built fire closures) so a delayed
// send allocates nothing in steady state.
type pendingSend struct {
	w        *World
	from, to ident.NodeID
	msg      core.Message
	next     *pendingSend
	fire     func()
}

func (w *World) acquireSend(from, to ident.NodeID, msg core.Message) *pendingSend {
	ps := w.freeSends
	if ps == nil {
		ps = &pendingSend{w: w}
		ps.fire = ps.send
	} else {
		w.freeSends = ps.next
	}
	ps.from, ps.to, ps.msg = from, to, msg
	return ps
}

// send hands the message to the network, releasing the slot first so the
// send may transitively reuse it.
func (ps *pendingSend) send() {
	w, from, to, msg := ps.w, ps.from, ps.to, ps.msg
	ps.msg = nil
	ps.next = w.freeSends
	w.freeSends = ps
	w.net.Send(from, to, msg)
}

func (e *hostEnv) SetAlarm(at time.Duration) { e.alarm.Set(at) }

func (e *hostEnv) StopAlarm() { e.alarm.Stop() }

// DeviceHost is one simulated device node.
type DeviceHost struct {
	ID     ident.NodeID
	Engine core.Device
	// Load bins the probes arriving at this device.
	Load *LoadRecorder
	// Announcer is non-nil when discovery is enabled.
	Announcer *discovery.Announcer

	env          *hostEnv
	announcerEnv *hostEnv
	w            *World
	alive        bool
}

// Alive reports whether the device is attached to the network.
func (d *DeviceHost) Alive() bool { return d.alive }

// CPHost is one simulated control point. It runs one prober per device
// in the world.
type CPHost struct {
	ID   ident.NodeID
	Name string
	// Prober monitors the primary device (the world's first); in
	// single-device worlds — the paper's setting — it is the only one.
	Prober *core.Prober
	// Policy is the primary prober's delay policy (protocol specific:
	// *sapp.Policy, *dcpp.Policy or *naive.Policy).
	Policy core.DelayPolicy
	// Overlay is non-nil when Config.EnableOverlay is set.
	Overlay *overlay.Manager

	// Freq is the 1/δ trace towards the primary device (nil unless
	// Config.RecordCPSeries).
	Freq *stats.TimeSeries
	// DelayStats accumulates the chosen δ values in seconds towards the
	// primary device — the steady-state "mean delay" per CP the paper
	// tabulates.
	DelayStats stats.Welford

	// Lost/LostAt record a local absence detection of the primary
	// device; LostDevices has the per-device record.
	Lost   bool
	LostAt time.Duration
	// SawBye/ByeAt record a graceful-leave notification from the primary
	// device.
	SawBye bool
	ByeAt  time.Duration
	// JoinedAt is the CP's join time.
	JoinedAt time.Duration

	// Registry is non-nil when discovery is enabled.
	Registry *discovery.Registry

	probers map[ident.NodeID]*core.Prober
	// proberList holds the probers in creation order (the world's device
	// order during AddCP, discovery order afterwards), maintained
	// incrementally so iteration never rebuilds a slice.
	proberList []*core.Prober
	policies   map[ident.NodeID]core.DelayPolicy
	lost       map[ident.NodeID]time.Duration
	discovered map[ident.NodeID]time.Duration
	expired    map[ident.NodeID]time.Duration

	w      *World
	active bool
}

// DiscoveredDevice reports when the CP's registry first saw the device.
func (h *CPHost) DiscoveredDevice(dev ident.NodeID) (time.Duration, bool) {
	at, ok := h.discovered[dev]
	return at, ok
}

// ExpiredDevice reports when the device's announcements lapsed at this
// CP (max-age expiry — the slow, discovery-only absence signal).
func (h *CPHost) ExpiredDevice(dev ident.NodeID) (time.Duration, bool) {
	at, ok := h.expired[dev]
	return at, ok
}

// Active reports whether the CP is currently in the network.
func (h *CPHost) Active() bool { return h.active }

// ProberFor returns the prober monitoring the given device (nil if the
// device is unknown).
func (h *CPHost) ProberFor(dev ident.NodeID) *core.Prober { return h.probers[dev] }

// LostDevice reports when this CP locally detected the given device's
// absence.
func (h *CPHost) LostDevice(dev ident.NodeID) (time.Duration, bool) {
	at, ok := h.lost[dev]
	return at, ok
}

// cpListener wires one prober's events into the host's measurements and
// the overlay.
type cpListener struct {
	h       *CPHost
	device  ident.NodeID
	primary bool
}

var _ core.Listener = (*cpListener)(nil)

func (l *cpListener) DeviceAlive(ident.NodeID, core.CycleResult) {}

func (l *cpListener) DeviceLost(dev ident.NodeID, at time.Duration) {
	l.h.lost[dev] = at
	if l.primary {
		l.h.Lost = true
		l.h.LostAt = at
	}
	if l.h.Registry != nil {
		// The probe layer beat announcement expiry; drop the entry so a
		// later announcement counts as a re-discovery.
		l.h.Registry.Forget(dev)
	}
	if l.h.Overlay != nil {
		l.h.Overlay.AnnounceLeave(dev)
	}
	l.h.w.tracer.Event("lost", "%s detected device %v absent", l.h.Name, dev)
	if l.h.w.OnCPLost != nil {
		l.h.w.OnCPLost(l.h, at)
	}
}

func (l *cpListener) DeviceBye(dev ident.NodeID, at time.Duration) {
	if l.primary {
		l.h.SawBye = true
		l.h.ByeAt = at
	}
	if l.h.Registry != nil {
		l.h.Registry.Forget(dev)
	}
}

// World is a deterministic simulated deployment: one or more devices,
// any number of control points, and the network between them.
type World struct {
	cfg   Config
	sim   *des.Simulation
	net   *simnet.Network
	root  *rng.Rand
	alloc ident.Allocator

	devices []*DeviceHost
	byID    map[ident.NodeID]*DeviceHost
	cps     map[ident.NodeID]*CPHost
	order   []ident.NodeID // insertion order for deterministic iteration

	cpCount   *stats.TimeSeries
	cpCountTW stats.TimeWeighted
	activeCPs int

	churnRand *rng.Rand
	cpSeq     int
	tracer    *trace.Tracer
	freeSends *pendingSend

	// OnCPLost, if set, is invoked whenever a CP locally detects a
	// device's absence.
	OnCPLost func(h *CPHost, at time.Duration)
	// OnCPJoin and OnCPLeave, if set, observe membership changes — the
	// hook internal/conformance uses to lift a scenario's join/leave
	// schedule out of a simulation run and replay it against the fleet
	// runtime. Set them before installing a population model: models
	// may join CPs at install time. The hooks must not mutate the
	// world.
	OnCPJoin  func(h *CPHost)
	OnCPLeave func(h *CPHost, at time.Duration)
}

// NewWorld builds a world with Config.Devices devices attached (default
// one, the paper's setting) and no CPs yet.
func NewWorld(cfg Config) (*World, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:  cfg,
		sim:  des.New(),
		root: rng.New(cfg.Seed),
		byID: make(map[ident.NodeID]*DeviceHost),
		cps:  make(map[ident.NodeID]*CPHost),
	}
	w.net = simnet.New(w.sim, w.root.Fork("net"), cfg.Net)
	w.churnRand = w.root.Fork("churn")
	if cfg.Trace != nil {
		w.tracer = trace.New(cfg.Trace, w.sim.Now)
	}
	w.cpCount = stats.NewTimeSeries("active_cps")
	w.cpCountTW.Observe(0, 0)
	for i := 0; i < cfg.Devices; i++ {
		if err := w.addDevice(i); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Sim exposes the simulation kernel (for scheduling scenario events).
func (w *World) Sim() *des.Simulation { return w.sim }

// Net exposes the simulated network (for failure injection).
func (w *World) Net() *simnet.Network { return w.net }

// Device returns the primary (first) device host.
func (w *World) Device() *DeviceHost { return w.devices[0] }

// Devices returns all device hosts in creation order.
func (w *World) Devices() []*DeviceHost {
	out := make([]*DeviceHost, len(w.devices))
	copy(out, w.devices)
	return out
}

// Config returns the world's (defaulted) configuration.
func (w *World) Config() Config { return w.cfg }

func (w *World) addDevice(index int) error {
	id := w.alloc.Next()
	env := &hostEnv{w: w, id: id}
	if !w.cfg.Processing.Disabled {
		label := "proc"
		if index > 0 {
			label = fmt.Sprintf("proc-%d", index)
		}
		procRand := w.root.Fork(label)
		lo, hi := w.cfg.Processing.Min, w.cfg.Processing.Max
		env.proc = func() time.Duration { return procRand.Duration(lo, hi) }
	}
	var (
		engine core.Device
		err    error
	)
	switch w.cfg.Protocol {
	case ProtocolSAPP:
		engine, err = sapp.NewDevice(id, env, w.cfg.SAPPDevice)
	case ProtocolDCPP:
		engine, err = dcpp.NewDevice(id, env, w.cfg.DCPPDevice)
	case ProtocolNaive:
		engine, err = naive.NewDevice(id, env)
	default:
		err = fmt.Errorf("simrun: unknown protocol %q", w.cfg.Protocol)
	}
	if err != nil {
		return err
	}
	host := &DeviceHost{
		ID:     id,
		Engine: engine,
		Load:   NewLoadRecorder(fmt.Sprintf("device_load_%d", index), w.cfg.LoadBin, 0),
		env:    env,
		w:      w,
		alive:  true,
	}
	if index == 0 {
		// The primary device keeps the historical series name used by
		// the figures.
		host.Load = NewLoadRecorder("device_load", w.cfg.LoadBin, 0)
	}
	env.alarm = des.NewAlarm(w.sim, engine.OnAlarm)
	if w.cfg.Discovery.Enabled {
		annEnv := &hostEnv{w: w, id: id}
		ann, err := discovery.NewAnnouncer(id, annEnv, w.cfg.Discovery.Announce)
		if err != nil {
			return err
		}
		annEnv.alarm = des.NewAlarm(w.sim, ann.OnAlarm)
		host.Announcer, host.announcerEnv = ann, annEnv
	}
	w.net.Attach(id, w.deviceHandler(host))
	engine.Start()
	if host.Announcer != nil {
		host.Announcer.Start()
	}
	w.devices = append(w.devices, host)
	w.byID[id] = host
	return nil
}

func (w *World) deviceHandler(host *DeviceHost) simnet.Handler {
	return func(from ident.NodeID, msg any) {
		// Probes arrive in the pooled pointer form on the hot path; the
		// value form still works (tests, hand-injected messages).
		var probe core.ProbeMsg
		switch m := msg.(type) {
		case *core.ProbeMsg:
			probe = *m
		case core.ProbeMsg:
			probe = m
		default:
			return // devices only understand probes
		}
		w.tracer.Event("probe", "%v->%v cycle=%d attempt=%d", from, host.ID, probe.Cycle, probe.Attempt)
		host.Load.Record(w.sim.Now())
		host.Engine.OnProbe(from, probe)
	}
}

// newPolicy builds the protocol-specific delay policy for one prober.
func (w *World) newPolicy() (core.DelayPolicy, error) {
	switch w.cfg.Protocol {
	case ProtocolSAPP:
		return sapp.NewPolicy(w.cfg.SAPPCP)
	case ProtocolDCPP:
		return dcpp.NewPolicy(w.cfg.DCPPPolicy)
	case ProtocolNaive:
		return naive.NewPolicy(w.cfg.NaivePeriod)
	default:
		return nil, fmt.Errorf("simrun: unknown protocol %q", w.cfg.Protocol)
	}
}

// AddCP creates a control point, attaches it to the network and starts
// it probing every device immediately (a joining CP is unaware of any
// schedule — the disturbance studied in Fig. 5).
func (w *World) AddCP() (*CPHost, error) {
	id := w.alloc.Next()
	w.cpSeq++
	host := &CPHost{
		ID:         id,
		Name:       fmt.Sprintf("cp_%02d", w.cpSeq),
		w:          w,
		active:     true,
		JoinedAt:   w.sim.Now(),
		probers:    make(map[ident.NodeID]*core.Prober, len(w.devices)),
		policies:   make(map[ident.NodeID]core.DelayPolicy, len(w.devices)),
		lost:       make(map[ident.NodeID]time.Duration),
		discovered: make(map[ident.NodeID]time.Duration),
		expired:    make(map[ident.NodeID]time.Duration),
	}
	if w.cfg.RecordCPSeries {
		host.Freq = stats.NewTimeSeries(host.Name + "_freq")
		if w.cfg.SeriesWindow.To > 0 {
			host.Freq.Window(w.cfg.SeriesWindow.From, w.cfg.SeriesWindow.To)
		}
		if w.cfg.SeriesDecimate > 1 {
			host.Freq.Decimate(w.cfg.SeriesDecimate)
		}
	}
	if w.cfg.EnableOverlay {
		overlayEnv := &hostEnv{w: w, id: id}
		overlayEnv.alarm = des.NewAlarm(w.sim, func() {})
		mgr, err := overlay.NewManager(id, overlayEnv, overlay.Config{})
		if err != nil {
			return nil, err
		}
		host.Overlay = mgr
	}
	if w.cfg.Discovery.Enabled {
		// Probers are created on discovery instead of up front.
		regEnv := &hostEnv{w: w, id: id}
		reg, err := discovery.NewRegistry(id, regEnv, discovery.RegistryConfig{
			SweepEvery: w.cfg.Discovery.Sweep,
			OnDiscovered: func(dev ident.NodeID, at time.Duration) {
				host.discovered[dev] = at
				if w.cfg.Discovery.ProbeOnDiscovery {
					if err := host.ensureProber(dev); err != nil {
						panic(fmt.Sprintf("simrun: prober on discovery: %v", err))
					}
				}
			},
			OnExpired: func(dev ident.NodeID, at time.Duration) {
				host.expired[dev] = at
			},
		})
		if err != nil {
			return nil, err
		}
		regEnv.alarm = des.NewAlarm(w.sim, reg.OnAlarm)
		host.Registry = reg
	} else {
		for _, dev := range w.devices {
			if err := host.ensureProber(dev.ID); err != nil {
				return nil, err
			}
		}
	}
	w.net.Attach(id, w.cpHandler(host))
	w.cps[id] = host
	w.order = append(w.order, id)
	w.noteCPCount(+1)
	if host.Registry != nil {
		host.Registry.Start()
	}
	w.tracer.Event("join", "%s (%v)", host.Name, host.ID)
	if w.OnCPJoin != nil {
		w.OnCPJoin(host)
	}
	for _, p := range host.proberList {
		p.Start()
	}
	return host, nil
}

// ensureProber builds (but does not start) the prober towards the given
// device, if missing. The prober towards the primary device carries the
// host's measurement hooks.
func (h *CPHost) ensureProber(dev ident.NodeID) error {
	if _, exists := h.probers[dev]; exists {
		return nil
	}
	w := h.w
	primary := dev == w.devices[0].ID
	policy, err := w.newPolicy()
	if err != nil {
		return err
	}
	env := &hostEnv{w: w, id: h.ID}
	var observer func(time.Duration, time.Duration)
	if primary {
		observer = h.observeDelay
	}
	prober, err := core.NewProber(core.ProberOptions{
		ID:         h.ID,
		Device:     dev,
		Env:        env,
		Policy:     policy,
		Listener:   &cpListener{h: h, device: dev, primary: primary},
		Retransmit: w.cfg.Retransmit,
		Observer:   observer,
	})
	if err != nil {
		return err
	}
	env.alarm = des.NewAlarm(w.sim, prober.OnAlarm)
	h.probers[dev] = prober
	h.proberList = append(h.proberList, prober)
	h.policies[dev] = policy
	if primary {
		h.Prober, h.Policy = prober, policy
	}
	// A prober created after the CP joined (dynamic discovery) starts
	// immediately; during AddCP the caller starts all probers at once.
	if _, attached := w.cps[h.ID]; attached {
		prober.Start()
	}
	return nil
}

func (w *World) cpHandler(host *CPHost) simnet.Handler {
	return func(from ident.NodeID, msg any) {
		// Replies arrive in the pooled pointer form on the hot path;
		// normalise to the value form (keeping the payload, which may be
		// a pooled pointer valid only until this handler returns).
		if pm, ok := msg.(*core.ReplyMsg); ok {
			msg = *pm
		}
		switch m := msg.(type) {
		case core.ReplyMsg:
			if host.Overlay != nil {
				host.Overlay.ObserveReply(m.Payload)
			}
			if p, ok := host.probers[m.From]; ok {
				p.OnReply(m)
			}
		case core.ByeMsg:
			if p, ok := host.probers[m.From]; ok {
				p.OnBye(m)
			}
		case core.LeaveNotice:
			if host.Overlay != nil {
				host.Overlay.OnLeaveNotice(from, m)
			}
		case core.AnnounceMsg:
			if host.Registry != nil {
				host.Registry.OnAnnounce(m)
			}
		}
	}
}

// observeDelay records the chosen inter-cycle delay towards the primary
// device into the host's measurements.
func (h *CPHost) observeDelay(now, delay time.Duration) {
	sec := delay.Seconds()
	h.DelayStats.Add(sec)
	if h.Freq != nil && sec > 0 {
		h.Freq.Add(now, 1/sec)
	}
}

// AddCPs adds n control points.
func (w *World) AddCPs(n int) ([]*CPHost, error) {
	hosts := make([]*CPHost, 0, n)
	for i := 0; i < n; i++ {
		h, err := w.AddCP()
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// RemoveCP silently removes a control point (an unintentional leave: no
// bye, probes towards it become unroutable).
func (w *World) RemoveCP(id ident.NodeID) {
	h, ok := w.cps[id]
	if !ok || !h.active {
		return
	}
	for _, p := range h.probers {
		p.Stop()
	}
	if h.Registry != nil {
		h.Registry.Stop()
	}
	w.net.Detach(id)
	h.active = false
	w.tracer.Event("leave", "%s (%v)", h.Name, id)
	w.noteCPCount(-1)
	if w.OnCPLeave != nil {
		w.OnCPLeave(h, w.sim.Now())
	}
}

// ActiveCPs returns the currently attached CPs in join order.
func (w *World) ActiveCPs() []*CPHost {
	out := make([]*CPHost, 0, w.activeCPs)
	for _, id := range w.order {
		if h := w.cps[id]; h.active {
			out = append(out, h)
		}
	}
	return out
}

// AllCPs returns every CP that ever joined, in join order.
func (w *World) AllCPs() []*CPHost {
	out := make([]*CPHost, 0, len(w.order))
	for _, id := range w.order {
		out = append(out, w.cps[id])
	}
	return out
}

// ActiveCount returns the number of attached CPs.
func (w *World) ActiveCount() int { return w.activeCPs }

func (w *World) noteCPCount(delta int) {
	w.activeCPs += delta
	now := w.sim.Now()
	w.cpCount.Add(now, float64(w.activeCPs))
	w.cpCountTW.Observe(now, float64(w.activeCPs))
}

// KillDevice crashes the primary device silently at the current time.
// Returns the kill time.
func (w *World) KillDevice() time.Duration {
	return w.KillDeviceID(w.devices[0].ID)
}

// KillDeviceID crashes the identified device silently: it is detached
// from the network, stops answering and stops announcing. Unknown ids
// are a no-op.
func (w *World) KillDeviceID(id ident.NodeID) time.Duration {
	if host, ok := w.byID[id]; ok && host.alive {
		w.net.Detach(id)
		host.env.alarm.Stop()
		if host.Announcer != nil {
			host.Announcer.Stop()
		}
		host.alive = false
		w.tracer.Event("crash", "device %v", id)
	}
	return w.sim.Now()
}

// ReviveDevice re-attaches the primary device after a kill.
func (w *World) ReviveDevice() { w.ReviveDeviceID(w.devices[0].ID) }

// ReviveDeviceID re-attaches a killed device.
func (w *World) ReviveDeviceID(id ident.NodeID) {
	host, ok := w.byID[id]
	if !ok || host.alive {
		return
	}
	w.net.Attach(id, w.deviceHandler(host))
	host.Engine.Start()
	if host.Announcer != nil {
		host.Announcer.Start()
	}
	host.alive = true
}

// DeviceBye makes the primary device leave gracefully: it sends a bye
// to every active CP and detaches.
func (w *World) DeviceBye() { w.DeviceByeID(w.devices[0].ID) }

// DeviceByeID makes the identified device leave gracefully.
func (w *World) DeviceByeID(id ident.NodeID) {
	host, ok := w.byID[id]
	if !ok || !host.alive {
		return
	}
	for _, h := range w.ActiveCPs() {
		host.env.Send(h.ID, core.ByeMsg{From: id})
	}
	w.net.Detach(id)
	host.env.alarm.Stop()
	if host.Announcer != nil {
		host.Announcer.Stop()
	}
	host.alive = false
}

// Run advances the simulation to the given horizon and flushes the
// measurements and the trace.
func (w *World) Run(horizon time.Duration) {
	w.sim.RunUntil(horizon)
	for _, d := range w.devices {
		d.Load.Flush(w.sim.Now())
	}
	w.cpCountTW.Finish(w.sim.Now())
	if err := w.tracer.Flush(); err != nil {
		// Tracing is observability, not simulation state; a broken sink
		// must not corrupt results. Panic loudly instead of continuing
		// with a silently truncated trace.
		panic(fmt.Sprintf("simrun: %v", err))
	}
}

// ResetMeasurements discards everything measured so far (warmup
// deletion for steady-state analysis). Transient CP series are kept;
// load bins, per-CP delay statistics and buffer occupancy restart.
func (w *World) ResetMeasurements() {
	now := w.sim.Now()
	for _, d := range w.devices {
		d.Load.Reset(now)
	}
	w.net.ResetBufferStats()
	for _, h := range w.cps {
		h.DelayStats.Reset()
	}
	w.cpCountTW.Reset()
	w.cpCountTW.Observe(now, float64(w.activeCPs))
}

// DeviceLoad returns the primary device's load recorder.
func (w *World) DeviceLoad() *LoadRecorder { return w.devices[0].Load }

// CPCountSeries returns the active-CP-count trace (the step curve in
// Fig. 5).
func (w *World) CPCountSeries() *stats.TimeSeries { return w.cpCount }

// CPCountStats returns time-weighted statistics of the active CP count.
func (w *World) CPCountStats() *stats.TimeWeighted {
	w.cpCountTW.Finish(w.sim.Now())
	return &w.cpCountTW
}

// CPFrequencies returns each active CP's most recent probe frequency
// towards the primary device (1/δ, per second), sorted ascending — the
// fairness snapshot.
func (w *World) CPFrequencies() []float64 {
	return w.CPFrequenciesFor(w.devices[0].ID)
}

// CPFrequenciesFor returns the fairness snapshot towards the given
// device.
func (w *World) CPFrequenciesFor(dev ident.NodeID) []float64 {
	var out []float64
	for _, h := range w.ActiveCPs() {
		switch p := h.policies[dev].(type) {
		case *sapp.Policy:
			if d := p.Delay().Seconds(); d > 0 {
				out = append(out, 1/d)
			}
		case *dcpp.Policy:
			if d := p.LastWait().Seconds(); d > 0 {
				out = append(out, 1/d)
			}
		case *naive.Policy:
			out = append(out, 1/p.Period().Seconds())
		}
	}
	sort.Float64s(out)
	return out
}
