package simrun

import (
	"testing"

	"presence/internal/stats"
)

func TestMultiDeviceWorldConstruction(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 30, Devices: 3})
	if len(w.Devices()) != 3 {
		t.Fatalf("Devices() = %d, want 3", len(w.Devices()))
	}
	if w.Device().ID != w.Devices()[0].ID {
		t.Fatal("Device() must be the primary device")
	}
	ids := map[int64]bool{}
	for _, d := range w.Devices() {
		if !d.Alive() {
			t.Fatal("fresh device not alive")
		}
		if ids[int64(d.ID)] {
			t.Fatal("duplicate device id")
		}
		ids[int64(d.ID)] = true
	}
	if _, err := NewWorld(Config{Protocol: ProtocolDCPP, Devices: -1}); err == nil {
		t.Error("negative device count accepted")
	}
}

func TestMultiDeviceEachDeviceLoadBounded(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 31, Devices: 3})
	if _, err := w.AddCPs(10); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(60))
	w.ResetMeasurements()
	w.Run(sec(240))
	// 10 CPs × f_max 2/s = 20 > L_nom = 10 per device: every device is
	// schedule-limited at its own L_nom, independently.
	for i, d := range w.Devices() {
		st := d.Load.Stats()
		if st.Mean() < 9 || st.Mean() > 10.2 {
			t.Fatalf("device %d load = %g, want ≈10", i, st.Mean())
		}
	}
	// Fairness holds per device.
	for _, d := range w.Devices() {
		freqs := w.CPFrequenciesFor(d.ID)
		if len(freqs) != 10 {
			t.Fatalf("device %v has %d monitored frequencies", d.ID, len(freqs))
		}
		if j := stats.JainIndex(freqs); j < 0.99 {
			t.Fatalf("device %v fairness J = %g", d.ID, j)
		}
	}
}

func TestMultiDeviceIndependentFailure(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 32, Devices: 2})
	hosts, err := w.AddCPs(4)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(30))
	victim := w.Devices()[1]
	killAt := w.KillDeviceID(victim.ID)
	w.Run(sec(45))
	for _, h := range hosts {
		// The victim must be detected...
		at, ok := h.LostDevice(victim.ID)
		if !ok {
			t.Fatalf("%s never detected device %v", h.Name, victim.ID)
		}
		if at <= killAt {
			t.Fatalf("%s detected the crash before it happened", h.Name)
		}
		// ...while the primary device stays monitored.
		if h.Lost {
			t.Fatalf("%s lost the healthy primary device", h.Name)
		}
		if h.Prober.Stopped() {
			t.Fatalf("%s's primary prober stopped", h.Name)
		}
		if !h.ProberFor(victim.ID).Stopped() {
			t.Fatalf("%s's victim prober still running", h.Name)
		}
	}
	// The healthy device keeps serving.
	before := w.Device().Load.Total()
	w.Run(sec(60))
	if w.Device().Load.Total() <= before {
		t.Fatal("healthy device stopped receiving probes")
	}
}

func TestMultiDeviceSelectiveBye(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 33, Devices: 2})
	hosts, err := w.AddCPs(3)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(10))
	second := w.Devices()[1]
	w.DeviceByeID(second.ID)
	w.Run(sec(15))
	for _, h := range hosts {
		if !h.ProberFor(second.ID).Stopped() {
			t.Fatalf("%s still probing the departed device", h.Name)
		}
		if h.SawBye {
			t.Fatalf("%s recorded a bye for the primary device", h.Name)
		}
	}
	if second.Alive() {
		t.Fatal("departed device still alive")
	}
	// Reviving and restarting brings it back.
	w.ReviveDeviceID(second.ID)
	for _, h := range hosts {
		h.ProberFor(second.ID).Start()
	}
	before := second.Load.Total()
	w.Run(sec(30))
	if second.Load.Total() <= before {
		t.Fatal("revived device got no probes")
	}
}

func TestMultiDeviceSAPPIndependentAdaptation(t *testing.T) {
	// Policies are per (CP, device): the same CP may be fast towards one
	// device and starved towards another.
	w := mustWorld(t, Config{Protocol: ProtocolSAPP, Seed: 34, Devices: 2})
	if err := w.AddCPsStaggered(10, sec(5)); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(1500))
	for _, d := range w.Devices() {
		st := d.Load.Stats()
		if st.Mean() < 4 || st.Mean() > 17 {
			t.Fatalf("device %v SAPP load = %g, want near the band", d.ID, st.Mean())
		}
	}
	// Frequencies towards the two devices are distinct measurements.
	a := w.CPFrequenciesFor(w.Devices()[0].ID)
	b := w.CPFrequenciesFor(w.Devices()[1].ID)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("frequency sets: %d, %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("per-device adaptation states are identical — suspicious coupling")
	}
}

func TestMultiDeviceDeterminism(t *testing.T) {
	run := func() [2]uint64 {
		w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 35, Devices: 2})
		if _, err := w.AddCPs(5); err != nil {
			t.Fatal(err)
		}
		w.Run(sec(120))
		return [2]uint64{w.Devices()[0].Load.Total(), w.Devices()[1].Load.Total()}
	}
	if run() != run() {
		t.Fatal("multi-device runs with the same seed diverged")
	}
}
