package simrun

import (
	"testing"

	"presence/internal/core/dcpp"
	"presence/internal/simnet"
)

// TestPartitionCausesFalsePositive: blocking the CP→device link makes
// the CP (correctly, from its viewpoint) declare the device absent —
// the probe protocol cannot distinguish a dead device from an
// unreachable one.
func TestPartitionCausesFalsePositive(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 20})
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(10))
	if h.Lost {
		t.Fatal("lost before partition")
	}
	w.Net().Block(h.ID, w.Device().ID)
	w.Run(sec(15))
	if !h.Lost {
		t.Fatal("partitioned CP never declared the device absent")
	}
	// Heal the partition and restart: monitoring recovers.
	w.Net().Unblock(h.ID, w.Device().ID)
	h.Lost = false
	h.Prober.Start()
	before := h.Prober.Stats().CyclesOK
	w.Run(sec(25))
	if h.Prober.Stats().CyclesOK <= before {
		t.Fatal("healed CP completed no cycles")
	}
	if h.Lost {
		t.Fatal("healed CP still reports the device lost")
	}
}

// TestAsymmetricPartitionLosesReplies: blocking only the device→CP
// direction drops every reply; the CP retransmits (uselessly) and then
// declares absence. The device, meanwhile, keeps counting probes.
func TestAsymmetricPartitionLosesReplies(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 21})
	h, err := w.AddCP()
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(5))
	probesBefore := w.DeviceLoad().Total()
	w.Net().Block(w.Device().ID, h.ID)
	w.Run(sec(12))
	if !h.Lost {
		t.Fatal("CP with blocked replies never gave up")
	}
	if w.DeviceLoad().Total() <= probesBefore {
		t.Fatal("device saw no probes during the asymmetric partition")
	}
	st := h.Prober.Stats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmissions before giving up")
	}
}

// TestDCPPUnderDuplication: duplicated probes must not inflate the
// schedule — the device answers retransmissions/duplicates of a cycle
// from its assignment table, so the load bound holds.
func TestDCPPUnderDuplication(t *testing.T) {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 22}
	cfg.Net.DuplicateP = 0.3
	w := mustWorld(t, cfg)
	if _, err := w.AddCPs(20); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(60))
	w.ResetMeasurements()
	w.Run(sec(240))
	// Device-side dedupe answered the duplicate probes.
	dev := w.Device().Engine.(*dcpp.Device)
	if dev.DupReplies() == 0 {
		t.Fatal("no duplicate probes were deduplicated")
	}
	// The load recorder counts every arriving probe, including dups;
	// duplicates are ~30% extra, so allow up to 1.4×L_nom, but fresh
	// slots must stay δ_min apart — verify via per-CP frequencies.
	freqs := w.CPFrequencies()
	for _, f := range freqs {
		if f > 2.05 {
			t.Fatalf("per-CP frequency %g exceeds f_max under duplication", f)
		}
	}
}

// TestDCPPUnderLossKeepsLoadBounded: with 10% loss, retransmissions add
// traffic but the schedule still spaces fresh slots; CPs that lose a
// full cycle stop (false positives are possible and expected).
func TestDCPPUnderLossKeepsLoadBounded(t *testing.T) {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 23}
	cfg.Net.Loss = simnet.Bernoulli{P: 0.1}
	w := mustWorld(t, cfg)
	if _, err := w.AddCPs(20); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(300))
	var retransmits uint64
	for _, h := range w.AllCPs() {
		retransmits += h.Prober.Stats().Retransmits
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions under 10% loss")
	}
	// Load includes retransmitted probes; still far below naive overload.
	loadStats := w.DeviceLoad().Stats()
	if loadStats.Mean() > 13 {
		t.Fatalf("lossy DCPP load = %g, want bounded near L_nom", loadStats.Mean())
	}
}

// TestSAPPSurvivesDeviceRestart: the device crashes and comes back with
// a reset probe counter; restarted CPs must re-anchor their L_exp
// estimate instead of treating the counter jump as meaningful.
func TestSAPPSurvivesDeviceRestart(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolSAPP, Seed: 24})
	hosts, err := w.AddCPs(5)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sec(120))
	w.KillDevice()
	w.Run(sec(140))
	for _, h := range hosts {
		if !h.Lost {
			t.Fatal("CP did not detect the crash")
		}
	}
	w.ReviveDevice()
	for _, h := range hosts {
		h.Prober.Start()
	}
	w.Run(sec(260))
	for _, h := range hosts {
		st := h.Prober.Stats()
		if st.CyclesOK == 0 {
			t.Fatalf("%s completed no cycles after the restart", h.Name)
		}
	}
	loadStats := w.DeviceLoad().Stats()
	if loadStats.Mean() <= 0 {
		t.Fatal("no load after restart")
	}
}

// TestChurnWithLossAndDuplication: the full adversarial combination —
// churn, loss, duplication — must neither deadlock, nor violate the
// DCPP fresh-slot bound, nor crash.
func TestChurnWithLossAndDuplication(t *testing.T) {
	cfg := Config{Protocol: ProtocolDCPP, Seed: 25}
	cfg.Net.Loss = simnet.Bernoulli{P: 0.05}
	cfg.Net.DuplicateP = 0.05
	w := mustWorld(t, cfg)
	if err := w.StartChurn(DefaultUniformChurn()); err != nil {
		t.Fatal(err)
	}
	w.Run(sec(600))
	loadStats := w.DeviceLoad().Stats()
	if loadStats.Mean() < 5 || loadStats.Mean() > 14 {
		t.Fatalf("adversarial churn load = %g, want near L_nom", loadStats.Mean())
	}
	if w.Sim().Executed() == 0 {
		t.Fatal("simulation made no progress")
	}
}

// TestDeviceByeDuringChurn: a graceful leave mid-churn notifies the
// active population; CPs that joined after the bye... cannot join (the
// device is gone), so the population only drains.
func TestDeviceByeDuringChurn(t *testing.T) {
	w := mustWorld(t, Config{Protocol: ProtocolDCPP, Seed: 26})
	if _, err := w.AddCPs(10); err != nil {
		t.Fatal(err)
	}
	w.ScheduleDeviceBye(sec(30))
	w.Run(sec(60))
	byes := 0
	for _, h := range w.ActiveCPs() {
		if h.SawBye {
			byes++
		}
	}
	if byes != 10 {
		t.Fatalf("%d/10 CPs saw the bye", byes)
	}
	if w.Device().Alive() {
		t.Fatal("device still alive after bye")
	}
}

// TestDedupeDisabledDeviceOverSchedules: with dedupe off (the paper's
// literal protocol) duplicated probes claim extra slots, pushing CP
// waits beyond the fair share — quantifies why the extension matters.
func TestDedupeDisabledDeviceOverSchedules(t *testing.T) {
	run := func(dedupe bool) float64 {
		cfg := Config{Protocol: ProtocolDCPP, Seed: 27}
		cfg.Net.DuplicateP = 0.5
		dev := dcpp.DefaultDeviceConfig()
		if !dedupe {
			dev.DedupeTTL = -1
		}
		cfg.DCPPDevice = dev
		w := mustWorld(t, cfg)
		if _, err := w.AddCPs(10); err != nil {
			t.Fatal(err)
		}
		w.Run(sec(120))
		freqs := w.CPFrequencies()
		var sum float64
		for _, f := range freqs {
			sum += f
		}
		return sum / float64(len(freqs))
	}
	with := run(true)
	without := run(false)
	if !(without < with) {
		t.Fatalf("dedupe off should slow CPs down (wasted slots): with=%g without=%g", with, without)
	}
}
