package metrics

import (
	"math/rand"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
		{1 << 30, 30}, {1<<30 + 1, 31},
		{1 << 31, 31}, {1 << 40, 31}, {^uint64(0), 31},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The invariant the exposition rendering depends on: every finite
	// bucket's observations are ≤ its upper bound, and > the previous
	// bucket's.
	for v := uint64(1); v < 1<<20; v = v*3 + 1 {
		i := BucketIndex(v)
		if i < NumBuckets-1 && v > UpperBound(i) {
			t.Fatalf("v=%d landed in bucket %d with upper bound %d", v, i, UpperBound(i))
		}
		if i > 0 && v <= UpperBound(i-1) {
			t.Fatalf("v=%d landed in bucket %d but fits bucket %d (bound %d)", v, i, i-1, UpperBound(i-1))
		}
	}
}

// TestMergeEqualsSingle proves the property scraping relies on: merging
// per-shard snapshots is indistinguishable from one histogram having
// recorded every sample.
func TestMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	const shards = 4
	var sharded [shards]Histogram
	var single Histogram
	for i := 0; i < 10000; i++ {
		// Mix of magnitudes: sub-bucket, mid-range, overflow.
		v := uint64(rng.Intn(3))
		switch rng.Intn(3) {
		case 0:
			v = uint64(rng.Intn(16))
		case 1:
			v = uint64(rng.Intn(1 << 20))
		case 2:
			v = uint64(rng.Int63())
		}
		sharded[rng.Intn(shards)].Observe(v)
		single.Observe(v)
	}
	var merged HistogramSnapshot
	for i := range sharded {
		s := sharded[i].Snapshot()
		merged.Merge(s)
	}
	want := single.Snapshot()
	if merged != want {
		t.Fatalf("merged shards != single histogram:\n merged: %+v\n single: %+v", merged, want)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	v := uint64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v = v*7 + 13
	}); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestSnapshotStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("count=%d sum=%d, want 5/1106", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 1106.0/5 {
		t.Fatalf("mean=%v", m)
	}
	// Quantile returns the bucket upper bound the rank falls in.
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("p0=%d, want 1", q)
	}
	if q := s.Quantile(0.5); q != 4 { // rank 2 → value 3 → bucket bound 4
		t.Fatalf("p50=%d, want 4", q)
	}
	if q := s.Quantile(1); q != 1024 { // value 1000 → bucket bound 1024
		t.Fatalf("p100=%d, want 1024", q)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
