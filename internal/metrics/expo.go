package metrics

// Prometheus text exposition format, version 0.0.4 — the format every
// scraper speaks. Rendered by hand (stdlib only): the grammar is one
// page — # HELP / # TYPE header lines per family, then one
// `name{labels} value` sample per line; histograms render cumulative
// le-bucket counters plus _sum and _count. The writer validates metric
// and label names against the grammar and escapes label values, so an
// invalid series is a caller bug surfaced as an error, never a
// half-written scrape.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one counter/gauge series of a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistogramSample is one histogram series of a family.
type HistogramSample struct {
	Labels []Label
	Snap   HistogramSnapshot
}

// ValidMetricName reports whether s matches the exposition grammar for
// metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s matches the label-name grammar:
// [a-zA-Z_][a-zA-Z0-9_]* and not a reserved "__" name.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Writer renders one scrape. Families must be written whole (one
// Counter/Gauge/Histogram call each) and each family name at most once
// per scrape — both enforced, since duplicate headers make the whole
// exposition unparseable. Errors stick: the first one wins and every
// later call is a no-op, so call sites chain without checks and read
// Err once at the end.
type Writer struct {
	w    io.Writer
	seen map[string]bool
	err  error
	buf  []byte
}

// NewWriter returns a Writer rendering to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, seen: make(map[string]bool)}
}

// Err returns the first error encountered (bad name, duplicate family,
// underlying write failure).
func (w *Writer) Err() error { return w.err }

// Counter writes one counter family: HELP/TYPE header plus every
// sample. Counter values must be cumulative and non-decreasing; the
// writer renders what it is given.
func (w *Writer) Counter(name, help string, samples ...Sample) {
	w.family(name, help, "counter", samples)
}

// Gauge writes one gauge family.
func (w *Writer) Gauge(name, help string, samples ...Sample) {
	w.family(name, help, "gauge", samples)
}

func (w *Writer) family(name, help, typ string, samples []Sample) {
	if !w.header(name, help, typ) {
		return
	}
	for _, s := range samples {
		w.sample(name, "", s.Labels, "", "", s.Value)
	}
}

// Histogram writes one histogram family: per sample, the cumulative
// le buckets, the +Inf bucket, _sum and _count. unit scales recorded
// integer observations into the exposed base unit — durations recorded
// in microseconds expose seconds with unit 1e-6; pass 1 for unit-free
// histograms (packet counts).
func (w *Writer) Histogram(name, help string, unit float64, samples ...HistogramSample) {
	if !w.header(name, help, "histogram") {
		return
	}
	for _, s := range samples {
		var cum uint64
		for i := 0; i < NumBuckets-1; i++ {
			cum += s.Snap.Buckets[i]
			le := strconv.FormatFloat(float64(UpperBound(i))*unit, 'g', -1, 64)
			w.sample(name, "_bucket", s.Labels, "le", le, float64(cum))
		}
		w.sample(name, "_bucket", s.Labels, "le", "+Inf", float64(s.Snap.Count))
		w.sample(name, "_sum", s.Labels, "", "", float64(s.Snap.Sum)*unit)
		w.sample(name, "_count", s.Labels, "", "", float64(s.Snap.Count))
	}
}

// header validates the family name, rejects duplicates, and writes the
// HELP and TYPE lines. Reports whether the family may proceed.
func (w *Writer) header(name, help, typ string) bool {
	if w.err != nil {
		return false
	}
	if !ValidMetricName(name) {
		w.err = fmt.Errorf("metrics: invalid metric name %q", name)
		return false
	}
	if w.seen[name] {
		w.err = fmt.Errorf("metrics: family %q written twice", name)
		return false
	}
	w.seen[name] = true
	// HELP text escapes backslash and newline (the format's two escapes
	// for help lines).
	esc := strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help)
	if _, err := fmt.Fprintf(w.w, "# HELP %s %s\n# TYPE %s %s\n", name, esc, name, typ); err != nil {
		w.err = err
		return false
	}
	return true
}

// sample renders one `name[suffix]{labels[,extraName="extraValue"]} value`
// line. extraName carries the histogram "le" label so callers never
// splice label slices on the scrape path.
func (w *Writer) sample(name, suffix string, labels []Label, extraName, extraValue string, v float64) {
	if w.err != nil {
		return
	}
	b := w.buf[:0]
	b = append(b, name...)
	b = append(b, suffix...)
	if len(labels) > 0 || extraName != "" {
		b = append(b, '{')
		first := true
		for _, l := range labels {
			if !ValidLabelName(l.Name) {
				w.err = fmt.Errorf("metrics: invalid label name %q on %s", l.Name, name)
				return
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendLabel(b, l.Name, l.Value)
		}
		if extraName != "" {
			if !first {
				b = append(b, ',')
			}
			b = appendLabel(b, extraName, extraValue)
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = appendValue(b, v)
	b = append(b, '\n')
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		w.err = err
	}
}

// appendLabel renders name="value" with the format's label-value
// escapes (backslash, double quote, newline).
func appendLabel(b []byte, name, value string) []byte {
	b = append(b, name...)
	b = append(b, '=', '"')
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendValue renders a sample value: integral floats (the common case
// — counters and bucket counts) render without an exponent, and the
// infinities render as the format's +Inf/-Inf.
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.AppendFloat(b, v, 'f', -1, 64)
	default:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
}
