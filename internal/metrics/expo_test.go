package metrics

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleScrape renders a representative scrape: counters with and
// without labels, a gauge, and a histogram with a duration unit —
// every rendering path the fleet's status plane exercises.
func sampleScrape(w *Writer) {
	w.Counter("fleet_probes_out_total", "Probe datagrams sent.",
		Sample{Labels: []Label{{"shard", "0"}}, Value: 42},
		Sample{Labels: []Label{{"shard", "1"}}, Value: 7},
	)
	w.Gauge("fleet_live_control_points", "Control points currently registered.",
		Sample{Value: 3},
	)
	w.Counter("fleet_weird_values_total", `Label escaping: backslash \ quote " newline.`,
		Sample{Labels: []Label{{"path", "a\\b\"c\nd"}}, Value: 1},
	)
	var h Histogram
	for _, v := range []uint64{1, 3, 900, 1500, 2_000_000} {
		h.Observe(v)
	}
	w.Histogram("fleet_probe_rtt_seconds", "Probe round-trip time.", 1e-6,
		HistogramSample{Snap: h.Snapshot()},
	)
	var fill Histogram
	fill.Observe(1)
	fill.Observe(32)
	w.Histogram("fleet_recv_batch_fill_datagrams", "Datagrams per receive batch.", 1,
		HistogramSample{Labels: []Label{{"shard", "0"}}, Snap: fill.Snapshot()},
	)
}

func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	sampleScrape(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "expo.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
)

// checkExposition is a strict line-level parser for the text format:
// every line must be a valid HELP, TYPE, or sample line, sample names
// must belong to the most recently declared family, and no family may
// be declared twice. Returns families → sample counts.
func checkExposition(t *testing.T, text string) map[string]int {
	t.Helper()
	families := map[string]int{}
	declared := map[string]bool{}
	current := ""
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition must end in a newline")
	}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad HELP line %q", ln+1, line)
			}
			if declared[m[1]] {
				t.Fatalf("line %d: family %q declared twice", ln+1, m[1])
			}
			declared[m[1]] = true
			current = m[1]
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			if m[1] != current {
				t.Fatalf("line %d: TYPE for %q but current family is %q", ln+1, m[1], current)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample line %q", ln+1, line)
			}
			name := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if name != current {
				t.Fatalf("line %d: sample %q outside its family block (current %q)", ln+1, m[1], current)
			}
			if v := m[len(m)-1]; v != "+Inf" && v != "-Inf" && v != "NaN" {
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", ln+1, v, err)
				}
			}
			families[current]++
		}
	}
	return families
}

func TestExpositionGrammar(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	sampleScrape(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	families := checkExposition(t, sb.String())
	// A 32-bucket histogram renders 31 finite buckets + +Inf + sum + count.
	if n := families["fleet_probe_rtt_seconds"]; n != NumBuckets+2 {
		t.Errorf("rtt histogram rendered %d sample lines, want %d", n, NumBuckets+2)
	}
	if n := families["fleet_probes_out_total"]; n != 2 {
		t.Errorf("counter rendered %d samples, want 2", n)
	}
}

// TestHistogramCumulative checks the le buckets are cumulative and the
// +Inf bucket equals _count — the two properties scrapers compute
// quantiles from.
func TestHistogramCumulative(t *testing.T) {
	var h Histogram
	for v := uint64(1); v < 5000; v *= 2 {
		h.Observe(v)
	}
	h.Observe(1 << 40) // overflow bucket
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Histogram("x_seconds", "x", 1, HistogramSample{Snap: h.Snapshot()})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	var prev float64
	var infVal, countVal float64
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "x_seconds_bucket{le=\"+Inf\"}"):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &infVal)
		case strings.HasPrefix(line, "x_seconds_bucket"):
			var v float64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v)
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %v after %v in %q", v, prev, line)
			}
			prev = v
		case strings.HasPrefix(line, "x_seconds_count"):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &countVal)
		}
	}
	if infVal != countVal || countVal != 14 {
		t.Fatalf("+Inf bucket %v != count %v (want 14)", infVal, countVal)
	}
	if infVal < prev {
		t.Fatalf("+Inf bucket %v below last finite bucket %v", infVal, prev)
	}
}

func TestNameValidators(t *testing.T) {
	valid := []string{"a", "fleet_probes_out_total", "A9", "_x", "ns:sub"}
	for _, s := range valid {
		if !ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = false", s)
		}
	}
	invalid := []string{"", "9a", "a-b", "a b", "é", "a\n"}
	for _, s := range invalid {
		if ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = true", s)
		}
	}
	if !ValidLabelName("shard") || !ValidLabelName("_x") {
		t.Error("label names rejected")
	}
	for _, s := range []string{"", "__name__", "9a", "a:b", "le\n"} {
		if ValidLabelName(s) {
			t.Errorf("ValidLabelName(%q) = true", s)
		}
	}
}

func TestWriterErrors(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Counter("ok_total", "x", Sample{Value: 1})
	w.Counter("ok_total", "x", Sample{Value: 2})
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate family not rejected: %v", err)
	}

	w = NewWriter(&sb)
	w.Gauge("bad-name", "x", Sample{Value: 1})
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "invalid metric name") {
		t.Fatalf("bad metric name not rejected: %v", err)
	}

	w = NewWriter(&sb)
	w.Counter("ok_total", "x", Sample{Labels: []Label{{"bad-label", "v"}}, Value: 1})
	if err := w.Err(); err == nil || !strings.Contains(err.Error(), "invalid label name") {
		t.Fatalf("bad label name not rejected: %v", err)
	}

	// Errors stick: later families are silently dropped, not rendered.
	before := sb.Len()
	w.Gauge("later", "x", Sample{Value: 1})
	if sb.Len() != before {
		t.Fatal("writer kept rendering after an error")
	}
}
