// Package metrics is the fleet's stdlib-only telemetry core: fixed-
// bucket log₂ histograms built from cache-line-padded atomics, cheap
// enough to record on the shard hot path (one atomic add per bucket
// sample, no allocation, no lock), and a Prometheus text-exposition
// writer (expo.go) that renders merged snapshots for scraping.
//
// The paper's headline figures are latency distributions — detection
// latency, probe round trips — yet flat counters can only report means.
// A histogram per shard closes that gap without touching the 0
// allocs/op budget: writers touch only their own shard's padded
// buckets, scrapers snapshot each shard with atomic loads and merge the
// snapshots outside the hot path.
//
// # Bucket layout
//
// Histograms use 32 fixed buckets with power-of-two upper bounds:
// bucket i holds observations v with 2^(i-1) < v ≤ 2^i (bucket 0 holds
// v ≤ 1), and the last bucket is the overflow. Durations are recorded
// in microseconds, so the finite buckets span 1 µs to 2^30 µs ≈ 18
// minutes — below a microsecond nothing in a UDP probe path is
// distinguishable, and above minutes every verdict has long fired.
// Packet-count histograms (receive batch fill) use the same layout
// unit-free. Log₂ resolution (worst-case bucket width = the value
// itself) matches how the latencies are read: "sub-millisecond",
// "tens of ms", "seconds" — and makes Observe two instructions
// (bits.Len64 + add) with no search and no configuration to get wrong.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i
// has upper bound 2^i (i < NumBuckets-1); the last bucket is overflow.
const NumBuckets = 32

// Histogram is a fixed-bucket log₂ histogram safe for one writer and
// any number of snapshotting readers without locks. The struct is
// padded to keep a scraper's atomic loads off the cache lines of
// whatever the owner allocates around it (the same false-sharing trap
// pubCounters documents in internal/fleet).
//
// The zero value is ready to use.
type Histogram struct {
	_       [64]byte
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
	_       [64]byte
}

// BucketIndex returns the bucket for one observation: the smallest i
// with v ≤ 2^i, clamped into the overflow bucket.
func BucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(v - 1) // ceil(log₂ v)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// UpperBound returns bucket i's inclusive upper bound, valid for
// i < NumBuckets-1 (the last bucket is unbounded).
func UpperBound(i int) uint64 { return 1 << uint(i) }

// Observe records one sample. It allocates nothing and takes no lock:
// three uncontended atomic adds.
func (h *Histogram) Observe(v uint64) {
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns a point-in-time copy. Concurrent with Observe the
// fields are each atomically read but not mutually consistent — a
// sample landing mid-snapshot may be visible in count and not yet in
// its bucket. Scrape-grade accuracy, exact on a quiescent histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain-value copy of one Histogram, mergeable
// across shards and renderable by the exposition writer.
type HistogramSnapshot struct {
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Merge adds o into s element-wise: merging every shard's snapshot
// equals a single histogram having recorded all their samples.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) by
// walking the cumulative buckets — the standard le-bucket estimate:
// the answer is the upper bound of the bucket the quantile falls in,
// so it is exact to within one log₂ bucket.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum > rank {
			return UpperBound(i)
		}
	}
	return UpperBound(NumBuckets - 1)
}
