// Package memnet is a deterministic in-memory packet network with
// injectable faults, shaped like UDP: datagrams between endpoints may
// be delayed, dropped (Bernoulli or Gilbert–Elliott burst loss),
// duplicated or reordered, and whole endpoints can be partitioned away
// ("down") to emulate silent crashes.
//
// Its endpoints satisfy internal/fleet's PacketConn contract — and its
// batched extension, fleet.BatchPacketConn — so the production shard
// event loops run over it unchanged, batch code path included. That is
// the point: the conformance harness (internal/conformance) drives the
// real fleet runtime over a hostile fake network built from the same
// simnet loss/delay models a scenario Spec compiles to, and compares
// the outcome against the discrete-event simulator.
//
// # Determinism
//
// All fault draws come from per-link sub-streams forked off one seed:
// the link a→b draws loss, delay, duplication and reordering from
// rng.Fork("link/<a>/<b>"), and endpoint addresses are assigned in
// Listen order from a fixed synthetic range. Senders are serialised
// per link (the fleet serialises sends under its shard mutex), so for
// a fixed seed the n-th datagram on a link always sees the same fate,
// independent of goroutine scheduling across links. Delivery *order*
// across links still depends on wall-clock timing — memnet makes the
// fault pattern reproducible, not the interleaving; the conformance
// harness therefore asserts invariants and tolerance-banded metrics,
// not exact traces.
//
// # Concurrency
//
// The per-link fault contract needs per-link serialisation, nothing
// global — and multi-shard fleets run one sender goroutine per shard,
// so a single network mutex would serialise exactly the parallelism a
// multi-core scaling run exists to measure. The benign path therefore
// shares the network lock read-only per burst and takes only sharded
// per-link locks for fault draws; counters are atomics. One global
// exception keeps the adversarial harness exact: installing an Observer
// or a Middlebox switches the network to the fully serialised path
// (every send under one exclusive lock, in today's order), because both
// APIs promise globally ordered, synchronous callbacks. Benchmarks run
// observer-less; conformance runs observed — each gets the semantics it
// needs.
//
// Packets in flight ride real time.AfterFunc timers: a delay model's
// draw is honoured on the wall clock, which both realises reordering
// (a slow packet is overtaken by a fast successor) and keeps the
// engines' real-time timeouts meaningful.
package memnet

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"presence/internal/fleet"
	"presence/internal/rng"
	"presence/internal/simnet"
)

// Faults configures the injected network faults. The zero value is a
// perfect network: instant, lossless, exactly-once.
type Faults struct {
	// Seed derives every fault stream (per-link forks).
	Seed uint64
	// Delay draws the one-way transit time per datagram (shared across
	// links; implementations must be stateless, which all simnet delay
	// models are). Nil means instant delivery.
	Delay simnet.DelayModel
	// NewLoss builds one loss model instance per link. A factory rather
	// than an instance because Gilbert–Elliott channels carry state and
	// must not be shared across links (or goroutines). Nil means no
	// loss.
	NewLoss func() simnet.LossModel
	// DuplicateP duplicates each delivered datagram with this
	// probability; the copy draws its own delay.
	DuplicateP float64
	// ReorderP holds a datagram back with this probability by adding
	// ReorderDelay on top of its drawn delay, letting later traffic on
	// the link overtake it.
	ReorderP float64
	// ReorderDelay is the extra hold applied to reordered datagrams.
	// Zero means 2 ms (several paper-mode transit times).
	ReorderDelay time.Duration
}

// Verdict classifies what happened to one datagram.
type Verdict uint8

// Verdicts, in the order a datagram meets them.
const (
	// Lost: the link's loss model dropped it.
	Lost Verdict = iota + 1
	// DroppedDown: the source or destination endpoint was down or gone.
	DroppedDown
	// Overflowed: the destination inbox was full at delivery time.
	Overflowed
	// Delivered: handed to the destination endpoint.
	Delivered
	// Filtered: an installed middlebox dropped it before the link fault
	// plan ran.
	Filtered
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Lost:
		return "lost"
	case DroppedDown:
		return "dropped-down"
	case Overflowed:
		return "overflowed"
	case Delivered:
		return "delivered"
	case Filtered:
		return "filtered"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// PacketEvent is one datagram outcome reported to the observer.
// Delivered and Overflowed events fire at delivery time, Lost and
// DroppedDown at send time (or at delivery, if the endpoint went down
// while the datagram was in flight). Duplicate reports whether the
// datagram was a duplicated copy.
type PacketEvent struct {
	// At is the offset from the network's construction.
	At time.Duration
	// From and To are the endpoint addresses.
	From, To netip.AddrPort
	// Frame is the datagram payload. The slice is only valid for the
	// duration of the observer call; copy it to keep it.
	Frame []byte
	// Verdict is the datagram's fate.
	Verdict Verdict
	// Duplicate marks an injected duplicate copy.
	Duplicate bool
	// Injected marks a datagram originated by a middlebox rather than
	// accepted from an endpoint — attack traffic, from the harness's
	// point of view.
	Injected bool
}

// Observer receives packet events. It is called synchronously from
// send and delivery paths (possibly from several goroutines) and must
// be cheap; the Network serialises calls with its own mutex.
type Observer func(ev PacketEvent)

// Counters aggregates datagram accounting.
type Counters struct {
	Sent       uint64 // accepted from an endpoint
	Delivered  uint64
	Lost       uint64
	Duplicated uint64 // extra copies injected by the fault plan
	Dropped    uint64 // down/unregistered endpoints
	Overflowed uint64 // full inboxes
	Injected   uint64 // datagrams originated by middleboxes
	Filtered   uint64 // datagrams dropped by middleboxes
}

// Network is an in-memory datagram network. All methods are safe for
// concurrent use.
type Network struct {
	faults Faults
	root   *rng.Rand
	epoch  time.Time

	// downCount mirrors len(down); the endpoint read paths check it
	// atomically so the benign hot path pays no lock while nothing is
	// partitioned.
	downCount atomic.Int32

	// serial is true while an Observer or Middlebox is installed: sends
	// then run fully serialised under an exclusive mu, preserving the
	// global callback order those APIs promise. Benign traffic (the
	// common case for scale runs) keeps mu read-shared and contends only
	// on per-link locks.
	serial atomic.Bool

	mu       sync.RWMutex
	eps      map[netip.AddrPort]*Endpoint
	groups   map[netip.AddrPort][]*Endpoint
	down     map[netip.AddrPort]bool
	middle   []Middlebox
	nextPort uint16
	observer Observer
	closed   bool

	// links is sharded by key hash so concurrent senders on different
	// links never touch the same lock; each link additionally carries its
	// own mutex serialising its fault draws.
	links [linkShards]linkShard

	cnt cnt
}

// cnt is the atomic counter block behind Counters.
type cnt struct {
	sent       atomic.Uint64
	delivered  atomic.Uint64
	lost       atomic.Uint64
	duplicated atomic.Uint64
	dropped    atomic.Uint64
	overflowed atomic.Uint64
	injected   atomic.Uint64
	filtered   atomic.Uint64
}

// linkShards is the link-map shard count: far above any plausible
// sender (= fleet shard) count, so two links practically never share a
// map lock.
const linkShards = 64

type linkShard struct {
	mu sync.Mutex
	m  map[linkKey]*link
}

type linkKey struct {
	from, to netip.AddrPort
}

// link carries the per-link fault state: its own RNG stream and its
// own (possibly stateful) loss model. mu serialises fault draws — the
// unit of memnet's determinism contract.
type link struct {
	mu   sync.Mutex
	r    *rng.Rand
	loss simnet.LossModel
}

// memnetAddr is the synthetic address space endpoints are allocated
// from. The range is private (TEST-NET-2) so a stray real socket can
// never collide with it.
var memnetAddr = netip.AddrFrom4([4]byte{198, 51, 100, 1})

// New builds a network with the given fault plan.
func New(f Faults) *Network {
	if f.ReorderDelay == 0 {
		f.ReorderDelay = 2 * time.Millisecond
	}
	n := &Network{
		faults:   f,
		root:     rng.New(f.Seed),
		epoch:    time.Now(),
		eps:      make(map[netip.AddrPort]*Endpoint),
		groups:   make(map[netip.AddrPort][]*Endpoint),
		down:     make(map[netip.AddrPort]bool),
		nextPort: 9000,
	}
	for i := range n.links {
		n.links[i].m = make(map[linkKey]*link)
	}
	return n
}

// Observe installs the packet observer (nil removes it). Install it
// before traffic starts; events already in flight may slip past an
// observer installed late. While an observer is installed the network
// runs fully serialised (see the package comment).
func (n *Network) Observe(obs Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observer = obs
	n.serial.Store(obs != nil || len(n.middle) > 0)
}

// Counters returns a snapshot of the datagram accounting.
func (n *Network) Counters() Counters {
	return Counters{
		Sent:       n.cnt.sent.Load(),
		Delivered:  n.cnt.delivered.Load(),
		Lost:       n.cnt.lost.Load(),
		Duplicated: n.cnt.duplicated.Load(),
		Dropped:    n.cnt.dropped.Load(),
		Overflowed: n.cnt.overflowed.Load(),
		Injected:   n.cnt.injected.Load(),
		Filtered:   n.cnt.filtered.Load(),
	}
}

// Since returns the offset from the network's construction — the
// timebase of PacketEvent.At.
func (n *Network) Since() time.Duration { return time.Since(n.epoch) }

// Listen allocates a new endpoint with the next synthetic address.
// Addresses are assigned deterministically in call order.
func (n *Network) Listen() (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("memnet: network closed")
	}
	if n.nextPort == 0 {
		return nil, errors.New("memnet: address space exhausted")
	}
	addr := netip.AddrPortFrom(memnetAddr, n.nextPort)
	n.nextPort++
	e := &Endpoint{
		n:      n,
		addr:   addr,
		inbox:  make(chan datagram, inboxCap),
		closed: make(chan struct{}),
	}
	n.eps[addr] = e
	return e, nil
}

// ListenGroup allocates size endpoints sharing ONE address — memnet's
// deterministic stand-in for an SO_REUSEPORT socket group. A datagram
// to the shared address is delivered to the member selected by a fixed
// hash of the *source* address, mirroring how the kernel's flow hash
// pins each peer to one member socket: every reply from a given device
// lands on the same member, whichever member's control point probed it.
// Sends from any member carry the shared source address. Closing a
// member removes it from the group (later deliveries re-spread over the
// survivors, like kernel reuseport rebalancing); closing the last one
// releases the address.
func (n *Network) ListenGroup(size int) ([]*Endpoint, error) {
	if size < 1 {
		return nil, fmt.Errorf("memnet: group size %d must be positive", size)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("memnet: network closed")
	}
	if n.nextPort == 0 {
		return nil, errors.New("memnet: address space exhausted")
	}
	addr := netip.AddrPortFrom(memnetAddr, n.nextPort)
	n.nextPort++
	members := make([]*Endpoint, size)
	for i := range members {
		members[i] = &Endpoint{
			n:       n,
			addr:    addr,
			grouped: true,
			inbox:   make(chan datagram, inboxCap),
			closed:  make(chan struct{}),
		}
	}
	n.groups[addr] = append([]*Endpoint(nil), members...)
	return members, nil
}

// groupHash spreads source addresses over group members. Deterministic
// across runs (memnet addresses are assigned in Listen order), like
// every other routing decision here; splitmix64's finalizer over the
// port is plenty — all memnet addresses share one synthetic IP.
func groupHash(from netip.AddrPort) uint64 {
	x := uint64(from.Port()) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SetDown partitions an endpoint address away (true) or heals it
// (false): while down, every datagram to or from the address is
// dropped, including datagrams already in flight and datagrams already
// queued in an inbox but not yet read — a silent crash, as opposed to
// Endpoint.Close, which also wakes blocked readers.
func (n *Network) SetDown(addr netip.AddrPort, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		if !n.down[addr] {
			n.down[addr] = true
			n.downCount.Add(1)
		}
	} else if n.down[addr] {
		delete(n.down, addr)
		n.downCount.Add(-1)
	}
}

// AddMiddlebox installs a middlebox at the tail of the chain. Installed
// mid-run it sees traffic from the next send onward; frames already in
// flight pass it by. Middleboxes cannot be removed — tear the network
// down instead. While any middlebox is installed the network runs fully
// serialised (see the package comment).
func (n *Network) AddMiddlebox(m Middlebox) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.middle = append(n.middle, m)
	n.serial.Store(true)
}

// ForkRNG returns a deterministic sub-stream of the network's seed for
// auxiliary actors (middlebox adversaries), independent of every
// per-link fault stream: links fork under "link/", so any other label
// prefix is safe.
func (n *Network) ForkRNG(label string) *rng.Rand { return n.root.Fork(label) }

// Close tears the network down; subsequent sends are dropped silently.
// Endpoints are not closed (their owners close them).
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// framePool recycles datagram payload copies: a frame buffer is
// acquired at send, carried through the inbox (or an in-flight timer)
// and released once the receiver has copied it out or the datagram
// died. Without it every datagram costs an allocation, which at
// hundreds of thousands of packets per second turns the fake network
// into a GC benchmark. The pool holds *[]byte so neither Get nor Put
// boxes a slice header.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, frameCap)
	return &b
}}

// frameCap comfortably exceeds every protocol frame; an oversized
// payload grows its pooled buffer once and the buffer stays grown.
const frameCap = 2048

func acquireFrame(b []byte) *[]byte {
	p := framePool.Get().(*[]byte)
	if cap(*p) < len(b) {
		*p = make([]byte, 0, len(b))
	}
	*p = append((*p)[:0], b...)
	return p
}

func releaseFrame(p *[]byte) { framePool.Put(p) }

// linkFor returns (creating on first use) the fault state of a→b.
// Safe under either mu mode: the link shard has its own lock.
func (n *Network) linkFor(from, to netip.AddrPort) *link {
	key := linkKey{from, to}
	ls := &n.links[(groupHash(from)^groupHash(to)*0x9e3779b97f4a7c15)&(linkShards-1)]
	ls.mu.Lock()
	l, ok := ls.m[key]
	if !ok {
		l = &link{r: n.root.Fork(fmt.Sprintf("link/%s/%s", from, to))}
		if n.faults.NewLoss != nil {
			l.loss = n.faults.NewLoss()
		}
		ls.m[key] = l
	}
	ls.mu.Unlock()
	return l
}

// faultPlan is one datagram's drawn fate — the draws happen atomically
// per link (under link.mu), the resulting deliveries afterwards.
type faultPlan struct {
	lost     bool
	dup      bool
	delay    time.Duration
	dupDelay time.Duration
}

// drawPlan draws one datagram's fault plan from its link's stream, in
// the fixed draw order (loss, delay+reorder, duplicate, duplicate's
// delay+reorder) that the determinism contract pins.
func (n *Network) drawPlan(l *link) faultPlan {
	l.mu.Lock()
	defer l.mu.Unlock()
	var p faultPlan
	if l.loss != nil && l.loss.Lose(l.r) {
		p.lost = true
		return p
	}
	p.delay = n.drawDelay(l)
	if n.faults.DuplicateP > 0 && l.r.Bool(n.faults.DuplicateP) {
		p.dup = true
		p.dupDelay = n.drawDelay(l)
	}
	return p
}

// emit reports one packet event on the serialised path. Caller holds
// n.mu exclusively.
func (n *Network) emit(from, to netip.AddrPort, frame []byte, v Verdict, dup, injected bool) {
	switch v {
	case Delivered:
		n.cnt.delivered.Add(1)
	case Lost:
		n.cnt.lost.Add(1)
	case DroppedDown:
		n.cnt.dropped.Add(1)
	case Overflowed:
		n.cnt.overflowed.Add(1)
	case Filtered:
		n.cnt.filtered.Add(1)
	}
	if n.observer != nil {
		n.observer(PacketEvent{
			At: time.Since(n.epoch), From: from, To: to,
			Frame: frame, Verdict: v, Duplicate: dup, Injected: injected,
		})
	}
}

// send applies the link's fault plan to one datagram and schedules the
// surviving copies.
func (n *Network) send(from, to netip.AddrPort, b []byte) {
	if n.serial.Load() {
		n.mu.Lock()
		n.sendLocked(from, to, b)
		n.mu.Unlock()
		return
	}
	n.mu.RLock()
	n.sendFast(from, to, b)
	n.mu.RUnlock()
}

// sendFast is the benign-path send: no observer, no middlebox, so no
// global ordering to honour — the network lock is held read-shared and
// the only exclusion is the link's own draw lock. Caller holds
// n.mu.RLock.
func (n *Network) sendFast(from, to netip.AddrPort, b []byte) {
	if n.closed {
		return
	}
	n.cnt.sent.Add(1)
	if n.downCount.Load() > 0 && (n.down[from] || n.down[to]) {
		n.cnt.dropped.Add(1)
		return
	}
	p := n.drawPlan(n.linkFor(from, to))
	if p.lost {
		n.cnt.lost.Add(1)
		return
	}
	n.transmitFast(datagram{from: from, to: to, frame: acquireFrame(b)}, p.delay)
	if p.dup {
		n.cnt.duplicated.Add(1)
		n.transmitFast(datagram{from: from, to: to, frame: acquireFrame(b), duplicate: true}, p.dupDelay)
	}
}

// transmitFast puts one copy in flight on the benign path. Caller holds
// n.mu.RLock; the delayed closure re-acquires in whatever mode the
// network is in by then.
func (n *Network) transmitFast(d datagram, delay time.Duration) {
	if delay <= 0 {
		n.deliverFast(d)
		return
	}
	time.AfterFunc(delay, func() { n.deliverAsync(d) })
}

// deliverAsync completes a delayed delivery, picking the path matching
// the network's current mode.
func (n *Network) deliverAsync(d datagram) {
	if n.serial.Load() {
		n.mu.Lock()
		n.deliverLocked(d)
		n.mu.Unlock()
		return
	}
	n.mu.RLock()
	n.deliverFast(d)
	n.mu.RUnlock()
}

// deliverFast completes one benign-path delivery attempt: counters
// only, no observer (none is installed in this mode). Caller holds
// n.mu.RLock.
func (n *Network) deliverFast(d datagram) {
	if n.closed {
		releaseFrame(d.frame)
		return
	}
	if n.downCount.Load() > 0 && (n.down[d.from] || n.down[d.to]) {
		n.cnt.dropped.Add(1)
		releaseFrame(d.frame)
		return
	}
	e, ok := n.destFor(d)
	if !ok {
		n.cnt.dropped.Add(1)
		releaseFrame(d.frame)
		return
	}
	select {
	case e.inbox <- d:
		n.cnt.delivered.Add(1)
	default:
		n.cnt.overflowed.Add(1)
		releaseFrame(d.frame)
	}
}

// destFor resolves a datagram's destination endpoint: a reuseport-style
// group member picked by source hash when the address names a group,
// the plain endpoint otherwise. Caller holds n.mu (either mode).
func (n *Network) destFor(d datagram) (*Endpoint, bool) {
	if len(n.groups) > 0 {
		if g, ok := n.groups[d.to]; ok && len(g) > 0 {
			return g[groupHash(d.from)%uint64(len(g))], true
		}
	}
	e, ok := n.eps[d.to]
	return e, ok
}

// sendLocked is the serialised-path send (observer or middlebox
// installed), under an exclusively-held network mutex — a batched write
// pays one lock acquisition for the whole burst. The middlebox chain
// runs first — at the sender's first hop, before the down check, so an
// on-path adversary observes even traffic addressed to a crashed
// endpoint — then the link fault plan. Instant deliveries complete
// inline; delayed copies ride time.AfterFunc.
func (n *Network) sendLocked(from, to netip.AddrPort, b []byte) {
	if n.closed {
		return
	}
	n.cnt.sent.Add(1)
	for _, mb := range n.middle {
		if mb.Process(time.Since(n.epoch), from, to, b, Injector{n}) == Drop {
			n.emit(from, to, b, Filtered, false, false)
			return
		}
	}
	n.forwardLocked(from, to, b, false)
}

// forwardLocked applies the down check and the link fault plan to one
// datagram — the tail of sendLocked, shared with middlebox injection.
// Caller holds n.mu.
func (n *Network) forwardLocked(from, to netip.AddrPort, b []byte, injected bool) {
	// An injected frame's source address is claimed, not real — an
	// attacker can stamp a crashed host's address on a datagram it
	// originates itself — so the down check binds only its destination.
	if (!injected && n.down[from]) || n.down[to] {
		n.emit(from, to, b, DroppedDown, false, injected)
		return
	}
	p := n.drawPlan(n.linkFor(from, to))
	if p.lost {
		n.emit(from, to, b, Lost, false, injected)
		return
	}
	n.transmitLocked(datagram{from: from, to: to, frame: acquireFrame(b), injected: injected}, p.delay)
	if p.dup {
		n.cnt.duplicated.Add(1)
		n.transmitLocked(datagram{from: from, to: to, frame: acquireFrame(b), duplicate: true, injected: injected}, p.dupDelay)
	}
}

// drawDelay draws one transit time, including a possible reorder hold.
// Caller holds l.mu (via drawPlan).
func (n *Network) drawDelay(l *link) time.Duration {
	var d time.Duration
	if n.faults.Delay != nil {
		d = n.faults.Delay.Delay(l.r)
		if d < 0 {
			d = 0
		}
	}
	if n.faults.ReorderP > 0 && l.r.Bool(n.faults.ReorderP) {
		d += n.faults.ReorderDelay
	}
	return d
}

// transmitLocked puts one copy in flight on the serialised path,
// delivering inline when there is no delay to wait out. Caller holds
// n.mu exclusively; delayed copies complete in whatever mode the
// network is in at delivery time.
func (n *Network) transmitLocked(d datagram, delay time.Duration) {
	if delay <= 0 {
		n.deliverLocked(d)
		return
	}
	time.AfterFunc(delay, func() { n.deliverAsync(d) })
}

// deliverLocked completes one delivery attempt on the serialised path;
// the frame buffer is recycled unless it made it into an inbox (the
// reader releases it). Caller holds n.mu exclusively.
func (n *Network) deliverLocked(d datagram) {
	if n.closed {
		releaseFrame(d.frame)
		return
	}
	if (!d.injected && n.down[d.from]) || n.down[d.to] {
		n.emit(d.from, d.to, *d.frame, DroppedDown, d.duplicate, d.injected)
		releaseFrame(d.frame)
		return
	}
	e, ok := n.destFor(d)
	if !ok {
		n.emit(d.from, d.to, *d.frame, DroppedDown, d.duplicate, d.injected)
		releaseFrame(d.frame)
		return
	}
	select {
	case e.inbox <- d:
		n.emit(d.from, d.to, *d.frame, Delivered, d.duplicate, d.injected)
	default:
		n.emit(d.from, d.to, *d.frame, Overflowed, d.duplicate, d.injected)
		releaseFrame(d.frame)
	}
}

// datagram is one in-flight packet copy. frame points at a pooled
// buffer owned by the datagram until the receiver copies it out.
type datagram struct {
	from, to  netip.AddrPort
	frame     *[]byte
	duplicate bool
	injected  bool
}

// inboxCap bounds each endpoint's receive queue, standing in for the
// kernel socket buffer.
const inboxCap = 4096

// Endpoint is one attachment point: memnet's stand-in for a bound UDP
// socket. It satisfies internal/fleet's PacketConn contract. Reads are
// intended for a single goroutine (the shard event loop); writes may
// come from any goroutine.
type Endpoint struct {
	n    *Network
	addr netip.AddrPort
	// grouped marks a ListenGroup member: several endpoints share addr
	// and Close detaches from the group, not the eps map.
	grouped bool

	inbox chan datagram

	mu       sync.Mutex
	deadline time.Time
	closed   chan struct{}
	once     sync.Once
}

var _ fleet.BatchPacketConn = (*Endpoint)(nil)

// LocalAddrPort returns the endpoint's address.
func (e *Endpoint) LocalAddrPort() netip.AddrPort { return e.addr }

// SetReadDeadline bounds the next ReadFromUDPAddrPort. The zero time
// means no deadline.
func (e *Endpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.deadline = t
	e.mu.Unlock()
	return nil
}

// errClosed reports reads/writes on a closed endpoint.
var errClosed = errors.New("memnet: endpoint closed")

// timeoutError satisfies net.Error with Timeout() true, which is what
// the fleet shard loop checks to distinguish a read deadline from a
// dead socket.
type timeoutError struct{}

func (timeoutError) Error() string   { return "memnet: read deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ReadFromUDPAddrPort blocks for the next datagram, the deadline or
// Close, whichever comes first.
func (e *Endpoint) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	e.mu.Lock()
	deadline := e.deadline
	e.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			// Drain anything already queued before declaring a timeout,
			// mirroring a kernel socket with data ready.
			for {
				select {
				case d := <-e.inbox:
					if e.dropQueued(d) {
						continue
					}
					return d.read(b)
				default:
					return 0, netip.AddrPort{}, timeoutError{}
				}
			}
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case d := <-e.inbox:
			if e.dropQueued(d) {
				continue
			}
			return d.read(b)
		case <-e.closed:
			return 0, netip.AddrPort{}, errClosed
		case <-timeout:
			return 0, netip.AddrPort{}, timeoutError{}
		}
	}
}

// dropQueued reports whether a queued datagram must be discarded at
// read time: SetDown partitions an address away *including* datagrams
// that already made it into an inbox before the partition — without
// this check a delivery scheduled (or enqueued) just before SetDown
// would still reach a downed endpoint's reader. The fast path is one
// atomic load while nothing is partitioned.
func (e *Endpoint) dropQueued(d datagram) bool {
	n := e.n
	if n.downCount.Load() == 0 {
		return false
	}
	n.mu.RLock()
	// As in forwardLocked: an injected frame's source is spoofed, so
	// only its destination's partition state applies.
	down := (!d.injected && n.down[d.from]) || n.down[d.to]
	n.mu.RUnlock()
	if down {
		n.cnt.dropped.Add(1)
		releaseFrame(d.frame)
	}
	return down
}

// read copies the datagram out to the caller and recycles its buffer.
func (d datagram) read(b []byte) (int, netip.AddrPort, error) {
	k := copy(b, *d.frame)
	releaseFrame(d.frame)
	return k, d.from, nil
}

// WriteToUDPAddrPort sends one datagram through the network's fault
// plan. It never blocks and, like UDP, never reports delivery failure.
func (e *Endpoint) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	select {
	case <-e.closed:
		return 0, errClosed
	default:
	}
	e.n.send(e.addr, addr, b)
	return len(b), nil
}

// ReadBatch implements internal/fleet's BatchPacketConn: it blocks for
// the first datagram exactly like ReadFromUDPAddrPort, then drains
// whatever else is already queued, up to len(dgs). Batched reads see
// the same per-link datagram sequences as single reads — the fault
// plan runs at send time — so the conformance harness drives the
// fleet's batch code path with the same determinism guarantees.
func (e *Endpoint) ReadBatch(dgs []fleet.Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	n, from, err := e.ReadFromUDPAddrPort(dgs[0].Buf)
	if err != nil {
		return 0, err
	}
	dgs[0].Buf = dgs[0].Buf[:n]
	dgs[0].Addr = from
	filled := 1
	for filled < len(dgs) {
		select {
		case d := <-e.inbox:
			if e.dropQueued(d) {
				continue
			}
			k, from, _ := d.read(dgs[filled].Buf)
			dgs[filled].Buf = dgs[filled].Buf[:k]
			dgs[filled].Addr = from
			filled++
		default:
			return filled, nil
		}
	}
	return filled, nil
}

// WriteBatch implements internal/fleet's BatchPacketConn: the whole
// burst moves under one network-lock acquisition — memnet's analogue
// of one sendmmsg — with each datagram drawing from its link's fault
// stream in order, so a batched sender sees the same per-link fates as
// a single-datagram one.
func (e *Endpoint) WriteBatch(dgs []fleet.Datagram) (int, error) {
	select {
	case <-e.closed:
		return 0, errClosed
	default:
	}
	n := e.n
	if n.serial.Load() {
		n.mu.Lock()
		for i := range dgs {
			n.sendLocked(e.addr, dgs[i].Addr, dgs[i].Buf)
		}
		n.mu.Unlock()
	} else {
		n.mu.RLock()
		for i := range dgs {
			n.sendFast(e.addr, dgs[i].Addr, dgs[i].Buf)
		}
		n.mu.RUnlock()
	}
	return len(dgs), nil
}

// Close detaches the endpoint and wakes any blocked reader. A group
// member detaches from its group only; the shared address stays live
// until the last member closes.
func (e *Endpoint) Close() error {
	e.once.Do(func() {
		close(e.closed)
		e.n.mu.Lock()
		if e.grouped {
			g := e.n.groups[e.addr]
			for i, m := range g {
				if m == e {
					g = append(g[:i], g[i+1:]...)
					break
				}
			}
			if len(g) == 0 {
				delete(e.n.groups, e.addr)
			} else {
				e.n.groups[e.addr] = g
			}
		} else {
			delete(e.n.eps, e.addr)
		}
		e.n.mu.Unlock()
	})
	return nil
}
