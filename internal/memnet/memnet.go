// Package memnet is a deterministic in-memory packet network with
// injectable faults, shaped like UDP: datagrams between endpoints may
// be delayed, dropped (Bernoulli or Gilbert–Elliott burst loss),
// duplicated or reordered, and whole endpoints can be partitioned away
// ("down") to emulate silent crashes.
//
// Its endpoints satisfy internal/fleet's PacketConn contract — and its
// batched extension, fleet.BatchPacketConn — so the production shard
// event loops run over it unchanged, batch code path included. That is
// the point: the conformance harness (internal/conformance) drives the
// real fleet runtime over a hostile fake network built from the same
// simnet loss/delay models a scenario Spec compiles to, and compares
// the outcome against the discrete-event simulator.
//
// # Determinism
//
// All fault draws come from per-link sub-streams forked off one seed:
// the link a→b draws loss, delay, duplication and reordering from
// rng.Fork("link/<a>/<b>"), and endpoint addresses are assigned in
// Listen order from a fixed synthetic range. Senders are serialised
// per link (the fleet serialises sends under its shard mutex), so for
// a fixed seed the n-th datagram on a link always sees the same fate,
// independent of goroutine scheduling across links. Delivery *order*
// across links still depends on wall-clock timing — memnet makes the
// fault pattern reproducible, not the interleaving; the conformance
// harness therefore asserts invariants and tolerance-banded metrics,
// not exact traces.
//
// Packets in flight ride real time.AfterFunc timers: a delay model's
// draw is honoured on the wall clock, which both realises reordering
// (a slow packet is overtaken by a fast successor) and keeps the
// engines' real-time timeouts meaningful.
package memnet

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"presence/internal/fleet"
	"presence/internal/rng"
	"presence/internal/simnet"
)

// Faults configures the injected network faults. The zero value is a
// perfect network: instant, lossless, exactly-once.
type Faults struct {
	// Seed derives every fault stream (per-link forks).
	Seed uint64
	// Delay draws the one-way transit time per datagram (shared across
	// links; implementations must be stateless, which all simnet delay
	// models are). Nil means instant delivery.
	Delay simnet.DelayModel
	// NewLoss builds one loss model instance per link. A factory rather
	// than an instance because Gilbert–Elliott channels carry state and
	// must not be shared across links (or goroutines). Nil means no
	// loss.
	NewLoss func() simnet.LossModel
	// DuplicateP duplicates each delivered datagram with this
	// probability; the copy draws its own delay.
	DuplicateP float64
	// ReorderP holds a datagram back with this probability by adding
	// ReorderDelay on top of its drawn delay, letting later traffic on
	// the link overtake it.
	ReorderP float64
	// ReorderDelay is the extra hold applied to reordered datagrams.
	// Zero means 2 ms (several paper-mode transit times).
	ReorderDelay time.Duration
}

// Verdict classifies what happened to one datagram.
type Verdict uint8

// Verdicts, in the order a datagram meets them.
const (
	// Lost: the link's loss model dropped it.
	Lost Verdict = iota + 1
	// DroppedDown: the source or destination endpoint was down or gone.
	DroppedDown
	// Overflowed: the destination inbox was full at delivery time.
	Overflowed
	// Delivered: handed to the destination endpoint.
	Delivered
	// Filtered: an installed middlebox dropped it before the link fault
	// plan ran.
	Filtered
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Lost:
		return "lost"
	case DroppedDown:
		return "dropped-down"
	case Overflowed:
		return "overflowed"
	case Delivered:
		return "delivered"
	case Filtered:
		return "filtered"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// PacketEvent is one datagram outcome reported to the observer.
// Delivered and Overflowed events fire at delivery time, Lost and
// DroppedDown at send time (or at delivery, if the endpoint went down
// while the datagram was in flight). Duplicate reports whether the
// datagram was a duplicated copy.
type PacketEvent struct {
	// At is the offset from the network's construction.
	At time.Duration
	// From and To are the endpoint addresses.
	From, To netip.AddrPort
	// Frame is the datagram payload. The slice is only valid for the
	// duration of the observer call; copy it to keep it.
	Frame []byte
	// Verdict is the datagram's fate.
	Verdict Verdict
	// Duplicate marks an injected duplicate copy.
	Duplicate bool
	// Injected marks a datagram originated by a middlebox rather than
	// accepted from an endpoint — attack traffic, from the harness's
	// point of view.
	Injected bool
}

// Observer receives packet events. It is called synchronously from
// send and delivery paths (possibly from several goroutines) and must
// be cheap; the Network serialises calls with its own mutex.
type Observer func(ev PacketEvent)

// Counters aggregates datagram accounting.
type Counters struct {
	Sent       uint64 // accepted from an endpoint
	Delivered  uint64
	Lost       uint64
	Duplicated uint64 // extra copies injected by the fault plan
	Dropped    uint64 // down/unregistered endpoints
	Overflowed uint64 // full inboxes
	Injected   uint64 // datagrams originated by middleboxes
	Filtered   uint64 // datagrams dropped by middleboxes
}

// Network is an in-memory datagram network. All methods are safe for
// concurrent use.
type Network struct {
	faults Faults
	root   *rng.Rand
	epoch  time.Time

	// downCount mirrors len(down); the endpoint read paths check it
	// atomically so the benign hot path pays no lock while nothing is
	// partitioned.
	downCount atomic.Int32

	mu       sync.Mutex
	eps      map[netip.AddrPort]*Endpoint
	links    map[linkKey]*link
	down     map[netip.AddrPort]bool
	middle   []Middlebox
	nextPort uint16
	counters Counters
	observer Observer
	closed   bool
}

type linkKey struct {
	from, to netip.AddrPort
}

// link carries the per-link fault state: its own RNG stream and its
// own (possibly stateful) loss model.
type link struct {
	r    *rng.Rand
	loss simnet.LossModel
}

// memnetAddr is the synthetic address space endpoints are allocated
// from. The range is private (TEST-NET-2) so a stray real socket can
// never collide with it.
var memnetAddr = netip.AddrFrom4([4]byte{198, 51, 100, 1})

// New builds a network with the given fault plan.
func New(f Faults) *Network {
	if f.ReorderDelay == 0 {
		f.ReorderDelay = 2 * time.Millisecond
	}
	return &Network{
		faults:   f,
		root:     rng.New(f.Seed),
		epoch:    time.Now(),
		eps:      make(map[netip.AddrPort]*Endpoint),
		links:    make(map[linkKey]*link),
		down:     make(map[netip.AddrPort]bool),
		nextPort: 9000,
	}
}

// Observe installs the packet observer (nil removes it). Install it
// before traffic starts; events already in flight may slip past an
// observer installed late.
func (n *Network) Observe(obs Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observer = obs
}

// Counters returns a snapshot of the datagram accounting.
func (n *Network) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters
}

// Since returns the offset from the network's construction — the
// timebase of PacketEvent.At.
func (n *Network) Since() time.Duration { return time.Since(n.epoch) }

// Listen allocates a new endpoint with the next synthetic address.
// Addresses are assigned deterministically in call order.
func (n *Network) Listen() (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("memnet: network closed")
	}
	if n.nextPort == 0 {
		return nil, errors.New("memnet: address space exhausted")
	}
	addr := netip.AddrPortFrom(memnetAddr, n.nextPort)
	n.nextPort++
	e := &Endpoint{
		n:      n,
		addr:   addr,
		inbox:  make(chan datagram, inboxCap),
		closed: make(chan struct{}),
	}
	n.eps[addr] = e
	return e, nil
}

// SetDown partitions an endpoint address away (true) or heals it
// (false): while down, every datagram to or from the address is
// dropped, including datagrams already in flight and datagrams already
// queued in an inbox but not yet read — a silent crash, as opposed to
// Endpoint.Close, which also wakes blocked readers.
func (n *Network) SetDown(addr netip.AddrPort, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		if !n.down[addr] {
			n.down[addr] = true
			n.downCount.Add(1)
		}
	} else if n.down[addr] {
		delete(n.down, addr)
		n.downCount.Add(-1)
	}
}

// AddMiddlebox installs a middlebox at the tail of the chain. Installed
// mid-run it sees traffic from the next send onward; frames already in
// flight pass it by. Middleboxes cannot be removed — tear the network
// down instead.
func (n *Network) AddMiddlebox(m Middlebox) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.middle = append(n.middle, m)
}

// ForkRNG returns a deterministic sub-stream of the network's seed for
// auxiliary actors (middlebox adversaries), independent of every
// per-link fault stream: links fork under "link/", so any other label
// prefix is safe.
func (n *Network) ForkRNG(label string) *rng.Rand { return n.root.Fork(label) }

// Close tears the network down; subsequent sends are dropped silently.
// Endpoints are not closed (their owners close them).
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// framePool recycles datagram payload copies: a frame buffer is
// acquired at send, carried through the inbox (or an in-flight timer)
// and released once the receiver has copied it out or the datagram
// died. Without it every datagram costs an allocation, which at
// hundreds of thousands of packets per second turns the fake network
// into a GC benchmark. The pool holds *[]byte so neither Get nor Put
// boxes a slice header.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, frameCap)
	return &b
}}

// frameCap comfortably exceeds every protocol frame; an oversized
// payload grows its pooled buffer once and the buffer stays grown.
const frameCap = 2048

func acquireFrame(b []byte) *[]byte {
	p := framePool.Get().(*[]byte)
	if cap(*p) < len(b) {
		*p = make([]byte, 0, len(b))
	}
	*p = append((*p)[:0], b...)
	return p
}

func releaseFrame(p *[]byte) { framePool.Put(p) }

// linkFor returns (creating on first use) the fault state of a→b.
// Caller holds n.mu.
func (n *Network) linkFor(from, to netip.AddrPort) *link {
	key := linkKey{from, to}
	l, ok := n.links[key]
	if !ok {
		l = &link{r: n.root.Fork(fmt.Sprintf("link/%s/%s", from, to))}
		if n.faults.NewLoss != nil {
			l.loss = n.faults.NewLoss()
		}
		n.links[key] = l
	}
	return l
}

// emit reports one packet event. Caller holds n.mu.
func (n *Network) emit(from, to netip.AddrPort, frame []byte, v Verdict, dup, injected bool) {
	switch v {
	case Delivered:
		n.counters.Delivered++
	case Lost:
		n.counters.Lost++
	case DroppedDown:
		n.counters.Dropped++
	case Overflowed:
		n.counters.Overflowed++
	case Filtered:
		n.counters.Filtered++
	}
	if n.observer != nil {
		n.observer(PacketEvent{
			At: time.Since(n.epoch), From: from, To: to,
			Frame: frame, Verdict: v, Duplicate: dup, Injected: injected,
		})
	}
}

// send applies the link's fault plan to one datagram and schedules the
// surviving copies.
func (n *Network) send(from, to netip.AddrPort, b []byte) {
	n.mu.Lock()
	n.sendLocked(from, to, b)
	n.mu.Unlock()
}

// sendLocked is send under an already-held network mutex, so a batched
// write pays one lock acquisition for the whole burst. The middlebox
// chain runs first — at the sender's first hop, before the down check,
// so an on-path adversary observes even traffic addressed to a crashed
// endpoint — then the link fault plan. Instant deliveries complete
// inline; delayed copies ride time.AfterFunc.
func (n *Network) sendLocked(from, to netip.AddrPort, b []byte) {
	if n.closed {
		return
	}
	n.counters.Sent++
	for _, mb := range n.middle {
		if mb.Process(time.Since(n.epoch), from, to, b, Injector{n}) == Drop {
			n.emit(from, to, b, Filtered, false, false)
			return
		}
	}
	n.forwardLocked(from, to, b, false)
}

// forwardLocked applies the down check and the link fault plan to one
// datagram — the tail of sendLocked, shared with middlebox injection.
// Caller holds n.mu.
func (n *Network) forwardLocked(from, to netip.AddrPort, b []byte, injected bool) {
	if n.down[from] || n.down[to] {
		n.emit(from, to, b, DroppedDown, false, injected)
		return
	}
	l := n.linkFor(from, to)
	if l.loss != nil && l.loss.Lose(l.r) {
		n.emit(from, to, b, Lost, false, injected)
		return
	}
	delay := n.drawDelay(l)
	dup := n.faults.DuplicateP > 0 && l.r.Bool(n.faults.DuplicateP)
	n.transmitLocked(datagram{from: from, to: to, frame: acquireFrame(b), injected: injected}, delay)
	if dup {
		n.counters.Duplicated++
		n.transmitLocked(datagram{from: from, to: to, frame: acquireFrame(b), duplicate: true, injected: injected}, n.drawDelay(l))
	}
}

// drawDelay draws one transit time, including a possible reorder hold.
// Caller holds n.mu.
func (n *Network) drawDelay(l *link) time.Duration {
	var d time.Duration
	if n.faults.Delay != nil {
		d = n.faults.Delay.Delay(l.r)
		if d < 0 {
			d = 0
		}
	}
	if n.faults.ReorderP > 0 && l.r.Bool(n.faults.ReorderP) {
		d += n.faults.ReorderDelay
	}
	return d
}

// transmitLocked puts one copy in flight, delivering inline when there
// is no delay to wait out. Caller holds n.mu.
func (n *Network) transmitLocked(d datagram, delay time.Duration) {
	if delay <= 0 {
		n.deliverLocked(d)
		return
	}
	time.AfterFunc(delay, func() {
		n.mu.Lock()
		n.deliverLocked(d)
		n.mu.Unlock()
	})
}

// deliverLocked completes one delivery attempt; the frame buffer is
// recycled unless it made it into an inbox (the reader releases it).
// Caller holds n.mu.
func (n *Network) deliverLocked(d datagram) {
	if n.closed {
		releaseFrame(d.frame)
		return
	}
	if n.down[d.from] || n.down[d.to] {
		n.emit(d.from, d.to, *d.frame, DroppedDown, d.duplicate, d.injected)
		releaseFrame(d.frame)
		return
	}
	e, ok := n.eps[d.to]
	if !ok {
		n.emit(d.from, d.to, *d.frame, DroppedDown, d.duplicate, d.injected)
		releaseFrame(d.frame)
		return
	}
	select {
	case e.inbox <- d:
		n.emit(d.from, d.to, *d.frame, Delivered, d.duplicate, d.injected)
	default:
		n.emit(d.from, d.to, *d.frame, Overflowed, d.duplicate, d.injected)
		releaseFrame(d.frame)
	}
}

// datagram is one in-flight packet copy. frame points at a pooled
// buffer owned by the datagram until the receiver copies it out.
type datagram struct {
	from, to  netip.AddrPort
	frame     *[]byte
	duplicate bool
	injected  bool
}

// inboxCap bounds each endpoint's receive queue, standing in for the
// kernel socket buffer.
const inboxCap = 4096

// Endpoint is one attachment point: memnet's stand-in for a bound UDP
// socket. It satisfies internal/fleet's PacketConn contract. Reads are
// intended for a single goroutine (the shard event loop); writes may
// come from any goroutine.
type Endpoint struct {
	n    *Network
	addr netip.AddrPort

	inbox chan datagram

	mu       sync.Mutex
	deadline time.Time
	closed   chan struct{}
	once     sync.Once
}

var _ fleet.BatchPacketConn = (*Endpoint)(nil)

// LocalAddrPort returns the endpoint's address.
func (e *Endpoint) LocalAddrPort() netip.AddrPort { return e.addr }

// SetReadDeadline bounds the next ReadFromUDPAddrPort. The zero time
// means no deadline.
func (e *Endpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.deadline = t
	e.mu.Unlock()
	return nil
}

// errClosed reports reads/writes on a closed endpoint.
var errClosed = errors.New("memnet: endpoint closed")

// timeoutError satisfies net.Error with Timeout() true, which is what
// the fleet shard loop checks to distinguish a read deadline from a
// dead socket.
type timeoutError struct{}

func (timeoutError) Error() string   { return "memnet: read deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ReadFromUDPAddrPort blocks for the next datagram, the deadline or
// Close, whichever comes first.
func (e *Endpoint) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	e.mu.Lock()
	deadline := e.deadline
	e.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			// Drain anything already queued before declaring a timeout,
			// mirroring a kernel socket with data ready.
			for {
				select {
				case d := <-e.inbox:
					if e.dropQueued(d) {
						continue
					}
					return d.read(b)
				default:
					return 0, netip.AddrPort{}, timeoutError{}
				}
			}
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		select {
		case d := <-e.inbox:
			if e.dropQueued(d) {
				continue
			}
			return d.read(b)
		case <-e.closed:
			return 0, netip.AddrPort{}, errClosed
		case <-timeout:
			return 0, netip.AddrPort{}, timeoutError{}
		}
	}
}

// dropQueued reports whether a queued datagram must be discarded at
// read time: SetDown partitions an address away *including* datagrams
// that already made it into an inbox before the partition — without
// this check a delivery scheduled (or enqueued) just before SetDown
// would still reach a downed endpoint's reader. The fast path is one
// atomic load while nothing is partitioned.
func (e *Endpoint) dropQueued(d datagram) bool {
	n := e.n
	if n.downCount.Load() == 0 {
		return false
	}
	n.mu.Lock()
	down := n.down[d.from] || n.down[d.to]
	if down {
		n.counters.Dropped++
	}
	n.mu.Unlock()
	if down {
		releaseFrame(d.frame)
	}
	return down
}

// read copies the datagram out to the caller and recycles its buffer.
func (d datagram) read(b []byte) (int, netip.AddrPort, error) {
	k := copy(b, *d.frame)
	releaseFrame(d.frame)
	return k, d.from, nil
}

// WriteToUDPAddrPort sends one datagram through the network's fault
// plan. It never blocks and, like UDP, never reports delivery failure.
func (e *Endpoint) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	select {
	case <-e.closed:
		return 0, errClosed
	default:
	}
	e.n.send(e.addr, addr, b)
	return len(b), nil
}

// ReadBatch implements internal/fleet's BatchPacketConn: it blocks for
// the first datagram exactly like ReadFromUDPAddrPort, then drains
// whatever else is already queued, up to len(dgs). Batched reads see
// the same per-link datagram sequences as single reads — the fault
// plan runs at send time — so the conformance harness drives the
// fleet's batch code path with the same determinism guarantees.
func (e *Endpoint) ReadBatch(dgs []fleet.Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	n, from, err := e.ReadFromUDPAddrPort(dgs[0].Buf)
	if err != nil {
		return 0, err
	}
	dgs[0].Buf = dgs[0].Buf[:n]
	dgs[0].Addr = from
	filled := 1
	for filled < len(dgs) {
		select {
		case d := <-e.inbox:
			if e.dropQueued(d) {
				continue
			}
			k, from, _ := d.read(dgs[filled].Buf)
			dgs[filled].Buf = dgs[filled].Buf[:k]
			dgs[filled].Addr = from
			filled++
		default:
			return filled, nil
		}
	}
	return filled, nil
}

// WriteBatch implements internal/fleet's BatchPacketConn: the whole
// burst moves under one network-lock acquisition — memnet's analogue
// of one sendmmsg — with each datagram drawing from its link's fault
// stream in order, so a batched sender sees the same per-link fates as
// a single-datagram one.
func (e *Endpoint) WriteBatch(dgs []fleet.Datagram) (int, error) {
	select {
	case <-e.closed:
		return 0, errClosed
	default:
	}
	e.n.mu.Lock()
	for i := range dgs {
		e.n.sendLocked(e.addr, dgs[i].Addr, dgs[i].Buf)
	}
	e.n.mu.Unlock()
	return len(dgs), nil
}

// Close detaches the endpoint and wakes any blocked reader.
func (e *Endpoint) Close() error {
	e.once.Do(func() {
		close(e.closed)
		e.n.mu.Lock()
		delete(e.n.eps, e.addr)
		e.n.mu.Unlock()
	})
	return nil
}
