package memnet_test

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/simnet"
)

// verdictLog records packet fates in arrival order.
type verdictLog struct {
	mu  sync.Mutex
	seq []memnet.Verdict
}

func (l *verdictLog) observe(ev memnet.PacketEvent) {
	l.mu.Lock()
	l.seq = append(l.seq, ev.Verdict)
	l.mu.Unlock()
}

func (l *verdictLog) snapshot() []memnet.Verdict {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]memnet.Verdict, len(l.seq))
	copy(out, l.seq)
	return out
}

// TestFaultPatternDeterministic: for a fixed seed, the n-th datagram
// on a link always meets the same fate — the property the conformance
// harness's reproducibility rests on.
func TestFaultPatternDeterministic(t *testing.T) {
	run := func(seed uint64) []memnet.Verdict {
		n := memnet.New(memnet.Faults{
			Seed: seed,
			NewLoss: func() simnet.LossModel {
				return &simnet.GilbertElliott{GoodToBad: 0.2, BadToGood: 0.3, LossBad: 0.8, LossGood: 0.05}
			},
		})
		defer n.Close()
		log := &verdictLog{}
		n.Observe(log.observe)
		a, err := n.Listen()
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.Listen()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, err := a.WriteToUDPAddrPort([]byte{byte(i)}, b.LocalAddrPort()); err != nil {
				t.Fatal(err)
			}
		}
		return log.snapshot()
	}
	first, second := run(7), run(7)
	if len(first) != 200 || len(second) != 200 {
		t.Fatalf("event counts = %d, %d; want 200 each", len(first), len(second))
	}
	var lost int
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("datagram %d fate differs across runs: %v vs %v", i, first[i], second[i])
		}
		if first[i] == memnet.Lost {
			lost++
		}
	}
	if lost == 0 || lost == 200 {
		t.Fatalf("Gilbert-Elliott channel lost %d/200 — loss model not exercised", lost)
	}
	other := run(8)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 produced identical fault patterns")
	}
}

func TestDeliveryAndAddressing(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	a, _ := n.Listen()
	b, _ := n.Listen()
	if a.LocalAddrPort() == b.LocalAddrPort() {
		t.Fatalf("endpoints share address %v", a.LocalAddrPort())
	}
	if _, err := a.WriteToUDPAddrPort([]byte("hello"), b.LocalAddrPort()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(time.Second))
	got, from, err := b.ReadFromUDPAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "hello" || from != a.LocalAddrPort() {
		t.Fatalf("read %q from %v", buf[:got], from)
	}
	c := n.Counters()
	if c.Sent != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestListenGroupDemux pins the deterministic SO_REUSEPORT emulation:
// group members share one address, a given source always lands on the
// same member (flow affinity), distinct sources spread over members,
// and closing a member shrinks the group (remaining traffic rehashes
// onto the survivors) rather than blackholing its share.
func TestListenGroupDemux(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	members, err := n.ListenGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	shared := members[0].LocalAddrPort()
	for i, m := range members {
		if m.LocalAddrPort() != shared {
			t.Fatalf("member %d address %v, want shared %v", i, m.LocalAddrPort(), shared)
		}
	}

	const senders = 16
	srcs := make([]*memnet.Endpoint, senders)
	for i := range srcs {
		if srcs[i], err = n.Listen(); err != nil {
			t.Fatal(err)
		}
	}
	recvMember := func() map[netip.AddrPort]int {
		got := make(map[netip.AddrPort]int) // source → member index
		for i, m := range members {
			buf := make([]byte, 16)
			for {
				m.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
				_, from, err := m.ReadFromUDPAddrPort(buf)
				if err != nil {
					break // deadline: member drained
				}
				if prev, ok := got[from]; ok && prev != i {
					t.Fatalf("source %v delivered to members %d and %d", from, prev, i)
				}
				got[from] = i
			}
		}
		return got
	}

	for round := 0; round < 2; round++ {
		for _, s := range srcs {
			if _, err := s.WriteToUDPAddrPort([]byte("ping"), shared); err != nil {
				t.Fatal(err)
			}
		}
	}
	first := recvMember()
	if len(first) != senders {
		t.Fatalf("%d sources delivered, want %d", len(first), senders)
	}
	hit := make(map[int]bool)
	for _, m := range first {
		hit[m] = true
	}
	if len(hit) < 2 {
		t.Fatalf("all %d sources hashed to one member; demux does not spread", senders)
	}

	// Same sources again: affinity must be stable across sends.
	for _, s := range srcs {
		if _, err := s.WriteToUDPAddrPort([]byte("again"), shared); err != nil {
			t.Fatal(err)
		}
	}
	second := recvMember()
	for src, m := range second {
		if first[src] != m {
			t.Fatalf("source %v moved from member %d to %d without membership change", src, first[src], m)
		}
	}

	// Closing a member rehashes its flows onto the survivors.
	members[0].Close()
	for _, s := range srcs {
		if _, err := s.WriteToUDPAddrPort([]byte("rehash"), shared); err != nil {
			t.Fatal(err)
		}
	}
	live := 0
	for _, m := range members[1:] {
		buf := make([]byte, 16)
		for {
			m.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			if _, _, err := m.ReadFromUDPAddrPort(buf); err != nil {
				break
			}
			live++
		}
	}
	if live != senders {
		t.Fatalf("%d of %d datagrams survived a member close", live, senders)
	}
}

// TestConcurrentFastPathCounters hammers the observer-free fast path
// (shared read-lock, sharded links, atomic counters) from many sender
// goroutines at once: every accepted datagram must be accounted for
// exactly once. With -race this doubles as the contention audit for
// the lock split.
func TestConcurrentFastPathCounters(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	const senders, perSender = 8, 200
	sink, err := n.Listen()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		src, err := n.Listen()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				src.WriteToUDPAddrPort([]byte{byte(j)}, sink.LocalAddrPort()) //nolint:errcheck
			}
		}()
	}
	// Drain concurrently so the bounded inbox never overflows.
	got := 0
	buf := make([]byte, 16)
	deadline := time.Now().Add(10 * time.Second)
	for got < senders*perSender && time.Now().Before(deadline) {
		sink.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, _, err := sink.ReadFromUDPAddrPort(buf); err == nil {
			got++
		}
	}
	wg.Wait()
	if got != senders*perSender {
		t.Fatalf("read %d datagrams, want %d", got, senders*perSender)
	}
	c := n.Counters()
	if want := uint64(senders * perSender); c.Sent != want || c.Delivered != want {
		t.Fatalf("counters sent=%d delivered=%d, want %d each", c.Sent, c.Delivered, want)
	}
	if c.Lost+c.Dropped+c.Overflowed+c.Duplicated != 0 {
		t.Fatalf("fault-free network recorded faults: %+v", c)
	}
}

func TestReadDeadlineIsNetTimeout(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	e, _ := n.Listen()
	e.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, _, err := e.ReadFromUDPAddrPort(make([]byte, 16))
	var nerr net.Error
	if !errorsAs(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline error = %v, want net.Error with Timeout()", err)
	}
	// A queued datagram beats an already-expired deadline, like a kernel
	// socket with data ready.
	f, _ := n.Listen()
	f.WriteToUDPAddrPort([]byte("x"), e.LocalAddrPort())
	waitFor(t, time.Second, "queued datagram", func() bool { return n.Counters().Delivered == 1 })
	e.SetReadDeadline(time.Now().Add(-time.Second))
	if _, _, err := e.ReadFromUDPAddrPort(make([]byte, 16)); err != nil {
		t.Fatalf("read with queued data = %v", err)
	}
}

func TestCloseWakesReader(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	e, _ := n.Listen()
	done := make(chan error, 1)
	go func() {
		_, _, err := e.ReadFromUDPAddrPort(make([]byte, 16))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	e.Close()
	select {
	case err := <-done:
		var nerr net.Error
		if err == nil || (errorsAs(err, &nerr) && nerr.Timeout()) {
			t.Fatalf("close error = %v, want non-timeout error", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader not woken by Close")
	}
}

func TestSetDownPartitions(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	a, _ := n.Listen()
	b, _ := n.Listen()
	n.SetDown(b.LocalAddrPort(), true)
	a.WriteToUDPAddrPort([]byte("x"), b.LocalAddrPort())
	if c := n.Counters(); c.Dropped != 1 || c.Delivered != 0 {
		t.Fatalf("counters with dst down = %+v", c)
	}
	n.SetDown(b.LocalAddrPort(), false)
	a.WriteToUDPAddrPort([]byte("y"), b.LocalAddrPort())
	waitFor(t, time.Second, "healed delivery", func() bool { return n.Counters().Delivered == 1 })
}

func TestDuplicationAndReordering(t *testing.T) {
	n := memnet.New(memnet.Faults{Seed: 3, DuplicateP: 1})
	defer n.Close()
	a, _ := n.Listen()
	b, _ := n.Listen()
	a.WriteToUDPAddrPort([]byte("x"), b.LocalAddrPort())
	waitFor(t, time.Second, "duplicate copies", func() bool { return n.Counters().Delivered == 2 })

	// Reordering: held-back datagrams are overtaken by later traffic.
	n2 := memnet.New(memnet.Faults{Seed: 5, ReorderP: 0.5, ReorderDelay: 5 * time.Millisecond})
	defer n2.Close()
	var mu sync.Mutex
	var order []byte
	n2.Observe(func(ev memnet.PacketEvent) {
		if ev.Verdict == memnet.Delivered {
			mu.Lock()
			order = append(order, ev.Frame[0])
			mu.Unlock()
		}
	})
	c, _ := n2.Listen()
	d, _ := n2.Listen()
	const msgs = 100
	for i := 0; i < msgs; i++ {
		c.WriteToUDPAddrPort([]byte{byte(i)}, d.LocalAddrPort())
	}
	waitFor(t, 2*time.Second, "all deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == msgs
	})
	mu.Lock()
	defer mu.Unlock()
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("no reordering observed across 100 datagrams with ReorderP=0.5")
	}
}

// TestFleetOverMemnet runs the real fleet runtime — shard loops, timer
// wheels, demux — over the in-memory transport: a DCPP device fleet
// and a CP fleet complete probe cycles over a paper-modes network.
func TestFleetOverMemnet(t *testing.T) {
	n := memnet.New(memnet.Faults{Seed: 1, Delay: simnet.PaperModes()})
	defer n.Close()
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return n.Listen() })

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	devCfg := dcpp.DeviceConfig{MinGap: 5 * time.Millisecond, MinCPDelay: 20 * time.Millisecond}
	dev, err := devFleet.AddDevice(1, func(env core.Env) (core.Device, error) {
		return dcpp.NewDevice(1, env, devCfg)
	})
	if err != nil {
		t.Fatal(err)
	}

	cpFleet, err := fleet.New(fleet.Config{Shards: 2, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}
	cps := make([]*fleet.ControlPoint, 4)
	for i := range cps {
		policy, err := dcpp.NewPolicy(dcpp.PolicyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cps[i], err = cpFleet.AddControlPoint(fleet.CPConfig{
			ID: ident.NodeID(100 + i), Device: 1,
			DeviceAddrPort: dev.Addr(), Policy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "cycles over memnet", func() bool {
		for _, cp := range cps {
			if cp.Stats().CyclesOK < 3 {
				return false
			}
		}
		return true
	})

	// A partition of the device is a silent crash: every CP detects the
	// absence within the retransmit budget.
	n.SetDown(dev.Addr(), true)
	waitFor(t, 5*time.Second, "absence detection", func() bool {
		for _, cp := range cps {
			if !cp.Stopped() {
				return false
			}
		}
		return true
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func errorsAs(err error, target *net.Error) bool {
	return errors.As(err, target)
}
