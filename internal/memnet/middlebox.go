package memnet

import (
	"net/netip"
	"time"
)

// Action is a middlebox's decision about one datagram it processed.
type Action uint8

const (
	// Pass forwards the datagram unchanged into the link fault plan.
	Pass Action = iota
	// Drop discards the datagram (counted Filtered, observed with the
	// Filtered verdict).
	Drop
)

// Middlebox is a composable network element on the send path — the
// seam adversaries (internal/memnet's attacker implementations, or any
// test double) hook into. Every datagram accepted from an endpoint
// traverses the installed chain in install order, at the sender's
// first hop: before the destination's down check and before the link
// fault plan, so an on-path attacker observes even traffic addressed
// to a crashed endpoint, exactly like a tap next to the sender.
//
// Process may inspect the frame and return Pass or Drop, and may
// originate datagrams of its own through the Injector. It runs under
// the network mutex, possibly from several sender goroutines in turn:
// it must be cheap, must not block, and must not call back into the
// Network (use the Injector, which is safe under the held lock). The
// frame slice is only valid for the duration of the call; copy it to
// keep it.
//
// Determinism: a middlebox that draws randomness should use a stream
// forked off the network seed (Network.ForkRNG) so its decisions are a
// pure function of (seed, observed traffic), like every link fault.
type Middlebox interface {
	Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action
}

// Injector originates datagrams on behalf of a middlebox. Injected
// datagrams carry an arbitrary (possibly spoofed) source address, skip
// the middlebox chain — no feedback loops — and then ride the from→to
// link's fault plan like any endpoint send: they can be delayed, lost,
// duplicated, or dropped when either address is partitioned away. They
// are counted separately (Counters.Injected) and marked on the
// observer tap (PacketEvent.Injected).
//
// The zero Injector is invalid; use the one handed to Process.
type Injector struct {
	n *Network
}

// Inject sends one forged datagram. Call only from within
// Middlebox.Process (the network mutex is held there).
func (in Injector) Inject(from, to netip.AddrPort, frame []byte) {
	n := in.n
	if n == nil || n.closed {
		return
	}
	n.cnt.injected.Add(1)
	n.forwardLocked(from, to, frame, true)
}
