package memnet_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"presence/internal/memnet"
)

// dropAndForge is a test middlebox: it drops every frame addressed to
// its target and injects one forged frame per observed drop, spoofing
// the source address.
type dropAndForge struct {
	target netip.AddrPort
	spoof  netip.AddrPort
	seen   int // frames that traversed the chain (mutex-serialized by the network)
}

func (m *dropAndForge) Process(_ time.Duration, _, to netip.AddrPort, _ []byte, inj memnet.Injector) memnet.Action {
	m.seen++
	if to != m.target {
		return memnet.Pass
	}
	inj.Inject(m.spoof, m.target, []byte("forged"))
	return memnet.Drop
}

// TestMiddleboxInjectFilterObserve: a middlebox can drop traffic
// (counted Filtered) and originate spoofed traffic (counted Injected,
// flagged on the observer tap); injected frames skip the middlebox
// chain, so forging never feeds back into the attacker.
func TestMiddleboxInjectFilterObserve(t *testing.T) {
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	var mu sync.Mutex
	var events []memnet.PacketEvent
	n.Observe(func(ev memnet.PacketEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	a, _ := n.Listen()
	b, _ := n.Listen()
	spoofed, _ := n.Listen()
	mb := &dropAndForge{target: b.LocalAddrPort(), spoof: spoofed.LocalAddrPort()}
	n.AddMiddlebox(mb)

	if _, err := a.WriteToUDPAddrPort([]byte("honest"), b.LocalAddrPort()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	b.SetReadDeadline(time.Now().Add(time.Second))
	got, from, err := b.ReadFromUDPAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:got]) != "forged" || from != spoofed.LocalAddrPort() {
		t.Fatalf("received %q from %v, want the forged frame with the spoofed source", buf[:got], from)
	}
	if mb.seen != 1 {
		t.Fatalf("middlebox processed %d frames, want 1 — injected frames must skip the chain", mb.seen)
	}
	c := n.Counters()
	if c.Sent != 1 || c.Filtered != 1 || c.Injected != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawFiltered, sawInjected bool
	for _, ev := range events {
		switch ev.Verdict {
		case memnet.Filtered:
			sawFiltered = true
			if ev.Injected {
				t.Error("dropped honest frame flagged as injected")
			}
		case memnet.Delivered:
			sawInjected = ev.Injected
		}
	}
	if !sawFiltered || !sawInjected {
		t.Fatalf("tap missed verdicts: filtered=%v injected-delivery=%v (%d events)", sawFiltered, sawInjected, len(events))
	}
}

// TestSetDownDropsQueuedDeliveries pins the SetDown contract for
// datagrams already in flight when the partition hits: a copy sitting
// in the destination inbox is discarded at read time, and a copy on a
// delayed link is discarded at delivery time. Neither reaches the
// downed endpoint's reader.
func TestSetDownDropsQueuedDeliveries(t *testing.T) {
	// Inbox case: instant delivery enqueues the datagram before SetDown.
	n := memnet.New(memnet.Faults{})
	defer n.Close()
	a, _ := n.Listen()
	b, _ := n.Listen()
	a.WriteToUDPAddrPort([]byte("queued"), b.LocalAddrPort())
	waitFor(t, time.Second, "enqueue", func() bool { return n.Counters().Delivered == 1 })
	n.SetDown(b.LocalAddrPort(), true)
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFromUDPAddrPort(make([]byte, 16)); err == nil {
		t.Fatal("downed endpoint read a datagram enqueued before SetDown")
	}
	if c := n.Counters(); c.Dropped != 1 {
		t.Fatalf("counters after queued drop = %+v", c)
	}
	// Healing does not resurrect the discarded datagram, and fresh
	// traffic flows again.
	n.SetDown(b.LocalAddrPort(), false)
	a.WriteToUDPAddrPort([]byte("fresh"), b.LocalAddrPort())
	buf := make([]byte, 16)
	b.SetReadDeadline(time.Now().Add(time.Second))
	got, _, err := b.ReadFromUDPAddrPort(buf)
	if err != nil || string(buf[:got]) != "fresh" {
		t.Fatalf("read after heal = %q, %v", buf[:got], err)
	}

	// In-flight case: a delayed copy crosses SetDown mid-transit and is
	// dropped at delivery time.
	n2 := memnet.New(memnet.Faults{ReorderP: 1, ReorderDelay: 30 * time.Millisecond})
	defer n2.Close()
	var mu sync.Mutex
	var verdicts []memnet.Verdict
	n2.Observe(func(ev memnet.PacketEvent) {
		mu.Lock()
		verdicts = append(verdicts, ev.Verdict)
		mu.Unlock()
	})
	c2, _ := n2.Listen()
	d2, _ := n2.Listen()
	c2.WriteToUDPAddrPort([]byte("late"), d2.LocalAddrPort())
	n2.SetDown(d2.LocalAddrPort(), true)
	waitFor(t, time.Second, "delayed copy resolved", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(verdicts) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if verdicts[0] != memnet.DroppedDown {
		t.Fatalf("delayed delivery across SetDown = %v, want DroppedDown", verdicts[0])
	}
}
