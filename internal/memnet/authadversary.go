// Authentication adversaries: attacker middleboxes for the wire-v2
// robustness harness (internal/conformance's adv-auth-* scenarios).
// Where adversary.go's attackers forge frames from whole cloth, these
// four start from traffic they observed — the strongest position a
// keyless on-path attacker can hold against authenticated frames:
//
//   - Tamperer rewrites observed replies into BYEs, preserving the
//     observed version. Against v1 it recomputes the CRC (public
//     algorithm) and the forgery is perfect; against v2 it can only
//     reuse the observed, now-stale tag, which verification rejects.
//   - BitFlipper injects copies of observed frames with random bits
//     flipped — line noise and low-effort corruption. v1's CRC catches
//     every single-bit flip; v2 has no CRC, so the HMAC tag must catch
//     body and tag corruption alike.
//   - TagStripper re-encodes observed v2 frames as valid v1 frames
//     (tag removed, CRC computed) — the classic downgrade-in-transit.
//     Only the receiver's negotiation policy (the per-device v2
//     high-water mark, or Require) can refuse these.
//   - Downgrader answers probes on behalf of a dead device with
//     well-formed v1 replies spoofed from the device's own address:
//     right id, right cycle, right attempt, right source. Every PR-6
//     heuristic passes; only authentication tells it from the device.
//
// All four inject copies and pass the original traffic through, so
// they never manufacture packet loss: any false verdict in an attacked
// run is attributable to a forged frame being ACCEPTED, which is
// exactly the zero-tolerance property the harness gates.
//
// Randomness comes from streams forked off the network seed
// (Network.ForkRNG), so each attack replays bit for bit per seed.

package memnet

import (
	"net/netip"
	"sync/atomic"
	"time"

	"presence/internal/ident"
	"presence/internal/rng"
	"presence/internal/wire"
)

// Tamperer rewrites observed reply frames into BYE frames for the
// device and injects them source-spoofed as the device, preserving the
// observed wire version. A v1 rewrite carries a freshly computed CRC
// and is indistinguishable from a genuine BYE; a v2 rewrite carries
// the observed reply's tag, which does not cover the rewritten bytes —
// the receiver's verification must reject it (fleet
// Counters.AuthRejected) or the attacker has manufactured a graceful
// leave for a live device.
type Tamperer struct {
	// Device and DeviceAddr name the victim whose replies are rewritten.
	Device     ident.NodeID
	DeviceAddr netip.AddrPort
	// Window bounds the attack; P is the per-observed-reply tamper
	// probability, drawn from R.
	Window Window
	P      float64
	R      *rng.Rand

	injected atomic.Uint64
	scratch  wire.Frame
	buf      []byte
}

// Injected returns how many tampered BYEs the attacker sent.
func (a *Tamperer) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *Tamperer) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if from != a.DeviceAddr || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil {
		return Pass
	}
	switch a.scratch.Kind {
	case wire.KindReplySAPP, wire.KindReplyDCPP, wire.KindReplyEmpty:
	default:
		return Pass
	}
	if !a.R.Bool(a.P) {
		return Pass
	}
	bye := wire.Frame{
		Kind: wire.KindBye, From: a.Device,
		Version: a.scratch.Version, Tag: a.scratch.Tag,
	}
	out, err := wire.AppendEncodeFrame(a.buf[:0], &bye)
	if err != nil {
		return Pass
	}
	a.buf = out
	a.injected.Add(1)
	inj.Inject(a.DeviceAddr, to, out)
	return Pass
}

// BitFlipper injects, for observed frames on the device's link, copies
// with FlipBits random bits flipped — anywhere in the frame, header,
// payload or trailer. No flipped copy may ever be accepted: v1 frames
// die on the CRC, v2 frames must die on decode or on tag verification
// (a v2 body flip leaves a structurally valid frame that only the HMAC
// can refute).
type BitFlipper struct {
	DeviceAddr netip.AddrPort
	// Window bounds the attack; P is the per-observed-frame injection
	// probability, drawn from R. FlipBits is flips per copy (0 = 1).
	Window   Window
	P        float64
	FlipBits int
	R        *rng.Rand

	injected atomic.Uint64
	buf      []byte
}

// Injected returns how many corrupted copies the attacker sent.
func (a *BitFlipper) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *BitFlipper) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if (from != a.DeviceAddr && to != a.DeviceAddr) || !a.Window.contains(at) {
		return Pass
	}
	if len(frame) == 0 || !a.R.Bool(a.P) {
		return Pass
	}
	a.buf = append(a.buf[:0], frame...)
	flips := a.FlipBits
	if flips <= 0 {
		flips = 1
	}
	for i := 0; i < flips; i++ {
		bit := a.R.Intn(8 * len(a.buf))
		a.buf[bit/8] ^= 1 << (bit % 8)
	}
	a.injected.Add(1)
	inj.Inject(from, to, a.buf)
	return Pass
}

// TagStripper downgrades observed v2 frames in transit: each one is
// re-encoded as a valid v1 frame — tag removed, CRC computed — and
// injected alongside the original with the original's own source
// address. The stripped copy is a perfectly well-formed v1 frame with
// genuine content; nothing about the frame itself is wrong. Only the
// receiver's negotiation policy can refuse it: the per-device v2
// high-water mark (the sender has spoken v2, so v1 from it is a
// downgrade) or AuthConfig.Require. Every stripped frame a fleet
// receives must land in Counters.AuthDowngraded.
type TagStripper struct {
	DeviceAddr netip.AddrPort
	// Window bounds the attack; P is the per-observed-v2-frame strip
	// probability, drawn from R.
	Window Window
	P      float64
	R      *rng.Rand

	injected atomic.Uint64
	scratch  wire.Frame
	buf      []byte
}

// Injected returns how many stripped v1 copies the attacker sent.
func (a *TagStripper) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *TagStripper) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if (from != a.DeviceAddr && to != a.DeviceAddr) || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil || a.scratch.Version != wire.VersionAuth {
		return Pass
	}
	if !a.R.Bool(a.P) {
		return Pass
	}
	stripped := a.scratch
	stripped.Version = wire.Version
	out, err := wire.AppendEncodeFrame(a.buf[:0], &stripped)
	if err != nil {
		return Pass
	}
	a.buf = out
	a.injected.Add(1)
	inj.Inject(from, to, out)
	return Pass
}

// Downgrader answers for the dead in v1: inside its window (opened at
// the device's crash instant) it forges, for every probe it observes,
// an unauthenticated reply with the right device id, right cycle,
// right attempt AND the device's own source address. Source pinning,
// the attempt bitmask and the replay window all pass — this is the
// attack PR-6's heuristics cannot stop. An authenticated receiver
// rejects it on version alone once the device has spoken v2
// (Counters.AuthDowngraded) and detects the crash on schedule; an
// unauthenticated receiver, hardened or not, believes the device alive
// forever.
type Downgrader struct {
	// Device and DeviceAddr name the dead device being impersonated.
	Device     ident.NodeID
	DeviceAddr netip.AddrPort
	// Wait is the DCPP wait the forged replies dictate (0 = 600 ms).
	Wait   time.Duration
	Window Window

	injected atomic.Uint64
	scratch  wire.Frame
	buf      []byte
}

// Injected returns how many forged v1 replies the attacker sent.
func (a *Downgrader) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *Downgrader) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if to != a.DeviceAddr || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil || a.scratch.Kind != wire.KindProbe {
		return Pass
	}
	wait := a.Wait
	if wait == 0 {
		wait = 600 * time.Millisecond
	}
	f := wire.Frame{
		Kind: wire.KindReplyDCPP, From: a.Device,
		Cycle: a.scratch.Cycle, Attempt: a.scratch.Attempt, Wait: wait,
	}
	out, err := wire.AppendEncodeFrame(a.buf[:0], &f)
	if err != nil {
		return Pass
	}
	a.buf = out
	a.injected.Add(1)
	inj.Inject(a.DeviceAddr, from, out)
	return Pass
}
