// Adversaries: deterministic attacker middleboxes for the robustness
// harness (internal/conformance's adv-* scenarios). Each one observes
// live traffic through the Middlebox seam, decodes it with the
// production wire codec, and forges frames with the same codec — an
// on-path attacker without the crypto to invent valid traffic from
// nothing, which is exactly the threat model the DSN'05 protocols face
// on an open LAN: no frame is authenticated, so anyone who can see a
// probe can answer it, and anyone who knows a device id can say
// goodbye on its behalf.
//
// All randomness comes from streams forked off the network seed
// (Network.ForkRNG), so for a fixed seed an attacker's behaviour is a
// pure function of the traffic it observes.

package memnet

import (
	"net/netip"
	"sync/atomic"
	"time"

	"presence/internal/ident"
	"presence/internal/rng"
	"presence/internal/wire"
)

// Window bounds when an attacker acts: active at offsets in
// [From, Until), with Until <= 0 meaning forever.
type Window struct {
	From, Until time.Duration
}

func (w Window) contains(at time.Duration) bool {
	return at >= w.From && (w.Until <= 0 || at < w.Until)
}

// ByeSpoofer forges graceful-leave announcements for a live device:
// whenever it observes a probe addressed to the device inside its
// window, it injects — with probability P per probe — a BYE frame
// naming the device, source-spoofed as the device's own address, back
// at the prober. Against an unhardened runtime one such frame removes
// every control point hosted on the receiving socket; a hardened
// runtime (fleet Config.Harden) answers with a verification probe
// instead and keeps the device PRESENT when it still replies.
type ByeSpoofer struct {
	// Device and DeviceAddr name the victim device (frame From field
	// and spoofed source address).
	Device     ident.NodeID
	DeviceAddr netip.AddrPort
	// Window bounds the attack; P is the per-observed-probe injection
	// probability, drawn from R.
	Window Window
	P      float64
	R      *rng.Rand

	injected atomic.Uint64
	scratch  wire.Frame
	bye      []byte
}

// Injected returns how many spoofed BYEs the attacker sent.
func (a *ByeSpoofer) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *ByeSpoofer) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if to != a.DeviceAddr || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil || a.scratch.Kind != wire.KindProbe {
		return Pass
	}
	if !a.R.Bool(a.P) {
		return Pass
	}
	if a.bye == nil {
		a.bye, _ = wire.AppendEncodeFrame(nil, &wire.Frame{Kind: wire.KindBye, From: a.Device})
	}
	a.injected.Add(1)
	inj.Inject(a.DeviceAddr, from, a.bye)
	return Pass
}

// Replayer captures reply frames leaving the device and replays them —
// verbatim, source-spoofed as the device — into later probe cycles of
// the same receiver. The monotonic (device, cycle) demultiplexing
// already makes a stale cycle number miss the pending table; hardening
// adds the replay window that tells such frames apart from ordinary
// latecomers (fleet Counters.RepliesReplayed vs DemuxDrops).
type Replayer struct {
	DeviceAddr netip.AddrPort
	// Window bounds the replaying (capturing is always on); P is the
	// per-observed-probe replay probability, drawn from R.
	Window Window
	P      float64
	R      *rng.Rand
	// Cap bounds the capture buffer (0 = 64): a ring of the most
	// recent replies.
	Cap int

	injected atomic.Uint64
	scratch  wire.Frame
	captured []capturedReply
	next     int
}

type capturedReply struct {
	frame []byte
	to    netip.AddrPort
}

// Injected returns how many captured replies the attacker replayed.
func (a *Replayer) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *Replayer) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if wire.DecodeFrame(frame, &a.scratch) != nil {
		return Pass
	}
	switch a.scratch.Kind {
	case wire.KindReplySAPP, wire.KindReplyDCPP, wire.KindReplyEmpty:
		if from != a.DeviceAddr {
			return Pass
		}
		cap := a.Cap
		if cap <= 0 {
			cap = 64
		}
		rec := capturedReply{frame: append([]byte(nil), frame...), to: to}
		if len(a.captured) < cap {
			a.captured = append(a.captured, rec)
		} else {
			a.captured[a.next] = rec
			a.next = (a.next + 1) % cap
		}
	case wire.KindProbe:
		if to != a.DeviceAddr || !a.Window.contains(at) || len(a.captured) == 0 {
			return Pass
		}
		if !a.R.Bool(a.P) {
			return Pass
		}
		rec := a.captured[a.R.Intn(len(a.captured))]
		a.injected.Add(1)
		inj.Inject(a.DeviceAddr, rec.to, rec.frame)
	}
	return Pass
}

// Byzantine answers for the dead: inside its window (typically opened
// at the device's crash instant) it forges a well-formed reply — right
// device id, right cycle, right attempt — to every probe it observes,
// from its own address, since the crashed device's address is
// unreachable. An unhardened runtime accepts the reply (the pending
// table matches) and believes the device alive forever; a hardened one
// rejects the non-device source address (fleet Counters.RepliesForged)
// and detects the crash on schedule.
type Byzantine struct {
	// Device and DeviceAddr name the dead device being impersonated.
	Device     ident.NodeID
	DeviceAddr netip.AddrPort
	// Source is the attacker's own address (any address the network
	// has not partitioned away; it need not be a live endpoint).
	Source netip.AddrPort
	// Wait is the DCPP wait the forged replies dictate (0 = 600 ms).
	Wait   time.Duration
	Window Window

	injected atomic.Uint64
	scratch  wire.Frame
	buf      []byte
}

// Injected returns how many forged replies the attacker sent.
func (a *Byzantine) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *Byzantine) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if to != a.DeviceAddr || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil || a.scratch.Kind != wire.KindProbe {
		return Pass
	}
	wait := a.Wait
	if wait == 0 {
		wait = 600 * time.Millisecond
	}
	f := wire.Frame{
		Kind: wire.KindReplyDCPP, From: a.Device,
		Cycle: a.scratch.Cycle, Attempt: a.scratch.Attempt, Wait: wait,
	}
	a.buf, _ = wire.AppendEncodeFrame(a.buf[:0], &f)
	a.injected.Add(1)
	inj.Inject(a.Source, from, a.buf)
	return Pass
}

// Amplifier turns the device into a reflector aimed at a victim: for
// every honest probe it observes inside its window it injects Factor
// forged probes whose source address is the victim's, each with a
// fresh cycle number, so the device's replies flood the victim. An
// unhardened device answers every one (amplification factor ≈ 1 reply
// per injected probe); a hardened one sheds the per-source flood
// (fleet Counters.ProbesShed) and the reflection collapses to the
// token-bucket rate.
type Amplifier struct {
	DeviceAddr netip.AddrPort
	// VictimID is the node id the forged probes claim to be from — an
	// id of the attacker's choosing, distinct from real control points.
	// VictimAddr is the address being flooded with reflected replies.
	VictimID   ident.NodeID
	VictimAddr netip.AddrPort
	// Factor is the number of forged probes injected per observed
	// honest probe (0 = 8).
	Factor int
	Window Window

	injected atomic.Uint64
	scratch  wire.Frame
	cycle    uint32
	buf      []byte
}

// Injected returns how many forged probes the attacker sent.
func (a *Amplifier) Injected() uint64 { return a.injected.Load() }

// Process implements Middlebox.
func (a *Amplifier) Process(at time.Duration, from, to netip.AddrPort, frame []byte, inj Injector) Action {
	if to != a.DeviceAddr || from == a.VictimAddr || !a.Window.contains(at) {
		return Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) != nil || a.scratch.Kind != wire.KindProbe {
		return Pass
	}
	factor := a.Factor
	if factor <= 0 {
		factor = 8
	}
	for i := 0; i < factor; i++ {
		a.cycle++
		f := wire.Frame{Kind: wire.KindProbe, From: a.VictimID, Cycle: a.cycle}
		a.buf, _ = wire.AppendEncodeFrame(a.buf[:0], &f)
		a.injected.Add(1)
		inj.Inject(a.VictimAddr, a.DeviceAddr, a.buf)
	}
	return Pass
}
