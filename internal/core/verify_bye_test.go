package core

import (
	"testing"
	"time"

	"presence/internal/ident"
)

func newVerifyingProber(t *testing.T, env *fakeEnv, lst Listener) *Prober {
	t.Helper()
	p, err := NewProber(ProberOptions{
		ID:        7,
		Device:    1,
		Env:       env,
		Policy:    &fixedPolicy{delay: time.Second},
		Listener:  lst,
		VerifyBye: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVerifyByeRefutedByReply: a BYE arriving while a probe is in
// flight turns the in-flight cycle into a verification; the device's
// reply refutes the BYE and monitoring continues uninterrupted.
func TestVerifyByeRefutedByReply(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newVerifyingProber(t, env, lst)
	p.Start()
	env.now = 5 * time.Millisecond
	p.OnBye(ByeMsg{From: 1})
	if p.Stopped() {
		t.Fatal("verifying prober stopped on the BYE alone")
	}
	if len(lst.byes) != 0 {
		t.Fatalf("bye events before verification = %v", lst.byes)
	}
	if st := p.Stats(); st.ByeVerifications != 1 {
		t.Fatalf("stats after BYE = %+v", st)
	}
	// No extra probe: the in-flight cycle doubles as the verification.
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages, want only the original probe", len(env.sent))
	}
	env.now = 10 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if st := p.Stats(); st.SpoofedByes != 1 || st.CyclesOK != 1 {
		t.Fatalf("stats after refutation = %+v", st)
	}
	if len(lst.alive) != 1 || len(lst.byes) != 0 || len(lst.lost) != 0 {
		t.Fatalf("events = alive:%d lost:%d byes:%d", len(lst.alive), len(lst.lost), len(lst.byes))
	}
	if !env.alarmSet {
		t.Fatal("no next-cycle alarm after a refuted BYE")
	}
}

// TestVerifyByeWhileWaiting: a BYE arriving between cycles triggers an
// immediate verification probe instead of waiting out the policy delay.
func TestVerifyByeWhileWaiting(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newVerifyingProber(t, env, lst)
	p.Start()
	env.now = 10 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	env.now = 20 * time.Millisecond
	p.OnBye(ByeMsg{From: 1})
	probe := env.lastProbe(t)
	if probe.Cycle != 2 || probe.Attempt != 0 {
		t.Fatalf("verification probe = %+v, want an immediate cycle 2", probe)
	}
	if !env.alarmSet || env.alarmAt != 20*time.Millisecond+DefaultFirstTimeout {
		t.Fatalf("verification alarm at %v (set=%v), want TOF from the BYE", env.alarmAt, env.alarmSet)
	}
	// A second BYE during verification is absorbed: counted, no new probe.
	p.OnBye(ByeMsg{From: 1})
	if len(env.sent) != 2 {
		t.Fatalf("sent %d messages, want 2 — duplicate BYE must not re-probe", len(env.sent))
	}
	if st := p.Stats(); st.ByeVerifications != 2 {
		t.Fatalf("stats = %+v", st)
	}
	env.now = 25 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 2, Attempt: 0, Payload: EmptyReply{}})
	if st := p.Stats(); st.SpoofedByes != 1 || st.CyclesOK != 2 {
		t.Fatalf("stats after refutation = %+v", st)
	}
	if len(lst.byes) != 0 || p.Stopped() {
		t.Fatal("refuted BYE stopped the prober")
	}
}

// TestVerifyByeConfirmedBySilence: when the verification cycle runs out
// of retransmits, the verdict is DeviceBye — the BYE was genuine — and
// never DeviceLost.
func TestVerifyByeConfirmedBySilence(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newVerifyingProber(t, env, lst)
	p.Start()
	env.now = 5 * time.Millisecond
	p.OnBye(ByeMsg{From: 1})
	for i := 0; i < 4; i++ { // TOF + 3 retransmission timeouts
		env.fireAlarm(t, p.OnAlarm)
	}
	if len(lst.byes) != 1 || len(lst.lost) != 0 {
		t.Fatalf("events = lost:%v byes:%v, want the bye verdict", lst.lost, lst.byes)
	}
	if !p.Stopped() || env.alarmSet {
		t.Fatal("prober must stop cleanly after a confirmed BYE")
	}
	if st := p.Stats(); st.ByeVerifications != 1 || st.SpoofedByes != 0 || st.CyclesFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestVerifyByeStateResetOnRestart: Stop during a verification clears
// the verifying flag, so a later run never misclassifies its first
// reply as a spoofed-BYE refutation.
func TestVerifyByeStateResetOnRestart(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newVerifyingProber(t, env, lst)
	p.Start()
	p.OnBye(ByeMsg{From: 1})
	p.Stop()
	if !p.Stopped() {
		t.Fatal("Stop during verification did not stop the prober")
	}
	p.Start()
	probe := env.lastProbe(t)
	env.now = 5 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: probe.Cycle, Attempt: 0, Payload: EmptyReply{}})
	if st := p.Stats(); st.SpoofedByes != 0 {
		t.Fatalf("reply after restart counted as refutation: %+v", st)
	}
	if len(lst.alive) != 1 {
		t.Fatalf("alive events = %d, want 1", len(lst.alive))
	}
}

// TestVerifyByeIgnoresOtherDevices: with verification on, a BYE naming
// a different device still does nothing.
func TestVerifyByeIgnoresOtherDevices(t *testing.T) {
	env := &fakeEnv{}
	p := newVerifyingProber(t, env, nil)
	p.Start()
	p.OnBye(ByeMsg{From: ident.NodeID(99)})
	if st := p.Stats(); st.ByeVerifications != 0 {
		t.Fatalf("unrelated BYE counted: %+v", st)
	}
	if p.Stopped() {
		t.Fatal("unrelated BYE stopped the prober")
	}
}
