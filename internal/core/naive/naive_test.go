package naive

import (
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

type fakeEnv struct {
	now  time.Duration
	sent []core.Message
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Send(_ ident.NodeID, m core.Message) {
	// Flatten pooled pointer forms so assertions keep value semantics.
	e.sent = append(e.sent, core.Flatten(m))
	core.Recycle(m)
}
func (e *fakeEnv) SetAlarm(time.Duration) {}
func (e *fakeEnv) StopAlarm()             {}

func TestPolicyFixedPeriod(t *testing.T) {
	p, err := NewPolicy(250 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := p.NextDelay(core.CycleResult{Payload: core.EmptyReply{}}); got != 250*time.Millisecond {
			t.Fatalf("delay = %v, want fixed period", got)
		}
	}
	if p.Period() != 250*time.Millisecond {
		t.Fatalf("Period() = %v", p.Period())
	}
}

func TestPolicyDefaults(t *testing.T) {
	p, err := NewPolicy(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Period() != DefaultPeriod {
		t.Fatalf("Period() = %v, want default", p.Period())
	}
	if _, err := NewPolicy(-time.Second); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestDeviceReplies(t *testing.T) {
	env := &fakeEnv{}
	d, err := NewDevice(1, env)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 9, Attempt: 2})
	d.OnAlarm() // must be harmless
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(env.sent))
	}
	rep := env.sent[0].(core.ReplyMsg)
	if rep.Cycle != 9 || rep.Attempt != 2 {
		t.Fatalf("reply = %+v", rep)
	}
	if _, ok := rep.Payload.(core.EmptyReply); !ok {
		t.Fatalf("payload = %T, want EmptyReply", rep.Payload)
	}
	if d.ProbesTotal() != 1 {
		t.Fatalf("ProbesTotal = %d", d.ProbesTotal())
	}
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(ident.None, &fakeEnv{}); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewDevice(1, nil); err == nil {
		t.Error("nil env accepted")
	}
}
