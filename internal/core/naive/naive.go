// Package naive implements the strawman the paper's introduction
// dismisses: "the simplest scheme one could consider is to regularly
// probe a device ... this scheme, however, easily leads to over- or
// underloading of devices."
//
// The CP probes at a fixed period regardless of device load; the device
// answers with an empty payload. The extension experiments use it as the
// baseline against which SAPP's adaptivity and DCPP's scheduling are
// compared: with k CPs the device load is k/period, unbounded in k.
package naive

import (
	"fmt"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// DefaultPeriod is one probe per second per CP, a typical "ping once a
// second" choice.
const DefaultPeriod = time.Second

// Policy is the fixed-period delay policy.
type Policy struct {
	period time.Duration
}

var _ core.DelayPolicy = (*Policy)(nil)

// NewPolicy returns a fixed-period policy. Zero means DefaultPeriod.
func NewPolicy(period time.Duration) (*Policy, error) {
	if period < 0 {
		return nil, fmt.Errorf("naive: period %v must be non-negative", period)
	}
	if period == 0 {
		period = DefaultPeriod
	}
	return &Policy{period: period}, nil
}

// Period returns the fixed inter-cycle delay.
func (p *Policy) Period() time.Duration { return p.period }

// NextDelay implements core.DelayPolicy.
func (p *Policy) NextDelay(core.CycleResult) time.Duration { return p.period }

// Device answers probes with an empty payload and counts them.
type Device struct {
	id          ident.NodeID
	env         core.Env
	probesTotal uint64
}

var _ core.Device = (*Device)(nil)

// NewDevice returns a naive device engine.
func NewDevice(id ident.NodeID, env core.Env) (*Device, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("naive: invalid device id")
	}
	if env == nil {
		return nil, fmt.Errorf("naive: nil env")
	}
	return &Device{id: id, env: env}, nil
}

// ID returns the device's node id.
func (d *Device) ID() ident.NodeID { return d.id }

// ProbesTotal returns the number of probes answered.
func (d *Device) ProbesTotal() uint64 { return d.probesTotal }

// Start implements core.Device; the naive device needs no maintenance.
func (d *Device) Start() {}

// OnProbe answers immediately with an empty payload.
func (d *Device) OnProbe(from ident.NodeID, m core.ProbeMsg) {
	d.probesTotal++
	// EmptyReply is zero-sized, so boxing it is allocation-free; only the
	// envelope needs pooling.
	d.env.Send(from, core.AcquireReply(d.id, m.Cycle, m.Attempt, core.EmptyReply{}))
}

// OnAlarm implements core.Device; never armed.
func (d *Device) OnAlarm() {}
