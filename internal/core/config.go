package core

import (
	"errors"
	"fmt"
	"time"
)

// Paper defaults for the bounded-retransmission probe cycle: "In all
// simulation studies in this paper TOF equals 0.022 (i.e., two times the
// round-trip delay of the considered network + the maximal computation
// time of the device), and TOS equals 0.021 (1 times round-trip delay +
// maximal computation time of the device)." Probes are retransmitted
// maximally three times.
const (
	DefaultFirstTimeout   = 22 * time.Millisecond
	DefaultRetryTimeout   = 21 * time.Millisecond
	DefaultMaxRetransmits = 3
)

// RetransmitConfig parameterises the probe cycle of Fig. 1.
type RetransmitConfig struct {
	// FirstTimeout (TOF) is the wait after the first probe of a cycle.
	FirstTimeout time.Duration
	// RetryTimeout (TOS) is the wait after each retransmission.
	// Typically TOS < TOF: once the first probe goes unanswered, absence
	// is already likely, so the remaining probes are sent in quicker
	// succession to shorten detection time.
	RetryTimeout time.Duration
	// MaxRetransmits is the number of retransmissions after the first
	// probe. With the paper's value 3, a cycle sends at most 4 probes.
	MaxRetransmits int
}

// DefaultRetransmit returns the paper's probe-cycle parameters.
func DefaultRetransmit() RetransmitConfig {
	return RetransmitConfig{
		FirstTimeout:   DefaultFirstTimeout,
		RetryTimeout:   DefaultRetryTimeout,
		MaxRetransmits: DefaultMaxRetransmits,
	}
}

// Validate checks the configuration.
func (c RetransmitConfig) Validate() error {
	if c.FirstTimeout <= 0 {
		return fmt.Errorf("core: FirstTimeout %v must be positive", c.FirstTimeout)
	}
	if c.RetryTimeout <= 0 {
		return fmt.Errorf("core: RetryTimeout %v must be positive", c.RetryTimeout)
	}
	if c.MaxRetransmits < 0 {
		return fmt.Errorf("core: MaxRetransmits %d must be non-negative", c.MaxRetransmits)
	}
	return nil
}

// WorstCaseDetection returns the longest interval between the start of a
// probe cycle and the declaration of absence: TOF + MaxRetransmits·TOS.
func (c RetransmitConfig) WorstCaseDetection() time.Duration {
	return c.FirstTimeout + time.Duration(c.MaxRetransmits)*c.RetryTimeout
}

// ErrStopped is returned by operations on a stopped engine.
var ErrStopped = errors.New("core: engine stopped")
