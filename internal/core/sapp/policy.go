package sapp

import (
	"fmt"
	"time"

	"presence/internal/core"
)

// CP defaults from the paper: α_inc = 2, α_dec = 3/2, β = 3/2,
// δ_min = 0.02 s, δ_max = 10 s.
const (
	DefaultAlphaInc = 2.0
	DefaultAlphaDec = 1.5
	DefaultBeta     = 1.5
)

// Default delay bounds from the paper's steady-state study.
const (
	DefaultMinDelay = 20 * time.Millisecond
	DefaultMaxDelay = 10 * time.Second
)

// CPConfig parameterises the SAPP control-point adaptation rule (1).
type CPConfig struct {
	// AlphaInc (α_inc > 1) multiplies δ when the device looks overloaded.
	AlphaInc float64
	// AlphaDec (α_dec > 1) divides δ when the device looks underloaded.
	AlphaDec float64
	// Beta (β > 1) bounds the tolerated band [L_ideal/β, β·L_ideal].
	Beta float64
	// IdealLoad is L_ideal, the reference constant shared with devices.
	IdealLoad float64
	// MinDelay and MaxDelay bound δ (δ_min ≤ δ ≤ δ_max).
	MinDelay time.Duration
	MaxDelay time.Duration
	// InitialDelay is δ at join time (δ₀). The paper does not specify it;
	// zero means MinDelay — a greedy join, which reproduces the paper's
	// dynamics: the joint multiplicative descent from δ_min overshoots,
	// and the ensuing race between fast and slow CPs produces the
	// starvation of Figs. 2-4. (A conservative δ₀ = MaxDelay lands the
	// system softly inside the tolerated band and freezes it there with
	// only moderate spread — see DESIGN.md.)
	InitialDelay time.Duration
}

// DefaultCPConfig returns the paper's CP parameters.
func DefaultCPConfig() CPConfig {
	return CPConfig{
		AlphaInc:  DefaultAlphaInc,
		AlphaDec:  DefaultAlphaDec,
		Beta:      DefaultBeta,
		IdealLoad: DefaultIdealLoad,
		MinDelay:  DefaultMinDelay,
		MaxDelay:  DefaultMaxDelay,
	}
}

// Validate checks the configuration.
func (c CPConfig) Validate() error {
	if c.AlphaInc <= 1 {
		return fmt.Errorf("sapp: AlphaInc %g must exceed 1", c.AlphaInc)
	}
	if c.AlphaDec <= 1 {
		return fmt.Errorf("sapp: AlphaDec %g must exceed 1", c.AlphaDec)
	}
	if c.Beta <= 1 {
		return fmt.Errorf("sapp: Beta %g must exceed 1", c.Beta)
	}
	if c.IdealLoad <= 0 {
		return fmt.Errorf("sapp: IdealLoad %g must be positive", c.IdealLoad)
	}
	if c.MinDelay <= 0 {
		return fmt.Errorf("sapp: MinDelay %v must be positive", c.MinDelay)
	}
	if c.MaxDelay < c.MinDelay {
		return fmt.Errorf("sapp: MaxDelay %v must be ≥ MinDelay %v", c.MaxDelay, c.MinDelay)
	}
	if c.InitialDelay != 0 && (c.InitialDelay < c.MinDelay || c.InitialDelay > c.MaxDelay) {
		return fmt.Errorf("sapp: InitialDelay %v outside [%v, %v]", c.InitialDelay, c.MinDelay, c.MaxDelay)
	}
	return nil
}

// Policy is the SAPP control-point delay policy. It keeps the state the
// paper's CP needs: the previous successful cycle's probe count and
// timestamp, and the current delay δ.
type Policy struct {
	cfg   CPConfig
	delay time.Duration

	havePrev bool
	prevPC   uint64
	prevAt   time.Duration

	lastLexp float64
}

var _ core.DelayPolicy = (*Policy)(nil)

// NewPolicy validates the configuration and returns a policy with
// δ = InitialDelay (or δ_min if unset).
func NewPolicy(cfg CPConfig) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d0 := cfg.InitialDelay
	if d0 == 0 {
		d0 = cfg.MinDelay
	}
	return &Policy{cfg: cfg, delay: d0}, nil
}

// Delay returns the current inter-probe-cycle delay δ.
func (p *Policy) Delay() time.Duration { return p.delay }

// LastLoad returns the most recent experienced-load estimate L_exp
// (0 until two successful cycles have completed).
func (p *Policy) LastLoad() float64 { return p.lastLexp }

// NextDelay implements the paper's adaptation rule (1):
//
//	δ' = min(α_inc·δ, δ_max)   if L_exp > β·L_ideal
//	δ' = max(δ/α_dec, δ_min)   if L_exp < L_ideal/β
//	δ' = δ                     otherwise
//
// with L_exp = (pc'−pc)/(t'−t) over consecutive successful cycles, where
// t is the reply time for a clean cycle and the answered probe's send
// time for a cycle that needed retransmission.
func (p *Policy) NextDelay(res core.CycleResult) time.Duration {
	var pc uint64
	switch rep := res.Payload.(type) {
	case core.SAPPReply:
		pc = rep.ProbeCount
	case *core.SAPPReply: // pooled form; valid only until this call returns
		pc = rep.ProbeCount
	default:
		// A reply from a non-SAPP device; keep the current schedule. The
		// runtime wires protocols consistently, so this only happens with
		// corrupted input.
		return p.delay
	}
	t := res.RepliedAt
	if res.Attempts > 1 {
		t = res.SentAt
	}
	if !p.havePrev {
		p.havePrev = true
		p.prevPC, p.prevAt = pc, t
		return p.delay
	}
	if pc < p.prevPC {
		// The device restarted and reset its counter; re-anchor.
		p.prevPC, p.prevAt = pc, t
		return p.delay
	}
	dt := (t - p.prevAt).Seconds()
	dpc := pc - p.prevPC
	p.prevPC, p.prevAt = pc, t
	if dt <= 0 {
		return p.delay
	}
	lexp := float64(dpc) / dt
	p.lastLexp = lexp
	switch {
	case lexp > p.cfg.Beta*p.cfg.IdealLoad:
		p.delay = minDuration(scale(p.delay, p.cfg.AlphaInc), p.cfg.MaxDelay)
	case lexp < p.cfg.IdealLoad/p.cfg.Beta:
		p.delay = maxDuration(scale(p.delay, 1/p.cfg.AlphaDec), p.cfg.MinDelay)
	}
	return p.delay
}

// scale multiplies a duration by a positive factor.
func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
