// Package sapp implements the self-adaptive probe protocol of
// Bodlaender et al., the baseline the paper analyses (its Section 2).
//
// The device inflates a probe counter pc by Δ = L_ideal/L_nom on every
// probe and returns it; control points estimate the experienced load
// L_exp = (pc'−pc)/(t'−t) from consecutive replies and adapt their
// inter-probe-cycle delay δ multiplicatively to keep L_exp within
// [L_ideal/β, β·L_ideal]. The paper's analysis (Section 3) shows this
// scheme is unfair: some CPs oscillate at high frequency while most
// starve at δ_max. This package exists to reproduce exactly that result.
package sapp

import (
	"fmt"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Device defaults from the paper's simulation studies: L_ideal = 10⁶,
// L_nom = 10 probes/s, yielding Δ = 10⁵.
const (
	DefaultIdealLoad   = 1e6
	DefaultNominalLoad = 10.0
)

// DeviceConfig parameterises a SAPP device.
type DeviceConfig struct {
	// IdealLoad is L_ideal, the reference constant known to all nodes.
	IdealLoad float64
	// NominalLoad is L_nom, the probe load (probes/s) the device is able
	// or willing to sustain. Δ is derived as IdealLoad/NominalLoad.
	NominalLoad float64

	// AdaptiveDelta enables the paper's optional device-side load
	// regulation ("if the device finds that it is getting too many
	// probes, it can, say, double its value of Δ"). Off by default: the
	// paper's simulations use a fixed Δ.
	AdaptiveDelta bool
	// AdaptWindow is the measurement window for adaptive Δ. Defaults to
	// 5 s when AdaptiveDelta is set.
	AdaptWindow time.Duration
	// AdaptHigh doubles Δ when the measured load exceeds
	// AdaptHigh·NominalLoad. Defaults to 1.5.
	AdaptHigh float64
	// AdaptLow halves Δ (never below the base Δ) when the measured load
	// falls below AdaptLow·NominalLoad. Defaults to 0.5.
	AdaptLow float64
}

// DefaultDeviceConfig returns the paper's device parameters.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{IdealLoad: DefaultIdealLoad, NominalLoad: DefaultNominalLoad}
}

func (c *DeviceConfig) applyDefaults() {
	if c.AdaptWindow == 0 {
		c.AdaptWindow = 5 * time.Second
	}
	if c.AdaptHigh == 0 {
		c.AdaptHigh = 1.5
	}
	if c.AdaptLow == 0 {
		c.AdaptLow = 0.5
	}
}

// Validate checks the configuration.
func (c DeviceConfig) Validate() error {
	if c.IdealLoad <= 0 {
		return fmt.Errorf("sapp: IdealLoad %g must be positive", c.IdealLoad)
	}
	if c.NominalLoad <= 0 {
		return fmt.Errorf("sapp: NominalLoad %g must be positive", c.NominalLoad)
	}
	if c.IdealLoad < c.NominalLoad {
		return fmt.Errorf("sapp: IdealLoad %g must be >> NominalLoad %g (Δ ≥ 1)", c.IdealLoad, c.NominalLoad)
	}
	if c.AdaptiveDelta {
		if c.AdaptWindow < 0 {
			return fmt.Errorf("sapp: AdaptWindow %v must be positive", c.AdaptWindow)
		}
		if c.AdaptHigh <= c.AdaptLow {
			return fmt.Errorf("sapp: AdaptHigh %g must exceed AdaptLow %g", c.AdaptHigh, c.AdaptLow)
		}
	}
	return nil
}

// Device is the SAPP device engine.
type Device struct {
	id  ident.NodeID
	env core.Env
	cfg DeviceConfig

	pc        uint64
	baseDelta uint64
	delta     uint64
	last      [2]ident.NodeID

	windowCount uint64
	probesTotal uint64
}

var _ core.Device = (*Device)(nil)

// NewDevice validates the configuration and returns a device engine.
func NewDevice(id ident.NodeID, env core.Env, cfg DeviceConfig) (*Device, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("sapp: invalid device id")
	}
	if env == nil {
		return nil, fmt.Errorf("sapp: nil env")
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	delta := uint64(cfg.IdealLoad / cfg.NominalLoad)
	if delta == 0 {
		delta = 1
	}
	return &Device{id: id, env: env, cfg: cfg, baseDelta: delta, delta: delta}, nil
}

// ID returns the device's node id.
func (d *Device) ID() ident.NodeID { return d.id }

// Delta returns the current counter increment Δ.
func (d *Device) Delta() uint64 { return d.delta }

// ProbeCount returns the current probe counter pc.
func (d *Device) ProbeCount() uint64 { return d.pc }

// ProbesTotal returns the number of probes the device has answered.
func (d *Device) ProbesTotal() uint64 { return d.probesTotal }

// LastProbers returns the ids of the last two distinct probing CPs.
func (d *Device) LastProbers() [2]ident.NodeID { return d.last }

// Start arms the adaptive-Δ measurement window if enabled.
func (d *Device) Start() {
	if d.cfg.AdaptiveDelta {
		d.env.SetAlarm(d.env.Now() + d.cfg.AdaptWindow)
	}
}

// OnProbe increments pc by Δ and replies with the updated counter and the
// last-two-probers overlay hint.
func (d *Device) OnProbe(from ident.NodeID, m core.ProbeMsg) {
	d.pc += d.delta
	d.probesTotal++
	d.windowCount++
	d.noteProber(from)
	d.env.Send(from, core.AcquireReply(d.id, m.Cycle, m.Attempt,
		core.AcquireSAPPReply(d.pc, d.last)))
}

// noteProber maintains the last two *distinct* prober ids, newest first.
func (d *Device) noteProber(from ident.NodeID) {
	if d.last[0] == from {
		return
	}
	d.last[1] = d.last[0]
	d.last[0] = from
}

// OnAlarm closes an adaptive-Δ measurement window: the device doubles Δ
// under overload and halves it (towards the base value) under underload.
func (d *Device) OnAlarm() {
	if !d.cfg.AdaptiveDelta {
		return
	}
	rate := float64(d.windowCount) / d.cfg.AdaptWindow.Seconds()
	d.windowCount = 0
	switch {
	case rate > d.cfg.AdaptHigh*d.cfg.NominalLoad:
		d.delta *= 2
	case rate < d.cfg.AdaptLow*d.cfg.NominalLoad && d.delta > d.baseDelta:
		d.delta /= 2
		if d.delta < d.baseDelta {
			d.delta = d.baseDelta
		}
	}
	d.env.SetAlarm(d.env.Now() + d.cfg.AdaptWindow)
}
