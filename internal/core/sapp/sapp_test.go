package sapp

import (
	"testing"
	"testing/quick"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// fakeEnv is a minimal Env for engine unit tests.
type fakeEnv struct {
	now      time.Duration
	sent     []core.Message
	sentTo   []ident.NodeID
	alarmAt  time.Duration
	alarmSet bool
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Send(to ident.NodeID, msg core.Message) {
	// Flatten pooled pointer forms so assertions keep value semantics.
	e.sent = append(e.sent, core.Flatten(msg))
	e.sentTo = append(e.sentTo, to)
	core.Recycle(msg)
}
func (e *fakeEnv) SetAlarm(at time.Duration) { e.alarmAt, e.alarmSet = at, true }
func (e *fakeEnv) StopAlarm()                { e.alarmSet = false }

func (e *fakeEnv) lastReply(t *testing.T) core.ReplyMsg {
	t.Helper()
	if len(e.sent) == 0 {
		t.Fatal("nothing sent")
	}
	m, ok := e.sent[len(e.sent)-1].(core.ReplyMsg)
	if !ok {
		t.Fatalf("last message is %T, want ReplyMsg", e.sent[len(e.sent)-1])
	}
	return m
}

func newDevice(t *testing.T, env *fakeEnv, cfg DeviceConfig) *Device {
	t.Helper()
	d, err := NewDevice(1, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceConfigValidation(t *testing.T) {
	env := &fakeEnv{}
	bad := []DeviceConfig{
		{IdealLoad: 0, NominalLoad: 10},
		{IdealLoad: 1e6, NominalLoad: 0},
		{IdealLoad: 5, NominalLoad: 10}, // Δ < 1
		{IdealLoad: 1e6, NominalLoad: 10, AdaptiveDelta: true, AdaptHigh: 0.1, AdaptLow: 0.5},
	}
	for i, cfg := range bad {
		if _, err := NewDevice(1, env, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewDevice(ident.None, env, DefaultDeviceConfig()); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewDevice(1, nil, DefaultDeviceConfig()); err == nil {
		t.Error("nil env accepted")
	}
}

func TestDeviceDeltaDerivation(t *testing.T) {
	d := newDevice(t, &fakeEnv{}, DefaultDeviceConfig())
	if d.Delta() != 100000 {
		t.Fatalf("Δ = %d, want 10⁵ (= L_ideal/L_nom = 10⁶/10)", d.Delta())
	}
}

func TestDeviceIncrementsAndReplies(t *testing.T) {
	env := &fakeEnv{now: time.Second}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 3, Attempt: 1})
	rep := env.lastReply(t)
	if rep.From != 1 || rep.Cycle != 3 || rep.Attempt != 1 {
		t.Fatalf("reply = %+v", rep)
	}
	if env.sentTo[0] != 7 {
		t.Fatalf("reply sent to %v, want 7", env.sentTo[0])
	}
	pl, ok := rep.Payload.(core.SAPPReply)
	if !ok {
		t.Fatalf("payload is %T", rep.Payload)
	}
	if pl.ProbeCount != 100000 {
		t.Fatalf("pc = %d, want Δ after one probe", pl.ProbeCount)
	}
	d.OnProbe(8, core.ProbeMsg{From: 8, Cycle: 1})
	if d.ProbeCount() != 200000 {
		t.Fatalf("pc = %d, want 2Δ", d.ProbeCount())
	}
	if d.ProbesTotal() != 2 {
		t.Fatalf("ProbesTotal = %d", d.ProbesTotal())
	}
}

func TestDeviceLastTwoDistinctProbers(t *testing.T) {
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	probe := func(from ident.NodeID) {
		d.OnProbe(from, core.ProbeMsg{From: from, Cycle: 1})
	}
	probe(7)
	if got := d.LastProbers(); got != [2]ident.NodeID{7, ident.None} {
		t.Fatalf("after one prober: %v", got)
	}
	probe(7) // repeat: must not duplicate
	if got := d.LastProbers(); got != [2]ident.NodeID{7, ident.None} {
		t.Fatalf("after repeated prober: %v", got)
	}
	probe(8)
	if got := d.LastProbers(); got != [2]ident.NodeID{8, 7} {
		t.Fatalf("after two probers: %v", got)
	}
	probe(9)
	if got := d.LastProbers(); got != [2]ident.NodeID{9, 8} {
		t.Fatalf("after three probers: %v", got)
	}
	// The reply payload carries the updated hint.
	pl := env.lastReply(t).Payload.(core.SAPPReply)
	if pl.LastProbers != [2]ident.NodeID{9, 8} {
		t.Fatalf("payload overlay hint = %v", pl.LastProbers)
	}
}

func TestDeviceStartWithoutAdaptiveDeltaSetsNoAlarm(t *testing.T) {
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.Start()
	if env.alarmSet {
		t.Fatal("non-adaptive device armed an alarm")
	}
	d.OnAlarm() // spurious alarm must be harmless
}

func TestAdaptiveDeltaDoublesUnderOverload(t *testing.T) {
	env := &fakeEnv{}
	cfg := DefaultDeviceConfig()
	cfg.AdaptiveDelta = true
	cfg.AdaptWindow = time.Second
	d := newDevice(t, env, cfg)
	d.Start()
	if !env.alarmSet {
		t.Fatal("adaptive device must arm its window alarm")
	}
	base := d.Delta()
	// 100 probes in a 1 s window ≫ 1.5·L_nom = 15.
	for i := 0; i < 100; i++ {
		d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: uint32(i)})
	}
	env.now = env.alarmAt
	d.OnAlarm()
	if d.Delta() != 2*base {
		t.Fatalf("Δ = %d after overload window, want doubled %d", d.Delta(), 2*base)
	}
	if !env.alarmSet {
		t.Fatal("window alarm not re-armed")
	}
}

func TestAdaptiveDeltaHalvesButNotBelowBase(t *testing.T) {
	env := &fakeEnv{}
	cfg := DefaultDeviceConfig()
	cfg.AdaptiveDelta = true
	cfg.AdaptWindow = time.Second
	d := newDevice(t, env, cfg)
	d.Start()
	base := d.Delta()
	// Overload twice: Δ = 4·base.
	for w := 0; w < 2; w++ {
		for i := 0; i < 100; i++ {
			d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: uint32(i)})
		}
		env.now = env.alarmAt
		d.OnAlarm()
	}
	if d.Delta() != 4*base {
		t.Fatalf("Δ = %d, want %d", d.Delta(), 4*base)
	}
	// Idle windows: Δ halves back but never below base.
	for w := 0; w < 5; w++ {
		env.now = env.alarmAt
		d.OnAlarm()
	}
	if d.Delta() != base {
		t.Fatalf("Δ = %d after idle windows, want base %d", d.Delta(), base)
	}
}

func TestCPConfigValidation(t *testing.T) {
	bad := []CPConfig{
		func() CPConfig { c := DefaultCPConfig(); c.AlphaInc = 1; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.AlphaDec = 0.9; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.Beta = 1; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.IdealLoad = 0; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.MinDelay = 0; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.MaxDelay = time.Millisecond; return c }(),
		func() CPConfig { c := DefaultCPConfig(); c.InitialDelay = time.Hour; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewPolicy(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewPolicy(DefaultCPConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestPolicyInitialDelayDefaultsToMin(t *testing.T) {
	p, err := NewPolicy(DefaultCPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Delay() != DefaultMinDelay {
		t.Fatalf("δ₀ = %v, want δ_min (greedy join)", p.Delay())
	}
}

func sappResult(pc uint64, at time.Duration) core.CycleResult {
	return core.CycleResult{
		Payload:   core.SAPPReply{ProbeCount: pc},
		SentAt:    at,
		RepliedAt: at,
		Attempts:  1,
	}
}

func TestPolicyFirstCycleKeepsDelay(t *testing.T) {
	p, _ := NewPolicy(DefaultCPConfig())
	d0 := p.Delay()
	if got := p.NextDelay(sappResult(100000, time.Second)); got != d0 {
		t.Fatalf("first cycle changed δ: %v", got)
	}
}

func TestPolicyOverloadIncreasesDelay(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(100000, time.Second))
	// Δpc = 10⁷ over 1 s ⇒ L_exp = 10⁷ > β·L_ideal = 1.5·10⁶ ⇒ δ ×= 2.
	got := p.NextDelay(sappResult(100000+10000000, 2*time.Second))
	if got != 2*time.Second {
		t.Fatalf("δ = %v, want doubled 2s", got)
	}
	if p.LastLoad() != 1e7 {
		t.Fatalf("L_exp = %g, want 1e7", p.LastLoad())
	}
}

func TestPolicyUnderloadDecreasesDelay(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(100000, time.Second))
	// Δpc = 10⁵ over 1 s ⇒ L_exp = 10⁵ < L_ideal/β ≈ 6.7·10⁵ ⇒ δ /= 1.5.
	got := p.NextDelay(sappResult(200000, 2*time.Second))
	second := float64(time.Second)
	want := time.Duration(second / 1.5)
	if got != want {
		t.Fatalf("δ = %v, want %v", got, want)
	}
}

func TestPolicyInBandKeepsDelay(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(100000, time.Second))
	// Δpc = 10⁶ over 1 s ⇒ L_exp = L_ideal exactly: inside the band.
	if got := p.NextDelay(sappResult(100000+1000000, 2*time.Second)); got != time.Second {
		t.Fatalf("δ = %v, want unchanged 1s", got)
	}
}

func TestPolicyClampsAtBounds(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = cfg.MaxDelay
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(0, 0))
	// Massive overload: δ must stay at δ_max.
	if got := p.NextDelay(sappResult(1e12, time.Second)); got != cfg.MaxDelay {
		t.Fatalf("δ = %v, want clamped at δ_max", got)
	}
	// Repeated underload: δ must bottom out at δ_min.
	for i := 0; i < 100; i++ {
		p.NextDelay(sappResult(1e12+uint64(i), time.Duration(2+i)*time.Second))
	}
	if got := p.Delay(); got != cfg.MinDelay {
		t.Fatalf("δ = %v, want clamped at δ_min", got)
	}
}

func TestPolicyUsesSendTimeOnRetransmittedCycle(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(core.CycleResult{
		Payload: core.SAPPReply{ProbeCount: 1000}, SentAt: time.Second, RepliedAt: time.Second, Attempts: 1,
	})
	// Retransmitted cycle: t must be the send time (2 s), not the reply
	// time (10 s). Δpc = 1.5e6 over 1 s ⇒ L_exp = 1.5e6 which equals
	// β·L_ideal (not >), so δ unchanged; over 9 s it would be 1.67e5 <
	// L_ideal/β and δ would shrink. Observing "unchanged" proves the
	// send time was used.
	got := p.NextDelay(core.CycleResult{
		Payload: core.SAPPReply{ProbeCount: 1000 + 1500000},
		SentAt:  2 * time.Second, RepliedAt: 10 * time.Second, Attempts: 2,
	})
	if got != time.Second {
		t.Fatalf("δ = %v, want unchanged (send-time semantics)", got)
	}
}

func TestPolicyDeviceCounterResetReanchors(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(5000000, time.Second))
	// Device restarted: pc dropped. Delay must not change (no spurious
	// underload from a "negative" increment).
	if got := p.NextDelay(sappResult(100, 2*time.Second)); got != time.Second {
		t.Fatalf("δ = %v after counter reset, want unchanged", got)
	}
	// And the next cycle adapts from the new anchor.
	got := p.NextDelay(sappResult(100+10000000, 3*time.Second))
	if got != 2*time.Second {
		t.Fatalf("δ = %v, want doubled from new anchor", got)
	}
}

func TestPolicyZeroElapsedKeepsDelay(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	p.NextDelay(sappResult(1000, time.Second))
	if got := p.NextDelay(sappResult(2000, time.Second)); got != time.Second {
		t.Fatalf("δ = %v with Δt = 0, want unchanged", got)
	}
}

func TestPolicyNonSAPPPayloadKeepsDelay(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	p, _ := NewPolicy(cfg)
	got := p.NextDelay(core.CycleResult{Payload: core.DCPPReply{Wait: time.Minute}})
	if got != time.Second {
		t.Fatalf("δ = %v on foreign payload, want unchanged", got)
	}
}

// Property: δ always stays within [δ_min, δ_max] for arbitrary reply
// sequences — the invariant "a CP has to obey δ_min ≤ δ ≤ δ_max".
func TestPropertyDelayWithinBounds(t *testing.T) {
	cfg := DefaultCPConfig()
	f := func(increments []uint32, gapsMs []uint16) bool {
		p, err := NewPolicy(cfg)
		if err != nil {
			return false
		}
		pc := uint64(0)
		at := time.Duration(0)
		for i, inc := range increments {
			pc += uint64(inc)
			gap := time.Millisecond
			if i < len(gapsMs) {
				gap = time.Duration(gapsMs[i])*time.Millisecond + time.Millisecond
			}
			at += gap
			d := p.NextDelay(sappResult(pc, at))
			if d < cfg.MinDelay || d > cfg.MaxDelay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the adaptation is monotone in L_exp — an overloaded estimate
// never shrinks δ and an underloaded estimate never grows it.
func TestPropertyAdaptationDirection(t *testing.T) {
	cfg := DefaultCPConfig()
	cfg.InitialDelay = time.Second
	f := func(incr uint32) bool {
		p, err := NewPolicy(cfg)
		if err != nil {
			return false
		}
		p.NextDelay(sappResult(0, 0))
		before := p.Delay()
		after := p.NextDelay(sappResult(uint64(incr), time.Second))
		lexp := float64(incr)
		switch {
		case lexp > cfg.Beta*cfg.IdealLoad:
			return after >= before
		case lexp < cfg.IdealLoad/cfg.Beta:
			return after <= before
		default:
			return after == before
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeviceOnProbe(b *testing.B) {
	env := &fakeEnv{}
	d, err := NewDevice(1, env, DefaultDeviceConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.sent = env.sent[:0]
		env.sentTo = env.sentTo[:0]
		d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: uint32(i)})
	}
}

func BenchmarkPolicyNextDelay(b *testing.B) {
	p, err := NewPolicy(DefaultCPConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.NextDelay(sappResult(uint64(i)*100000, time.Duration(i)*time.Second))
	}
}
