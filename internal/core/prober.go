package core

import (
	"errors"
	"fmt"
	"time"

	"presence/internal/ident"
)

// CycleResult describes a successfully completed probe cycle.
type CycleResult struct {
	// Payload is the protocol-specific reply content.
	Payload Payload
	// SentAt is the send time of the probe attempt that was answered.
	// The paper's load estimator uses this when a cycle needed
	// retransmission ("in case of a failed probe, the time at which the
	// retransmitted probe has been sent is taken").
	SentAt time.Duration
	// RepliedAt is the receive time of the reply.
	RepliedAt time.Duration
	// Attempts is the number of probes sent in the cycle (1 = answered
	// on the first probe).
	Attempts int
}

// DelayPolicy chooses the inter-probe-cycle delay δ after each successful
// cycle. This is where SAPP and DCPP differ: SAPP computes δ from the
// experienced load, DCPP obeys the wait dictated by the device, and the
// naive baseline returns a constant.
type DelayPolicy interface {
	NextDelay(res CycleResult) time.Duration
}

// Listener observes presence events from a Prober. Implementations must
// be cheap and non-blocking; they run on the engine's event loop.
type Listener interface {
	// DeviceAlive is invoked on every successful probe cycle.
	DeviceAlive(device ident.NodeID, res CycleResult)
	// DeviceLost is invoked when a full cycle (first probe plus all
	// retransmissions) goes unanswered. The prober stops afterwards.
	DeviceLost(device ident.NodeID, at time.Duration)
	// DeviceBye is invoked when the device announces a graceful leave.
	// The prober stops afterwards.
	DeviceBye(device ident.NodeID, at time.Duration)
}

// NopListener is a Listener that ignores all events.
type NopListener struct{}

// DeviceAlive implements Listener.
func (NopListener) DeviceAlive(ident.NodeID, CycleResult) {}

// DeviceLost implements Listener.
func (NopListener) DeviceLost(ident.NodeID, time.Duration) {}

// DeviceBye implements Listener.
func (NopListener) DeviceBye(ident.NodeID, time.Duration) {}

var _ Listener = NopListener{}

// ProberStats counts a prober's activity.
type ProberStats struct {
	ProbesSent   uint64
	CyclesOK     uint64
	CyclesFailed uint64
	Retransmits  uint64
	StaleReplies uint64
	// ByeVerifications counts BYEs that triggered a verification cycle
	// instead of instant removal (ProberOptions.VerifyBye); SpoofedByes
	// counts verifications the device survived — the BYE was forged.
	ByeVerifications uint64
	SpoofedByes      uint64
}

// proberState enumerates the cycle state machine of Fig. 1.
type proberState int

const (
	stateIdle       proberState = iota + 1 // created or restarted, no cycle yet
	stateAwaitReply                        // probe sent, waiting for reply or timeout
	stateWaiting                           // cycle done, waiting δ before the next
	stateStopped                           // lost the device, saw a bye, or Stop()ed
)

func (s proberState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateAwaitReply:
		return "await-reply"
	case stateWaiting:
		return "waiting"
	case stateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("proberState(%d)", int(s))
	}
}

// ProberOptions configures a Prober.
type ProberOptions struct {
	// ID is this control point's identity.
	ID ident.NodeID
	// Device is the monitored device.
	Device ident.NodeID
	// Env binds the engine to a runtime.
	Env Env
	// Policy chooses the inter-cycle delay. Required.
	Policy DelayPolicy
	// Listener observes presence events. Defaults to NopListener.
	Listener Listener
	// Retransmit parameterises the probe cycle. Zero value means the
	// paper's defaults.
	Retransmit RetransmitConfig
	// Observer, if non-nil, is invoked whenever a new inter-cycle delay
	// has been chosen — the hook behind the 1/δ traces of Figs. 2–4.
	Observer func(now time.Duration, delay time.Duration)
	// FirstCycle offsets the prober's cycle-number space: the first probe
	// cycle is numbered FirstCycle+1. The protocol is indifferent to the
	// starting point (only equality with the echoed cycle matters), but
	// shared-socket runtimes (internal/fleet) stagger the space per CP so
	// that (device, cycle) reply-demultiplexing keys from different CPs
	// on one socket do not collide. Zero keeps the historical numbering.
	FirstCycle uint32
	// VerifyBye hardens the BYE path against spoofing: a BYE arriving
	// while the device looks healthy (a cycle in flight or just
	// completed) triggers one verification probe cycle instead of
	// instant removal. A reply refutes the BYE (the device is still
	// there — counted ProberStats.SpoofedByes) and monitoring carries
	// on; an unanswered verification cycle confirms it and the prober
	// stops with DeviceBye within the worst-case cycle budget
	// (RetransmitConfig.WorstCaseDetection). Off, a single BYE frame
	// removes the device immediately — the paper's behaviour.
	VerifyBye bool
}

// Prober is the control-point side of the probe cycle: it sends a probe,
// retransmits on timeout (TOF for the first probe, TOS for the rest), and
// either completes the cycle on a reply — asking its DelayPolicy when to
// probe next — or declares the device absent after MaxRetransmits
// unanswered retransmissions.
//
// Prober is not safe for concurrent use; runtimes serialise all calls.
type Prober struct {
	id       ident.NodeID
	device   ident.NodeID
	env      Env
	policy   DelayPolicy
	listener Listener
	cfg      RetransmitConfig
	observer func(time.Duration, time.Duration)

	state     proberState
	cycle     uint32
	attempt   int
	sentAt    []time.Duration // send time per attempt of the current cycle
	verifyBye bool
	verifying bool // current cycle is a bye-verification cycle
	stats     ProberStats
}

// NewProber validates the options and returns a ready (but not started)
// prober.
func NewProber(opts ProberOptions) (*Prober, error) {
	if !opts.ID.Valid() {
		return nil, errors.New("core: prober needs a valid ID")
	}
	if !opts.Device.Valid() {
		return nil, errors.New("core: prober needs a valid device id")
	}
	if opts.Env == nil {
		return nil, errors.New("core: prober needs an Env")
	}
	if opts.Policy == nil {
		return nil, errors.New("core: prober needs a DelayPolicy")
	}
	if opts.Retransmit == (RetransmitConfig{}) {
		opts.Retransmit = DefaultRetransmit()
	}
	if err := opts.Retransmit.Validate(); err != nil {
		return nil, err
	}
	if opts.Listener == nil {
		opts.Listener = NopListener{}
	}
	return &Prober{
		id:        opts.ID,
		device:    opts.Device,
		env:       opts.Env,
		policy:    opts.Policy,
		listener:  opts.Listener,
		cfg:       opts.Retransmit,
		observer:  opts.Observer,
		state:     stateIdle,
		cycle:     opts.FirstCycle,
		verifyBye: opts.VerifyBye,
		sentAt:    make([]time.Duration, opts.Retransmit.MaxRetransmits+1),
	}, nil
}

// ID returns the prober's node id.
func (p *Prober) ID() ident.NodeID { return p.id }

// Device returns the monitored device's id.
func (p *Prober) Device() ident.NodeID { return p.device }

// Stats returns a snapshot of the prober's counters.
func (p *Prober) Stats() ProberStats { return p.stats }

// Stopped reports whether the prober has stopped (device lost, bye seen,
// or Stop called).
func (p *Prober) Stopped() bool { return p.state == stateStopped }

// Start begins the first probe cycle. It may also be used to resume
// monitoring after the prober stopped. Starting a prober that is already
// probing or waiting is a no-op.
func (p *Prober) Start() {
	if p.state == stateAwaitReply || p.state == stateWaiting {
		return
	}
	p.state = stateIdle
	p.verifying = false
	p.beginCycle()
}

// Stop halts monitoring and cancels any pending timer. The policy state
// is retained, so a later Start resumes with the learned delay.
func (p *Prober) Stop() {
	p.env.StopAlarm()
	p.state = stateStopped
	p.verifying = false
}

// Rehome moves the prober into a new cycle-number space: the next cycle
// is numbered firstCycle+1 (FirstCycle semantics). Shared-socket
// runtimes stagger and route replies by cycle number, so migrating a
// prober between sockets re-seeds the space. A cycle in flight when the
// space changes could never be attributed to the old numbering again:
// it is abandoned without a verdict and a fresh cycle opens in the new
// space immediately (a pending bye-verification carries over to that
// cycle). In any other state only the numbering changes — the armed
// alarm, the learned policy state and the stop status are untouched.
func (p *Prober) Rehome(firstCycle uint32) {
	if p.state == stateAwaitReply {
		p.env.StopAlarm()
		p.cycle = firstCycle
		p.beginCycle()
		return
	}
	p.cycle = firstCycle
}

func (p *Prober) beginCycle() {
	p.cycle++
	p.attempt = 0
	p.state = stateAwaitReply
	p.sendProbe()
	p.env.SetAlarm(p.env.Now() + p.cfg.FirstTimeout)
}

func (p *Prober) sendProbe() {
	p.sentAt[p.attempt] = p.env.Now()
	p.stats.ProbesSent++
	p.env.Send(p.device, AcquireProbe(p.id, p.cycle, uint8(p.attempt)))
}

// OnAlarm handles the engine's single timer: a probe timeout while
// awaiting a reply, or the end of the inter-cycle wait.
func (p *Prober) OnAlarm() {
	switch p.state {
	case stateAwaitReply:
		if p.attempt >= p.cfg.MaxRetransmits {
			// All probes of the cycle unanswered: the device has left.
			p.stats.CyclesFailed++
			p.state = stateStopped
			if p.verifying {
				// The unanswered cycle confirms the pending BYE.
				p.verifying = false
				p.listener.DeviceBye(p.device, p.env.Now())
				return
			}
			p.listener.DeviceLost(p.device, p.env.Now())
			return
		}
		p.attempt++
		p.stats.Retransmits++
		p.sendProbe()
		p.env.SetAlarm(p.env.Now() + p.cfg.RetryTimeout)
	case stateWaiting:
		p.beginCycle()
	case stateIdle, stateStopped:
		// Spurious alarm (e.g. raced with Stop in the real runtime);
		// ignore.
	}
}

// OnReply handles a reply from the device. Replies for earlier cycles or
// duplicates for an already-completed cycle are counted and ignored.
func (p *Prober) OnReply(m ReplyMsg) {
	if p.state != stateAwaitReply || m.Cycle != p.cycle || int(m.Attempt) > p.attempt {
		p.stats.StaleReplies++
		return
	}
	res := CycleResult{
		Payload:   m.Payload,
		SentAt:    p.sentAt[m.Attempt],
		RepliedAt: p.env.Now(),
		Attempts:  p.attempt + 1,
	}
	if p.verifying {
		// The device answered the verification cycle: the BYE was forged.
		p.verifying = false
		p.stats.SpoofedByes++
	}
	p.stats.CyclesOK++
	p.listener.DeviceAlive(p.device, res)
	delay := p.policy.NextDelay(res)
	if delay < 0 {
		delay = 0
	}
	if p.observer != nil {
		p.observer(p.env.Now(), delay)
	}
	p.state = stateWaiting
	p.env.SetAlarm(p.env.Now() + delay)
}

// OnBye handles a graceful-leave announcement from the device.
func (p *Prober) OnBye(m ByeMsg) {
	if m.From != p.device || p.state == stateStopped {
		return
	}
	if p.verifyBye && (p.state == stateAwaitReply || p.state == stateWaiting) {
		p.stats.ByeVerifications++
		if p.verifying {
			return
		}
		p.verifying = true
		if p.state == stateWaiting {
			p.env.StopAlarm()
			p.beginCycle() // immediate verification probe
		}
		// stateAwaitReply: the in-flight cycle doubles as verification.
		return
	}
	p.env.StopAlarm()
	p.state = stateStopped
	p.listener.DeviceBye(p.device, p.env.Now())
}

// Device is the device-side protocol engine: it answers probes. Start
// arms any periodic maintenance the engine needs (adaptive-Δ windows for
// SAPP, dedupe-table sweeps for DCPP).
type Device interface {
	Start()
	OnProbe(from ident.NodeID, m ProbeMsg)
	OnAlarm()
}
