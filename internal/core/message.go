// Package core implements the protocol machinery shared by the paper's
// two probe protocols: the message vocabulary, the bounded-retransmission
// probe cycle (Fig. 1 of the paper), and the interfaces through which the
// SAPP and DCPP engines plug in.
//
// Engines are pure, single-threaded state machines driven through the Env
// interface. The same engine code runs under the discrete-event simulator
// (internal/simrun) and on real UDP sockets (internal/rtnet).
package core

import (
	"time"

	"presence/internal/ident"
)

// Message is the sealed set of protocol messages.
type Message interface{ isMessage() }

// ProbeMsg is the "are you still there?" probe a control point sends to a
// device. Cycle numbers a probe cycle (monotonically increasing per CP);
// Attempt numbers the transmission within the cycle (0 = first probe,
// 1..MaxRetransmits = retransmissions). The pair lets engines match
// replies under reordering, duplication and loss.
type ProbeMsg struct {
	From    ident.NodeID
	Cycle   uint32
	Attempt uint8
}

func (ProbeMsg) isMessage() {}

// ReplyMsg is the device's answer to a probe. Cycle and Attempt echo the
// probe being answered; Payload is protocol specific.
type ReplyMsg struct {
	From    ident.NodeID
	Cycle   uint32
	Attempt uint8
	Payload Payload
}

func (ReplyMsg) isMessage() {}

// ByeMsg announces a graceful leave of the sending device ("normally,
// when a node goes off-line, it informs other nodes by sending a
// bye-message").
type ByeMsg struct {
	From ident.NodeID
}

func (ByeMsg) isMessage() {}

// LeaveNotice disseminates a detected device absence across the CP
// overlay built from the SAPP reply's last-two-probers field. Origin is
// the CP that detected the absence, Seq de-duplicates notices and TTL
// bounds flooding.
type LeaveNotice struct {
	Device ident.NodeID
	Origin ident.NodeID
	Seq    uint32
	TTL    uint8
}

func (LeaveNotice) isMessage() {}

// AnnounceMsg is a device's periodic presence announcement (UPnP-style
// ssdp:alive): the receiver may consider the device present for MaxAge.
// The paper's probe protocols complement these announcements — max-age
// expiry alone detects absence far too slowly (minutes, not the
// required "order of one second").
type AnnounceMsg struct {
	From   ident.NodeID
	MaxAge time.Duration
}

func (AnnounceMsg) isMessage() {}

// Payload is the sealed set of protocol-specific reply payloads.
type Payload interface{ isPayload() }

// SAPPReply carries the device's inflated probe counter pc and the ids of
// the last two distinct probing CPs (the overlay hint).
type SAPPReply struct {
	ProbeCount  uint64
	LastProbers [2]ident.NodeID
}

func (SAPPReply) isPayload() {}

// DCPPReply carries the wait the probing CP must observe before its next
// probe cycle: nt' − t in the paper's notation.
type DCPPReply struct {
	Wait time.Duration
}

func (DCPPReply) isPayload() {}

// EmptyReply is the payload of the naive baseline protocol, which adapts
// nothing.
type EmptyReply struct{}

func (EmptyReply) isPayload() {}

// Env is an engine's window on the world, implemented by the simulation
// runtime (virtual time, simulated network) and the UDP runtime (wall
// clock, sockets).
//
// Each engine owns exactly one alarm slot: SetAlarm replaces any pending
// expiry, and the runtime calls the engine's OnAlarm when it fires. The
// protocols are designed to need at most one outstanding timer.
type Env interface {
	// Now returns the current time as an offset from the runtime's epoch.
	Now() time.Duration
	// Send transmits a message. Delivery is best-effort: messages may be
	// lost, reordered or duplicated.
	Send(to ident.NodeID, msg Message)
	// SetAlarm schedules the engine's OnAlarm callback at time at,
	// replacing any pending alarm.
	SetAlarm(at time.Duration)
	// StopAlarm cancels any pending alarm.
	StopAlarm()
}
