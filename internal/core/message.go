// Package core implements the protocol machinery shared by the paper's
// two probe protocols: the message vocabulary, the bounded-retransmission
// probe cycle (Fig. 1 of the paper), and the interfaces through which the
// SAPP and DCPP engines plug in.
//
// Engines are pure, single-threaded state machines driven through the Env
// interface. The same engine code runs under the discrete-event simulator
// (internal/simrun) and on real UDP sockets (internal/rtnet).
package core

import (
	"sync"
	"time"

	"presence/internal/ident"
)

// Message is the sealed set of protocol messages.
type Message interface{ isMessage() }

// ProbeMsg is the "are you still there?" probe a control point sends to a
// device. Cycle numbers a probe cycle (monotonically increasing per CP);
// Attempt numbers the transmission within the cycle (0 = first probe,
// 1..MaxRetransmits = retransmissions). The pair lets engines match
// replies under reordering, duplication and loss.
type ProbeMsg struct {
	From    ident.NodeID
	Cycle   uint32
	Attempt uint8
}

func (ProbeMsg) isMessage() {}

// ReplyMsg is the device's answer to a probe. Cycle and Attempt echo the
// probe being answered; Payload is protocol specific.
type ReplyMsg struct {
	From    ident.NodeID
	Cycle   uint32
	Attempt uint8
	Payload Payload
}

func (ReplyMsg) isMessage() {}

// ByeMsg announces a graceful leave of the sending device ("normally,
// when a node goes off-line, it informs other nodes by sending a
// bye-message").
type ByeMsg struct {
	From ident.NodeID
}

func (ByeMsg) isMessage() {}

// LeaveNotice disseminates a detected device absence across the CP
// overlay built from the SAPP reply's last-two-probers field. Origin is
// the CP that detected the absence, Seq de-duplicates notices and TTL
// bounds flooding.
type LeaveNotice struct {
	Device ident.NodeID
	Origin ident.NodeID
	Seq    uint32
	TTL    uint8
}

func (LeaveNotice) isMessage() {}

// AnnounceMsg is a device's periodic presence announcement (UPnP-style
// ssdp:alive): the receiver may consider the device present for MaxAge.
// The paper's probe protocols complement these announcements — max-age
// expiry alone detects absence far too slowly (minutes, not the
// required "order of one second").
type AnnounceMsg struct {
	From   ident.NodeID
	MaxAge time.Duration
}

func (AnnounceMsg) isMessage() {}

// Payload is the sealed set of protocol-specific reply payloads.
type Payload interface{ isPayload() }

// SAPPReply carries the device's inflated probe counter pc and the ids of
// the last two distinct probing CPs (the overlay hint).
type SAPPReply struct {
	ProbeCount  uint64
	LastProbers [2]ident.NodeID
}

func (SAPPReply) isPayload() {}

// DCPPReply carries the wait the probing CP must observe before its next
// probe cycle: nt' − t in the paper's notation.
type DCPPReply struct {
	Wait time.Duration
}

func (DCPPReply) isPayload() {}

// EmptyReply is the payload of the naive baseline protocol, which adapts
// nothing.
type EmptyReply struct{}

func (EmptyReply) isPayload() {}

// Message pooling
//
// The probe/reply exchange is the simulator's hottest message path:
// passing ProbeMsg/ReplyMsg values through the Message interface boxes a
// fresh heap object per send, and reply payloads box a second one. The
// engines therefore send *pooled pointer forms* (*ProbeMsg, *ReplyMsg
// with pointer payloads), acquired here and recycled by whichever runtime
// finishes delivering them (the simulated network after the handler
// returns, the UDP runtime after encoding).
//
// Ownership contract: passing a pooled message to Env.Send transfers
// ownership to the runtime. Receivers (handlers, policies, listeners)
// may read a pooled message and its payload only until they return; code
// that needs the data longer must copy the fields out. Pointer and value
// forms are interchangeable on the wire and in type switches — consumers
// accept both.

var (
	probePool = sync.Pool{New: func() any { return new(ProbeMsg) }}
	replyPool = sync.Pool{New: func() any { return new(ReplyMsg) }}
	sappPool  = sync.Pool{New: func() any { return new(SAPPReply) }}
	dcppPool  = sync.Pool{New: func() any { return new(DCPPReply) }}
)

// AcquireProbe returns a pooled probe message. Ownership passes to
// Env.Send; the delivering runtime recycles it.
func AcquireProbe(from ident.NodeID, cycle uint32, attempt uint8) *ProbeMsg {
	m := probePool.Get().(*ProbeMsg)
	m.From, m.Cycle, m.Attempt = from, cycle, attempt
	return m
}

// AcquireReply returns a pooled reply message carrying the given payload.
// Pooled payloads (from AcquireSAPPReply/AcquireDCPPReply) are recycled
// together with the reply.
func AcquireReply(from ident.NodeID, cycle uint32, attempt uint8, p Payload) *ReplyMsg {
	m := replyPool.Get().(*ReplyMsg)
	m.From, m.Cycle, m.Attempt, m.Payload = from, cycle, attempt, p
	return m
}

// AcquireSAPPReply returns a pooled SAPP reply payload.
func AcquireSAPPReply(pc uint64, last [2]ident.NodeID) *SAPPReply {
	p := sappPool.Get().(*SAPPReply)
	p.ProbeCount, p.LastProbers = pc, last
	return p
}

// AcquireDCPPReply returns a pooled DCPP reply payload.
func AcquireDCPPReply(wait time.Duration) *DCPPReply {
	p := dcppPool.Get().(*DCPPReply)
	p.Wait = wait
	return p
}

// Recycle returns pooled message forms (and their pooled payloads) to
// their pools; value forms and foreign types are ignored. After Recycle
// the message must not be touched.
func (m *ProbeMsg) Recycle() {
	*m = ProbeMsg{}
	probePool.Put(m)
}

// Recycle returns the reply and any pooled payload to their pools.
func (m *ReplyMsg) Recycle() {
	switch p := m.Payload.(type) {
	case *SAPPReply:
		*p = SAPPReply{}
		sappPool.Put(p)
	case *DCPPReply:
		*p = DCPPReply{}
		dcppPool.Put(p)
	}
	*m = ReplyMsg{}
	replyPool.Put(m)
}

// ClonePooled returns an independent pooled copy, for runtimes that
// duplicate in-flight messages (the simulated network's DuplicateP).
func (m *ProbeMsg) ClonePooled() any {
	c := probePool.Get().(*ProbeMsg)
	*c = *m
	return c
}

// ClonePooled deep-copies the reply, including a pooled payload.
func (m *ReplyMsg) ClonePooled() any {
	c := replyPool.Get().(*ReplyMsg)
	*c = *m
	switch p := m.Payload.(type) {
	case *SAPPReply:
		c.Payload = AcquireSAPPReply(p.ProbeCount, p.LastProbers)
	case *DCPPReply:
		c.Payload = AcquireDCPPReply(p.Wait)
	}
	return c
}

// Recycle returns a pooled message form to its pool. It accepts any
// message and ignores plain value forms, so runtimes can call it
// unconditionally after finishing a delivery.
func Recycle(msg Message) {
	if r, ok := msg.(interface{ Recycle() }); ok {
		r.Recycle()
	}
}

// Flatten converts a pooled message form into its plain value form
// (pointer payloads included), leaving the pooled original untouched.
// Test doubles and encoders use it to keep working with value semantics.
func Flatten(msg Message) Message {
	switch m := msg.(type) {
	case *ProbeMsg:
		return *m
	case *ReplyMsg:
		v := *m
		switch p := m.Payload.(type) {
		case *SAPPReply:
			v.Payload = *p
		case *DCPPReply:
			v.Payload = *p
		}
		return v
	default:
		return msg
	}
}

// Env is an engine's window on the world, implemented by the simulation
// runtime (virtual time, simulated network) and the UDP runtime (wall
// clock, sockets).
//
// Each engine owns exactly one alarm slot: SetAlarm replaces any pending
// expiry, and the runtime calls the engine's OnAlarm when it fires. The
// protocols are designed to need at most one outstanding timer.
type Env interface {
	// Now returns the current time as an offset from the runtime's epoch.
	Now() time.Duration
	// Send transmits a message. Delivery is best-effort: messages may be
	// lost, reordered or duplicated.
	Send(to ident.NodeID, msg Message)
	// SetAlarm schedules the engine's OnAlarm callback at time at,
	// replacing any pending alarm.
	SetAlarm(at time.Duration)
	// StopAlarm cancels any pending alarm.
	StopAlarm()
}
