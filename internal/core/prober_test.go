package core

import (
	"testing"
	"time"

	"presence/internal/ident"
)

// fakeEnv is a hand-driven Env for engine unit tests.
type fakeEnv struct {
	now      time.Duration
	sent     []sentMsg
	alarmAt  time.Duration
	alarmSet bool
}

type sentMsg struct {
	to  ident.NodeID
	msg Message
}

func (e *fakeEnv) Now() time.Duration { return e.now }

func (e *fakeEnv) Send(to ident.NodeID, msg Message) {
	// Engines send pooled pointer forms on the hot path; keep the value
	// form so assertions stay simple, and recycle like a real runtime.
	e.sent = append(e.sent, sentMsg{to: to, msg: Flatten(msg)})
	Recycle(msg)
}

func (e *fakeEnv) SetAlarm(at time.Duration) {
	e.alarmAt, e.alarmSet = at, true
}

func (e *fakeEnv) StopAlarm() { e.alarmSet = false }

// fireAlarm advances time to the pending alarm and invokes fn.
func (e *fakeEnv) fireAlarm(t *testing.T, fn func()) {
	t.Helper()
	if !e.alarmSet {
		t.Fatal("no alarm pending")
	}
	e.now = e.alarmAt
	e.alarmSet = false
	fn()
}

func (e *fakeEnv) lastProbe(t *testing.T) ProbeMsg {
	t.Helper()
	if len(e.sent) == 0 {
		t.Fatal("nothing sent")
	}
	m, ok := e.sent[len(e.sent)-1].msg.(ProbeMsg)
	if !ok {
		t.Fatalf("last message is %T, want ProbeMsg", e.sent[len(e.sent)-1].msg)
	}
	return m
}

// fixedPolicy returns a constant delay and records the results it saw.
type fixedPolicy struct {
	delay   time.Duration
	results []CycleResult
}

func (p *fixedPolicy) NextDelay(res CycleResult) time.Duration {
	p.results = append(p.results, res)
	return p.delay
}

// recListener records presence events.
type recListener struct {
	alive []CycleResult
	lost  []time.Duration
	byes  []time.Duration
}

func (l *recListener) DeviceAlive(_ ident.NodeID, res CycleResult) { l.alive = append(l.alive, res) }
func (l *recListener) DeviceLost(_ ident.NodeID, at time.Duration) { l.lost = append(l.lost, at) }
func (l *recListener) DeviceBye(_ ident.NodeID, at time.Duration)  { l.byes = append(l.byes, at) }

func newTestProber(t *testing.T, env *fakeEnv, policy DelayPolicy, lst Listener) *Prober {
	t.Helper()
	p, err := NewProber(ProberOptions{
		ID:       7,
		Device:   1,
		Env:      env,
		Policy:   policy,
		Listener: lst,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProberOptionValidation(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{}
	cases := []struct {
		name string
		opts ProberOptions
	}{
		{"missing id", ProberOptions{Device: 1, Env: env, Policy: policy}},
		{"missing device", ProberOptions{ID: 7, Env: env, Policy: policy}},
		{"missing env", ProberOptions{ID: 7, Device: 1, Policy: policy}},
		{"missing policy", ProberOptions{ID: 7, Device: 1, Env: env}},
		{"bad retransmit", ProberOptions{ID: 7, Device: 1, Env: env, Policy: policy,
			Retransmit: RetransmitConfig{FirstTimeout: -1, RetryTimeout: 1, MaxRetransmits: 1}}},
	}
	for _, c := range cases {
		if _, err := NewProber(c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRetransmitConfigDefaults(t *testing.T) {
	c := DefaultRetransmit()
	if c.FirstTimeout != 22*time.Millisecond || c.RetryTimeout != 21*time.Millisecond || c.MaxRetransmits != 3 {
		t.Fatalf("defaults = %+v, want paper values", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// TOF + 3·TOS = 85 ms.
	if got := c.WorstCaseDetection(); got != 85*time.Millisecond {
		t.Fatalf("WorstCaseDetection = %v, want 85ms", got)
	}
}

func TestStartSendsFirstProbe(t *testing.T) {
	env := &fakeEnv{now: time.Second}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, nil)
	p.Start()
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(env.sent))
	}
	probe := env.lastProbe(t)
	if probe.From != 7 || probe.Cycle != 1 || probe.Attempt != 0 {
		t.Fatalf("probe = %+v", probe)
	}
	if env.sent[0].to != 1 {
		t.Fatalf("probe sent to %v, want device 1", env.sent[0].to)
	}
	if !env.alarmSet || env.alarmAt != time.Second+DefaultFirstTimeout {
		t.Fatalf("alarm at %v (set=%v), want TOF after start", env.alarmAt, env.alarmSet)
	}
}

func TestSuccessfulCycleSchedulesNext(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: 2 * time.Second}
	lst := &recListener{}
	p := newTestProber(t, env, policy, lst)
	p.Start()
	env.now = 10 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if len(lst.alive) != 1 {
		t.Fatalf("alive events = %d, want 1", len(lst.alive))
	}
	res := lst.alive[0]
	if res.SentAt != 0 || res.RepliedAt != 10*time.Millisecond || res.Attempts != 1 {
		t.Fatalf("result = %+v", res)
	}
	if !env.alarmSet || env.alarmAt != 10*time.Millisecond+2*time.Second {
		t.Fatalf("next cycle alarm at %v", env.alarmAt)
	}
	// Firing the wait alarm starts cycle 2.
	env.fireAlarm(t, p.OnAlarm)
	probe := env.lastProbe(t)
	if probe.Cycle != 2 || probe.Attempt != 0 {
		t.Fatalf("second cycle probe = %+v", probe)
	}
	if st := p.Stats(); st.CyclesOK != 1 || st.ProbesSent != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetransmissionTimeouts(t *testing.T) {
	env := &fakeEnv{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, nil)
	p.Start()
	// First timeout after TOF, then TOS after each retransmission.
	env.fireAlarm(t, p.OnAlarm)
	if got := env.lastProbe(t); got.Attempt != 1 {
		t.Fatalf("attempt after first timeout = %d, want 1", got.Attempt)
	}
	if env.alarmAt != env.now+DefaultRetryTimeout {
		t.Fatalf("retry alarm at %v, want TOS after retransmit", env.alarmAt)
	}
	env.fireAlarm(t, p.OnAlarm)
	env.fireAlarm(t, p.OnAlarm)
	if got := env.lastProbe(t); got.Attempt != 3 {
		t.Fatalf("attempt = %d, want 3", got.Attempt)
	}
	if st := p.Stats(); st.ProbesSent != 4 || st.Retransmits != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeviceLostAfterAllRetransmits(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, lst)
	p.Start()
	for i := 0; i < 4; i++ { // TOF + 3 retransmission timeouts
		env.fireAlarm(t, p.OnAlarm)
	}
	if len(lst.lost) != 1 {
		t.Fatalf("lost events = %d, want 1", len(lst.lost))
	}
	// Detection at TOF + 3·TOS after start.
	want := DefaultFirstTimeout + 3*DefaultRetryTimeout
	if lst.lost[0] != want {
		t.Fatalf("lost at %v, want %v", lst.lost[0], want)
	}
	if !p.Stopped() {
		t.Fatal("prober must stop after declaring loss")
	}
	if env.alarmSet {
		t.Fatal("no alarm may be pending after loss")
	}
	if st := p.Stats(); st.CyclesFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplyToRetransmissionUsesItsSendTime(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p := newTestProber(t, env, policy, nil)
	p.Start()
	env.fireAlarm(t, p.OnAlarm) // attempt 1 sent at TOF
	retransmitAt := env.now
	env.now += 5 * time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 1, Payload: EmptyReply{}})
	if len(policy.results) != 1 {
		t.Fatal("policy not consulted")
	}
	res := policy.results[0]
	if res.SentAt != retransmitAt {
		t.Fatalf("SentAt = %v, want retransmission time %v", res.SentAt, retransmitAt)
	}
	if res.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Attempts)
	}
}

func TestLateReplyToEarlierAttemptAccepted(t *testing.T) {
	// The reply to attempt 0 arrives after attempt 1 was sent: still the
	// current cycle, so it completes the cycle using attempt 0's send
	// time.
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p := newTestProber(t, env, policy, nil)
	p.Start()
	env.fireAlarm(t, p.OnAlarm) // attempt 1
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if len(policy.results) != 1 {
		t.Fatal("late reply to earlier attempt rejected")
	}
	if policy.results[0].SentAt != 0 {
		t.Fatalf("SentAt = %v, want attempt-0 send time 0", policy.results[0].SentAt)
	}
}

func TestStaleCycleReplyIgnored(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p := newTestProber(t, env, policy, nil)
	p.Start()
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	env.fireAlarm(t, p.OnAlarm) // start cycle 2
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if len(policy.results) != 1 {
		t.Fatalf("policy consulted %d times, want 1 (stale cycle-1 reply must be dropped)", len(policy.results))
	}
	if st := p.Stats(); st.StaleReplies != 1 {
		t.Fatalf("StaleReplies = %d, want 1", st.StaleReplies)
	}
}

func TestDuplicateReplyIgnoredWhileWaiting(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p := newTestProber(t, env, policy, nil)
	p.Start()
	reply := ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}}
	p.OnReply(reply)
	p.OnReply(reply) // duplicate
	if len(policy.results) != 1 {
		t.Fatalf("policy consulted %d times, want 1", len(policy.results))
	}
	if st := p.Stats(); st.StaleReplies != 1 {
		t.Fatalf("StaleReplies = %d, want 1", st.StaleReplies)
	}
}

func TestFutureAttemptReplyIgnored(t *testing.T) {
	// A reply claiming an attempt we never sent (corrupt or forged) must
	// not index past the send-time array.
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p := newTestProber(t, env, policy, nil)
	p.Start()
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 3, Payload: EmptyReply{}})
	if len(policy.results) != 0 {
		t.Fatal("reply for unsent attempt accepted")
	}
}

func TestNegativePolicyDelayClamped(t *testing.T) {
	env := &fakeEnv{}
	p := newTestProber(t, env, &fixedPolicy{delay: -5 * time.Second}, nil)
	p.Start()
	env.now = time.Millisecond
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if env.alarmAt != time.Millisecond {
		t.Fatalf("alarm at %v, want now (clamped zero delay)", env.alarmAt)
	}
}

func TestObserverSeesChosenDelay(t *testing.T) {
	env := &fakeEnv{}
	var observed []time.Duration
	p, err := NewProber(ProberOptions{
		ID: 7, Device: 1, Env: env, Policy: &fixedPolicy{delay: 3 * time.Second},
		Observer: func(_ time.Duration, d time.Duration) { observed = append(observed, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if len(observed) != 1 || observed[0] != 3*time.Second {
		t.Fatalf("observed = %v", observed)
	}
}

func TestStopCancelsAlarmAndRestartResumes(t *testing.T) {
	env := &fakeEnv{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, nil)
	p.Start()
	p.Stop()
	if env.alarmSet {
		t.Fatal("Stop left an alarm pending")
	}
	if !p.Stopped() {
		t.Fatal("not stopped")
	}
	p.OnAlarm() // spurious late alarm: must be ignored
	sent := len(env.sent)
	p.Start()
	if len(env.sent) != sent+1 {
		t.Fatal("restart did not send a probe")
	}
	if env.lastProbe(t).Cycle != 2 {
		t.Fatalf("restart cycle = %d, want 2", env.lastProbe(t).Cycle)
	}
}

func TestStartWhileRunningIsNoOp(t *testing.T) {
	env := &fakeEnv{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, nil)
	p.Start()
	p.Start()
	if len(env.sent) != 1 {
		t.Fatalf("double Start sent %d probes, want 1", len(env.sent))
	}
}

func TestByeStopsProber(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, lst)
	p.Start()
	env.now = 5 * time.Millisecond
	p.OnBye(ByeMsg{From: 1})
	if len(lst.byes) != 1 || lst.byes[0] != 5*time.Millisecond {
		t.Fatalf("bye events = %v", lst.byes)
	}
	if !p.Stopped() || env.alarmSet {
		t.Fatal("bye must stop the prober and cancel the alarm")
	}
	// Bye from an unrelated device is ignored.
	p2 := newTestProber(t, env, &fixedPolicy{delay: time.Second}, lst)
	p2.Start()
	p2.OnBye(ByeMsg{From: 99})
	if p2.Stopped() {
		t.Fatal("bye from unrelated device stopped the prober")
	}
}

func TestRestartAfterLost(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p := newTestProber(t, env, &fixedPolicy{delay: time.Second}, lst)
	p.Start()
	for i := 0; i < 4; i++ {
		env.fireAlarm(t, p.OnAlarm)
	}
	if len(lst.lost) != 1 {
		t.Fatal("device not lost")
	}
	p.Start()
	if p.Stopped() {
		t.Fatal("restart failed")
	}
	p.OnReply(ReplyMsg{From: 1, Cycle: 2, Attempt: 0, Payload: EmptyReply{}})
	if st := p.Stats(); st.CyclesOK != 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestZeroRetransmitsLostAfterFirstTimeout(t *testing.T) {
	env := &fakeEnv{}
	lst := &recListener{}
	p, err := NewProber(ProberOptions{
		ID: 7, Device: 1, Env: env, Policy: &fixedPolicy{delay: time.Second}, Listener: lst,
		Retransmit: RetransmitConfig{FirstTimeout: 10 * time.Millisecond, RetryTimeout: 5 * time.Millisecond, MaxRetransmits: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	env.fireAlarm(t, p.OnAlarm)
	if len(lst.lost) != 1 {
		t.Fatal("not lost after single timeout with MaxRetransmits=0")
	}
}

func TestFirstCycleOffsetsCycleSpace(t *testing.T) {
	env := &fakeEnv{}
	policy := &fixedPolicy{delay: time.Second}
	p, err := NewProber(ProberOptions{
		ID: 7, Device: 1, Env: env, Policy: policy, FirstCycle: 0x8000_0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	if got := env.lastProbe(t).Cycle; got != 0x8000_0001 {
		t.Fatalf("first cycle = %#x, want FirstCycle+1", got)
	}
	// A reply from the un-offset cycle space is stale, not a completion.
	p.OnReply(ReplyMsg{From: 1, Cycle: 1, Attempt: 0, Payload: EmptyReply{}})
	if len(policy.results) != 0 {
		t.Fatal("reply from a foreign cycle space accepted")
	}
	p.OnReply(ReplyMsg{From: 1, Cycle: 0x8000_0001, Attempt: 0, Payload: EmptyReply{}})
	if len(policy.results) != 1 {
		t.Fatal("reply in the offset cycle space rejected")
	}
	env.fireAlarm(t, p.OnAlarm)
	if got := env.lastProbe(t).Cycle; got != 0x8000_0002 {
		t.Fatalf("second cycle = %#x, want monotonic from the offset", got)
	}
}

func TestProberStateString(t *testing.T) {
	for s, want := range map[proberState]string{
		stateIdle: "idle", stateAwaitReply: "await-reply",
		stateWaiting: "waiting", stateStopped: "stopped",
		proberState(99): "proberState(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("state %d String() = %q, want %q", int(s), got, want)
		}
	}
}

func BenchmarkProberCycle(b *testing.B) {
	env := &fakeEnv{}
	p, err := NewProber(ProberOptions{ID: 7, Device: 1, Env: env, Policy: &fixedPolicy{delay: 0}})
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.sent = env.sent[:0]
		p.OnReply(ReplyMsg{From: 1, Cycle: p.cycle, Attempt: 0, Payload: EmptyReply{}})
		p.OnAlarm() // start next cycle
	}
}
