package overlay

import (
	"sort"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

type fakeEnv struct {
	now    time.Duration
	sent   []core.Message
	sentTo []ident.NodeID
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Send(to ident.NodeID, m core.Message) {
	e.sent = append(e.sent, m)
	e.sentTo = append(e.sentTo, to)
}
func (e *fakeEnv) SetAlarm(time.Duration) {}
func (e *fakeEnv) StopAlarm()             {}

func newManager(t *testing.T, id ident.NodeID, env *fakeEnv, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(id, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	env := &fakeEnv{}
	if _, err := NewManager(ident.None, env, Config{}); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewManager(5, nil, Config{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewManager(5, env, Config{MaxNeighbors: -1}); err == nil {
		t.Error("negative MaxNeighbors accepted")
	}
	if _, err := NewManager(5, env, Config{MaxSeen: -1}); err == nil {
		t.Error("negative MaxSeen accepted")
	}
}

func TestObserveReplyHarvestsNeighbors(t *testing.T) {
	env := &fakeEnv{}
	m := newManager(t, 5, env, Config{})
	m.ObserveReply(core.SAPPReply{ProbeCount: 1, LastProbers: [2]ident.NodeID{7, 9}})
	got := m.Neighbors()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("neighbors = %v, want [7 9]", got)
	}
	// Own id and invalid ids are skipped.
	m.ObserveReply(core.SAPPReply{LastProbers: [2]ident.NodeID{5, ident.None}})
	if len(m.Neighbors()) != 2 {
		t.Fatalf("neighbors grew on self/invalid hint: %v", m.Neighbors())
	}
	// DCPP payloads carry no hints.
	m.ObserveReply(core.DCPPReply{Wait: time.Second})
	if len(m.Neighbors()) != 2 {
		t.Fatal("DCPP payload changed the neighbour set")
	}
}

func TestNeighborEviction(t *testing.T) {
	env := &fakeEnv{}
	m := newManager(t, 5, env, Config{MaxNeighbors: 2})
	m.AddNeighbor(10)
	m.AddNeighbor(11)
	m.AddNeighbor(12) // evicts 10, the oldest
	got := m.Neighbors()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("neighbors = %v, want [11 12]", got)
	}
}

func TestAnnounceLeaveFloodsToNeighbors(t *testing.T) {
	env := &fakeEnv{now: 3 * time.Second}
	var informedAt time.Duration
	m := newManager(t, 5, env, Config{OnInformed: func(_ ident.NodeID, at time.Duration) { informedAt = at }})
	m.AddNeighbor(7)
	m.AddNeighbor(9)
	m.AnnounceLeave(1)
	if len(env.sent) != 2 {
		t.Fatalf("sent %d notices, want 2", len(env.sent))
	}
	n := env.sent[0].(core.LeaveNotice)
	if n.Device != 1 || n.Origin != 5 || n.TTL != DefaultTTL {
		t.Fatalf("notice = %+v", n)
	}
	if informedAt != 3*time.Second {
		t.Fatalf("OnInformed at %v", informedAt)
	}
	if at, ok := m.Informed(1); !ok || at != 3*time.Second {
		t.Fatalf("Informed = %v, %v", at, ok)
	}
	// Re-announcing is a no-op.
	m.AnnounceLeave(1)
	if len(env.sent) != 2 {
		t.Fatal("duplicate announce flooded again")
	}
}

func TestOnLeaveNoticeForwardsOnce(t *testing.T) {
	env := &fakeEnv{}
	informed := 0
	m := newManager(t, 5, env, Config{OnInformed: func(ident.NodeID, time.Duration) { informed++ }})
	m.AddNeighbor(7)
	m.AddNeighbor(9)
	n := core.LeaveNotice{Device: 1, Origin: 2, Seq: 1, TTL: 4}
	m.OnLeaveNotice(7, n)
	if informed != 1 {
		t.Fatalf("informed %d times, want 1", informed)
	}
	// Forwarded to 9 only (not back to sender 7, not to origin).
	if len(env.sentTo) != 1 || env.sentTo[0] != 9 {
		t.Fatalf("forwarded to %v, want [9]", env.sentTo)
	}
	fwd := env.sent[0].(core.LeaveNotice)
	if fwd.TTL != 3 {
		t.Fatalf("forwarded TTL = %d, want decremented 3", fwd.TTL)
	}
	// Duplicate: dropped entirely.
	m.OnLeaveNotice(9, n)
	if len(env.sent) != 1 || informed != 1 {
		t.Fatal("duplicate notice was processed")
	}
}

func TestOnLeaveNoticeTTLExhausted(t *testing.T) {
	env := &fakeEnv{}
	m := newManager(t, 5, env, Config{})
	m.AddNeighbor(9)
	m.OnLeaveNotice(7, core.LeaveNotice{Device: 1, Origin: 2, Seq: 1, TTL: 1})
	if len(env.sent) != 0 {
		t.Fatal("TTL-1 notice was forwarded")
	}
	// Still recorded as informed.
	if _, ok := m.Informed(1); !ok {
		t.Fatal("TTL-exhausted notice did not inform")
	}
}

func TestSenderBecomesNeighbor(t *testing.T) {
	env := &fakeEnv{}
	m := newManager(t, 5, env, Config{})
	m.OnLeaveNotice(7, core.LeaveNotice{Device: 1, Origin: 2, Seq: 1, TTL: 3})
	if len(m.Neighbors()) != 1 || m.Neighbors()[0] != 7 {
		t.Fatalf("neighbors = %v, want sender [7]", m.Neighbors())
	}
}

func TestSeenEviction(t *testing.T) {
	env := &fakeEnv{}
	m := newManager(t, 5, env, Config{MaxSeen: 2})
	for seq := uint32(1); seq <= 3; seq++ {
		m.OnLeaveNotice(7, core.LeaveNotice{Device: ident.NodeID(seq + 100), Origin: 2, Seq: seq, TTL: 1})
	}
	// Seq 1 was evicted from the dedupe memory: replaying it is treated
	// as new (only the dedupe key set is bounded, informedness persists).
	before := m.noticesDropped
	m.OnLeaveNotice(7, core.LeaveNotice{Device: 101, Origin: 2, Seq: 1, TTL: 1})
	if m.noticesDropped != before {
		t.Fatal("evicted key still deduplicated")
	}
}

func TestFloodDissemination(t *testing.T) {
	// Wire three managers in a line 5–6–7 through a tiny router and
	// check a notice from 5 reaches 7 via 6.
	envs := map[ident.NodeID]*fakeEnv{5: {}, 6: {}, 7: {}}
	mgrs := map[ident.NodeID]*Manager{}
	for id, env := range envs {
		mgrs[id] = newManager(t, id, env, Config{})
	}
	mgrs[5].AddNeighbor(6)
	mgrs[6].AddNeighbor(7)
	mgrs[5].AnnounceLeave(1)
	// Route queued messages until quiescent.
	for moved := true; moved; {
		moved = false
		for id, env := range envs {
			for i := 0; i < len(env.sent); i++ {
				notice, ok := env.sent[i].(core.LeaveNotice)
				if !ok {
					continue
				}
				to := env.sentTo[i]
				mgrs[to].OnLeaveNotice(id, notice)
				moved = true
			}
			env.sent = env.sent[:0]
			env.sentTo = env.sentTo[:0]
		}
	}
	for id, m := range mgrs {
		if _, ok := m.Informed(1); !ok {
			t.Fatalf("CP %v never informed", id)
		}
	}
}
