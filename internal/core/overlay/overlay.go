// Package overlay implements the leave-dissemination phase the paper
// describes but does not analyse: "the CPs are dynamically organized in
// an overlay network by letting the device, on each probe, return the ids
// of the last two (distinct) processes that probed it. On detecting the
// absence of a device, the CP uses this overlay network to inform all CPs
// about the leave of the device rapidly."
//
// Each CP accumulates overlay neighbours from the SAPP replies it sees
// and floods a LeaveNotice (TTL-bounded, de-duplicated) when it detects a
// device's absence or receives a notice it has not seen before.
package overlay

import (
	"fmt"
	"sort"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// DefaultTTL bounds flooding depth. With each node knowing its last two
// probers the overlay diameter is small; 8 hops covers hundreds of CPs.
const DefaultTTL = 8

// DefaultMaxNeighbors bounds per-CP overlay state.
const DefaultMaxNeighbors = 16

// Config parameterises a Manager.
type Config struct {
	// TTL is the hop budget on flooded notices. Zero means DefaultTTL.
	TTL uint8
	// MaxNeighbors bounds the neighbour set (oldest evicted). Zero means
	// DefaultMaxNeighbors.
	MaxNeighbors int
	// MaxSeen bounds the duplicate-suppression memory. Zero means 1024.
	MaxSeen int
	// OnInformed, if non-nil, is invoked the first time this CP learns —
	// by local detection or by notice — that a device left.
	OnInformed func(device ident.NodeID, at time.Duration)
}

type noticeKey struct {
	device ident.NodeID
	origin ident.NodeID
	seq    uint32
}

// Manager is the per-CP overlay state machine. Like all engines it is
// single-threaded, driven by its runtime.
type Manager struct {
	id  ident.NodeID
	env core.Env
	cfg Config

	neighbors      map[ident.NodeID]int // id -> recency counter
	neighborClock  int
	seen           map[noticeKey]struct{}
	seenOrder      []noticeKey
	informed       map[ident.NodeID]time.Duration
	seq            uint32
	noticesSent    uint64
	noticesDropped uint64
}

// NewManager returns an overlay manager for CP id.
func NewManager(id ident.NodeID, env core.Env, cfg Config) (*Manager, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("overlay: invalid node id")
	}
	if env == nil {
		return nil, fmt.Errorf("overlay: nil env")
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxNeighbors == 0 {
		cfg.MaxNeighbors = DefaultMaxNeighbors
	}
	if cfg.MaxNeighbors < 1 {
		return nil, fmt.Errorf("overlay: MaxNeighbors %d must be positive", cfg.MaxNeighbors)
	}
	if cfg.MaxSeen == 0 {
		cfg.MaxSeen = 1024
	}
	if cfg.MaxSeen < 1 {
		return nil, fmt.Errorf("overlay: MaxSeen %d must be positive", cfg.MaxSeen)
	}
	return &Manager{
		id:        id,
		env:       env,
		cfg:       cfg,
		neighbors: make(map[ident.NodeID]int),
		seen:      make(map[noticeKey]struct{}),
		informed:  make(map[ident.NodeID]time.Duration),
	}, nil
}

// ObserveReply harvests overlay neighbours from a SAPP reply payload.
// Non-SAPP payloads are ignored (DCPP replies carry no overlay hint).
func (m *Manager) ObserveReply(payload core.Payload) {
	var probers [2]ident.NodeID
	switch rep := payload.(type) {
	case core.SAPPReply:
		probers = rep.LastProbers
	case *core.SAPPReply: // pooled form; valid only until this call returns
		probers = rep.LastProbers
	default:
		return
	}
	for _, id := range probers {
		if id.Valid() && id != m.id {
			m.addNeighbor(id)
		}
	}
}

// AddNeighbor inserts an explicitly known peer (e.g. from configuration).
func (m *Manager) AddNeighbor(id ident.NodeID) {
	if id.Valid() && id != m.id {
		m.addNeighbor(id)
	}
}

func (m *Manager) addNeighbor(id ident.NodeID) {
	m.neighborClock++
	if _, exists := m.neighbors[id]; !exists && len(m.neighbors) >= m.cfg.MaxNeighbors {
		oldest, oldestAt := ident.None, int(^uint(0)>>1)
		for n, at := range m.neighbors {
			if at < oldestAt {
				oldest, oldestAt = n, at
			}
		}
		delete(m.neighbors, oldest)
	}
	m.neighbors[id] = m.neighborClock
}

// Neighbors returns the current overlay neighbour set.
func (m *Manager) Neighbors() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(m.neighbors))
	for id := range m.neighbors {
		out = append(out, id)
	}
	return out
}

// Informed returns when this CP learned that the device left, if it has.
func (m *Manager) Informed(device ident.NodeID) (time.Duration, bool) {
	at, ok := m.informed[device]
	return at, ok
}

// NoticesSent returns the number of LeaveNotice messages transmitted.
func (m *Manager) NoticesSent() uint64 { return m.noticesSent }

// AnnounceLeave floods a leave notice after this CP locally detected the
// device's absence. Announcing a device already known to be gone is a
// no-op.
func (m *Manager) AnnounceLeave(device ident.NodeID) {
	if _, done := m.informed[device]; done {
		return
	}
	now := m.env.Now()
	m.informed[device] = now
	m.notify(device, now)
	m.seq++
	n := core.LeaveNotice{Device: device, Origin: m.id, Seq: m.seq, TTL: m.cfg.TTL}
	m.markSeen(noticeKey{device, m.id, m.seq})
	m.flood(n, ident.None)
}

// OnLeaveNotice handles a flooded notice: record, forward once, dedupe.
func (m *Manager) OnLeaveNotice(from ident.NodeID, n core.LeaveNotice) {
	key := noticeKey{n.Device, n.Origin, n.Seq}
	if _, dup := m.seen[key]; dup {
		m.noticesDropped++
		return
	}
	m.markSeen(key)
	if from.Valid() {
		m.addNeighbor(from) // the sender is clearly alive and reachable
	}
	if _, done := m.informed[n.Device]; !done {
		now := m.env.Now()
		m.informed[n.Device] = now
		m.notify(n.Device, now)
	}
	if n.TTL <= 1 {
		return
	}
	n.TTL--
	m.flood(n, from)
}

func (m *Manager) notify(device ident.NodeID, at time.Duration) {
	if m.cfg.OnInformed != nil {
		m.cfg.OnInformed(device, at)
	}
}

func (m *Manager) flood(n core.LeaveNotice, except ident.NodeID) {
	// Map iteration order is random at the language level; flood in
	// sorted id order so simulation runs replay deterministically.
	ids := make([]ident.NodeID, 0, len(m.neighbors))
	for id := range m.neighbors {
		if id == except || id == n.Origin {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.noticesSent++
		m.env.Send(id, n)
	}
}

// markSeen records a notice key with FIFO eviction.
func (m *Manager) markSeen(k noticeKey) {
	if len(m.seenOrder) >= m.cfg.MaxSeen {
		drop := m.seenOrder[0]
		m.seenOrder = m.seenOrder[1:]
		delete(m.seen, drop)
	}
	m.seen[k] = struct{}{}
	m.seenOrder = append(m.seenOrder, k)
}
