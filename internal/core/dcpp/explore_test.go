package dcpp

import (
	"fmt"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Bounded exhaustive exploration ("poor man's model checking", in the
// spirit of the paper's MODEST/MÖBIUS formal-analysis chain): enumerate
// EVERY adversarial schedule of message deliveries, message drops and
// timer firings up to a depth bound for one control point probing one
// DCPP device, and assert the protocol invariants in every reachable
// state. The adversary controls the network completely (arbitrary
// delay, reordering, loss), which subsumes simnet's randomised models.

// chaosWorld couples a Prober and a Device directly, with the test
// acting as the network and the clock.
type chaosWorld struct {
	t *testing.T

	now      time.Duration
	pending  []chaosMsg // in-flight messages, any of which may deliver or drop next
	cpAlarm  alarmSlot
	devAlarm alarmSlot

	cp  *core.Prober
	dev *Device

	// invariant bookkeeping
	aliveEvents int
	lostEvents  int
	probesSent  int
	lastFresh   time.Duration
	haveFresh   bool
	devNTPrev   time.Duration
}

type chaosMsg struct {
	toDevice bool
	msg      core.Message
}

type alarmSlot struct {
	at  time.Duration
	set bool
}

// cpEnv and devEnv adapt the chaosWorld to core.Env for each engine.
type cpEnv struct{ w *chaosWorld }

func (e cpEnv) Now() time.Duration { return e.w.now }
func (e cpEnv) Send(_ ident.NodeID, m core.Message) {
	e.w.probesSent++
	e.w.pending = append(e.w.pending, chaosMsg{toDevice: true, msg: core.Flatten(m)})
	core.Recycle(m)
}
func (e cpEnv) SetAlarm(at time.Duration) { e.w.cpAlarm = alarmSlot{at: at, set: true} }
func (e cpEnv) StopAlarm()                { e.w.cpAlarm.set = false }

type devEnv struct{ w *chaosWorld }

func (e devEnv) Now() time.Duration { return e.w.now }
func (e devEnv) Send(_ ident.NodeID, m core.Message) {
	e.w.pending = append(e.w.pending, chaosMsg{toDevice: false, msg: core.Flatten(m)})
	core.Recycle(m)
}
func (e devEnv) SetAlarm(at time.Duration) { e.w.devAlarm = alarmSlot{at: at, set: true} }
func (e devEnv) StopAlarm()                { e.w.devAlarm.set = false }

type chaosListener struct{ w *chaosWorld }

func (l chaosListener) DeviceAlive(ident.NodeID, core.CycleResult) { l.w.aliveEvents++ }
func (l chaosListener) DeviceLost(ident.NodeID, time.Duration)     { l.w.lostEvents++ }
func (l chaosListener) DeviceBye(ident.NodeID, time.Duration)      {}

// newChaosWorld builds a fresh CP+device pair.
func newChaosWorld(t *testing.T) *chaosWorld {
	t.Helper()
	w := &chaosWorld{t: t}
	dev, err := NewDevice(1, devEnv{w}, DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.dev = dev
	cp, err := core.NewProber(core.ProberOptions{
		ID:       2,
		Device:   1,
		Env:      cpEnv{w},
		Policy:   mustPolicy(t),
		Listener: chaosListener{w},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.cp = cp
	return w
}

func mustPolicy(t *testing.T) *Policy {
	t.Helper()
	p, err := NewPolicy(PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// choices returns the number of adversary moves available.
// Moves: for each pending message: deliver it (i*2) or drop it (i*2+1);
// then fire the CP alarm; then fire the device alarm.
func (w *chaosWorld) choices() int {
	n := len(w.pending) * 2
	if w.cpAlarm.set {
		n++
	}
	if w.devAlarm.set {
		n++
	}
	return n
}

// apply executes adversary move c and checks the invariants.
func (w *chaosWorld) apply(c int) {
	switch {
	case c < len(w.pending)*2:
		i, drop := c/2, c%2 == 1
		m := w.pending[i]
		w.pending = append(w.pending[:i], w.pending[i+1:]...)
		if drop {
			break
		}
		// Delivery "now" is always legal: the adversary chose the delay.
		if m.toDevice {
			probe, ok := m.msg.(core.ProbeMsg)
			if !ok {
				w.t.Fatalf("CP sent %T to the device", m.msg)
			}
			before := w.dev.NextSlot()
			dupsBefore := w.dev.DupReplies()
			w.dev.OnProbe(probe.From, probe)
			w.checkDeviceInvariants(before, dupsBefore)
		} else {
			switch mm := m.msg.(type) {
			case core.ReplyMsg:
				w.cp.OnReply(mm)
			case core.ByeMsg:
				w.cp.OnBye(mm)
			default:
				w.t.Fatalf("device sent %T to the CP", m.msg)
			}
		}
	default:
		c -= len(w.pending) * 2
		if w.cpAlarm.set {
			if c == 0 {
				w.fire(&w.cpAlarm, w.cp.OnAlarm)
				break
			}
			c--
		}
		if w.devAlarm.set && c == 0 {
			w.fire(&w.devAlarm, w.dev.OnAlarm)
			break
		}
		w.t.Fatal("invalid adversary move")
	}
	w.checkGlobalInvariants()
}

func (w *chaosWorld) fire(a *alarmSlot, onAlarm func()) {
	if a.at > w.now {
		w.now = a.at
	}
	a.set = false
	onAlarm()
}

func (w *chaosWorld) checkDeviceInvariants(slotBefore time.Duration, dupsBefore uint64) {
	nt := w.dev.NextSlot()
	if nt < slotBefore {
		w.t.Fatalf("device schedule moved backwards: %v -> %v", slotBefore, nt)
	}
	if nt == slotBefore && w.dev.DupReplies() == dupsBefore {
		w.t.Fatal("probe neither claimed a slot nor was deduplicated")
	}
	if nt > slotBefore {
		// A fresh slot: spacing from the previous fresh slot must be
		// ≥ δ_min (invariant (i) of the paper).
		if w.haveFresh && nt-w.lastFresh < DefaultMinGap {
			w.t.Fatalf("fresh slots %v and %v closer than δ_min", w.lastFresh, nt)
		}
		w.lastFresh, w.haveFresh = nt, true
	}
}

func (w *chaosWorld) checkGlobalInvariants() {
	if w.aliveEvents > w.probesSent {
		w.t.Fatalf("more alive events (%d) than probes sent (%d)", w.aliveEvents, w.probesSent)
	}
	if w.lostEvents > 1 {
		w.t.Fatalf("device lost %d times without a restart", w.lostEvents)
	}
	if w.cp.Stopped() && w.cpAlarm.set {
		w.t.Fatal("stopped prober left an alarm pending")
	}
	if len(w.pending) > 16 {
		w.t.Fatalf("unbounded message growth: %d pending", len(w.pending))
	}
}

// replay rebuilds the world and applies the move sequence. It reports
// how many moves were applicable (a prefix may exhaust the choices).
func replay(t *testing.T, seq []int) (*chaosWorld, int) {
	w := newChaosWorld(t)
	w.dev.Start()
	w.cp.Start()
	w.checkGlobalInvariants()
	for i, c := range seq {
		if c >= w.choices() {
			return w, i
		}
		w.apply(c)
	}
	return w, len(seq)
}

// TestExhaustiveInterleavings explores every adversary schedule to the
// depth bound. With the paper's defaults the branching factor is ≈3-4,
// so depth 8 visits on the order of 10⁴–10⁵ distinct executions.
func TestExhaustiveInterleavings(t *testing.T) {
	const depth = 8
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	executions := 0
	var dfs func(prefix []int)
	dfs = func(prefix []int) {
		w, applied := replay(t, prefix)
		if applied < len(prefix) {
			return // prefix infeasible (checked by shorter prefix already)
		}
		executions++
		if len(prefix) == depth {
			return
		}
		n := w.choices()
		for c := 0; c < n; c++ {
			dfs(append(prefix[:len(prefix):len(prefix)], c))
		}
	}
	dfs(nil)
	if executions < 1000 {
		t.Fatalf("explored only %d executions; adversary space unexpectedly small", executions)
	}
	t.Logf("explored %d executions to depth %d with all invariants holding", executions, depth)
}

// TestAdversaryCanStarveButNotBreak: the all-drop schedule must lead to
// exactly one DeviceLost and a fully stopped, alarm-free CP.
func TestAdversaryCanStarveButNotBreak(t *testing.T) {
	w := newChaosWorld(t)
	w.dev.Start()
	w.cp.Start()
	for steps := 0; steps < 64 && !w.cp.Stopped(); steps++ {
		// Drop every pending message, then fire the CP alarm.
		for len(w.pending) > 0 {
			w.apply(1) // drop pending[0]
		}
		if !w.cpAlarm.set {
			break
		}
		w.apply(0) // only move left: fire CP alarm
	}
	if !w.cp.Stopped() {
		t.Fatal("CP survived total message loss")
	}
	if w.lostEvents != 1 {
		t.Fatalf("lost events = %d, want exactly 1", w.lostEvents)
	}
}

// TestExplorationDeterminism: the same move sequence replays to the
// same observable state (a sanity check on the harness itself).
func TestExplorationDeterminism(t *testing.T) {
	seq := []int{0, 0, 0, 2, 0, 0}
	a, na := replay(t, seq)
	b, nb := replay(t, seq)
	if na != nb {
		t.Fatalf("replay lengths differ: %d vs %d", na, nb)
	}
	sa := fmt.Sprintf("%d/%d/%d/%v", a.aliveEvents, a.lostEvents, a.probesSent, a.dev.NextSlot())
	sb := fmt.Sprintf("%d/%d/%d/%v", b.aliveEvents, b.lostEvents, b.probesSent, b.dev.NextSlot())
	if sa != sb {
		t.Fatalf("replays diverged: %s vs %s", sa, sb)
	}
}
