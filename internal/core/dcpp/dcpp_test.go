package dcpp

import (
	"testing"
	"testing/quick"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

type fakeEnv struct {
	now      time.Duration
	sent     []core.Message
	sentTo   []ident.NodeID
	alarmAt  time.Duration
	alarmSet bool
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Send(to ident.NodeID, msg core.Message) {
	// Flatten pooled pointer forms so assertions keep value semantics.
	e.sent = append(e.sent, core.Flatten(msg))
	e.sentTo = append(e.sentTo, to)
	core.Recycle(msg)
}
func (e *fakeEnv) SetAlarm(at time.Duration) { e.alarmAt, e.alarmSet = at, true }
func (e *fakeEnv) StopAlarm()                { e.alarmSet = false }

func (e *fakeEnv) lastWait(t *testing.T) time.Duration {
	t.Helper()
	if len(e.sent) == 0 {
		t.Fatal("nothing sent")
	}
	rep, ok := e.sent[len(e.sent)-1].(core.ReplyMsg)
	if !ok {
		t.Fatalf("last message is %T", e.sent[len(e.sent)-1])
	}
	pl, ok := rep.Payload.(core.DCPPReply)
	if !ok {
		t.Fatalf("payload is %T", rep.Payload)
	}
	return pl.Wait
}

func newDevice(t *testing.T, env *fakeEnv, cfg DeviceConfig) *Device {
	t.Helper()
	d, err := NewDevice(1, env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestDeviceConfigValidation(t *testing.T) {
	env := &fakeEnv{}
	bad := []DeviceConfig{
		{MinGap: 0, MinCPDelay: time.Second},
		{MinGap: time.Second, MinCPDelay: 0},
		{MinGap: -time.Second, MinCPDelay: time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewDevice(1, env, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewDevice(ident.None, env, DefaultDeviceConfig()); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewDevice(1, nil, DefaultDeviceConfig()); err == nil {
		t.Error("nil env accepted")
	}
}

func TestConfigDerivedRates(t *testing.T) {
	cfg := DefaultDeviceConfig()
	if got := cfg.NominalLoad(); got != 10 {
		t.Fatalf("L_nom = %g, want 10", got)
	}
	if got := cfg.MaxCPFrequency(); got != 2 {
		t.Fatalf("f_max = %g, want 2", got)
	}
}

func TestIdleDeviceAssignsMinCPDelay(t *testing.T) {
	// A lone CP probing an idle device must be told to come back after
	// d_min — i.e. it probes at its maximum frequency f_max.
	env := &fakeEnv{now: sec(100)}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 1})
	if got := env.lastWait(t); got != DefaultMinCPDelay {
		t.Fatalf("idle wait = %v, want d_min %v", got, DefaultMinCPDelay)
	}
	if d.NextSlot() != sec(100)+DefaultMinCPDelay {
		t.Fatalf("nt = %v", d.NextSlot())
	}
}

func TestBusyDeviceSpacesSlotsByMinGap(t *testing.T) {
	// Many CPs probing at once: slots must pack δ_min apart, bounding
	// the device load at L_nom.
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	var prev time.Duration
	for i := 0; i < 20; i++ {
		id := ident.NodeID(i + 10)
		d.OnProbe(id, core.ProbeMsg{From: id, Cycle: 1})
		slot := d.NextSlot()
		if i > 0 {
			gap := slot - prev
			if gap < DefaultMinGap {
				t.Fatalf("slot gap %v < δ_min after probe %d", gap, i)
			}
		}
		prev = slot
	}
	// After the backlog exceeds d_min, each new probe adds exactly δ_min.
	if want := DefaultMinCPDelay + 19*DefaultMinGap; d.NextSlot() != want {
		t.Fatalf("nt after 20 probes = %v, want %v", d.NextSlot(), want)
	}
}

func TestWaitNeverBelowMinCPDelay(t *testing.T) {
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	for i := 0; i < 50; i++ {
		id := ident.NodeID(i + 10)
		d.OnProbe(id, core.ProbeMsg{From: id, Cycle: 1})
		if got := env.lastWait(t); got < DefaultMinCPDelay {
			t.Fatalf("wait %v < d_min for probe %d", got, i)
		}
	}
}

func TestIdleGapResetsSchedule(t *testing.T) {
	// Deviation check: after a long idle period the device must hand out
	// d_min again, not an absurd wait growing with idle time.
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 1})
	env.now = sec(3600) // one hour later
	d.OnProbe(8, core.ProbeMsg{From: 8, Cycle: 1})
	if got := env.lastWait(t); got != DefaultMinCPDelay {
		t.Fatalf("wait after idle hour = %v, want d_min", got)
	}
}

func TestDuplicateProbeIsIdempotent(t *testing.T) {
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5, Attempt: 0})
	nt := d.NextSlot()
	firstWait := env.lastWait(t)
	// Retransmission of the same cycle 30 ms later: same slot, shrunken
	// wait, nt unchanged.
	env.now = 30 * time.Millisecond
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5, Attempt: 1})
	if d.NextSlot() != nt {
		t.Fatalf("duplicate probe advanced nt: %v -> %v", nt, d.NextSlot())
	}
	if got, want := env.lastWait(t), firstWait-30*time.Millisecond; got != want {
		t.Fatalf("duplicate wait = %v, want %v", got, want)
	}
	if d.DupReplies() != 1 {
		t.Fatalf("DupReplies = %d, want 1", d.DupReplies())
	}
	// A new cycle from the same CP claims a fresh slot.
	env.now = sec(1)
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 6, Attempt: 0})
	if d.NextSlot() == nt {
		t.Fatal("new cycle did not claim a new slot")
	}
}

func TestDuplicateAfterSlotPassedClampsToZero(t *testing.T) {
	env := &fakeEnv{}
	d := newDevice(t, env, DefaultDeviceConfig())
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5})
	env.now = sec(10) // long after the assigned slot
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5, Attempt: 1})
	if got := env.lastWait(t); got != 0 {
		t.Fatalf("stale duplicate wait = %v, want 0", got)
	}
}

func TestDedupeDisabledTreatsEveryProbeFresh(t *testing.T) {
	env := &fakeEnv{}
	cfg := DefaultDeviceConfig()
	cfg.DedupeTTL = -1
	d := newDevice(t, env, cfg)
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5})
	nt := d.NextSlot()
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 5, Attempt: 1})
	if d.NextSlot() == nt {
		t.Fatal("with dedupe disabled, the duplicate must claim a new slot")
	}
	if d.Entries() != 0 {
		t.Fatalf("Entries = %d, want 0 with dedupe disabled", d.Entries())
	}
	d.Start()
	if env.alarmSet {
		t.Fatal("sweep alarm armed with dedupe disabled")
	}
}

func TestSweepPrunesExpiredEntries(t *testing.T) {
	env := &fakeEnv{}
	cfg := DefaultDeviceConfig()
	cfg.DedupeTTL = time.Second
	d := newDevice(t, env, cfg)
	d.Start()
	if !env.alarmSet || env.alarmAt != time.Second {
		t.Fatalf("sweep alarm at %v (set=%v)", env.alarmAt, env.alarmSet)
	}
	d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: 1})
	d.OnProbe(8, core.ProbeMsg{From: 8, Cycle: 1})
	if d.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", d.Entries())
	}
	env.now = sec(2.5)
	d.OnAlarm()
	if d.Entries() != 0 {
		t.Fatalf("Entries = %d after sweep, want 0", d.Entries())
	}
	if !env.alarmSet || env.alarmAt != sec(3.5) {
		t.Fatalf("sweep not re-armed: at %v", env.alarmAt)
	}
}

func TestMaxEntriesEvictsOldest(t *testing.T) {
	env := &fakeEnv{}
	cfg := DefaultDeviceConfig()
	cfg.MaxEntries = 3
	d := newDevice(t, env, cfg)
	for i := 0; i < 3; i++ {
		env.now = time.Duration(i) * time.Millisecond
		id := ident.NodeID(10 + i)
		d.OnProbe(id, core.ProbeMsg{From: id, Cycle: 1})
	}
	env.now = time.Second
	d.OnProbe(99, core.ProbeMsg{From: 99, Cycle: 1})
	if d.Entries() != 3 {
		t.Fatalf("Entries = %d, want capped 3", d.Entries())
	}
	// The oldest (id 10) must have been evicted: its retransmission now
	// claims a fresh slot instead of a dedupe reply.
	dups := d.DupReplies()
	d.OnProbe(10, core.ProbeMsg{From: 10, Cycle: 1, Attempt: 1})
	if d.DupReplies() != dups {
		t.Fatal("evicted entry still answered from the table")
	}
}

func TestPolicyObeysDevice(t *testing.T) {
	p, err := NewPolicy(PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := p.NextDelay(core.CycleResult{Payload: core.DCPPReply{Wait: sec(1.25)}})
	if got != sec(1.25) {
		t.Fatalf("delay = %v, want the device's wait", got)
	}
	if p.LastWait() != sec(1.25) {
		t.Fatalf("LastWait = %v", p.LastWait())
	}
}

func TestPolicyClampsNegativeWait(t *testing.T) {
	p, _ := NewPolicy(PolicyConfig{})
	if got := p.NextDelay(core.CycleResult{Payload: core.DCPPReply{Wait: -time.Second}}); got != 0 {
		t.Fatalf("delay = %v, want 0", got)
	}
}

func TestPolicyMaxWaitCap(t *testing.T) {
	p, err := NewPolicy(PolicyConfig{MaxWait: sec(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NextDelay(core.CycleResult{Payload: core.DCPPReply{Wait: time.Hour}}); got != sec(2) {
		t.Fatalf("delay = %v, want capped 2s", got)
	}
}

func TestPolicyFallbackOnForeignPayload(t *testing.T) {
	p, _ := NewPolicy(PolicyConfig{})
	if got := p.NextDelay(core.CycleResult{Payload: core.SAPPReply{}}); got != time.Second {
		t.Fatalf("delay = %v, want 1s fallback", got)
	}
	p2, _ := NewPolicy(PolicyConfig{FallbackDelay: sec(3)})
	if got := p2.NextDelay(core.CycleResult{Payload: core.EmptyReply{}}); got != sec(3) {
		t.Fatalf("delay = %v, want configured fallback", got)
	}
}

func TestPolicyConfigValidation(t *testing.T) {
	if _, err := NewPolicy(PolicyConfig{MaxWait: -1}); err == nil {
		t.Error("negative MaxWait accepted")
	}
	if _, err := NewPolicy(PolicyConfig{FallbackDelay: -1}); err == nil {
		t.Error("negative FallbackDelay accepted")
	}
}

// Property (paper invariant (i)): for any arrival pattern, consecutive
// fresh slot assignments are at least δ_min apart.
func TestPropertySlotSpacing(t *testing.T) {
	f := func(gapsMs []uint16, ids []uint8) bool {
		env := &fakeEnv{}
		d, err := NewDevice(1, env, DefaultDeviceConfig())
		if err != nil {
			return false
		}
		var slots []time.Duration
		cycle := uint32(0)
		for i, g := range gapsMs {
			env.now += time.Duration(g) * time.Millisecond
			id := ident.NodeID(2)
			if i < len(ids) {
				id = ident.NodeID(uint32(ids[i]) + 2)
			}
			cycle++
			d.OnProbe(id, core.ProbeMsg{From: id, Cycle: cycle})
			slots = append(slots, d.NextSlot())
		}
		for i := 1; i < len(slots); i++ {
			if slots[i]-slots[i-1] < DefaultMinGap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (paper invariant (ii)): the wait handed to a CP for a fresh
// probe is always at least d_min.
func TestPropertyWaitAtLeastMinCPDelay(t *testing.T) {
	f := func(gapsMs []uint16, ids []uint8) bool {
		env := &fakeEnv{}
		d, err := NewDevice(1, env, DefaultDeviceConfig())
		if err != nil {
			return false
		}
		cycle := uint32(0)
		for i, g := range gapsMs {
			env.now += time.Duration(g) * time.Millisecond
			id := ident.NodeID(2)
			if i < len(ids) {
				id = ident.NodeID(uint32(ids[i]) + 2)
			}
			cycle++
			before := len(env.sent)
			d.OnProbe(id, core.ProbeMsg{From: id, Cycle: cycle})
			rep := env.sent[before].(core.ReplyMsg)
			if rep.Payload.(core.DCPPReply).Wait < DefaultMinCPDelay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: nt never moves backwards.
func TestPropertyScheduleMonotone(t *testing.T) {
	f := func(gapsMs []uint16, dup []bool) bool {
		env := &fakeEnv{}
		d, err := NewDevice(1, env, DefaultDeviceConfig())
		if err != nil {
			return false
		}
		cycle := uint32(1)
		prev := d.NextSlot()
		for i, g := range gapsMs {
			env.now += time.Duration(g) * time.Millisecond
			if !(i < len(dup) && dup[i]) {
				cycle++
			}
			d.OnProbe(7, core.ProbeMsg{From: 7, Cycle: cycle})
			if d.NextSlot() < prev {
				return false
			}
			prev = d.NextSlot()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeviceOnProbe(b *testing.B) {
	env := &fakeEnv{}
	d, err := NewDevice(1, env, DefaultDeviceConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.sent = env.sent[:0]
		env.sentTo = env.sentTo[:0]
		env.now = time.Duration(i) * time.Millisecond
		id := ident.NodeID(i%64 + 2)
		d.OnProbe(id, core.ProbeMsg{From: id, Cycle: uint32(i)})
	}
}
