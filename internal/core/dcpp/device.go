// Package dcpp implements the device-controlled probe protocol, the
// paper's contribution (its Section 4).
//
// Instead of letting control points estimate the device load, the device
// schedules them: it remembers the next free probe slot nt and answers
// each probe received at time t with the wait nt'−t, where
//
//	nt' = max{nt, t} + ∆(nt, t),   ∆(nt, t) = max{δ_min, d_min − b},
//
// with b the backlog max{nt−t, 0}. Two invariants follow directly
// (paper's constraints (i) and (ii)):
//
//	(i)  consecutive scheduled slots are at least δ_min apart, so the
//	     steady device load never exceeds L_nom = 1/δ_min, and
//	(ii) the wait handed to a CP is at least d_min, so no CP is asked to
//	     probe more often than its maximum frequency f_max = 1/d_min.
//
// Deviation from the paper's literal formula: the backlog is clamped at
// zero. Read literally, ∆ = max{δ_min, d_min−(nt−t)} grows without bound
// for an idle device (nt ≪ t). Clamping is identical for a busy device
// and gives the obviously intended idle behaviour (a lone CP probes at
// f_max). See DESIGN.md.
package dcpp

import (
	"fmt"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Paper defaults (Section 5): δ_min = 0.1 s (L_nom = 10 probes/s) and
// d_min = 0.5 s (f_max = 2 probes/s per CP).
const (
	DefaultMinGap     = 100 * time.Millisecond
	DefaultMinCPDelay = 500 * time.Millisecond
)

// DeviceConfig parameterises a DCPP device.
type DeviceConfig struct {
	// MinGap is δ_min = 1/L_nom: the minimum spacing between scheduled
	// probe slots, i.e. the inverse of the probe load the device is able
	// or willing to cope with.
	MinGap time.Duration
	// MinCPDelay is d_min = 1/f_max: the minimum wait handed to any CP,
	// i.e. the inverse of the maximum per-CP probe frequency.
	MinCPDelay time.Duration

	// DedupeTTL bounds the per-CP assignment memory used to answer
	// retransmitted probes idempotently under packet loss (an extension;
	// the paper assumes no losses). Entries older than the TTL are
	// pruned. Zero means 30 s; negative disables deduplication entirely,
	// restoring the paper's literal behaviour where every probe claims a
	// fresh slot.
	DedupeTTL time.Duration
	// MaxEntries caps the assignment table ("implementable on small
	// computing devices" implies bounded state). When full, the oldest
	// entry is evicted. Zero means 4096.
	MaxEntries int
}

// DefaultDeviceConfig returns the paper's DCPP parameters.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{MinGap: DefaultMinGap, MinCPDelay: DefaultMinCPDelay}
}

func (c *DeviceConfig) applyDefaults() {
	if c.DedupeTTL == 0 {
		c.DedupeTTL = 30 * time.Second
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 4096
	}
}

// Validate checks the configuration.
func (c DeviceConfig) Validate() error {
	if c.MinGap <= 0 {
		return fmt.Errorf("dcpp: MinGap %v must be positive", c.MinGap)
	}
	if c.MinCPDelay <= 0 {
		return fmt.Errorf("dcpp: MinCPDelay %v must be positive", c.MinCPDelay)
	}
	if c.MaxEntries < 0 {
		return fmt.Errorf("dcpp: MaxEntries %d must be non-negative", c.MaxEntries)
	}
	return nil
}

// NominalLoad returns L_nom = 1/δ_min in probes per second.
func (c DeviceConfig) NominalLoad() float64 { return 1 / c.MinGap.Seconds() }

// MaxCPFrequency returns f_max = 1/d_min in probes per second.
func (c DeviceConfig) MaxCPFrequency() float64 { return 1 / c.MinCPDelay.Seconds() }

// assignment remembers the slot handed to a CP so that retransmissions of
// the same probe cycle receive the same answer instead of claiming a new
// slot.
type assignment struct {
	cycle      uint32
	probeAt    time.Duration // absolute time of the assigned slot (nt')
	assignedAt time.Duration
}

// Device is the DCPP device engine.
type Device struct {
	id  ident.NodeID
	env core.Env
	cfg DeviceConfig

	nt          time.Duration
	assignments map[ident.NodeID]assignment
	probesTotal uint64
	dupReplies  uint64
}

var _ core.Device = (*Device)(nil)

// NewDevice validates the configuration and returns a device engine.
func NewDevice(id ident.NodeID, env core.Env, cfg DeviceConfig) (*Device, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("dcpp: invalid device id")
	}
	if env == nil {
		return nil, fmt.Errorf("dcpp: nil env")
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		id:          id,
		env:         env,
		cfg:         cfg,
		assignments: make(map[ident.NodeID]assignment),
	}, nil
}

// ID returns the device's node id.
func (d *Device) ID() ident.NodeID { return d.id }

// NextSlot returns the current schedule pointer nt.
func (d *Device) NextSlot() time.Duration { return d.nt }

// ProbesTotal returns the number of probes answered (including
// deduplicated retransmissions).
func (d *Device) ProbesTotal() uint64 { return d.probesTotal }

// DupReplies returns how many probes were answered from the assignment
// table rather than by claiming a new slot.
func (d *Device) DupReplies() uint64 { return d.dupReplies }

// Entries returns the current size of the assignment table.
func (d *Device) Entries() int { return len(d.assignments) }

// Start arms the periodic assignment-table sweep when deduplication is
// enabled.
func (d *Device) Start() {
	if d.cfg.DedupeTTL > 0 {
		d.env.SetAlarm(d.env.Now() + d.cfg.DedupeTTL)
	}
}

// OnProbe schedules the probing CP's next slot and replies with the wait.
func (d *Device) OnProbe(from ident.NodeID, m core.ProbeMsg) {
	now := d.env.Now()
	d.probesTotal++
	if d.cfg.DedupeTTL > 0 {
		if a, ok := d.assignments[from]; ok && a.cycle == m.Cycle {
			// A retransmission of a probe we already answered: repeat the
			// assignment instead of claiming another slot. The remaining
			// wait shrinks with elapsed time; it never goes negative.
			wait := a.probeAt - now
			if wait < 0 {
				wait = 0
			}
			d.dupReplies++
			d.reply(from, m, wait)
			return
		}
	}
	// nt' = max{nt, t} + max{δ_min, d_min − b} with b = max{nt−t, 0}.
	backlog := d.nt - now
	if backlog < 0 {
		backlog = 0
	}
	gap := d.cfg.MinCPDelay - backlog
	if gap < d.cfg.MinGap {
		gap = d.cfg.MinGap
	}
	d.nt = now + backlog + gap
	if d.cfg.DedupeTTL > 0 {
		d.remember(from, assignment{cycle: m.Cycle, probeAt: d.nt, assignedAt: now})
	}
	d.reply(from, m, d.nt-now)
}

func (d *Device) reply(to ident.NodeID, m core.ProbeMsg, wait time.Duration) {
	d.env.Send(to, core.AcquireReply(d.id, m.Cycle, m.Attempt, core.AcquireDCPPReply(wait)))
}

// remember stores an assignment, evicting the oldest entry if the table
// is full.
func (d *Device) remember(from ident.NodeID, a assignment) {
	if len(d.assignments) >= d.cfg.MaxEntries {
		if _, exists := d.assignments[from]; !exists {
			var oldest ident.NodeID
			oldestAt := time.Duration(1<<63 - 1)
			for id, e := range d.assignments {
				if e.assignedAt < oldestAt {
					oldest, oldestAt = id, e.assignedAt
				}
			}
			delete(d.assignments, oldest)
		}
	}
	d.assignments[from] = a
}

// OnAlarm sweeps expired entries from the assignment table and re-arms.
func (d *Device) OnAlarm() {
	if d.cfg.DedupeTTL <= 0 {
		return
	}
	now := d.env.Now()
	for id, a := range d.assignments {
		if a.assignedAt+d.cfg.DedupeTTL < now {
			delete(d.assignments, id)
		}
	}
	d.env.SetAlarm(now + d.cfg.DedupeTTL)
}
