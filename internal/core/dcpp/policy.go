package dcpp

import (
	"fmt"
	"time"

	"presence/internal/core"
)

// PolicyConfig parameterises the DCPP control-point policy.
type PolicyConfig struct {
	// MaxWait caps the wait a CP accepts from a device, protecting
	// against a buggy or malicious device starving the monitor. Zero
	// means no cap (the paper's behaviour).
	MaxWait time.Duration
	// FallbackDelay is used when a reply carries no usable DCPP payload
	// (protocol mismatch). Zero means 1 s.
	FallbackDelay time.Duration
}

// Validate checks the configuration.
func (c PolicyConfig) Validate() error {
	if c.MaxWait < 0 {
		return fmt.Errorf("dcpp: MaxWait %v must be non-negative", c.MaxWait)
	}
	if c.FallbackDelay < 0 {
		return fmt.Errorf("dcpp: FallbackDelay %v must be non-negative", c.FallbackDelay)
	}
	return nil
}

// Policy is the DCPP control-point delay policy: "the delay between two
// probe cycles is now directly determined by the device. Each reply to a
// probe is accompanied with a delay d ... the CP sets a timer and waits
// until d time-units have passed before it initiates the next probe
// cycle."
type Policy struct {
	cfg      PolicyConfig
	lastWait time.Duration
}

var _ core.DelayPolicy = (*Policy)(nil)

// NewPolicy validates the configuration and returns a policy.
func NewPolicy(cfg PolicyConfig) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FallbackDelay == 0 {
		cfg.FallbackDelay = time.Second
	}
	return &Policy{cfg: cfg}, nil
}

// LastWait returns the most recent device-assigned wait.
func (p *Policy) LastWait() time.Duration { return p.lastWait }

// NextDelay obeys the device's schedule.
func (p *Policy) NextDelay(res core.CycleResult) time.Duration {
	var wait time.Duration
	switch rep := res.Payload.(type) {
	case core.DCPPReply:
		wait = rep.Wait
	case *core.DCPPReply: // pooled form; valid only until this call returns
		wait = rep.Wait
	default:
		return p.cfg.FallbackDelay
	}
	if wait < 0 {
		wait = 0
	}
	if p.cfg.MaxWait > 0 && wait > p.cfg.MaxWait {
		wait = p.cfg.MaxWait
	}
	p.lastWait = wait
	return wait
}
