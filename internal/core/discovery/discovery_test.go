package discovery

import (
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

type fakeEnv struct {
	now      time.Duration
	sent     []core.Message
	sentTo   []ident.NodeID
	alarmAt  time.Duration
	alarmSet bool
}

func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Send(to ident.NodeID, m core.Message) {
	e.sent = append(e.sent, m)
	e.sentTo = append(e.sentTo, to)
}
func (e *fakeEnv) SetAlarm(at time.Duration) { e.alarmAt, e.alarmSet = at, true }
func (e *fakeEnv) StopAlarm()                { e.alarmSet = false }

func (e *fakeEnv) fire(t *testing.T, onAlarm func()) {
	t.Helper()
	if !e.alarmSet {
		t.Fatal("no alarm pending")
	}
	e.now = e.alarmAt
	e.alarmSet = false
	onAlarm()
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestAnnouncerValidation(t *testing.T) {
	env := &fakeEnv{}
	if _, err := NewAnnouncer(ident.None, env, AnnouncerConfig{}); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewAnnouncer(1, nil, AnnouncerConfig{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewAnnouncer(1, env, AnnouncerConfig{MaxAge: time.Second, Period: 2 * time.Second}); err == nil {
		t.Error("period beyond max-age accepted")
	}
	if _, err := NewAnnouncer(1, env, AnnouncerConfig{MaxAge: -time.Second}); err == nil {
		t.Error("negative max-age accepted")
	}
}

func TestAnnouncerBroadcastsPeriodically(t *testing.T) {
	env := &fakeEnv{}
	a, err := NewAnnouncer(1, env, AnnouncerConfig{MaxAge: sec(30)})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	if len(env.sent) != 1 {
		t.Fatalf("sent %d announcements at start, want 1", len(env.sent))
	}
	if env.sentTo[0] != ident.Broadcast {
		t.Fatalf("announcement target = %v, want broadcast", env.sentTo[0])
	}
	m := env.sent[0].(core.AnnounceMsg)
	if m.From != 1 || m.MaxAge != sec(30) {
		t.Fatalf("announcement = %+v", m)
	}
	// Default period is MaxAge/3 = 10 s.
	if !env.alarmSet || env.alarmAt != sec(10) {
		t.Fatalf("next announcement at %v, want 10s", env.alarmAt)
	}
	env.fire(t, a.OnAlarm)
	env.fire(t, a.OnAlarm)
	if a.Sent() != 3 {
		t.Fatalf("Sent() = %d, want 3", a.Sent())
	}
	a.Stop()
	if env.alarmSet {
		t.Fatal("Stop left the announcement alarm armed")
	}
}

func TestRegistryDiscoversAndExpires(t *testing.T) {
	env := &fakeEnv{}
	var discovered, expired []ident.NodeID
	r, err := NewRegistry(9, env, RegistryConfig{
		SweepEvery:   time.Second,
		OnDiscovered: func(d ident.NodeID, _ time.Duration) { discovered = append(discovered, d) },
		OnExpired:    func(d ident.NodeID, _ time.Duration) { expired = append(expired, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.OnAnnounce(core.AnnounceMsg{From: 1, MaxAge: sec(3)})
	if len(discovered) != 1 || discovered[0] != 1 {
		t.Fatalf("discovered = %v", discovered)
	}
	if !r.Known(1) {
		t.Fatal("device not known after announce")
	}
	// Re-announce refreshes without re-discovering.
	env.now = sec(2)
	r.OnAnnounce(core.AnnounceMsg{From: 1, MaxAge: sec(3)})
	if len(discovered) != 1 {
		t.Fatal("refresh re-triggered discovery")
	}
	// Sweeps before expiry keep it; after 2+3 s it expires.
	for env.alarmSet && env.now < sec(6) {
		env.fire(t, r.OnAlarm)
	}
	if r.Known(1) {
		t.Fatal("device still known after max-age silence")
	}
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired = %v", expired)
	}
	// Rediscovery after expiry fires OnDiscovered again.
	r.OnAnnounce(core.AnnounceMsg{From: 1, MaxAge: sec(3)})
	if len(discovered) != 2 {
		t.Fatal("re-discovery after expiry not reported")
	}
}

func TestRegistryIgnoresInvalidAnnouncements(t *testing.T) {
	env := &fakeEnv{}
	r, err := NewRegistry(9, env, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r.OnAnnounce(core.AnnounceMsg{From: ident.None, MaxAge: sec(3)})
	r.OnAnnounce(core.AnnounceMsg{From: 2, MaxAge: 0})
	if len(r.Devices()) != 0 {
		t.Fatalf("registry accepted invalid announcements: %v", r.Devices())
	}
}

func TestRegistryForget(t *testing.T) {
	env := &fakeEnv{}
	r, err := NewRegistry(9, env, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r.OnAnnounce(core.AnnounceMsg{From: 3, MaxAge: sec(60)})
	r.Forget(3)
	if r.Known(3) {
		t.Fatal("Forget did not remove the device")
	}
}

func TestRegistryValidation(t *testing.T) {
	env := &fakeEnv{}
	if _, err := NewRegistry(ident.None, env, RegistryConfig{}); err == nil {
		t.Error("invalid id accepted")
	}
	if _, err := NewRegistry(9, nil, RegistryConfig{}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewRegistry(9, env, RegistryConfig{SweepEvery: -time.Second}); err == nil {
		t.Error("negative sweep accepted")
	}
}
