// Package discovery implements the UPnP-style announcement layer the
// probe protocols complement. Devices periodically broadcast alive
// announcements carrying a max-age; control points keep a registry of
// known devices and expire entries whose announcements stop.
//
// The paper's reference [1] is titled "Enhancing discovery with
// liveness" — announcements alone detect absence only after a max-age
// worth of silence (UPnP mandates max-age ≥ 1800 s), far from the
// required "order of one second". The ext-discovery experiment
// quantifies that gap against the probe protocols.
package discovery

import (
	"fmt"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Announcer defaults: announce every 1/3 of the max-age (so two losses
// are survivable before expiry), with a demo-friendly 60 s max-age (the
// UPnP spec minimum of 1800 s would make the point even more starkly).
const (
	DefaultMaxAge = 60 * time.Second
)

// AnnouncerConfig parameterises a device's announcements.
type AnnouncerConfig struct {
	// MaxAge is the validity the announcement promises. Zero means
	// DefaultMaxAge.
	MaxAge time.Duration
	// Period is the announcement interval. Zero means MaxAge/3.
	Period time.Duration
	// Target is the address announcements are sent to. Zero means
	// ident.Broadcast (the simulated SSDP group).
	Target ident.NodeID
}

func (c *AnnouncerConfig) applyDefaults() {
	if c.MaxAge == 0 {
		c.MaxAge = DefaultMaxAge
	}
	if c.Period == 0 {
		c.Period = c.MaxAge / 3
	}
	if c.Target == ident.None {
		c.Target = ident.Broadcast
	}
}

// Validate checks the configuration.
func (c AnnouncerConfig) Validate() error {
	if c.MaxAge <= 0 {
		return fmt.Errorf("discovery: MaxAge %v must be positive", c.MaxAge)
	}
	if c.Period <= 0 {
		return fmt.Errorf("discovery: Period %v must be positive", c.Period)
	}
	if c.Period > c.MaxAge {
		return fmt.Errorf("discovery: Period %v exceeds MaxAge %v (instant expiry)", c.Period, c.MaxAge)
	}
	return nil
}

// Announcer is the device-side announcement engine. It owns its Env's
// alarm slot, so hosts running both a probe-protocol engine and an
// Announcer give each engine its own Env.
type Announcer struct {
	id   ident.NodeID
	env  core.Env
	cfg  AnnouncerConfig
	sent uint64
}

// NewAnnouncer validates the configuration and returns an announcer.
func NewAnnouncer(id ident.NodeID, env core.Env, cfg AnnouncerConfig) (*Announcer, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("discovery: invalid announcer id")
	}
	if env == nil {
		return nil, fmt.Errorf("discovery: nil env")
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Announcer{id: id, env: env, cfg: cfg}, nil
}

// Sent returns the number of announcements transmitted.
func (a *Announcer) Sent() uint64 { return a.sent }

// Start sends the first announcement immediately and schedules the
// periodic repetition.
func (a *Announcer) Start() {
	a.announce()
}

// Stop cancels the periodic announcements (a crashing device just
// stops; a graceful leave should send a bye via the probe layer).
func (a *Announcer) Stop() {
	a.env.StopAlarm()
}

// OnAlarm sends the next periodic announcement.
func (a *Announcer) OnAlarm() {
	a.announce()
}

func (a *Announcer) announce() {
	a.sent++
	a.env.Send(a.cfg.Target, core.AnnounceMsg{From: a.id, MaxAge: a.cfg.MaxAge})
	a.env.SetAlarm(a.env.Now() + a.cfg.Period)
}

// RegistryConfig parameterises a control point's device registry.
type RegistryConfig struct {
	// SweepEvery is the expiry-check interval. Zero means 1 s.
	SweepEvery time.Duration
	// OnDiscovered, if non-nil, fires when a device is first seen (or
	// seen again after expiring).
	OnDiscovered func(dev ident.NodeID, at time.Duration)
	// OnExpired, if non-nil, fires when a device's max-age lapses
	// without a fresh announcement.
	OnExpired func(dev ident.NodeID, at time.Duration)
}

// Registry is the control-point-side engine tracking announced devices.
type Registry struct {
	id  ident.NodeID
	env core.Env
	cfg RegistryConfig

	expiry map[ident.NodeID]time.Duration
}

// NewRegistry validates the configuration and returns a registry.
func NewRegistry(id ident.NodeID, env core.Env, cfg RegistryConfig) (*Registry, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("discovery: invalid registry id")
	}
	if env == nil {
		return nil, fmt.Errorf("discovery: nil env")
	}
	if cfg.SweepEvery == 0 {
		cfg.SweepEvery = time.Second
	}
	if cfg.SweepEvery < 0 {
		return nil, fmt.Errorf("discovery: SweepEvery %v must be positive", cfg.SweepEvery)
	}
	return &Registry{
		id:     id,
		env:    env,
		cfg:    cfg,
		expiry: make(map[ident.NodeID]time.Duration),
	}, nil
}

// Start arms the periodic expiry sweep.
func (r *Registry) Start() {
	r.env.SetAlarm(r.env.Now() + r.cfg.SweepEvery)
}

// Stop cancels the sweep.
func (r *Registry) Stop() {
	r.env.StopAlarm()
}

// OnAnnounce processes a received announcement.
func (r *Registry) OnAnnounce(m core.AnnounceMsg) {
	if !m.From.Valid() || m.MaxAge <= 0 {
		return
	}
	now := r.env.Now()
	_, known := r.expiry[m.From]
	r.expiry[m.From] = now + m.MaxAge
	if !known && r.cfg.OnDiscovered != nil {
		r.cfg.OnDiscovered(m.From, now)
	}
}

// Known reports whether the device is currently registered (announced
// and unexpired as of the last sweep).
func (r *Registry) Known(dev ident.NodeID) bool {
	_, ok := r.expiry[dev]
	return ok
}

// Devices returns the currently registered device ids (unordered).
func (r *Registry) Devices() []ident.NodeID {
	out := make([]ident.NodeID, 0, len(r.expiry))
	for id := range r.expiry {
		out = append(out, id)
	}
	return out
}

// Forget drops a device immediately (e.g. after a probe-layer loss or
// bye, which beats expiry by orders of magnitude).
func (r *Registry) Forget(dev ident.NodeID) {
	delete(r.expiry, dev)
}

// OnAlarm sweeps expired entries and re-arms.
func (r *Registry) OnAlarm() {
	now := r.env.Now()
	for dev, exp := range r.expiry {
		if exp <= now {
			delete(r.expiry, dev)
			if r.cfg.OnExpired != nil {
				r.cfg.OnExpired(dev, now)
			}
		}
	}
	r.env.SetAlarm(now + r.cfg.SweepEvery)
}
