package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// FuzzDecode throws arbitrary bytes at the frame decoder. Decode must
// never panic; and whenever it accepts a frame, the decoded message
// must re-encode to the exact input bytes (the format has no slack:
// fixed lengths, no padding, a trailing CRC), making decode∘encode an
// identity on the accepted set.
func FuzzDecode(f *testing.F) {
	seeds := []core.Message{
		core.ProbeMsg{From: 7, Cycle: 42, Attempt: 1},
		core.ReplyMsg{From: 1, Cycle: 42, Attempt: 0, Payload: core.SAPPReply{
			ProbeCount:  900,
			LastProbers: [2]ident.NodeID{3, 9},
		}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 2, Payload: core.DCPPReply{Wait: 1500 * time.Millisecond}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 3, Payload: core.EmptyReply{}},
		core.ByeMsg{From: 12},
		core.AnnounceMsg{From: 4, MaxAge: 30 * time.Second},
		core.LeaveNotice{Device: 1, Origin: 5, Seq: 77, TTL: 3},
	}
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Mutated variants: flipped type byte, truncation, CRC damage.
		bad := bytes.Clone(b)
		bad[3] ^= 0xff
		f.Add(bad)
		f.Add(b[:len(b)-1])
	}
	f.Add([]byte{})
	f.Add([]byte("definitely not a frame"))

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Decode(b)
		if err != nil {
			return // rejected input: only absence of panics is asserted
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message %#v does not re-encode: %v", msg, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x\n msg %#v", b, re, msg)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(core.Flatten(again), core.Flatten(msg)) {
			t.Fatalf("decode not stable: %#v vs %#v", again, msg)
		}
	})
}
