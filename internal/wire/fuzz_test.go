package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// FuzzDecode throws arbitrary bytes at the frame decoder. DecodeFrame
// must never panic; and whenever it accepts a frame — v1 or v2 — the
// decoded Frame must re-encode to the exact input bytes (the format
// has no slack: fixed lengths, no padding, a trailing CRC or tag),
// making decode∘encode an identity on the accepted set, tag included.
// For v1 frames the boxed Decode path must agree with the flat path;
// for v2 frames it must refuse with ErrAuthFrame rather than return an
// unverified message.
func FuzzDecode(f *testing.F) {
	seeds := []core.Message{
		core.ProbeMsg{From: 7, Cycle: 42, Attempt: 1},
		core.ReplyMsg{From: 1, Cycle: 42, Attempt: 0, Payload: core.SAPPReply{
			ProbeCount:  900,
			LastProbers: [2]ident.NodeID{3, 9},
		}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 2, Payload: core.DCPPReply{Wait: 1500 * time.Millisecond}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 3, Payload: core.EmptyReply{}},
		core.ByeMsg{From: 12},
		core.AnnounceMsg{From: 4, MaxAge: 30 * time.Second},
		core.LeaveNotice{Device: 1, Origin: 5, Seq: 77, TTL: 3},
	}
	key := NewAuthKey([]byte("fuzz-master"))
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Mutated variants: flipped type byte, truncation, CRC damage.
		bad := bytes.Clone(b)
		bad[3] ^= 0xff
		f.Add(bad)
		f.Add(b[:len(b)-1])
		// The authenticated sibling, plus the v2-specific mutations:
		// truncated tag, flipped tag bits, and the v1/v2 boundary (the
		// same body bytes under the other version byte).
		b2, err := AppendEncodeAuth(nil, m, key)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b2)
		f.Add(b2[:len(b2)-1])
		f.Add(b2[:len(b2)-TagSize])
		flipped := bytes.Clone(b2)
		flipped[len(flipped)-1] ^= 0x01
		f.Add(flipped)
		cross := bytes.Clone(b)
		cross[2] = VersionAuth
		f.Add(cross)
		cross2 := bytes.Clone(b2)
		cross2[2] = Version
		f.Add(cross2)
	}
	f.Add([]byte{})
	f.Add([]byte("definitely not a frame"))

	f.Fuzz(func(t *testing.T, b []byte) {
		var fr Frame
		if err := DecodeFrame(b, &fr); err != nil {
			if fr.Kind != KindInvalid {
				t.Fatalf("rejected frame left Kind %v", fr.Kind)
			}
			if _, err := Decode(b); err == nil {
				t.Fatalf("boxed Decode accepted bytes DecodeFrame rejected: %x", b)
			}
			return // rejected input: only absence of panics is asserted
		}
		// Accepted set: flat decode→re-encode is an identity, for both
		// versions (a v2 frame's unverified tag must ride along verbatim).
		re, err := AppendEncodeFrame(nil, &fr)
		if err != nil {
			t.Fatalf("decoded frame %#v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("decode∘encode not identity:\n in  %x\n out %x\n frame %#v", b, re, fr)
		}
		var again Frame
		if err := DecodeFrame(re, &again); err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if again != fr {
			t.Fatalf("decode not stable: %#v vs %#v", again, fr)
		}
		msg, err := Decode(b)
		if fr.Version == VersionAuth {
			if err != ErrAuthFrame {
				t.Fatalf("boxed Decode of a v2 frame: err = %v, want ErrAuthFrame", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("boxed Decode rejected a v1 frame DecodeFrame accepted: %v", err)
		}
		re2, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message %#v does not re-encode: %v", msg, err)
		}
		if !bytes.Equal(re2, b) {
			t.Fatalf("boxed decode∘encode not identity:\n in  %x\n out %x\n msg %#v", b, re2, msg)
		}
		boxedAgain, err := Decode(re2)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(core.Flatten(boxedAgain), core.Flatten(msg)) {
			t.Fatalf("decode not stable: %#v vs %#v", boxedAgain, msg)
		}
	})
}
