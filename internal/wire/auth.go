package wire

// Frame authentication (wire version 2).
//
// A v2 frame replaces the CRC-32 trailer with a TagSize-byte truncated
// HMAC-SHA256 tag over the whole header+payload region — magic,
// version, type, ids, cycle, attempt, payload. 16 bytes (128 bits) is
// the conventional MAC truncation (RFC 2104 permits any t >= 80 bits;
// 128 keeps the forgery bound at 2^-128 per guess while holding the
// largest frame to 45 bytes, still a single-datagram protocol for
// small devices). The tag subsumes the CRC: any corruption an IEEE
// CRC-32 would catch also breaks the MAC.
//
// Keys are derived, never used raw: DeriveKey runs HKDF-SHA256 over a
// master secret with a caller-chosen info string, so one pre-shared
// fleet secret yields independent per-(control-point, device) pair
// keys and per-device broadcast keys, and compromise of one derived
// key reveals nothing about its siblings.
//
// An AuthKey is a pre-computed key schedule built for packet-rate use
// on a single goroutine: the HMAC state is retained and Reset per
// frame (go's crypto/hmac caches the inner/outer pads, so Reset is two
// block copies, not a re-key), the SHA-256 sum lands in an embedded
// scratch array, and VerifyFrame re-encodes the signed region into an
// embedded buffer — zero heap allocations per sign or verify, the
// property the fleet's 0 allocs/op hot-path gate extends over.
// AuthKey is NOT safe for concurrent use; give each shard its own
// schedule (the fleet derives them per shard-owned node).

import (
	"crypto/hkdf"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"

	"presence/internal/ident"
)

// hkdfSalt domain-separates presence wire keys from any other use of
// the same master secret.
var hkdfSalt = []byte("presence-wire-v2")

// derivedKeySize is the length of every derived subkey — one SHA-256
// block's worth of entropy, the natural HMAC-SHA256 key size.
const derivedKeySize = 32

// AuthKey is a ready-to-use frame authentication key schedule. Build
// one per (sender, receiver) relationship with DeriveKey (or NewAuthKey
// for a raw key) and keep it: construction allocates, sign and verify
// do not. Not safe for concurrent use.
type AuthKey struct {
	mac hash.Hash
	sum [sha256.Size]byte
	buf [MaxFrameSize]byte
}

// NewAuthKey builds a key schedule from a raw key. Prefer DeriveKey,
// which domain-separates keys derived from one master secret.
func NewAuthKey(key []byte) *AuthKey {
	return &AuthKey{mac: hmac.New(sha256.New, key)}
}

// DeriveKey derives the subkey named by info from a master secret via
// HKDF-SHA256 and returns its schedule. Cold path: construction
// allocates; the returned schedule does not.
func DeriveKey(master []byte, info string) (*AuthKey, error) {
	if len(master) == 0 {
		return nil, fmt.Errorf("wire: empty master key")
	}
	sub, err := hkdf.Key(sha256.New, master, hkdfSalt, info, derivedKeySize)
	if err != nil {
		return nil, fmt.Errorf("wire: derive %q: %w", info, err)
	}
	return NewAuthKey(sub), nil
}

// PairInfo names the (control point, device) pairwise subkey: both
// endpoints of one monitoring relationship derive the same key and use
// it for probes and replies in either direction.
func PairInfo(cp, device ident.NodeID) string {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], uint32(cp))
	binary.BigEndian.PutUint32(b[4:], uint32(device))
	return "pair:" + string(b[:])
}

// DeviceInfo names a device's broadcast subkey, used for the frames a
// device fans out to every watcher (BYE, announce) — one verification
// per received frame regardless of how many control points watch.
func DeviceInfo(device ident.NodeID) string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(device))
	return "dev:" + string(b[:])
}

// tag computes the truncated tag over b into the schedule's scratch
// and returns it (valid until the next tag/VerifyFrame call).
func (k *AuthKey) tag(b []byte) []byte {
	k.mac.Reset()
	k.mac.Write(b) //nolint:errcheck // hash writes cannot fail
	sum := k.mac.Sum(k.sum[:0])
	return sum[:TagSize]
}

// VerifyFrame reports whether the decoded v2 frame f carries a valid
// tag under k. The signed region is re-encoded into the schedule's
// scratch buffer (decode∘encode is an identity on frames DecodeFrame
// accepts, so the reconstruction is byte-exact) and the comparison is
// constant-time. Zero allocations; false for non-v2 frames.
func (k *AuthKey) VerifyFrame(f *Frame) bool {
	if f.Version != VersionAuth {
		return false
	}
	body, err := appendFrameBody(k.buf[:0], f, VersionAuth)
	if err != nil {
		return false
	}
	return hmac.Equal(k.tag(body), f.Tag[:])
}
