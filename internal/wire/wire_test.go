package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"testing/quick"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

func roundTrip(t *testing.T, msg core.Message) core.Message {
	t.Helper()
	b, err := Encode(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	if len(b) > MaxFrameSize {
		t.Fatalf("frame %d bytes exceeds MaxFrameSize %d", len(b), MaxFrameSize)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return got
}

func TestRoundTripProbe(t *testing.T) {
	in := core.ProbeMsg{From: 7, Cycle: 42, Attempt: 3}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripSAPPReply(t *testing.T) {
	in := core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1, Payload: core.SAPPReply{
		ProbeCount:  123456789012345,
		LastProbers: [2]ident.NodeID{8, 15},
	}}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripDCPPReply(t *testing.T) {
	in := core.ReplyMsg{From: 1, Cycle: 77, Attempt: 0, Payload: core.DCPPReply{
		Wait: 512300 * time.Microsecond,
	}}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripNegativeWait(t *testing.T) {
	// A buggy peer could send a negative wait; the codec must preserve
	// it so the policy layer can clamp it.
	in := core.ReplyMsg{From: 1, Cycle: 1, Payload: core.DCPPReply{Wait: -time.Second}}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripEmptyReply(t *testing.T) {
	in := core.ReplyMsg{From: 3, Cycle: 2, Attempt: 2, Payload: core.EmptyReply{}}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripBye(t *testing.T) {
	in := core.ByeMsg{From: 250}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestRoundTripLeaveNotice(t *testing.T) {
	in := core.LeaveNotice{Device: 1, Origin: 6, Seq: 99, TTL: 4}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestEncodeUnknownTypes(t *testing.T) {
	type weird struct{ core.Message }
	if _, err := Encode(weird{}); err == nil {
		t.Error("unknown message type encoded")
	}
	type weirdPayload struct{ core.Payload }
	if _, err := Encode(core.ReplyMsg{From: 1, Payload: weirdPayload{}}); err == nil {
		t.Error("unknown payload type encoded")
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, err := Decode([]byte{0xAD, 0x05}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	b, err := Encode(core.ProbeMsg{From: 7, Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 0xFF
	if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b, err := Encode(core.ProbeMsg{From: 7, Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	b[2] = 99
	if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeUnknownType(t *testing.T) {
	b, err := Encode(core.ProbeMsg{From: 7, Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Changing the type invalidates the CRC; rebuild it via AppendEncode
	// of a hand-rolled frame is overkill — instead corrupt type and fix
	// the CRC by re-encoding manually.
	b[3] = 200
	b = fixCRC(b)
	if _, err := Decode(b); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeWrongLengthForType(t *testing.T) {
	// A DCPP reply frame relabelled as a probe has 8 stray payload
	// bytes.
	b, err := Encode(core.ReplyMsg{From: 1, Cycle: 1, Payload: core.DCPPReply{Wait: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	b[3] = typeProbe
	b = fixCRC(b)
	if _, err := Decode(b); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

// fixCRC recomputes the trailing checksum after test mutations.
func fixCRC(b []byte) []byte {
	body := b[:len(b)-4]
	out := make([]byte, 0, len(b))
	out = append(out, body...)
	crc := crc32.ChecksumIEEE(body)
	return binary.BigEndian.AppendUint32(out, crc)
}

func TestEveryBitFlipDetected(t *testing.T) {
	msgs := []core.Message{
		core.ProbeMsg{From: 7, Cycle: 42, Attempt: 1},
		core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1, Payload: core.SAPPReply{ProbeCount: 1e15, LastProbers: [2]ident.NodeID{8, 15}}},
		core.ReplyMsg{From: 1, Cycle: 3, Payload: core.DCPPReply{Wait: time.Second}},
		core.LeaveNotice{Device: 1, Origin: 6, Seq: 99, TTL: 4},
	}
	for _, msg := range msgs {
		b, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(b)*8; i++ {
			corrupted := make([]byte, len(b))
			copy(corrupted, b)
			corrupted[i/8] ^= 1 << (i % 8)
			if got, err := Decode(corrupted); err == nil && got == msg {
				t.Fatalf("%T: bit flip %d yielded the original message undetected", msg, i)
			}
		}
	}
}

func TestAppendEncodeReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	b1, err := AppendEncode(buf, core.ProbeMsg{From: 1, Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	if &b1[0] != &buf[:1][0] {
		t.Fatal("AppendEncode reallocated despite sufficient capacity")
	}
}

// Property: every probe round-trips bit-exactly.
func TestPropertyProbeRoundTrip(t *testing.T) {
	f := func(from uint32, cycle uint32, attempt uint8) bool {
		in := core.ProbeMsg{From: ident.NodeID(from), Cycle: cycle, Attempt: attempt}
		b, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every SAPP reply round-trips bit-exactly.
func TestPropertySAPPReplyRoundTrip(t *testing.T) {
	f := func(from, l1, l2, cycle uint32, attempt uint8, pc uint64) bool {
		in := core.ReplyMsg{From: ident.NodeID(from), Cycle: cycle, Attempt: attempt,
			Payload: core.SAPPReply{ProbeCount: pc, LastProbers: [2]ident.NodeID{ident.NodeID(l1), ident.NodeID(l2)}}}
		b, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: random garbage never decodes successfully (the magic, CRC
// and length checks must reject it).
func TestPropertyGarbageRejected(t *testing.T) {
	f := func(garbage []byte) bool {
		// Give the garbage a valid magic half the time to exercise the
		// deeper checks.
		if len(garbage) >= 2 && len(garbage)%2 == 0 {
			garbage[0], garbage[1] = 0xAD, 0x05
		}
		_, err := Decode(garbage)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeProbe(b *testing.B) {
	buf := make([]byte, 0, MaxFrameSize)
	msg := core.ProbeMsg{From: 7, Cycle: 42, Attempt: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEncode(buf[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSAPPReply(b *testing.B) {
	frame, err := Encode(core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1,
		Payload: core.SAPPReply{ProbeCount: 1e15, LastProbers: [2]ident.NodeID{8, 15}}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripAnnounce(t *testing.T) {
	in := core.AnnounceMsg{From: 9, MaxAge: 1800 * time.Second}
	if got := roundTrip(t, in); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

// TestDecodeFrameMatchesDecode pins the flat DecodeFrame path against
// the boxed Decode path for every message type: same acceptance, same
// fields, and Frame round-trips through AppendEncodeFrame to the same
// bytes.
func TestDecodeFrameMatchesDecode(t *testing.T) {
	msgs := []core.Message{
		core.ProbeMsg{From: 7, Cycle: 0xCAFEBABE, Attempt: 3},
		core.ReplyMsg{From: 9, Cycle: 12, Attempt: 1, Payload: core.SAPPReply{ProbeCount: 1 << 40, LastProbers: [2]ident.NodeID{4, 5}}},
		core.ReplyMsg{From: 9, Cycle: 12, Attempt: 0, Payload: core.DCPPReply{Wait: 1500 * time.Millisecond}},
		core.ReplyMsg{From: 2, Cycle: 1, Attempt: 2, Payload: core.EmptyReply{}},
		core.ByeMsg{From: 11},
		core.AnnounceMsg{From: 13, MaxAge: time.Minute},
		core.LeaveNotice{Device: 1, Origin: 2, Seq: 77, TTL: 4},
	}
	for _, msg := range msgs {
		b, err := Encode(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		var f Frame
		if err := DecodeFrame(b, &f); err != nil {
			t.Fatalf("DecodeFrame(%T): %v", msg, err)
		}
		boxed, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		// Re-encoding the flat frame must reproduce the wire bytes.
		b2, err := AppendEncodeFrame(nil, &f)
		if err != nil {
			t.Fatalf("AppendEncodeFrame(%T): %v", msg, err)
		}
		if string(b2) != string(b) {
			t.Fatalf("%T: frame re-encode differs: %x vs %x", msg, b2, b)
		}
		// And the boxed decode of those bytes must equal the original.
		if boxed != msg {
			t.Fatalf("%T: boxed decode = %#v, want %#v", msg, boxed, msg)
		}
	}
}

// TestDecodeFrameZeroAlloc pins the property the fleet's receive path
// depends on: decoding into a caller-owned Frame allocates nothing.
func TestDecodeFrameZeroAlloc(t *testing.T) {
	b, err := Encode(core.ReplyMsg{From: 9, Cycle: 12, Payload: core.DCPPReply{Wait: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeFrame(b, &f); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Fatalf("DecodeFrame allocates %.1f times per call, want 0", allocs)
	}
}
