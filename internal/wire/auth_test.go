package wire

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

var testMaster = []byte("auth-test-master-secret")

func pairKey(t testing.TB, cp, device ident.NodeID) *AuthKey {
	t.Helper()
	k, err := DeriveKey(testMaster, PairInfo(cp, device))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func authMsgs() []core.Message {
	return []core.Message{
		core.ProbeMsg{From: 7, Cycle: 42, Attempt: 1},
		core.ReplyMsg{From: 1, Cycle: 42, Attempt: 0, Payload: core.SAPPReply{
			ProbeCount: 900, LastProbers: [2]ident.NodeID{3, 9},
		}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 2, Payload: core.DCPPReply{Wait: 1500 * time.Millisecond}},
		core.ReplyMsg{From: 1, Cycle: 7, Attempt: 3, Payload: core.EmptyReply{}},
		core.ByeMsg{From: 12},
		core.AnnounceMsg{From: 4, MaxAge: 30 * time.Second},
		core.LeaveNotice{Device: 1, Origin: 5, Seq: 77, TTL: 3},
	}
}

// Every message type round-trips through the authenticated encoding:
// encode v2, decode structurally, verify the tag, and re-encode to the
// exact input bytes with the tag preserved.
func TestAuthRoundTrip(t *testing.T) {
	k := pairKey(t, 7, 1)
	for _, msg := range authMsgs() {
		b, err := AppendEncodeAuth(nil, msg, k)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		if len(b) > MaxFrameSize {
			t.Fatalf("%T: %d bytes exceeds MaxFrameSize %d", msg, len(b), MaxFrameSize)
		}
		var f Frame
		if err := DecodeFrame(b, &f); err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if f.Version != VersionAuth {
			t.Fatalf("%T: version %d, want %d", msg, f.Version, VersionAuth)
		}
		if !k.VerifyFrame(&f) {
			t.Fatalf("%T: genuine frame failed verification", msg)
		}
		re, err := AppendEncodeFrame(nil, &f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("%T: v2 re-encode differs:\n in  %x\n out %x", msg, b, re)
		}
	}
}

// Every single-bit flip anywhere in a v2 frame — header, payload or
// tag — must break verification (or structural decode). This is the
// cryptographic upgrade over the v1 CRC: no flip pattern survives.
func TestAuthEveryBitFlipRejected(t *testing.T) {
	k := pairKey(t, 7, 1)
	for _, msg := range authMsgs() {
		b, err := AppendEncodeAuth(nil, msg, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(b)*8; i++ {
			corrupted := bytes.Clone(b)
			corrupted[i/8] ^= 1 << (i % 8)
			var f Frame
			if err := DecodeFrame(corrupted, &f); err != nil {
				continue // structurally rejected: fine
			}
			if f.Version != VersionAuth {
				continue // flipped into a v1 frame: CRC already rejected it above
			}
			if k.VerifyFrame(&f) {
				t.Fatalf("%T: bit flip %d verified as genuine", msg, i)
			}
		}
	}
}

// A frame signed under one pairwise key never verifies under another —
// per-pair derivation means a compromised or malicious peer cannot
// forge traffic for any other pair.
func TestAuthKeySeparation(t *testing.T) {
	k1 := pairKey(t, 7, 1)
	k2 := pairKey(t, 8, 1) // different CP, same device
	k3 := pairKey(t, 7, 2) // same CP, different device
	dev, err := DeriveKey(testMaster, DeviceInfo(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendEncodeAuth(nil, core.ProbeMsg{From: 7, Cycle: 9}, k1)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeFrame(b, &f); err != nil {
		t.Fatal(err)
	}
	if !k1.VerifyFrame(&f) {
		t.Fatal("genuine frame failed under its own key")
	}
	for name, k := range map[string]*AuthKey{"other-cp": k2, "other-device": k3, "device-broadcast": dev} {
		if k.VerifyFrame(&f) {
			t.Fatalf("frame verified under unrelated key %s", name)
		}
	}
	other, err := DeriveKey([]byte("a different master"), PairInfo(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if other.VerifyFrame(&f) {
		t.Fatal("frame verified under a different master secret")
	}
}

// DeriveKey is deterministic: both endpoints of a pair derive the same
// schedule from the shared master.
func TestDeriveKeyDeterministic(t *testing.T) {
	a := pairKey(t, 3, 4)
	b := pairKey(t, 3, 4)
	frame, err := AppendEncodeAuth(nil, core.ByeMsg{From: 4}, a)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeFrame(frame, &f); err != nil {
		t.Fatal(err)
	}
	if !b.VerifyFrame(&f) {
		t.Fatal("independently derived schedule rejected the frame")
	}
	if _, err := DeriveKey(nil, PairInfo(1, 2)); err == nil {
		t.Fatal("empty master accepted")
	}
}

// The boxed Decode path must refuse v2 frames rather than return an
// unverified message.
func TestDecodeRejectsAuthFrames(t *testing.T) {
	k := pairKey(t, 7, 1)
	b, err := AppendEncodeAuth(nil, core.ProbeMsg{From: 7, Cycle: 1}, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b); !errors.Is(err, ErrAuthFrame) {
		t.Fatalf("err = %v, want ErrAuthFrame", err)
	}
}

// Truncating a v2 frame anywhere in the tag must fail structurally.
func TestAuthTruncatedTag(t *testing.T) {
	k := pairKey(t, 7, 1)
	b, err := AppendEncodeAuth(nil, core.ProbeMsg{From: 7, Cycle: 1}, k)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	for cut := 1; cut <= TagSize; cut++ {
		if err := DecodeFrame(b[:len(b)-cut], &f); err == nil {
			t.Fatalf("frame truncated by %d bytes accepted", cut)
		}
	}
}

// The decode errors stay static sentinels — a garbage flood must not
// allocate an error value per packet (the satellite bugfix this pins).
func TestDecodeErrorsAreSentinels(t *testing.T) {
	good, err := Encode(core.ProbeMsg{From: 7, Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	badVersion := bytes.Clone(good)
	badVersion[2] = 99
	var f Frame
	if err := DecodeFrame(badVersion, &f); err != ErrBadVersion {
		t.Fatalf("bad version: err = %v (%T), want the ErrBadVersion sentinel itself", err, err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if DecodeFrame(badVersion, &f) == nil {
			t.Error("bad version accepted")
		}
	}); allocs != 0 {
		t.Fatalf("bad-version decode allocates %.1f per call, want 0", allocs)
	}
}

// Sign and verify allocate nothing once the schedule exists — the
// property the fleet hot path's 0 allocs/op gate extends over.
func TestAuthZeroAlloc(t *testing.T) {
	k := pairKey(t, 7, 1)
	vk := pairKey(t, 7, 1)
	var msg core.Message = core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1, Payload: core.DCPPReply{Wait: time.Second}}
	buf := make([]byte, 0, MaxFrameSize)
	var f Frame
	if allocs := testing.AllocsPerRun(200, func() {
		b, err := AppendEncodeAuth(buf[:0], msg, k)
		if err != nil {
			t.Error(err)
			return
		}
		if err := DecodeFrame(b, &f); err != nil {
			t.Error(err)
			return
		}
		if !vk.VerifyFrame(&f) {
			t.Error("verification failed")
		}
	}); allocs != 0 {
		t.Fatalf("sign+decode+verify allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkAuthSign(b *testing.B) {
	k := NewAuthKey(testMaster)
	var msg core.Message = core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1, Payload: core.DCPPReply{Wait: time.Second}}
	buf := make([]byte, 0, MaxFrameSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = AppendEncodeAuth(buf[:0], msg, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuthVerify(b *testing.B) {
	k := NewAuthKey(testMaster)
	frame, err := AppendEncodeAuth(nil, core.ReplyMsg{From: 1, Cycle: 9, Attempt: 1,
		Payload: core.DCPPReply{Wait: time.Second}}, k)
	if err != nil {
		b.Fatal(err)
	}
	var f Frame
	if err := DecodeFrame(frame, &f); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.VerifyFrame(&f) {
			b.Fatal("verification failed")
		}
	}
}
