// Package wire defines the binary on-the-wire encoding of the protocol
// messages for the real-network (UDP) runtime.
//
// Frame layout (big endian):
//
//	magic   uint16  0xAD05 ("are you still there", DSN'05)
//	version uint8   1 (checksummed) or 2 (authenticated)
//	type    uint8   message type
//	from    uint32  sender node id
//	cycle   uint32  probe cycle (0 for bye/leave)
//	attempt uint8   attempt within the cycle (0 for bye/leave)
//	payload ...     type specific (see below)
//	trailer         v1: crc uint32, IEEE CRC-32 over everything above
//	                v2: tag [16]byte, truncated HMAC-SHA256 over
//	                    everything above (see auth.go)
//
// Payloads: probe/bye/empty-reply carry none; a SAPP reply carries
// pc (uint64) and the two last-prober ids (2×uint32); a DCPP reply
// carries the wait in nanoseconds (int64); a leave notice carries the
// device, origin, sequence number (3×uint32) and TTL (uint8).
//
// Version 1 frames are integrity-checked (CRC-32 catches corruption,
// not forgery). Version 2 frames replace the checksum with a truncated
// HMAC-SHA256 tag keyed per sender/receiver pair: the tag subsumes the
// CRC's corruption detection and additionally authenticates the frame,
// so an on-path attacker without the key can neither forge nor tamper.
// DecodeFrame accepts both versions structurally; verifying a v2 tag is
// a separate keyed step (AuthKey.VerifyFrame) so receivers can look up
// the pairwise key after demultiplexing. The boxed Decode path remains
// v1-only — it has no key plumbing, and silently accepting
// unverified-but-authenticated frames would be a downgrade.
//
// Every frame fits comfortably in one UDP datagram (max 45 bytes), in
// keeping with the protocol's "small computing devices" ambition.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Magic identifies presence-protocol frames.
const Magic uint16 = 0xAD05

// Version is the unauthenticated (CRC-trailed) wire format version.
const Version uint8 = 1

// VersionAuth is the authenticated wire format version: the CRC-32
// trailer is replaced by a TagSize-byte truncated HMAC-SHA256 tag.
const VersionAuth uint8 = 2

// Message types on the wire.
const (
	typeProbe      uint8 = 1
	typeReplySAPP  uint8 = 2
	typeReplyDCPP  uint8 = 3
	typeReplyEmpty uint8 = 4
	typeBye        uint8 = 5
	typeLeave      uint8 = 6
	typeAnnounce   uint8 = 7
)

const (
	headerSize = 2 + 1 + 1 + 4 + 4 + 1
	crcSize    = 4
	// TagSize is the truncated HMAC-SHA256 tag length of a v2 frame.
	TagSize = 16
	// MaxFrameSize is the largest encoded frame (an authenticated SAPP
	// reply: header + 16-byte payload + tag).
	MaxFrameSize = headerSize + 8 + 4 + 4 + TagSize
)

// Decoding errors. All are static sentinels: DecodeFrame runs per
// received packet on fleet hot paths, where a garbage or attack flood
// must not allocate an error per frame (receivers count rejects in
// Counters.BadFrames instead of formatting them).
var (
	ErrTooShort    = errors.New("wire: frame too short")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrBadLength   = errors.New("wire: wrong frame length for type")
	// ErrAuthFrame reports a structurally valid v2 (authenticated) frame
	// handed to the boxed Decode path, which has no key plumbing and
	// would otherwise silently skip tag verification.
	ErrAuthFrame = errors.New("wire: authenticated frame requires keyed decode")
)

// Encode serialises a protocol message into a fresh buffer.
func Encode(msg core.Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, MaxFrameSize), msg)
}

// AppendEncode serialises msg, appending to dst (which may be nil), and
// returns the extended buffer. It fails on unknown message or payload
// types. Pooled pointer forms encode identically to their value forms
// and without boxing them back into values, so encoding a pooled
// message into a reused buffer allocates nothing — the property the
// fleet's per-packet send path is built on (the caller keeps ownership
// either way).
func AppendEncode(dst []byte, msg core.Message) ([]byte, error) {
	f, err := frameOf(msg)
	if err != nil {
		return nil, err
	}
	return AppendEncodeFrame(dst, &f)
}

// AppendEncodeAuth serialises msg as an authenticated v2 frame, tagged
// under k, appending to dst. Like AppendEncode it allocates nothing
// when dst has capacity — the fleet's send path signs into its reusable
// send-queue slots.
func AppendEncodeAuth(dst []byte, msg core.Message, k *AuthKey) ([]byte, error) {
	f, err := frameOf(msg)
	if err != nil {
		return nil, err
	}
	return AppendEncodeFrameAuth(dst, &f, k)
}

// frameOf flattens a boxed message into a Frame. Pooled pointer forms
// flatten identically to their value forms without boxing them back.
func frameOf(msg core.Message) (Frame, error) {
	var f Frame
	switch m := msg.(type) {
	case core.ProbeMsg:
		f = Frame{Kind: KindProbe, From: m.From, Cycle: m.Cycle, Attempt: m.Attempt}
	case *core.ProbeMsg:
		f = Frame{Kind: KindProbe, From: m.From, Cycle: m.Cycle, Attempt: m.Attempt}
	case core.ReplyMsg:
		f = Frame{From: m.From, Cycle: m.Cycle, Attempt: m.Attempt}
		if err := replyFrame(&f, m.Payload); err != nil {
			return Frame{}, err
		}
	case *core.ReplyMsg:
		f = Frame{From: m.From, Cycle: m.Cycle, Attempt: m.Attempt}
		if err := replyFrame(&f, m.Payload); err != nil {
			return Frame{}, err
		}
	case core.ByeMsg:
		f = Frame{Kind: KindBye, From: m.From}
	case core.AnnounceMsg:
		f = Frame{Kind: KindAnnounce, From: m.From, MaxAge: m.MaxAge}
	case core.LeaveNotice:
		f = Frame{Kind: KindLeave, From: m.Origin, Device: m.Device, Origin: m.Origin, Seq: m.Seq, TTL: m.TTL}
	default:
		return Frame{}, fmt.Errorf("wire: unsupported message type %T", msg)
	}
	return f, nil
}

// replyFrame fills the payload union from either payload form.
func replyFrame(f *Frame, pl core.Payload) error {
	switch p := pl.(type) {
	case core.SAPPReply:
		f.Kind, f.ProbeCount, f.LastProbers = KindReplySAPP, p.ProbeCount, p.LastProbers
	case *core.SAPPReply:
		f.Kind, f.ProbeCount, f.LastProbers = KindReplySAPP, p.ProbeCount, p.LastProbers
	case core.DCPPReply:
		f.Kind, f.Wait = KindReplyDCPP, p.Wait
	case *core.DCPPReply:
		f.Kind, f.Wait = KindReplyDCPP, p.Wait
	case core.EmptyReply:
		f.Kind = KindReplyEmpty
	default:
		return fmt.Errorf("wire: unsupported reply payload %T", pl)
	}
	return nil
}

// AppendEncodeFrame serialises one flat Frame — DecodeFrame's inverse.
// Frames with Version 0 or 1 gain a CRC trailer; a Frame with Version 2
// is re-serialised with its Tag field verbatim (the decode→re-encode
// identity the fuzzer pins), which is only useful for frames that came
// out of DecodeFrame — fresh authenticated encodes go through
// AppendEncodeFrameAuth, which computes the tag.
func AppendEncodeFrame(dst []byte, f *Frame) ([]byte, error) {
	start := len(dst)
	version := f.Version
	if version == 0 {
		version = Version
	}
	out, err := appendFrameBody(dst, f, version)
	if err != nil {
		return nil, err
	}
	if version == VersionAuth {
		return append(out, f.Tag[:]...), nil
	}
	crc := crc32.ChecksumIEEE(out[start:])
	return binary.BigEndian.AppendUint32(out, crc), nil
}

// AppendEncodeFrameAuth serialises one flat Frame as a v2 frame with a
// freshly computed tag under k, recording the tag in f.Tag.
func AppendEncodeFrameAuth(dst []byte, f *Frame, k *AuthKey) ([]byte, error) {
	start := len(dst)
	out, err := appendFrameBody(dst, f, VersionAuth)
	if err != nil {
		return nil, err
	}
	f.Version = VersionAuth
	copy(f.Tag[:], k.tag(out[start:]))
	return append(out, f.Tag[:]...), nil
}

// appendFrameBody serialises the signed/checksummed region of a frame:
// header (with the given version byte) plus payload, no trailer.
func appendFrameBody(dst []byte, f *Frame, version uint8) ([]byte, error) {
	var typ uint8
	switch f.Kind {
	case KindProbe:
		typ = typeProbe
	case KindReplySAPP:
		typ = typeReplySAPP
	case KindReplyDCPP:
		typ = typeReplyDCPP
	case KindReplyEmpty:
		typ = typeReplyEmpty
	case KindBye:
		typ = typeBye
	case KindAnnounce:
		typ = typeAnnounce
	case KindLeave:
		typ = typeLeave
	default:
		return nil, fmt.Errorf("wire: unsupported frame kind %d", f.Kind)
	}
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, version, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.From))
	dst = binary.BigEndian.AppendUint32(dst, f.Cycle)
	dst = append(dst, f.Attempt)
	switch f.Kind {
	case KindReplySAPP:
		dst = binary.BigEndian.AppendUint64(dst, f.ProbeCount)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.LastProbers[0]))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.LastProbers[1]))
	case KindReplyDCPP:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.Wait.Nanoseconds()))
	case KindAnnounce:
		dst = binary.BigEndian.AppendUint64(dst, uint64(f.MaxAge.Nanoseconds()))
	case KindLeave:
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Device))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.Origin))
		dst = binary.BigEndian.AppendUint32(dst, f.Seq)
		dst = append(dst, f.TTL)
	}
	return dst, nil
}

// Kind tags a decoded Frame with its message type.
type Kind uint8

// Frame kinds, one per wire message type.
const (
	KindInvalid Kind = iota
	KindProbe
	KindReplySAPP
	KindReplyDCPP
	KindReplyEmpty
	KindBye
	KindAnnounce
	KindLeave
)

// Frame is one decoded wire frame as a flat struct: a tagged union of
// every message type's fields, with no interface boxing. DecodeFrame
// fills one without allocating, which is what packet-per-microsecond
// receive loops (internal/fleet's shard loops) dispatch on; Decode
// wraps it for callers that want the core.Message form and can afford
// the box.
//
// Valid fields by Kind: From always; Cycle and Attempt for probes and
// replies; ProbeCount and LastProbers for SAPP replies; Wait for DCPP
// replies; MaxAge for announces; Device, Origin, Seq and TTL for leave
// notices. Version records the wire version the frame was decoded from
// (encoders treat 0 as 1); Tag holds a v2 frame's unverified HMAC tag —
// call AuthKey.VerifyFrame before trusting any other field of a
// VersionAuth frame.
type Frame struct {
	Kind    Kind
	Version uint8
	From    ident.NodeID
	Cycle   uint32
	Attempt uint8

	ProbeCount  uint64
	LastProbers [2]ident.NodeID
	Wait        time.Duration
	MaxAge      time.Duration

	Device ident.NodeID
	Origin ident.NodeID
	Seq    uint32
	TTL    uint8

	Tag [TagSize]byte
}

// ReplayKey is a reply frame's replay-detection identity: the
// (From, Cycle) pair packed the way reply demultiplexers key their
// pending tables. Replay protection is receiver-local state over
// fields every reply already carries — the wire format needs no nonce
// or timestamp, so hardened and unhardened nodes stay codec-compatible
// frame for frame.
func (f *Frame) ReplayKey() uint64 {
	return uint64(f.From)<<32 | uint64(f.Cycle)
}

// DecodeFrame parses one frame into f without allocating. It validates
// magic, version, the v1 checksum and the exact frame length for the
// message type; on error f.Kind is KindInvalid. A v2 frame is accepted
// structurally with its tag copied into f.Tag but NOT verified — the
// tag is keyed, and receivers demultiplex first to find the pairwise
// key, then call AuthKey.VerifyFrame. Every error is a static sentinel
// so a garbage flood costs the receive path no allocations.
func DecodeFrame(b []byte, f *Frame) error {
	f.Kind = KindInvalid
	if len(b) < headerSize+crcSize {
		return ErrTooShort
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return ErrBadMagic
	}
	var payload []byte
	switch b[2] {
	case Version:
		body, crcBytes := b[:len(b)-crcSize], b[len(b)-crcSize:]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(crcBytes) {
			return ErrBadChecksum
		}
		payload = body[headerSize:]
	case VersionAuth:
		if len(b) < headerSize+TagSize {
			return ErrTooShort
		}
		payload = b[headerSize : len(b)-TagSize]
	default:
		return ErrBadVersion
	}
	typ := b[3]
	f.Version = b[2]
	f.From = ident.NodeID(binary.BigEndian.Uint32(b[4:]))
	f.Cycle = binary.BigEndian.Uint32(b[8:])
	f.Attempt = b[12]
	if f.Version == VersionAuth {
		copy(f.Tag[:], b[len(b)-TagSize:])
	} else {
		f.Tag = [TagSize]byte{}
	}
	switch typ {
	case typeProbe:
		if len(payload) != 0 {
			return ErrBadLength
		}
		f.Kind = KindProbe
	case typeReplySAPP:
		if len(payload) != 16 {
			return ErrBadLength
		}
		f.Kind = KindReplySAPP
		f.ProbeCount = binary.BigEndian.Uint64(payload)
		f.LastProbers = [2]ident.NodeID{
			ident.NodeID(binary.BigEndian.Uint32(payload[8:])),
			ident.NodeID(binary.BigEndian.Uint32(payload[12:])),
		}
	case typeReplyDCPP:
		if len(payload) != 8 {
			return ErrBadLength
		}
		f.Kind = KindReplyDCPP
		f.Wait = time.Duration(int64(binary.BigEndian.Uint64(payload)))
	case typeReplyEmpty:
		if len(payload) != 0 {
			return ErrBadLength
		}
		f.Kind = KindReplyEmpty
	case typeBye:
		if len(payload) != 0 {
			return ErrBadLength
		}
		f.Kind = KindBye
	case typeAnnounce:
		if len(payload) != 8 {
			return ErrBadLength
		}
		f.Kind = KindAnnounce
		f.MaxAge = time.Duration(int64(binary.BigEndian.Uint64(payload)))
	case typeLeave:
		if len(payload) != 13 {
			return ErrBadLength
		}
		f.Kind = KindLeave
		f.Device = ident.NodeID(binary.BigEndian.Uint32(payload))
		f.Origin = ident.NodeID(binary.BigEndian.Uint32(payload[4:]))
		f.Seq = binary.BigEndian.Uint32(payload[8:])
		f.TTL = payload[12]
	default:
		return ErrUnknownType
	}
	return nil
}

// Decode parses one frame. It validates magic, version, checksum and
// the exact frame length for the message type. It speaks v1 only: a
// structurally valid v2 frame returns ErrAuthFrame, because this path
// has nowhere to thread the verification key and returning the message
// unverified would quietly drop authentication.
func Decode(b []byte) (core.Message, error) {
	var f Frame
	if err := DecodeFrame(b, &f); err != nil {
		return nil, err
	}
	if f.Version == VersionAuth {
		return nil, ErrAuthFrame
	}
	switch f.Kind {
	case KindProbe:
		return core.ProbeMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt}, nil
	case KindReplySAPP:
		return core.ReplyMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt, Payload: core.SAPPReply{
			ProbeCount:  f.ProbeCount,
			LastProbers: f.LastProbers,
		}}, nil
	case KindReplyDCPP:
		return core.ReplyMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt, Payload: core.DCPPReply{Wait: f.Wait}}, nil
	case KindReplyEmpty:
		return core.ReplyMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt, Payload: core.EmptyReply{}}, nil
	case KindBye:
		return core.ByeMsg{From: f.From}, nil
	case KindAnnounce:
		return core.AnnounceMsg{From: f.From, MaxAge: f.MaxAge}, nil
	case KindLeave:
		return core.LeaveNotice{Device: f.Device, Origin: f.Origin, Seq: f.Seq, TTL: f.TTL}, nil
	default:
		return nil, ErrUnknownType
	}
}
