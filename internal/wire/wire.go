// Package wire defines the binary on-the-wire encoding of the protocol
// messages for the real-network (UDP) runtime.
//
// Frame layout (big endian):
//
//	magic   uint16  0xAD05 ("are you still there", DSN'05)
//	version uint8   1
//	type    uint8   message type
//	from    uint32  sender node id
//	cycle   uint32  probe cycle (0 for bye/leave)
//	attempt uint8   attempt within the cycle (0 for bye/leave)
//	payload ...     type specific (see below)
//	crc     uint32  IEEE CRC-32 over everything above
//
// Payloads: probe/bye/empty-reply carry none; a SAPP reply carries
// pc (uint64) and the two last-prober ids (2×uint32); a DCPP reply
// carries the wait in nanoseconds (int64); a leave notice carries the
// device, origin, sequence number (3×uint32) and TTL (uint8).
//
// Every frame fits comfortably in one UDP datagram (max 31 bytes), in
// keeping with the protocol's "small computing devices" ambition.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
)

// Magic identifies presence-protocol frames.
const Magic uint16 = 0xAD05

// Version is the current wire format version.
const Version uint8 = 1

// Message types on the wire.
const (
	typeProbe      uint8 = 1
	typeReplySAPP  uint8 = 2
	typeReplyDCPP  uint8 = 3
	typeReplyEmpty uint8 = 4
	typeBye        uint8 = 5
	typeLeave      uint8 = 6
	typeAnnounce   uint8 = 7
)

const (
	headerSize = 2 + 1 + 1 + 4 + 4 + 1
	crcSize    = 4
	// MaxFrameSize is the largest encoded frame (SAPP reply).
	MaxFrameSize = headerSize + 8 + 4 + 4 + crcSize
)

// Decoding errors.
var (
	ErrTooShort    = errors.New("wire: frame too short")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrBadLength   = errors.New("wire: wrong frame length for type")
)

// Encode serialises a protocol message into a fresh buffer.
func Encode(msg core.Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, MaxFrameSize), msg)
}

// AppendEncode serialises msg, appending to dst (which may be nil), and
// returns the extended buffer. It fails on unknown message or payload
// types. Pooled pointer forms encode identically to their value forms
// (the caller keeps ownership; flattening copies the fields out).
func AppendEncode(dst []byte, msg core.Message) ([]byte, error) {
	msg = core.Flatten(msg)
	var (
		typ           uint8
		from          ident.NodeID
		cycle         uint32
		attempt       uint8
		encodePayload func(b []byte) []byte
	)
	switch m := msg.(type) {
	case core.ProbeMsg:
		typ, from, cycle, attempt = typeProbe, m.From, m.Cycle, m.Attempt
	case core.ReplyMsg:
		from, cycle, attempt = m.From, m.Cycle, m.Attempt
		switch p := m.Payload.(type) {
		case core.SAPPReply:
			typ = typeReplySAPP
			encodePayload = func(b []byte) []byte {
				b = binary.BigEndian.AppendUint64(b, p.ProbeCount)
				b = binary.BigEndian.AppendUint32(b, uint32(p.LastProbers[0]))
				return binary.BigEndian.AppendUint32(b, uint32(p.LastProbers[1]))
			}
		case core.DCPPReply:
			typ = typeReplyDCPP
			encodePayload = func(b []byte) []byte {
				return binary.BigEndian.AppendUint64(b, uint64(p.Wait.Nanoseconds()))
			}
		case core.EmptyReply:
			typ = typeReplyEmpty
		default:
			return nil, fmt.Errorf("wire: unsupported reply payload %T", m.Payload)
		}
	case core.ByeMsg:
		typ, from = typeBye, m.From
	case core.AnnounceMsg:
		typ, from = typeAnnounce, m.From
		maxAge := m.MaxAge
		encodePayload = func(b []byte) []byte {
			return binary.BigEndian.AppendUint64(b, uint64(maxAge.Nanoseconds()))
		}
	case core.LeaveNotice:
		typ, from = typeLeave, m.Origin
		p := m
		encodePayload = func(b []byte) []byte {
			b = binary.BigEndian.AppendUint32(b, uint32(p.Device))
			b = binary.BigEndian.AppendUint32(b, uint32(p.Origin))
			b = binary.BigEndian.AppendUint32(b, p.Seq)
			return append(b, p.TTL)
		}
	default:
		return nil, fmt.Errorf("wire: unsupported message type %T", msg)
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, typ)
	dst = binary.BigEndian.AppendUint32(dst, uint32(from))
	dst = binary.BigEndian.AppendUint32(dst, cycle)
	dst = append(dst, attempt)
	if encodePayload != nil {
		dst = encodePayload(dst)
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc), nil
}

// Decode parses one frame. It validates magic, version, checksum and the
// exact frame length for the message type.
func Decode(b []byte) (core.Message, error) {
	if len(b) < headerSize+crcSize {
		return nil, ErrTooShort
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return nil, ErrBadMagic
	}
	if b[2] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	body, crcBytes := b[:len(b)-crcSize], b[len(b)-crcSize:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(crcBytes) {
		return nil, ErrBadChecksum
	}
	typ := b[3]
	from := ident.NodeID(binary.BigEndian.Uint32(b[4:]))
	cycle := binary.BigEndian.Uint32(b[8:])
	attempt := b[12]
	payload := body[headerSize:]
	switch typ {
	case typeProbe:
		if len(payload) != 0 {
			return nil, ErrBadLength
		}
		return core.ProbeMsg{From: from, Cycle: cycle, Attempt: attempt}, nil
	case typeReplySAPP:
		if len(payload) != 16 {
			return nil, ErrBadLength
		}
		return core.ReplyMsg{From: from, Cycle: cycle, Attempt: attempt, Payload: core.SAPPReply{
			ProbeCount: binary.BigEndian.Uint64(payload),
			LastProbers: [2]ident.NodeID{
				ident.NodeID(binary.BigEndian.Uint32(payload[8:])),
				ident.NodeID(binary.BigEndian.Uint32(payload[12:])),
			},
		}}, nil
	case typeReplyDCPP:
		if len(payload) != 8 {
			return nil, ErrBadLength
		}
		wait := time.Duration(int64(binary.BigEndian.Uint64(payload)))
		return core.ReplyMsg{From: from, Cycle: cycle, Attempt: attempt, Payload: core.DCPPReply{Wait: wait}}, nil
	case typeReplyEmpty:
		if len(payload) != 0 {
			return nil, ErrBadLength
		}
		return core.ReplyMsg{From: from, Cycle: cycle, Attempt: attempt, Payload: core.EmptyReply{}}, nil
	case typeBye:
		if len(payload) != 0 {
			return nil, ErrBadLength
		}
		return core.ByeMsg{From: from}, nil
	case typeAnnounce:
		if len(payload) != 8 {
			return nil, ErrBadLength
		}
		maxAge := time.Duration(int64(binary.BigEndian.Uint64(payload)))
		return core.AnnounceMsg{From: from, MaxAge: maxAge}, nil
	case typeLeave:
		if len(payload) != 13 {
			return nil, ErrBadLength
		}
		return core.LeaveNotice{
			Device: ident.NodeID(binary.BigEndian.Uint32(payload)),
			Origin: ident.NodeID(binary.BigEndian.Uint32(payload[4:])),
			Seq:    binary.BigEndian.Uint32(payload[8:]),
			TTL:    payload[12],
		}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, typ)
	}
}
