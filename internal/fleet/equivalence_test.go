package fleet_test

// Batch/single-path equivalence: the same memnet scenario driven once
// through the native BatchPacketConn path and once through the
// forced single-datagram fallback must put byte-identical traffic on
// every link and leave identical fleet counters behind. Batching is an
// I/O-shape optimisation; if it ever changes WHAT is sent — an extra
// retransmit, a reordered encode, a dropped reply — this test fails.
//
// The scenario is made exactly reproducible by construction: a perfect
// memnet network (no loss, no delay) and a per-CP policy that runs
// precisely cycleCount probe cycles and then goes quiet, so both runs
// send the same frames no matter how wall-clock scheduling interleaves
// them. Interleaving across CPs on a shared link is NOT part of the
// contract (it is timing), so each link's traffic is compared as a
// sorted multiset.

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
)

const (
	eqCPs        = 24
	eqCycles     = 5
	eqDeviceID   = ident.NodeID(7)
	eqCPBaseID   = ident.NodeID(100)
	eqCycleDelay = 2 * time.Millisecond
)

// nCyclesPolicy probes with a short fixed delay for a set number of
// cycles, then parks the CP for an hour — bounding the scenario's
// traffic exactly.
type nCyclesPolicy struct{ left int }

func (p *nCyclesPolicy) NextDelay(core.CycleResult) time.Duration {
	p.left--
	if p.left <= 0 {
		return time.Hour
	}
	return eqCycleDelay
}

// linkTraffic records every delivered frame per (from, to) link.
type linkTraffic struct {
	mu     sync.Mutex
	frames map[string][][]byte
}

func (lt *linkTraffic) observe(ev memnet.PacketEvent) {
	if ev.Verdict != memnet.Delivered {
		return
	}
	key := fmt.Sprintf("%s->%s", ev.From, ev.To)
	frame := append([]byte(nil), ev.Frame...)
	lt.mu.Lock()
	lt.frames[key] = append(lt.frames[key], frame)
	lt.mu.Unlock()
}

func (lt *linkTraffic) sorted() map[string][][]byte {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for _, frames := range lt.frames {
		sort.Slice(frames, func(i, j int) bool { return bytes.Compare(frames[i], frames[j]) < 0 })
	}
	return lt.frames
}

// eqOutcome is everything one run produced that the other must match.
type eqOutcome struct {
	traffic map[string][][]byte
	cp      fleet.Counters // CP fleet totals, gauges cleared
	dev     fleet.Counters // device fleet totals, gauges cleared
	net     memnet.Counters
}

// clearVolatile zeroes the fields the two paths legitimately differ
// in: syscall counts (the whole point of batching) and point-in-time
// gauges sampled at an arbitrary instant.
func clearVolatile(c *fleet.Counters) {
	c.SyscallsIn, c.SyscallsOut = 0, 0
	c.WheelDepth, c.PendingProbes = 0, 0
}

func runEquivalenceScenario(t *testing.T, forceSingle bool) eqOutcome {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	defer net.Close()
	tap := &linkTraffic{frames: make(map[string][][]byte)}
	net.Observe(tap.observe)
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, ForceSingleDatagram: forceSingle})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(eqDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(eqDeviceID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	cpFleet, err := fleet.New(fleet.Config{Shards: 2, Transport: transport, ForceSingleDatagram: forceSingle})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}
	cps := make([]*fleet.ControlPoint, eqCPs)
	for i := range cps {
		cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID:             eqCPBaseID + ident.NodeID(i),
			Device:         eqDeviceID,
			DeviceAddrPort: dev.Addr(),
			Policy:         &nCyclesPolicy{left: eqCycles},
			// Instant in-memory delivery: a retransmit would mean a
			// stall of seconds, so generous timeouts keep loaded CI
			// boxes from injecting extra traffic into the comparison.
			Retransmit: core.RetransmitConfig{
				FirstTimeout: 30 * time.Second,
				RetryTimeout: 30 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cps[i] = cp
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, cp := range cps {
		for cp.Stats().CyclesOK < eqCycles {
			if time.Now().After(deadline) {
				t.Fatalf("cp %v stuck at %d cycles (single=%v)", cp.ID(), cp.Stats().CyclesOK, forceSingle)
			}
			time.Sleep(time.Millisecond)
		}
	}

	out := eqOutcome{
		cp:  cpFleet.Snapshot().Total,
		dev: devFleet.Snapshot().Total,
		net: net.Counters(),
	}
	clearVolatile(&out.cp)
	clearVolatile(&out.dev)
	out.traffic = tap.sorted()
	return out
}

func TestBatchSingleEquivalence(t *testing.T) {
	batch := runEquivalenceScenario(t, false)
	single := runEquivalenceScenario(t, true)

	if batch.cp != single.cp {
		t.Errorf("CP fleet counters differ:\n batch:  %+v\n single: %+v", batch.cp, single.cp)
	}
	if batch.dev != single.dev {
		t.Errorf("device fleet counters differ:\n batch:  %+v\n single: %+v", batch.dev, single.dev)
	}
	if batch.net != single.net {
		t.Errorf("memnet counters differ:\n batch:  %+v\n single: %+v", batch.net, single.net)
	}
	if want := uint64(eqCPs * eqCycles); batch.cp.ProbesOut != want {
		t.Errorf("ProbesOut = %d, want exactly %d (scenario is traffic-bounded)", batch.cp.ProbesOut, want)
	}

	if len(batch.traffic) != len(single.traffic) {
		t.Fatalf("link sets differ: %d vs %d links", len(batch.traffic), len(single.traffic))
	}
	for link, bf := range batch.traffic {
		sf, ok := single.traffic[link]
		if !ok {
			t.Errorf("link %s only in batch run", link)
			continue
		}
		if len(bf) != len(sf) {
			t.Errorf("link %s: %d frames (batch) vs %d (single)", link, len(bf), len(sf))
			continue
		}
		for i := range bf {
			if !bytes.Equal(bf[i], sf[i]) {
				t.Errorf("link %s frame %d differs: %x vs %x", link, i, bf[i], sf[i])
				break
			}
		}
	}
}
