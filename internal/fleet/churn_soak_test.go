package fleet_test

// Churn soak: a seeded random storm of runtime AddControlPoint /
// RemoveControlPoint / AddDevice / RemoveDevice against a live memnet
// fleet, then a full tear-down. The point is leak detection under
// sustained mutation — after the storm every gauge must return to its
// floor (no stranded probers, no orphaned timers, no pending demux
// entries), the flight recorder must go quiet (removed control points
// record nothing), and closing the fleets must release every
// goroutine. Four fixed seeds keep the schedule reproducible; the CI
// admin-smoke job runs this file under -race.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
)

const (
	soakDeviceID  = ident.NodeID(9)  // long-lived probe target
	soakChurnDev  = ident.NodeID(10) // device churned alongside the CPs
	soakOps       = 240
	soakCPCeiling = 64
)

// soakPolicy probes forever on a short fixed cadence, so removal
// almost always lands on a CP with a cycle in flight or a wheel timer
// armed — the interesting cleanup paths.
type soakPolicy struct{}

func (soakPolicy) NextDelay(core.CycleResult) time.Duration { return 2 * time.Millisecond }

func soakWait(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestChurnSoak(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 2005} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { churnSoak(t, seed, false) })
	}
}

// TestChurnSoakAuthRotation is the same storm with frame authentication
// on and the master key rotating every two dozen mutations: schedule
// re-derivation, the dual-key grace and the auth cache sweeps all run
// concurrently with add/remove churn and migration. One seed keeps the
// -race runtime bounded; the schedule is still reproducible.
func TestChurnSoakAuthRotation(t *testing.T) {
	churnSoak(t, 7, true)
}

func churnSoak(t *testing.T, seed int64, rotateAuth bool) {
	goroutines := runtime.NumGoroutine()

	net := memnet.New(memnet.Faults{})
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

	var auth fleet.AuthConfig
	if rotateAuth {
		auth = fleet.AuthConfig{Key: []byte("soak-master-0")}
	}
	devFleet, err := fleet.New(fleet.Config{Shards: 2, Transport: transport, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(soakDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(soakDeviceID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	cpFleet, err := fleet.New(fleet.Config{Shards: 2, Transport: transport, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}

	// rotateKey pushes master key number n to both fleets back to back.
	// The default 30 s grace covers the push skew and every in-flight
	// frame, so rotation mid-storm must not manufacture rejections.
	rotations := 0
	rotateKey := func(n int) {
		key := []byte(fmt.Sprintf("soak-master-%d", n))
		for _, f := range []*fleet.Fleet{devFleet, cpFleet} {
			rc, _ := f.ConfigSnapshot()
			rc.AuthKey = key
			if _, err := f.SetConfig(rc); err != nil {
				t.Fatalf("rotate to key %d: %v", n, err)
			}
		}
		rotations++
	}

	rng := rand.New(rand.NewSource(seed))
	live := make([]ident.NodeID, 0, soakCPCeiling)
	next := ident.NodeID(1000)
	adds, removes := 0, 0
	churnDevUp := false

	addCP := func() {
		id := next
		next++
		_, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID: id, Device: soakDeviceID, DeviceAddrPort: dev.Addr(),
			Policy: soakPolicy{},
			// Memnet delivers instantly; generous timeouts keep loaded
			// CI boxes from manufacturing lost verdicts mid-soak.
			Retransmit: core.RetransmitConfig{FirstTimeout: 30 * time.Second, RetryTimeout: 30 * time.Second},
		})
		if err != nil {
			t.Fatalf("add CP %v: %v", id, err)
		}
		live = append(live, id)
		adds++
	}
	removeCP := func() {
		i := rng.Intn(len(live))
		id := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		if err := cpFleet.RemoveControlPoint(id); err != nil {
			t.Fatalf("remove CP %v: %v", id, err)
		}
		removes++
	}

	for op := 0; op < soakOps; op++ {
		switch {
		case len(live) == 0 || (rng.Float64() < 0.55 && len(live) < soakCPCeiling):
			addCP()
		default:
			removeCP()
		}
		// Churn the second device every so often: add/remove of a
		// hosted engine with its announce path and shard slot.
		if op%24 == 11 {
			if churnDevUp {
				if err := devFleet.RemoveDevice(soakChurnDev); err != nil {
					t.Fatalf("remove churn device: %v", err)
				}
			} else {
				if _, err := devFleet.AddDevice(soakChurnDev, func(env core.Env) (core.Device, error) {
					return naive.NewDevice(soakChurnDev, env)
				}); err != nil {
					t.Fatalf("add churn device: %v", err)
				}
			}
			churnDevUp = !churnDevUp
		}
		if rotateAuth && op%24 == 17 {
			rotateKey(rotations + 1)
		}
		if op%8 == 0 {
			time.Sleep(time.Millisecond) // let probe traffic interleave with the churn
		}
	}
	if cpFleet.Snapshot().Total.RepliesIn == 0 {
		t.Fatal("soak produced no probe traffic — the storm tested nothing")
	}
	if rotateAuth {
		if rotations == 0 {
			t.Fatal("auth soak rotated no keys — the storm tested nothing")
		}
		// Both fleets authenticated every frame of the storm. Rotation
		// skew between the two SetConfig pushes can reject a handful of
		// in-flight frames (they look like packet loss and are retried);
		// downgrades would mean an unauthenticated frame got through to
		// the high-water check, which must never happen here.
		for name, c := range map[string]fleet.Counters{
			"cp": cpFleet.Snapshot().Total, "dev": devFleet.Snapshot().Total,
		} {
			if c.AuthVerified == 0 {
				t.Errorf("%s fleet verified no frames during the auth soak", name)
			}
			if c.AuthDowngraded != 0 {
				t.Errorf("%s fleet saw v1 frames in an all-v2 soak: %+v", name, c)
			}
		}
		t.Logf("rotated %d keys; cp auth: verified=%d stale=%d rejected=%d",
			rotations,
			cpFleet.Snapshot().Total.AuthVerified,
			cpFleet.Snapshot().Total.AuthStaleKey,
			cpFleet.Snapshot().Total.AuthRejected)
	}

	// Tear everything down through the admin API and let the wire drain.
	for _, id := range live {
		if err := cpFleet.RemoveControlPoint(id); err != nil {
			t.Fatalf("final remove CP %v: %v", id, err)
		}
		removes++
	}
	if churnDevUp {
		if err := devFleet.RemoveDevice(soakChurnDev); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("seed %d: %d adds, %d removes", seed, adds, removes)

	// Every gauge returns to its floor: zero CPs, zero pending demux
	// entries, and exactly one wheel timer per shard (the pending-table
	// sweeper, armed for the fleet's lifetime).
	soakWait(t, 5*time.Second, "gauges to drain", func() bool {
		s := cpFleet.Snapshot().Total
		return s.ControlPoints == 0 && s.LiveControlPoints == 0 &&
			s.PendingProbes == 0 && s.WheelDepth == cpFleet.Shards()
	})
	snap := cpFleet.Snapshot().Total
	if snap.ProbesOut < uint64(adds) {
		t.Errorf("ProbesOut = %d, want at least one probe per added CP (%d)", snap.ProbesOut, adds)
	}
	if snap.RepliesIn > snap.ProbesOut {
		t.Errorf("counters inconsistent: RepliesIn %d > ProbesOut %d", snap.RepliesIn, snap.ProbesOut)
	}

	// The flight recorder goes quiet: with every CP removed, no shard
	// records another event (a stranded prober would keep probing).
	count := func() int {
		n := 0
		for _, events := range cpFleet.FlightSnapshot() {
			n += len(events)
		}
		return n
	}
	before := count()
	time.Sleep(150 * time.Millisecond)
	if after := count(); after != before {
		t.Errorf("flight recorder still recording after full removal: %d -> %d events", before, after)
	}

	// Closing both fleets and the network releases every goroutine the
	// soak spawned.
	if err := cpFleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := devFleet.Close(); err != nil {
		t.Fatal(err)
	}
	net.Close()
	soakWait(t, 5*time.Second, "goroutines to exit", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutines+2
	})
}
