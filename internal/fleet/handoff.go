package fleet

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"presence/internal/ident"
	"presence/internal/trace"
	"presence/internal/wire"
)

// ReusePort routing: with every shard socket bound to one shared port,
// the kernel spreads inbound datagrams by flow hash — a function of the
// peer's address, unknowable to the fleet — while control points are
// placed by NodeID hash. The two hashes agree on nothing, so almost
// every reply lands on a shard that does not host its control point.
// Probing all shards' demux tables per stray would serialize the fleet
// on exactly the cross-shard state this package avoids; instead the
// owning shard's index is embedded in the frame itself: a routed
// control point's cycle numbers carry its shard index in the top
// routeShardBits bits (replies echo the cycle), so any shard can route
// any reply with one shift. The stray is then handed off in-process —
// one copy into the owning shard's handoff inbox, one read-deadline
// poke to wake it — which costs far less than the cross-core socket
// contention it replaces.
const (
	// routeShardBits is how much of the 32-bit cycle space routing
	// claims. The remaining 24 bits stagger and count cycles: at one
	// cycle per second a control point takes half a year to carry into
	// the shard bits, and even then the result is one mis-routed reply
	// handed off once more, not a protocol error.
	routeShardBits  = 8
	routeShardShift = 32 - routeShardBits
	routeCycleMask  = 1<<routeShardShift - 1
)

// MaxRoutedShards is the most shards a ReusePort fleet can have — the
// shard index must fit the cycle bits routing claims.
const MaxRoutedShards = 1 << routeShardBits

// routedCycleSeed embeds a shard index into a control point's cycle
// seed, keeping the low bits' stagger.
func routedCycleSeed(seed uint32, shard int) uint32 {
	return uint32(shard)<<routeShardShift | seed&routeCycleMask
}

// shardMask is a bitset over shard indices (device id → which shards
// host watchers), sized for MaxRoutedShards.
type shardMask [MaxRoutedShards / 64]uint64

func (m *shardMask) set(i int)      { m[i>>6] |= 1 << (i & 63) }
func (m *shardMask) clear(i int)    { m[i>>6] &^= 1 << (i & 63) }
func (m *shardMask) has(i int) bool { return m[i>>6]&(1<<(i&63)) != 0 }

func (m *shardMask) empty() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// handoffFrame is one decoded frame in flight between shards. The frame
// is carried decoded (it is a flat value struct) so the owning shard
// pays no second decode and no buffer management. at is the sender's
// clock at enqueue, the start of the handoff-latency measurement.
type handoffFrame struct {
	from netip.AddrPort
	at   time.Duration
	f    wire.Frame
}

// handoffQueue is a shard's inbox for frames other shards received on
// its behalf. It is the only cross-shard mutable state on the receive
// path, and deliberately tiny: a leaf mutex around an append, a flag
// the owning loop polls, and a wake-up through the socket's read
// deadline. The queue slices ping-pong (q <-> spare) so steady-state
// handoff traffic allocates nothing.
type handoffQueue struct {
	mu sync.Mutex
	q  []handoffFrame
	// spare is the drained slice awaiting reuse; owned by the shard loop
	// between drains, reinstalled as q under mu.
	spare []handoffFrame
	// pending is set exactly when q may be non-empty. The owning loop
	// checks it at the top of every iteration and again right after
	// arming its read deadline, which closes the race between a sender's
	// wake-up poke and the loop overwriting that poke with a fresh
	// deadline.
	pending atomic.Bool
}

// handoffTo queues f on t's handoff inbox and wakes t's loop by
// expiring its read deadline (the same trick the loop's own drain
// rounds use). Runs under s's mutex; takes only t's leaf handoff mutex,
// so shard mutexes never nest.
func (s *shard) handoffTo(t *shard, from netip.AddrPort, f *wire.Frame) {
	s.counters.HandoffsOut++
	var at time.Duration
	if t.hist != nil {
		at = s.fleet.sinceEpoch()
	}
	t.ho.mu.Lock()
	t.ho.q = append(t.ho.q, handoffFrame{from: from, at: at, f: *f})
	t.ho.pending.Store(true)
	t.ho.mu.Unlock()
	t.conn.SetReadDeadline(pastDeadline) //nolint:errcheck // fails only when closed
}

// drainHandoffs dispatches every queued handoff frame locally. Runs on
// the shard loop under the shard mutex, inside a send batch.
func (s *shard) drainHandoffs() {
	s.ho.mu.Lock()
	q := s.ho.q
	s.ho.q = s.ho.spare[:0]
	s.ho.pending.Store(false)
	s.ho.mu.Unlock()
	var now time.Duration
	if (s.hist != nil || s.rec != nil) && len(q) > 0 {
		now = s.fleet.sinceEpoch()
	}
	for i := range q {
		s.counters.HandoffsIn++
		if s.hist != nil {
			s.hist.handoff.Observe(us(now - q[i].at))
		}
		if s.rec != nil {
			s.rec.Record(trace.Event{At: now, Kind: trace.EvHandoff,
				Device: q[i].f.From, Cycle: q[i].f.Cycle})
		}
		s.dispatchFrame(q[i].from, &q[i].f, true)
	}
	s.ho.spare = q
}

// fanOutToWatchers hands a bye/announce to every other shard hosting a
// watcher of the frame's device, per the fleet's watcher mask. Reports
// whether any shard took a copy. Runs under the shard mutex.
func (s *shard) fanOutToWatchers(from netip.AddrPort, f *wire.Frame) bool {
	fl := s.fleet
	fl.watchMu.Lock()
	m, ok := fl.watchMask[f.From]
	var mask shardMask
	if ok {
		mask = *m
	}
	fl.watchMu.Unlock()
	if !ok {
		return false
	}
	fanned := false
	for i := range fl.shards {
		if i != s.index && mask.has(i) {
			s.handoffTo(fl.shards[i], from, f)
			fanned = true
		}
	}
	return fanned
}

// noteWatcher records that a shard hosts a watcher of device. The mask
// is maintained for every fleet (unrouted fleets consult it only after
// a migration has moved a CP off its device's home shard); watchMu is a
// leaf below the shard mutexes.
func (f *Fleet) noteWatcher(device ident.NodeID, shard int) {
	f.watchMu.Lock()
	m := f.watchMask[device]
	if m == nil {
		m = new(shardMask)
		f.watchMask[device] = m
	}
	m.set(shard)
	f.watchMu.Unlock()
}

// dropWatcher clears a shard's watcher bit for device once its last
// local watcher is removed.
func (f *Fleet) dropWatcher(device ident.NodeID, shard int) {
	f.watchMu.Lock()
	if m := f.watchMask[device]; m != nil {
		m.clear(shard)
		if m.empty() {
			delete(f.watchMask, device)
		}
	}
	f.watchMu.Unlock()
}
