package fleet

// Telemetry: per-shard latency histograms and the flight recorder.
//
// The flat Counters answer "how much"; the histograms answer "how
// fast" — the paper's headline figures are latency distributions, and
// a mean over a 100k-CP fleet hides exactly the tail a production
// operator cares about. Each shard owns one private set of
// cache-line-padded log₂ histograms (internal/metrics): the event loop
// records into them with uncontended atomic adds under its own mutex's
// protection, scrapers snapshot them with atomic loads and merge across
// shards without taking any shard mutex, so a scrape costs a hot loop
// nothing. Recording allocates nothing — the 0 allocs/op hot-path gate
// runs with telemetry on.
//
// The flight recorder (internal/trace.Ring) keeps the newest N
// probe-lifecycle events per shard: probe sent, reply matched, attempt
// expired, verdict, handoff. It is written only under the shard mutex
// on paths the loop already serialises, and dumped by briefly taking
// each shard mutex in turn — the post-mortem "what led up to this
// verdict" view that counters and histograms cannot reconstruct.

import (
	"io"
	"time"

	"presence/internal/metrics"
	"presence/internal/trace"
)

// defaultFlightEvents is the per-shard flight-recorder capacity when
// Config.FlightRecorder is zero: deep enough to hold the full lifecycle
// of hundreds of probe cycles, small enough (~4096 × 32 B) to be noise
// next to the demux tables.
const defaultFlightEvents = 4096

// shardHists is one shard's histogram set. Durations are recorded in
// microseconds (see internal/metrics for the bucket layout); fill is
// unit-free datagram counts.
type shardHists struct {
	// rtt: probe send → matching reply accepted.
	rtt metrics.Histogram
	// detect: first probe of the verdict cycle → DeviceLost verdict; the
	// prober-observable detection latency (the paper's figure adds the
	// probe period before the failing cycle, which no receiver can see).
	detect metrics.Histogram
	// handoff: frame queued on another shard's inbox → drained by its
	// owner (ReusePort routing only).
	handoff metrics.Histogram
	// fill: datagrams per ReadBatch burst — how full the syscall
	// amortisation actually runs.
	fill metrics.Histogram
	// cascade: duration of one timer-cascade (Advance + firing every due
	// alarm), the event loop's largest indivisible unit of work.
	cascade metrics.Histogram
}

// us converts a duration to whole microseconds for histogram recording,
// clamping negatives (clock skew between two sinceEpoch reads) to zero.
func us(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d / time.Microsecond)
}

// Histograms is the fleet's histogram snapshot: plain mergeable values,
// JSON-ready for /statusz, renderable by the exposition writer.
type Histograms struct {
	ProbeRTT         metrics.HistogramSnapshot `json:"probe_rtt_us"`
	DetectionLatency metrics.HistogramSnapshot `json:"detection_latency_us"`
	HandoffLatency   metrics.HistogramSnapshot `json:"handoff_latency_us"`
	BatchFill        metrics.HistogramSnapshot `json:"batch_fill_datagrams"`
	CascadeDuration  metrics.HistogramSnapshot `json:"timer_cascade_us"`
}

// Merge adds o into h element-wise.
func (h *Histograms) Merge(o Histograms) {
	h.ProbeRTT.Merge(o.ProbeRTT)
	h.DetectionLatency.Merge(o.DetectionLatency)
	h.HandoffLatency.Merge(o.HandoffLatency)
	h.BatchFill.Merge(o.BatchFill)
	h.CascadeDuration.Merge(o.CascadeDuration)
}

// TelemetryEnabled reports whether the latency histograms are being
// recorded (Config.DisableTelemetry unset).
func (f *Fleet) TelemetryEnabled() bool { return f.shards[0].hist != nil }

// FlightRecorderEnabled reports whether probe-lifecycle events are
// being recorded (Config.FlightRecorder ≥ 0).
func (f *Fleet) FlightRecorderEnabled() bool { return f.shards[0].rec != nil }

// Histograms returns the merged cross-shard histogram snapshot. It
// takes no shard mutex — histogram cells are atomics — so it never
// stalls an event loop; zero-valued when telemetry is disabled.
func (f *Fleet) Histograms() Histograms {
	var out Histograms
	for _, s := range f.shards {
		out.Merge(s.histSnapshot())
	}
	return out
}

// ShardHistograms returns one histogram snapshot per shard, indexed by
// shard. Zero-valued snapshots when telemetry is disabled.
func (f *Fleet) ShardHistograms() []Histograms {
	out := make([]Histograms, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.histSnapshot()
	}
	return out
}

func (s *shard) histSnapshot() Histograms {
	h := s.hist
	if h == nil {
		return Histograms{}
	}
	return Histograms{
		ProbeRTT:         h.rtt.Snapshot(),
		DetectionLatency: h.detect.Snapshot(),
		HandoffLatency:   h.handoff.Snapshot(),
		BatchFill:        h.fill.Snapshot(),
		CascadeDuration:  h.cascade.Snapshot(),
	}
}

// FlightSnapshot copies every shard's retained flight-recorder events,
// indexed by shard, oldest-first within each. It takes each shard mutex
// briefly (shards are snapshotted one after another, so the view is
// per-shard consistent, not global). Empty slices when the recorder is
// disabled.
func (f *Fleet) FlightSnapshot() [][]trace.Event {
	out := make([][]trace.Event, len(f.shards))
	for i, s := range f.shards {
		s.mu.Lock()
		if s.rec != nil {
			out[i] = s.rec.Snapshot()
		}
		s.mu.Unlock()
	}
	return out
}

// WriteFlight dumps every shard's flight-recorder events human-readably
// (the /debug/flight and SIGQUIT format).
func (f *Fleet) WriteFlight(w io.Writer) error {
	for i, events := range f.FlightSnapshot() {
		if err := trace.WriteFlight(w, i, events); err != nil {
			return err
		}
	}
	return nil
}
