package fleet

import (
	"testing"
)

// TestShardHotPathSanity pins what one Step moves through the shard:
// per CP one probe in, one reply out, one reply in, one probe out, and
// on the batch path far fewer transport calls than packets.
func TestShardHotPathSanity(t *testing.T) {
	const cps = 32
	h, err := NewHotPathBench(HotPathOptions{CPs: cps})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const steps = 10
	for i := 0; i < steps; i++ {
		h.Step()
	}
	c := h.Counters()
	// Join queues one probe burst before the first Step, and each Step
	// leaves the next burst queued, so after N steps: N bursts of
	// probes were delivered (and replied to), N reply bursts delivered,
	// and N+1 probe bursts plus N reply bursts were written out.
	if want := uint64(2 * steps * cps); c.PacketsIn != want {
		t.Errorf("PacketsIn = %d, want %d", c.PacketsIn, want)
	}
	if want := uint64((2*steps + 1) * cps); c.PacketsOut != want {
		t.Errorf("PacketsOut = %d, want %d", c.PacketsOut, want)
	}
	if c.RepliesIn != uint64(steps*cps) {
		t.Errorf("RepliesIn = %d, want %d", c.RepliesIn, steps*cps)
	}
	if c.DemuxDrops != 0 || c.DemuxCollisions != 0 || c.DecodeErrors != 0 || c.SendErrors != 0 {
		t.Errorf("unexpected errors in counters: %+v", c)
	}
	// Batch path: a whole burst per transport call. The device's reply
	// fan-out flushes once per dispatched receive batch, so transport
	// calls scale with bursts, not packets.
	if c.SyscallsIn >= c.PacketsIn/4 {
		t.Errorf("SyscallsIn = %d for %d packets; batching not effective", c.SyscallsIn, c.PacketsIn)
	}
	if c.SyscallsOut >= c.PacketsOut/4 {
		t.Errorf("SyscallsOut = %d for %d packets; batching not effective", c.SyscallsOut, c.PacketsOut)
	}

	// The single-datagram fallback moves the same packets with one call
	// per packet.
	hs, err := NewHotPathBench(HotPathOptions{CPs: cps, ForceSingleDatagram: true})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	for i := 0; i < steps; i++ {
		hs.Step()
	}
	cs := hs.Counters()
	if cs.PacketsIn != c.PacketsIn || cs.PacketsOut != c.PacketsOut {
		t.Errorf("single path moved %d/%d packets, batch path %d/%d",
			cs.PacketsIn, cs.PacketsOut, c.PacketsIn, c.PacketsOut)
	}
	if cs.SyscallsIn != cs.PacketsIn {
		t.Errorf("single path SyscallsIn = %d, want one per packet (%d)", cs.SyscallsIn, cs.PacketsIn)
	}
	if cs.SyscallsOut != cs.PacketsOut {
		t.Errorf("single path SyscallsOut = %d, want one per packet (%d)", cs.SyscallsOut, cs.PacketsOut)
	}
}

// TestShardHotPathZeroAlloc asserts the steady-state shard packet path
// — batch read, decode, demux, engine calls, encode, batch write,
// timer fire — allocates nothing per Step.
func TestShardHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	h, err := NewHotPathBench(HotPathOptions{CPs: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Warm up: first cycles touch pools, map buckets and the send
	// queue's lazily allocated slots.
	for i := 0; i < 10; i++ {
		h.Step()
	}
	if allocs := testing.AllocsPerRun(100, h.Step); allocs != 0 {
		t.Fatalf("shard hot path allocates %.1f times per step, want 0", allocs)
	}
}

// TestShardHotPathZeroAllocAuth is the same gate with frame
// authentication ON: pre-derived schedules mean signing and verifying
// every probe and reply adds HMAC work but no heap traffic.
func TestShardHotPathZeroAllocAuth(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	h, err := NewHotPathBench(HotPathOptions{CPs: 64, Auth: true})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Step() // warm-up: first contact derives the peer-key schedules
	}
	c := h.Counters()
	if c.AuthVerified == 0 {
		t.Fatal("auth harness verified no frames; authentication not active")
	}
	if c.AuthRejected != 0 || c.AuthDowngraded != 0 {
		t.Fatalf("genuine traffic rejected: %+v", c)
	}
	if allocs := testing.AllocsPerRun(100, h.Step); allocs != 0 {
		t.Fatalf("authenticated shard hot path allocates %.1f times per step, want 0", allocs)
	}
}

// BenchmarkShardHotPath measures the per-packet cost of the shard's
// batched hot path; probebench snapshots the same numbers (via
// testing.Benchmark) and -compare gates allocs/op strictly.
func BenchmarkShardHotPath(b *testing.B) {
	h, err := NewHotPathBench(HotPathOptions{CPs: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Step() // warm-up, as in the zero-alloc test
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(h.PacketsPerStep()), "packets/op")
}

// BenchmarkShardHotPathAuth is the same workload with frame
// authentication ON — the measured ns/packet cost of signing and
// verifying every frame, still at 0 allocs/op.
func BenchmarkShardHotPathAuth(b *testing.B) {
	h, err := NewHotPathBench(HotPathOptions{CPs: 64, Auth: true})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(h.PacketsPerStep()), "packets/op")
}

// BenchmarkShardHotPathSingle is the same workload over the
// single-datagram fallback: the baseline the batching win is measured
// against.
func BenchmarkShardHotPathSingle(b *testing.B) {
	h, err := NewHotPathBench(HotPathOptions{CPs: 64, ForceSingleDatagram: true})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(h.PacketsPerStep()), "packets/op")
}
