package fleet_test

// Hardening tests: the BYE verification grace across both paper
// protocols, and the always-on reply demux checks (attempt bitmask,
// source pinning) at the shard level. These drive a real fleet over an
// internal/memnet network with a test middlebox standing in for the
// on-path attacker, so the defenses are exercised through the same
// socket path production traffic takes.

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/wire"
)

// verdictLog is a thread-safe core.Listener recording verdicts.
type verdictLog struct {
	mu    sync.Mutex
	alive int
	lost  int
	byes  int
}

func (l *verdictLog) DeviceAlive(ident.NodeID, core.CycleResult) {
	l.mu.Lock()
	l.alive++
	l.mu.Unlock()
}

func (l *verdictLog) DeviceLost(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.lost++
	l.mu.Unlock()
}

func (l *verdictLog) DeviceBye(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.byes++
	l.mu.Unlock()
}

func (l *verdictLog) snapshot() (alive, lost, byes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alive, l.lost, l.byes
}

func hardenWaitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// byeAttacker modes.
const (
	modeIdle  int32 = iota // pass everything
	modeSpoof              // inject one spoofed BYE, device stays reachable
	modeLeave              // inject one BYE, then black-hole the device
)

// byeAttacker is a test middlebox spoofing device-sourced BYEs. In
// modeSpoof it forges exactly one BYE for a device that is still alive
// and answering — the attack the verification grace refutes. In
// modeLeave it forges one BYE and then drops every frame addressed to
// the device, emulating a graceful leave (BYE as the device's last
// act); verification finds silence and the CP must report DeviceBye,
// not DeviceLost.
type byeAttacker struct {
	device  ident.NodeID
	devAddr netip.AddrPort
	mode    atomic.Int32
	fired   atomic.Bool
	scratch wire.Frame
}

// arm resets the one-shot latch and switches mode.
func (a *byeAttacker) arm(mode int32) {
	a.fired.Store(false)
	a.mode.Store(mode)
}

func (a *byeAttacker) Process(_ time.Duration, from, to netip.AddrPort, frame []byte, inj memnet.Injector) memnet.Action {
	mode := a.mode.Load()
	if mode == modeIdle || to != a.devAddr {
		return memnet.Pass
	}
	if wire.DecodeFrame(frame, &a.scratch) == nil && a.scratch.Kind == wire.KindProbe && !a.fired.Swap(true) {
		bye, _ := wire.AppendEncodeFrame(nil, &wire.Frame{Kind: wire.KindBye, From: a.device})
		inj.Inject(a.devAddr, from, bye)
	}
	if mode == modeLeave {
		return memnet.Drop
	}
	return memnet.Pass
}

// TestHardenedByeGrace runs the BYE verification grace end to end for
// both paper protocols: a spoofed BYE for a live device is refuted by
// one probe cycle and the CP keeps monitoring; a BYE followed by
// silence is confirmed and classified DeviceBye (never DeviceLost).
func TestHardenedByeGrace(t *testing.T) {
	const devID = ident.NodeID(7)
	cases := []struct {
		name   string
		device func(env core.Env) (core.Device, error)
		policy func(t *testing.T) core.DelayPolicy
	}{
		{
			name: "dcpp",
			device: func(env core.Env) (core.Device, error) {
				return dcpp.NewDevice(devID, env, dcpp.DeviceConfig{
					MinGap: 5 * time.Millisecond, MinCPDelay: 20 * time.Millisecond,
				})
			},
			policy: func(t *testing.T) core.DelayPolicy {
				p, err := dcpp.NewPolicy(dcpp.PolicyConfig{})
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
		{
			name: "sapp",
			device: func(env core.Env) (core.Device, error) {
				return sapp.NewDevice(devID, env, sapp.DefaultDeviceConfig())
			},
			policy: func(t *testing.T) core.DelayPolicy {
				cfg := sapp.DefaultCPConfig()
				cfg.MinDelay = 20 * time.Millisecond
				cfg.MaxDelay = 100 * time.Millisecond
				p, err := sapp.NewPolicy(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := memnet.New(memnet.Faults{})
			defer net.Close()
			transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

			devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport})
			if err != nil {
				t.Fatal(err)
			}
			defer devFleet.Close()
			if err := devFleet.Start(); err != nil {
				t.Fatal(err)
			}
			dev, err := devFleet.AddDevice(devID, tc.device)
			if err != nil {
				t.Fatal(err)
			}

			cpFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Harden: true})
			if err != nil {
				t.Fatal(err)
			}
			defer cpFleet.Close()
			if err := cpFleet.Start(); err != nil {
				t.Fatal(err)
			}
			lst := &verdictLog{}
			cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
				ID: 100, Device: devID, DeviceAddrPort: dev.Addr(),
				Policy: tc.policy(t), Listener: lst,
				Retransmit: core.RetransmitConfig{
					FirstTimeout:   60 * time.Millisecond,
					RetryTimeout:   40 * time.Millisecond,
					MaxRetransmits: 3,
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			attacker := &byeAttacker{device: devID, devAddr: dev.Addr()}
			net.AddMiddlebox(attacker)

			hardenWaitFor(t, 5*time.Second, "steady state", func() bool {
				return cp.Stats().CyclesOK >= 2
			})

			// Phase 1: spoofed BYE while the device is alive. The CP must
			// verify, see the device answer, and keep monitoring.
			attacker.arm(modeSpoof)
			hardenWaitFor(t, 5*time.Second, "spoofed BYE refuted", func() bool {
				return cp.Stats().SpoofedByes >= 1
			})
			st := cp.Stats()
			if st.ByeVerifications == 0 {
				t.Error("spoofed BYE did not trigger a verification cycle")
			}
			if cp.Stopped() {
				t.Fatal("CP stopped on a spoofed BYE")
			}
			if _, lost, byes := lst.snapshot(); lost != 0 || byes != 0 {
				t.Fatalf("false verdict on spoofed BYE: lost=%d byes=%d", lost, byes)
			}
			before := cp.Stats().CyclesOK
			hardenWaitFor(t, 5*time.Second, "monitoring to continue", func() bool {
				return cp.Stats().CyclesOK >= before+2
			})

			// Phase 2: BYE followed by silence — a genuine graceful leave.
			// Verification fails and the verdict must be DeviceBye.
			attacker.arm(modeLeave)
			hardenWaitFor(t, 5*time.Second, "bye verdict", func() bool {
				_, _, byes := lst.snapshot()
				return byes == 1
			})
			if !cp.Stopped() {
				t.Fatal("CP still running after confirmed BYE")
			}
			if _, lost, _ := lst.snapshot(); lost != 0 {
				t.Fatalf("confirmed BYE misclassified: lost=%d", lost)
			}
		})
	}
}

// fakeDeviceRig hosts one CP probing a bare memnet endpoint the test
// controls, so it can answer probes with precisely crafted frames.
type fakeDeviceRig struct {
	net *memnet.Network
	f   *fleet.Fleet
	cp  *fleet.ControlPoint
	dev *memnet.Endpoint
}

func newFakeDeviceRig(t *testing.T, harden bool) *fakeDeviceRig {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	t.Cleanup(func() { net.Close() })
	dev, err := net.Listen()
	if err != nil {
		t.Fatal(err)
	}
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
	f, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Harden: harden})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	policy, err := naive.NewPolicy(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := f.AddControlPoint(fleet.CPConfig{
		ID: 100, Device: 7, DeviceAddrPort: dev.LocalAddrPort(),
		Policy: policy,
		// Generous timeouts: exactly one attempt stays outstanding while
		// the test feeds the demux hand-crafted replies.
		Retransmit: core.RetransmitConfig{
			FirstTimeout: 30 * time.Second,
			RetryTimeout: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeDeviceRig{net: net, f: f, cp: cp, dev: dev}
}

// readProbe blocks for the next probe addressed to the fake device.
func (r *fakeDeviceRig) readProbe(t *testing.T) (wire.Frame, netip.AddrPort) {
	t.Helper()
	buf := make([]byte, wire.MaxFrameSize)
	if err := r.dev.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		n, from, err := r.dev.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("reading probe: %v", err)
		}
		var f wire.Frame
		if wire.DecodeFrame(buf[:n], &f) != nil || f.Kind != wire.KindProbe {
			continue
		}
		return f, from
	}
}

// reply sends an empty reply for the probed cycle from the given
// endpoint with the given attempt number.
func (r *fakeDeviceRig) reply(t *testing.T, from *memnet.Endpoint, to netip.AddrPort, cycle uint32, attempt uint8) {
	t.Helper()
	frame, err := wire.AppendEncodeFrame(nil, &wire.Frame{
		Kind: wire.KindReplyEmpty, From: 7, Cycle: cycle, Attempt: attempt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := from.WriteToUDPAddrPort(frame, to); err != nil {
		t.Fatal(err)
	}
}

// TestAttemptMismatchKeepsPending: a reply whose attempt number was
// never sent is rejected and counted, the pending demux entry survives
// the rejection, and the genuine reply still completes the cycle. The
// attempt bitmask is always on — this fleet is NOT hardened.
func TestAttemptMismatchKeepsPending(t *testing.T) {
	rig := newFakeDeviceRig(t, false)
	probe, cpAddr := rig.readProbe(t)

	// Only attempt 0 was sent: a different in-range attempt and an
	// out-of-range one (the bitmask covers attempts 0-31) must both miss.
	rig.reply(t, rig.dev, cpAddr, probe.Cycle, probe.Attempt+9)
	rig.reply(t, rig.dev, cpAddr, probe.Cycle, 40)
	hardenWaitFor(t, 5*time.Second, "mismatches counted", func() bool {
		return rig.f.Snapshot().Total.AttemptMismatches >= 2
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 0 {
		t.Fatalf("forged-attempt reply completed %d cycles", ok)
	}
	if got := rig.f.Snapshot().Total.PendingProbes; got != 1 {
		t.Fatalf("pending entries after rejected replies = %d, want 1", got)
	}

	rig.reply(t, rig.dev, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "genuine reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})
}

// TestHardenedSourcePinning: a hardened shard rejects a well-formed
// reply (right device, cycle and attempt) arriving from an address
// other than the device's, keeps the pending entry, and accepts the
// genuine reply afterwards.
func TestHardenedSourcePinning(t *testing.T) {
	rig := newFakeDeviceRig(t, true)
	attacker, err := rig.net.Listen()
	if err != nil {
		t.Fatal(err)
	}
	probe, cpAddr := rig.readProbe(t)

	rig.reply(t, attacker, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "forged reply counted", func() bool {
		return rig.f.Snapshot().Total.RepliesForged >= 1
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 0 {
		t.Fatalf("forged-source reply completed %d cycles", ok)
	}
	if got := rig.f.Snapshot().Total.PendingProbes; got != 1 {
		t.Fatalf("pending entries after forged reply = %d, want 1", got)
	}

	rig.reply(t, rig.dev, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "genuine reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})
}
