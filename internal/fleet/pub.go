package fleet

import "sync/atomic"

// pubCounters is a shard's published counter mirror: one atomic per
// Counters field, stored by the shard under its own mutex and loaded by
// Fleet.Snapshot without taking that mutex. The hot path keeps plain
// counter increments (they are free under the already-held shard mutex
// and pin the 0 allocs/op budget); the mirror is refreshed in bulk once
// per event-loop iteration, so a reader never stalls a hot shard loop
// and sees state at most one loop iteration old.
//
// The struct is padded to cache-line multiples on both sides so a
// scraper hammering Snapshot ping-pongs only these lines, never the
// shard's loop-owned fields that happen to be neighbours in the shard
// allocation — the false-sharing trap a one-core benchmark can't see.
type pubCounters struct {
	_ [64]byte // pad: keep the mirror off the shard's hot fields' lines

	packetsIn         atomic.Uint64
	packetsOut        atomic.Uint64
	decodeErrors      atomic.Uint64
	badFrames         atomic.Uint64
	sendErrors        atomic.Uint64
	probesOut         atomic.Uint64
	repliesIn         atomic.Uint64
	demuxDrops        atomic.Uint64
	demuxCollisions   atomic.Uint64
	timersFired       atomic.Uint64
	attemptMismatches atomic.Uint64
	repliesForged     atomic.Uint64
	byesForged        atomic.Uint64
	repliesReplayed   atomic.Uint64
	probesShed        atomic.Uint64
	authVerified      atomic.Uint64
	authStaleKey      atomic.Uint64
	authRejected      atomic.Uint64
	authDowngraded    atomic.Uint64
	handoffsOut       atomic.Uint64
	handoffsIn        atomic.Uint64
	migrations        atomic.Uint64
	syscallsIn        atomic.Uint64
	syscallsOut       atomic.Uint64

	wheelDepth        atomic.Int64
	controlPoints     atomic.Int64
	liveControlPoints atomic.Int64
	pendingProbes     atomic.Int64
	devices           atomic.Int64

	_ [64]byte // pad: and off whatever the allocator places after it
}

// publishLocked refreshes the mirror from the live counters and gauges.
// Runs under the shard mutex (so each store sees a consistent shard);
// called once per loop iteration and from the Snapshot fast path.
func (s *shard) publishLocked() {
	c := &s.counters
	p := &s.pub
	p.packetsIn.Store(c.PacketsIn)
	p.packetsOut.Store(c.PacketsOut)
	p.decodeErrors.Store(c.DecodeErrors)
	p.badFrames.Store(c.BadFrames)
	p.sendErrors.Store(c.SendErrors)
	p.probesOut.Store(c.ProbesOut)
	p.repliesIn.Store(c.RepliesIn)
	p.demuxDrops.Store(c.DemuxDrops)
	p.demuxCollisions.Store(c.DemuxCollisions)
	p.timersFired.Store(c.TimersFired)
	p.attemptMismatches.Store(c.AttemptMismatches)
	p.repliesForged.Store(c.RepliesForged)
	p.byesForged.Store(c.ByesForged)
	p.repliesReplayed.Store(c.RepliesReplayed)
	p.probesShed.Store(c.ProbesShed)
	p.authVerified.Store(c.AuthVerified)
	p.authStaleKey.Store(c.AuthStaleKey)
	p.authRejected.Store(c.AuthRejected)
	p.authDowngraded.Store(c.AuthDowngraded)
	p.handoffsOut.Store(c.HandoffsOut)
	p.handoffsIn.Store(c.HandoffsIn)
	p.migrations.Store(c.Migrations)
	p.syscallsIn.Store(c.SyscallsIn)
	p.syscallsOut.Store(c.SyscallsOut)
	p.wheelDepth.Store(int64(s.wheel.Len()))
	p.controlPoints.Store(int64(len(s.cps)))
	p.liveControlPoints.Store(int64(s.liveCPs))
	p.pendingProbes.Store(int64(len(s.pending)))
	var dev int64
	if s.device != nil {
		dev = 1
	}
	p.devices.Store(dev)
}

// loadPub reads the published mirror into a Counters. Safe without the
// shard mutex; each field is individually atomic, the set as a whole is
// the state as of the last publishLocked.
func (s *shard) loadPub() Counters {
	p := &s.pub
	return Counters{
		PacketsIn:         p.packetsIn.Load(),
		PacketsOut:        p.packetsOut.Load(),
		DecodeErrors:      p.decodeErrors.Load(),
		BadFrames:         p.badFrames.Load(),
		SendErrors:        p.sendErrors.Load(),
		ProbesOut:         p.probesOut.Load(),
		RepliesIn:         p.repliesIn.Load(),
		DemuxDrops:        p.demuxDrops.Load(),
		DemuxCollisions:   p.demuxCollisions.Load(),
		TimersFired:       p.timersFired.Load(),
		AttemptMismatches: p.attemptMismatches.Load(),
		RepliesForged:     p.repliesForged.Load(),
		ByesForged:        p.byesForged.Load(),
		RepliesReplayed:   p.repliesReplayed.Load(),
		ProbesShed:        p.probesShed.Load(),
		AuthVerified:      p.authVerified.Load(),
		AuthStaleKey:      p.authStaleKey.Load(),
		AuthRejected:      p.authRejected.Load(),
		AuthDowngraded:    p.authDowngraded.Load(),
		HandoffsOut:       p.handoffsOut.Load(),
		HandoffsIn:        p.handoffsIn.Load(),
		Migrations:        p.migrations.Load(),
		// AdmissionRejected is incremented off-loop by rejected enqueues,
		// so the atomic itself is the source of truth — no mirror needed.
		AdmissionRejected: s.admRejected.Load(),
		SyscallsIn:        p.syscallsIn.Load(),
		SyscallsOut:       p.syscallsOut.Load(),
		WheelDepth:        int(p.wheelDepth.Load()),
		ControlPoints:     int(p.controlPoints.Load()),
		LiveControlPoints: int(p.liveControlPoints.Load()),
		PendingProbes:     int(p.pendingProbes.Load()),
		Devices:           int(p.devices.Load()),
	}
}
