//go:build linux

package fleet

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT from asm-generic/socket.h, defined
// locally because this module deliberately carries no dependencies
// (golang.org/x/sys included). The value is uniform across Linux
// architectures.
const soReusePort = 0xf

// reusePortSupported gates Config.ReusePort's kernel path: true here,
// false in the portable stub, where the fleet falls back to the classic
// distinct-port-per-shard layout.
const reusePortSupported = true

// listenReusePort binds one UDP socket with SO_REUSEPORT set before
// bind, so sockets of the same fleet (same uid) may share one port and
// the kernel demultiplexes inbound datagrams across them by flow hash.
func listenReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(_, _ string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
