//go:build linux && (amd64 || arm64)

package fleet

// Linux batch transport: one recvmmsg(2)/sendmmsg(2) syscall moves a
// whole burst of datagrams, so a loaded shard pays ~1/batch of the
// syscall cost per packet. The build tag also pins 64-bit layouts: the
// mmsghdr stride below (msghdr + uint32 + 4 bytes padding = 64 bytes)
// matches the kernel's struct on amd64/arm64 but not on 32-bit ABIs,
// which take the portable fallback instead.
//
// The raw syscalls integrate with the Go netpoller through
// syscall.RawConn: the fd stays in non-blocking mode, EAGAIN parks the
// goroutine in the poller, and SetReadDeadline applies to the parked
// wait exactly as it does to ReadFromUDPAddrPort.

import (
	"net"
	"net/netip"
	"strconv"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit ABIs.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// udpBatchConn implements BatchPacketConn over a kernel UDP socket.
// The header/iovec/sockaddr arrays are lazily sized to the caller's
// batch and reused; after warm-up no call allocates.
//
// Reads are single-goroutine (the shard event loop) and writes are
// serialised by the shard mutex, matching how the fleet drives it, so
// the two scratch sets need no further locking.
type udpBatchConn struct {
	udpPacketConn
	raw syscall.RawConn

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6

	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames []syscall.RawSockaddrInet6

	// zoneNames/zoneIDs cache IPv6 scope-id ↔ zone-name lookups so
	// link-local traffic keeps its zone (as *net.UDPConn does) without
	// an interface lookup per packet. Reads and writes each stay on
	// their own goroutine (loop / shard mutex), and the two caches are
	// per-direction, so no further locking is needed.
	zoneNames map[uint32]string
	zoneIDs   map[string]uint32
}

func newUDPBatchConn(c udpPacketConn) PacketConn {
	raw, err := c.SyscallConn()
	if err != nil {
		return c // no raw access: the portable fallback still works
	}
	return &udpBatchConn{udpPacketConn: c, raw: raw}
}

// ReadBatch performs one recvmmsg per readable burst: it parks in the
// netpoller until the socket is readable (or the read deadline fires),
// then drains up to len(dgs) datagrams in a single syscall.
func (c *udpBatchConn) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	if len(c.rhdrs) < len(dgs) {
		c.rhdrs = make([]mmsghdr, len(dgs))
		c.riovs = make([]syscall.Iovec, len(dgs))
		c.rnames = make([]syscall.RawSockaddrInet6, len(dgs))
	}
	for i := range dgs {
		c.riovs[i].Base = &dgs[i].Buf[0]
		c.riovs[i].SetLen(len(dgs[i].Buf))
		c.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&c.rnames[i])),
			Namelen: syscall.SizeofSockaddrInet6,
			Iov:     &c.riovs[i],
			Iovlen:  1,
		}}
	}
	var (
		n     int
		operr syscall.Errno
	)
	err := c.raw.Read(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.rhdrs[0])), uintptr(len(dgs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN || errno == syscall.EINTR {
			return false // park in the poller until readable
		}
		n, operr = int(r), errno
		return true
	})
	if err != nil {
		return 0, err // deadline or closed socket, wrapped as a net.Error
	}
	if operr != 0 {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		dgs[i].Buf = dgs[i].Buf[:c.rhdrs[i].len]
		dgs[i].Addr = c.sockaddrToAddrPort(&c.rnames[i])
	}
	return n, nil
}

// WriteBatch performs one sendmmsg for the whole queue. A short return
// means the kernel stopped at dgs[n]; the caller skips or retries from
// there, per the BatchPacketConn contract.
func (c *udpBatchConn) WriteBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	if len(c.whdrs) < len(dgs) {
		c.whdrs = make([]mmsghdr, len(dgs))
		c.wiovs = make([]syscall.Iovec, len(dgs))
		c.wnames = make([]syscall.RawSockaddrInet6, len(dgs))
	}
	for i := range dgs {
		c.wiovs[i].Base = &dgs[i].Buf[0]
		c.wiovs[i].SetLen(len(dgs[i].Buf))
		namelen := c.addrPortToSockaddr(dgs[i].Addr, &c.wnames[i])
		c.whdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&c.wnames[i])),
			Namelen: namelen,
			Iov:     &c.wiovs[i],
			Iovlen:  1,
		}}
	}
	var (
		n     int
		operr syscall.Errno
	)
	err := c.raw.Write(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&c.whdrs[0])), uintptr(len(dgs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if errno == syscall.EAGAIN || errno == syscall.EINTR {
			return false // park until writable
		}
		if errno != 0 {
			// sendmmsg reports an errno only when the FIRST message
			// failed; otherwise it returns the accepted prefix length.
			n, operr = 0, errno
		} else {
			n, operr = int(r), 0
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if operr != 0 {
		return 0, operr
	}
	// A short count with no errno is a clean partial send: the caller
	// re-invokes with the rest of the queue.
	return n, nil
}

// sockaddrToAddrPort decodes the kernel-filled source address,
// including the IPv6 zone for link-local peers. Ports are read
// byte-wise: the raw sockaddr stores them in network order regardless
// of host endianness.
func (c *udpBatchConn) sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		addr := netip.AddrFrom16(sa.Addr).Unmap()
		if sa.Scope_id != 0 {
			addr = addr.WithZone(c.zoneName(sa.Scope_id))
		}
		return netip.AddrPortFrom(addr, uint16(p[0])<<8|uint16(p[1]))
	default:
		return netip.AddrPort{}
	}
}

// addrPortToSockaddr encodes a destination into the scratch sockaddr,
// returning the length the msghdr must carry.
func (c *udpBatchConn) addrPortToSockaddr(ap netip.AddrPort, sa *syscall.RawSockaddrInet6) uint32 {
	port := ap.Port()
	if addr := ap.Addr(); addr.Is4() || addr.Is4In6() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: addr.Unmap().As4()}
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		return syscall.SizeofSockaddrInet4
	} else {
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: addr.As16()}
		if zone := addr.Zone(); zone != "" {
			sa.Scope_id = c.zoneID(zone)
		}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		return syscall.SizeofSockaddrInet6
	}
}

// zoneName resolves an IPv6 scope id to its zone name through the
// read-side cache, matching how *net.UDPConn names zones. An unknown
// index falls back to its decimal form, which the encode side also
// understands.
func (c *udpBatchConn) zoneName(id uint32) string {
	if name, ok := c.zoneNames[id]; ok {
		return name
	}
	name := strconv.FormatUint(uint64(id), 10)
	if ifi, err := net.InterfaceByIndex(int(id)); err == nil {
		name = ifi.Name
	}
	if c.zoneNames == nil {
		c.zoneNames = make(map[uint32]string)
	}
	c.zoneNames[id] = name
	return name
}

// zoneID resolves a zone name to an IPv6 scope id through the
// write-side cache; decimal zones (the decode fallback, and what
// netip parses from "%3") pass straight through.
func (c *udpBatchConn) zoneID(zone string) uint32 {
	if id, ok := c.zoneIDs[zone]; ok {
		return id
	}
	var id uint32
	if ifi, err := net.InterfaceByName(zone); err == nil {
		id = uint32(ifi.Index)
	} else if n, err := strconv.ParseUint(zone, 10, 32); err == nil {
		id = uint32(n)
	}
	if c.zoneIDs == nil {
		c.zoneIDs = make(map[string]uint32)
	}
	c.zoneIDs[zone] = id
	return id
}
