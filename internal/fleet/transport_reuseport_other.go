//go:build !linux

package fleet

import (
	"errors"
	"net"
)

// reusePortSupported is false here: Config.ReusePort falls back to the
// distinct-port-per-shard layout (shard-aware routing stays on, it just
// never sees a stray). SO_REUSEPORT exists on the BSDs and Darwin too,
// but with different demux semantics; only the Linux behaviour is
// relied on, so only Linux opts in.
const reusePortSupported = false

func listenReusePort(string) (*net.UDPConn, error) {
	return nil, errors.New("fleet: SO_REUSEPORT transport unsupported on this platform")
}
