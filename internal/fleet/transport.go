package fleet

import (
	"fmt"
	"net"
	"net/netip"
	"time"
)

// PacketConn is the packet transport one shard owns: the subset of
// *net.UDPConn the shard event loop actually uses, expressed as an
// interface so the same fleet can run over real sockets (production,
// the loopback scale harness) or a deterministic in-memory network
// (internal/memnet, driven by the conformance harness with injected
// loss, delay, duplication and reordering).
//
// The contract mirrors UDP sockets:
//
//   - ReadFromUDPAddrPort blocks until a datagram arrives, the read
//     deadline passes (returning a net.Error with Timeout() true), or
//     the conn is closed (any other error).
//   - WriteToUDPAddrPort is best-effort and non-blocking; the network
//     may drop, reorder or duplicate the datagram.
//   - The buffer passed to either call is owned by the caller and may
//     be reused immediately after the call returns; implementations
//     must copy what they keep.
type PacketConn interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	SetReadDeadline(t time.Time) error
	// LocalAddrPort returns the conn's bound address, in a form other
	// endpoints of the same transport can send to.
	LocalAddrPort() netip.AddrPort
	Close() error
}

// Transport opens one PacketConn per shard. Implementations must hand
// out distinct addresses per call (shard sockets demultiplex by
// address, exactly like SO_REUSEPORT-less UDP).
type Transport interface {
	Listen(shard int) (PacketConn, error)
}

// TransportFunc adapts a function to the Transport interface, e.g.
//
//	fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
//
// for an internal/memnet network.
type TransportFunc func(shard int) (PacketConn, error)

// Listen implements Transport.
func (f TransportFunc) Listen(shard int) (PacketConn, error) { return f(shard) }

// udpTransport is the default Transport: one kernel UDP socket per
// shard, bound to the configured address.
type udpTransport struct {
	addr   *net.UDPAddr
	sndRcv int // socket buffer request; <= 0 leaves the OS default
}

func (t udpTransport) Listen(shard int) (PacketConn, error) {
	conn, err := net.ListenUDP("udp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d listen: %w", shard, err)
	}
	if t.sndRcv > 0 {
		conn.SetReadBuffer(t.sndRcv)  //nolint:errcheck // best effort
		conn.SetWriteBuffer(t.sndRcv) //nolint:errcheck // best effort
	}
	return udpPacketConn{conn}, nil
}

// udpPacketConn adapts *net.UDPConn to PacketConn (everything matches
// except LocalAddrPort).
type udpPacketConn struct {
	*net.UDPConn
}

// LocalAddrPort returns the socket's bound address, unmapped so it can
// be dialled from plain IPv4 sockets.
func (c udpPacketConn) LocalAddrPort() netip.AddrPort {
	ap := c.LocalAddr().(*net.UDPAddr).AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}
