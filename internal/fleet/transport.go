package fleet

import (
	"fmt"
	"net"
	"net/netip"
	"time"
)

// PacketConn is the packet transport one shard owns: the subset of
// *net.UDPConn the shard event loop actually uses, expressed as an
// interface so the same fleet can run over real sockets (production,
// the loopback scale harness) or a deterministic in-memory network
// (internal/memnet, driven by the conformance harness with injected
// loss, delay, duplication and reordering).
//
// The contract mirrors UDP sockets:
//
//   - ReadFromUDPAddrPort blocks until a datagram arrives, the read
//     deadline passes (returning a net.Error with Timeout() true), or
//     the conn is closed (any other error).
//   - WriteToUDPAddrPort is best-effort and non-blocking; the network
//     may drop, reorder or duplicate the datagram.
//   - The buffer passed to either call is owned by the caller and may
//     be reused immediately after the call returns; implementations
//     must copy what they keep.
type PacketConn interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	SetReadDeadline(t time.Time) error
	// LocalAddrPort returns the conn's bound address, in a form other
	// endpoints of the same transport can send to.
	LocalAddrPort() netip.AddrPort
	Close() error
}

// Datagram is one packet of a batch I/O call.
type Datagram struct {
	// Buf is the packet payload. Callers of ReadBatch pass it with the
	// receivable capacity as its length; implementations re-slice it to
	// the received size on return. WriteBatch sends Buf as is.
	Buf []byte
	// Addr is the packet's source (after ReadBatch) or destination
	// (for WriteBatch).
	Addr netip.AddrPort
}

// BatchPacketConn is the batched extension of PacketConn: many
// datagrams move per call, so a shard event loop under load pays one
// transport call (on Linux, one recvmmsg/sendmmsg syscall) per burst
// instead of one per packet. A PacketConn that also implements this
// interface is used in batch mode automatically; any other PacketConn
// is adapted by a loop-over-single-datagram fallback
// (Config.ForceSingleDatagram forces that fallback, for measuring the
// batching win and for batch/single equivalence tests).
//
// The contract extends the PacketConn one:
//
//   - ReadBatch blocks like ReadFromUDPAddrPort (first datagram,
//     read deadline, or close) and then fills as many further slots as
//     are readable without blocking. It returns the number of
//     datagrams filled; each filled slot's Buf is re-sliced to the
//     packet size and its Addr set to the source.
//   - WriteBatch transmits dgs[i].Buf to dgs[i].Addr in order,
//     best-effort like WriteToUDPAddrPort. It returns the number of
//     datagrams accepted; when it stops short, the error refers to
//     dgs[n] (the caller may skip it and retry from n+1).
//   - Buffers are caller-owned either way, exactly as for PacketConn.
type BatchPacketConn interface {
	PacketConn
	ReadBatch(dgs []Datagram) (int, error)
	WriteBatch(dgs []Datagram) (int, error)
}

// Transport opens one PacketConn per shard. Implementations must hand
// out distinct addresses per call (shard sockets demultiplex by
// address, exactly like SO_REUSEPORT-less UDP).
type Transport interface {
	Listen(shard int) (PacketConn, error)
}

// singleConn adapts any plain PacketConn to BatchPacketConn by looping
// over single-datagram calls: the portable fallback (and, forced, the
// baseline the batching win is measured against). ReadBatch moves
// exactly one datagram per call; WriteBatch pays one write call per
// datagram.
type singleConn struct {
	PacketConn
}

func (c singleConn) ReadBatch(dgs []Datagram) (int, error) {
	if len(dgs) == 0 {
		return 0, nil
	}
	n, from, err := c.ReadFromUDPAddrPort(dgs[0].Buf)
	if err != nil {
		return 0, err
	}
	dgs[0].Buf = dgs[0].Buf[:n]
	dgs[0].Addr = from
	return 1, nil
}

func (c singleConn) WriteBatch(dgs []Datagram) (int, error) {
	for i := range dgs {
		if _, err := c.WriteToUDPAddrPort(dgs[i].Buf, dgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(dgs), nil
}

// batchConn returns the batch view of conn: conn itself when it
// implements the batch interface (and single mode is not forced), the
// fallback adapter otherwise. The second result reports whether the
// single-datagram fallback is in use, which switches the shard's
// syscall accounting to per-packet.
func batchConn(conn PacketConn, forceSingle bool) (BatchPacketConn, bool) {
	if bc, ok := conn.(BatchPacketConn); ok && !forceSingle {
		return bc, false
	}
	return singleConn{conn}, true
}

// TransportFunc adapts a function to the Transport interface, e.g.
//
//	fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
//
// for an internal/memnet network.
type TransportFunc func(shard int) (PacketConn, error)

// Listen implements Transport.
func (f TransportFunc) Listen(shard int) (PacketConn, error) { return f(shard) }

// udpTransport is the default Transport: one kernel UDP socket per
// shard, bound to the configured address.
type udpTransport struct {
	addr   *net.UDPAddr
	sndRcv int // socket buffer request; <= 0 leaves the OS default
}

func (t udpTransport) Listen(shard int) (PacketConn, error) {
	conn, err := net.ListenUDP("udp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d listen: %w", shard, err)
	}
	if t.sndRcv > 0 {
		conn.SetReadBuffer(t.sndRcv)  //nolint:errcheck // best effort
		conn.SetWriteBuffer(t.sndRcv) //nolint:errcheck // best effort
	}
	// newUDPBatchConn is platform-specific: recvmmsg/sendmmsg on Linux
	// (transport_linux.go), the plain conn elsewhere
	// (transport_fallback.go) — the shard then adapts it with the
	// single-datagram loop.
	return newUDPBatchConn(udpPacketConn{conn}), nil
}

// reusePortTransport is the multi-core Transport: every shard socket
// binds the *same* UDP port with SO_REUSEPORT, so the kernel spreads
// inbound datagrams across the shard sockets by flow hash — receive
// load fans out across cores in the kernel instead of serializing on
// one socket's lock and buffer. The first shard resolves the concrete
// address (the configured one, or a kernel-chosen port for ":0"); every
// later shard binds that address verbatim, joining the group. Used when
// Config.ReusePort is set and the platform supports it; New falls back
// to udpTransport otherwise. Listen calls are sequential (New's loop),
// so bound needs no lock.
type reusePortTransport struct {
	addr   *net.UDPAddr
	sndRcv int
	bound  string // concrete shared address after the first Listen
}

func (t *reusePortTransport) Listen(shard int) (PacketConn, error) {
	target := t.addr.String()
	if t.bound != "" {
		target = t.bound
	}
	conn, err := listenReusePort(target)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d reuseport listen %s: %w", shard, target, err)
	}
	if t.bound == "" {
		t.bound = conn.LocalAddr().String()
	}
	if t.sndRcv > 0 {
		conn.SetReadBuffer(t.sndRcv)  //nolint:errcheck // best effort
		conn.SetWriteBuffer(t.sndRcv) //nolint:errcheck // best effort
	}
	return newUDPBatchConn(udpPacketConn{conn}), nil
}

// udpPacketConn adapts *net.UDPConn to PacketConn (everything matches
// except LocalAddrPort).
type udpPacketConn struct {
	*net.UDPConn
}

// LocalAddrPort returns the socket's bound address, unmapped so it can
// be dialled from plain IPv4 sockets.
func (c udpPacketConn) LocalAddrPort() netip.AddrPort {
	ap := c.LocalAddr().(*net.UDPAddr).AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}
