package fleet_test

// Authentication tests: the fleet-level key plane end to end. Two
// angles of attack. End-to-end fleets (real devices, real CPs over
// memnet) pin the benign properties — authenticated monitoring
// completes cycles, live key rotation never manufactures a verdict,
// v1↔v2 mixed fleets interoperate during a rollout. A rig hosting one
// CP against a bare memnet endpoint pins the adversarial properties
// frame by frame: tampered tags and wrong keys are rejected with the
// pending entry kept, the rotation grace accepts the old key only
// inside its window, and the per-device v2 high-water mark makes the
// v1 fallback downgrade-proof.

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/wire"
)

var (
	authMaster1 = []byte("auth-test-master-one")
	authMaster2 = []byte("auth-test-master-two")
	authMaster3 = []byte("auth-test-master-three")
)

const (
	authCPID  = ident.NodeID(100)
	authDevID = ident.NodeID(7)
)

// authPairKey derives the (CP, device) pair schedule the rig's crafted
// replies are signed with — the same derivation both fleet endpoints
// perform.
func authPairKey(t *testing.T, master []byte) *wire.AuthKey {
	t.Helper()
	k, err := wire.DeriveKey(master, wire.PairInfo(authCPID, authDevID))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// authRig hosts one authenticated CP probing a bare memnet endpoint the
// test controls, so every reply frame is crafted byte for byte.
type authRig struct {
	net *memnet.Network
	f   *fleet.Fleet
	cp  *fleet.ControlPoint
	dev *memnet.Endpoint
}

func newAuthRig(t *testing.T, auth fleet.AuthConfig) *authRig {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	t.Cleanup(func() { net.Close() })
	dev, err := net.Listen()
	if err != nil {
		t.Fatal(err)
	}
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
	f, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	policy, err := naive.NewPolicy(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := f.AddControlPoint(fleet.CPConfig{
		ID: authCPID, Device: authDevID, DeviceAddrPort: dev.LocalAddrPort(),
		Policy: policy,
		// Generous timeouts: exactly one attempt stays outstanding while
		// the test feeds the demux hand-crafted replies.
		Retransmit: core.RetransmitConfig{
			FirstTimeout: 30 * time.Second,
			RetryTimeout: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &authRig{net: net, f: f, cp: cp, dev: dev}
}

// readProbe blocks for the next probe addressed to the fake device.
func (r *authRig) readProbe(t *testing.T) (wire.Frame, netip.AddrPort) {
	t.Helper()
	buf := make([]byte, wire.MaxFrameSize)
	if err := r.dev.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		n, from, err := r.dev.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatalf("reading probe: %v", err)
		}
		var f wire.Frame
		if wire.DecodeFrame(buf[:n], &f) != nil || f.Kind != wire.KindProbe {
			continue
		}
		return f, from
	}
}

// replyAuth answers a probe with a v2 reply signed under the pair key
// derived from master.
func (r *authRig) replyAuth(t *testing.T, to netip.AddrPort, cycle uint32, attempt uint8, master []byte) {
	t.Helper()
	frame, err := wire.AppendEncodeFrameAuth(nil, &wire.Frame{
		Kind: wire.KindReplyEmpty, From: authDevID, Cycle: cycle, Attempt: attempt,
	}, authPairKey(t, master))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.dev.WriteToUDPAddrPort(frame, to); err != nil {
		t.Fatal(err)
	}
}

// replyV1 answers a probe with an unauthenticated v1 reply.
func (r *authRig) replyV1(t *testing.T, to netip.AddrPort, cycle uint32, attempt uint8) {
	t.Helper()
	frame, err := wire.AppendEncodeFrame(nil, &wire.Frame{
		Kind: wire.KindReplyEmpty, From: authDevID, Cycle: cycle, Attempt: attempt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.dev.WriteToUDPAddrPort(frame, to); err != nil {
		t.Fatal(err)
	}
}

// rotate pushes a new master key (and grace) through the admin plane,
// preserving the rest of the runtime config.
func (r *authRig) rotate(t *testing.T, key []byte, grace time.Duration) {
	t.Helper()
	rc, _ := r.f.ConfigSnapshot()
	rc.AuthKey = key
	rc.AuthRotationGrace = grace
	if _, err := r.f.SetConfig(rc); err != nil {
		t.Fatal(err)
	}
}

func (r *authRig) counters() fleet.Counters { return r.f.Snapshot().Total }

// TestAuthEndToEnd runs authenticated monitoring between two real
// fleets sharing a master key, in Require mode: cycles complete over
// signed-and-verified frames only, the device's signed BYE lands as a
// DeviceBye verdict, and nothing is rejected or downgraded.
func TestAuthEndToEnd(t *testing.T) {
	net := memnet.New(memnet.Faults{})
	defer net.Close()
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
	auth := fleet.AuthConfig{Key: authMaster1, Require: true}

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(authDevID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(authDevID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	cpFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Auth: auth})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}
	policy, err := naive.NewPolicy(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lst := &verdictLog{}
	cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
		ID: authCPID, Device: authDevID, DeviceAddrPort: dev.Addr(),
		Policy: policy, Listener: lst,
		Retransmit: core.RetransmitConfig{
			FirstTimeout: 30 * time.Second,
			RetryTimeout: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	hardenWaitFor(t, 5*time.Second, "authenticated cycles", func() bool {
		return cp.Stats().CyclesOK >= 3
	})

	// The device leaves gracefully: its BYE travels signed under the
	// broadcast key and must land as a DeviceBye verdict.
	dev.Bye()
	hardenWaitFor(t, 5*time.Second, "signed BYE verdict", func() bool {
		_, _, byes := lst.snapshot()
		return byes == 1
	})
	if _, lost, _ := lst.snapshot(); lost != 0 {
		t.Fatalf("signed BYE misclassified as lost: lost=%d", lost)
	}

	for name, c := range map[string]fleet.Counters{
		"cp": cpFleet.Snapshot().Total, "dev": devFleet.Snapshot().Total,
	} {
		if c.AuthVerified == 0 {
			t.Errorf("%s fleet verified no frames; authentication not exercised", name)
		}
		if c.AuthRejected != 0 || c.AuthDowngraded != 0 || c.AuthStaleKey != 0 {
			t.Errorf("%s fleet rejected genuine traffic: %+v", name, c)
		}
	}
}

// TestAuthMixedVersionFleets pins rollout interop in both directions: a
// v2 (authenticated, non-Require) fleet paired with a v1 (auth-off)
// fleet completes cycles with no rejections and no false verdicts —
// the v2 side accepts the peer's v1 frames (it never spoke v2) and the
// v1 side ignores tags it does not know about.
func TestAuthMixedVersionFleets(t *testing.T) {
	cases := []struct {
		name            string
		devAuth, cpAuth fleet.AuthConfig
	}{
		{name: "v2-device-v1-cp", devAuth: fleet.AuthConfig{Key: authMaster1}},
		{name: "v1-device-v2-cp", cpAuth: fleet.AuthConfig{Key: authMaster1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := memnet.New(memnet.Faults{})
			defer net.Close()
			transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

			devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Auth: tc.devAuth})
			if err != nil {
				t.Fatal(err)
			}
			defer devFleet.Close()
			if err := devFleet.Start(); err != nil {
				t.Fatal(err)
			}
			dev, err := devFleet.AddDevice(authDevID, func(env core.Env) (core.Device, error) {
				return naive.NewDevice(authDevID, env)
			})
			if err != nil {
				t.Fatal(err)
			}

			cpFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Auth: tc.cpAuth})
			if err != nil {
				t.Fatal(err)
			}
			defer cpFleet.Close()
			if err := cpFleet.Start(); err != nil {
				t.Fatal(err)
			}
			policy, err := naive.NewPolicy(10 * time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			lst := &verdictLog{}
			cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
				ID: authCPID, Device: authDevID, DeviceAddrPort: dev.Addr(),
				Policy: policy, Listener: lst,
				Retransmit: core.RetransmitConfig{
					FirstTimeout: 30 * time.Second,
					RetryTimeout: 30 * time.Second,
				},
			})
			if err != nil {
				t.Fatal(err)
			}

			hardenWaitFor(t, 5*time.Second, "mixed-version cycles", func() bool {
				return cp.Stats().CyclesOK >= 3
			})
			if _, lost, byes := lst.snapshot(); lost != 0 || byes != 0 {
				t.Fatalf("mixed-version fleets produced a false verdict: lost=%d byes=%d", lost, byes)
			}
			for name, c := range map[string]fleet.Counters{
				"cp": cpFleet.Snapshot().Total, "dev": devFleet.Snapshot().Total,
			} {
				if c.AuthRejected != 0 || c.AuthDowngraded != 0 {
					t.Errorf("%s fleet rejected rollout traffic: %+v", name, c)
				}
			}
		})
	}
}

// TestAuthRotationGrace drives one key rotation frame by frame: the
// probe's cycle starts under the old key, the rotation lands mid-cycle,
// and the old-key reply still completes it (AuthStaleKey) — then the
// next cycle signs under the new key and an old-key reply after the
// grace expires is rejected with the pending entry kept.
func TestAuthRotationGrace(t *testing.T) {
	rig := newAuthRig(t, fleet.AuthConfig{Key: authMaster1})

	// Cycle 1 under the original key, completed by an old-fashioned
	// matching reply: the baseline.
	probe, cpAddr := rig.readProbe(t)
	if probe.Version != wire.VersionAuth {
		t.Fatalf("authenticated CP sent a v%d probe", probe.Version)
	}
	if !authPairKey(t, authMaster1).VerifyFrame(&probe) {
		t.Fatal("probe tag does not verify under the derived pair key")
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster1)
	hardenWaitFor(t, 5*time.Second, "baseline cycle", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})

	// Cycle 2: probe in flight, key rotates, reply arrives signed with
	// the key the cycle STARTED under. The grace must accept it.
	probe, cpAddr = rig.readProbe(t)
	rig.rotate(t, authMaster2, 10*time.Second)
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster1)
	hardenWaitFor(t, 5*time.Second, "mid-rotation cycle", func() bool {
		return rig.cp.Stats().CyclesOK >= 2
	})
	if c := rig.counters(); c.AuthStaleKey == 0 {
		t.Error("old-key reply inside grace not counted AuthStaleKey")
	} else if c.AuthRejected != 0 {
		t.Errorf("old-key reply inside grace rejected: %+v", c)
	}

	// Cycle 3 signs under the new key.
	probe, cpAddr = rig.readProbe(t)
	if !authPairKey(t, authMaster2).VerifyFrame(&probe) {
		t.Fatal("post-rotation probe not signed under the new key")
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster2)
	hardenWaitFor(t, 5*time.Second, "new-key cycle", func() bool {
		return rig.cp.Stats().CyclesOK >= 3
	})

	// Rotate again with a tiny grace and let it expire: the previous
	// key's frames must now be rejected — and the pending entry kept, so
	// the genuine reply still lands.
	rig.rotate(t, authMaster3, 50*time.Millisecond)
	time.Sleep(120 * time.Millisecond)
	probe, cpAddr = rig.readProbe(t)
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster2)
	hardenWaitFor(t, 5*time.Second, "expired-key reply rejected", func() bool {
		return rig.counters().AuthRejected >= 1
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 3 {
		t.Fatalf("expired-key reply completed a cycle: CyclesOK=%d", ok)
	}
	if got := rig.counters().PendingProbes; got != 1 {
		t.Fatalf("pending entries after rejected reply = %d, want 1", got)
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster3)
	hardenWaitFor(t, 5*time.Second, "current-key reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 4
	})
}

// TestAuthTamperRejected: a reply with a flipped tag bit and a reply
// signed under the wrong master are both rejected (AuthRejected), the
// pending entry survives, and the genuine reply still completes the
// cycle — forgery cannot starve a cycle into a false verdict.
func TestAuthTamperRejected(t *testing.T) {
	rig := newAuthRig(t, fleet.AuthConfig{Key: authMaster1})
	probe, cpAddr := rig.readProbe(t)

	frame, err := wire.AppendEncodeFrameAuth(nil, &wire.Frame{
		Kind: wire.KindReplyEmpty, From: authDevID, Cycle: probe.Cycle, Attempt: probe.Attempt,
	}, authPairKey(t, authMaster1))
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Clone(frame)
	tampered[len(tampered)-1] ^= 0x01 // last tag byte
	if _, err := rig.dev.WriteToUDPAddrPort(tampered, cpAddr); err != nil {
		t.Fatal(err)
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, []byte("not-the-master"))
	hardenWaitFor(t, 5*time.Second, "tampered replies rejected", func() bool {
		return rig.counters().AuthRejected >= 2
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 0 {
		t.Fatalf("tampered reply completed %d cycles", ok)
	}
	if got := rig.counters().PendingProbes; got != 1 {
		t.Fatalf("pending entries after tampered replies = %d, want 1", got)
	}

	if _, err := rig.dev.WriteToUDPAddrPort(frame, cpAddr); err != nil {
		t.Fatal(err)
	}
	hardenWaitFor(t, 5*time.Second, "genuine reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})
}

// TestAuthDowngradeHighWater: with auth enabled but not required, a v1
// reply is accepted while the device has never spoken v2 (rollout
// interop) — but after one verified v2 reply the high-water mark
// latches and v1 replies are rejected for good (AuthDowngraded), with
// the pending entry kept.
func TestAuthDowngradeHighWater(t *testing.T) {
	rig := newAuthRig(t, fleet.AuthConfig{Key: authMaster1})

	// Phase 1: the device still speaks v1 — accepted.
	probe, cpAddr := rig.readProbe(t)
	rig.replyV1(t, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "v1 reply accepted pre-upgrade", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})

	// Phase 2: the device upgrades — one verified v2 reply.
	probe, cpAddr = rig.readProbe(t)
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster1)
	hardenWaitFor(t, 5*time.Second, "v2 reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 2
	})

	// Phase 3: a "device" speaking v1 again is an attacker stripping
	// tags. Rejected, pending kept, and the real v2 reply still lands.
	probe, cpAddr = rig.readProbe(t)
	rig.replyV1(t, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "downgrade rejected", func() bool {
		return rig.counters().AuthDowngraded >= 1
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 2 {
		t.Fatalf("downgraded reply completed a cycle: CyclesOK=%d", ok)
	}
	if got := rig.counters().PendingProbes; got != 1 {
		t.Fatalf("pending entries after downgraded reply = %d, want 1", got)
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster1)
	hardenWaitFor(t, 5*time.Second, "v2 reply after downgrade attempt", func() bool {
		return rig.cp.Stats().CyclesOK >= 3
	})
}

// TestAuthRequireRejectsV1: in Require mode even a first-contact v1
// reply is rejected — no rollout window at all.
func TestAuthRequireRejectsV1(t *testing.T) {
	rig := newAuthRig(t, fleet.AuthConfig{Key: authMaster1, Require: true})
	probe, cpAddr := rig.readProbe(t)
	rig.replyV1(t, cpAddr, probe.Cycle, probe.Attempt)
	hardenWaitFor(t, 5*time.Second, "v1 reply rejected", func() bool {
		return rig.counters().AuthDowngraded >= 1
	})
	if ok := rig.cp.Stats().CyclesOK; ok != 0 {
		t.Fatalf("unauthenticated reply completed %d cycles under Require", ok)
	}
	rig.replyAuth(t, cpAddr, probe.Cycle, probe.Attempt, authMaster1)
	hardenWaitFor(t, 5*time.Second, "authenticated reply accepted", func() bool {
		return rig.cp.Stats().CyclesOK >= 1
	})
}

// TestAuthConfigValidation pins the config plane's error cases: Require
// without a key (at construction and via SetConfig), a negative grace,
// and the keyfile path — read at New, missing and empty files rejected.
func TestAuthConfigValidation(t *testing.T) {
	if _, err := fleet.New(fleet.Config{Auth: fleet.AuthConfig{Require: true}}); err == nil {
		t.Error("New accepted Require without a key")
	}

	f, err := fleet.New(fleet.Config{Shards: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rc, _ := f.ConfigSnapshot()
	rc.AuthRequire = true
	if _, err := f.SetConfig(rc); err == nil {
		t.Error("SetConfig accepted AuthRequire without a key")
	}
	rc, _ = f.ConfigSnapshot()
	rc.AuthKey = authMaster1
	rc.AuthRotationGrace = -time.Second
	if _, err := f.SetConfig(rc); err == nil {
		t.Error("SetConfig accepted a negative rotation grace")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "master.key")
	if err := os.WriteFile(path, []byte("  file-master-secret\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	kf, err := fleet.New(fleet.Config{
		Shards: 1, ListenAddr: "127.0.0.1:0",
		Auth: fleet.AuthConfig{KeyFile: path},
	})
	if err != nil {
		t.Fatalf("New with keyfile: %v", err)
	}
	defer kf.Close()
	if rc, _ := kf.ConfigSnapshot(); string(rc.AuthKey) != "file-master-secret" {
		t.Errorf("keyfile master = %q, want trimmed file content", rc.AuthKey)
	}

	if _, err := fleet.LoadAuthKey(filepath.Join(dir, "absent.key")); err == nil {
		t.Error("LoadAuthKey accepted a missing file")
	}
	empty := filepath.Join(dir, "empty.key")
	if err := os.WriteFile(empty, []byte(" \n\t"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.LoadAuthKey(empty); err == nil {
		t.Error("LoadAuthKey accepted a whitespace-only file")
	}
}
