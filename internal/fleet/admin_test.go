package fleet

// Unit tests for the runtime administration plane: id-addressed
// removal, the bounded command inbox, live configuration, the
// per-device probe budget, and drain/rebalance migration. The churn
// soak and drain-equivalence batteries live in the external test
// package (churn_soak_test.go, drain_equiv_test.go); this file pins
// the mechanism-level contracts those scenarios build on.

import (
	"errors"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/ident"
)

func TestAdminGatesOnStart(t *testing.T) {
	f, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.DrainShard(0); err == nil {
		t.Error("DrainShard before Start accepted")
	}
	if _, err := f.Rebalance(); err == nil {
		t.Error("Rebalance before Start accepted")
	}
	if err := f.RemoveDevice(1); err == nil {
		t.Error("RemoveDevice of unknown device accepted")
	}
	if err := f.RemoveControlPoint(1); err == nil {
		t.Error("RemoveControlPoint of unknown CP accepted")
	}
	// Live config, by contrast, is valid before Start: it is how a
	// caller tunes a fleet between New and Start.
	if _, ver := f.ConfigSnapshot(); ver != 1 {
		t.Errorf("initial config version = %d, want 1", ver)
	}
	if ver, err := f.SetConfig(RuntimeConfig{Harden: true}); err != nil || ver != 2 {
		t.Errorf("SetConfig before Start = (%d, %v), want (2, nil)", ver, err)
	}
}

func TestRemoveControlPointByID(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	cp := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	waitFor(t, 3*time.Second, "a cycle", func() bool { return cp.Stats().CyclesOK >= 1 })

	if err := f.RemoveControlPoint(99); err == nil {
		t.Fatal("removing an unhosted id accepted")
	}
	if err := f.RemoveControlPoint(70); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot().Total
	if snap.ControlPoints != 0 || snap.LiveControlPoints != 0 || snap.PendingProbes != 0 {
		t.Fatalf("gauges after id-addressed remove: %+v", snap)
	}
	if err := f.RemoveControlPoint(70); err == nil {
		t.Fatal("double remove by id accepted")
	}
	// The id is free again, and the handle path still composes.
	cp2 := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	waitFor(t, 3*time.Second, "re-added CP cycle", func() bool { return cp2.Stats().CyclesOK >= 1 })
	cp2.Remove()
}

// TestAdmissionQueueBound pins the overload contract of the command
// inbox: with the shard loop wedged (the test holds the shard mutex,
// so the loop cannot drain), commands beyond RuntimeConfig.
// AdmissionQueue are refused with ErrAdmissionRejected, the counter
// advances, and the refused mutation leaves no trace once the loop
// resumes.
func TestAdmissionQueueBound(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2, AdmissionQueue: 1})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	cp := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	s := f.shards[cp.Shard()]

	s.mu.Lock()
	// Fill the single inbox slot with an inert command...
	if err := s.enqueueCmd(shardCommand{fn: func(*shard) error { return nil }}); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	// ...so the public mutation API must now back-pressure.
	err := f.RemoveControlPoint(70)
	s.mu.Unlock()
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("RemoveControlPoint against a full inbox = %v, want ErrAdmissionRejected", err)
	}

	waitFor(t, 3*time.Second, "queued command drained", func() bool {
		return f.Snapshot().Total.AdmissionRejected >= 1 && !s.cmd.pending.Load()
	})
	if n := f.Snapshot().Total.ControlPoints; n != 1 {
		t.Fatalf("rejected remove mutated the fleet: %d CPs hosted", n)
	}
	// With the loop running again the same call goes through.
	if err := f.RemoveControlPoint(70); err != nil {
		t.Fatal(err)
	}
}

func TestSetConfigVersioning(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	rc, ver := f.ConfigSnapshot()
	if ver != 1 {
		t.Fatalf("startup config version = %d, want 1", ver)
	}
	if rc.PendingTTL != 30*time.Second || rc.AdmissionQueue != defaultAdmissionQueue {
		t.Fatalf("startup defaults not applied: %+v", rc)
	}
	if _, err := f.SetConfig(RuntimeConfig{PerDeviceProbeHz: -1}); err == nil {
		t.Fatal("negative probe rate accepted")
	}
	if _, ver := f.ConfigSnapshot(); ver != 1 {
		t.Fatalf("rejected config bumped the version to %d", ver)
	}
	v2, err := f.SetConfig(RuntimeConfig{Harden: true, PerDeviceProbeHz: 5})
	if err != nil || v2 != 2 {
		t.Fatalf("SetConfig = (%d, %v), want (2, nil)", v2, err)
	}
	rc, ver = f.ConfigSnapshot()
	if ver != 2 || !rc.Harden || rc.PerDeviceProbeHz != 5 || rc.PerDeviceBurst != 16 {
		t.Fatalf("snapshot after push: ver=%d cfg=%+v", ver, rc)
	}
	// Every shard picked up the push (runOn round-trips through each
	// loop, so by the time SetConfig returns the tables must exist).
	for i, s := range f.shards {
		s.mu.Lock()
		harden, budget := s.rt.Harden, s.devBudget != nil
		s.mu.Unlock()
		if !harden || !budget {
			t.Fatalf("shard %d missed the config push: harden=%v budget=%v", i, harden, budget)
		}
	}
	// Turning the knobs back off drops the optional tables.
	if _, err := f.SetConfig(RuntimeConfig{}); err != nil {
		t.Fatal(err)
	}
	for i, s := range f.shards {
		s.mu.Lock()
		leaked := s.devBudget != nil || s.completed != nil || s.sources != nil
		s.mu.Unlock()
		if leaked {
			t.Fatalf("shard %d kept optional tables after config rollback", i)
		}
	}
}

// TestPerDeviceProbeBudget points a herd of fast control points at one
// device with a 1 Hz / burst-1 budget: the first probe goes through,
// the rest of the herd is shed before the wire (Counters.ProbesShed)
// and each shed cycle behaves exactly like a lost probe — the CPs sit
// in their retransmit wait instead of declaring anything.
func TestPerDeviceProbeBudget(t *testing.T) {
	f := startedFleet(t, Config{Shards: 1, PerDeviceProbeHz: 1, PerDeviceBurst: 1})
	dev, err := f.AddDevice(1, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(1, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	lst := &countingListener{}
	for i := 0; i < 8; i++ {
		policy, err := naive.NewPolicy(5 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddControlPoint(CPConfig{
			ID: ident.NodeID(100 + i), Device: 1, DeviceAddrPort: dev.Addr(),
			Policy: policy, Listener: lst,
			// An hour of retransmit headroom: a shed cycle parks the CP
			// instead of racing toward a false lost verdict mid-test.
			Retransmit: core.RetransmitConfig{FirstTimeout: time.Hour, RetryTimeout: time.Hour},
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "probes shed", func() bool {
		return f.Snapshot().Total.ProbesShed >= 5
	})
	snap := f.Snapshot().Total
	if snap.RepliesIn == 0 {
		t.Fatal("budget shed everything — the in-budget probe should complete")
	}
	if _, lost, byes := lst.snapshot(); lost != 0 || byes != 0 {
		t.Fatalf("shedding manufactured verdicts: lost=%d byes=%d", lost, byes)
	}
}

func TestDrainRebalance(t *testing.T) {
	const nCPs = 12
	f := startedFleet(t, Config{Shards: 4})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	lst := &countingListener{}
	// Pick ids that spread evenly over the hash homes, so the drained
	// shard is guaranteed to host some CPs whatever mix64 does.
	perShard := make([]int, 4)
	ids := make([]ident.NodeID, 0, nCPs)
	for id := ident.NodeID(200); len(ids) < nCPs; id++ {
		if home := f.HomeShard(id); perShard[home] < nCPs/4 {
			perShard[home]++
			ids = append(ids, id)
		}
	}
	onDrained := perShard[1]
	for _, id := range ids {
		addDCPPCP(t, f, id, 1, dev.Addr().String(), lst)
	}
	waitFor(t, 5*time.Second, "steady probing", func() bool {
		alive, _, _ := lst.snapshot()
		return alive >= nCPs
	})

	moved, err := f.DrainShard(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != onDrained {
		t.Fatalf("drain moved %d CPs, shard 1 hosted %d", moved, onDrained)
	}
	if d := f.Draining(); !d[1] || d[0] || d[2] || d[3] {
		t.Fatalf("draining marks after DrainShard(1): %v", d)
	}
	for _, id := range ids {
		if got := f.shardOf(t, id); got == 1 {
			t.Fatalf("CP %v still on drained shard", id)
		}
	}
	if mig := f.Snapshot().Total.Migrations; mig != uint64(moved) {
		t.Fatalf("Migrations counter = %d, want %d", mig, moved)
	}
	// Placement avoids the draining shard: an id homed on shard 1 must
	// land elsewhere while the mark stands.
	extra := ident.NodeID(0)
	for id := ident.NodeID(500); id < 600; id++ {
		if f.HomeShard(id) == 1 {
			extra = id
			break
		}
	}
	cp := addDCPPCP(t, f, extra, 1, dev.Addr().String(), nil)
	if cp.Shard() == 1 {
		t.Fatal("new CP placed on a draining shard")
	}
	cp.Remove()

	// Verdict-free migration: probing continues after the drain.
	aliveBefore, _, _ := lst.snapshot()
	waitFor(t, 5*time.Second, "probing after drain", func() bool {
		alive, _, _ := lst.snapshot()
		return alive >= aliveBefore+nCPs
	})

	movedBack, err := f.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if movedBack != moved {
		t.Fatalf("rebalance moved %d CPs back, drain had moved %d", movedBack, moved)
	}
	for _, d := range f.Draining() {
		if d {
			t.Fatal("draining mark survived Rebalance")
		}
	}
	for _, id := range ids {
		if got := f.shardOf(t, id); got != f.HomeShard(id) {
			t.Fatalf("CP %v on shard %d after rebalance, home is %d", id, got, f.HomeShard(id))
		}
	}
	if _, lost, byes := lst.snapshot(); lost != 0 || byes != 0 {
		t.Fatalf("migration manufactured verdicts: lost=%d byes=%d", lost, byes)
	}

	// Draining the last non-draining shard must be refused.
	for i := 1; i < 4; i++ {
		if _, err := f.DrainShard(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.DrainShard(0); err == nil {
		t.Fatal("draining every shard accepted")
	}
	if _, err := f.DrainShard(99); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// shardOf resolves a CP id to its current shard via the directory —
// test-only introspection for migration asserts.
func (f *Fleet) shardOf(t *testing.T, id ident.NodeID) int {
	t.Helper()
	f.adminMu.Lock()
	n := f.dir[id]
	f.adminMu.Unlock()
	if n == nil {
		t.Fatalf("CP %v not in directory", id)
	}
	return n.sh().index
}

// TestAddDeviceRuntime exercises the device half of the mutation
// plane: occupancy, removal, and re-add on a running fleet.
func TestAddRemoveDeviceRuntime(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	addDCPPDevice(t, f, 1, fastDCPP())
	addDCPPDevice(t, f, 2, fastDCPP())
	if err := f.RemoveDevice(7); err == nil {
		t.Fatal("removing an unhosted device accepted")
	}
	if err := f.RemoveDevice(1); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveDevice(1); err == nil {
		t.Fatal("double device remove accepted")
	}
	// The freed shard hosts a replacement.
	dev3 := addDCPPDevice(t, f, 3, fastDCPP())
	cp := addDCPPCP(t, f, 70, 3, dev3.Addr().String(), nil)
	waitFor(t, 3*time.Second, "cycle against re-added device", func() bool {
		return cp.Stats().CyclesOK >= 1
	})
}
