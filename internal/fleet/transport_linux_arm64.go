//go:build linux && arm64

package fleet

// The frozen syscall package predates sendmmsg; the numbers are part
// of the kernel ABI and can never change.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
