package fleet

import (
	"math/rand"
	"testing"
	"time"
)

// fireDue drains a due batch the way the shard loop does: respecting
// generations.
func fireDue(due []dueEntry) {
	for _, d := range due {
		if d.t.gen == d.gen && d.t.fire != nil {
			d.t.fire()
		}
	}
}

func TestWheelFiresAtExactTick(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	var firedAt []int64
	mk := func(at time.Duration) *wheelTimer {
		tm := &wheelTimer{}
		tm.fire = func() { firedAt = append(firedAt, w.nowTick) }
		w.Schedule(tm, at)
		return tm
	}
	// One per level: 5 ms, 5 s (level 1), 2 min (level 2), 12 h (level 3).
	offsets := []time.Duration{5 * time.Millisecond, 5 * time.Second, 2 * time.Minute, 12 * time.Hour}
	for _, at := range offsets {
		mk(at)
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Drive the wheel the way the shard loop does: sleep to the bound
	// NextDeadline reports, advance there, fire. Every timer must then
	// fire exactly at its own tick.
	for {
		next, ok := w.NextDeadline()
		if !ok {
			break
		}
		fireDue(w.Advance(next))
	}
	if len(firedAt) != 4 {
		t.Fatalf("fired %d timers, want 4", len(firedAt))
	}
	for i, at := range offsets {
		if want := int64(at / time.Millisecond); firedAt[i] != want {
			t.Errorf("timer %d fired at tick %d, want %d", i, firedAt[i], want)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len after drain = %d", w.Len())
	}
}

func TestWheelMonotonicFireOrder(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	rng := rand.New(rand.NewSource(2005))
	const n = 5000
	timers := make([]wheelTimer, n)
	deadlines := make([]int64, n)
	var fired []int64
	for i := range timers {
		at := time.Duration(1+rng.Intn(10_000_000)) * time.Microsecond // up to 10 s
		idx := i
		timers[i].fire = func() { fired = append(fired, deadlines[idx]) }
		w.Schedule(&timers[i], at)
		deadlines[i] = timers[i].deadline
	}
	for now := time.Duration(0); now <= 11*time.Second; now += 3 * time.Millisecond {
		before := len(fired)
		fireDue(w.Advance(now))
		// Every timer collected in this batch must be due by now and
		// must not have been due before the previous advance.
		for _, dl := range fired[before:] {
			if dl > int64(now/w.tick) {
				t.Fatalf("timer with deadline tick %d fired at %v (early)", dl, now)
			}
		}
	}
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire order not monotonic: tick %d after %d", fired[i], fired[i-1])
		}
	}
	if w.Fired() != n {
		t.Fatalf("Fired = %d", w.Fired())
	}
}

func TestWheelCancelAndReschedule(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	count := 0
	tm := &wheelTimer{fire: func() { count++ }}
	w.Schedule(tm, 10*time.Millisecond)
	w.Cancel(tm)
	if w.Len() != 0 {
		t.Fatal("cancel left the timer linked")
	}
	fireDue(w.Advance(20 * time.Millisecond))
	if count != 0 {
		t.Fatal("cancelled timer fired")
	}
	w.Cancel(tm) // cancelling an unarmed timer is a no-op

	// Re-arming replaces the pending deadline (Env.SetAlarm semantics).
	w.Schedule(tm, 30*time.Millisecond)
	w.Schedule(tm, 90*time.Millisecond)
	if w.Len() != 1 {
		t.Fatalf("Len = %d after reschedule", w.Len())
	}
	fireDue(w.Advance(50 * time.Millisecond))
	if count != 0 {
		t.Fatal("superseded deadline fired")
	}
	fireDue(w.Advance(100 * time.Millisecond))
	if count != 1 {
		t.Fatalf("count = %d", count)
	}

	// A past deadline fires on the next tick.
	w.Schedule(tm, time.Millisecond)
	fireDue(w.Advance(101 * time.Millisecond))
	if count != 2 {
		t.Fatalf("past-deadline timer did not fire on the next tick (count=%d)", count)
	}
}

func TestWheelCancelFromCallbackDefusesBatchmate(t *testing.T) {
	// Two timers due the same tick; the first callback cancels the
	// second. The generation check must keep the second from firing.
	w := newTimerWheel(time.Millisecond)
	var a, b wheelTimer
	bFired := false
	a.fire = func() { w.Cancel(&b) }
	b.fire = func() { bFired = true }
	w.Schedule(&a, 5*time.Millisecond)
	w.Schedule(&b, 5*time.Millisecond)
	fireDue(w.Advance(10 * time.Millisecond))
	if bFired {
		t.Fatal("cancelled batchmate fired anyway")
	}
}

func TestWheelRescheduleFromCallback(t *testing.T) {
	// A callback re-arming its own timer (the prober's steady state:
	// every OnAlarm sets the next alarm).
	w := newTimerWheel(time.Millisecond)
	var tm wheelTimer
	fires := 0
	tm.fire = func() {
		fires++
		if fires < 5 {
			w.Schedule(&tm, time.Duration(w.nowTick)*w.tick+7*time.Millisecond)
		}
	}
	w.Schedule(&tm, 7*time.Millisecond)
	for now := time.Duration(0); now <= 100*time.Millisecond; now += time.Millisecond {
		fireDue(w.Advance(now))
	}
	if fires != 5 {
		t.Fatalf("fires = %d, want 5", fires)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWheelNextDeadline(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	if _, ok := w.NextDeadline(); ok {
		t.Fatal("empty wheel reported a deadline")
	}
	var near, far wheelTimer
	w.Schedule(&far, 10*time.Second) // level 1
	next, ok := w.NextDeadline()
	if !ok || next > 10*time.Second {
		t.Fatalf("NextDeadline = %v ok=%v, want a bound ≤ 10s", next, ok)
	}
	// Converges onto the exact deadline by advancing to each bound.
	for {
		fireDue(w.Advance(next))
		var more bool
		next, more = w.NextDeadline()
		if !more {
			break
		}
	}
	if w.nowTick != int64(10*time.Second/w.tick) {
		t.Fatalf("converged at tick %d, want the far deadline", w.nowTick)
	}

	w.Schedule(&near, w.Now()+3*time.Millisecond)
	next, ok = w.NextDeadline()
	if !ok || next != w.Now()+3*time.Millisecond {
		t.Fatalf("level-0 NextDeadline = %v, want exact", next)
	}
}

// TestWheelStressManyAlarms drives 50k concurrent alarms with random
// cancels and reschedules; every surviving alarm must fire exactly once
// at its final deadline.
func TestWheelStressManyAlarms(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	rng := rand.New(rand.NewSource(7))
	const n = 50_000
	timers := make([]wheelTimer, n)
	fires := make([]int, n)
	for i := range timers {
		idx := i
		timers[i].fire = func() { fires[idx]++ }
		w.Schedule(&timers[i], time.Duration(1+rng.Intn(60_000))*time.Millisecond)
	}
	cancelled := make(map[int]bool)
	for i := 0; i < n/4; i++ {
		idx := rng.Intn(n)
		if rng.Intn(2) == 0 {
			w.Cancel(&timers[idx])
			cancelled[idx] = true
		} else {
			w.Schedule(&timers[idx], time.Duration(1+rng.Intn(60_000))*time.Millisecond)
			delete(cancelled, idx)
		}
	}
	for now := time.Duration(0); now <= 61*time.Second; now += 13 * time.Millisecond {
		fireDue(w.Advance(now))
	}
	for i, f := range fires {
		want := 1
		if cancelled[i] {
			want = 0
		}
		if f != want {
			t.Fatalf("timer %d fired %d times, want %d", i, f, want)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}

// Now is a test helper on the wheel: the current offset.
func (w *timerWheel) Now() time.Duration { return time.Duration(w.nowTick) * w.tick }

// TestWheelLongHorizonExactFire: alarms armed beyond the level-0 span
// (256 ticks) — one per overflow level, the deepest past 256³ ticks —
// must ride the cascade path down and still fire at their exact tick,
// not a slot-width early or late.
func TestWheelLongHorizonExactFire(t *testing.T) {
	// Ticks chosen to sit mid-slot at each level, plus one exactly on a
	// cascade boundary (a historical off-by-one habitat).
	for _, deltaTicks := range []int64{300, 70_000, 65_536, 17_000_000, 16_777_216} {
		w := newTimerWheel(time.Millisecond)
		fired, firedTick := 0, int64(-1)
		tm := &wheelTimer{}
		tm.fire = func() { fired++; firedTick = w.nowTick }
		deadline := time.Duration(deltaTicks) * time.Millisecond
		w.Schedule(tm, deadline)
		fireDue(w.Advance(deadline - time.Millisecond))
		if fired != 0 {
			t.Fatalf("delta %d: fired %d times one tick before the deadline", deltaTicks, fired)
		}
		fireDue(w.Advance(deadline))
		if fired != 1 || firedTick != deltaTicks {
			t.Fatalf("delta %d: fired %d times, at tick %d (want once at %d)", deltaTicks, fired, firedTick, deltaTicks)
		}
		if w.Len() != 0 {
			t.Fatalf("delta %d: Len = %d after fire", deltaTicks, w.Len())
		}
	}
}

// TestWheelCancelAndRearmAcrossCascades: a timer that has already
// cascaded down a level (or two) must still honour Cancel and
// Schedule — stale positions may not resurface as ghost firings.
func TestWheelCancelAndRearmAcrossCascades(t *testing.T) {
	w := newTimerWheel(time.Millisecond)
	fired, firedTick := 0, int64(-1)
	tm := &wheelTimer{}
	tm.fire = func() { fired++; firedTick = w.nowTick }

	// Arm in level 2 (100 000 ticks), advance far enough that the timer
	// has cascaded into level 1 territory, then re-arm earlier.
	w.Schedule(tm, 100_000*time.Millisecond)
	fireDue(w.Advance(70_000 * time.Millisecond))
	if fired != 0 {
		t.Fatal("fired before the deadline")
	}
	w.Schedule(tm, 80_000*time.Millisecond)
	fireDue(w.Advance(80_000 * time.Millisecond))
	if fired != 1 || firedTick != 80_000 {
		t.Fatalf("re-armed timer fired %d times at tick %d, want once at 80000", fired, firedTick)
	}
	// The original 100 000-tick position must not resurface.
	fireDue(w.Advance(120_000 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("ghost firing after re-arm: %d", fired)
	}

	// Re-arm far into level 3, cascade partway, cancel, and cross the
	// old deadline: nothing may fire and the wheel must drain to empty.
	w.Schedule(tm, 17_000_000*time.Millisecond)
	fireDue(w.Advance(16_900_000 * time.Millisecond))
	w.Cancel(tm)
	if w.Len() != 0 {
		t.Fatalf("Len = %d after cancel", w.Len())
	}
	fireDue(w.Advance(17_100_000 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("cancelled timer fired: %d", fired)
	}

	// And a cancelled timer must accept a fresh arm afterwards.
	w.Schedule(tm, 17_100_500*time.Millisecond)
	fireDue(w.Advance(17_100_500 * time.Millisecond))
	if fired != 2 || firedTick != 17_100_500 {
		t.Fatalf("re-armed-after-cancel fired %d times at tick %d", fired, firedTick)
	}
}

func BenchmarkWheelScheduleCancel(b *testing.B) {
	w := newTimerWheel(time.Millisecond)
	timers := make([]wheelTimer, 10_000)
	for i := range timers {
		w.Schedule(&timers[i], time.Duration(i+1)*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := &timers[i%len(timers)]
		w.Schedule(tm, time.Duration(i%60_000+1)*time.Millisecond)
	}
}
