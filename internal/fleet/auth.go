package fleet

// Frame authentication: the fleet's key plane for wire version 2.
//
// PR 6's hardening (source pinning, replay windows, attempt bitmasks)
// is heuristic — it stops attackers who cannot spoof the device's
// address. Authentication makes the defenses cryptographic: with
// Config.Auth set, every frame the fleet sends carries a truncated
// HMAC-SHA256 tag (wire v2) and every frame it receives is verified
// before any engine sees it, so a forged reply, BYE or probe is
// rejected no matter what source address it claims.
//
// The design constraints, in order:
//
//   - Zero allocations on the hot path. HMAC schedules are derived once
//     per (control point, device) pair / per device and retained: a
//     cpNode carries its pair schedules next to the demux state the
//     reply path already touches, a hosted device caches one schedule
//     per known peer (bounded by and evicted with the peer table), and
//     per-device broadcast schedules live in the shard's devAuth table.
//     Sign and verify then cost one HMAC each, no heap traffic — the
//     0 allocs/op gate runs with auth ON.
//   - Rotation never manufactures a verdict. The shard's authPlane
//     holds the current and previous master; after SetConfig installs a
//     new key, frames under the old one are still accepted for
//     RotationGrace (Counters.AuthStaleKey), so in-flight cycles
//     complete across the swap — the same no-false-verdict discipline
//     drain/rebalance meets. Schedules re-derive lazily: every key
//     change bumps the shard's epoch, and each node compares its cached
//     epoch on first use.
//   - Downgrade-proof negotiation. A v1 (unauthenticated) frame is
//     still accepted from a device that has never authenticated — mixed
//     fleets interoperate during a rollout — but once a device has ever
//     spoken v2 to this shard, its high-water mark is set and v1 frames
//     from it are rejected (Counters.AuthDowngraded). AuthConfig.
//     Require closes the window entirely: no v1 frame is accepted from
//     anyone.
//
// Key hierarchy: one master secret, HKDF-derived subkeys. Probes and
// replies use the (control point, device) pair key — both endpoints of
// one monitoring relationship derive it independently. BYEs and
// announces use the device's broadcast key, so a fan-out to N watchers
// costs each receiving shard one verification, not N.
//
// Replays within a live cycle are out of scope for the tag (it covers
// no timestamp); the PR-6 replay window and attempt bitmask still
// handle those, now over authenticated frames only.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/wire"
)

// AuthConfig configures frame authentication (wire v2). The zero value
// disables it: the fleet speaks unauthenticated v1, exactly the
// pre-auth runtime.
type AuthConfig struct {
	// Key is the fleet's master pre-shared secret. Non-empty enables
	// authentication: every frame sent is signed (wire v2) and every
	// frame received is verified. Per-pair and per-device subkeys are
	// HKDF-derived from it, never used raw.
	Key []byte
	// KeyFile names a file holding the master secret (whitespace
	// trimmed), read once by New when Key is empty. probefleet re-reads
	// it on SIGHUP and pushes the new key through SetConfig — live
	// rotation without a restart.
	KeyFile string
	// Require rejects every unauthenticated v1 frame, not only those
	// from devices that already spoke v2. Set it once the whole
	// population is authenticated; leave it unset during a rollout.
	Require bool
	// RotationGrace bounds how long the previous master is still
	// accepted after a key rotation (Counters.AuthStaleKey), so frames
	// in flight across the swap cannot manufacture a verdict. Zero
	// means 30 s.
	RotationGrace time.Duration
}

// enabled reports whether this config turns authentication on.
func (a *AuthConfig) enabled() bool { return len(a.Key) > 0 || a.KeyFile != "" }

// LoadAuthKey reads a master secret from a keyfile: the file's content
// with leading/trailing whitespace trimmed. An empty (or
// whitespace-only) file is an error — a misconfigured rotation must
// not silently disable authentication.
func LoadAuthKey(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: auth keyfile: %w", err)
	}
	key := bytes.TrimSpace(raw)
	if len(key) == 0 {
		return nil, fmt.Errorf("fleet: auth keyfile %s is empty", path)
	}
	return key, nil
}

// errAuthRequireNoKey rejects a runtime config that demands
// authentication while removing the key that provides it.
var errAuthRequireNoKey = errors.New("fleet: AuthRequire set without an auth key")

// authPlane is one shard's authentication state: the live master
// secrets and the epoch node-cached schedules are derived under.
// Guarded by the shard mutex like everything the dispatch path reads.
type authPlane struct {
	enabled bool
	require bool
	// epoch increments on every key-plane change (enable, disable,
	// rotation); node schedules cache it and re-derive on mismatch.
	epoch uint64
	cur   []byte
	// prev is the pre-rotation master, accepted until prevUntil.
	prev      []byte
	prevUntil time.Duration
}

// devAuthState is a shard's per-device auth state: the broadcast-key
// schedules (BYE/announce verification — one HMAC per received frame
// regardless of watcher count) and the v2 high-water mark that makes
// negotiation downgrade-proof.
type devAuthState struct {
	epoch uint64
	cur   *wire.AuthKey
	prev  *wire.AuthKey
	// seenV2 latches once the device has ever sent a verified v2 frame
	// to this shard; v1 frames from it are rejected afterwards.
	seenV2 bool
}

// peerAuthState is a hosted device's per-peer auth state: the pair-key
// schedules for one watching control point, plus its v2 high-water
// mark. Entries live and die with the device's peer table (bounded,
// LRU-evicted).
type peerAuthState struct {
	epoch  uint64
	cur    *wire.AuthKey
	prev   *wire.AuthKey
	seenV2 bool
}

// applyAuthLocked folds the runtime config's auth fields into the
// shard's key plane: enable, disable, or rotate with grace. Runs under
// the shard mutex (from applyConfigLocked).
func (s *shard) applyAuthLocked(rc *RuntimeConfig) {
	a := &s.auth
	switch {
	case len(rc.AuthKey) == 0:
		if a.enabled {
			*a = authPlane{epoch: a.epoch + 1}
		}
	case !a.enabled:
		*a = authPlane{enabled: true, epoch: a.epoch + 1, cur: rc.AuthKey}
	case !bytes.Equal(a.cur, rc.AuthKey):
		// Rotation: the old master stays verifiable for the grace window
		// so frames in flight across the swap still land.
		a.prev = a.cur
		a.prevUntil = s.fleet.sinceEpoch() + rc.AuthRotationGrace
		a.cur = rc.AuthKey
		a.epoch++
	}
	a.require = a.enabled && rc.AuthRequire
	if !a.enabled {
		s.devAuth = nil
	}
}

// deriveOrNil wraps wire.DeriveKey for the dispatch paths: the master
// is validated non-empty when the plane enables, so failure cannot
// happen; a nil schedule (never matching any tag) is the safe fallback
// if it somehow does.
func deriveOrNil(master []byte, info string) *wire.AuthKey {
	k, err := wire.DeriveKey(master, info)
	if err != nil {
		return nil
	}
	return k
}

// verifyDual checks a v2 frame against a current/previous schedule
// pair: the current key, then — inside the rotation grace — the
// previous one (Counters.AuthStaleKey). Counts the outcome. Runs under
// the shard mutex.
func (s *shard) verifyDual(cur, prev *wire.AuthKey, f *wire.Frame) bool {
	if cur != nil && cur.VerifyFrame(f) {
		s.counters.AuthVerified++
		return true
	}
	if prev != nil && s.fleet.sinceEpoch() < s.auth.prevUntil && prev.VerifyFrame(f) {
		s.counters.AuthVerified++
		s.counters.AuthStaleKey++
		return true
	}
	s.counters.AuthRejected++
	return false
}

// ensureCPAuth refreshes a control point's pair-key schedules (and its
// devAuth pointer) for the shard's current key epoch. Cheap when
// already current: one comparison. Runs under the shard mutex.
func (s *shard) ensureCPAuth(n *cpNode) {
	a := &s.auth
	if !a.enabled {
		n.authCur, n.authPrev, n.devAuth = nil, nil, nil
		n.authEpoch = a.epoch
		return
	}
	if n.authEpoch == a.epoch && n.authCur != nil {
		return
	}
	info := wire.PairInfo(n.id, n.device)
	n.authCur = deriveOrNil(a.cur, info)
	n.authPrev = nil
	if a.prev != nil {
		n.authPrev = deriveOrNil(a.prev, info)
	}
	n.devAuth = s.devAuthFor(n.device)
	n.authEpoch = a.epoch
}

// devAuthFor returns the shard's auth state for a device, creating it
// if needed and refreshing its broadcast schedules to the current
// epoch. Only call for devices this shard watches or fans out for (the
// table must stay bounded by the watched population). Runs under the
// shard mutex.
func (s *shard) devAuthFor(id ident.NodeID) *devAuthState {
	st := s.devAuth[id]
	if st == nil {
		st = &devAuthState{}
		if s.devAuth == nil {
			s.devAuth = make(map[ident.NodeID]*devAuthState)
		}
		s.devAuth[id] = st
	}
	a := &s.auth
	if st.epoch != a.epoch || st.cur == nil {
		info := wire.DeviceInfo(id)
		st.cur = deriveOrNil(a.cur, info)
		st.prev = nil
		if a.prev != nil {
			st.prev = deriveOrNil(a.prev, info)
		}
		st.epoch = a.epoch
	}
	return st
}

// ensurePeerAuth refreshes a hosted device's pair schedules for peer
// cp to the current epoch. Runs under the shard mutex.
func (s *shard) ensurePeerAuth(st *peerAuthState, cp, device ident.NodeID) {
	a := &s.auth
	if st.epoch == a.epoch && st.cur != nil {
		return
	}
	info := wire.PairInfo(cp, device)
	st.cur = deriveOrNil(a.cur, info)
	st.prev = nil
	if a.prev != nil {
		st.prev = deriveOrNil(a.prev, info)
	}
	st.epoch = a.epoch
}

// authCheckReply gates one demuxed reply for control point n: a v2
// frame must verify under the pair keys (setting the device's v2
// high-water mark), a v1 frame is rejected once the device has ever
// spoken v2 (or always, under Require). On rejection the pending entry
// is kept — the genuine reply may still be on the wire, so a forgery
// cannot starve the cycle into a false verdict. Runs under the shard
// mutex.
func (s *shard) authCheckReply(n *cpNode, f *wire.Frame) bool {
	if f.Version == wire.VersionAuth {
		s.ensureCPAuth(n)
		if !s.verifyDual(n.authCur, n.authPrev, f) {
			return false
		}
		if n.devAuth == nil {
			n.devAuth = s.devAuthFor(n.device)
		}
		n.devAuth.seenV2 = true
		return true
	}
	if s.auth.require || (n.devAuth != nil && n.devAuth.seenV2) {
		s.counters.AuthDowngraded++
		return false
	}
	return true
}

// authCheckProbe gates one probe arriving at the hosted device. First
// v2 contact from an unknown peer verifies against a freshly derived
// schedule and caches it only on success — forged sender ids cannot
// grow the cache, and genuine entries are bounded by (and evicted
// with) the peer table. Runs under the shard mutex.
func (s *shard) authCheckProbe(f *wire.Frame) bool {
	d := s.device
	st := d.peerAuth[f.From]
	if f.Version == wire.VersionAuth {
		if st == nil {
			st = &peerAuthState{}
			s.ensurePeerAuth(st, f.From, d.id)
			if !s.verifyDual(st.cur, st.prev, f) {
				return false
			}
			if d.peerAuth == nil {
				d.peerAuth = make(map[ident.NodeID]*peerAuthState)
			}
			d.peerAuth[f.From] = st
		} else {
			s.ensurePeerAuth(st, f.From, d.id)
			if !s.verifyDual(st.cur, st.prev, f) {
				return false
			}
		}
		st.seenV2 = true
		return true
	}
	if s.auth.require || (st != nil && st.seenV2) {
		s.counters.AuthDowngraded++
		return false
	}
	return true
}

// authCheckBroadcast gates one BYE/announce against the device's
// broadcast schedules and high-water mark. Runs under the shard mutex.
func (s *shard) authCheckBroadcast(st *devAuthState, f *wire.Frame) bool {
	if f.Version == wire.VersionAuth {
		if !s.verifyDual(st.cur, st.prev, f) {
			return false
		}
		st.seenV2 = true
		return true
	}
	if s.auth.require || st.seenV2 {
		s.counters.AuthDowngraded++
		return false
	}
	return true
}

// broadcastAuthFor resolves the devAuth state for a received
// BYE/announce claiming device id: the cached entry, or a fresh one
// when the device is watched here or anywhere in the fleet (the
// fan-out set). Nil for unknown devices — their frames drop as demux
// misses, same as pre-auth, so forged ids cannot grow the table. Runs
// under the shard mutex.
func (s *shard) broadcastAuthFor(id ident.NodeID) *devAuthState {
	if st := s.devAuth[id]; st != nil {
		return s.devAuthFor(id) // refresh epoch
	}
	if len(s.watchers[id]) > 0 || s.fleet.deviceWatched(id) {
		return s.devAuthFor(id)
	}
	return nil
}

// deviceWatched reports whether any shard hosts a watcher of device —
// the fan-out set broadcastAuthFor bounds the devAuth table by.
func (f *Fleet) deviceWatched(id ident.NodeID) bool {
	f.watchMu.Lock()
	_, ok := f.watchMask[id]
	f.watchMu.Unlock()
	return ok
}

// deviceSendKey picks the signing schedule for one message a hosted
// device sends: the broadcast key for BYE/announce fan-out, the pair
// key for replies to a specific control point. Runs under the shard
// mutex; auth enabled.
func (s *shard) deviceSendKey(d *deviceNode, to ident.NodeID, msg core.Message) *wire.AuthKey {
	switch msg.(type) {
	case core.ByeMsg, *core.ByeMsg, core.AnnounceMsg, *core.AnnounceMsg:
		return s.deviceOwnKey(d)
	}
	st := d.peerAuth[to]
	if st == nil {
		// The peer is in the peer table (the address lookup succeeded), so
		// the cache stays bounded by it.
		st = &peerAuthState{}
		if d.peerAuth == nil {
			d.peerAuth = make(map[ident.NodeID]*peerAuthState)
		}
		d.peerAuth[to] = st
	}
	s.ensurePeerAuth(st, to, d.id)
	return st.cur
}

// deviceOwnKey returns the hosted device's broadcast signing schedule,
// deriving it on first use per epoch. Runs under the shard mutex.
func (s *shard) deviceOwnKey(d *deviceNode) *wire.AuthKey {
	a := &s.auth
	if d.authEpoch != a.epoch || d.ownKey == nil {
		d.ownKey = deriveOrNil(a.cur, wire.DeviceInfo(d.id))
		d.authEpoch = a.epoch
	}
	return d.ownKey
}

// sweepAuthLocked expires devAuth entries for devices no longer
// watched anywhere — bounded state, like every other sweep target.
// Runs on the shard loop under the mutex.
func (s *shard) sweepAuthLocked() {
	for id := range s.devAuth {
		if len(s.watchers[id]) == 0 && !s.fleet.deviceWatched(id) {
			delete(s.devAuth, id)
		}
	}
}
