//go:build !linux || (!amd64 && !arm64)

package fleet

// newUDPBatchConn on platforms without a recvmmsg/sendmmsg binding
// (everything but 64-bit Linux) returns the plain conn; the shard then
// adapts it with the portable loop-over-single-datagram fallback.
func newUDPBatchConn(c udpPacketConn) PacketConn { return c }
