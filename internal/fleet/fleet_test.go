package fleet

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/ident"
)

// fastDCPP keeps wall-clock test time low: L_nom = 200/s, f_max = 50/s.
func fastDCPP() dcpp.DeviceConfig {
	return dcpp.DeviceConfig{MinGap: 5 * time.Millisecond, MinCPDelay: 20 * time.Millisecond}
}

func fastRetransmit() core.RetransmitConfig {
	return core.RetransmitConfig{
		FirstTimeout:   60 * time.Millisecond,
		RetryTimeout:   40 * time.Millisecond,
		MaxRetransmits: 3,
	}
}

// countingListener is a thread-safe listener recording events.
type countingListener struct {
	mu    sync.Mutex
	alive int
	lost  int
	byes  int
}

func (l *countingListener) DeviceAlive(ident.NodeID, core.CycleResult) {
	l.mu.Lock()
	l.alive++
	l.mu.Unlock()
}

func (l *countingListener) DeviceLost(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.lost++
	l.mu.Unlock()
}

func (l *countingListener) DeviceBye(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.byes++
	l.mu.Unlock()
}

func (l *countingListener) snapshot() (alive, lost, byes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alive, l.lost, l.byes
}

func startedFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	return f
}

func addDCPPDevice(t *testing.T, f *Fleet, id ident.NodeID, cfg dcpp.DeviceConfig) *Device {
	t.Helper()
	dev, err := f.AddDevice(id, func(env core.Env) (core.Device, error) {
		return dcpp.NewDevice(id, env, cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func addDCPPCP(t *testing.T, f *Fleet, id, device ident.NodeID, addr string, lst core.Listener) *ControlPoint {
	t.Helper()
	policy, err := dcpp.NewPolicy(dcpp.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := f.AddControlPoint(CPConfig{
		ID: id, Device: device, DeviceAddr: addr,
		Policy: policy, Listener: lst, Retransmit: fastRetransmit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{ListenAddr: "not-an-addr:xx"}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := New(Config{Shards: 2, ListenAddr: "127.0.0.1:9555"}); err == nil {
		t.Error("pinned port with multiple shards accepted")
	}
	f, err := New(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Adds before Start are rejected.
	if _, err := f.AddControlPoint(CPConfig{ID: 1, Device: 2, DeviceAddr: "127.0.0.1:1", Policy: mustNaive(t)}); err == nil {
		t.Error("AddControlPoint before Start accepted")
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("double Start accepted")
	}
	if _, err := f.AddControlPoint(CPConfig{Device: 2, DeviceAddr: "127.0.0.1:1", Policy: mustNaive(t)}); err == nil {
		t.Error("invalid CP id accepted")
	}
	if _, err := f.AddControlPoint(CPConfig{ID: 1, DeviceAddr: "127.0.0.1:1", Policy: mustNaive(t)}); err == nil {
		t.Error("invalid device id accepted")
	}
	if _, err := f.AddControlPoint(CPConfig{ID: 1, Device: 2, DeviceAddr: "127.0.0.1:1"}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := f.AddControlPoint(CPConfig{ID: 1, Device: 2, DeviceAddr: "nope:xx", Policy: mustNaive(t)}); err == nil {
		t.Error("bad device address accepted")
	}
	if _, err := f.AddDevice(0, nil); err == nil {
		t.Error("invalid device accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close errored: %v", err)
	}
	if _, err := f.AddControlPoint(CPConfig{ID: 1, Device: 2, DeviceAddr: "127.0.0.1:1", Policy: mustNaive(t)}); err == nil {
		t.Error("Add after Close accepted")
	}
}

func mustNaive(t *testing.T) core.DelayPolicy {
	t.Helper()
	p, err := naive.NewPolicy(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFleetIntraFleetLoopback hosts devices and CPs in the same fleet:
// probes leave one shard socket and come back in through another (or
// the same), exercising the full demux path.
func TestFleetIntraFleetLoopback(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	addr := dev.Addr().String()
	logs := make([]*countingListener, 8)
	cps := make([]*ControlPoint, len(logs))
	for i := range cps {
		logs[i] = &countingListener{}
		cps[i] = addDCPPCP(t, f, ident.NodeID(100+i), 1, addr, logs[i])
	}
	waitFor(t, 5*time.Second, "all CPs to complete 5 cycles", func() bool {
		for _, cp := range cps {
			if cp.Stats().CyclesOK < 5 {
				return false
			}
		}
		return true
	})
	for i, l := range logs {
		alive, lost, _ := l.snapshot()
		if alive < 5 || lost != 0 {
			t.Fatalf("cp%d events: alive=%d lost=%d", i, alive, lost)
		}
	}
	if got := dev.Peers(); got != len(cps) {
		t.Fatalf("device heard from %d peers, want %d", got, len(cps))
	}
	snap := f.Snapshot()
	if snap.Total.ControlPoints != len(cps) || snap.Total.LiveControlPoints != len(cps) {
		t.Fatalf("snapshot gauges = %+v", snap.Total)
	}
	if snap.Total.Devices != 1 {
		t.Fatalf("snapshot devices = %d", snap.Total.Devices)
	}
	if snap.Total.DecodeErrors != 0 || snap.Total.DemuxCollisions != 0 {
		t.Fatalf("snapshot errors = %+v", snap.Total)
	}
	// The aggregate must equal the per-shard sums.
	var sum Counters
	for _, c := range snap.Shards {
		sum.add(c)
	}
	if sum != snap.Total {
		t.Fatalf("Total %+v != per-shard sum %+v", snap.Total, sum)
	}
}

func TestFleetByeAndRestart(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	lst := &countingListener{}
	cp := addDCPPCP(t, f, 50, 1, dev.Addr().String(), lst)
	waitFor(t, 3*time.Second, "first cycles", func() bool { return cp.Stats().CyclesOK >= 2 })
	dev.Bye()
	waitFor(t, 2*time.Second, "bye", func() bool { _, _, byes := lst.snapshot(); return byes == 1 })
	if !cp.Stopped() {
		t.Fatal("CP still running after bye")
	}
	if snap := f.Snapshot(); snap.Total.LiveControlPoints != 0 {
		t.Fatalf("live gauge after bye = %d", snap.Total.LiveControlPoints)
	}
	if err := cp.Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "cycles after restart", func() bool { return cp.Stats().CyclesOK >= 3 })
	if snap := f.Snapshot(); snap.Total.LiveControlPoints != 1 {
		t.Fatalf("live gauge after restart = %d", snap.Total.LiveControlPoints)
	}
}

func TestFleetCrashDetection(t *testing.T) {
	// Device hosted in a second fleet; closing it is a silent crash.
	devFleet := startedFleet(t, Config{Shards: 1})
	dev := addDCPPDevice(t, devFleet, 1, fastDCPP())
	f := startedFleet(t, Config{Shards: 2})
	lst := &countingListener{}
	cp := addDCPPCP(t, f, 60, 1, dev.Addr().String(), lst)
	waitFor(t, 3*time.Second, "first cycles", func() bool { return cp.Stats().CyclesOK >= 2 })
	if err := devFleet.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "loss detection", func() bool { _, lost, _ := lst.snapshot(); return lost == 1 })
	if !cp.Stopped() {
		t.Fatal("CP still running after loss")
	}
	st := cp.Stats()
	if st.CyclesFailed != 1 || st.Retransmits < 3 {
		t.Fatalf("stats after crash = %+v", st)
	}
}

func TestFleetAnnounceRouting(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	var mu sync.Mutex
	got := map[ident.NodeID]int{}
	for i := 0; i < 4; i++ {
		id := ident.NodeID(200 + i)
		policy, err := dcpp.NewPolicy(dcpp.PolicyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddControlPoint(CPConfig{
			ID: id, Device: 1, DeviceAddr: dev.Addr().String(),
			Policy: policy, Retransmit: fastRetransmit(),
			OnAnnounce: func(m core.AnnounceMsg) {
				mu.Lock()
				got[id]++
				mu.Unlock()
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, "device to learn all peers", func() bool { return dev.Peers() == 4 })
	dev.Announce(30 * time.Second)
	waitFor(t, 2*time.Second, "announce fan-out", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 4
	})
}

func TestFleetRemoveAndDuplicate(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	cp := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	if _, err := f.AddControlPoint(CPConfig{
		ID: 70, Device: 1, DeviceAddr: dev.Addr().String(), Policy: mustNaive(t),
	}); err == nil {
		t.Fatal("duplicate CP id accepted")
	}
	waitFor(t, 3*time.Second, "a cycle", func() bool { return cp.Stats().CyclesOK >= 1 })
	cp.Remove()
	cp.Remove() // idempotent
	if err := cp.Restart(); err == nil {
		t.Fatal("Restart after Remove accepted")
	}
	snap := f.Snapshot()
	if snap.Total.ControlPoints != 0 || snap.Total.LiveControlPoints != 0 {
		t.Fatalf("gauges after remove = %+v", snap.Total)
	}
	if snap.Total.PendingProbes != 0 {
		t.Fatalf("pending demux entries after remove = %d", snap.Total.PendingProbes)
	}
	// The id is free again.
	cp2 := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	waitFor(t, 3*time.Second, "re-added CP cycle", func() bool { return cp2.Stats().CyclesOK >= 1 })
}

func TestFleetDeviceCap(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	addDCPPDevice(t, f, 1, fastDCPP())
	addDCPPDevice(t, f, 2, fastDCPP())
	_, err := f.AddDevice(3, func(env core.Env) (core.Device, error) {
		return dcpp.NewDevice(3, env, fastDCPP())
	})
	if err == nil {
		t.Fatal("third device on a 2-shard fleet accepted")
	}
}

func TestFleetSAPPAndNaive(t *testing.T) {
	f := startedFleet(t, Config{Shards: 2})
	sappDev, err := f.AddDevice(1, func(env core.Env) (core.Device, error) {
		return sapp.NewDevice(1, env, sapp.DefaultDeviceConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	naiveDev, err := f.AddDevice(2, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(2, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	cpCfg := sapp.DefaultCPConfig()
	cpCfg.MinDelay = 20 * time.Millisecond
	cpCfg.MaxDelay = 200 * time.Millisecond
	sappPolicy, err := sapp.NewPolicy(cpCfg)
	if err != nil {
		t.Fatal(err)
	}
	sappCP, err := f.AddControlPoint(CPConfig{
		ID: 10, Device: 1, DeviceAddr: sappDev.Addr().String(),
		Policy: sappPolicy, Retransmit: fastRetransmit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	naivePolicy, err := naive.NewPolicy(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	naiveCP, err := f.AddControlPoint(CPConfig{
		ID: 11, Device: 2, DeviceAddr: naiveDev.Addr().String(),
		Policy: naivePolicy, Retransmit: fastRetransmit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "SAPP and naive cycles", func() bool {
		return sappCP.Stats().CyclesOK >= 3 && naiveCP.Stats().CyclesOK >= 3
	})
}

// TestFleetScaleLoopback1k is the scale integration test: 1000 control
// points against loopback devices on a handful of event-loop
// goroutines. Every CP must reach steady state, and the aggregate
// steady probe rate must stay within DCPP's L_nom budget — the paper's
// overload-protection claim, observed on real sockets at fleet scale.
func TestFleetScaleLoopback1k(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const cpCount = 1000
	baseline := runtime.NumGoroutine()
	res, err := LoopbackScale(ScaleOptions{
		CPs:     cpCount,
		Shards:  4,
		Devices: 4,
		Window:  2 * time.Second,
		// Paper-default DCPP: L_nom = 10/s per device, f_max = 2/s.
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scale result: %+v", res)
	if res.SteadyCPs != cpCount {
		t.Errorf("steady CPs = %d, want %d", res.SteadyCPs, cpCount)
	}
	// No per-node goroutines: 4 CP shards + 4 device shards + the
	// harness and runtime slack, nowhere near 1000.
	if got := res.Goroutines - baseline; got > 4+4+8 {
		t.Errorf("goroutines grew by %d for %d CPs — per-node goroutines leaked?", got, cpCount)
	}
	// Aggregate probes/s within the DCPP budget (L_nom per device),
	// with margin for retransmissions and window-edge jitter.
	if res.SteadyProbesPerSec > res.BudgetProbesPerSec*1.25+5 {
		t.Errorf("steady probe rate %.1f/s exceeds DCPP budget %.1f/s",
			res.SteadyProbesPerSec, res.BudgetProbesPerSec)
	}
	if res.SteadyProbesPerSec <= 0 {
		t.Error("no steady probe traffic measured")
	}
	// Every sleeping CP holds exactly one wheel timer (plus one
	// maintenance sweeper per shard).
	if res.WheelDepth < cpCount || res.WheelDepth > cpCount+res.Shards {
		t.Errorf("wheel depth = %d, want %d (one alarm per CP)", res.WheelDepth, cpCount)
	}
	if res.DemuxCollisions != 0 {
		t.Errorf("demux collisions = %d over %d staggered cycle spaces", res.DemuxCollisions, cpCount)
	}
	if res.DecodeErrors != 0 {
		t.Errorf("decode errors = %d", res.DecodeErrors)
	}
}

// TestFleetSnapshotAggregation pins Total == Σ Shards for cumulative
// and gauge fields under live traffic.
func TestFleetSnapshotAggregation(t *testing.T) {
	f := startedFleet(t, Config{Shards: 4})
	dev := addDCPPDevice(t, f, 1, fastDCPP())
	for i := 0; i < 32; i++ {
		addDCPPCP(t, f, ident.NodeID(500+i), 1, dev.Addr().String(), nil)
	}
	time.Sleep(300 * time.Millisecond)
	snap := f.Snapshot()
	var sum Counters
	for _, c := range snap.Shards {
		sum.add(c)
	}
	if sum != snap.Total {
		t.Fatalf("Total %+v != per-shard sum %+v", snap.Total, sum)
	}
	if snap.Total.ControlPoints != 32 {
		t.Fatalf("ControlPoints = %d", snap.Total.ControlPoints)
	}
	if snap.Total.PacketsIn == 0 || snap.Total.PacketsOut == 0 {
		t.Fatalf("no traffic in snapshot: %+v", snap.Total)
	}
}

func BenchmarkFleetLoopback(b *testing.B) {
	// One op = boot a 2k-CP loopback fleet, reach steady state, measure
	// a 1 s window. Custom metrics carry the interesting numbers.
	for i := 0; i < b.N; i++ {
		res, err := LoopbackScale(ScaleOptions{
			CPs:     2000,
			Devices: 4,
			Window:  time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SteadyProbesPerSec, "probes/s")
		b.ReportMetric(res.JoinSeconds, "join-s")
		b.ReportMetric(float64(res.CPs), "cps")
	}
}
