package fleet

import "time"

// The fleet replaces per-node time.Timers with one hierarchical hashed
// timer wheel per shard (Varghese & Lauck's scheme, the same structure
// the Linux kernel and large userspace event loops use). Arming,
// re-arming and cancelling an alarm are O(1) pointer splices; advancing
// the wheel costs O(1) amortised per tick plus O(1) per expired timer.
// With tens of thousands of control points per shard — each owning
// exactly one alarm by the engine contract — this is the difference
// between a heap of timer goroutines and a flat array walk.
//
// Geometry: 4 levels of 256 slots at a 1 ms base tick cover ~49.7 days
// before the top level wraps; protocol timers (probe timeouts of tens
// of milliseconds, inter-cycle waits of 0.1 s .. minutes) live in the
// bottom two levels. Timers far in the future cascade down a level each
// time the cursor reaches their slot, ending at level 0, whose slots
// are one tick wide — so firing is accurate to the tick.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4

	defaultWheelTick = time.Millisecond
)

// wheelTimer is one schedulable alarm slot, embedded in its owner so
// arming allocates nothing. The generation counter makes stale firings
// inert: Schedule and Cancel bump it, and a collected-but-superseded
// entry no longer matches.
type wheelTimer struct {
	next, prev *wheelTimer
	deadline   int64 // absolute tick
	gen        uint64
	fire       func()
}

func (t *wheelTimer) linked() bool { return t.prev != nil }

// dueEntry is a timer unlinked by Advance, pinned to the generation it
// had when it came due.
type dueEntry struct {
	t   *wheelTimer
	gen uint64
}

// timerWheel is a hierarchical hashed timing wheel. It is not safe for
// concurrent use; the owning shard serialises access under its mutex.
type timerWheel struct {
	tick    time.Duration
	nowTick int64
	count   int
	fired   uint64
	slots   [wheelLevels][wheelSlots]wheelTimer // circular-list sentinels
	due     []dueEntry
}

func newTimerWheel(tick time.Duration) *timerWheel {
	if tick <= 0 {
		tick = defaultWheelTick
	}
	w := &timerWheel{tick: tick}
	for l := range w.slots {
		for i := range w.slots[l] {
			s := &w.slots[l][i]
			s.next, s.prev = s, s
		}
	}
	return w
}

// Len returns the number of pending timers (the wheel depth).
func (w *timerWheel) Len() int { return w.count }

// Fired returns the cumulative number of timers handed to callers.
func (w *timerWheel) Fired() uint64 { return w.fired }

// Schedule (re)arms t to fire at offset `at` from the wheel epoch,
// replacing any pending deadline — Env.SetAlarm semantics. The deadline
// is rounded UP to the tick grid: a timer may fire late by less than
// one tick but never early. Offsets in the past fire on the next tick.
func (w *timerWheel) Schedule(t *wheelTimer, at time.Duration) {
	if t.linked() {
		w.unlink(t)
		w.count--
	}
	t.gen++
	dl := int64((at + w.tick - 1) / w.tick)
	if dl <= w.nowTick {
		dl = w.nowTick + 1
	}
	t.deadline = dl
	w.insert(t)
	w.count++
}

// Cancel disarms t; it is a no-op for an unarmed timer, and it also
// invalidates a timer already collected by Advance but not yet fired.
func (w *timerWheel) Cancel(t *wheelTimer) {
	t.gen++
	if t.linked() {
		w.unlink(t)
		w.count--
	}
}

// insert places t into the level whose slot width matches its distance.
func (w *timerWheel) insert(t *wheelTimer) {
	delta := t.deadline - w.nowTick
	var level uint
	switch {
	case delta < wheelSlots:
		level = 0
	case delta < wheelSlots*wheelSlots:
		level = 1
	case delta < wheelSlots*wheelSlots*wheelSlots:
		level = 2
	default:
		level = 3
	}
	s := &w.slots[level][(t.deadline>>(wheelBits*level))&wheelMask]
	t.prev = s.prev
	t.next = s
	s.prev.next = t
	s.prev = t
}

func (w *timerWheel) unlink(t *wheelTimer) {
	t.prev.next = t.next
	t.next.prev = t.prev
	t.next, t.prev = nil, nil
}

// Advance moves the wheel to offset now, collecting every timer that
// came due. The returned slice (reused across calls) pins each timer's
// generation; the caller fires entries whose generation still matches,
// which keeps firing safe against Cancel/Schedule performed by earlier
// callbacks in the same batch.
func (w *timerWheel) Advance(now time.Duration) []dueEntry {
	w.due = w.due[:0]
	target := int64(now / w.tick)
	for w.nowTick < target {
		w.nowTick++
		if w.nowTick&wheelMask == 0 {
			w.cascade(1)
			if (w.nowTick>>wheelBits)&wheelMask == 0 {
				w.cascade(2)
				if (w.nowTick>>(2*wheelBits))&wheelMask == 0 {
					w.cascade(3)
				}
			}
		}
		w.expire(&w.slots[0][w.nowTick&wheelMask])
	}
	return w.due
}

// cascade re-sorts the current slot of the given level into lower
// levels as the cursor enters it.
func (w *timerWheel) cascade(level uint) {
	s := &w.slots[level][(w.nowTick>>(wheelBits*level))&wheelMask]
	t := s.next
	s.next, s.prev = s, s
	for t != s {
		next := t.next
		t.next, t.prev = nil, nil
		w.insert(t)
		t = next
	}
}

// expire collects a due level-0 slot.
func (w *timerWheel) expire(s *wheelTimer) {
	t := s.next
	if t == s {
		return
	}
	s.next, s.prev = s, s
	for t != s {
		next := t.next
		t.next, t.prev = nil, nil
		w.count--
		w.fired++
		w.due = append(w.due, dueEntry{t: t, gen: t.gen})
		t = next
	}
}

// NextDeadline returns a lower bound on the offset of the earliest
// pending timer: the exact deadline when it sits in level 0, otherwise
// the next cascade boundary (advancing to the bound and asking again
// converges). The second return is false when no timer is pending.
func (w *timerWheel) NextDeadline() (time.Duration, bool) {
	if w.count == 0 {
		return 0, false
	}
	for i := int64(1); i < wheelSlots; i++ {
		tk := w.nowTick + i
		if s := &w.slots[0][tk&wheelMask]; s.next != s {
			return time.Duration(tk) * w.tick, true
		}
	}
	boundary := (w.nowTick | wheelMask) + 1
	return time.Duration(boundary) * w.tick, true
}
