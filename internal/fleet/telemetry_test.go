package fleet

import (
	"strings"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/ident"
	"presence/internal/trace"
)

// TestHotPathTelemetry drives the deterministic hot-path harness with
// default config (telemetry and flight recorder ON — the production
// shape the 0 allocs/op gate also runs) and checks the histograms and
// recorder actually saw the traffic.
func TestHotPathTelemetry(t *testing.T) {
	h, err := NewHotPathBench(HotPathOptions{CPs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.fleet.TelemetryEnabled() || !h.fleet.FlightRecorderEnabled() {
		t.Fatal("telemetry should default on")
	}
	const steps = 5
	for i := 0; i < steps; i++ {
		h.Step()
	}
	hist := h.fleet.Histograms()
	// Every step completes one reply per CP (the build burst adds one
	// more already-delivered cycle's worth before the first Step).
	if hist.ProbeRTT.Count < steps*8 {
		t.Errorf("rtt count = %d, want ≥ %d", hist.ProbeRTT.Count, steps*8)
	}
	if hist.BatchFill.Count == 0 || hist.BatchFill.Sum == 0 {
		t.Errorf("batch fill not recorded: %+v", hist.BatchFill)
	}
	if hist.ProbeRTT.Quantile(0.99) > uint64(time.Minute/time.Microsecond) {
		t.Errorf("in-memory rtt p99 = %d µs — pp.at plumbing is broken", hist.ProbeRTT.Quantile(0.99))
	}
	var sent, matched int
	for _, events := range h.fleet.FlightSnapshot() {
		for _, e := range events {
			switch e.Kind {
			case trace.EvProbeSent:
				sent++
			case trace.EvReplyMatched:
				matched++
			}
		}
	}
	if sent == 0 || matched == 0 {
		t.Errorf("flight recorder saw sent=%d matched=%d, want both > 0", sent, matched)
	}
	var sb strings.Builder
	if err := h.fleet.WriteFlight(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "probe-sent") || !strings.Contains(sb.String(), "reply-matched") {
		t.Errorf("flight dump missing lifecycle events:\n%.300s", sb.String())
	}
}

func TestTelemetryDisabled(t *testing.T) {
	h, err := NewHotPathBench(HotPathOptions{CPs: 4, DisableTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.fleet.TelemetryEnabled() || h.fleet.FlightRecorderEnabled() {
		t.Fatal("DisableTelemetry should turn both planes off")
	}
	h.Step()
	if hist := h.fleet.Histograms(); hist.ProbeRTT.Count != 0 || hist.BatchFill.Count != 0 {
		t.Errorf("disabled telemetry still recorded: %+v", hist)
	}
	for i, events := range h.fleet.FlightSnapshot() {
		if len(events) != 0 {
			t.Errorf("shard %d recorded %d events with recorder disabled", i, len(events))
		}
	}
}

// TestDetectionLatencyAndVerdictEvents runs a real (loopback UDP) fleet
// probing a device that is then silenced, and checks the lost verdict
// lands in the detection-latency histogram and the flight recorder.
func TestDetectionLatencyAndVerdictEvents(t *testing.T) {
	f := startedFleet(t, Config{Shards: 1})
	// The device lives in its own fleet so it can be silenced (fleet
	// closed) without touching the control point's shard loop.
	devFleet := startedFleet(t, Config{Shards: 1})
	dev, err := devFleet.AddDevice(77, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(77, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := naive.NewPolicy(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lst := &countingListener{}
	if _, err := f.AddControlPoint(CPConfig{
		ID: 501, Device: 77, DeviceAddrPort: dev.Addr(),
		Policy: policy, Listener: lst, Retransmit: fastRetransmit(),
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "a completed cycle", func() bool {
		a, _, _ := lst.snapshot()
		return a >= 2
	})
	// Silence the device: the next cycle times out through every
	// retransmit and the prober declares the device lost.
	devFleet.Close()
	waitFor(t, 5*time.Second, "lost verdict", func() bool {
		_, lost, _ := lst.snapshot()
		return lost == 1
	})
	hist := f.Histograms()
	if hist.DetectionLatency.Count != 1 {
		t.Fatalf("detection latency count = %d, want 1", hist.DetectionLatency.Count)
	}
	// fastRetransmit: 60ms first timeout + 3 × 40ms retries ≈ 180ms.
	if got := hist.DetectionLatency.Mean(); got < 100_000 || got > 5_000_000 {
		t.Errorf("detection latency mean = %.0f µs, expected ~180ms", got)
	}
	var lost, expired int
	for _, events := range f.FlightSnapshot() {
		for _, e := range events {
			switch e.Kind {
			case trace.EvVerdictLost:
				lost++
				if e.CP != 501 || e.Device != 77 {
					t.Errorf("verdict event ids: %+v", e)
				}
			case trace.EvAttemptExpired:
				expired++
			}
		}
	}
	if lost != 1 || expired < 3 {
		t.Errorf("flight recorder: lost=%d expired=%d, want 1/≥3", lost, expired)
	}
}

// TestHandoffTelemetry checks the routed layout feeds the handoff
// histogram and EvHandoff events (which Normalize must then drop).
func TestHandoffTelemetry(t *testing.T) {
	if !reusePortSupported {
		t.Skip("no SO_REUSEPORT on this platform")
	}
	f := startedFleet(t, Config{Shards: 2, ReusePort: true})
	dev, err := f.AddDevice(99, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(99, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := naive.NewPolicy(20 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lst := &countingListener{}
	for i := 0; i < 8; i++ {
		if _, err := f.AddControlPoint(CPConfig{
			ID: ident.NodeID(600 + i), Device: 99, DeviceAddrPort: dev.Addr(),
			Policy: policy, Listener: lst, Retransmit: fastRetransmit(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "cross-shard handoffs", func() bool {
		return f.Snapshot().Total.HandoffsIn > 0
	})
	waitFor(t, 10*time.Second, "handoff latency samples", func() bool {
		return f.Histograms().HandoffLatency.Count > 0
	})
	var handoffs int
	for _, events := range f.FlightSnapshot() {
		for _, e := range events {
			if e.Kind == trace.EvHandoff {
				handoffs++
			}
		}
	}
	if handoffs == 0 {
		t.Error("no EvHandoff events recorded on a routed fleet")
	}
	if len(trace.Normalize(f.FlightSnapshot())) == 0 {
		t.Error("normalized dump empty despite live CPs")
	}
}
