package fleet

// The shard hot-path harness drives one shard's packet path — batch
// read, decode, demux, engine call, encode, coalesced batch write —
// deterministically on the caller's goroutine, with no event-loop
// goroutine, no wall-clock sleeps and no kernel sockets. It exists to
// measure and pin the per-packet cost of exactly the code the event
// loop runs: BenchmarkShardHotPath reports ns and allocs per op,
// TestShardHotPathZeroAlloc asserts the steady state allocates
// nothing, and cmd/probebench snapshots both so -compare gates any
// regression.

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/ident"
	"presence/internal/wire"
)

// hotPathDeviceID is the loopback device the harness CPs probe.
const hotPathDeviceID ident.NodeID = 1

// HotPathOptions parameterises the harness.
type HotPathOptions struct {
	// CPs is the number of hosted control points. Default 64.
	CPs int
	// Batch is the shard's transport batch (Config.Batch). Default 64.
	Batch int
	// ForceSingleDatagram measures the loop-over-single-datagram
	// fallback instead of the batch path.
	ForceSingleDatagram bool
	// DisableTelemetry turns histograms and the flight recorder off —
	// the baseline probebench's observability section measures the
	// default (telemetry-on) path against.
	DisableTelemetry bool
	// Auth enables frame authentication (wire v2) with a fixed harness
	// master key: every probe and reply is HMAC-signed and verified.
	// probebench's auth section measures its ns/packet cost, and the
	// zero-alloc gate pins that signing and verifying stay off the heap.
	Auth bool
}

// hotPathAuthMaster is the fixed master secret the auth-enabled harness
// derives its schedules from.
var hotPathAuthMaster = []byte("hot-path-bench-master-secret")

// HotPathBench is one assembled harness: a single shard hosting a
// naive device and CPs probing it through an in-memory ring transport.
// Step is the unit of work; Close tears the fleet down.
type HotPathBench struct {
	fleet *Fleet
	s     *shard
	conn  *ringConn
	cps   []*ControlPoint
}

// NewHotPathBench builds the harness and performs the initial probe
// burst (every CP's first cycle starts immediately on Add).
func NewHotPathBench(opts HotPathOptions) (*HotPathBench, error) {
	if opts.CPs <= 0 {
		opts.CPs = 64
	}
	if opts.Batch <= 0 {
		opts.Batch = defaultBatch
	}
	// Ring capacity: one full CP burst of probes or replies, plus the
	// retransmissions a slow benchmark machine might sneak in.
	conn := newRingConn(4 * opts.CPs)
	cfg := Config{
		Shards:              1,
		Batch:               opts.Batch,
		ForceSingleDatagram: opts.ForceSingleDatagram,
		Transport:           TransportFunc(func(int) (PacketConn, error) { return conn, nil }),
	}
	if opts.DisableTelemetry {
		cfg.DisableTelemetry = true
		cfg.FlightRecorder = -1
	}
	if opts.Auth {
		cfg.Auth = AuthConfig{Key: hotPathAuthMaster}
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Mark the fleet started without launching the event-loop
	// goroutine: the harness IS the loop, so every engine call below
	// runs deterministically on the caller's goroutine.
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	h := &HotPathBench{fleet: f, s: f.shards[0], conn: conn}
	dev, err := f.AddDevice(hotPathDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(hotPathDeviceID, env)
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	for i := 0; i < opts.CPs; i++ {
		// A long fixed period keeps the wheel quiet between Steps; the
		// harness fires the inter-cycle alarms itself.
		policy, err := naive.NewPolicy(time.Hour)
		if err != nil {
			f.Close()
			return nil, err
		}
		cp, err := f.AddControlPoint(CPConfig{
			ID:             ident.NodeID(1000 + i),
			Device:         hotPathDeviceID,
			DeviceAddrPort: dev.Addr(),
			Policy:         policy,
			// Generous timeouts: the harness drives cycles explicitly,
			// so wall-clock hiccups must not expire a cycle mid-Step.
			Retransmit: core.RetransmitConfig{
				FirstTimeout: time.Hour,
				RetryTimeout: time.Hour,
			},
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		h.cps = append(h.cps, cp)
	}
	return h, nil
}

// CPs returns the number of hosted control points.
func (h *HotPathBench) CPs() int { return len(h.cps) }

// PacketsPerStep returns how many packet handlings one Step performs:
// per CP, one probe and one reply each traverse the receive path and
// the send path.
func (h *HotPathBench) PacketsPerStep() int { return 4 * len(h.cps) }

// Step runs one full probe cycle for every hosted CP through the
// shard's real dispatch and flush code: the queued probe burst is
// delivered to the device (whose replies coalesce into batched
// writes), the reply burst is delivered to the probers, and every
// prober's inter-cycle alarm fires, emitting the next probe burst. In
// steady state a Step allocates nothing.
func (h *HotPathBench) Step() {
	s := h.s
	s.mu.Lock()
	h.deliverLocked() // probes → device → reply burst
	h.deliverLocked() // replies → probers (cycle completes, alarm armed)
	s.inBatch = true
	for _, cp := range h.cps {
		s.counters.TimersFired++
		cp.n.timer.fire() // prober.OnAlarm → next cycle's probe
	}
	s.inBatch = false
	s.flushSends()
	s.mu.Unlock()
}

// deliverLocked drains the ring through the shard's receive path —
// s.bconn, so a ForceSingleDatagram harness pays the fallback's
// one-packet-per-call cost — exactly as the event loop would after a
// readable burst.
func (h *HotPathBench) deliverLocked() {
	s := h.s
	for h.conn.queued() > 0 {
		for i := range s.recvRing {
			s.recvRing[i].Buf = s.recvBufs[i]
		}
		n, err := s.bconn.ReadBatch(s.recvRing)
		if n == 0 || err != nil {
			return
		}
		s.counters.SyscallsIn++
		s.dispatchBatch(s.recvRing[:n])
	}
}

// Counters returns the shard's counters, for sanity checks.
func (h *HotPathBench) Counters() Counters {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.counters
}

// Close tears the harness down.
func (h *HotPathBench) Close() error { return h.fleet.Close() }

// ringConn is a zero-allocation loopback BatchPacketConn: writes queue
// frames in preallocated slots and reads drain them, all attributed to
// the conn's own address. It is single-goroutine by construction (the
// harness serialises through the shard mutex) and never blocks — an
// empty read reports a timeout, like a socket with a past deadline.
type ringConn struct {
	addr   netip.AddrPort
	bufs   [][]byte
	n      int
	closed bool
}

var _ BatchPacketConn = (*ringConn)(nil)

func newRingConn(capacity int) *ringConn {
	c := &ringConn{
		addr: netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 19000),
		bufs: make([][]byte, capacity),
	}
	for i := range c.bufs {
		c.bufs[i] = make([]byte, 0, wire.MaxFrameSize)
	}
	return c
}

func (c *ringConn) queued() int { return c.n }

var errRingFull = errors.New("fleet: hot-path ring full")

func (c *ringConn) WriteBatch(dgs []Datagram) (int, error) {
	for i := range dgs {
		if c.n == len(c.bufs) {
			return i, errRingFull
		}
		c.bufs[c.n] = append(c.bufs[c.n][:0], dgs[i].Buf...)
		c.n++
	}
	return len(dgs), nil
}

func (c *ringConn) ReadBatch(dgs []Datagram) (int, error) {
	if c.n == 0 {
		return 0, ringTimeoutError{}
	}
	n := min(c.n, len(dgs))
	for i := 0; i < n; i++ {
		k := copy(dgs[i].Buf, c.bufs[i])
		dgs[i].Buf = dgs[i].Buf[:k]
		dgs[i].Addr = c.addr
	}
	// Rotate the drained slots to the tail so their capacity is reused.
	rest := c.n - n
	for i := 0; i < rest; i++ {
		c.bufs[i], c.bufs[n+i] = c.bufs[n+i], c.bufs[i]
	}
	c.n = rest
	return n, nil
}

func (c *ringConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	if c.n == 0 {
		return 0, netip.AddrPort{}, ringTimeoutError{}
	}
	k := copy(b, c.bufs[0])
	first := c.bufs[0]
	copy(c.bufs, c.bufs[1:c.n])
	c.bufs[c.n-1] = first
	c.n--
	return k, c.addr, nil
}

func (c *ringConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	if c.n == len(c.bufs) {
		return 0, errRingFull
	}
	c.bufs[c.n] = append(c.bufs[c.n][:0], b...)
	c.n++
	return len(b), nil
}

func (c *ringConn) SetReadDeadline(time.Time) error { return nil }
func (c *ringConn) LocalAddrPort() netip.AddrPort   { return c.addr }
func (c *ringConn) Close() error                    { c.closed = true; return nil }

// ringTimeoutError satisfies net.Error with Timeout() true, like a
// read deadline expiring on an empty socket.
type ringTimeoutError struct{}

func (ringTimeoutError) Error() string   { return "fleet: hot-path ring empty" }
func (ringTimeoutError) Timeout() bool   { return true }
func (ringTimeoutError) Temporary() bool { return true }

// HotPathStats is what MeasureShardHotPath (cmd/probebench) records in
// the benchmark snapshot.
type HotPathStats struct {
	CPs           int     `json:"control_points"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	PacketsPerOp  int     `json:"packets_per_op"`
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// String renders the stats one line for reports.
func (s HotPathStats) String() string {
	return fmt.Sprintf("%d CPs: %d ns/op, %d allocs/op, %d packets/op, %.0f packets/s",
		s.CPs, s.NsPerOp, s.AllocsPerOp, s.PacketsPerOp, s.PacketsPerSec)
}
