package fleet

// Scale gate for the mutation plane: the ISSUE's acceptance bar is
// add-then-remove of 50k control points on a live fleet, with every
// gauge back at its floor afterwards. Adds and removes run from 16
// goroutines at once, so the directory, the per-shard command inboxes
// and the wake path all see real contention. (The hot-path allocation
// bar is pinned separately by TestShardHotPathZeroAlloc — this test
// pins that bulk administration terminates and leaks nothing.)

import (
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/ident"
)

func TestAdminScale50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k churn skipped in -short")
	}
	if raceEnabled {
		t.Skip("50k churn skipped under -race (runs in the plain CI leg)")
	}
	const (
		nCPs    = 50_000
		workers = 16
	)
	f := startedFleet(t, Config{Shards: 4})
	dev, err := f.AddDevice(1, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(1, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nCPs; i += workers {
				policy, err := naive.NewPolicy(time.Hour) // one probe, then park
				if err != nil {
					errs <- err
					return
				}
				if _, err := f.AddControlPoint(CPConfig{
					ID: ident.NodeID(1000 + i), Device: 1, DeviceAddrPort: dev.Addr(),
					Policy: policy,
					// A dropped reply in the 50k loopback burst must not
					// schedule mid-test retransmit traffic.
					Retransmit: core.RetransmitConfig{FirstTimeout: time.Hour, RetryTimeout: time.Hour},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	added := time.Since(start)
	snap := f.Snapshot().Total
	if snap.ControlPoints != nCPs || snap.LiveControlPoints != nCPs {
		t.Fatalf("after bulk add: %d hosted, %d live, want %d", snap.ControlPoints, snap.LiveControlPoints, nCPs)
	}
	if snap.ProbesOut < nCPs/2 {
		t.Fatalf("only %d probes left for %d CPs — probers not running", snap.ProbesOut, nCPs)
	}

	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nCPs; i += workers {
				if err := f.RemoveControlPoint(ident.NodeID(1000 + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	removed := time.Since(start)
	t.Logf("50k CPs: add %v, remove %v", added.Round(time.Millisecond), removed.Round(time.Millisecond))

	waitFor(t, 10*time.Second, "gauges to drain", func() bool {
		s := f.Snapshot().Total
		return s.ControlPoints == 0 && s.LiveControlPoints == 0 &&
			s.PendingProbes == 0 && s.WheelDepth == f.Shards()
	})
	// The fleet is still healthy: a fresh CP probes and completes.
	cp := addDCPPCP(t, f, 70, 1, dev.Addr().String(), nil)
	waitFor(t, 5*time.Second, "post-churn cycle", func() bool { return cp.Stats().CyclesOK >= 1 })
}
