package fleet

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/ident"
)

// ScaleOptions parameterises the loopback scale harness: one fleet
// hosting CPs (the system under test, ≤ GOMAXPROCS shard goroutines,
// no per-node goroutines or timers) probing DCPP devices hosted by a
// second, devices-only fleet standing in for the monitored network.
type ScaleOptions struct {
	// CPs is the number of hosted control points. Default 10000.
	CPs int
	// Shards is the CP fleet's shard count. Default GOMAXPROCS.
	Shards int
	// Devices is the number of loopback DCPP devices. Default 8.
	Devices int
	// Window is the steady-state measurement window. Default 5 s.
	Window time.Duration
	// JoinTimeout bounds the wait for every CP's first completed cycle.
	// Default 30 s.
	JoinTimeout time.Duration
	// JoinRampUp spreads the Adds over this long, so the first probe of
	// every CP does not land in one synchronized burst that overflows
	// the (rmem_max-clamped) socket buffers and then re-synchronizes as
	// a retransmit storm. Default 200 µs per CP (2 s at 10k). Negative
	// disables the ramp.
	JoinRampUp time.Duration
	// DeviceConfig parameterises the DCPP devices. Zero = paper
	// defaults (L_nom = 10 probes/s per device).
	DeviceConfig dcpp.DeviceConfig
	// Retransmit parameterises the CP probe cycles. Zero = paper
	// defaults (or, in high-rate mode, generous timeouts that survive
	// deliberate overload — see ProbeHz).
	Retransmit core.RetransmitConfig
	// ProbeHz switches the harness to high-rate mode: every CP runs the
	// naive protocol at this fixed per-CP probe budget (probes/s)
	// against naive devices, instead of DCPP under its aggregate L_nom
	// ceiling. DCPP proves the protocol stays frugal no matter the
	// population; high-rate mode deliberately removes that frugality so
	// the transport, not the protocol, is the bottleneck — the
	// configuration the batched syscall path is measured in. Zero keeps
	// DCPP.
	ProbeHz float64
	// ForceSingleDatagram runs both fleets on the one-packet-per-
	// syscall fallback path: the baseline the batching win is measured
	// against.
	ForceSingleDatagram bool
	// Batch is the per-shard transport batch (Config.Batch). Zero =
	// the fleet default.
	Batch int
	// Transport, when non-nil, carries both fleets instead of kernel
	// UDP loopback: every shard of the device fleet and then the CP
	// fleet calls Listen on it in turn. probebench uses an
	// internal/memnet network here to measure the event loop's own
	// per-packet overhead with the kernel's per-datagram loopback cost
	// out of the picture.
	Transport Transport
	// ReusePort runs the CP fleet on the SO_REUSEPORT layout
	// (Config.ReusePort): shard sockets share one port, the kernel
	// demultiplexes by flow hash, and strays ride the handoff path. On
	// platforms without the option the fleet falls back to distinct
	// ports with routing still on, so the measured path is identical
	// minus the strays.
	ReusePort bool
	// GoMaxProcs pins runtime.GOMAXPROCS for the duration of the run
	// (restored afterwards). Zero leaves the ambient value. The scaling
	// study sweeps this against Shards: shard loops beyond GOMAXPROCS
	// time-share cores, so packets/s should plateau at min(shards,
	// procs) on hardware with that many cores.
	GoMaxProcs int
}

func (o *ScaleOptions) applyDefaults() {
	if o.CPs <= 0 {
		o.CPs = 10_000
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Devices <= 0 {
		o.Devices = 8
	}
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.JoinTimeout <= 0 {
		// The ramp (the caller's, if they stretched it) takes this long
		// by itself; leave the same again (at least 30 s) for every CP
		// to finish its first cycle.
		ramp := DefaultJoinRamp(o.CPs)
		if o.JoinRampUp > ramp {
			ramp = o.JoinRampUp
		}
		o.JoinTimeout = 30*time.Second + 2*ramp
	}
	if o.DeviceConfig == (dcpp.DeviceConfig{}) {
		o.DeviceConfig = dcpp.DefaultDeviceConfig()
	}
	if o.Retransmit == (core.RetransmitConfig{}) {
		switch {
		case o.ProbeHz > 0:
			// High-rate mode deliberately overloads the transport;
			// generous timeouts keep queueing delay from reading as
			// device death.
			o.Retransmit = core.RetransmitConfig{
				FirstTimeout:   2 * time.Second,
				RetryTimeout:   time.Second,
				MaxRetransmits: 3,
			}
		case o.CPs >= 50_000:
			// A ≥50k join storm on one box queues far past the paper's
			// 85 ms cycle budget; a 500/250 ms cycle keeps transient
			// queueing from being misread as absence. Steady-state
			// probe load is DCPP's and does not depend on these
			// timeouts.
			o.Retransmit = core.RetransmitConfig{
				FirstTimeout:   500 * time.Millisecond,
				RetryTimeout:   250 * time.Millisecond,
				MaxRetransmits: 3,
			}
		}
	}
}

// DefaultJoinRamp is the default join spread: 200 µs per CP (2 s at
// 10k), enough to keep first-probe bursts from overflowing
// rmem_max-clamped socket buffers.
func DefaultJoinRamp(cps int) time.Duration {
	return time.Duration(cps) * 200 * time.Microsecond
}

// JoinPacer spreads a mass join over a ramp, sleeping briefly every few
// adds so the joining CPs' first probes do not land in one synchronized
// burst (which overflows socket buffers and then re-synchronizes as a
// retransmit storm). A zero ramp means DefaultJoinRamp; negative
// disables pacing.
type JoinPacer struct {
	pause time.Duration
	n     int
}

// joinBatch is how many adds go between pacing sleeps.
const joinBatch = 64

// NewJoinPacer builds a pacer for joining cps control points over ramp.
func NewJoinPacer(cps int, ramp time.Duration) *JoinPacer {
	if ramp == 0 {
		ramp = DefaultJoinRamp(cps)
	}
	p := &JoinPacer{}
	if ramp > 0 && cps > 0 {
		p.pause = ramp * joinBatch / time.Duration(cps)
	}
	return p
}

// Tick is called after each add; it sleeps at batch boundaries.
func (p *JoinPacer) Tick() {
	p.n++
	if p.pause > 0 && p.n%joinBatch == 0 {
		time.Sleep(p.pause)
	}
}

// ScaleResult is what the harness measured.
type ScaleResult struct {
	CPs     int `json:"control_points"`
	Shards  int `json:"cp_shards"`
	Devices int `json:"devices"`
	// Protocol names the CP protocol: "dcpp" (budget mode) or
	// "naive@<Hz>" (high-rate mode).
	Protocol string `json:"protocol"`
	// ProbeHz is the per-CP probe budget of high-rate mode (0 = DCPP).
	ProbeHz float64 `json:"probe_hz,omitempty"`
	// SingleDatagram marks a run on the one-packet-per-syscall fallback.
	SingleDatagram bool `json:"single_datagram,omitempty"`
	// ReusePort marks a run configured for the shared-port layout;
	// ReusePortActive reports whether the kernel option was actually in
	// use (false on non-Linux fallback or a custom Transport).
	ReusePort       bool `json:"reuseport,omitempty"`
	ReusePortActive bool `json:"reuseport_active,omitempty"`
	// GoMaxProcs is runtime.GOMAXPROCS during the run.
	GoMaxProcs int `json:"gomaxprocs"`
	// Transport labels the run's transport for reports ("udp" kernel
	// loopback, "memnet" in-memory). Informational; set by the caller.
	Transport string `json:"transport,omitempty"`
	// Goroutines is the process count right after steady state: the CP
	// fleet's shard loops, the device fleet's, and the harness itself.
	Goroutines int `json:"goroutines"`
	// JoinSeconds is how long it took from the first Add until every CP
	// had completed at least one probe cycle.
	JoinSeconds float64 `json:"join_seconds"`
	// JoinRestarts counts CPs that lost the device during the join storm
	// (dropped probes exhausting a retransmit cycle) and were restarted
	// by the harness.
	JoinRestarts int `json:"join_restarts"`
	// SteadyCPs is the number of CPs alive after the window (all, unless
	// something went wrong).
	SteadyCPs int `json:"steady_cps"`
	// SteadyProbesPerSec is the aggregate CP probe rate over the window.
	SteadyProbesPerSec float64 `json:"steady_probes_per_sec"`
	// BudgetProbesPerSec is the protocol's aggregate ceiling:
	// Devices × L_nom. DCPP's whole point is that the steady rate stays
	// under this no matter how many CPs monitor each device.
	BudgetProbesPerSec float64 `json:"budget_probes_per_sec"`
	// SteadyPacketsPerSec is the CP fleet's aggregate transport rate
	// (packets in + out) over the window — the number the batched I/O
	// path is judged on.
	SteadyPacketsPerSec float64 `json:"steady_packets_per_sec"`
	WindowSeconds       float64 `json:"window_seconds"`
	WheelDepth          int     `json:"wheel_depth"`
	PendingProbes       int     `json:"pending_probes"`
	DemuxCollisions     uint64  `json:"demux_collisions"`
	DemuxDrops          uint64  `json:"demux_drops"`
	DecodeErrors        uint64  `json:"decode_errors"`
	SendErrors          uint64  `json:"send_errors"`
	PacketsIn           uint64  `json:"packets_in"`
	PacketsOut          uint64  `json:"packets_out"`
	// SyscallsIn/Out count the CP fleet's transport calls over the
	// whole run; BatchFillMeanIn/Out are packets per call over the
	// measurement window (1.0 on the single-datagram path; > 1 when
	// batching is doing work).
	SyscallsIn       uint64  `json:"syscalls_in"`
	SyscallsOut      uint64  `json:"syscalls_out"`
	BatchFillMeanIn  float64 `json:"batch_fill_mean_in"`
	BatchFillMeanOut float64 `json:"batch_fill_mean_out"`
	// SyscallsPerPacket is transport calls per packet moved over the
	// window, both directions combined (1/BatchFill when only one
	// direction flowed; the honest aggregate otherwise).
	SyscallsPerPacket float64 `json:"syscalls_per_packet"`
	// HandoffsIn/Out count cross-shard frame handoffs over the window
	// (nonzero only with ReusePort routing and actual strays).
	HandoffsIn  uint64 `json:"handoffs_in,omitempty"`
	HandoffsOut uint64 `json:"handoffs_out,omitempty"`
	// PerShardPackets is each CP shard's packets (in+out) over the
	// window, and ShardImbalance is max/mean over those — 1.0 is a
	// perfectly even spread, the number the kernel's flow-hash demux is
	// judged on.
	PerShardPackets []uint64 `json:"per_shard_packets,omitempty"`
	ShardImbalance  float64  `json:"shard_imbalance,omitempty"`
}

// LoopbackScale boots the two fleets, joins every CP, waits for all of
// them to reach steady state (≥ 1 completed cycle), measures the
// aggregate probe and packet rates over the window, and tears
// everything down.
func LoopbackScale(opts ScaleOptions) (ScaleResult, error) {
	opts.applyDefaults()
	if opts.GoMaxProcs > 0 {
		prev := runtime.GOMAXPROCS(opts.GoMaxProcs)
		defer runtime.GOMAXPROCS(prev)
	}
	res := ScaleResult{
		CPs:            opts.CPs,
		Shards:         opts.Shards,
		Devices:        opts.Devices,
		Protocol:       "dcpp",
		ProbeHz:        opts.ProbeHz,
		SingleDatagram: opts.ForceSingleDatagram,
		ReusePort:      opts.ReusePort,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		WindowSeconds:  opts.Window.Seconds(),
	}
	highRate := opts.ProbeHz > 0
	if highRate {
		res.Protocol = fmt.Sprintf("naive@%g", opts.ProbeHz)
		// In high-rate mode the offered load is the budget: every CP
		// probes at its fixed rate regardless of population.
		res.BudgetProbesPerSec = float64(opts.CPs) * opts.ProbeHz
	} else {
		res.BudgetProbesPerSec = float64(opts.Devices) * opts.DeviceConfig.NominalLoad()
	}

	newPolicy := func() (core.DelayPolicy, error) {
		if highRate {
			return naive.NewPolicy(time.Duration(float64(time.Second) / opts.ProbeHz))
		}
		return dcpp.NewPolicy(dcpp.PolicyConfig{})
	}
	newDevice := func(id ident.NodeID) DeviceBuilder {
		return func(env core.Env) (core.Device, error) {
			if highRate {
				return naive.NewDevice(id, env)
			}
			return dcpp.NewDevice(id, env, opts.DeviceConfig)
		}
	}

	devFleet, err := New(Config{Shards: opts.Devices, Batch: opts.Batch, ForceSingleDatagram: opts.ForceSingleDatagram, Transport: opts.Transport})
	if err != nil {
		return res, fmt.Errorf("device fleet: %w", err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		return res, err
	}
	devAddrs := make([]struct {
		id   ident.NodeID
		addr netip.AddrPort
	}, opts.Devices)
	var ids ident.Allocator
	for i := range devAddrs {
		id := ids.Next()
		dev, err := devFleet.AddDevice(id, newDevice(id))
		if err != nil {
			return res, err
		}
		devAddrs[i].id = id
		devAddrs[i].addr = dev.Addr()
	}

	cpFleet, err := New(Config{Shards: opts.Shards, Batch: opts.Batch, ForceSingleDatagram: opts.ForceSingleDatagram, Transport: opts.Transport, ReusePort: opts.ReusePort})
	if err != nil {
		return res, fmt.Errorf("cp fleet: %w", err)
	}
	res.ReusePortActive = cpFleet.ReusePortActive()
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		return res, err
	}

	joinStart := time.Now()
	pacer := NewJoinPacer(opts.CPs, opts.JoinRampUp)
	cps := make([]*ControlPoint, opts.CPs)
	for i := range cps {
		policy, err := newPolicy()
		if err != nil {
			return res, err
		}
		dev := devAddrs[i%len(devAddrs)]
		cp, err := cpFleet.AddControlPoint(CPConfig{
			ID:             ids.Next(),
			Device:         dev.id,
			DeviceAddrPort: dev.addr,
			Policy:         policy,
			Retransmit:     opts.Retransmit,
		})
		if err != nil {
			return res, fmt.Errorf("add cp %d: %w", i, err)
		}
		cps[i] = cp
		pacer.Tick()
	}

	// Steady state: every CP has completed at least one probe cycle (the
	// device answered and handed it a wait). A CP that lost a whole
	// retransmit cycle to join-storm drops has stopped; restart it, as a
	// production monitor would.
	deadline := time.Now().Add(opts.JoinTimeout)
	next := 0
	for next < len(cps) {
		cp := cps[next]
		if cp.Stats().CyclesOK >= 1 {
			next++
			continue
		}
		if cp.Stopped() {
			if err := cp.Restart(); err != nil {
				return res, err
			}
			res.JoinRestarts++
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("cp %v never completed a cycle within %v (%d of %d steady)",
				cp.ID(), opts.JoinTimeout, next, len(cps))
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.JoinSeconds = time.Since(joinStart).Seconds()
	res.Goroutines = runtime.NumGoroutine()

	before := cpFleet.Snapshot()
	time.Sleep(opts.Window)
	after := cpFleet.Snapshot()

	elapsed := (after.At - before.At).Seconds()
	if elapsed > 0 {
		res.SteadyProbesPerSec = float64(after.Total.ProbesOut-before.Total.ProbesOut) / elapsed
		res.SteadyPacketsPerSec = float64(after.Total.PacketsIn-before.Total.PacketsIn+
			after.Total.PacketsOut-before.Total.PacketsOut) / elapsed
		res.WindowSeconds = elapsed
	}
	if calls := after.Total.SyscallsIn - before.Total.SyscallsIn; calls > 0 {
		res.BatchFillMeanIn = float64(after.Total.PacketsIn-before.Total.PacketsIn) / float64(calls)
	}
	if calls := after.Total.SyscallsOut - before.Total.SyscallsOut; calls > 0 {
		res.BatchFillMeanOut = float64(after.Total.PacketsOut-before.Total.PacketsOut) / float64(calls)
	}
	if pkts := after.Total.PacketsIn - before.Total.PacketsIn + after.Total.PacketsOut - before.Total.PacketsOut; pkts > 0 {
		calls := after.Total.SyscallsIn - before.Total.SyscallsIn + after.Total.SyscallsOut - before.Total.SyscallsOut
		res.SyscallsPerPacket = float64(calls) / float64(pkts)
	}
	res.HandoffsIn = after.Total.HandoffsIn - before.Total.HandoffsIn
	res.HandoffsOut = after.Total.HandoffsOut - before.Total.HandoffsOut
	res.PerShardPackets = make([]uint64, len(after.Shards))
	var sum, peak uint64
	for i := range after.Shards {
		p := after.Shards[i].PacketsIn - before.Shards[i].PacketsIn +
			after.Shards[i].PacketsOut - before.Shards[i].PacketsOut
		res.PerShardPackets[i] = p
		sum += p
		if p > peak {
			peak = p
		}
	}
	if sum > 0 {
		res.ShardImbalance = float64(peak) * float64(len(after.Shards)) / float64(sum)
	}
	res.SteadyCPs = after.Total.LiveControlPoints
	res.WheelDepth = after.Total.WheelDepth
	res.PendingProbes = after.Total.PendingProbes
	res.DemuxCollisions = after.Total.DemuxCollisions
	res.DemuxDrops = after.Total.DemuxDrops
	devSnap := devFleet.Snapshot()
	res.DecodeErrors = after.Total.DecodeErrors + devSnap.Total.DecodeErrors
	res.SendErrors = after.Total.SendErrors + devSnap.Total.SendErrors
	res.PacketsIn = after.Total.PacketsIn
	res.PacketsOut = after.Total.PacketsOut
	res.SyscallsIn = after.Total.SyscallsIn
	res.SyscallsOut = after.Total.SyscallsOut
	return res, nil
}
