package fleet

import (
	"fmt"
	"net/netip"
	"runtime"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/ident"
)

// ScaleOptions parameterises the loopback scale harness: one fleet
// hosting CPs (the system under test, ≤ GOMAXPROCS shard goroutines,
// no per-node goroutines or timers) probing DCPP devices hosted by a
// second, devices-only fleet standing in for the monitored network.
type ScaleOptions struct {
	// CPs is the number of hosted control points. Default 10000.
	CPs int
	// Shards is the CP fleet's shard count. Default GOMAXPROCS.
	Shards int
	// Devices is the number of loopback DCPP devices. Default 8.
	Devices int
	// Window is the steady-state measurement window. Default 5 s.
	Window time.Duration
	// JoinTimeout bounds the wait for every CP's first completed cycle.
	// Default 30 s.
	JoinTimeout time.Duration
	// JoinRampUp spreads the Adds over this long, so the first probe of
	// every CP does not land in one synchronized burst that overflows
	// the (rmem_max-clamped) socket buffers and then re-synchronizes as
	// a retransmit storm. Default 200 µs per CP (2 s at 10k). Negative
	// disables the ramp.
	JoinRampUp time.Duration
	// DeviceConfig parameterises the DCPP devices. Zero = paper
	// defaults (L_nom = 10 probes/s per device).
	DeviceConfig dcpp.DeviceConfig
	// Retransmit parameterises the CP probe cycles. Zero = paper
	// defaults.
	Retransmit core.RetransmitConfig
}

func (o *ScaleOptions) applyDefaults() {
	if o.CPs <= 0 {
		o.CPs = 10_000
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Devices <= 0 {
		o.Devices = 8
	}
	if o.Window <= 0 {
		o.Window = 5 * time.Second
	}
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 30 * time.Second
	}
	if o.DeviceConfig == (dcpp.DeviceConfig{}) {
		o.DeviceConfig = dcpp.DefaultDeviceConfig()
	}
}

// DefaultJoinRamp is the default join spread: 200 µs per CP (2 s at
// 10k), enough to keep first-probe bursts from overflowing
// rmem_max-clamped socket buffers.
func DefaultJoinRamp(cps int) time.Duration {
	return time.Duration(cps) * 200 * time.Microsecond
}

// JoinPacer spreads a mass join over a ramp, sleeping briefly every few
// adds so the joining CPs' first probes do not land in one synchronized
// burst (which overflows socket buffers and then re-synchronizes as a
// retransmit storm). A zero ramp means DefaultJoinRamp; negative
// disables pacing.
type JoinPacer struct {
	pause time.Duration
	n     int
}

// joinBatch is how many adds go between pacing sleeps.
const joinBatch = 64

// NewJoinPacer builds a pacer for joining cps control points over ramp.
func NewJoinPacer(cps int, ramp time.Duration) *JoinPacer {
	if ramp == 0 {
		ramp = DefaultJoinRamp(cps)
	}
	p := &JoinPacer{}
	if ramp > 0 && cps > 0 {
		p.pause = ramp * joinBatch / time.Duration(cps)
	}
	return p
}

// Tick is called after each add; it sleeps at batch boundaries.
func (p *JoinPacer) Tick() {
	p.n++
	if p.pause > 0 && p.n%joinBatch == 0 {
		time.Sleep(p.pause)
	}
}

// ScaleResult is what the harness measured.
type ScaleResult struct {
	CPs     int `json:"control_points"`
	Shards  int `json:"cp_shards"`
	Devices int `json:"devices"`
	// Goroutines is the process count right after steady state: the CP
	// fleet's shard loops, the device fleet's, and the harness itself.
	Goroutines int `json:"goroutines"`
	// JoinSeconds is how long it took from the first Add until every CP
	// had completed at least one probe cycle.
	JoinSeconds float64 `json:"join_seconds"`
	// JoinRestarts counts CPs that lost the device during the join storm
	// (dropped probes exhausting a retransmit cycle) and were restarted
	// by the harness.
	JoinRestarts int `json:"join_restarts"`
	// SteadyCPs is the number of CPs alive after the window (all, unless
	// something went wrong).
	SteadyCPs int `json:"steady_cps"`
	// SteadyProbesPerSec is the aggregate CP probe rate over the window.
	SteadyProbesPerSec float64 `json:"steady_probes_per_sec"`
	// BudgetProbesPerSec is the protocol's aggregate ceiling:
	// Devices × L_nom. DCPP's whole point is that the steady rate stays
	// under this no matter how many CPs monitor each device.
	BudgetProbesPerSec float64 `json:"budget_probes_per_sec"`
	WindowSeconds      float64 `json:"window_seconds"`
	WheelDepth         int     `json:"wheel_depth"`
	PendingProbes      int     `json:"pending_probes"`
	DemuxCollisions    uint64  `json:"demux_collisions"`
	DemuxDrops         uint64  `json:"demux_drops"`
	DecodeErrors       uint64  `json:"decode_errors"`
	SendErrors         uint64  `json:"send_errors"`
	PacketsIn          uint64  `json:"packets_in"`
	PacketsOut         uint64  `json:"packets_out"`
}

// LoopbackScale boots the two fleets, joins every CP, waits for all of
// them to reach steady state (≥ 1 completed cycle), measures the
// aggregate probe rate over the window, and tears everything down.
func LoopbackScale(opts ScaleOptions) (ScaleResult, error) {
	opts.applyDefaults()
	res := ScaleResult{
		CPs:                opts.CPs,
		Shards:             opts.Shards,
		Devices:            opts.Devices,
		BudgetProbesPerSec: float64(opts.Devices) * opts.DeviceConfig.NominalLoad(),
		WindowSeconds:      opts.Window.Seconds(),
	}

	devFleet, err := New(Config{Shards: opts.Devices})
	if err != nil {
		return res, fmt.Errorf("device fleet: %w", err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		return res, err
	}
	devAddrs := make([]struct {
		id   ident.NodeID
		addr netip.AddrPort
	}, opts.Devices)
	var ids ident.Allocator
	for i := range devAddrs {
		id := ids.Next()
		dev, err := devFleet.AddDevice(id, func(env core.Env) (core.Device, error) {
			return dcpp.NewDevice(id, env, opts.DeviceConfig)
		})
		if err != nil {
			return res, err
		}
		devAddrs[i].id = id
		devAddrs[i].addr = dev.Addr()
	}

	cpFleet, err := New(Config{Shards: opts.Shards})
	if err != nil {
		return res, fmt.Errorf("cp fleet: %w", err)
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		return res, err
	}

	joinStart := time.Now()
	pacer := NewJoinPacer(opts.CPs, opts.JoinRampUp)
	cps := make([]*ControlPoint, opts.CPs)
	for i := range cps {
		policy, err := dcpp.NewPolicy(dcpp.PolicyConfig{})
		if err != nil {
			return res, err
		}
		dev := devAddrs[i%len(devAddrs)]
		cp, err := cpFleet.AddControlPoint(CPConfig{
			ID:             ids.Next(),
			Device:         dev.id,
			DeviceAddrPort: dev.addr,
			Policy:         policy,
			Retransmit:     opts.Retransmit,
		})
		if err != nil {
			return res, fmt.Errorf("add cp %d: %w", i, err)
		}
		cps[i] = cp
		pacer.Tick()
	}

	// Steady state: every CP has completed at least one probe cycle (the
	// device answered and handed it a wait). A CP that lost a whole
	// retransmit cycle to join-storm drops has stopped; restart it, as a
	// production monitor would.
	deadline := time.Now().Add(opts.JoinTimeout)
	next := 0
	for next < len(cps) {
		cp := cps[next]
		if cp.Stats().CyclesOK >= 1 {
			next++
			continue
		}
		if cp.Stopped() {
			if err := cp.Restart(); err != nil {
				return res, err
			}
			res.JoinRestarts++
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("cp %v never completed a cycle within %v (%d of %d steady)",
				cp.ID(), opts.JoinTimeout, next, len(cps))
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.JoinSeconds = time.Since(joinStart).Seconds()
	res.Goroutines = runtime.NumGoroutine()

	before := cpFleet.Snapshot()
	time.Sleep(opts.Window)
	after := cpFleet.Snapshot()

	elapsed := (after.At - before.At).Seconds()
	if elapsed > 0 {
		res.SteadyProbesPerSec = float64(after.Total.ProbesOut-before.Total.ProbesOut) / elapsed
		res.WindowSeconds = elapsed
	}
	res.SteadyCPs = after.Total.LiveControlPoints
	res.WheelDepth = after.Total.WheelDepth
	res.PendingProbes = after.Total.PendingProbes
	res.DemuxCollisions = after.Total.DemuxCollisions
	res.DemuxDrops = after.Total.DemuxDrops
	devSnap := devFleet.Snapshot()
	res.DecodeErrors = after.Total.DecodeErrors + devSnap.Total.DecodeErrors
	res.SendErrors = after.Total.SendErrors + devSnap.Total.SendErrors
	res.PacketsIn = after.Total.PacketsIn
	res.PacketsOut = after.Total.PacketsOut
	return res, nil
}
