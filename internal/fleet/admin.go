package fleet

// Runtime administration: the fleet's mutation plane.
//
// A running fleet ingests churn — control points and devices appear and
// disappear, shards drain for maintenance, limits change — while the
// shard event loops keep their single-threaded engine contract and the
// 0 allocs/op hot path. The machinery here is deliberately shaped like
// the PR-7 handoff path:
//
//   - Command inbox: every structural mutation (add/remove/migrate,
//     config push) is a closure queued on the owning shard's bounded
//     cmdQueue and executed by that shard's event loop at the top of
//     its next iteration, woken by the same read-deadline poke handoffs
//     use. Off-loop threads never hold a shard mutex across engine
//     work, and the steady-state loop pays one extra atomic load per
//     iteration — nothing per packet. (Harnesses that drive the loop
//     themselves — HotPathBench fakes `started` without goroutines —
//     fall back to executing the closure inline under the mutex.)
//   - Bounded admission: the inbox rejects once rt.AdmissionQueue
//     commands are already waiting (Counters.AdmissionRejected), so a
//     runaway churn driver back-pressures instead of growing an
//     unbounded queue behind a busy loop.
//   - Drain/rebalance: DrainShard moves every control point off a shard
//     onto the surviving shards (Rebalance moves them back to their
//     NodeID-hash homes). A migration runs as one command on the source
//     shard's loop and splices the node into the destination under both
//     mutexes: the armed alarm re-arms at the exact same absolute tick
//     (the wheel rounds deadlines identically, so nothing fires early),
//     the in-flight (device, cycle) demux entry moves along and a
//     forwarding entry on the source redirects the reply that may
//     already be racing toward the old socket — no pending cycle is
//     lost and no false verdict is manufactured. Routed (ReusePort)
//     fleets embed the owning shard in the cycle number instead, so
//     there the prober is re-seeded into the destination's cycle space
//     (core.Prober.Rehome) and the in-flight cycle is abandoned
//     verdict-free.
//   - Live config: RuntimeConfig carries every knob that is safe to
//     flip on a running fleet (harden toggles, replay/pending windows,
//     admission rates, per-device probe budgets, the inbox bound).
//     SetConfig versions the master copy and pushes a snapshot to each
//     shard through the inbox; readers on the hot path see their
//     shard-local copy under the mutex they already hold.
//   - Overload shedding: beyond the bounded inbox, a per-device probe
//     budget (rt.PerDeviceProbeHz/Burst) meters how fast the fleet
//     probes any single device; probes over budget are shed before they
//     reach the wire (Counters.ProbesShed) — under overload the fleet
//     degrades to slower detection instead of amplifying load onto the
//     devices it monitors. SAPP's adaptive policy remains the
//     protocol-level knob; the budget is the runtime backstop.

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"presence/internal/ident"
	"presence/internal/trace"
)

// defaultAdmissionQueue bounds each shard's command inbox when the
// config leaves it zero: deep enough that a bulk provisioning burst
// (thousands of adds against a parked loop) queues without rejects,
// shallow enough that a stuck loop surfaces as back-pressure fast.
const defaultAdmissionQueue = 1024

// ErrAdmissionRejected reports an admin command refused because the
// target shard's bounded command inbox was full (Counters.
// AdmissionRejected). The fleet's state is unchanged; back off and
// retry.
var ErrAdmissionRejected = errors.New("fleet: admission queue full")

// errWrongShard is the internal retry signal for commands that chased a
// control point to a shard it migrated away from.
var errWrongShard = errors.New("fleet: node moved shards")

// shardCommand is one admin mutation bound for a shard's event loop.
// fn runs under the shard mutex like any engine call; done (buffered,
// may be nil) receives its error.
type shardCommand struct {
	fn   func(*shard) error
	done chan error
}

// cmdQueue is a shard's bounded admin-command inbox. It mirrors the
// handoff inbox exactly: a leaf mutex around an append, a flag the
// owning loop polls at the top of every iteration and again right
// after arming its read deadline, and a wake-up poke through the
// socket's read deadline. The slices ping-pong (q <-> spare) so
// steady churn allocates nothing beyond the commands themselves.
type cmdQueue struct {
	mu sync.Mutex
	q  []shardCommand
	// spare is the drained slice awaiting reuse; owned by the shard loop
	// between drains, reinstalled as q under mu.
	spare   []shardCommand
	pending atomic.Bool
}

// enqueueCmd queues c on the shard's command inbox and wakes the loop,
// rejecting when the bounded queue is full. Safe from any goroutine.
func (s *shard) enqueueCmd(c shardCommand) error {
	bound := int(s.fleet.admissionBound.Load())
	s.cmd.mu.Lock()
	if len(s.cmd.q) >= bound {
		s.cmd.mu.Unlock()
		s.admRejected.Add(1)
		return ErrAdmissionRejected
	}
	s.cmd.q = append(s.cmd.q, c)
	s.cmd.pending.Store(true)
	s.cmd.mu.Unlock()
	s.conn.SetReadDeadline(pastDeadline) //nolint:errcheck // fails only when closed
	return nil
}

// drainCommands executes every queued admin command. Runs on the shard
// loop under the shard mutex, inside a send batch (so sends the
// commands coalesce flush with the iteration's burst).
func (s *shard) drainCommands() {
	s.cmd.mu.Lock()
	q := s.cmd.q
	s.cmd.q = s.cmd.spare[:0]
	s.cmd.pending.Store(false)
	s.cmd.mu.Unlock()
	for i := range q {
		err := q[i].fn(s)
		if q[i].done != nil {
			q[i].done <- err
		}
		q[i] = shardCommand{} // drop the closure so the spare slice pins nothing
	}
	s.cmd.spare = q
}

// runOn executes fn on s's event loop via the command inbox and waits
// for the result. When the loop is not running (fleet not Started, or
// a harness drives the loop itself) fn executes inline under the shard
// mutex — the same serialisation, just on the caller's goroutine.
func (f *Fleet) runOn(s *shard, fn func(*shard) error) error {
	if !s.loopStarted.Load() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return errClosed
		}
		err := fn(s)
		s.publishLocked()
		return err
	}
	done := make(chan error, 1)
	if err := s.enqueueCmd(shardCommand{fn: fn, done: done}); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-s.loopDone:
		// The loop exited (fleet closing). The command may still have run
		// in the loop's final iteration — prefer its real result.
		select {
		case err := <-done:
			return err
		default:
			return errClosed
		}
	}
}

// RuntimeConfig carries every fleet knob that is safe to change while
// the fleet runs. Fleet.SetConfig installs a new configuration
// atomically per shard with a monotonic version; Fleet.ConfigSnapshot
// returns the current one. Zero fields take the same defaults as the
// matching Config fields.
type RuntimeConfig struct {
	// Harden toggles the adversarial defenses (see Config.Harden).
	// Flipping it on mid-run hardens the reply/bye/probe paths
	// immediately; BYE verification (core.ProberOptions.VerifyBye) is a
	// per-prober option, so it applies to control points added after the
	// change.
	Harden bool
	// PendingTTL bounds unanswered demux entries (Config.PendingTTL).
	// Zero means 30 s.
	PendingTTL time.Duration
	// ReplayWindow bounds the replay-classification memory
	// (Config.ReplayWindow, Harden only). Zero means 5 s.
	ReplayWindow time.Duration
	// PerSourceProbeHz and PerSourceBurst parameterise per-source probe
	// admission (Config fields of the same name, Harden only). Zero
	// means 15 Hz and 20.
	PerSourceProbeHz float64
	PerSourceBurst   int
	// PerDeviceProbeHz and PerDeviceBurst meter how fast this fleet's
	// control points probe any single device — the overload-shedding
	// budget. A probe over budget is shed before it reaches the wire
	// (Counters.ProbesShed): the cycle behaves exactly as if the probe
	// were lost, so under overload detection degrades gracefully (slower
	// verdicts) instead of amplifying probe load onto the device. The
	// budget is enforced per shard; control points of one device spread
	// across shards each get the full rate, so size it accordingly.
	// PerDeviceProbeHz zero disables shedding (the default); Burst zero
	// with a positive rate means 16.
	PerDeviceProbeHz float64
	PerDeviceBurst   int
	// AdmissionQueue bounds each shard's admin-command inbox; commands
	// beyond it are rejected with ErrAdmissionRejected
	// (Counters.AdmissionRejected). Zero means 1024.
	AdmissionQueue int
	// AuthKey is the fleet's master authentication secret (see
	// AuthConfig.Key). Pushing a config whose AuthKey differs from the
	// live one rotates the keys: the old master stays accepted for
	// AuthRotationGrace (Counters.AuthStaleKey), then expires. Pushing
	// an empty AuthKey disables authentication. The slice is retained;
	// callers must not mutate it afterwards.
	AuthKey []byte
	// AuthRequire rejects every unauthenticated v1 frame (see
	// AuthConfig.Require). Requires AuthKey.
	AuthRequire bool
	// AuthRotationGrace bounds the dual-key acceptance window after a
	// rotation. Zero means 30 s (when AuthKey is set).
	AuthRotationGrace time.Duration
}

func (rc *RuntimeConfig) applyDefaults() {
	if rc.PendingTTL == 0 {
		rc.PendingTTL = 30 * time.Second
	}
	if rc.ReplayWindow == 0 {
		rc.ReplayWindow = 5 * time.Second
	}
	if rc.PerSourceProbeHz == 0 {
		rc.PerSourceProbeHz = 15
	}
	if rc.PerSourceBurst == 0 {
		rc.PerSourceBurst = 20
	}
	if rc.PerDeviceProbeHz > 0 && rc.PerDeviceBurst == 0 {
		rc.PerDeviceBurst = 16
	}
	if rc.AdmissionQueue == 0 {
		rc.AdmissionQueue = defaultAdmissionQueue
	}
	if len(rc.AuthKey) > 0 && rc.AuthRotationGrace == 0 {
		rc.AuthRotationGrace = 30 * time.Second
	}
}

func (rc *RuntimeConfig) validate() error {
	if rc.PendingTTL < 0 || rc.ReplayWindow < 0 {
		return errors.New("fleet: negative TTL in runtime config")
	}
	if rc.PerSourceProbeHz < 0 || rc.PerSourceBurst < 0 ||
		rc.PerDeviceProbeHz < 0 || rc.PerDeviceBurst < 0 {
		return errors.New("fleet: negative rate or burst in runtime config")
	}
	if rc.AdmissionQueue < 0 {
		return errors.New("fleet: negative admission queue in runtime config")
	}
	if rc.AuthRequire && len(rc.AuthKey) == 0 {
		return errAuthRequireNoKey
	}
	if rc.AuthRotationGrace < 0 {
		return errors.New("fleet: negative auth rotation grace in runtime config")
	}
	return nil
}

// runtimeFromConfig lifts the startup Config into the initial
// RuntimeConfig (version 1).
func runtimeFromConfig(cfg *Config) RuntimeConfig {
	rc := RuntimeConfig{
		Harden:           cfg.Harden,
		PendingTTL:       cfg.PendingTTL,
		ReplayWindow:     cfg.ReplayWindow,
		PerSourceProbeHz: cfg.PerSourceProbeHz,
		PerSourceBurst:   cfg.PerSourceBurst,
		PerDeviceProbeHz: cfg.PerDeviceProbeHz,
		PerDeviceBurst:   cfg.PerDeviceBurst,
		AdmissionQueue:   cfg.AdmissionQueue,

		AuthKey:           cfg.Auth.Key,
		AuthRequire:       cfg.Auth.Require,
		AuthRotationGrace: cfg.Auth.RotationGrace,
	}
	rc.applyDefaults()
	return rc
}

// SetConfig installs rc (zeros defaulted) as the fleet's runtime
// configuration and pushes it to every shard through the command inbox.
// It returns the new config version — monotonic, starting at 1 for the
// startup Config. Shards pick the new config up one at a time; a
// scrape between pushes can observe both generations.
func (f *Fleet) SetConfig(rc RuntimeConfig) (uint64, error) {
	rc.applyDefaults()
	if err := rc.validate(); err != nil {
		return 0, err
	}
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, errClosed
	}
	f.adminMu.Lock()
	f.rt = rc
	f.rtVer++
	ver := f.rtVer
	f.adminMu.Unlock()
	f.admissionBound.Store(int64(rc.AdmissionQueue))
	for _, s := range f.shards {
		if err := f.runOn(s, func(sh *shard) error {
			sh.applyConfigLocked(rc)
			return nil
		}); err != nil {
			return ver, err
		}
	}
	return ver, nil
}

// ConfigSnapshot returns the fleet's current runtime configuration and
// its version.
func (f *Fleet) ConfigSnapshot() (RuntimeConfig, uint64) {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	return f.rt, f.rtVer
}

// applyConfigLocked installs rc as the shard's live configuration,
// allocating or dropping the optional state tables its toggles govern.
// Runs under the shard mutex.
func (s *shard) applyConfigLocked(rc RuntimeConfig) {
	s.rt = rc
	if rc.Harden {
		if s.completed == nil {
			s.completed = make(map[uint64]time.Duration)
		}
		if s.sources == nil {
			s.sources = make(map[netip.AddrPort]*srcBucket)
		}
	} else {
		s.completed, s.sources = nil, nil
	}
	if rc.PerDeviceProbeHz > 0 {
		if s.devBudget == nil {
			s.devBudget = make(map[ident.NodeID]*srcBucket)
		}
	} else {
		s.devBudget = nil
	}
	s.applyAuthLocked(&rc)
}

// admitDeviceProbe charges one outgoing probe against the device's
// token bucket, creating the bucket on first contact. Runs under the
// shard mutex; shedding only (s.devBudget is non-nil).
func (s *shard) admitDeviceProbe(device ident.NodeID) bool {
	now := s.fleet.sinceEpoch()
	b := s.devBudget[device]
	if b == nil {
		b = &srcBucket{tokens: float64(s.rt.PerDeviceBurst), last: now}
		s.devBudget[device] = b
	}
	b.tokens += (now - b.last).Seconds() * s.rt.PerDeviceProbeHz
	if max := float64(s.rt.PerDeviceBurst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// HomeShard returns the shard index a node id hashes to — where
// Rebalance will put its control point.
func (f *Fleet) HomeShard(id ident.NodeID) int {
	return int(mix64(uint64(id)) % uint64(len(f.shards)))
}

// placeShard picks the shard for a new control point: its hash home,
// or — while that home is draining — the first non-draining shard
// after it.
func (f *Fleet) placeShard(id ident.NodeID) *shard {
	home := f.HomeShard(id)
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	if !f.draining[home] {
		return f.shards[home]
	}
	for k := 1; k < len(f.shards); k++ {
		if i := (home + k) % len(f.shards); !f.draining[i] {
			return f.shards[i]
		}
	}
	return f.shards[home]
}

// Draining reports, per shard, whether DrainShard has marked it
// draining (cleared by Rebalance).
func (f *Fleet) Draining() []bool {
	f.adminMu.Lock()
	defer f.adminMu.Unlock()
	out := make([]bool, len(f.draining))
	copy(out, f.draining)
	return out
}

// RemoveControlPoint stops and unhooks the control point with the given
// id, wherever it is currently hosted. Equivalent to Remove on its
// handle, addressed by id — the admin-API spelling.
func (f *Fleet) RemoveControlPoint(id ident.NodeID) error {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return errClosed
	}
	f.adminMu.Lock()
	n := f.dir[id]
	f.adminMu.Unlock()
	if n == nil {
		return fmt.Errorf("fleet: control point %v not hosted", id)
	}
	for {
		s := n.sh()
		err := f.runOn(s, func(sh *shard) error {
			if n.sh() != sh {
				return errWrongShard // migrated while the command queued
			}
			sh.removeCPLocked(n)
			return nil
		})
		if err != errWrongShard {
			return err
		}
	}
}

// RemoveDevice stops and unhooks a hosted device engine, freeing its
// shard for a future AddDevice. Control points watching the device are
// untouched — they will declare it lost after their retransmit budget,
// exactly as if the device crashed; make the device Bye() first for a
// graceful leave.
func (f *Fleet) RemoveDevice(id ident.NodeID) error {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return errClosed
	}
	f.devMu.Lock()
	defer f.devMu.Unlock()
	f.adminMu.Lock()
	dn := f.devices[id]
	f.adminMu.Unlock()
	if dn == nil {
		return fmt.Errorf("fleet: device %v not hosted", id)
	}
	s := dn.shard
	if err := f.runOn(s, func(sh *shard) error {
		if sh.device != dn {
			return fmt.Errorf("fleet: device %v not hosted", id)
		}
		sh.wheel.Cancel(&dn.timer)
		sh.device = nil
		dn.removed = true
		return nil
	}); err != nil {
		return err
	}
	f.adminMu.Lock()
	delete(f.devices, id)
	f.adminMu.Unlock()
	f.deviceShard.CompareAndSwap(int32(s.index), -1)
	return nil
}

// DrainShard migrates every control point off shard idx onto the
// remaining shards (by hash home, skipping other draining shards) and
// marks the shard draining, so new control points avoid it until
// Rebalance. Hosted device engines stay — a device's probe address is
// its shard socket, so moving one would strand its probers; remove and
// re-add the device to relocate it. Control points added concurrently
// with the drain may land on the shard after its snapshot; drain again
// or Rebalance to sweep stragglers. Returns how many control points
// moved.
func (f *Fleet) DrainShard(idx int) (int, error) {
	if idx < 0 || idx >= len(f.shards) {
		return 0, fmt.Errorf("fleet: shard %d out of range [0,%d)", idx, len(f.shards))
	}
	if err := f.adminReady(); err != nil {
		return 0, err
	}
	f.migMu.Lock()
	defer f.migMu.Unlock()
	f.adminMu.Lock()
	f.draining[idx] = true
	avail := false
	for i := range f.draining {
		if !f.draining[i] {
			avail = true
			break
		}
	}
	if !avail {
		f.draining[idx] = false
		f.adminMu.Unlock()
		return 0, errors.New("fleet: cannot drain every shard")
	}
	f.adminMu.Unlock()
	src := f.shards[idx]
	return f.migrateFrom(src,
		func(ident.NodeID) bool { return true },
		func(id ident.NodeID) *shard { return f.placeShard(id) })
}

// Rebalance clears every draining mark and migrates every control
// point back to its NodeID-hash home shard. Returns how many moved.
func (f *Fleet) Rebalance() (int, error) {
	if err := f.adminReady(); err != nil {
		return 0, err
	}
	f.migMu.Lock()
	defer f.migMu.Unlock()
	f.adminMu.Lock()
	for i := range f.draining {
		f.draining[i] = false
	}
	f.adminMu.Unlock()
	moved := 0
	for _, src := range f.shards {
		m, err := f.migrateFrom(src,
			func(id ident.NodeID) bool { return f.shardFor(id) != src },
			func(id ident.NodeID) *shard { return f.shardFor(id) })
		moved += m
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// adminReady gates the mutation APIs on a started, open fleet.
func (f *Fleet) adminReady() error {
	f.mu.Lock()
	started, closed := f.started, f.closed
	f.mu.Unlock()
	if closed {
		return errClosed
	}
	if !started {
		return errors.New("fleet: Start before administering nodes")
	}
	return nil
}

// migrateFrom moves every control point on src that pick selects to
// the shard target chooses for it: one snapshot command, then one
// migration command per destination shard, all on src's event loop.
// Control points removed between snapshot and migration are skipped.
func (f *Fleet) migrateFrom(src *shard, pick func(ident.NodeID) bool, target func(ident.NodeID) *shard) (int, error) {
	var ids []ident.NodeID
	if err := f.runOn(src, func(sh *shard) error {
		for id := range sh.cps {
			if pick(id) {
				ids = append(ids, id)
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	groups := make(map[*shard][]ident.NodeID)
	for _, id := range ids {
		if dst := target(id); dst != src {
			groups[dst] = append(groups[dst], id)
		}
	}
	moved := 0
	for _, dst := range f.shards { // shard order: deterministic migration order
		g := groups[dst]
		if len(g) == 0 {
			continue
		}
		var m int
		if err := f.runOn(src, func(sh *shard) error {
			m = sh.migrateLocked(dst, g)
			return nil
		}); err != nil {
			return moved, err
		}
		moved += m
	}
	if moved > 0 {
		f.migratedAny.Store(true)
	}
	return moved, nil
}

// migrateLocked splices the named control points out of s and into
// dst. Runs on s's event loop under s's mutex and takes dst's mutex
// for the whole batch — the one place shard mutexes nest, safe because
// migrations are serialised by Fleet.migMu and no other path locks two
// shards.
//
// Per node: the armed alarm's absolute tick is captured before Cancel
// (Cancel bumps the generation and unlinks but leaves the deadline) and
// re-armed on dst at the same tick — Schedule rounds up and never
// fires early, so the alarm is at worst one poll late, never a false
// timeout. On an unrouted fleet the in-flight (device, cycle) demux
// entry moves to dst and a forwarding entry on s redirects the reply
// that may already be racing toward the old socket (dispatchFrame
// hands it off exactly like a ReusePort stray). On a routed fleet
// cycle numbers embed the owning shard, so the prober is re-seeded
// into dst's cycle space instead (core.Prober.Rehome) — the in-flight
// cycle is abandoned without a verdict and a fresh one opens
// immediately.
func (s *shard) migrateLocked(dst *shard, ids []ident.NodeID) int {
	fl := s.fleet
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return 0
	}
	now := fl.sinceEpoch()
	moved := 0
	for _, id := range ids {
		n := s.cps[id]
		if n == nil {
			continue
		}
		wasLinked := n.timer.linked()
		at := time.Duration(n.timer.deadline) * s.wheel.tick
		s.wheel.Cancel(&n.timer)
		delete(s.cps, id)
		if w := s.watchers[n.device]; w != nil {
			delete(w, n)
			if len(w) == 0 {
				delete(s.watchers, n.device)
				fl.dropWatcher(n.device, s.index)
			}
		}
		key := pendKey(n.device, n.lastCycle)
		pp, hadPending := s.pending[key]
		if hadPending && pp.cp == n {
			delete(s.pending, key)
		} else {
			hadPending = false
		}
		if !n.stopped {
			s.liveCPs--
		}

		n.owner.Store(dst)
		dst.cps[id] = n
		w := dst.watchers[n.device]
		if w == nil {
			w = make(map[*cpNode]struct{})
			dst.watchers[n.device] = w
		}
		w[n] = struct{}{}
		fl.noteWatcher(n.device, dst.index)
		if dst.auth.enabled {
			// Re-point the node at the destination's per-device auth state,
			// carrying the v2 high-water mark along so a migration cannot
			// reopen the downgrade window. The pair schedules stay: every
			// shard derives them from the same masters, and a divergent key
			// epoch re-derives on first use.
			st := dst.devAuthFor(n.device)
			if n.devAuth != nil && n.devAuth.seenV2 {
				st.seenV2 = true
			}
			n.devAuth = st
		} else {
			n.devAuth = nil
		}
		if !n.stopped {
			dst.liveCPs++
		}
		if wasLinked {
			dst.wheel.Schedule(&n.timer, at)
		}
		if fl.route {
			n.prober.Rehome(routedCycleSeed(cycleSeed(id), dst.index))
		} else if hadPending {
			if old, ok := dst.pending[key]; ok && old.cp != n {
				dst.counters.DemuxCollisions++
			}
			dst.pending[key] = pp
			if s.forwards == nil {
				s.forwards = make(map[uint64]forwardEntry)
			}
			s.forwards[key] = forwardEntry{to: dst, at: now}
		}
		if dst.rec != nil {
			// EvHandoff with no CP id: visible in /debug/flight, skipped by
			// trace.Normalize so migrations cannot perturb the byte-identical
			// per-CP timelines drain-equivalence tests compare.
			dst.rec.Record(trace.Event{At: now, Kind: trace.EvHandoff,
				Device: n.device, Cycle: n.lastCycle})
		}
		dst.counters.Migrations++
		moved++
	}
	if moved > 0 {
		dst.publishLocked()
		s.publishLocked()
		// Wake dst's loop: it may be parked past the earliest alarm that
		// just landed in its wheel.
		dst.conn.SetReadDeadline(pastDeadline) //nolint:errcheck // fails only when closed
	}
	return moved
}

// forwardEntry redirects the reply of a migrated in-flight probe cycle:
// the probe left the old shard's socket, so its reply lands there, but
// the (device, cycle) demux entry moved with the control point. The old
// shard keeps this breadcrumb until the sweep expires it (PendingTTL —
// the entry's cycle cannot complete after that anyway) and hands the
// reply off to the new shard like a ReusePort stray.
type forwardEntry struct {
	to *shard
	at time.Duration
}

// VerdictKind names a presence verdict for Config.Verdicts.
type VerdictKind uint8

const (
	// VerdictLost: a full probe cycle went unanswered — the device is
	// considered gone.
	VerdictLost VerdictKind = iota + 1
	// VerdictBye: the device announced a graceful leave (after
	// verification when hardened).
	VerdictBye
)

func (k VerdictKind) String() string {
	switch k {
	case VerdictLost:
		return "lost"
	case VerdictBye:
		return "bye"
	default:
		return fmt.Sprintf("VerdictKind(%d)", uint8(k))
	}
}

// VerdictEvent is one terminal presence verdict, delivered to
// Config.Verdicts. It fires on the shard event loop under the shard
// mutex — handlers must be cheap, must not block and must not call
// back into the fleet (same contract as CPConfig.Listener).
type VerdictEvent struct {
	CP     ident.NodeID
	Device ident.NodeID
	Kind   VerdictKind
	At     time.Duration
}
