//go:build !race

package fleet

// raceEnabled lets allocation-count assertions skip under the race
// detector, whose instrumentation allocates on its own.
const raceEnabled = false
