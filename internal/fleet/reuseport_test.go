package fleet_test

// ReusePort equivalence: one scenario driven over the three socket
// layouts a multi-shard fleet can run on — a single shared socket, one
// distinct port per shard (the portable fallback), and a reuseport-style
// group where the network picks the receiving shard by source hash
// (memnet.ListenGroup, the deterministic stand-in for the kernel's
// SO_REUSEPORT flow hash) — must produce identical protocol outcomes:
// the same probes and replies on the wire, the same per-CP cycle
// counts, the same fleet counters, zero drops. The only sanctioned
// differences are the transport-shaped ones: which shard a frame lands
// on (and hence the handoff counters) and how many BYE copies the
// device fans out (one per distinct peer address it saw).
//
// Frames are compared decoded with the cycle's shard-index bits masked:
// routing embeds the owning shard in the cycle's top bits, and the
// owning shard for a given CP legitimately differs between a 1-shard
// and a 2-shard fleet. Everything below those bits — protocol kind,
// sender, staggered cycle progression, attempt numbers — must match
// exactly.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/wire"
)

const (
	rpCPs      = 24
	rpCycles   = 4
	rpDeviceID = ident.NodeID(7)
	rpCPBaseID = ident.NodeID(100)
)

// rpCycleMask clears the routeShardBits shard index from a routed cycle
// number (the top 8 of 32 bits, per fleet.MaxRoutedShards).
const rpCycleMask = uint32(1<<32/fleet.MaxRoutedShards - 1)

// rpTap records delivered probe/reply traffic decoded and normalised:
// shard-index bits masked from the cycle, addresses ignored (they are
// the transport layout under test). BYE fan-out is checked at the
// outcome level instead — copy counts depend on the peer table.
type rpTap struct {
	mu     sync.Mutex
	frames []string
}

func (tap *rpTap) observe(ev memnet.PacketEvent) {
	if ev.Verdict != memnet.Delivered {
		return
	}
	var f wire.Frame
	if wire.DecodeFrame(ev.Frame, &f) != nil {
		return
	}
	if f.Kind == wire.KindBye || f.Kind == wire.KindAnnounce {
		return
	}
	line := fmt.Sprintf("kind=%d from=%d cycle=%d attempt=%d", f.Kind, f.From, f.Cycle&rpCycleMask, f.Attempt)
	tap.mu.Lock()
	tap.frames = append(tap.frames, line)
	tap.mu.Unlock()
}

func (tap *rpTap) sorted() []string {
	tap.mu.Lock()
	defer tap.mu.Unlock()
	sort.Strings(tap.frames)
	return tap.frames
}

type rpOutcome struct {
	traffic []string
	cycles  [rpCPs]uint64 // per-CP completed cycles
	total   fleet.Counters
	// preBye is the snapshot after all probe cycles and before the BYE:
	// the point where handoff counters reflect stray *replies* only (BYE
	// fan-out legitimately hands off on every multi-shard layout — the
	// device byes each known peer, and every receiving shard offers the
	// frame to the other watching shards).
	preBye   fleet.Snapshot
	perShard []int // CPs hosted per shard
}

// runReusePortLeg runs the scenario over one socket layout:
// "single" (1 shard), "distinct" (2 shards, own port each), "group"
// (2 shards sharing one address via memnet.ListenGroup). All legs run
// with ReusePort routing on so cycle spaces are shaped identically.
func runReusePortLeg(t *testing.T, leg string) rpOutcome {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	defer net.Close()
	tap := &rpTap{}
	net.Observe(tap.observe)

	shards := 2
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })
	switch leg {
	case "single":
		shards = 1
	case "distinct":
	case "group":
		members, err := net.ListenGroup(2)
		if err != nil {
			t.Fatal(err)
		}
		transport = fleet.TransportFunc(func(shard int) (fleet.PacketConn, error) { return members[shard], nil })
	default:
		t.Fatalf("unknown leg %q", leg)
	}

	devFleet, err := fleet.New(fleet.Config{
		Shards:    1,
		Transport: fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() }),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(rpDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(rpDeviceID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	cpFleet, err := fleet.New(fleet.Config{Shards: shards, ReusePort: true, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if !cpFleet.Routed() {
		t.Fatal("ReusePort config must enable shard-aware routing")
	}
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}

	cps := make([]*fleet.ControlPoint, rpCPs)
	for i := range cps {
		cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID:             rpCPBaseID + ident.NodeID(i),
			Device:         rpDeviceID,
			DeviceAddrPort: dev.Addr(),
			Policy:         &nCyclesPolicy{left: rpCycles},
			// Instant delivery: generous timeouts so a loaded CI box never
			// injects retransmits into the comparison.
			Retransmit: core.RetransmitConfig{
				FirstTimeout: 30 * time.Second,
				RetryTimeout: 30 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cps[i] = cp
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, cp := range cps {
		for cp.Stats().CyclesOK < rpCycles {
			if time.Now().After(deadline) {
				t.Fatalf("leg %s: cp %v stuck at %d cycles", leg, cp.ID(), cp.Stats().CyclesOK)
			}
			time.Sleep(time.Millisecond)
		}
	}

	preBye := cpFleet.Snapshot()

	// The device says goodbye; on the group leg the BYE lands on one
	// member socket and must still stop watchers hosted on both shards
	// (handoff fan-out via the watcher mask).
	dev.Bye()
	for _, cp := range cps {
		for !cp.Stopped() {
			if time.Now().After(deadline) {
				t.Fatalf("leg %s: cp %v (shard %d) never saw the BYE", leg, cp.ID(), cp.Shard())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Handoffs drain asynchronously (the receiving loop is woken by a
	// deadline poke); wait for conservation before the final snapshot.
	var snap fleet.Snapshot
	for {
		snap = cpFleet.Snapshot()
		if snap.Total.HandoffsIn == snap.Total.HandoffsOut {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leg %s: handoffs never drained: in=%d out=%d", leg, snap.Total.HandoffsIn, snap.Total.HandoffsOut)
		}
		time.Sleep(time.Millisecond)
	}
	out := rpOutcome{
		total:    snap.Total,
		preBye:   preBye,
		perShard: make([]int, shards),
		traffic:  tap.sorted(),
	}
	for i, cp := range cps {
		out.cycles[i] = cp.Stats().CyclesOK
		out.perShard[cp.Shard()]++
	}
	return out
}

func TestReusePortEquivalence(t *testing.T) {
	legs := []string{"single", "distinct", "group"}
	outs := make(map[string]rpOutcome, len(legs))
	for _, leg := range legs {
		outs[leg] = runReusePortLeg(t, leg)
	}

	for _, leg := range legs {
		out := outs[leg]
		// Exact protocol expectations hold per leg, so cross-leg equality
		// of everything that matters follows from these.
		if want := uint64(rpCPs * rpCycles); out.total.ProbesOut != want || out.total.RepliesIn != want {
			t.Errorf("leg %s: ProbesOut=%d RepliesIn=%d, want exactly %d each", leg, out.total.ProbesOut, out.total.RepliesIn, want)
		}
		c := out.total
		if c.DecodeErrors+c.SendErrors+c.DemuxDrops+c.DemuxCollisions+c.AttemptMismatches != 0 {
			t.Errorf("leg %s: lossless scenario left error counters: %+v", leg, c)
		}
		if c.LiveControlPoints != 0 || c.ControlPoints != rpCPs {
			t.Errorf("leg %s: CPs=%d live=%d after BYE, want %d/0", leg, c.ControlPoints, c.LiveControlPoints, rpCPs)
		}
		for i, got := range out.cycles {
			if got != rpCycles {
				t.Errorf("leg %s: cp %d completed %d cycles, want %d", leg, i, got, rpCycles)
			}
		}
	}

	// Identical normalised probe/reply traffic on the wire, leg by leg.
	base := outs["single"].traffic
	for _, leg := range legs[1:] {
		got := outs[leg].traffic
		if len(got) != len(base) {
			t.Fatalf("leg %s: %d probe/reply frames vs %d on single", leg, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("leg %s: frame %d differs: %s vs %s", leg, i, got[i], base[i])
			}
		}
	}

	// The group leg must actually exercise the stray path: every reply
	// from the device hashes to ONE member socket, so the other shard's
	// CPs see all their replies via handoff. Before the BYE, handoffs
	// are exactly those stray replies.
	group := outs["group"]
	if group.perShard[0] == 0 || group.perShard[1] == 0 {
		t.Fatalf("CP ids no longer spread over both shards (%v); pick different ids", group.perShard)
	}
	pre := group.preBye.Total
	if pre.HandoffsIn != pre.HandoffsOut {
		t.Errorf("group leg: pre-BYE handoffs not conserved: in=%d out=%d (a cycle cannot complete before its reply drains)", pre.HandoffsIn, pre.HandoffsOut)
	}
	minPerShard := group.perShard[0]
	if group.perShard[1] < minPerShard {
		minPerShard = group.perShard[1]
	}
	if want := uint64(minPerShard * rpCycles); pre.HandoffsIn < want {
		t.Errorf("group leg: pre-BYE HandoffsIn=%d, want >= %d (one shard's replies all arrive as strays)", pre.HandoffsIn, want)
	}
	for _, leg := range []string{"single", "distinct"} {
		if h := outs[leg].preBye.Total.HandoffsOut; h != 0 {
			t.Errorf("leg %s: pre-BYE HandoffsOut=%d, want 0 (replies arrive on the socket that probed)", leg, h)
		}
	}
}

// TestReusePortUDP is the kernel smoke test: a 2-shard fleet sharing
// one real UDP port via SO_REUSEPORT completes probe cycles against a
// real-socket device fleet, with strays riding the handoff path.
// Skipped where the platform lacks the option (the fleet then falls
// back to distinct ports, which TestReusePortEquivalence covers).
func TestReusePortUDP(t *testing.T) {
	cpFleet, err := fleet.New(fleet.Config{Shards: 2, ReusePort: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if !cpFleet.ReusePortActive() {
		t.Skip("SO_REUSEPORT not supported on this platform; distinct-port fallback in use")
	}
	addrs := cpFleet.Addrs()
	if addrs[0].Port() != addrs[1].Port() {
		t.Fatalf("shard sockets must share one port, got %v", addrs)
	}
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}

	devFleet, err := fleet.New(fleet.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(rpDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(rpDeviceID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	cps := make([]*fleet.ControlPoint, rpCPs)
	perShard := make([]int, 2)
	for i := range cps {
		cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID:             rpCPBaseID + ident.NodeID(i),
			Device:         rpDeviceID,
			DeviceAddrPort: dev.Addr(),
			Policy:         &nCyclesPolicy{left: rpCycles},
			Retransmit: core.RetransmitConfig{
				FirstTimeout: 5 * time.Second,
				RetryTimeout: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cps[i] = cp
		perShard[cp.Shard()]++
	}

	deadline := time.Now().Add(30 * time.Second)
	for _, cp := range cps {
		for cp.Stats().CyclesOK < rpCycles {
			if time.Now().After(deadline) {
				snap := cpFleet.Snapshot()
				t.Fatalf("cp %v (shard %d) stuck at %d cycles; totals %+v", cp.ID(), cp.Shard(), cp.Stats().CyclesOK, snap.Total)
			}
			time.Sleep(time.Millisecond)
		}
	}

	snap := cpFleet.Snapshot()
	if want := uint64(rpCPs * rpCycles); snap.Total.RepliesIn < want {
		t.Errorf("RepliesIn=%d, want >= %d", snap.Total.RepliesIn, want)
	}
	// One device socket = one kernel flow = one receiving shard: if both
	// shards host CPs, the other shard's replies must have been strays.
	if perShard[0] > 0 && perShard[1] > 0 && snap.Total.HandoffsIn == 0 {
		t.Errorf("CPs on both shards (%v) but zero handoffs — strays were not routed", perShard)
	}
}
