package fleet_test

// Drain equivalence: migrating a shard's control points mid-run must
// be invisible to everyone who did not move. The same bounded memnet
// scenario runs twice — once undisturbed, once with DrainShard fired
// while cycles are in flight — and the trace.Normalize timelines of
// the control points homed on the surviving shard must be
// byte-identical between the runs. The migrated control points get a
// weaker but still absolute guarantee, checked in both runs: every
// cycle completes, nobody is lost, and the device's final BYE reaches
// every control point — zero false verdicts through the migration.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/trace"
)

const (
	deqCPs      = 16
	deqCycles   = 20
	deqDeviceID = ident.NodeID(7)
	deqBaseID   = ident.NodeID(300)
)

// deqOutcome is one run's comparable residue.
type deqOutcome struct {
	lines map[ident.NodeID]string // Normalize line per CP
	homes map[ident.NodeID]int    // hash-home shard per CP
	moved int
	lost  int64
	byes  int64
}

func runDrainScenario(t *testing.T, drain bool) deqOutcome {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	defer net.Close()
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(deqDeviceID, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(deqDeviceID, env)
	})
	if err != nil {
		t.Fatal(err)
	}

	var lost, byes atomic.Int64
	cpFleet, err := fleet.New(fleet.Config{
		Shards: 2, Transport: transport,
		Verdicts: func(ev fleet.VerdictEvent) {
			switch ev.Kind {
			case fleet.VerdictLost:
				lost.Add(1)
			case fleet.VerdictBye:
				byes.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		t.Fatal(err)
	}

	out := deqOutcome{lines: map[ident.NodeID]string{}, homes: map[ident.NodeID]int{}}
	cps := make([]*fleet.ControlPoint, deqCPs)
	for i := range cps {
		id := deqBaseID + ident.NodeID(i)
		out.homes[id] = cpFleet.HomeShard(id)
		cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
			ID: id, Device: deqDeviceID, DeviceAddrPort: dev.Addr(),
			Policy: &nCyclesPolicy{left: deqCycles},
			// No retransmits on a perfect in-memory network: one probe
			// and one reply per cycle, so both runs put the same event
			// sequence in the flight recorder.
			Retransmit: core.RetransmitConfig{
				FirstTimeout: 30 * time.Second,
				RetryTimeout: 30 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cps[i] = cp
	}

	waitCycles := func(n uint64) {
		deadline := time.Now().Add(30 * time.Second)
		for _, cp := range cps {
			for cp.Stats().CyclesOK < n {
				if time.Now().After(deadline) {
					t.Fatalf("cp %v stuck at %d cycles (drain=%v)", cp.ID(), cp.Stats().CyclesOK, drain)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	if drain {
		// Mid-run, with every CP actively cycling: shard 1's CPs move
		// to shard 0 while probes are in flight.
		waitCycles(deqCycles / 4)
		moved, err := cpFleet.DrainShard(1)
		if err != nil {
			t.Fatal(err)
		}
		if moved == 0 {
			t.Fatal("drain moved nothing — the scenario exercised no migration")
		}
		out.moved = moved
	}
	waitCycles(deqCycles)

	// Graceful leave: the BYE must reach all CPs — including the
	// migrated ones, at their new shard's socket.
	dev.Bye()
	deadline := time.Now().Add(10 * time.Second)
	for byes.Load() < deqCPs {
		if time.Now().After(deadline) {
			t.Fatalf("BYE reached %d/%d CPs (drain=%v)", byes.Load(), deqCPs, drain)
		}
		time.Sleep(time.Millisecond)
	}

	for _, line := range trace.Normalize(cpFleet.FlightSnapshot()) {
		for id := range out.homes {
			if strings.HasPrefix(line, fmt.Sprintf("%v<-%v:", deqDeviceID, id)) {
				out.lines[id] = line
				break
			}
		}
	}
	out.lost, out.byes = lost.Load(), byes.Load()
	return out
}

func TestDrainEquivalence(t *testing.T) {
	baseline := runDrainScenario(t, false)
	drained := runDrainScenario(t, true)

	// Absolute guarantees in both runs: every CP completed all cycles
	// and saw the BYE; nobody was ever declared lost.
	for _, out := range []deqOutcome{baseline, drained} {
		if out.lost != 0 {
			t.Fatalf("false lost verdicts: %d", out.lost)
		}
		if out.byes != deqCPs {
			t.Fatalf("byes = %d, want %d", out.byes, deqCPs)
		}
		if len(out.lines) != deqCPs {
			t.Fatalf("flight recorder holds %d CP timelines, want %d", len(out.lines), deqCPs)
		}
	}
	if drained.moved == 0 || drained.moved >= deqCPs {
		t.Fatalf("drain moved %d of %d CPs — scenario needs a proper split", drained.moved, deqCPs)
	}

	// The untouched CPs — homed on the surviving shard — must have
	// byte-identical normalized timelines across the two runs.
	untouched := 0
	for id, home := range baseline.homes {
		if home != 0 {
			continue
		}
		untouched++
		if baseline.lines[id] != drained.lines[id] {
			t.Errorf("untouched CP %v timeline changed under drain:\n  baseline: %s\n  drained:  %s",
				id, baseline.lines[id], drained.lines[id])
		}
	}
	if untouched == 0 {
		t.Fatal("no CP homed on the surviving shard — nothing was compared")
	}
	t.Logf("moved %d CPs, %d untouched timelines byte-identical", drained.moved, untouched)

	// The migrated CPs still ran every cycle: 20 probe/reply pairs and
	// a closing BYE verdict, wherever the events were recorded.
	for id, home := range drained.homes {
		if home != 1 {
			continue
		}
		line := drained.lines[id]
		if got := strings.Count(line, "probe-sent"); got != deqCycles {
			t.Errorf("migrated CP %v recorded %d probes, want %d: %s", id, got, deqCycles, line)
		}
		if got := strings.Count(line, "reply-matched"); got != deqCycles {
			t.Errorf("migrated CP %v recorded %d replies, want %d: %s", id, got, deqCycles, line)
		}
		if !strings.Contains(line, "verdict-bye") {
			t.Errorf("migrated CP %v missing its BYE verdict: %s", id, line)
		}
	}
}
