// Package fleet is a production-style presence server: it hosts tens of
// thousands of protocol engines (DCPP/SAPP/naive control points, and
// optionally device engines for loopback testing) inside one process on
// a small fixed resource budget.
//
// Where internal/rtnet spends one UDP socket, one reader goroutine and
// one time.Timer per node — right for a phone monitoring one device,
// hopeless for a monitoring aggregation point — the fleet spends them
// per *shard*:
//
//   - N shards (default GOMAXPROCS), each owning exactly one UDP socket
//     and one event-loop goroutine that both reads the socket and runs
//     the timers. Control points fan in to shards by NodeID hash, the
//     same way SO_REUSEPORT spreads flows across acceptor sockets.
//   - A hierarchical hashed timer wheel per shard replaces per-node
//     time.Timers: every engine's single alarm is an intrusive list
//     entry, so arming is O(1) and 100k sleeping control points cost
//     zero goroutines and zero timer-heap pressure.
//   - Shard I/O is batched end to end: a pooled receive-buffer ring is
//     filled by BatchPacketConn.ReadBatch (one recvmmsg syscall per
//     readable burst on Linux) and engine sends coalesce in a send
//     queue that one WriteBatch (sendmmsg) flushes per timer cascade or
//     dispatched burst. Under load a shard pays a small fraction of a
//     syscall per packet instead of one each way.
//   - The hot path does not allocate: frames decode into a flat
//     wire.Frame (no interface boxing), inbound reply payloads reuse
//     shard-owned scratch, encodes append into the send queue's
//     reusable slots, and the engines' messages are pooled.
//     BenchmarkShardHotPath pins 0 allocs/op.
//
// # Batch transport and the portable fallback
//
// The recvmmsg/sendmmsg binding exists on 64-bit Linux
// (transport_linux.go, the production target); every other platform —
// and any Transport whose conns implement only PacketConn — runs the
// same loops through a loop-over-single-datagram adapter
// (transport.go), one packet per call, byte-for-byte the same traffic.
// Config.ForceSingleDatagram selects the adapter explicitly: it is the
// measured baseline for the batching win and the second leg of the
// batch/single equivalence test. Config.Batch sizes the ring and the
// queue; Counters.SyscallsIn/Out expose the realised calls-per-packet
// ratio.
//
// The single-threaded engine contract holds per shard: every engine
// call (packet dispatch, alarm expiry, lifecycle) runs under the
// shard's mutex, so the exact engine code from internal/core runs
// unchanged.
//
// # Reply demultiplexing on a shared socket
//
// Protocol frames carry no destination id — on a per-node socket none
// is needed. A shard therefore routes incoming frames by what they do
// carry:
//
//   - Replies (From = device, Cycle): a pending-probe table keyed by
//     (device, cycle) maps each in-flight probe cycle back to the
//     control point that sent it. Cycle-number spaces are staggered per
//     CP (core.ProberOptions.FirstCycle), so two CPs probing the same
//     device practically never share a live key; the residual collision
//     is detected at insert and counted (Counters.DemuxCollisions).
//   - Byes and announces (From = device): fan out to every hosted CP
//     watching that device.
//   - Probes (From = CP): delivered to the shard's hosted device. Since
//     a probe names only its sender, a shard socket can host at most
//     one device engine; AddDevice places devices on free shards and
//     errors when all are taken. Devices are a loopback-testing
//     convenience — CPs are the scale story.
//
// # Multi-core receive scaling: SO_REUSEPORT and cross-shard handoff
//
// By default every shard binds its own port, and senders address the
// shard that owns their control point — inbound demux is the address.
// Config.ReusePort switches to the multi-core layout: every shard
// socket binds the *same* port with SO_REUSEPORT (Linux), so the
// kernel spreads inbound datagrams across shard sockets by flow hash
// and receive processing fans out across cores with no shared socket
// lock or buffer. The kernel hashes flows, not the fleet's NodeID
// hash, so a frame can land on a shard that does not own its control
// point. Routing closes the gap at O(1) per frame: each control
// point's cycle numbers embed its shard index (the top routeShardBits
// bits of the cycle space, hence Shards <= MaxRoutedShards), a reply's
// owner is read straight out of its echoed cycle number, and a frame
// on the wrong shard is handed off in-process — the decoded frame is
// queued on the owning shard's handoff inbox and its loop is woken by
// a read-deadline poke (Counters.HandoffsOut/HandoffsIn; byes and
// announces fan out by a per-device shard bitmask instead). The
// equivalence test pins that a single socket, distinct ports and a
// shared-address group produce identical protocol outcomes.
//
// # Lock-free stats scraping
//
// Fleet.Snapshot never blocks a shard event loop: every mutating
// critical section republishes its counters into a cache-line-padded
// atomic mirror before unlocking, so a scraper either wins an
// uncontended TryLock (exact values, idle shards park in the socket
// read without holding the mutex) or reads the mirror (at most one
// critical section stale). Monitoring a hot fleet costs the hot path
// nothing.
//
// # Transport seam
//
// A shard does not name *net.UDPConn: it reads and writes through the
// PacketConn interface, opened per shard by a Transport. The default
// transport is kernel UDP sockets bound to Config.ListenAddr — the
// production path, byte-for-byte the behaviour before the seam existed.
// Config.Transport swaps in anything else with the same contract;
// internal/memnet provides a deterministic in-memory network with
// injectable loss, delay, duplication, reordering and partitions, which
// internal/conformance uses to drive these exact shard loops over
// hostile links and diff the outcome against the simulator
// (memnet.ListenGroup emulates the kernel's flow-hash spread
// deterministically for the shared-address layout).
//
// # Telemetry and the flight recorder
//
// Each shard also carries an allocation-free telemetry plane, on by
// default: five cache-line-padded atomic log₂-bucket histograms
// (internal/metrics) — probe RTT, detection latency, cross-shard
// handoff latency, receive-batch fill, timer-cascade duration — whose
// hot-path cost is three uncontended atomic adds per observation (the
// 0 allocs/op gate runs with telemetry on), and a bounded flight
// recorder (internal/trace.Ring) of fixed-size probe-lifecycle events
// (probe sent, reply matched, attempt expired, verdicts, handoffs)
// written under the shard mutex. Fleet.Histograms merges the shards at
// scrape time; Fleet.FlightSnapshot/WriteFlight dump the recorders;
// internal/obs serves both over HTTP (/metrics in Prometheus text
// format, /statusz, /debug/flight). Config.DisableTelemetry and a
// negative Config.FlightRecorder opt out per plane.
//
// # Runtime administration
//
// A running fleet is mutable: AddControlPoint/RemoveControlPoint and
// AddDevice/RemoveDevice work after Start, DrainShard/Rebalance
// migrate control points between shards without losing a pending cycle
// or manufacturing a verdict, and SetConfig pushes versioned runtime
// configuration (hardening toggles, TTLs, admission rates, the
// per-device probe budget that sheds over-budget probes under
// overload). Every mutation executes as a command on the owning
// shard's bounded inbox — same wake path as the handoff inbox, one
// atomic load per loop iteration on the steady state, refusals surface
// as ErrAdmissionRejected. See admin.go for the full design, and
// internal/obs (Config.Admin) for the HTTP spelling of this API.
//
// # Authenticated frames
//
// Config.Auth (AuthConfig) turns on wire v2: every frame the fleet
// sends carries a truncated HMAC-SHA256 tag under a key derived per
// (control point, device) pair from the configured master secret, and
// every received v2 frame is verified before dispatch — keys are
// cached per peer so the hot path signs and verifies without
// allocating. Pushing a new RuntimeConfig.AuthKey through SetConfig
// rotates live: the previous key keeps verifying for a grace period
// (Counters.AuthStaleKey) while senders move to the new epoch. A peer
// that has spoken v2 is pinned to it by a high-water mark, so
// stripping tags or replaying old v1 traffic cannot downgrade an
// authenticated pair (Counters.AuthDowngraded); AuthConfig.Require
// refuses v1 outright. See auth.go for the key hierarchy and the
// verification paths.
package fleet

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/rtnet"
	"presence/internal/trace"
	"presence/internal/wire"
)

// Config assembles a Fleet.
type Config struct {
	// Shards is the number of shards: sockets, event-loop goroutines and
	// timer wheels. Zero means GOMAXPROCS.
	Shards int
	// ListenAddr is the bind address for every shard socket and must
	// leave the port to the kernel (":0") when Shards > 1. Default
	// "127.0.0.1:0".
	ListenAddr string
	// TimerTick is the timer-wheel granularity. Zero means 1 ms.
	TimerTick time.Duration
	// PendingTTL bounds how long an unanswered (device, cycle) demux
	// entry survives before the periodic sweep drops it (entries of
	// completed cycles are removed inline). Zero means 30 s.
	PendingTTL time.Duration
	// MaxPeersPerDevice bounds each hosted device's reply-routing table.
	// Zero means 65536.
	MaxPeersPerDevice int
	// SocketBuffer is the requested kernel read/write buffer size per
	// shard socket, applied best-effort (the OS may clamp it). Zero
	// means 4 MiB; negative leaves the OS default.
	SocketBuffer int
	// Transport supplies the per-shard packet conns. Nil means kernel
	// UDP sockets bound to ListenAddr — the production path. A custom
	// transport (internal/memnet) lets test harnesses drive the same
	// shard loops over a deterministic fake network; ListenAddr and
	// SocketBuffer are ignored when it is set.
	Transport Transport
	// Batch is the most datagrams one transport call moves: the size of
	// each shard's pooled receive ring and coalescing send queue. Zero
	// or negative means 64.
	Batch int
	// ForceSingleDatagram makes every shard use the portable
	// one-datagram-per-call path even when the transport implements
	// BatchPacketConn — the baseline the batching win is measured
	// against, and the fallback leg of batch/single equivalence tests.
	ForceSingleDatagram bool
	// ReusePort binds every shard socket to the *same* port with
	// SO_REUSEPORT (Linux; other platforms and unsupported kernels fall
	// back to the classic one-port-per-shard layout), so inbound load is
	// demultiplexed by the kernel across shard sockets instead of
	// funneling through one. The kernel spreads by flow hash, not by the
	// fleet's NodeID hash, so a reply can land on a shard that does not
	// host its control point; ReusePort therefore also switches the fleet
	// to shard-aware routing: each control point's cycle numbers embed
	// its shard index (top routeShardBits bits of the 32-bit cycle
	// space), and a frame landing on the wrong shard is handed off
	// in-process (Counters.HandoffsOut/HandoffsIn) rather than dropped.
	// Requires Shards <= MaxRoutedShards. When a custom Transport is set,
	// ReusePort still enables shard-aware routing — internal/memnet's
	// ListenGroup emulates the kernel's flow-hash spread deterministically
	// — but socket options are the transport's business.
	ReusePort bool
	// Harden enables the adversarial defenses. The protocol frames are
	// unauthenticated, so an on-path attacker can answer for the dead,
	// say goodbye for the living, or reflect probes off a device; Harden
	// buys back correctness with receiver-local state only — no wire
	// change:
	//
	//   - Reply source pinning: a reply is accepted only from the probed
	//     device's address (Counters.RepliesForged otherwise, pending
	//     entry kept so the genuine reply can still land).
	//   - Replay window: accepted (device, cycle) keys are remembered for
	//     ReplayWindow, telling replayed copies (Counters.RepliesReplayed)
	//     apart from ordinary latecomers (DemuxDrops).
	//   - BYE source pinning + verification grace: a BYE from an address
	//     other than the device's is dropped (Counters.ByesForged), and
	//     even a well-sourced BYE for a healthy device triggers one
	//     verification probe cycle (core.ProberOptions.VerifyBye) instead
	//     of instant removal.
	//   - Per-source probe admission: hosted devices answer each source
	//     at most PerSourceProbeHz with PerSourceBurst slack; the excess
	//     of an amplification flood is shed (Counters.ProbesShed).
	//
	// Off (the default), the runtime behaves exactly as the paper's
	// protocols do — one spoofed frame can flip a verdict.
	Harden bool
	// ReplayWindow bounds how long an accepted (device, cycle) demux key
	// is remembered to classify replayed replies. Zero means 5 s. Only
	// used when Harden is set.
	ReplayWindow time.Duration
	// PerSourceProbeHz and PerSourceBurst parameterise the per-source
	// probe admission token bucket of hosted devices (refill rate in
	// probes/s and bucket depth). Zero means 15 Hz and 20 — above the
	// paper's nominal 10 probes/s total DCPP device load even when one
	// source address carries all of it, so no honest DCPP/SAPP workload
	// is shed; raise both for protocols without device-controlled load
	// pinning (the naive baseline grows linearly with population). Only
	// used when Harden is set.
	PerSourceProbeHz float64
	PerSourceBurst   int
	// PerDeviceProbeHz and PerDeviceBurst parameterise the per-device
	// outgoing-probe budget — the overload-shedding backstop (see
	// RuntimeConfig.PerDeviceProbeHz). Zero disables shedding.
	PerDeviceProbeHz float64
	PerDeviceBurst   int
	// AdmissionQueue bounds each shard's admin-command inbox (see
	// RuntimeConfig.AdmissionQueue). Zero means 1024.
	AdmissionQueue int
	// Auth configures frame authentication (wire v2, HMAC-tagged
	// frames; see AuthConfig and auth.go). The zero value disables it.
	Auth AuthConfig
	// Verdicts, if non-nil, receives every terminal presence verdict
	// (device lost, device bye) any hosted control point reaches. It
	// fires on the shard event loop under the shard mutex — it must be
	// cheap, must not block, and must not call back into the fleet. It
	// is the fleet-wide hook admin consumers use where per-CP Listeners
	// are impractical (control points added over the admin API).
	Verdicts func(VerdictEvent)
	// DisableTelemetry turns off the per-shard latency histograms (probe
	// RTT, detection latency, handoff latency, batch fill, timer-cascade
	// duration — see telemetry.go). Telemetry is on by default: recording
	// a sample is a few uncontended atomic adds with no allocation, pinned
	// inside the 0 allocs/op hot-path gate. The switch exists so
	// probebench can measure exactly what the samples cost.
	DisableTelemetry bool
	// FlightRecorder is the per-shard flight-recorder capacity: how many
	// probe-lifecycle events each shard retains for /debug/flight and
	// SIGQUIT dumps. Zero means 4096; negative disables recording.
	FlightRecorder int
}

func (c *Config) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.TimerTick == 0 {
		c.TimerTick = defaultWheelTick
	}
	if c.PendingTTL == 0 {
		c.PendingTTL = 30 * time.Second
	}
	if c.MaxPeersPerDevice == 0 {
		c.MaxPeersPerDevice = 65536
	}
	if c.SocketBuffer == 0 {
		c.SocketBuffer = 4 << 20
	}
	if c.Batch <= 0 {
		c.Batch = defaultBatch
	}
	if c.ReplayWindow == 0 {
		c.ReplayWindow = 5 * time.Second
	}
	if c.PerSourceProbeHz == 0 {
		c.PerSourceProbeHz = 15
	}
	if c.PerSourceBurst == 0 {
		c.PerSourceBurst = 20
	}
	if c.FlightRecorder == 0 {
		c.FlightRecorder = defaultFlightEvents
	}
}

// defaultBatch is the default transport batch: large enough that a
// loaded shard amortises a syscall over a big burst, small enough that
// the per-shard rings stay a few hundred KiB.
const defaultBatch = 64

// Counters tracks one shard's activity. Cumulative fields only ever
// grow; gauge fields (WheelDepth, ControlPoints, LiveControlPoints,
// PendingProbes) are point-in-time.
type Counters struct {
	PacketsIn    uint64
	PacketsOut   uint64
	DecodeErrors uint64
	// BadFrames counts received frames with a good magic but an
	// unsupported wire version — a subset of DecodeErrors, and the
	// signature of a version flood or a speaker from the future. The
	// decoder returns a static sentinel for these, so the flood costs no
	// allocation.
	BadFrames  uint64
	SendErrors uint64
	// ProbesOut counts probes sent by hosted control points (a subset of
	// PacketsOut; the rest are device replies/byes/announces).
	ProbesOut uint64
	// RepliesIn counts replies demultiplexed to a hosted control point.
	RepliesIn uint64
	// DemuxDrops counts frames that matched no hosted node: replies with
	// no pending probe (duplicates, latecomers), probes on a shard
	// without a device, byes for unwatched devices.
	DemuxDrops uint64
	// DemuxCollisions counts (device, cycle) keys that were claimed by
	// two different live control points — see the package comment.
	DemuxCollisions uint64
	// TimersFired counts timer-wheel expirations delivered to engines.
	TimersFired uint64
	// AttemptMismatches counts replies whose (device, cycle) was pending
	// but whose Attempt named no probe actually sent in that cycle — a
	// forged or corrupted echo. The pending entry is kept. Always on.
	AttemptMismatches uint64
	// RepliesForged counts replies rejected because they arrived from an
	// address other than the probed device's (Harden only).
	RepliesForged uint64
	// ByesForged counts BYE deliveries suppressed because the frame
	// arrived from an address other than the device's (Harden only).
	ByesForged uint64
	// RepliesReplayed counts replies for a (device, cycle) accepted
	// within the last Config.ReplayWindow — replayed copies, as opposed
	// to the never-pending latecomers in DemuxDrops (Harden only).
	RepliesReplayed uint64
	// ProbesShed counts probes to a hosted device dropped by per-source
	// admission (Harden only).
	ProbesShed uint64
	// AuthVerified counts v2 frames whose HMAC tag verified (auth only).
	// AuthStaleKey of them verified under the previous master inside the
	// rotation grace window — a live rotation in progress.
	AuthVerified uint64
	AuthStaleKey uint64
	// AuthRejected counts v2 frames whose tag verified under no accepted
	// key: tampered, forged, or signed with an expired master.
	AuthRejected uint64
	// AuthDowngraded counts unauthenticated v1 frames rejected because
	// the sender had already spoken v2 (the per-device high-water mark)
	// or because AuthConfig.Require closes the v1 window entirely.
	AuthDowngraded uint64
	// HandoffsOut counts frames this shard received but forwarded to the
	// owning shard, and HandoffsIn counts frames received that way. With
	// Config.ReusePort set every shard socket shares one port and the
	// kernel demultiplexes by flow hash, not by the fleet's NodeID hash,
	// so a reply can land on any shard and is handed off in-process to
	// the shard that owns the control point. On unrouted fleets both stay
	// zero until a DrainShard/Rebalance migration: replies of in-flight
	// cycles then chase the old socket and ride the same handoff path to
	// the control point's new shard.
	HandoffsOut uint64
	HandoffsIn  uint64
	// Migrations counts control points migrated INTO this shard by
	// DrainShard/Rebalance.
	Migrations uint64
	// AdmissionRejected counts admin commands refused because this
	// shard's bounded command inbox (RuntimeConfig.AdmissionQueue) was
	// full.
	AdmissionRejected uint64
	// SyscallsIn and SyscallsOut count transport read and write calls.
	// On the batch path one call moves a whole burst (one
	// recvmmsg/sendmmsg syscall on kernel sockets), so
	// PacketsIn/SyscallsIn is the mean receive batch fill; on the
	// single-datagram fallback every packet is its own call and the
	// ratios pin at 1.
	SyscallsIn  uint64
	SyscallsOut uint64

	// WheelDepth is the number of pending timers (gauge).
	WheelDepth int
	// ControlPoints is the number of hosted CPs (gauge).
	ControlPoints int
	// LiveControlPoints is the number of hosted CPs that have not
	// stopped (device lost or bye) (gauge).
	LiveControlPoints int
	// PendingProbes is the size of the demux table (gauge).
	PendingProbes int
	// Devices is 1 when the shard hosts a device engine (gauge).
	Devices int
}

func (c *Counters) add(o Counters) {
	c.PacketsIn += o.PacketsIn
	c.PacketsOut += o.PacketsOut
	c.DecodeErrors += o.DecodeErrors
	c.BadFrames += o.BadFrames
	c.SendErrors += o.SendErrors
	c.ProbesOut += o.ProbesOut
	c.RepliesIn += o.RepliesIn
	c.DemuxDrops += o.DemuxDrops
	c.DemuxCollisions += o.DemuxCollisions
	c.AttemptMismatches += o.AttemptMismatches
	c.RepliesForged += o.RepliesForged
	c.ByesForged += o.ByesForged
	c.RepliesReplayed += o.RepliesReplayed
	c.ProbesShed += o.ProbesShed
	c.AuthVerified += o.AuthVerified
	c.AuthStaleKey += o.AuthStaleKey
	c.AuthRejected += o.AuthRejected
	c.AuthDowngraded += o.AuthDowngraded
	c.HandoffsOut += o.HandoffsOut
	c.HandoffsIn += o.HandoffsIn
	c.Migrations += o.Migrations
	c.AdmissionRejected += o.AdmissionRejected
	c.TimersFired += o.TimersFired
	c.SyscallsIn += o.SyscallsIn
	c.SyscallsOut += o.SyscallsOut
	c.WheelDepth += o.WheelDepth
	c.ControlPoints += o.ControlPoints
	c.LiveControlPoints += o.LiveControlPoints
	c.PendingProbes += o.PendingProbes
	c.Devices += o.Devices
}

// Snapshot is a consistent-per-shard view of the fleet's counters.
type Snapshot struct {
	// At is the fleet uptime when the snapshot was taken.
	At time.Duration
	// Shards holds one Counters per shard.
	Shards []Counters
	// Total is the element-wise sum over Shards.
	Total Counters
}

// Fleet hosts protocol engines across shards. Construct with New, then
// Start, then Add nodes; Close tears everything down.
type Fleet struct {
	cfg   Config
	epoch time.Time

	// route is Config.ReusePort: shard-aware routing is on, cycle numbers
	// embed shard indices, and stray frames ride the handoff path.
	route bool
	// reusePortActive reports whether the kernel SO_REUSEPORT layout is
	// actually in use (Linux default transport only; false under the
	// distinct-port fallback or a custom Transport).
	reusePortActive bool
	// deviceShard is the index of the shard hosting a device engine, -1
	// while none does. Routed fleets use it to hand stray probes to the
	// device's shard; since a routed fleet's shards share one address, it
	// hosts at most one device.
	deviceShard atomic.Int32

	// watchMu guards watchMask: device id → bitmask of shards hosting at
	// least one watcher, read on the bye/announce fan-out path to hand
	// frames to every watching shard. Maintained always (it is cheap and
	// off the packet hot path); consulted when route is set or after a
	// migration has spread a device's watchers off their hash shards.
	watchMu   sync.Mutex
	watchMask map[ident.NodeID]*shardMask

	mu      sync.Mutex // lifecycle
	started bool
	closed  bool

	// adminMu guards the runtime-admin state below — a leaf mutex like
	// watchMu: taken under shard mutexes by register/remove, never held
	// across a shard lock or a runOn (commands take it themselves).
	adminMu sync.Mutex
	// dir maps every hosted control point's id to its node, across
	// shards — the admin plane's id→node directory. The node pointer is
	// stable across migrations (the node's owner pointer moves instead).
	dir map[ident.NodeID]*cpNode
	// devices maps hosted device ids to their nodes (nil value = a
	// placement in flight).
	devices map[ident.NodeID]*deviceNode
	// draining marks shards DrainShard emptied; placeShard skips them
	// until Rebalance clears the marks.
	draining []bool
	// rt and rtVer are the master runtime config and its version; each
	// shard holds its own copy under its mutex (shard.rt).
	rt    RuntimeConfig
	rtVer uint64

	// devMu serialises device placement (AddDevice/RemoveDevice), which
	// spans several shard commands.
	devMu sync.Mutex
	// migMu serialises DrainShard/Rebalance: at most one migration batch
	// exists fleet-wide, making migrateLocked's src→dst mutex nesting
	// safe.
	migMu sync.Mutex
	// migratedAny flips true after the first successful migration and
	// never resets: it gates the unrouted bye/announce watcher fan-out,
	// so fleets that never migrate pay one atomic load per bye and
	// behave bit-identically to the pre-admin runtime.
	migratedAny atomic.Bool
	// admissionBound caches rt.AdmissionQueue for lock-free reads on the
	// command enqueue path.
	admissionBound atomic.Int64

	shards []*shard
	wg     sync.WaitGroup
}

// pendingProbe is one in-flight probe cycle awaiting its reply.
type pendingProbe struct {
	cp *cpNode
	at time.Duration
	// attempts is a bitmask of the attempt numbers actually sent in this
	// cycle: a reply must echo one of them or it is a forgery
	// (Counters.AttemptMismatches).
	attempts uint32
}

// attemptBit maps an attempt number into the pendingProbe bitmask.
// Attempts ≥ 32 never occur (MaxRetransmits is validated far below
// that); returning 0 makes any echo of such a number a mismatch.
func attemptBit(a uint8) uint32 {
	if a >= 32 {
		return 0
	}
	return 1 << a
}

// srcBucket is one source address's probe-admission token bucket
// (Harden only).
type srcBucket struct {
	tokens float64
	last   time.Duration
}

// shard is one socket + event loop + timer wheel + the engines hashed
// onto it.
type shard struct {
	fleet  *Fleet
	index  int
	conn   PacketConn
	bconn  BatchPacketConn // batch view of conn (native or fallback adapter)
	single bool            // fallback adapter in use: per-packet syscall accounting

	// recvRing and recvBufs are the pooled receive ring: recvBufs keeps
	// the full-capacity backing slices, recvRing is re-pointed at them
	// before every ReadBatch. Only the loop goroutine touches them.
	recvRing []Datagram
	recvBufs [][]byte

	mu       sync.Mutex
	wheel    *timerWheel
	cps      map[ident.NodeID]*cpNode
	watchers map[ident.NodeID]map[*cpNode]struct{} // device id → watching CPs
	pending  map[uint64]pendingProbe               // (device, cycle) → awaiting CP
	// completed and sources are Harden-only state (nil otherwise, so the
	// unhardened hot path stays allocation-free): the replay window of
	// accepted demux keys, and the per-source probe-admission buckets.
	completed map[uint64]time.Duration
	sources   map[netip.AddrPort]*srcBucket
	// rt is the shard's copy of the live runtime config, pushed through
	// the command inbox by Fleet.SetConfig; the dispatch/sweep paths read
	// it under the mutex they already hold.
	rt RuntimeConfig
	// forwards redirects replies of migrated in-flight cycles to the
	// control point's new shard (nil until a migration leaves one
	// behind); see forwardEntry.
	forwards map[uint64]forwardEntry
	// devBudget is the per-device outgoing-probe token-bucket table —
	// nil when rt.PerDeviceProbeHz is zero, so the default hot path pays
	// one nil check.
	devBudget map[ident.NodeID]*srcBucket
	// auth is the shard's frame-authentication plane (auth.go): the live
	// master secrets and the key epoch node schedules cache against.
	// devAuth carries per-device broadcast schedules and v2 high-water
	// marks, nil until authentication enables.
	auth     authPlane
	devAuth  map[ident.NodeID]*devAuthState
	device   *deviceNode
	counters Counters
	liveCPs  int
	// sendQ is the coalescing send queue: engine sends encode into
	// reusable slots and one WriteBatch flushes them per timer cascade /
	// receive burst (inBatch true) or before an external caller returns
	// (inBatch false). Guarded by mu, like everything the engines touch.
	sendQ   []Datagram
	inBatch bool
	// scratchSAPP and scratchDCPP are reply-payload scratch: inbound
	// replies hand engines a pointer into the shard instead of boxing a
	// fresh payload per packet. Receivers may read it only until their
	// handler returns — the standard pooled-message contract.
	scratchSAPP core.SAPPReply
	scratchDCPP core.DCPPReply
	sweeper     wheelTimer
	closed      bool

	// ho is the cross-shard handoff inbox (ReusePort routing): frames the
	// kernel's flow hash landed on the wrong shard, queued here by the
	// receiving shard and drained by this shard's loop. See handoff.go.
	ho handoffQueue

	// cmd is the bounded admin-command inbox (admin.go): structural
	// mutations queued by off-loop threads, drained by this shard's loop
	// right before the handoffs, woken by the same read-deadline poke.
	cmd cmdQueue
	// admRejected counts inbox rejects. Incremented off-loop (the loop
	// never sees a rejected command), so it is an atomic read directly
	// into Counters.AdmissionRejected rather than a mirrored field.
	admRejected atomic.Uint64
	// loopStarted tells runOn whether a loop goroutine exists to hand a
	// command to; false before Start and in harnesses that drive the
	// loop themselves, where commands execute inline under mu.
	loopStarted atomic.Bool
	// loopDone closes when the loop goroutine exits, unblocking runOn
	// callers whose queued commands will never run.
	loopDone chan struct{}

	// pub is the published counter mirror Fleet.Snapshot reads without
	// taking mu — padded to keep scrapers off the loop's cache lines.
	pub pubCounters

	// hist is the shard's latency histogram set (telemetry.go), nil when
	// Config.DisableTelemetry. Recorded by the loop, snapshotted by
	// scrapers without the mutex (the cells are padded atomics).
	hist *shardHists
	// rec is the shard's flight recorder, nil when disabled. Written and
	// snapshotted only under mu.
	rec *trace.Ring
}

// maxPoll bounds how long a shard loop sleeps in a read when no timer
// is due sooner: cross-goroutine Adds can schedule an earlier alarm
// while the loop is parked, and this caps how late it can fire.
const maxPoll = 50 * time.Millisecond

// New binds one packet conn per shard (kernel UDP sockets unless
// Config.Transport overrides). The fleet is idle until Start.
func New(cfg Config) (*Fleet, error) {
	cfg.applyDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: Shards %d must be positive", cfg.Shards)
	}
	if cfg.ReusePort && cfg.Shards > MaxRoutedShards {
		return nil, fmt.Errorf("fleet: ReusePort routing supports at most %d shards, got %d", MaxRoutedShards, cfg.Shards)
	}
	if cfg.Auth.KeyFile != "" && len(cfg.Auth.Key) == 0 {
		key, err := LoadAuthKey(cfg.Auth.KeyFile)
		if err != nil {
			return nil, err
		}
		cfg.Auth.Key = key
	}
	reuseActive := false
	transport := cfg.Transport
	if transport == nil {
		addr, err := net.ResolveUDPAddr("udp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("fleet: resolve %q: %w", cfg.ListenAddr, err)
		}
		if cfg.ReusePort && reusePortSupported {
			// One port, Shards sockets: the kernel demultiplexes. A pinned
			// port is fine here — sharing it is the point.
			transport = &reusePortTransport{addr: addr, sndRcv: cfg.SocketBuffer}
			reuseActive = true
		} else {
			if addr.Port != 0 && cfg.Shards > 1 {
				return nil, fmt.Errorf("fleet: ListenAddr %q pins a port; %d shards need \":0\" (or Config.ReusePort on Linux)", cfg.ListenAddr, cfg.Shards)
			}
			transport = udpTransport{addr: addr, sndRcv: cfg.SocketBuffer}
		}
	}
	f := &Fleet{cfg: cfg, epoch: time.Now(), route: cfg.ReusePort, reusePortActive: reuseActive}
	f.deviceShard.Store(-1)
	f.watchMask = make(map[ident.NodeID]*shardMask)
	f.dir = make(map[ident.NodeID]*cpNode)
	f.devices = make(map[ident.NodeID]*deviceNode)
	f.draining = make([]bool, cfg.Shards)
	f.rt = runtimeFromConfig(&cfg)
	if err := f.rt.validate(); err != nil {
		return nil, err
	}
	f.rtVer = 1
	f.admissionBound.Store(int64(f.rt.AdmissionQueue))
	for i := 0; i < cfg.Shards; i++ {
		conn, err := transport.Listen(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		s := &shard{
			fleet:    f,
			index:    i,
			conn:     conn,
			wheel:    newTimerWheel(cfg.TimerTick),
			cps:      make(map[ident.NodeID]*cpNode),
			watchers: make(map[ident.NodeID]map[*cpNode]struct{}),
			pending:  make(map[uint64]pendingProbe),
			recvRing: make([]Datagram, cfg.Batch),
			recvBufs: make([][]byte, cfg.Batch),
			sendQ:    make([]Datagram, 0, cfg.Batch),
			loopDone: make(chan struct{}),
		}
		s.applyConfigLocked(f.rt) // construction: no lock needed yet
		if !cfg.DisableTelemetry {
			s.hist = &shardHists{}
		}
		if cfg.FlightRecorder > 0 {
			s.rec = trace.NewRing(cfg.FlightRecorder)
		}
		s.bconn, s.single = batchConn(conn, cfg.ForceSingleDatagram)
		for j := range s.recvBufs {
			s.recvBufs[j] = make([]byte, recvBufSize)
		}
		s.sweeper.fire = s.sweepPending
		f.shards = append(f.shards, s)
	}
	return f, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// ReusePortActive reports whether the shard sockets actually share one
// port via kernel SO_REUSEPORT. False when Config.ReusePort was not
// set, on platforms without the option (the fleet fell back to distinct
// ports), and under a custom Transport (socket layout is its business).
func (f *Fleet) ReusePortActive() bool { return f.reusePortActive }

// Routed reports whether shard-aware routing (cycle-embedded shard
// indices + cross-shard handoff) is on — true iff Config.ReusePort.
func (f *Fleet) Routed() bool { return f.route }

// Addrs returns each shard socket's bound address, indexed by shard.
func (f *Fleet) Addrs() []netip.AddrPort {
	addrs := make([]netip.AddrPort, len(f.shards))
	for i, s := range f.shards {
		addrs[i] = s.conn.LocalAddrPort()
	}
	return addrs
}

// Uptime returns the offset of the fleet clock (all engine times are
// offsets from the fleet epoch).
func (f *Fleet) Uptime() time.Duration { return time.Since(f.epoch) }

// Start launches the shard event loops. Nodes may be added once the
// fleet is started.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	if f.started {
		return errors.New("fleet: already started")
	}
	f.started = true
	for _, s := range f.shards {
		s.mu.Lock()
		s.wheel.Schedule(&s.sweeper, f.sinceEpoch()+s.rt.PendingTTL/2)
		s.mu.Unlock()
		f.wg.Add(1)
		s.loopStarted.Store(true)
		go s.loop()
	}
	return nil
}

// Close stops every shard loop, closes the sockets and waits for the
// loops to exit. It is idempotent.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var firstErr error
	for _, s := range f.shards {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if err := s.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.wg.Wait()
	return firstErr
}

// Snapshot gathers every shard's counters (each shard is internally
// consistent; shards are gathered one after another) and their sum.
//
// It never blocks on a shard event loop: an idle shard's mutex is free
// (the loop parks in the socket read without holding it), so the exact
// live counters are read and republished; a shard busy dispatching is
// left alone and its published atomic mirror — refreshed every loop
// iteration — is read instead. Stats scraping therefore costs a hot
// shard nothing, and a quiescent fleet always sees exact values.
func (f *Fleet) Snapshot() Snapshot {
	snap := Snapshot{At: f.sinceEpoch(), Shards: make([]Counters, len(f.shards))}
	for i, s := range f.shards {
		var c Counters
		if s.mu.TryLock() {
			s.publishLocked()
			c = s.loadPub()
			s.mu.Unlock()
		} else {
			c = s.loadPub()
		}
		snap.Shards[i] = c
		snap.Total.add(c)
	}
	return snap
}

func (f *Fleet) sinceEpoch() time.Duration { return time.Since(f.epoch) }

// shardFor hashes a node id onto a shard — the fan-in rule.
func (f *Fleet) shardFor(id ident.NodeID) *shard {
	return f.shards[int(mix64(uint64(id))%uint64(len(f.shards)))]
}

// errClosed reports use-after-Close mistakes.
var errClosed = errors.New("fleet: closed")

// mix64 is splitmix64's finalizer: a cheap, well-dispersed hash for
// shard assignment and cycle-space staggering.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// cycleSeed staggers a CP's 32-bit cycle-number space by its id, so
// (device, cycle) demux keys from different CPs on one shard socket
// practically never collide.
func cycleSeed(id ident.NodeID) uint32 {
	return uint32(mix64(uint64(id)*0x9e3779b97f4a7c15 + 1))
}

func pendKey(device ident.NodeID, cycle uint32) uint64 {
	return uint64(device)<<32 | uint64(cycle)
}

// recvBufSize comfortably holds any protocol frame (max 31 bytes) with
// room for oversized junk to be received whole and rejected by the
// decoder rather than truncated into a different decode error.
const recvBufSize = 2048

// loop is the shard's event loop: advance the wheel, fire due alarms,
// flush the sends they coalesced, sleep in a deadline-bounded batch
// read, dispatch the burst, flush again, repeat. It is the shard's
// only goroutine; every engine call it makes runs under the shard
// mutex.
func (s *shard) loop() {
	defer s.fleet.wg.Done()
	defer close(s.loopDone)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := s.fleet.sinceEpoch()
		s.inBatch = true
		if s.cmd.pending.Load() {
			s.drainCommands()
		}
		if s.ho.pending.Load() {
			s.drainHandoffs()
		}
		due := s.wheel.Advance(now)
		for _, d := range due {
			if d.t.gen == d.gen {
				s.counters.TimersFired++
				d.t.fire()
			}
		}
		if s.hist != nil && len(due) > 0 {
			// One cascade = the loop's largest indivisible unit of work;
			// its distribution is the event loop's responsiveness bound.
			s.hist.cascade.Observe(us(s.fleet.sinceEpoch() - now))
		}
		s.inBatch = false
		s.flushSends()
		wait := maxPoll
		if next, ok := s.wheel.NextDeadline(); ok {
			if d := next - s.fleet.sinceEpoch(); d < wait {
				wait = d
			}
		}
		s.publishLocked()
		s.mu.Unlock()
		if wait < 0 {
			// A timer is already due. Do NOT skip the socket: under
			// sustained timer load (tens of thousands of armed CPs fire
			// alarms on almost every tick) skipping would starve reads
			// and overflow the receive buffer. An already-expired
			// deadline turns the batch read into a non-blocking drain of
			// whatever burst is queued, and the next iteration advances
			// the wheel again.
			wait = 0
		}
		s.conn.SetReadDeadline(time.Now().Add(wait)) //nolint:errcheck // fails only when closed
		if s.ho.pending.Load() || s.cmd.pending.Load() {
			// A handoff or admin command arrived between the drain above and
			// the deadline we just set, and its wake-up poke (an
			// already-expired deadline written by the sender) may have been
			// overwritten by that store. Re-expire so the read below returns
			// immediately.
			s.conn.SetReadDeadline(pastDeadline) //nolint:errcheck // fails only when closed
		}
		for round := 0; ; round++ {
			for i := range s.recvRing {
				s.recvRing[i].Buf = s.recvBufs[i]
			}
			n, err := s.bconn.ReadBatch(s.recvRing)
			if err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					break // deadline: timers are due
				}
				return // socket closed (or unrecoverable): shard is done
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.counters.SyscallsIn++
			s.dispatchBatch(s.recvRing[:n])
			s.publishLocked()
			s.mu.Unlock()
			// A full ring means more is probably queued: drain it now
			// (bounded, so timer work cannot rot) rather than after the
			// next timer cascade — one cascade can send hundreds of
			// probes whose replies would otherwise outpace one batch of
			// reads per iteration and overflow the receive buffer. The
			// drain rounds poll with an expired deadline: never blocking,
			// one EAGAIN at most.
			if n < len(s.recvRing) || round >= maxDrainRounds {
				break
			}
			s.conn.SetReadDeadline(pastDeadline) //nolint:errcheck // fails only when closed
		}
	}
}

// maxDrainRounds bounds how many extra full batches one loop iteration
// drains before returning to timer work.
const maxDrainRounds = 8

// pastDeadline is an already-expired read deadline: it turns a batch
// read into a non-blocking poll (the net package uses the same trick
// internally for "aLongTimeAgo").
var pastDeadline = time.Unix(1, 0)

// dispatchBatch decodes and routes one received burst, then flushes
// every send the handlers coalesced. Runs under the shard mutex.
func (s *shard) dispatchBatch(dgs []Datagram) {
	s.counters.PacketsIn += uint64(len(dgs))
	if s.hist != nil {
		s.hist.fill.Observe(uint64(len(dgs)))
	}
	s.inBatch = true
	var f wire.Frame
	for i := range dgs {
		if err := wire.DecodeFrame(dgs[i].Buf, &f); err != nil {
			s.counters.DecodeErrors++
			if err == wire.ErrBadVersion {
				s.counters.BadFrames++
			}
			continue
		}
		s.dispatchFrame(dgs[i].Addr, &f, false)
	}
	s.inBatch = false
	s.flushSends()
}

// dispatchFrame routes one decoded frame to a hosted engine. Inbound
// replies hand engines shard-owned scratch payloads (valid only for
// the handler call, per the pooled-message contract), so steady-state
// dispatch allocates nothing. Runs under the shard mutex.
//
// With ReusePort routing on, a frame may belong to another shard — the
// kernel demultiplexes by flow hash, not NodeID hash — and is then
// queued on the owning shard's handoff inbox instead of being handled
// here. handed marks a frame that already rode that path once: it is
// always handled (or dropped) locally, so no frame loops.
func (s *shard) dispatchFrame(from netip.AddrPort, f *wire.Frame, handed bool) {
	route := s.fleet.route && !handed
	switch f.Kind {
	case wire.KindReplySAPP, wire.KindReplyDCPP, wire.KindReplyEmpty:
		if route {
			// The owning shard's index rides the cycle's top bits (see
			// routedCycleSeed); an index out of range is foreign junk and
			// falls through to the ordinary no-pending-probe accounting.
			if tgt := int(f.Cycle >> routeShardShift); tgt != s.index && tgt < len(s.fleet.shards) {
				s.handoffTo(s.fleet.shards[tgt], from, f)
				return
			}
		}
		key := f.ReplayKey()
		pp, ok := s.pending[key]
		if !ok {
			if !handed {
				if fw, fok := s.forwards[key]; fok {
					// The cycle's control point migrated away with the probe
					// still in flight; the reply chased the old socket. Hand
					// it to the new shard like a ReusePort stray. (handed
					// frames never re-forward, so a stale breadcrumb cannot
					// bounce a frame between shards.)
					s.handoffTo(fw.to, from, f)
					return
				}
			}
			if _, replayed := s.completed[key]; replayed {
				// The key was accepted within the replay window: a
				// replayed copy, not an ordinary latecomer.
				s.counters.RepliesReplayed++
			} else {
				s.counters.DemuxDrops++
			}
			return
		}
		if s.auth.enabled && !s.authCheckReply(pp.cp, f) {
			// Bad or missing tag (or a v1 downgrade). The pending entry is
			// kept: the genuine reply may still be on the wire, so a
			// forgery cannot starve the cycle into a false verdict.
			return
		}
		if pp.attempts&attemptBit(f.Attempt) == 0 {
			// (device, cycle) is pending but this attempt number was
			// never sent: a forged echo. Keep the entry — the genuine
			// reply may still be on the wire.
			s.counters.AttemptMismatches++
			return
		}
		if s.rt.Harden && from != pp.cp.deviceAddr {
			// Right key, wrong source: someone answering for the device.
			// Keep the entry for the genuine reply.
			s.counters.RepliesForged++
			return
		}
		delete(s.pending, key)
		if s.completed != nil || s.hist != nil || s.rec != nil {
			now := s.fleet.sinceEpoch()
			if s.completed != nil {
				s.completed[key] = now
			}
			if s.hist != nil {
				// RTT from the cycle's first attempt (pp.at survives
				// retransmits), the latency the prober's timeout races.
				s.hist.rtt.Observe(us(now - pp.at))
			}
			if s.rec != nil {
				s.rec.Record(trace.Event{At: now, Kind: trace.EvReplyMatched,
					Device: f.From, CP: pp.cp.id, Cycle: f.Cycle, Attempt: f.Attempt})
			}
		}
		s.counters.RepliesIn++
		m := core.ReplyMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt}
		switch f.Kind {
		case wire.KindReplySAPP:
			s.scratchSAPP = core.SAPPReply{ProbeCount: f.ProbeCount, LastProbers: f.LastProbers}
			m.Payload = &s.scratchSAPP
		case wire.KindReplyDCPP:
			s.scratchDCPP = core.DCPPReply{Wait: f.Wait}
			m.Payload = &s.scratchDCPP
		default:
			m.Payload = core.EmptyReply{}
		}
		pp.cp.prober.OnReply(m)
	case wire.KindProbe:
		if s.device == nil {
			if route {
				if ds := s.fleet.deviceShard.Load(); ds >= 0 && int(ds) != s.index {
					s.handoffTo(s.fleet.shards[ds], from, f)
					return
				}
			}
			s.counters.DemuxDrops++
			return
		}
		if s.sources != nil && !s.admitProbe(from) {
			s.counters.ProbesShed++
			return
		}
		if s.auth.enabled && !s.authCheckProbe(f) {
			// Verify before the peer table sees the claimed sender id, so
			// a forged probe cannot poison reply routing.
			return
		}
		s.device.peers.Note(f.From, from)
		s.device.engine.OnProbe(f.From, core.ProbeMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt})
	case wire.KindBye:
		if s.auth.enabled {
			st := s.broadcastAuthFor(f.From)
			if st == nil {
				s.counters.DemuxDrops++ // unwatched device, same as pre-auth
				return
			}
			if !s.authCheckBroadcast(st, f) {
				return
			}
		}
		ws := s.watchers[f.From]
		fanned := false
		if route || (!handed && s.fleet.migratedAny.Load()) {
			// Watchers of one device spread across shards — by NodeID hash
			// under ReusePort routing, or after a migration moved some off
			// their hash shard (a device's peer table keeps the old shard's
			// source address, so its BYE arrives there); hand a copy to
			// every other shard with at least one. Duplicate deliveries are
			// harmless: stopped probers ignore BYEs.
			fanned = s.fanOutToWatchers(from, f)
		}
		if len(ws) == 0 {
			if !fanned {
				s.counters.DemuxDrops++
			}
			return
		}
		harden := s.rt.Harden
		for cp := range ws {
			if harden && from != cp.deviceAddr {
				// A BYE claiming the device but sent from elsewhere.
				s.counters.ByesForged++
				continue
			}
			cp.prober.OnBye(core.ByeMsg{From: f.From})
		}
	case wire.KindAnnounce:
		if s.auth.enabled {
			st := s.broadcastAuthFor(f.From)
			if st == nil {
				s.counters.DemuxDrops++
				return
			}
			if !s.authCheckBroadcast(st, f) {
				return
			}
		}
		ws := s.watchers[f.From]
		fanned := false
		if route || (!handed && s.fleet.migratedAny.Load()) {
			fanned = s.fanOutToWatchers(from, f)
		}
		if len(ws) == 0 {
			if !fanned {
				s.counters.DemuxDrops++
			}
			return
		}
		for cp := range ws {
			if cp.onAnnounce != nil {
				cp.onAnnounce(core.AnnounceMsg{From: f.From, MaxAge: f.MaxAge})
			}
		}
	default:
		s.counters.DemuxDrops++
	}
}

// notePending registers a probe attempt in the demux table: the first
// attempt of a cycle claims the (device, cycle) key, retransmits widen
// the entry's acceptable-attempt bitmask. now is the caller's clock
// read (cpNode.Send shares one read between the demux entry and the
// flight recorder). Runs under the shard mutex.
func (s *shard) notePending(n *cpNode, cycle uint32, attempt uint8, now time.Duration) {
	key := pendKey(n.device, cycle)
	if n.lastCycle != cycle {
		// The previous cycle can no longer complete (the prober moved
		// on); drop its entry if we still own it.
		oldKey := pendKey(n.device, n.lastCycle)
		if old, ok := s.pending[oldKey]; ok && old.cp == n {
			delete(s.pending, oldKey)
		}
		n.lastCycle = cycle
	} else if pp, ok := s.pending[key]; ok && pp.cp == n {
		// Retransmit of the in-flight cycle: widen the attempt set, keep
		// the original registration time.
		pp.attempts |= attemptBit(attempt)
		s.pending[key] = pp
		return
	}
	if old, ok := s.pending[key]; ok && old.cp != n {
		s.counters.DemuxCollisions++
	}
	s.pending[key] = pendingProbe{cp: n, at: now, attempts: attemptBit(attempt)}
}

// admitProbe charges one probe from the source's token bucket,
// creating the bucket on first contact. Runs under the shard mutex;
// Harden only (s.sources is non-nil).
func (s *shard) admitProbe(from netip.AddrPort) bool {
	now := s.fleet.sinceEpoch()
	b := s.sources[from]
	if b == nil {
		b = &srcBucket{tokens: float64(s.rt.PerSourceBurst), last: now}
		s.sources[from] = b
	}
	b.tokens += (now - b.last).Seconds() * s.rt.PerSourceProbeHz
	if max := float64(s.rt.PerSourceBurst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepPending drops demux entries whose cycle can no longer complete
// (stopped CPs, lost replies), expires the replay window, idle
// admission and device-budget buckets and stale migration forwards,
// and re-arms itself. Runs on the shard loop under the mutex.
func (s *shard) sweepPending() {
	now := s.fleet.sinceEpoch()
	ttl := s.rt.PendingTTL
	for key, pp := range s.pending {
		if now-pp.at > ttl {
			delete(s.pending, key)
		}
	}
	if s.completed != nil {
		window := s.rt.ReplayWindow
		for key, at := range s.completed {
			if now-at > window {
				delete(s.completed, key)
			}
		}
	}
	if s.sources != nil {
		// A bucket untouched for long enough to be full again carries no
		// information; drop it so the table tracks active sources only.
		idle := time.Duration(float64(s.rt.PerSourceBurst)/s.rt.PerSourceProbeHz*float64(time.Second)) + ttl
		for addr, b := range s.sources {
			if now-b.last > idle {
				delete(s.sources, addr)
			}
		}
	}
	if s.devBudget != nil {
		idle := time.Duration(float64(s.rt.PerDeviceBurst)/s.rt.PerDeviceProbeHz*float64(time.Second)) + ttl
		for id, b := range s.devBudget {
			if now-b.last > idle {
				delete(s.devBudget, id)
			}
		}
	}
	if s.forwards != nil {
		// A forward older than the pending TTL redirects a cycle that can
		// no longer complete anywhere.
		for key, fw := range s.forwards {
			if now-fw.at > ttl {
				delete(s.forwards, key)
			}
		}
	}
	if s.devAuth != nil {
		s.sweepAuthLocked()
	}
	s.wheel.Schedule(&s.sweeper, now+ttl/2)
}

// sendTo encodes msg into the next reusable slot of the shard's
// coalescing send queue — signed (wire v2) when k is non-nil,
// unauthenticated v1 otherwise. Pooled messages are recycled. Inside a
// loop batch (timer cascade, receive burst, Bye/Announce fan-out) the
// queue flushes once at the end of the batch; on any other path it
// flushes before the caller returns, so external sends are never
// parked behind a sleeping event loop. Runs under the shard mutex.
func (s *shard) sendTo(addr netip.AddrPort, msg core.Message, k *wire.AuthKey) {
	defer core.Recycle(msg)
	if len(s.sendQ) == cap(s.sendQ) {
		s.flushSends()
	}
	i := len(s.sendQ)
	s.sendQ = s.sendQ[:i+1]
	d := &s.sendQ[i]
	if d.Buf == nil {
		d.Buf = make([]byte, 0, wire.MaxFrameSize)
	}
	var frame []byte
	var err error
	if k != nil {
		frame, err = wire.AppendEncodeAuth(d.Buf[:0], msg, k)
	} else {
		frame, err = wire.AppendEncode(d.Buf[:0], msg)
	}
	if err != nil {
		s.sendQ = s.sendQ[:i]
		s.counters.SendErrors++
		return
	}
	d.Buf = frame
	d.Addr = addr
	if !s.inBatch {
		s.flushSends()
	}
}

// flushSends transmits the queued datagrams in order: one WriteBatch
// call (one sendmmsg) moves the whole queue on the batch path, while
// the single-datagram fallback pays one write per packet. A datagram
// the transport rejects is counted and skipped. Runs under the shard
// mutex.
func (s *shard) flushSends() {
	q := s.sendQ
	for off := 0; off < len(q); {
		n, err := s.bconn.WriteBatch(q[off:])
		if s.single {
			s.counters.SyscallsOut += uint64(n)
			if err != nil {
				s.counters.SyscallsOut++ // the failed write was a call too
			}
		} else {
			s.counters.SyscallsOut++
		}
		s.counters.PacketsOut += uint64(n)
		off += n
		if err != nil {
			s.counters.SendErrors++
			off++ // skip the datagram the error refers to
		} else if n == 0 {
			break // defensive: a conforming impl never returns (0, nil)
		}
	}
	s.sendQ = s.sendQ[:0]
}

// DeviceBuilder constructs a device engine against the fleet's Env —
// the same builder signature the single-node runtime uses.
type DeviceBuilder = rtnet.DeviceBuilder
