package fleet

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/rtnet"
	"presence/internal/trace"
)

// CPConfig configures a fleet-hosted control point.
type CPConfig struct {
	// ID is this CP's node id; it picks the shard (by hash) and the
	// cycle-number space (see the package comment).
	ID ident.NodeID
	// Device is the monitored device's node id.
	Device ident.NodeID
	// DeviceAddr is the device's UDP address, e.g. "127.0.0.1:9300".
	// Ignored when DeviceAddrPort is set — resolve once when adding
	// thousands of CPs against the same device.
	DeviceAddr string
	// DeviceAddrPort is the pre-resolved device address.
	DeviceAddrPort netip.AddrPort
	// Policy chooses the inter-cycle delay (sapp.Policy, dcpp.Policy or
	// naive.Policy). Required; not shared with any other CP.
	Policy core.DelayPolicy
	// Listener observes presence events. Optional. It runs on the shard
	// event loop under the shard mutex: it must be cheap, must not
	// block, and must not call back into the fleet.
	Listener core.Listener
	// Retransmit parameterises the probe cycle. Zero value = paper
	// defaults.
	Retransmit core.RetransmitConfig
	// OnAnnounce, if non-nil, receives device presence announcements
	// under the same constraints as Listener.
	OnAnnounce func(m core.AnnounceMsg)
}

// cpNode is a hosted control point: the prober engine plus its alarm
// slot and demux state. It implements core.Env; every method runs under
// the owning shard's mutex.
type cpNode struct {
	shard      *shard
	id         ident.NodeID
	device     ident.NodeID
	deviceAddr netip.AddrPort
	prober     *core.Prober
	timer      wheelTimer
	onAnnounce func(core.AnnounceMsg)
	lastCycle  uint32 // cycle currently claimed in the demux table
	stopped    bool
	removed    bool
}

var _ core.Env = (*cpNode)(nil)

// Now implements core.Env on the fleet's shared monotonic clock.
func (n *cpNode) Now() time.Duration { return n.shard.fleet.sinceEpoch() }

// Send transmits to the CP's device, registering outgoing probes in the
// shard's demux table so the reply finds its way back.
func (n *cpNode) Send(_ ident.NodeID, msg core.Message) {
	switch m := msg.(type) {
	case *core.ProbeMsg:
		n.noteProbe(m.Cycle, m.Attempt)
	case core.ProbeMsg:
		n.noteProbe(m.Cycle, m.Attempt)
	}
	n.shard.sendTo(n.deviceAddr, msg)
}

// noteProbe does the bookkeeping of one outgoing probe: the demux
// entry, the probe counter, and the flight-recorder events. A
// retransmit (attempt > 0) implies the previous attempt of the same
// cycle expired unanswered — the prober does not surface that
// transition, so the recorder derives it here.
func (n *cpNode) noteProbe(cycle uint32, attempt uint8) {
	s := n.shard
	now := s.fleet.sinceEpoch()
	s.notePending(n, cycle, attempt, now)
	s.counters.ProbesOut++
	if s.rec != nil {
		if attempt > 0 {
			s.rec.Record(trace.Event{At: now, Kind: trace.EvAttemptExpired,
				Device: n.device, CP: n.id, Cycle: cycle, Attempt: attempt - 1})
		}
		s.rec.Record(trace.Event{At: now, Kind: trace.EvProbeSent,
			Device: n.device, CP: n.id, Cycle: cycle, Attempt: attempt})
	}
}

// SetAlarm implements core.Env on the shard's timer wheel.
func (n *cpNode) SetAlarm(at time.Duration) { n.shard.wheel.Schedule(&n.timer, at) }

// StopAlarm implements core.Env.
func (n *cpNode) StopAlarm() { n.shard.wheel.Cancel(&n.timer) }

// cpListener wraps the user listener to maintain the shard's live-CP
// gauge. It runs under the shard mutex like any engine callback.
type cpListener struct {
	n     *cpNode
	inner core.Listener
}

func (l cpListener) DeviceAlive(d ident.NodeID, res core.CycleResult) {
	l.inner.DeviceAlive(d, res)
}

func (l cpListener) DeviceLost(d ident.NodeID, at time.Duration) {
	n := l.n
	s := n.shard
	if s.hist != nil {
		// Detection latency as the prober observes it: first probe of the
		// failing cycle → verdict. The pending entry for the CP's current
		// cycle still holds that first-probe time when the verdict fires.
		if pp, ok := s.pending[pendKey(n.device, n.lastCycle)]; ok && pp.cp == n {
			s.hist.detect.Observe(us(at - pp.at))
		}
	}
	if s.rec != nil {
		s.rec.Record(trace.Event{At: at, Kind: trace.EvVerdictLost,
			Device: n.device, CP: n.id, Cycle: n.lastCycle})
	}
	n.markStopped()
	l.inner.DeviceLost(d, at)
}

func (l cpListener) DeviceBye(d ident.NodeID, at time.Duration) {
	n := l.n
	if s := n.shard; s.rec != nil {
		s.rec.Record(trace.Event{At: at, Kind: trace.EvVerdictBye,
			Device: n.device, CP: n.id, Cycle: n.lastCycle})
	}
	n.markStopped()
	l.inner.DeviceBye(d, at)
}

func (n *cpNode) markStopped() {
	if !n.stopped {
		n.stopped = true
		n.shard.liveCPs--
	}
}

// AddControlPoint hosts a new control point and starts it probing
// immediately. The fleet must be started.
func (f *Fleet) AddControlPoint(cfg CPConfig) (*ControlPoint, error) {
	if !cfg.ID.Valid() {
		return nil, errors.New("fleet: control point needs a valid id")
	}
	if !cfg.Device.Valid() {
		return nil, errors.New("fleet: control point needs a valid device id")
	}
	if cfg.Policy == nil {
		return nil, errors.New("fleet: control point needs a delay policy")
	}
	addr := cfg.DeviceAddrPort
	if !addr.IsValid() {
		var err error
		if addr, err = rtnet.ResolveUDPAddrPort(cfg.DeviceAddr); err != nil {
			return nil, err
		}
	}
	f.mu.Lock()
	started, closed := f.started, f.closed
	f.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	if !started {
		return nil, errors.New("fleet: Start before adding nodes")
	}
	s := f.shardFor(cfg.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	if _, dup := s.cps[cfg.ID]; dup {
		return nil, fmt.Errorf("fleet: control point %v already hosted", cfg.ID)
	}
	n := &cpNode{
		shard:      s,
		id:         cfg.ID,
		device:     cfg.Device,
		deviceAddr: addr,
		onAnnounce: cfg.OnAnnounce,
	}
	seed := cycleSeed(cfg.ID)
	if f.route {
		// ReusePort routing: the cycle's top bits name the owning shard so
		// any shard can route this CP's replies home with one shift.
		seed = routedCycleSeed(seed, s.index)
	}
	n.lastCycle = seed
	inner := cfg.Listener
	if inner == nil {
		inner = core.NopListener{}
	}
	prober, err := core.NewProber(core.ProberOptions{
		ID:         cfg.ID,
		Device:     cfg.Device,
		Env:        n,
		Policy:     cfg.Policy,
		Listener:   cpListener{n: n, inner: inner},
		Retransmit: cfg.Retransmit,
		FirstCycle: seed,
		VerifyBye:  f.cfg.Harden,
	})
	if err != nil {
		return nil, err
	}
	n.prober = prober
	n.timer.fire = prober.OnAlarm
	s.cps[cfg.ID] = n
	w := s.watchers[cfg.Device]
	if w == nil {
		w = make(map[*cpNode]struct{})
		s.watchers[cfg.Device] = w
	}
	w[n] = struct{}{}
	if f.route {
		f.noteWatcher(cfg.Device, s.index)
	}
	s.liveCPs++
	prober.Start()
	s.publishLocked()
	return &ControlPoint{n: n}, nil
}

// ControlPoint is the handle to a fleet-hosted control point. Its
// methods serialise against the shard event loop.
type ControlPoint struct {
	n *cpNode
}

// ID returns the control point's node id.
func (cp *ControlPoint) ID() ident.NodeID { return cp.n.id }

// Device returns the monitored device's node id.
func (cp *ControlPoint) Device() ident.NodeID { return cp.n.device }

// Shard returns the index of the shard hosting this CP.
func (cp *ControlPoint) Shard() int { return cp.n.shard.index }

// Stats returns the prober's cycle counters.
func (cp *ControlPoint) Stats() core.ProberStats {
	s := cp.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	return cp.n.prober.Stats()
}

// Stopped reports whether the prober has stopped (device lost or bye).
func (cp *ControlPoint) Stopped() bool {
	s := cp.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	return cp.n.prober.Stopped()
}

// Restart resumes probing after the prober stopped.
func (cp *ControlPoint) Restart() error {
	s := cp.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if cp.n.removed {
		return errors.New("fleet: control point removed")
	}
	if cp.n.stopped {
		cp.n.stopped = false
		s.liveCPs++
	}
	cp.n.prober.Start()
	s.publishLocked()
	return nil
}

// Remove stops the control point and unhooks it from the fleet. It is
// idempotent; the handle is dead afterwards.
func (cp *ControlPoint) Remove() {
	n := cp.n
	s := n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if n.removed {
		return
	}
	n.removed = true
	n.prober.Stop() // cancels the wheel alarm via StopAlarm
	if !n.stopped {
		n.stopped = true
		s.liveCPs--
	}
	delete(s.cps, n.id)
	if w := s.watchers[n.device]; w != nil {
		delete(w, n)
		if len(w) == 0 {
			delete(s.watchers, n.device)
			if s.fleet.route {
				s.fleet.dropWatcher(n.device, s.index)
			}
		}
	}
	key := pendKey(n.device, n.lastCycle)
	if old, ok := s.pending[key]; ok && old.cp == n {
		delete(s.pending, key)
	}
	s.publishLocked()
}

// deviceNode is a hosted device engine. It implements core.Env; every
// method runs under the owning shard's mutex.
type deviceNode struct {
	shard  *shard
	id     ident.NodeID
	engine core.Device
	peers  *rtnet.PeerTable
	timer  wheelTimer
}

var _ core.Env = (*deviceNode)(nil)

// Now implements core.Env.
func (n *deviceNode) Now() time.Duration { return n.shard.fleet.sinceEpoch() }

// Send routes a message to a peer the device has heard from.
func (n *deviceNode) Send(to ident.NodeID, msg core.Message) {
	addr, ok := n.peers.Lookup(to)
	if !ok {
		n.shard.counters.SendErrors++
		core.Recycle(msg)
		return
	}
	n.shard.sendTo(addr, msg)
}

// SetAlarm implements core.Env on the shard's timer wheel.
func (n *deviceNode) SetAlarm(at time.Duration) { n.shard.wheel.Schedule(&n.timer, at) }

// StopAlarm implements core.Env.
func (n *deviceNode) StopAlarm() { n.shard.wheel.Cancel(&n.timer) }

// AddDevice hosts a device engine for loopback testing, on the first
// shard without one. Probes carry only their sender's id, so one shard
// socket can demultiplex to at most one device engine: a fleet hosts at
// most Shards devices. The fleet must be started.
func (f *Fleet) AddDevice(id ident.NodeID, build DeviceBuilder) (*Device, error) {
	if !id.Valid() {
		return nil, errors.New("fleet: device needs a valid id")
	}
	if build == nil {
		return nil, errors.New("fleet: device needs an engine builder")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errClosed
	}
	if !f.started {
		return nil, errors.New("fleet: Start before adding nodes")
	}
	if f.route && f.deviceShard.Load() >= 0 {
		// Every routed shard socket shares one address, so a second device
		// engine could never be told apart by its probers.
		return nil, errors.New("fleet: a ReusePort fleet shares one address across shards and hosts at most one device")
	}
	for _, s := range f.shards {
		s.mu.Lock()
		if s.device != nil || s.closed {
			s.mu.Unlock()
			continue
		}
		n := &deviceNode{
			shard: s,
			id:    id,
			peers: rtnet.NewPeerTable(f.cfg.MaxPeersPerDevice),
		}
		engine, err := build(n)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		n.engine = engine
		n.timer.fire = engine.OnAlarm
		s.device = n
		f.deviceShard.CompareAndSwap(-1, int32(s.index))
		engine.Start()
		s.publishLocked()
		s.mu.Unlock()
		return &Device{n: n}, nil
	}
	return nil, fmt.Errorf("fleet: all %d shard sockets already host a device (frames carry no destination id; grow Shards or run a second fleet)", len(f.shards))
}

// Device is the handle to a fleet-hosted device engine.
type Device struct {
	n *deviceNode
}

// ID returns the device's node id.
func (d *Device) ID() ident.NodeID { return d.n.id }

// Addr returns the transport address control points should probe.
func (d *Device) Addr() netip.AddrPort {
	return d.n.shard.conn.LocalAddrPort()
}

// Peers returns the number of distinct control points the device has
// heard from.
func (d *Device) Peers() int {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.n.peers.Len()
}

// Bye announces a graceful leave to every known peer, coalescing the
// fan-out into batched transport writes.
func (d *Device) Bye() {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inBatch = true
	d.n.peers.Each(func(_ ident.NodeID, addr netip.AddrPort) {
		s.sendTo(addr, core.ByeMsg{From: d.n.id})
	})
	s.inBatch = false
	s.flushSends()
	s.publishLocked()
}

// Announce sends a presence announcement to every known peer,
// coalescing the fan-out into batched transport writes.
func (d *Device) Announce(maxAge time.Duration) {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inBatch = true
	d.n.peers.Each(func(_ ident.NodeID, addr netip.AddrPort) {
		s.sendTo(addr, core.AnnounceMsg{From: d.n.id, MaxAge: maxAge})
	})
	s.inBatch = false
	s.flushSends()
	s.publishLocked()
}
