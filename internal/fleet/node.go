package fleet

import (
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/rtnet"
	"presence/internal/trace"
	"presence/internal/wire"
)

// CPConfig configures a fleet-hosted control point.
type CPConfig struct {
	// ID is this CP's node id; it picks the shard (by hash) and the
	// cycle-number space (see the package comment).
	ID ident.NodeID
	// Device is the monitored device's node id.
	Device ident.NodeID
	// DeviceAddr is the device's UDP address, e.g. "127.0.0.1:9300".
	// Ignored when DeviceAddrPort is set — resolve once when adding
	// thousands of CPs against the same device.
	DeviceAddr string
	// DeviceAddrPort is the pre-resolved device address.
	DeviceAddrPort netip.AddrPort
	// Policy chooses the inter-cycle delay (sapp.Policy, dcpp.Policy or
	// naive.Policy). Required; not shared with any other CP.
	Policy core.DelayPolicy
	// Listener observes presence events. Optional. It runs on the shard
	// event loop under the shard mutex: it must be cheap, must not
	// block, and must not call back into the fleet.
	Listener core.Listener
	// Retransmit parameterises the probe cycle. Zero value = paper
	// defaults.
	Retransmit core.RetransmitConfig
	// OnAnnounce, if non-nil, receives device presence announcements
	// under the same constraints as Listener.
	OnAnnounce func(m core.AnnounceMsg)
}

// cpNode is a hosted control point: the prober engine plus its alarm
// slot and demux state. It implements core.Env; every method runs under
// the owning shard's mutex.
type cpNode struct {
	// owner is the shard currently hosting the node. It moves only
	// during a DrainShard/Rebalance migration, written under the old
	// shard's mutex with the new shard's also held; engine callbacks
	// always see the shard whose mutex they run under.
	owner      atomic.Pointer[shard]
	id         ident.NodeID
	device     ident.NodeID
	deviceAddr netip.AddrPort
	prober     *core.Prober
	timer      wheelTimer
	onAnnounce func(core.AnnounceMsg)
	lastCycle  uint32 // cycle currently claimed in the demux table
	stopped    bool
	removed    bool

	// Pair-key schedules for the (this CP, device) relationship, derived
	// lazily against the owning shard's key epoch (auth.go); devAuth
	// points at the shard's per-device auth state so the reply path sets
	// the v2 high-water mark without a map lookup. All nil while
	// authentication is off.
	authEpoch uint64
	authCur   *wire.AuthKey
	authPrev  *wire.AuthKey
	devAuth   *devAuthState
}

var _ core.Env = (*cpNode)(nil)

// sh returns the shard currently owning this node.
func (n *cpNode) sh() *shard { return n.owner.Load() }

// lockShard locks and returns the owning shard, retrying when a
// migration moved the node between the load and the lock (the pointer
// is rewritten under the old shard's mutex, so holding the lock and
// re-reading it is a consistent check).
func (n *cpNode) lockShard() *shard {
	for {
		s := n.sh()
		s.mu.Lock()
		if n.sh() == s {
			return s
		}
		s.mu.Unlock()
	}
}

// Now implements core.Env on the fleet's shared monotonic clock.
func (n *cpNode) Now() time.Duration { return n.sh().fleet.sinceEpoch() }

// Send transmits to the CP's device, registering outgoing probes in the
// shard's demux table so the reply finds its way back. Probes over the
// per-device budget (RuntimeConfig.PerDeviceProbeHz) are shed before
// the wire: the prober sees the cycle exactly as if the probe were
// lost, so overload degrades to slower detection instead of amplified
// probe load.
func (n *cpNode) Send(_ ident.NodeID, msg core.Message) {
	s := n.sh()
	var cycle uint32
	var attempt uint8
	probe := false
	switch m := msg.(type) {
	case *core.ProbeMsg:
		cycle, attempt, probe = m.Cycle, m.Attempt, true
	case core.ProbeMsg:
		cycle, attempt, probe = m.Cycle, m.Attempt, true
	}
	if probe {
		if s.devBudget != nil && !s.admitDeviceProbe(n.device) {
			s.counters.ProbesShed++
			core.Recycle(msg)
			return
		}
		n.noteProbe(s, cycle, attempt)
	}
	var k *wire.AuthKey
	if s.auth.enabled {
		s.ensureCPAuth(n)
		k = n.authCur
	}
	s.sendTo(n.deviceAddr, msg, k)
}

// noteProbe does the bookkeeping of one outgoing probe: the demux
// entry, the probe counter, and the flight-recorder events. A
// retransmit (attempt > 0) implies the previous attempt of the same
// cycle expired unanswered — the prober does not surface that
// transition, so the recorder derives it here.
func (n *cpNode) noteProbe(s *shard, cycle uint32, attempt uint8) {
	now := s.fleet.sinceEpoch()
	s.notePending(n, cycle, attempt, now)
	s.counters.ProbesOut++
	if s.rec != nil {
		if attempt > 0 {
			s.rec.Record(trace.Event{At: now, Kind: trace.EvAttemptExpired,
				Device: n.device, CP: n.id, Cycle: cycle, Attempt: attempt - 1})
		}
		s.rec.Record(trace.Event{At: now, Kind: trace.EvProbeSent,
			Device: n.device, CP: n.id, Cycle: cycle, Attempt: attempt})
	}
}

// SetAlarm implements core.Env on the shard's timer wheel.
func (n *cpNode) SetAlarm(at time.Duration) { n.sh().wheel.Schedule(&n.timer, at) }

// StopAlarm implements core.Env.
func (n *cpNode) StopAlarm() { n.sh().wheel.Cancel(&n.timer) }

// cpListener wraps the user listener to maintain the shard's live-CP
// gauge and deliver the fleet-wide verdict hook. It runs under the
// shard mutex like any engine callback.
type cpListener struct {
	n     *cpNode
	inner core.Listener
}

func (l cpListener) DeviceAlive(d ident.NodeID, res core.CycleResult) {
	l.inner.DeviceAlive(d, res)
}

func (l cpListener) DeviceLost(d ident.NodeID, at time.Duration) {
	n := l.n
	s := n.sh()
	if s.hist != nil {
		// Detection latency as the prober observes it: first probe of the
		// failing cycle → verdict. The pending entry for the CP's current
		// cycle still holds that first-probe time when the verdict fires.
		if pp, ok := s.pending[pendKey(n.device, n.lastCycle)]; ok && pp.cp == n {
			s.hist.detect.Observe(us(at - pp.at))
		}
	}
	if s.rec != nil {
		s.rec.Record(trace.Event{At: at, Kind: trace.EvVerdictLost,
			Device: n.device, CP: n.id, Cycle: n.lastCycle})
	}
	n.markStopped()
	if h := s.fleet.cfg.Verdicts; h != nil {
		h(VerdictEvent{CP: n.id, Device: n.device, Kind: VerdictLost, At: at})
	}
	l.inner.DeviceLost(d, at)
}

func (l cpListener) DeviceBye(d ident.NodeID, at time.Duration) {
	n := l.n
	s := n.sh()
	if s.rec != nil {
		s.rec.Record(trace.Event{At: at, Kind: trace.EvVerdictBye,
			Device: n.device, CP: n.id, Cycle: n.lastCycle})
	}
	n.markStopped()
	if h := s.fleet.cfg.Verdicts; h != nil {
		h(VerdictEvent{CP: n.id, Device: n.device, Kind: VerdictBye, At: at})
	}
	l.inner.DeviceBye(d, at)
}

func (n *cpNode) markStopped() {
	if !n.stopped {
		n.stopped = true
		n.sh().liveCPs--
	}
}

// errNotStarted gates mutation APIs on Fleet.Start.
var errNotStarted = errors.New("fleet: Start before adding nodes")

// AddControlPoint hosts a new control point and starts it probing
// immediately. The node is constructed here but hooked into its shard
// by that shard's event loop (via the admin command inbox), so calling
// goroutines never run engine work. The fleet must be started.
func (f *Fleet) AddControlPoint(cfg CPConfig) (*ControlPoint, error) {
	if !cfg.ID.Valid() {
		return nil, errors.New("fleet: control point needs a valid id")
	}
	if !cfg.Device.Valid() {
		return nil, errors.New("fleet: control point needs a valid device id")
	}
	if cfg.Policy == nil {
		return nil, errors.New("fleet: control point needs a delay policy")
	}
	addr := cfg.DeviceAddrPort
	if !addr.IsValid() {
		var err error
		if addr, err = rtnet.ResolveUDPAddrPort(cfg.DeviceAddr); err != nil {
			return nil, err
		}
	}
	if err := f.adminReady(); err != nil {
		return nil, err
	}
	s := f.placeShard(cfg.ID)
	n := &cpNode{
		id:         cfg.ID,
		device:     cfg.Device,
		deviceAddr: addr,
		onAnnounce: cfg.OnAnnounce,
	}
	n.owner.Store(s)
	seed := cycleSeed(cfg.ID)
	if f.route {
		// ReusePort routing: the cycle's top bits name the owning shard so
		// any shard can route this CP's replies home with one shift.
		seed = routedCycleSeed(seed, s.index)
	}
	n.lastCycle = seed
	inner := cfg.Listener
	if inner == nil {
		inner = core.NopListener{}
	}
	f.adminMu.Lock()
	verifyBye := f.rt.Harden
	f.adminMu.Unlock()
	prober, err := core.NewProber(core.ProberOptions{
		ID:         cfg.ID,
		Device:     cfg.Device,
		Env:        n,
		Policy:     cfg.Policy,
		Listener:   cpListener{n: n, inner: inner},
		Retransmit: cfg.Retransmit,
		FirstCycle: seed,
		VerifyBye:  verifyBye,
	})
	if err != nil {
		return nil, err
	}
	n.prober = prober
	n.timer.fire = prober.OnAlarm
	// Claim the id fleet-wide before registration so two concurrent adds
	// of the same id cannot both land.
	f.adminMu.Lock()
	if _, dup := f.dir[cfg.ID]; dup {
		f.adminMu.Unlock()
		return nil, fmt.Errorf("fleet: control point %v already hosted", cfg.ID)
	}
	f.dir[cfg.ID] = n
	f.adminMu.Unlock()
	if err := f.runOn(s, func(sh *shard) error {
		sh.registerCPLocked(n)
		return nil
	}); err != nil {
		f.adminMu.Lock()
		if f.dir[cfg.ID] == n {
			delete(f.dir, cfg.ID)
		}
		f.adminMu.Unlock()
		return nil, err
	}
	return &ControlPoint{n: n}, nil
}

// registerCPLocked hooks a fully-constructed control point into the
// shard and starts it probing. Runs under the shard mutex, on the
// shard's event loop when it has one.
func (s *shard) registerCPLocked(n *cpNode) {
	s.cps[n.id] = n
	w := s.watchers[n.device]
	if w == nil {
		w = make(map[*cpNode]struct{})
		s.watchers[n.device] = w
	}
	w[n] = struct{}{}
	s.fleet.noteWatcher(n.device, s.index)
	s.liveCPs++
	if s.auth.enabled {
		// Pre-derive the pair schedules so the first probe and its reply
		// stay on the zero-allocation path.
		s.ensureCPAuth(n)
	}
	n.prober.Start()
	s.publishLocked()
}

// removeCPLocked stops a control point and unhooks it from its shard
// and from the fleet directory. Idempotent; runs under the shard mutex.
func (s *shard) removeCPLocked(n *cpNode) {
	if n.removed {
		return
	}
	n.removed = true
	n.prober.Stop() // cancels the wheel alarm via StopAlarm
	if !n.stopped {
		n.stopped = true
		s.liveCPs--
	}
	delete(s.cps, n.id)
	if w := s.watchers[n.device]; w != nil {
		delete(w, n)
		if len(w) == 0 {
			delete(s.watchers, n.device)
			s.fleet.dropWatcher(n.device, s.index)
		}
	}
	key := pendKey(n.device, n.lastCycle)
	if old, ok := s.pending[key]; ok && old.cp == n {
		delete(s.pending, key)
	}
	fl := s.fleet
	fl.adminMu.Lock()
	if fl.dir[n.id] == n {
		delete(fl.dir, n.id)
	}
	fl.adminMu.Unlock()
	s.publishLocked()
}

// ControlPoint is the handle to a fleet-hosted control point. Its
// methods serialise against the shard event loop.
type ControlPoint struct {
	n *cpNode
}

// ID returns the control point's node id.
func (cp *ControlPoint) ID() ident.NodeID { return cp.n.id }

// Device returns the monitored device's node id.
func (cp *ControlPoint) Device() ident.NodeID { return cp.n.device }

// Shard returns the index of the shard currently hosting this CP (it
// can change across a DrainShard/Rebalance).
func (cp *ControlPoint) Shard() int { return cp.n.sh().index }

// Stats returns the prober's cycle counters.
func (cp *ControlPoint) Stats() core.ProberStats {
	s := cp.n.lockShard()
	defer s.mu.Unlock()
	return cp.n.prober.Stats()
}

// Stopped reports whether the prober has stopped (device lost or bye).
func (cp *ControlPoint) Stopped() bool {
	s := cp.n.lockShard()
	defer s.mu.Unlock()
	return cp.n.prober.Stopped()
}

// Restart resumes probing after the prober stopped.
func (cp *ControlPoint) Restart() error {
	s := cp.n.lockShard()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if cp.n.removed {
		return errors.New("fleet: control point removed")
	}
	if cp.n.stopped {
		cp.n.stopped = false
		s.liveCPs++
	}
	cp.n.prober.Start()
	s.publishLocked()
	return nil
}

// Remove stops the control point and unhooks it from the fleet. It is
// idempotent; the handle is dead afterwards. Fleet.RemoveControlPoint
// is the same operation addressed by id.
func (cp *ControlPoint) Remove() {
	s := cp.n.lockShard()
	defer s.mu.Unlock()
	s.removeCPLocked(cp.n)
}

// deviceNode is a hosted device engine. It implements core.Env; every
// method runs under the owning shard's mutex. Devices never migrate —
// their probe address is the shard socket.
type deviceNode struct {
	shard   *shard
	id      ident.NodeID
	engine  core.Device
	peers   *rtnet.PeerTable
	timer   wheelTimer
	removed bool

	// peerAuth caches pair-key schedules and v2 high-water marks per
	// known control point, bounded by (and evicted with) the peer table;
	// ownKey is the device's broadcast signing schedule (auth.go). Nil
	// while authentication is off.
	peerAuth  map[ident.NodeID]*peerAuthState
	authEpoch uint64
	ownKey    *wire.AuthKey
}

var _ core.Env = (*deviceNode)(nil)

// Now implements core.Env.
func (n *deviceNode) Now() time.Duration { return n.shard.fleet.sinceEpoch() }

// Send routes a message to a peer the device has heard from.
func (n *deviceNode) Send(to ident.NodeID, msg core.Message) {
	addr, ok := n.peers.Lookup(to)
	if !ok {
		n.shard.counters.SendErrors++
		core.Recycle(msg)
		return
	}
	var k *wire.AuthKey
	if n.shard.auth.enabled {
		k = n.shard.deviceSendKey(n, to, msg)
	}
	n.shard.sendTo(addr, msg, k)
}

// SetAlarm implements core.Env on the shard's timer wheel.
func (n *deviceNode) SetAlarm(at time.Duration) { n.shard.wheel.Schedule(&n.timer, at) }

// StopAlarm implements core.Env.
func (n *deviceNode) StopAlarm() { n.shard.wheel.Cancel(&n.timer) }

// errShardOccupied is the internal placement signal: try the next
// shard, this one already hosts a device engine.
var errShardOccupied = errors.New("fleet: shard already hosts a device")

// AddDevice hosts a device engine for loopback testing, on the first
// shard without one. Probes carry only their sender's id, so one shard
// socket can demultiplex to at most one device engine: a fleet hosts at
// most Shards devices. The fleet must be started.
func (f *Fleet) AddDevice(id ident.NodeID, build DeviceBuilder) (*Device, error) {
	if !id.Valid() {
		return nil, errors.New("fleet: device needs a valid id")
	}
	if build == nil {
		return nil, errors.New("fleet: device needs an engine builder")
	}
	if err := f.adminReady(); err != nil {
		return nil, err
	}
	f.devMu.Lock()
	defer f.devMu.Unlock()
	if f.route && f.deviceShard.Load() >= 0 {
		// Every routed shard socket shares one address, so a second device
		// engine could never be told apart by its probers.
		return nil, errors.New("fleet: a ReusePort fleet shares one address across shards and hosts at most one device")
	}
	f.adminMu.Lock()
	if _, dup := f.devices[id]; dup {
		f.adminMu.Unlock()
		return nil, fmt.Errorf("fleet: device %v already hosted", id)
	}
	f.devices[id] = nil // reserve the id while placement runs
	f.adminMu.Unlock()
	release := func() {
		f.adminMu.Lock()
		delete(f.devices, id)
		f.adminMu.Unlock()
	}
	for _, s := range f.shards {
		var dn *deviceNode
		err := f.runOn(s, func(sh *shard) error {
			if sh.device != nil {
				return errShardOccupied
			}
			nd := &deviceNode{
				shard: sh,
				id:    id,
				peers: rtnet.NewPeerTable(f.cfg.MaxPeersPerDevice),
			}
			// Keep the per-peer key cache in lockstep with the peer table's
			// LRU bound.
			nd.peers.OnEvict(func(peer ident.NodeID) { delete(nd.peerAuth, peer) })
			engine, err := build(nd)
			if err != nil {
				return err
			}
			nd.engine = engine
			nd.timer.fire = engine.OnAlarm
			sh.device = nd
			f.deviceShard.CompareAndSwap(-1, int32(sh.index))
			engine.Start()
			sh.publishLocked()
			dn = nd
			return nil
		})
		if err == errShardOccupied {
			continue
		}
		if err != nil {
			release()
			return nil, err
		}
		f.adminMu.Lock()
		f.devices[id] = dn
		f.adminMu.Unlock()
		return &Device{n: dn}, nil
	}
	release()
	return nil, fmt.Errorf("fleet: all %d shard sockets already host a device (frames carry no destination id; grow Shards or run a second fleet)", len(f.shards))
}

// Device is the handle to a fleet-hosted device engine.
type Device struct {
	n *deviceNode
}

// ID returns the device's node id.
func (d *Device) ID() ident.NodeID { return d.n.id }

// Addr returns the transport address control points should probe.
func (d *Device) Addr() netip.AddrPort {
	return d.n.shard.conn.LocalAddrPort()
}

// Peers returns the number of distinct control points the device has
// heard from (zero after RemoveDevice).
func (d *Device) Peers() int {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.n.removed {
		return 0
	}
	return d.n.peers.Len()
}

// Bye announces a graceful leave to every known peer, coalescing the
// fan-out into batched transport writes. A no-op after RemoveDevice.
func (d *Device) Bye() {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.n.removed {
		return
	}
	var k *wire.AuthKey
	if s.auth.enabled {
		k = s.deviceOwnKey(d.n)
	}
	s.inBatch = true
	d.n.peers.Each(func(_ ident.NodeID, addr netip.AddrPort) {
		s.sendTo(addr, core.ByeMsg{From: d.n.id}, k)
	})
	s.inBatch = false
	s.flushSends()
	s.publishLocked()
}

// Announce sends a presence announcement to every known peer,
// coalescing the fan-out into batched transport writes. A no-op after
// RemoveDevice.
func (d *Device) Announce(maxAge time.Duration) {
	s := d.n.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.n.removed {
		return
	}
	var k *wire.AuthKey
	if s.auth.enabled {
		k = s.deviceOwnKey(d.n)
	}
	s.inBatch = true
	d.n.peers.Each(func(_ ident.NodeID, addr netip.AddrPort) {
		s.sendTo(addr, core.AnnounceMsg{From: d.n.id, MaxAge: maxAge}, k)
	})
	s.inBatch = false
	s.flushSends()
	s.publishLocked()
}
