package conformance

import (
	"fmt"
	"net/netip"
	"sync"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/wire"
)

// Checker verifies protocol invariants online, from two synchronised
// feeds: the memnet packet tap (every datagram outcome, decoded with
// the production wire codec) and the fleet's presence listeners (the
// verdicts the runtime hands to the application). Both feeds reach the
// checker from under the owning shard's mutex, so per-CP event order
// is the runtime's own order.
//
// Invariants checked (violations are collected, not fatal):
//
//  1. Absent budget — a DeviceLost verdict requires the CP's final
//     probe cycle to have sent the full budget (MaxRetransmits+1
//     probes): absence is declared only after the configured
//     consecutive-loss budget is exhausted.
//  2. Cycle monotonicity — attempt-0 probes of one CP carry strictly
//     increasing cycle numbers, and a new cycle may begin only after a
//     reply for the previous cycle was delivered.
//  3. Attempt discipline — within a cycle, attempts number 0, 1, 2, …
//     consecutively, never exceeding the budget.
//  4. Bye-before-silence — a DeviceBye verdict requires a bye frame
//     delivered to the CP's shard first, and neither verdict is
//     followed by further probes from that CP.
//
// Ordering assumption: invariants treat packet-tap order as send
// order. That holds because every protocol gap between consecutive
// probes of one CP (TOS, at least 21 ms) far exceeds the injected
// one-way delay (paper modes plus reorder hold, under 3 ms). Fault
// plans with delays approaching the protocol timeouts would need a
// looser checker.
type Checker struct {
	mu        sync.Mutex
	maxProbes int // per-cycle budget: MaxRetransmits + 1

	deviceAddr netip.AddrPort
	byID       map[ident.NodeID]*cpState
	byShard    map[netip.AddrPort][]*cpState
	cycleOwner map[uint32]*cpState

	packets    uint64
	violations []string
	overflow   int
}

// cpState is the checker's shadow of one control point.
type cpState struct {
	id        ident.NodeID
	shard     netip.AddrPort
	started   bool
	curCycle  uint32
	attempts  int
	lastAtt   int
	replyIn   bool // reply for curCycle delivered to the CP's shard
	byeIn     bool // bye frame delivered to the CP's shard
	lost, bye bool // terminal verdicts seen
	removed   bool
}

// maxViolations bounds the retained violation list; further ones are
// only counted.
const maxViolations = 32

// NewChecker builds a checker for the given retransmit configuration
// (zero value = paper defaults).
func NewChecker(rt core.RetransmitConfig) *Checker {
	if rt == (core.RetransmitConfig{}) {
		rt = core.DefaultRetransmit()
	}
	return &Checker{
		maxProbes:  rt.MaxRetransmits + 1,
		byID:       make(map[ident.NodeID]*cpState),
		byShard:    make(map[netip.AddrPort][]*cpState),
		cycleOwner: make(map[uint32]*cpState),
	}
}

// SetDevice names the monitored device's transport address. With it
// set, the checker enforces frame direction: probes must be addressed
// to the device, and only replies/byes originating from it count
// towards the cycle-advance and bye-before-silence invariants. Unset
// (the zero AddrPort), direction checks are skipped.
func (c *Checker) SetDevice(addr netip.AddrPort) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deviceAddr = addr
}

// RegisterCP announces a control point before it is added to the fleet
// (its first probe leaves during AddControlPoint).
func (c *Checker) RegisterCP(id ident.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byID[id] = &cpState{id: id}
}

// SetShard records which shard endpoint hosts the CP — bye frames are
// addressed to shards, not CPs.
func (c *Checker) SetShard(id ident.NodeID, shard netip.AddrPort) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.byID[id]
	if st == nil {
		return
	}
	st.shard = shard
	c.byShard[shard] = append(c.byShard[shard], st)
}

// CPRemoved marks a scheduled (silent) leave; the runtime must send no
// further probes for the CP.
func (c *Checker) CPRemoved(id ident.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.byID[id]; st != nil {
		st.removed = true
	}
}

// CPLost records a DeviceLost verdict. Call from the presence listener
// (under the shard mutex).
func (c *Checker) CPLost(id ident.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.byID[id]
	if st == nil {
		c.violate("DeviceLost for unknown CP %v", id)
		return
	}
	if st.lost || st.bye {
		c.violate("cp %v: second terminal verdict (lost after lost=%v bye=%v)", id, st.lost, st.bye)
	}
	st.lost = true
	if st.attempts != c.maxProbes {
		c.violate("cp %v: ABSENT verdict with %d of %d probes of the final cycle sent — consecutive-loss budget not exhausted",
			id, st.attempts, c.maxProbes)
	}
}

// CPBye records a DeviceBye verdict. Call from the presence listener.
func (c *Checker) CPBye(id ident.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.byID[id]
	if st == nil {
		c.violate("DeviceBye for unknown CP %v", id)
		return
	}
	if st.lost || st.bye {
		c.violate("cp %v: second terminal verdict (bye after lost=%v bye=%v)", id, st.lost, st.bye)
	}
	st.bye = true
	if !st.byeIn {
		c.violate("cp %v: DeviceBye verdict without a delivered bye frame (bye-before-silence broken)", id)
	}
}

// OnPacket consumes one memnet packet event. Install via
// Network.Observe before traffic starts.
func (c *Checker) OnPacket(ev memnet.PacketEvent) {
	// Structural decode only: the checker is a passive observer with no
	// keys, so a v2 frame's tag is copied but not verified — the
	// invariants below judge sources, cycles and ordering, which auth
	// does not change.
	var f wire.Frame
	err := wire.DecodeFrame(ev.Frame, &f)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.packets++
	if err != nil {
		if ev.Injected || ev.Duplicate {
			// Attack traffic is allowed to be garbage (a bit-flipped copy
			// usually is); only frames the runtime sent must decode.
			return
		}
		c.violate("undecodable frame %s→%s: %v", ev.From, ev.To, err)
		return
	}
	msg := checkerMsg(&f)
	switch m := msg.(type) {
	case core.ProbeMsg:
		if ev.Duplicate || ev.Injected {
			// An injected copy or attack traffic, not a runtime send: the
			// send-side invariants judge only what the runtime did.
			return
		}
		if c.deviceAddr.IsValid() && ev.To != c.deviceAddr {
			c.violate("probe from %v addressed to %s, not the device %s", m.From, ev.To, c.deviceAddr)
		}
		c.onProbe(m)
	case core.ReplyMsg:
		if ev.Verdict != memnet.Delivered {
			return
		}
		if c.deviceAddr.IsValid() && ev.From != c.deviceAddr {
			if !ev.Injected {
				// Misdirected runtime traffic is a harness bug; a forged
				// reply from an attacker is the workload under test.
				c.violate("reply for cycle %d from non-device address %s", m.Cycle, ev.From)
			}
			return // a forged reply must not satisfy the cycle-advance invariant
		}
		if ev.Injected {
			return // replayed (device-sourced) copy: no state effect either
		}
		if st := c.cycleOwner[m.Cycle]; st != nil && st.started && st.curCycle == m.Cycle {
			st.replyIn = true
		}
	case core.ByeMsg:
		if ev.Verdict != memnet.Delivered || ev.Injected {
			// A spoofed bye must not satisfy bye-before-silence even when
			// its source address mimics the device's.
			return
		}
		if c.deviceAddr.IsValid() && ev.From != c.deviceAddr {
			c.violate("bye from non-device address %s", ev.From)
			return // a forged bye must not satisfy bye-before-silence
		}
		for _, st := range c.byShard[ev.To] {
			st.byeIn = true
		}
	}
}

// checkerMsg maps a structurally decoded frame to the message shape the
// invariants inspect; kinds the checker ignores map to nil.
func checkerMsg(f *wire.Frame) core.Message {
	switch f.Kind {
	case wire.KindProbe:
		return core.ProbeMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt}
	case wire.KindReplySAPP, wire.KindReplyDCPP, wire.KindReplyEmpty:
		return core.ReplyMsg{From: f.From, Cycle: f.Cycle, Attempt: f.Attempt}
	case wire.KindBye:
		return core.ByeMsg{From: f.From}
	default:
		return nil
	}
}

// onProbe applies the send-side invariants. Caller holds c.mu.
func (c *Checker) onProbe(m core.ProbeMsg) {
	st := c.byID[m.From]
	if st == nil {
		c.violate("probe from unknown CP %v", m.From)
		return
	}
	if st.lost || st.bye {
		c.violate("cp %v: probe (cycle %d attempt %d) after terminal verdict", m.From, m.Cycle, m.Attempt)
		return
	}
	if st.removed {
		c.violate("cp %v: probe (cycle %d attempt %d) after removal", m.From, m.Cycle, m.Attempt)
		return
	}
	if !st.started || m.Cycle != st.curCycle {
		if st.started {
			// Cycle numbers live in a staggered uint32 space; compare by
			// signed distance so wraparound stays monotone.
			if int32(m.Cycle-st.curCycle) <= 0 {
				c.violate("cp %v: cycle regressed %d → %d", m.From, st.curCycle, m.Cycle)
			}
			if !st.replyIn {
				c.violate("cp %v: cycle %d began without a delivered reply for cycle %d", m.From, m.Cycle, st.curCycle)
			}
		}
		if m.Attempt != 0 {
			c.violate("cp %v: cycle %d began at attempt %d", m.From, m.Cycle, m.Attempt)
		}
		st.started = true
		st.curCycle = m.Cycle
		st.attempts = 1
		st.lastAtt = int(m.Attempt)
		st.replyIn = false
		c.cycleOwner[m.Cycle] = st
		return
	}
	if int(m.Attempt) != st.lastAtt+1 {
		c.violate("cp %v: cycle %d attempt sequence broken (%d after %d)", m.From, m.Cycle, m.Attempt, st.lastAtt)
	}
	st.lastAtt = int(m.Attempt)
	st.attempts++
	if st.attempts > c.maxProbes {
		c.violate("cp %v: cycle %d exceeded the %d-probe budget", m.From, m.Cycle, c.maxProbes)
	}
}

// violate records one violation. Caller holds c.mu.
func (c *Checker) violate(format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.overflow++
		return
	}
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Violations returns the recorded violations (plus a summary line when
// the cap was hit). Empty means every invariant held.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	if c.overflow > 0 {
		out = append(out, fmt.Sprintf("… and %d more violations", c.overflow))
	}
	return out
}

// Packets returns the number of tapped packet events — a sanity gauge
// that the tap actually saw traffic.
func (c *Checker) Packets() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packets
}
