package conformance

import (
	"net/netip"
	"strings"
	"testing"

	"presence/internal/core"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/wire"
)

// Synthetic endpoints for checker unit tests.
var (
	cpShard = netip.MustParseAddrPort("198.51.100.1:9001")
	devAddr = netip.MustParseAddrPort("198.51.100.1:9002")
)

func newTestChecker(t *testing.T, id ident.NodeID) *Checker {
	t.Helper()
	c := NewChecker(core.RetransmitConfig{})
	c.SetDevice(devAddr)
	c.RegisterCP(id)
	c.SetShard(id, cpShard)
	return c
}

func feed(t *testing.T, c *Checker, msg core.Message, from, to netip.AddrPort, v memnet.Verdict) {
	t.Helper()
	frame, err := wire.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	c.OnPacket(memnet.PacketEvent{From: from, To: to, Frame: frame, Verdict: v})
}

func probe(t *testing.T, c *Checker, id ident.NodeID, cycle uint32, attempt uint8, v memnet.Verdict) {
	t.Helper()
	feed(t, c, core.ProbeMsg{From: id, Cycle: cycle, Attempt: attempt}, cpShard, devAddr, v)
}

func reply(t *testing.T, c *Checker, dev ident.NodeID, cycle uint32, attempt uint8) {
	t.Helper()
	feed(t, c, core.ReplyMsg{From: dev, Cycle: cycle, Attempt: attempt, Payload: core.EmptyReply{}},
		devAddr, cpShard, memnet.Delivered)
}

func wantViolation(t *testing.T, c *Checker, fragment string) {
	t.Helper()
	for _, v := range c.Violations() {
		if strings.Contains(v, fragment) {
			return
		}
	}
	t.Fatalf("no violation containing %q; got %v", fragment, c.Violations())
}

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

// TestCheckerAcceptsConformingRun: a textbook exchange — lost first
// attempt, answered retransmit, next cycle, then a full budget
// exhaustion and the ABSENT verdict — raises nothing.
func TestCheckerAcceptsConformingRun(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Lost)
	probe(t, c, id, 100, 1, memnet.Delivered)
	reply(t, c, 1, 100, 1)
	probe(t, c, id, 101, 0, memnet.Delivered)
	reply(t, c, 1, 101, 0)
	// Device silent: the full budget, then the verdict.
	probe(t, c, id, 102, 0, memnet.Lost)
	probe(t, c, id, 102, 1, memnet.Lost)
	probe(t, c, id, 102, 2, memnet.Lost)
	probe(t, c, id, 102, 3, memnet.Lost)
	c.CPLost(id)
	wantClean(t, c)
}

// TestCheckerAbsentBudget: an ABSENT verdict before the consecutive
// loss budget is exhausted is a violation.
func TestCheckerAbsentBudget(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Lost)
	probe(t, c, id, 100, 1, memnet.Lost)
	c.CPLost(id)
	wantViolation(t, c, "budget not exhausted")
}

// TestCheckerCycleMonotonicity: cycle regression and cycle advance
// without a delivered reply are violations.
func TestCheckerCycleMonotonicity(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Delivered)
	reply(t, c, 1, 100, 0)
	probe(t, c, id, 99, 0, memnet.Delivered)
	wantViolation(t, c, "cycle regressed")

	c2 := newTestChecker(t, id)
	probe(t, c2, id, 100, 0, memnet.Delivered)
	// Reply never delivered, yet the next cycle starts.
	probe(t, c2, id, 101, 0, memnet.Delivered)
	wantViolation(t, c2, "without a delivered reply")
}

// TestCheckerAttemptDiscipline: attempt gaps, nonzero first attempts
// and budget overruns are violations.
func TestCheckerAttemptDiscipline(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Lost)
	probe(t, c, id, 100, 2, memnet.Lost)
	wantViolation(t, c, "attempt sequence broken")

	c2 := newTestChecker(t, id)
	probe(t, c2, id, 100, 1, memnet.Lost)
	wantViolation(t, c2, "began at attempt")

	c3 := newTestChecker(t, id)
	for a := uint8(0); a <= 4; a++ {
		probe(t, c3, id, 100, a, memnet.Lost)
	}
	wantViolation(t, c3, "exceeded the 4-probe budget")
}

// TestCheckerByeBeforeSilence: a DeviceBye verdict without a delivered
// bye frame, and probes after a terminal verdict, are violations.
func TestCheckerByeBeforeSilence(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	c.CPBye(id)
	wantViolation(t, c, "without a delivered bye frame")

	c2 := newTestChecker(t, id)
	feed(t, c2, core.ByeMsg{From: 1}, devAddr, cpShard, memnet.Delivered)
	c2.CPBye(id)
	wantClean(t, c2)
	probe(t, c2, id, 100, 0, memnet.Delivered)
	wantViolation(t, c2, "after terminal verdict")
}

// TestCheckerRemovedCP: probes after a scheduled removal are
// violations; duplicates injected by the network are not sends.
func TestCheckerRemovedCP(t *testing.T) {
	const id ident.NodeID = 7
	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Delivered)
	c.CPRemoved(id)
	probe(t, c, id, 100, 1, memnet.Delivered)
	wantViolation(t, c, "after removal")

	c2 := newTestChecker(t, id)
	probe(t, c2, id, 100, 0, memnet.Delivered)
	// The same frame again, flagged as a duplicate copy: ignored.
	frame, err := wire.Encode(core.ProbeMsg{From: id, Cycle: 100, Attempt: 0})
	if err != nil {
		t.Fatal(err)
	}
	c2.OnPacket(memnet.PacketEvent{From: cpShard, To: devAddr, Frame: frame, Verdict: memnet.Delivered, Duplicate: true})
	wantClean(t, c2)
}

// TestCheckerUnknownSender: traffic from an unregistered CP is flagged.
func TestCheckerUnknownSender(t *testing.T) {
	c := newTestChecker(t, 7)
	probe(t, c, 99, 100, 0, memnet.Delivered)
	wantViolation(t, c, "unknown CP")
}

// TestCheckerFrameDirection: replies and byes must originate from the
// device's address to satisfy the invariants — forged frames from
// elsewhere are flagged and do not count — and probes must be
// addressed to the device.
func TestCheckerFrameDirection(t *testing.T) {
	const id ident.NodeID = 7
	rogue := netip.MustParseAddrPort("198.51.100.1:9099")

	c := newTestChecker(t, id)
	probe(t, c, id, 100, 0, memnet.Delivered)
	feed(t, c, core.ReplyMsg{From: 1, Cycle: 100, Payload: core.EmptyReply{}}, rogue, cpShard, memnet.Delivered)
	wantViolation(t, c, "non-device address")
	// The forged reply must not license a cycle advance.
	probe(t, c, id, 101, 0, memnet.Delivered)
	wantViolation(t, c, "without a delivered reply")

	c2 := newTestChecker(t, id)
	feed(t, c2, core.ByeMsg{From: 1}, rogue, cpShard, memnet.Delivered)
	c2.CPBye(id)
	wantViolation(t, c2, "without a delivered bye frame")

	c3 := newTestChecker(t, id)
	probe(t, c3, id, 100, 0, memnet.Delivered)
	feed(t, c3, core.ProbeMsg{From: id, Cycle: 100, Attempt: 1}, cpShard, rogue, memnet.Delivered)
	wantViolation(t, c3, "not the device")
}
