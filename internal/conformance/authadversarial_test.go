package conformance

import (
	"fmt"
	"testing"
)

// TestAuthAdversarial is the authenticated-wire gate: with frame
// authentication on (shared key, Require), every adv-auth-* attack at
// every acceptance seed yields zero false verdicts and zero invariant
// violations — no tampered, corrupted, stripped or downgraded frame is
// ever accepted.
func TestAuthAdversarial(t *testing.T) {
	for _, c := range DefaultAuthAdvCases(true) {
		for _, seed := range advSeeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.Scenario, seed), func(t *testing.T) {
				t.Parallel()
				res, err := RunAdversarial(c, seed)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("\n%s", res.Format())
				a := &res.Adv
				if a.InjectedFrames == 0 {
					t.Fatal("adversary injected nothing — the attack never ran")
				}
				if a.AuthVerified == 0 {
					t.Fatal("fleets verified no frames — authentication not active")
				}
				if a.FalseAbsent != 0 {
					t.Errorf("authenticated run issued %d false-ABSENT verdicts", a.FalseAbsent)
				}
				if a.FalsePresent != 0 {
					t.Errorf("authenticated run holds %d false-PRESENT beliefs at the horizon", a.FalsePresent)
				}
				for _, v := range res.Violations {
					t.Errorf("invariant violation under attack: %s", v)
				}
				// The refusals must be visible where the attack predicts
				// them: stale-tag rewrites land in AuthRejected, valid v1
				// frames from a v2 peer in AuthDowngraded.
				switch c.Scenario {
				case "adv-auth-tamper":
					if a.AuthRejected == 0 {
						t.Error("tampered BYEs were not rejected by tag verification")
					}
				case "adv-auth-bitflip":
					if a.AuthRejected == 0 {
						t.Error("no corrupted frame reached (and failed) tag verification")
					}
				case "adv-auth-strip", "adv-auth-downgrade":
					if a.AuthDowngraded == 0 {
						t.Error("no v1 frame was refused as a downgrade")
					}
				}
				if !res.Pass {
					t.Error("authenticated case did not pass")
				}
			})
		}
	}
}

// TestAuthAdversarialUnauthenticatedFails demonstrates the attacks are
// real — and that PR-6's heuristics alone cannot stop them. The
// downgrade attack forges v1 replies from the device's own address
// with the right cycle and attempt: source pinning, the attempt
// bitmask and the replay window all pass, so even a HARDENED but
// unauthenticated fleet believes the dead device alive forever. If
// these stop failing, the attacker layer has rotted and the gate above
// proves nothing.
func TestAuthAdversarialUnauthenticatedFails(t *testing.T) {
	t.Run("downgrade/beats-hardening", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-auth-downgrade", Harden: true}, advSeeds[2])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", res.Format())
		if res.Adv.FalsePresent == 0 {
			t.Error("hardened-but-unauthenticated fleet detected the crash despite forged v1 replies — attack ineffective")
		}
		if res.Pass {
			t.Error("the downgrade attack must defeat hardening without authentication")
		}
	})
	t.Run("tamper/false-absent", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-auth-tamper"}, advSeeds[2])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", res.Format())
		if res.Adv.FalseAbsent == 0 {
			t.Error("undefended fleet survived in-transit reply-to-BYE tampering — attack ineffective")
		}
	})
}
