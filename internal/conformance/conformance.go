// Package conformance is the differential test harness between the
// repository's two protocol runtimes: the discrete-event simulator
// (internal/simrun) and the production fleet runtime (internal/fleet).
// Both host the exact same engine code from internal/core; this
// package proves they also *behave* the same when driven by the same
// declarative scenario, under injected loss, delay, duplication and
// reordering.
//
// One Run of a Case proceeds in three steps:
//
//  1. Simulate. The scenario Spec compiles and runs in the simulator.
//     Membership hooks (simrun.World.OnCPJoin/OnCPLeave) lift the
//     realised join/leave schedule out of the run, and the standard
//     measurements yield detection latency, device load, false
//     positives and bye coverage.
//  2. Replay. The identical schedule plays against a real fleet —
//     shard event loops, timer wheels, shared-socket demux — over an
//     internal/memnet network whose fault plan is built from the same
//     Spec (the scenario's own loss and delay models, per-link streams
//     seeded from the scenario seed). The device crash or bye fires at
//     the same offset. Meanwhile a Checker (see invariants.go) taps
//     every datagram and every presence verdict and verifies the
//     protocol invariants online.
//  3. Diff. Schedule-derived counts must match exactly; behavioural
//     metrics must agree within stated tolerances; the invariant list
//     must be empty.
//
// # Why tolerances, and why these
//
// The simulator is bit-deterministic; the fleet half runs on the wall
// clock with real goroutines, so its metrics carry scheduling jitter
// and its fault draws, while reproducible per link, interleave
// nondeterministically across links. The two runtimes also draw
// independent random sequences. Differential assertions are therefore
// banded, sized from the protocol, not tuned until green:
//
//   - Detection latency: a crash lands at a uniform phase of each CP's
//     inter-cycle wait δ (bounded by k·δ_min, here ≤ 1 s), then costs
//     the fixed failed-cycle budget TOF + 3·TOS = 85 ms. Sample means
//     over ≤ 10 present CPs have a standard error of roughly
//     δ/√12/√n ≈ 0.1 s per side; the default 0.35 s absolute (0.8 s
//     for the max, an extreme statistic) plus 50% relative band is
//     ≈ 2.5σ of the *difference* with headroom for a loaded CI box.
//   - Device load: DCPP pins steady load at L_nom = 10 probes/s
//     regardless of population, so the band is mostly absorbing ramp
//     phases and bin-edge effects: 2 probes/s + 35%.
//   - Fractions (detection coverage, false positives, bye coverage):
//     small-n binomials over ≤ ~15 CPs; ±0.35 absolute, ±0.6 under
//     burst loss where both numerators ride independent loss draws.
//
// Violations have no tolerance: zero or the case fails.
package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"presence/internal/core"
	"presence/internal/core/dcpp"
	"presence/internal/core/naive"
	"presence/internal/core/sapp"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/obs"
	"presence/internal/scenario"
	"presence/internal/simnet"
	"presence/internal/simrun"
	"presence/internal/trace"
)

// Tolerances bands the simulator-vs-fleet metric diffs. See the
// package comment for the rationale behind the defaults.
type Tolerances struct {
	// DetectMeanAbs and DetectMaxAbs are absolute slacks (seconds) on
	// the detection-latency mean and max.
	DetectMeanAbs float64
	DetectMaxAbs  float64
	// DetectRel is the relative slack on both latency diffs.
	DetectRel float64
	// FracAbs is the absolute slack on fraction metrics (detection
	// coverage, false-positive fraction, bye coverage).
	FracAbs float64
	// LoadAbs (probes/s) and LoadRel band the device-load diff.
	LoadAbs float64
	LoadRel float64
}

// DefaultTolerances returns the package-comment defaults.
func DefaultTolerances() Tolerances {
	return Tolerances{
		DetectMeanAbs: 0.35,
		DetectMaxAbs:  0.8,
		DetectRel:     0.5,
		FracAbs:       0.35,
		LoadAbs:       2.0,
		LoadRel:       0.35,
	}
}

// Case names one registered scenario and how to replay it.
type Case struct {
	// Scenario is a registered scenario name (or JSON file path). The
	// Spec must schedule exactly one device event: one crash_at or one
	// bye_at inside the horizon.
	Scenario string
	// Shards is the CP fleet's shard count (0 = 2, exercising the
	// cross-shard demux with a deterministic shard assignment).
	Shards int
	// ExtraReorderP adds explicit reordering on top of the scenario's
	// delay model: held-back datagrams are overtaken by later traffic.
	// The hold (2 ms) is far below every protocol timeout, so a
	// conforming runtime's metrics must not move.
	ExtraReorderP float64
	// ByeGrace is how long after a bye the device stays reachable so
	// in-flight bye frames deliver (the simulator's device detaches
	// instantly but its in-flight sends still deliver). 0 = 25 ms.
	ByeGrace time.Duration
	// Harden enables the fleet's adversarial defenses (fleet
	// Config.Harden) on both the CP and device fleets.
	Harden bool
	// Auth enables frame authentication on both fleets: a shared test
	// master key with Require set, so every frame carries a v2 HMAC tag
	// and unauthenticated frames are refused. Benign replays with Auth
	// on must land inside the same tolerance bands as without — signing
	// and verifying every frame must not move a single metric.
	Auth bool
	// ViaAdmin drives the fleet-side membership through the runtime
	// admin plane — HTTP POSTs against an obs server with Config.Admin —
	// instead of direct AddControlPoint/Remove calls, proving the
	// production admin endpoints realise the same schedule. Verdicts
	// then flow through the fleet-wide Config.Verdicts hook (the admin
	// plane attaches no per-CP listeners).
	ViaAdmin bool
	// Tol bands the metric diffs (zero value = DefaultTolerances).
	Tol Tolerances
}

func (c *Case) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.ByeGrace == 0 {
		c.ByeGrace = 25 * time.Millisecond
	}
	if c.Tol == (Tolerances{}) {
		c.Tol = DefaultTolerances()
	}
}

// DefaultCases returns the standing battery: the conf-* named
// scenarios — fast uniform churn (replayed three times: through the
// direct fleet API, through the runtime admin endpoints, and with
// frame authentication on), the same churn over a Gilbert-Elliott
// burst-loss channel, and flash-crowd cohorts with a graceful bye —
// each with a pinch of extra reordering. The authenticated replay pins
// that signing and verifying every frame moves no metric: the sim
// baseline it diffs against knows nothing about auth.
func DefaultCases() []Case {
	lossy := DefaultTolerances()
	lossy.FracAbs = 0.6
	lossy.LoadRel = 0.5
	return []Case{
		{Scenario: "conf-churn", ExtraReorderP: 0.05},
		{Scenario: "conf-admin-churn", ExtraReorderP: 0.05, ViaAdmin: true},
		{Scenario: "conf-auth-churn", ExtraReorderP: 0.05, Auth: true},
		{Scenario: "conf-bursty-loss", ExtraReorderP: 0.05, Tol: lossy},
		{Scenario: "conf-flash-crowd", ExtraReorderP: 0.05},
	}
}

// RuntimeMetrics is one runtime's view of a scenario run, in the same
// shape for both so they diff field by field.
type RuntimeMetrics struct {
	// TotalJoined counts every CP that ever joined.
	TotalJoined int `json:"total_joined"`
	// PresentAtEvent counts CPs joined before and not left by the
	// device event — the detection-denominator population.
	PresentAtEvent int `json:"present_at_event"`
	// Detected counts present CPs that reported DeviceLost after the
	// event; DetectMean/DetectMax summarise their latencies in seconds.
	Detected   int     `json:"detected"`
	DetectMean float64 `json:"detect_mean_s"`
	DetectMax  float64 `json:"detect_max_s"`
	DetectFrac float64 `json:"detect_frac"`
	// FalseLost counts DeviceLost verdicts before the event (loss
	// bursts eating a whole probe cycle); FalseLostFrac is over
	// TotalJoined.
	FalseLost     int     `json:"false_lost"`
	FalseLostFrac float64 `json:"false_lost_frac"`
	// ByeSeen counts present CPs that saw the device's bye.
	ByeSeen int     `json:"bye_seen"`
	ByeFrac float64 `json:"bye_frac"`
	// LoadMean is the mean probe arrival rate at the device (probes/s)
	// from start until the event.
	LoadMean float64 `json:"load_mean_probes_per_sec"`
}

// Diff is one banded metric comparison.
type Diff struct {
	Name  string  `json:"name"`
	Sim   float64 `json:"sim"`
	Fleet float64 `json:"fleet"`
	Abs   float64 `json:"abs_tol"`
	Rel   float64 `json:"rel_tol"`
	OK    bool    `json:"ok"`
}

// Result is one case's outcome.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Bye reports whether the device event was a graceful bye (false =
	// silent crash).
	Bye   bool           `json:"bye"`
	Sim   RuntimeMetrics `json:"sim"`
	Fleet RuntimeMetrics `json:"fleet"`
	// Diffs holds every comparison; Violations every invariant breach
	// (must be empty); TappedPackets how many datagram events the
	// checker inspected; Net is the fake network's accounting (loss,
	// duplication, partition drops actually injected).
	Diffs         []Diff          `json:"diffs"`
	Violations    []string        `json:"violations"`
	TappedPackets uint64          `json:"tapped_packets"`
	Net           memnet.Counters `json:"net_counters"`
	// Flight is the CP fleet's normalized flight-recorder timeline (one
	// line per CP, timestamps stripped, cycles rebased — see
	// trace.Normalize): the per-device probe-lifecycle evidence a failing
	// diff is debugged from.
	Flight []string `json:"flight,omitempty"`
	Pass   bool     `json:"pass"`
}

// Format renders the result as a readable block (valid Markdown).
func (r *Result) Format() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	event := "crash"
	if r.Bye {
		event = "bye"
	}
	fmt.Fprintf(&b, "### conformance %s — seed %d, device %s — %s\n\n", r.Scenario, r.Seed, event, verdict)
	b.WriteString("| metric | sim | fleet | tolerance | ok |\n")
	b.WriteString("|--------|-----|-------|-----------|----|\n")
	for _, d := range r.Diffs {
		tol := "exact"
		if d.Abs != 0 || d.Rel != 0 {
			tol = fmt.Sprintf("±%.3g+%.0f%%", d.Abs, d.Rel*100)
		}
		ok := "yes"
		if !d.OK {
			ok = "NO"
		}
		fmt.Fprintf(&b, "| %s | %.4g | %.4g | %s | %s |\n", d.Name, d.Sim, d.Fleet, tol, ok)
	}
	fmt.Fprintf(&b, "\n- invariants: %d violations over %d tapped packets\n", len(r.Violations), r.TappedPackets)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  - VIOLATION: %s\n", v)
	}
	// On failure, attach the flight-recorder timelines: which probes each
	// CP sent, what came back, and where the verdict landed.
	if !r.Pass && len(r.Flight) > 0 {
		const maxLines = 12
		fmt.Fprintf(&b, "- flight recorder (%d control points):\n", len(r.Flight))
		for i, line := range r.Flight {
			if i == maxLines {
				fmt.Fprintf(&b, "  … %d more\n", len(r.Flight)-maxLines)
				break
			}
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// schedule is the realised membership timeline lifted from the
// simulation run, replayed verbatim against the fleet.
type schedule struct {
	joinAt  []time.Duration // per CP index, ascending in index
	leaveAt []time.Duration // -1 = never left
	horizon time.Duration
	eventAt time.Duration // the single crash/bye instant
	bye     bool
}

// present reports whether CP i is in the detection population: joined
// at or before the event and not yet left.
func (s *schedule) present(i int) bool {
	return s.joinAt[i] <= s.eventAt && (s.leaveAt[i] < 0 || s.leaveAt[i] > s.eventAt)
}

func (s *schedule) presentCount() int {
	n := 0
	for i := range s.joinAt {
		if s.present(i) {
			n++
		}
	}
	return n
}

// Run executes one differential case.
func Run(c Case, seed uint64) (*Result, error) {
	c.applyDefaults()
	spec, err := scenario.Resolve(c.Scenario)
	if err != nil {
		return nil, err
	}
	switch {
	case len(spec.CrashAt)+len(spec.ByeAt) != 1:
		return nil, fmt.Errorf("conformance: scenario %s must schedule exactly one crash_at or bye_at, has %d/%d",
			spec.Name, len(spec.CrashAt), len(spec.ByeAt))
	case spec.Devices > 1:
		return nil, fmt.Errorf("conformance: scenario %s: multi-device specs not supported", spec.Name)
	case spec.Discovery != nil || spec.Overlay:
		return nil, fmt.Errorf("conformance: scenario %s: discovery/overlay layers not hosted by the fleet runtime", spec.Name)
	}

	res := &Result{Scenario: spec.Name, Seed: seed}
	sched, simM, err := runSim(spec, seed)
	if err != nil {
		return nil, err
	}
	res.Bye = sched.bye
	res.Sim = simM

	out, err := runFleet(spec, sched, c, seed)
	if err != nil {
		return nil, err
	}
	res.Fleet = out.metrics
	res.Violations = out.violations
	res.TappedPackets = out.tapped
	res.Net = out.net
	res.Flight = out.flight

	tol := c.Tol
	add := func(name string, sim, fl, abs, rel float64) {
		diff := math.Abs(sim - fl)
		band := abs + rel*math.Max(math.Abs(sim), math.Abs(fl))
		res.Diffs = append(res.Diffs, Diff{
			Name: name, Sim: sim, Fleet: fl, Abs: abs, Rel: rel,
			OK: diff <= band,
		})
	}
	// Schedule-derived counts replay verbatim: exact or the harness
	// itself is broken.
	add("total_joined", float64(simM.TotalJoined), float64(res.Fleet.TotalJoined), 0, 0)
	add("present_at_event", float64(simM.PresentAtEvent), float64(res.Fleet.PresentAtEvent), 0, 0)
	if sched.bye {
		add("bye_frac", simM.ByeFrac, res.Fleet.ByeFrac, tol.FracAbs, 0)
	} else {
		add("detect_frac", simM.DetectFrac, res.Fleet.DetectFrac, tol.FracAbs, 0)
		add("detect_mean_s", simM.DetectMean, res.Fleet.DetectMean, tol.DetectMeanAbs, tol.DetectRel)
		add("detect_max_s", simM.DetectMax, res.Fleet.DetectMax, tol.DetectMaxAbs, tol.DetectRel)
	}
	add("false_lost_frac", simM.FalseLostFrac, res.Fleet.FalseLostFrac, tol.FracAbs, 0)
	add("load_mean_probes_per_sec", simM.LoadMean, res.Fleet.LoadMean, tol.LoadAbs, tol.LoadRel)

	res.Pass = len(res.Violations) == 0
	for _, d := range res.Diffs {
		if !d.OK {
			res.Pass = false
		}
	}
	return res, nil
}

// runSim executes the scenario in the simulator, lifting the realised
// membership schedule and the runtime metrics out of the run.
func runSim(spec *scenario.Spec, seed uint64) (*schedule, RuntimeMetrics, error) {
	var m RuntimeMetrics
	cfg, err := spec.Config(seed)
	if err != nil {
		return nil, m, err
	}
	w, err := simrun.NewWorld(cfg)
	if err != nil {
		return nil, m, err
	}
	sched := &schedule{horizon: spec.Horizon.Std(), bye: len(spec.ByeAt) == 1}
	if sched.bye {
		sched.eventAt = spec.ByeAt[0].Std()
	} else {
		sched.eventAt = spec.CrashAt[0].Std()
	}
	if sched.eventAt <= 0 || sched.eventAt >= sched.horizon {
		return nil, m, fmt.Errorf("conformance: device event at %v outside horizon %v", sched.eventAt, sched.horizon)
	}
	idxOf := make(map[ident.NodeID]int)
	var hosts []*simrun.CPHost
	w.OnCPJoin = func(h *simrun.CPHost) {
		idxOf[h.ID] = len(sched.joinAt)
		hosts = append(hosts, h)
		sched.joinAt = append(sched.joinAt, h.JoinedAt)
		sched.leaveAt = append(sched.leaveAt, -1)
	}
	w.OnCPLeave = func(h *simrun.CPHost, at time.Duration) {
		sched.leaveAt[idxOf[h.ID]] = at
	}
	if err := spec.Populate(w); err != nil {
		return nil, m, err
	}
	// Count probes delivered to the device right before the event (the
	// instant itself belongs to the event).
	var probesAtEvent uint64
	w.Sim().At(sched.eventAt-time.Nanosecond, func() {
		probesAtEvent = w.DeviceLoad().Total()
	})
	w.Run(sched.horizon)

	dev := w.Device().ID
	var lat []float64
	for i, h := range hosts {
		lostAt, lost := h.LostDevice(dev)
		if lost && lostAt <= sched.eventAt {
			m.FalseLost++
			continue
		}
		if !sched.present(i) {
			continue
		}
		if lost && lostAt > sched.eventAt {
			lat = append(lat, (lostAt - sched.eventAt).Seconds())
		}
		if h.SawBye {
			m.ByeSeen++
		}
	}
	// The sim's own counts: the schedule was lifted from this very run's
	// membership hooks, so it is the sim-observed state.
	m.TotalJoined = len(sched.joinAt)
	m.PresentAtEvent = sched.presentCount()
	fillMetrics(&m, sched, lat, probesAtEvent)
	return sched, m, nil
}

// fillMetrics completes the derived fields of one runtime's metrics.
// The caller has already set TotalJoined and PresentAtEvent from that
// runtime's OWN observations — never from the other side's — so the
// exact-match diffs on those counts genuinely test the replay.
func fillMetrics(m *RuntimeMetrics, sched *schedule, lat []float64, probesAtEvent uint64) {
	m.Detected = len(lat)
	for _, l := range lat {
		m.DetectMean += l
		if l > m.DetectMax {
			m.DetectMax = l
		}
	}
	if len(lat) > 0 {
		m.DetectMean /= float64(len(lat))
	}
	if m.PresentAtEvent > 0 {
		m.DetectFrac = float64(m.Detected) / float64(m.PresentAtEvent)
		m.ByeFrac = float64(m.ByeSeen) / float64(m.PresentAtEvent)
	}
	if m.TotalJoined > 0 {
		m.FalseLostFrac = float64(m.FalseLost) / float64(m.TotalJoined)
	}
	m.LoadMean = float64(probesAtEvent) / sched.eventAt.Seconds()
}

// faultsFrom builds the memnet fault plan from the Spec's own network
// models: the same delay model, a fresh per-link instance of the same
// loss model, the same duplication probability.
func faultsFrom(spec *scenario.Spec, seed uint64, c Case) (memnet.Faults, error) {
	cfg, err := spec.Config(seed)
	if err != nil {
		return memnet.Faults{}, err
	}
	f := memnet.Faults{
		Seed:       seed,
		Delay:      cfg.Net.Delay,
		DuplicateP: cfg.Net.DuplicateP,
		ReorderP:   c.ExtraReorderP,
	}
	if f.Delay == nil {
		f.Delay = simnet.PaperModes()
	}
	if cfg.Net.Loss != nil {
		f.NewLoss = func() simnet.LossModel {
			linkCfg, err := spec.Config(seed)
			if err != nil || linkCfg.Net.Loss == nil {
				// Config already compiled once above; it cannot start
				// failing for the same spec and seed.
				panic(fmt.Sprintf("conformance: recompiling loss model: %v", err))
			}
			return linkCfg.Net.Loss
		}
	}
	return f, nil
}

// deviceID is the fleet-side device's node id; CP ids start above it.
const deviceID ident.NodeID = 1

func cpID(idx int) ident.NodeID { return ident.NodeID(1000 + idx) }

// newCPPolicy builds the protocol policy for one fleet CP from the
// compiled simulator config, so both runtimes share parameters.
func newCPPolicy(cfg simrun.Config) (core.DelayPolicy, error) {
	switch cfg.Protocol {
	case simrun.ProtocolSAPP:
		return sapp.NewPolicy(cfg.SAPPCP)
	case simrun.ProtocolDCPP:
		return dcpp.NewPolicy(cfg.DCPPPolicy)
	case simrun.ProtocolNaive:
		return naive.NewPolicy(cfg.NaivePeriod)
	default:
		return nil, fmt.Errorf("conformance: unknown protocol %q", cfg.Protocol)
	}
}

// deviceBuilder builds the device engine for the fleet from the same
// compiled config.
func deviceBuilder(cfg simrun.Config) fleet.DeviceBuilder {
	return func(env core.Env) (core.Device, error) {
		switch cfg.Protocol {
		case simrun.ProtocolSAPP:
			return sapp.NewDevice(deviceID, env, cfg.SAPPDevice)
		case simrun.ProtocolDCPP:
			return dcpp.NewDevice(deviceID, env, cfg.DCPPDevice)
		case simrun.ProtocolNaive:
			return naive.NewDevice(deviceID, env)
		default:
			return nil, fmt.Errorf("conformance: unknown protocol %q", cfg.Protocol)
		}
	}
}

// cpRecord collects one fleet CP's presence verdicts (wall clock).
type cpRecord struct {
	lostAt time.Time
	byeAt  time.Time
}

// cpListener funnels one CP's verdicts into the collector and the
// checker. It runs on the shard event loop: cheap, non-blocking.
type cpListener struct {
	col *collector
	idx int
	id  ident.NodeID
}

func (l cpListener) DeviceAlive(ident.NodeID, core.CycleResult) {}

func (l cpListener) DeviceLost(_ ident.NodeID, _ time.Duration) {
	now := time.Now()
	l.col.mu.Lock()
	if l.col.recs[l.idx].lostAt.IsZero() {
		l.col.recs[l.idx].lostAt = now
	}
	l.col.mu.Unlock()
	l.col.checker.CPLost(l.id)
}

func (l cpListener) DeviceBye(_ ident.NodeID, _ time.Duration) {
	now := time.Now()
	l.col.mu.Lock()
	if l.col.recs[l.idx].byeAt.IsZero() {
		l.col.recs[l.idx].byeAt = now
	}
	l.col.mu.Unlock()
	l.col.checker.CPBye(l.id)
}

// collector holds every fleet CP's verdict record.
type collector struct {
	mu      sync.Mutex
	recs    []cpRecord
	checker *Checker
}

// onVerdict is the fleet-wide verdict hook used by ViaAdmin replays:
// the admin plane attaches no per-CP listeners, so verdicts arrive
// through fleet Config.Verdicts and are keyed back to CP indices by the
// cpID convention. Runs on the shard event loop: cheap, non-blocking.
func (col *collector) onVerdict(ev fleet.VerdictEvent) {
	idx := int(ev.CP) - int(cpID(0))
	if idx < 0 || idx >= len(col.recs) {
		return
	}
	now := time.Now()
	col.mu.Lock()
	switch ev.Kind {
	case fleet.VerdictLost:
		if col.recs[idx].lostAt.IsZero() {
			col.recs[idx].lostAt = now
		}
	case fleet.VerdictBye:
		if col.recs[idx].byeAt.IsZero() {
			col.recs[idx].byeAt = now
		}
	}
	col.mu.Unlock()
	switch ev.Kind {
	case fleet.VerdictLost:
		col.checker.CPLost(ev.CP)
	case fleet.VerdictBye:
		col.checker.CPBye(ev.CP)
	}
}

// adminClient drives the fleet's runtime admin plane over real HTTP —
// the ViaAdmin replay path.
type adminClient struct {
	base   string
	client http.Client
}

func (a *adminClient) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := a.client.Post(a.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, r.Status, strings.TrimSpace(string(msg)))
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// addCP joins one control point through POST /admin/cp/add, carrying
// the same protocol and retransmit parameters the direct path uses
// (the admin plane builds paper-default sapp/dcpp policies — exactly
// what the conformance scenarios' compiled configs hold). Returns the
// shard the fleet placed it on.
func (a *adminClient) addCP(id ident.NodeID, cfg simrun.Config, devAddr netip.AddrPort) (int, error) {
	var proto string
	switch cfg.Protocol {
	case simrun.ProtocolSAPP:
		proto = "sapp"
	case simrun.ProtocolDCPP:
		proto = "dcpp"
	case simrun.ProtocolNaive:
		proto = "naive"
	default:
		return 0, fmt.Errorf("conformance: unknown protocol %q", cfg.Protocol)
	}
	req := map[string]any{
		"id":       uint32(id),
		"device":   uint32(deviceID),
		"addr":     devAddr.String(),
		"protocol": proto,
		"retransmit": map[string]any{
			"first_timeout":   cfg.Retransmit.FirstTimeout.String(),
			"retry_timeout":   cfg.Retransmit.RetryTimeout.String(),
			"max_retransmits": cfg.Retransmit.MaxRetransmits,
		},
	}
	if proto == "naive" {
		req["period"] = cfg.NaivePeriod.String()
	}
	var resp struct {
		Shard int `json:"shard"`
	}
	if err := a.post("/admin/cp/add", req, &resp); err != nil {
		return 0, err
	}
	return resp.Shard, nil
}

func (a *adminClient) removeCP(id ident.NodeID) error {
	return a.post("/admin/cp/remove", map[string]any{"id": uint32(id)}, nil)
}

// timeline event kinds, in tie-break order: a join at the same instant
// as the device event still joins first, like the simulator's
// same-time event ordering (insertion order puts population events
// before the scheduled crash).
const (
	evJoin = iota
	evDevice
	evDown
	evLeave
)

type timelineEvent struct {
	at   time.Duration
	kind int
	idx  int
}

// fleetOutcome is everything one fleet replay produced.
type fleetOutcome struct {
	metrics    RuntimeMetrics
	violations []string
	tapped     uint64
	net        memnet.Counters
	// Robustness accounting (meaningful when the spec has an adversary;
	// all zero otherwise): falseAbsent counts absent-type verdicts (lost
	// or bye) issued while the device was demonstrably up, falsePresent
	// counts present CPs that never reported the crash by the horizon.
	falseAbsent  int
	falsePresent int
	cpCounters   fleet.Counters
	devCounters  fleet.Counters
	proberStats  core.ProberStats
	adv          *advTaps
	// flight is the CP fleet's normalized flight-recorder dump, captured
	// before the fleets close.
	flight []string
}

// runFleet replays the schedule against a real fleet over memnet.
func runFleet(spec *scenario.Spec, sched *schedule, c Case, seed uint64) (fleetOutcome, error) {
	var out fleetOutcome
	m := &out.metrics
	cfg, err := spec.Config(seed)
	if err != nil {
		return out, err
	}
	cfg = cfg.WithDefaults()

	faults, err := faultsFrom(spec, seed, c)
	if err != nil {
		return out, err
	}
	net := memnet.New(faults)
	defer net.Close()
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

	checker := NewChecker(cfg.Retransmit)

	// With Auth on, both fleets share one master key and refuse
	// unauthenticated frames: the strongest negotiation posture, and the
	// one the adv-auth-* gates assume (a first-contact v1 frame is a
	// downgrade by definition, not a legacy peer).
	var auth fleet.AuthConfig
	if c.Auth {
		auth = fleet.AuthConfig{Key: []byte("conformance-master-key"), Require: true}
	}

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport, Harden: c.Harden, Auth: auth})
	if err != nil {
		return out, err
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		return out, err
	}
	dev, err := devFleet.AddDevice(deviceID, deviceBuilder(cfg))
	if err != nil {
		return out, err
	}
	checker.SetDevice(dev.Addr())

	// Attach the scenario's attackers (no-op for benign specs), then
	// install the tap — composed so reflected traffic at the amplifier's
	// victim is counted — before any CP can send.
	adv, err := installAdversaries(net, spec, dev.Addr())
	if err != nil {
		return out, err
	}
	out.adv = adv
	observe := checker.OnPacket
	if adv != nil && adv.victimAddr.IsValid() {
		victim := adv.victimAddr
		observe = func(ev memnet.PacketEvent) {
			if ev.Verdict == memnet.Delivered && !ev.Injected && ev.To == victim {
				adv.victimReplies.Add(1)
			}
			checker.OnPacket(ev)
		}
	}
	net.Observe(observe)

	n := len(sched.joinAt)
	col := &collector{recs: make([]cpRecord, n), checker: checker}
	cps := make([]*fleet.ControlPoint, n)

	fcfg := fleet.Config{Shards: c.Shards, Transport: transport, Harden: c.Harden, Auth: auth}
	if c.ViaAdmin {
		fcfg.Verdicts = col.onVerdict
	}
	cpFleet, err := fleet.New(fcfg)
	if err != nil {
		return out, err
	}
	defer cpFleet.Close()
	if err := cpFleet.Start(); err != nil {
		return out, err
	}
	shardAddrs := cpFleet.Addrs()

	var admin *adminClient
	if c.ViaAdmin {
		srv, err := obs.New(obs.Config{Fleet: cpFleet, Admin: true})
		if err != nil {
			return out, err
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return out, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // teardown best-effort
		}()
		admin = &adminClient{base: "http://" + addr.String()}
	}

	timeline := make([]timelineEvent, 0, 2*n+2)
	for i, at := range sched.joinAt {
		timeline = append(timeline, timelineEvent{at: at, kind: evJoin, idx: i})
	}
	for i, at := range sched.leaveAt {
		if at >= 0 {
			timeline = append(timeline, timelineEvent{at: at, kind: evLeave, idx: i})
		}
	}
	timeline = append(timeline, timelineEvent{at: sched.eventAt, kind: evDevice})
	if sched.bye {
		timeline = append(timeline, timelineEvent{at: sched.eventAt + c.ByeGrace, kind: evDown})
	}
	sort.SliceStable(timeline, func(i, j int) bool {
		if timeline[i].at != timeline[j].at {
			return timeline[i].at < timeline[j].at
		}
		return timeline[i].kind < timeline[j].kind
	})

	// The fleet's own membership bookkeeping: counted from successful
	// Add/Remove calls, so the exact-match diffs against the sim's
	// counts fail if the replay drops an event.
	var (
		t0            = time.Now()
		eventWall     time.Time
		probesAtEvent uint64
		joined        int
		presentNow    int
	)
	for _, ev := range timeline {
		if d := time.Until(t0.Add(ev.at)); d > 0 {
			time.Sleep(d)
		}
		switch ev.kind {
		case evJoin:
			id := cpID(ev.idx)
			checker.RegisterCP(id)
			if admin != nil {
				shard, err := admin.addCP(id, cfg, dev.Addr())
				if err != nil {
					return out, fmt.Errorf("conformance: admin join cp %d: %w", ev.idx, err)
				}
				checker.SetShard(id, shardAddrs[shard])
			} else {
				policy, err := newCPPolicy(cfg)
				if err != nil {
					return out, err
				}
				cp, err := cpFleet.AddControlPoint(fleet.CPConfig{
					ID:             id,
					Device:         deviceID,
					DeviceAddrPort: dev.Addr(),
					Policy:         policy,
					Listener:       cpListener{col: col, idx: ev.idx, id: id},
					Retransmit:     cfg.Retransmit,
				})
				if err != nil {
					return out, fmt.Errorf("conformance: join cp %d: %w", ev.idx, err)
				}
				checker.SetShard(id, shardAddrs[cp.Shard()])
				cps[ev.idx] = cp
			}
			joined++
			presentNow++
		case evLeave:
			if admin != nil {
				if err := admin.removeCP(cpID(ev.idx)); err != nil {
					return out, fmt.Errorf("conformance: admin leave cp %d: %w", ev.idx, err)
				}
			} else {
				cps[ev.idx].Remove()
			}
			checker.CPRemoved(cpID(ev.idx))
			presentNow--
		case evDevice:
			eventWall = time.Now()
			probesAtEvent = devFleet.Snapshot().Total.PacketsIn
			m.PresentAtEvent = presentNow
			if sched.bye {
				dev.Bye()
			} else {
				net.SetDown(dev.Addr(), true)
			}
		case evDown:
			net.SetDown(dev.Addr(), true)
		}
	}
	if d := time.Until(t0.Add(sched.horizon)); d > 0 {
		time.Sleep(d)
	}
	endWall := t0.Add(sched.horizon)

	// The replay's own clock realises the schedule with scheduling
	// jitter; measure load over the realised pre-event span.
	eventSec := eventWall.Sub(t0).Seconds()

	col.mu.Lock()
	var lat []float64
	for i := range col.recs {
		rec := col.recs[i]
		// Robustness bookkeeping: any absent-type verdict before the
		// device event is false (the device was up), and under a crash a
		// present CP with no verdict at all by the horizon holds a false
		// PRESENT belief.
		if (!rec.lostAt.IsZero() && !rec.lostAt.After(eventWall)) ||
			(!rec.byeAt.IsZero() && !rec.byeAt.After(eventWall)) {
			out.falseAbsent++
		}
		if !sched.bye && sched.present(i) && rec.lostAt.IsZero() && rec.byeAt.IsZero() {
			out.falsePresent++
		}
		if !rec.lostAt.IsZero() && !rec.lostAt.After(eventWall) {
			m.FalseLost++
			continue
		}
		if !sched.present(i) {
			continue
		}
		if !rec.lostAt.IsZero() && rec.lostAt.After(eventWall) && !rec.lostAt.After(endWall) {
			lat = append(lat, rec.lostAt.Sub(eventWall).Seconds())
		}
		if !rec.byeAt.IsZero() && !rec.byeAt.After(endWall) {
			m.ByeSeen++
		}
	}
	col.mu.Unlock()
	m.TotalJoined = joined
	fillMetricsWall(m, sched, lat, probesAtEvent, eventSec)
	out.violations = checker.Violations()
	out.tapped = checker.Packets()
	out.net = net.Counters()
	out.flight = trace.Normalize(cpFleet.FlightSnapshot())
	out.cpCounters = cpFleet.Snapshot().Total
	out.devCounters = devFleet.Snapshot().Total
	for _, cp := range cps {
		if cp == nil {
			continue
		}
		st := cp.Stats()
		out.proberStats.ByeVerifications += st.ByeVerifications
		out.proberStats.SpoofedByes += st.SpoofedByes
	}
	return out, nil
}

// fillMetricsWall mirrors fillMetrics with a wall-clock load window.
func fillMetricsWall(m *RuntimeMetrics, sched *schedule, lat []float64, probesAtEvent uint64, eventSec float64) {
	fillMetrics(m, sched, lat, 0)
	if eventSec > 0 {
		m.LoadMean = float64(probesAtEvent) / eventSec
	}
}

// RunSuite executes every case of the standing battery with one seed.
func RunSuite(seed uint64) ([]*Result, error) {
	var out []*Result
	for _, c := range DefaultCases() {
		r, err := Run(c, seed)
		if err != nil {
			return out, fmt.Errorf("conformance: %s: %w", c.Scenario, err)
		}
		out = append(out, r)
	}
	return out, nil
}
