// Adversarial robustness harness: runs an adv-* scenario's attack-free
// simulation as ground truth, replays the same membership schedule
// against the real fleet runtime with the scenario's attackers
// installed as memnet middleboxes, and scores the damage. The
// headline metrics are the two ways a presence monitor can lie —
// false ABSENT (an absent-type verdict while the device was up) and
// false PRESENT (a present CP that never notices the crash) — plus
// the amplification factor of reflection attacks and the defense-side
// accounting (sheds, rejected forgeries, bye verifications).
//
// The pass gate applies to hardened runs only: zero false verdicts of
// either kind and zero invariant violations. Unhardened runs are
// informational — they exist to demonstrate that the attacks work, so
// their failures are the data, not a test failure.

package conformance

import (
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/scenario"
)

// AdvCase names one adversarial scenario and how to replay it.
type AdvCase struct {
	// Scenario is a registered adv-* scenario name (or JSON file path);
	// its spec must carry an adversary section and schedule exactly one
	// device event.
	Scenario string
	// Shards is the CP fleet's shard count (0 = 2).
	Shards int
	// Harden toggles the fleet defenses — the comparison axis.
	Harden bool
	// Auth runs both fleets with frame authentication on (shared master
	// key, Require mode): every frame carries a v2 HMAC tag and
	// unauthenticated frames are refused. The defense axis for the
	// adv-auth-* scenarios.
	Auth bool
}

// DefaultAdvCases returns the standing adversarial battery over the
// four registered adv-* scenarios, at the given hardening setting.
func DefaultAdvCases(harden bool) []AdvCase {
	return []AdvCase{
		{Scenario: "adv-spoofed-bye", Harden: harden},
		{Scenario: "adv-replay", Harden: harden},
		{Scenario: "adv-byzantine", Harden: harden},
		{Scenario: "adv-amplify", Harden: harden},
	}
}

// DefaultAuthAdvCases returns the authenticated-wire battery over the
// four adv-auth-* scenarios. With auth on, the runs are gated (zero
// forged frames accepted, zero false verdicts); with auth off they are
// the demonstration that the attacks bite an unauthenticated runtime.
func DefaultAuthAdvCases(auth bool) []AdvCase {
	return []AdvCase{
		{Scenario: "adv-auth-tamper", Harden: auth, Auth: auth},
		{Scenario: "adv-auth-bitflip", Harden: auth, Auth: auth},
		{Scenario: "adv-auth-strip", Harden: auth, Auth: auth},
		{Scenario: "adv-auth-downgrade", Harden: auth, Auth: auth},
	}
}

// AdvMetrics scores one attacked replay.
type AdvMetrics struct {
	// PresentAtEvent sizes the population whose verdicts are at stake.
	PresentAtEvent int `json:"present_at_event"`
	// FalseAbsent counts absent-type verdicts (lost or bye) issued
	// before the device event; FalsePresent counts present CPs with no
	// verdict at all by the horizon after a crash. Both must be zero
	// under Harden.
	FalseAbsent  int `json:"false_absent"`
	FalsePresent int `json:"false_present"`
	// InjectedFrames counts every frame the attackers originated;
	// FilteredFrames counts frames middleboxes dropped.
	InjectedFrames uint64 `json:"injected_frames"`
	FilteredFrames uint64 `json:"filtered_frames"`
	// VictimReplies counts reply datagrams the device reflected at the
	// amplifier's victim; AmplificationFactor is VictimReplies per
	// forged probe the amplifier injected (≈1 undefended, collapsing
	// toward the admission rate under Harden).
	VictimReplies       uint64  `json:"victim_replies"`
	AmplificationFactor float64 `json:"amplification_factor"`
	// ShedRate is ProbesShed over all probe-bearing datagrams the device
	// fleet received.
	ShedRate float64 `json:"shed_rate"`
	// Defense-side counters, summed over both fleets' shards.
	AttemptMismatches uint64 `json:"attempt_mismatches"`
	RepliesForged     uint64 `json:"replies_forged"`
	ByesForged        uint64 `json:"byes_forged"`
	RepliesReplayed   uint64 `json:"replies_replayed"`
	ProbesShed        uint64 `json:"probes_shed"`
	// Engine-level bye-verification accounting, summed over all CPs.
	ByeVerifications uint64 `json:"bye_verifications"`
	SpoofedByes      uint64 `json:"spoofed_byes"`
	// Frame-authentication accounting, summed over both fleets' shards.
	// With auth on, every tampered v2 frame must land in AuthRejected
	// and every stripped or downgraded v1 frame that reaches a live
	// endpoint in AuthDowngraded — never in a verdict.
	AuthVerified   uint64 `json:"auth_verified"`
	AuthStaleKey   uint64 `json:"auth_stale_key"`
	AuthRejected   uint64 `json:"auth_rejected"`
	AuthDowngraded uint64 `json:"auth_downgraded"`
}

// AdvResult is one adversarial case's outcome.
type AdvResult struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Harden   bool   `json:"harden"`
	Auth     bool   `json:"auth"`
	// Sim is the attack-free simulator baseline of the same spec and
	// seed; Fleet is the attacked replay's view.
	Sim   RuntimeMetrics `json:"sim"`
	Fleet RuntimeMetrics `json:"fleet"`
	Adv   AdvMetrics     `json:"adv"`
	// Violations is gated only under Harden: attacks are expected to
	// break invariants of an undefended runtime.
	Violations    []string        `json:"violations"`
	TappedPackets uint64          `json:"tapped_packets"`
	Net           memnet.Counters `json:"net_counters"`
	Pass          bool            `json:"pass"`
}

// Format renders the result as a readable block (valid Markdown).
func (r *AdvResult) Format() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	mode := "unhardened"
	if r.Harden {
		mode = "hardened"
	}
	if r.Auth {
		mode += "+auth"
	}
	fmt.Fprintf(&b, "### adversarial %s — seed %d, %s — %s\n\n", r.Scenario, r.Seed, mode, verdict)
	a := &r.Adv
	fmt.Fprintf(&b, "- verdicts: %d present at event, %d false-ABSENT, %d false-PRESENT\n",
		a.PresentAtEvent, a.FalseAbsent, a.FalsePresent)
	fmt.Fprintf(&b, "- attack: %d frames injected, %d filtered", a.InjectedFrames, a.FilteredFrames)
	if a.VictimReplies > 0 || a.AmplificationFactor > 0 {
		fmt.Fprintf(&b, ", amplification ×%.2f (%d replies at the victim)", a.AmplificationFactor, a.VictimReplies)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "- defense: %d attempt mismatches, %d forged replies, %d forged byes, %d replayed, %d shed (rate %.2f), %d bye verifications (%d spoofs refuted)\n",
		a.AttemptMismatches, a.RepliesForged, a.ByesForged, a.RepliesReplayed, a.ProbesShed, a.ShedRate,
		a.ByeVerifications, a.SpoofedByes)
	if r.Auth || a.AuthVerified+a.AuthRejected+a.AuthDowngraded > 0 {
		fmt.Fprintf(&b, "- auth: %d verified, %d stale-key, %d rejected, %d downgrades refused\n",
			a.AuthVerified, a.AuthStaleKey, a.AuthRejected, a.AuthDowngraded)
	}
	fmt.Fprintf(&b, "- invariants: %d violations over %d tapped packets\n", len(r.Violations), r.TappedPackets)
	if r.Harden {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  - VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// victimID is the node id the amplifier's forged probes claim; far
// outside the harness's CP id range.
const victimID ident.NodeID = 0x7fffff00

// advTaps holds the installed attackers and the victim-side reply
// count, for post-run accounting. Nil when the spec is benign.
type advTaps struct {
	spoofer    *memnet.ByeSpoofer
	replayer   *memnet.Replayer
	byzantine  *memnet.Byzantine
	amplifier  *memnet.Amplifier
	tamperer   *memnet.Tamperer
	bitflipper *memnet.BitFlipper
	stripper   *memnet.TagStripper
	downgrader *memnet.Downgrader
	victimAddr netip.AddrPort

	victimReplies atomic.Uint64
}

// injected sums the frames every installed attacker originated.
func (t *advTaps) injected() uint64 {
	var n uint64
	if t.spoofer != nil {
		n += t.spoofer.Injected()
	}
	if t.replayer != nil {
		n += t.replayer.Injected()
	}
	if t.byzantine != nil {
		n += t.byzantine.Injected()
	}
	if t.amplifier != nil {
		n += t.amplifier.Injected()
	}
	if t.tamperer != nil {
		n += t.tamperer.Injected()
	}
	if t.bitflipper != nil {
		n += t.bitflipper.Injected()
	}
	if t.stripper != nil {
		n += t.stripper.Injected()
	}
	if t.downgrader != nil {
		n += t.downgrader.Injected()
	}
	return n
}

// installAdversaries compiles the spec's adversary section into memnet
// middleboxes. Attack windows are authored in scenario time; the
// replay's schedule starts a beat after the network epoch, so they are
// shifted by the elapsed setup time. Byzantine and amplifier attacks
// need bystander endpoints (an attacker source address, a victim to
// flood); those are opened on the same network and closed with it.
func installAdversaries(net *memnet.Network, spec *scenario.Spec, deviceAddr netip.AddrPort) (*advTaps, error) {
	if spec.Adversary == nil {
		return nil, nil
	}
	shift := net.Since()
	window := func(w scenario.AttackWindow) memnet.Window {
		out := memnet.Window{From: w.From.Std() + shift}
		if w.Until > 0 {
			out.Until = w.Until.Std() + shift
		}
		return out
	}
	t := &advTaps{}
	a := spec.Adversary
	if s := a.SpoofBye; s != nil {
		t.spoofer = &memnet.ByeSpoofer{
			Device: deviceID, DeviceAddr: deviceAddr,
			Window: window(s.AttackWindow), P: s.P,
			R: net.ForkRNG("adv/spoof-bye"),
		}
		net.AddMiddlebox(t.spoofer)
	}
	if r := a.Replay; r != nil {
		t.replayer = &memnet.Replayer{
			DeviceAddr: deviceAddr,
			Window:     window(r.AttackWindow), P: r.P,
			R: net.ForkRNG("adv/replay"),
		}
		net.AddMiddlebox(t.replayer)
	}
	if bz := a.Byzantine; bz != nil {
		src, err := net.Listen()
		if err != nil {
			return nil, fmt.Errorf("conformance: byzantine source endpoint: %w", err)
		}
		t.byzantine = &memnet.Byzantine{
			Device: deviceID, DeviceAddr: deviceAddr,
			Source: src.LocalAddrPort(),
			Window: window(bz.AttackWindow),
		}
		net.AddMiddlebox(t.byzantine)
	}
	if s := a.Tamper; s != nil {
		t.tamperer = &memnet.Tamperer{
			Device: deviceID, DeviceAddr: deviceAddr,
			Window: window(s.AttackWindow), P: s.P,
			R: net.ForkRNG("adv/tamper"),
		}
		net.AddMiddlebox(t.tamperer)
	}
	if s := a.BitFlip; s != nil {
		t.bitflipper = &memnet.BitFlipper{
			DeviceAddr: deviceAddr,
			Window:     window(s.AttackWindow), P: s.P, FlipBits: s.FlipBits,
			R: net.ForkRNG("adv/bit-flip"),
		}
		net.AddMiddlebox(t.bitflipper)
	}
	if s := a.StripTag; s != nil {
		t.stripper = &memnet.TagStripper{
			DeviceAddr: deviceAddr,
			Window:     window(s.AttackWindow), P: s.P,
			R: net.ForkRNG("adv/strip-tag"),
		}
		net.AddMiddlebox(t.stripper)
	}
	if s := a.Downgrade; s != nil {
		t.downgrader = &memnet.Downgrader{
			Device: deviceID, DeviceAddr: deviceAddr,
			Window: window(s.AttackWindow),
		}
		net.AddMiddlebox(t.downgrader)
	}
	if am := a.Amplify; am != nil {
		victim, err := net.Listen()
		if err != nil {
			return nil, fmt.Errorf("conformance: amplify victim endpoint: %w", err)
		}
		t.victimAddr = victim.LocalAddrPort()
		t.amplifier = &memnet.Amplifier{
			DeviceAddr: deviceAddr,
			VictimID:   victimID, VictimAddr: t.victimAddr,
			Factor: am.Factor,
			Window: window(am.AttackWindow),
		}
		net.AddMiddlebox(t.amplifier)
	}
	return t, nil
}

// RunAdversarial executes one adversarial case: attack-free sim,
// attacked fleet replay, robustness scoring.
func RunAdversarial(c AdvCase, seed uint64) (*AdvResult, error) {
	spec, err := scenario.Resolve(c.Scenario)
	if err != nil {
		return nil, err
	}
	if spec.Adversary == nil {
		return nil, fmt.Errorf("conformance: scenario %s has no adversary section", spec.Name)
	}
	switch {
	case len(spec.CrashAt)+len(spec.ByeAt) != 1:
		return nil, fmt.Errorf("conformance: scenario %s must schedule exactly one crash_at or bye_at", spec.Name)
	case spec.Devices > 1:
		return nil, fmt.Errorf("conformance: scenario %s: multi-device specs not supported", spec.Name)
	}
	cc := Case{Scenario: c.Scenario, Shards: c.Shards, Harden: c.Harden, Auth: c.Auth}
	cc.applyDefaults()

	res := &AdvResult{Scenario: spec.Name, Seed: seed, Harden: c.Harden, Auth: c.Auth}
	sched, simM, err := runSim(spec, seed)
	if err != nil {
		return nil, err
	}
	res.Sim = simM

	out, err := runFleet(spec, sched, cc, seed)
	if err != nil {
		return nil, err
	}
	res.Fleet = out.metrics
	res.Violations = out.violations
	res.TappedPackets = out.tapped
	res.Net = out.net

	a := &res.Adv
	a.PresentAtEvent = out.metrics.PresentAtEvent
	a.FalseAbsent = out.falseAbsent
	a.FalsePresent = out.falsePresent
	a.FilteredFrames = out.net.Filtered
	a.AttemptMismatches = out.cpCounters.AttemptMismatches + out.devCounters.AttemptMismatches
	a.RepliesForged = out.cpCounters.RepliesForged + out.devCounters.RepliesForged
	a.ByesForged = out.cpCounters.ByesForged + out.devCounters.ByesForged
	a.RepliesReplayed = out.cpCounters.RepliesReplayed + out.devCounters.RepliesReplayed
	a.ProbesShed = out.cpCounters.ProbesShed + out.devCounters.ProbesShed
	a.ByeVerifications = out.proberStats.ByeVerifications
	a.SpoofedByes = out.proberStats.SpoofedByes
	a.AuthVerified = out.cpCounters.AuthVerified + out.devCounters.AuthVerified
	a.AuthStaleKey = out.cpCounters.AuthStaleKey + out.devCounters.AuthStaleKey
	a.AuthRejected = out.cpCounters.AuthRejected + out.devCounters.AuthRejected
	a.AuthDowngraded = out.cpCounters.AuthDowngraded + out.devCounters.AuthDowngraded
	if tap := out.adv; tap != nil {
		a.InjectedFrames = tap.injected()
		a.VictimReplies = tap.victimReplies.Load()
		if tap.amplifier != nil {
			if forged := tap.amplifier.Injected(); forged > 0 {
				a.AmplificationFactor = float64(a.VictimReplies) / float64(forged)
			}
		}
	}
	if in := out.devCounters.PacketsIn; in > 0 {
		a.ShedRate = float64(a.ProbesShed) / float64(in)
	}

	// The gate: a defended runtime (hardened, authenticated, or both)
	// must issue no false verdict of either kind and break no
	// invariant, no matter the attack. An undefended run is the
	// demonstration that the attack bites — its numbers are reported,
	// not judged.
	res.Pass = !(c.Harden || c.Auth) ||
		(a.FalseAbsent == 0 && a.FalsePresent == 0 && len(res.Violations) == 0)
	return res, nil
}

// RunAdversarialSuite executes the standing adversarial battery at one
// hardening setting with one seed.
func RunAdversarialSuite(seed uint64, harden bool) ([]*AdvResult, error) {
	var out []*AdvResult
	for _, c := range DefaultAdvCases(harden) {
		r, err := RunAdversarial(c, seed)
		if err != nil {
			return out, fmt.Errorf("conformance: %s: %w", c.Scenario, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RunAuthAdversarialSuite executes the authenticated-wire battery (the
// adv-auth-* scenarios) with one seed, with frame authentication on
// (gated) or off (demonstration).
func RunAuthAdversarialSuite(seed uint64, auth bool) ([]*AdvResult, error) {
	var out []*AdvResult
	for _, c := range DefaultAuthAdvCases(auth) {
		r, err := RunAdversarial(c, seed)
		if err != nil {
			return out, fmt.Errorf("conformance: %s: %w", c.Scenario, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// advRuntimeBudget is a hint for callers sizing timeouts: one
// adversarial case replays its scenario horizon in real time.
func advRuntimeBudget(spec *scenario.Spec) time.Duration {
	return spec.Horizon.Std() + time.Second
}
