package conformance

import (
	"fmt"
	"testing"
)

// advSeeds is the acceptance matrix: every adv-* scenario must produce
// zero false verdicts under Harden at every one of these seeds.
var advSeeds = []uint64{1, 7, 42, 2005}

// TestAdversarialHardened is the robustness gate: a hardened fleet
// survives every registered attack at every acceptance seed with zero
// false-ABSENT verdicts, zero false-PRESENT verdicts and zero
// invariant violations.
func TestAdversarialHardened(t *testing.T) {
	for _, c := range DefaultAdvCases(true) {
		for _, seed := range advSeeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed=%d", c.Scenario, seed), func(t *testing.T) {
				t.Parallel()
				res, err := RunAdversarial(c, seed)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("\n%s", res.Format())
				if res.Adv.InjectedFrames == 0 {
					t.Fatal("adversary injected nothing — the attack never ran")
				}
				if res.Adv.FalseAbsent != 0 {
					t.Errorf("hardened run issued %d false-ABSENT verdicts", res.Adv.FalseAbsent)
				}
				if res.Adv.FalsePresent != 0 {
					t.Errorf("hardened run holds %d false-PRESENT beliefs at the horizon", res.Adv.FalsePresent)
				}
				for _, v := range res.Violations {
					t.Errorf("invariant violation under attack: %s", v)
				}
				if !res.Pass {
					t.Error("hardened case did not pass")
				}
			})
		}
	}
}

// TestAdversarialUnhardenedFails demonstrates that the attacks are
// real: without Config.Harden, the spoofed-BYE attack removes live
// devices (false ABSENT) and the Byzantine responder keeps dead ones
// alive (false PRESENT). If these stop failing, the adversary layer
// has rotted and the hardened gate above proves nothing.
func TestAdversarialUnhardenedFails(t *testing.T) {
	t.Run("spoofed-bye/false-absent", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-spoofed-bye"}, advSeeds[2])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", res.Format())
		if res.Adv.FalseAbsent == 0 {
			t.Error("unhardened fleet survived spoofed BYEs — attack ineffective")
		}
	})
	t.Run("byzantine/false-present", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-byzantine"}, advSeeds[2])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", res.Format())
		if res.Adv.FalsePresent == 0 {
			t.Error("unhardened fleet detected the crash despite the Byzantine responder — attack ineffective")
		}
	})
	t.Run("amplify/reflection", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-amplify"}, advSeeds[2])
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", res.Format())
		if res.Adv.AmplificationFactor < 0.5 {
			t.Errorf("unhardened reflection factor %.2f — the device did not amplify", res.Adv.AmplificationFactor)
		}
		if res.Adv.ProbesShed != 0 {
			t.Errorf("unhardened run shed %d probes — shedding must be Harden-only", res.Adv.ProbesShed)
		}
	})
}

// TestAdversarialDefenseAccounting spot-checks that each defense's
// counters move under its attack — the observability half of the
// hardening.
func TestAdversarialDefenseAccounting(t *testing.T) {
	seed := advSeeds[2]
	t.Run("spoofed-bye/verifications", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-spoofed-bye", Harden: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Adv.ByeVerifications == 0 || res.Adv.SpoofedByes == 0 {
			t.Errorf("spoofed BYEs triggered %d verifications, %d refutations — grace path never ran",
				res.Adv.ByeVerifications, res.Adv.SpoofedByes)
		}
	})
	t.Run("replay/window", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-replay", Harden: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Adv.RepliesReplayed == 0 {
			t.Error("replayed replies were not classified by the replay window")
		}
	})
	t.Run("byzantine/forged-replies", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-byzantine", Harden: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Adv.RepliesForged == 0 {
			t.Error("forged replies were not rejected by source pinning")
		}
	})
	t.Run("amplify/shedding", func(t *testing.T) {
		t.Parallel()
		res, err := RunAdversarial(AdvCase{Scenario: "adv-amplify", Harden: true}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Adv.ProbesShed == 0 || res.Adv.ShedRate == 0 {
			t.Error("the amplification flood was not shed")
		}
		if res.Adv.AmplificationFactor >= 0.5 {
			t.Errorf("hardened reflection factor %.2f — shedding did not collapse the attack", res.Adv.AmplificationFactor)
		}
	})
}
