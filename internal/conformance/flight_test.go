package conformance

import (
	"strings"
	"sync"
	"testing"
	"time"

	"presence/internal/core"
	"presence/internal/core/naive"
	"presence/internal/fleet"
	"presence/internal/ident"
	"presence/internal/memnet"
	"presence/internal/trace"
)

// flightListener counts verdicts, thread-safe.
type flightListener struct {
	mu    sync.Mutex
	alive int
	lost  int
	byes  int
}

func (l *flightListener) DeviceAlive(ident.NodeID, core.CycleResult) {
	l.mu.Lock()
	l.alive++
	l.mu.Unlock()
}

func (l *flightListener) DeviceLost(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.lost++
	l.mu.Unlock()
}

func (l *flightListener) DeviceBye(ident.NodeID, time.Duration) {
	l.mu.Lock()
	l.byes++
	l.mu.Unlock()
}

func (l *flightListener) snapshot() (alive, lost, byes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alive, l.lost, l.byes
}

// flightRun replays one fixed-structure fleet run over memnet and
// returns the normalized flight-recorder dump. The structure forces a
// deterministic event sequence per CP regardless of wall-clock jitter:
// the probing CPs use an hour-long period (exactly one cycle: one probe
// out, one reply back, then the device's BYE), and the doomed CP probes
// a black-hole endpoint so its cycle walks the fixed retransmit ladder
// into a lost verdict. Timestamps and absolute cycle numbers — the
// run-to-run noise — are exactly what Normalize strips.
func flightRun(t *testing.T) []string {
	t.Helper()
	net := memnet.New(memnet.Faults{})
	defer net.Close()
	transport := fleet.TransportFunc(func(int) (fleet.PacketConn, error) { return net.Listen() })

	devFleet, err := fleet.New(fleet.Config{Shards: 1, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer devFleet.Close()
	if err := devFleet.Start(); err != nil {
		t.Fatal(err)
	}
	dev, err := devFleet.AddDevice(1, func(env core.Env) (core.Device, error) {
		return naive.NewDevice(1, env)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A black hole: a memnet endpoint that never reads or replies.
	hole, err := net.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	f, err := fleet.New(fleet.Config{Shards: 2, Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	lst := &flightListener{}
	for i := 0; i < 4; i++ {
		policy, err := naive.NewPolicy(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.AddControlPoint(fleet.CPConfig{
			ID: ident.NodeID(800 + i), Device: 1, DeviceAddrPort: dev.Addr(),
			Policy: policy, Listener: lst,
			// Generous timeouts: the one live cycle must never retransmit.
			Retransmit: core.RetransmitConfig{
				FirstTimeout: 30 * time.Second, RetryTimeout: 30 * time.Second,
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	policy, err := naive.NewPolicy(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddControlPoint(fleet.CPConfig{
		ID: 900, Device: 2, DeviceAddrPort: hole.LocalAddrPort(),
		Policy: policy, Listener: lst,
		// The fixed ladder the lost verdict walks: first timeout plus
		// exactly MaxRetransmits retries, whatever the wall clock does.
		Retransmit: core.RetransmitConfig{
			FirstTimeout: 80 * time.Millisecond, RetryTimeout: 40 * time.Millisecond,
			MaxRetransmits: 3,
		},
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		alive, lost, _ := lst.snapshot()
		if alive >= 4 && lost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: alive=%d lost=%d", alive, lost)
		}
		time.Sleep(2 * time.Millisecond)
	}
	dev.Bye()
	for {
		_, _, byes := lst.snapshot()
		if byes == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for byes: %d", func() int { _, _, b := lst.snapshot(); return b }())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return trace.Normalize(f.FlightSnapshot())
}

// TestFlightRecorderDeterminism runs the same-structure memnet replay
// twice and requires byte-identical normalized flight dumps — the
// property that lets a failing conformance case be diffed against a
// rerun.
func TestFlightRecorderDeterminism(t *testing.T) {
	a := strings.Join(flightRun(t), "\n")
	b := strings.Join(flightRun(t), "\n")
	if a != b {
		t.Fatalf("normalized flight dumps differ across same-structure runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("normalized flight dump empty")
	}
	for _, want := range []string{"probe-sent", "reply-matched", "verdict-bye", "attempt-expired", "verdict-lost"} {
		if !strings.Contains(a, want) {
			t.Errorf("dump missing %q:\n%s", want, a)
		}
	}
	if got := len(strings.Split(a, "\n")); got != 5 {
		t.Errorf("dump has %d CP lines, want 5:\n%s", got, a)
	}
}

// TestConformanceResultCarriesFlight checks a full conformance Run
// attaches the normalized per-device timelines to its Result.
func TestConformanceResultCarriesFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance replay")
	}
	cases := DefaultCases()
	res, err := Run(cases[0], 2005)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flight) == 0 {
		t.Fatal("conformance result has no flight timeline")
	}
	joined := strings.Join(res.Flight, "\n")
	if !strings.Contains(joined, "probe-sent") {
		t.Errorf("flight timeline missing probe lifecycle:\n%.300s", joined)
	}
}
