package conformance

import (
	"math"
	"testing"
	"time"

	"presence/internal/scenario"
)

// confSeed pins the battery's seed; CI runs the same one.
const confSeed = 2005

// TestConformanceSuite is the differential battery: every standing
// case must pass — schedule counts exact, behavioural metrics within
// the documented tolerances, zero invariant violations — with the
// fleet runtime driven over the hostile in-memory network.
func TestConformanceSuite(t *testing.T) {
	for _, c := range DefaultCases() {
		c := c
		t.Run(c.Scenario, func(t *testing.T) {
			res, err := Run(c, confSeed)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("\n%s", res.Format())
			if res.TappedPackets == 0 {
				t.Fatal("invariant checker tapped no packets")
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			for _, d := range res.Diffs {
				if !d.OK {
					t.Errorf("metric %s diverged: sim %.4g vs fleet %.4g (tolerance ±%.3g+%.0f%%)",
						d.Name, d.Sim, d.Fleet, d.Abs, d.Rel*100)
				}
			}
			if !res.Pass {
				t.Error("case did not pass")
			}
			if res.Sim.TotalJoined == 0 {
				t.Error("scenario joined no CPs — empty differential")
			}
			if c.Scenario == "conf-bursty-loss" && res.Net.Lost == 0 {
				t.Error("Gilbert-Elliott channel lost nothing on the fleet side")
			}
			if c.Scenario == "conf-flash-crowd" && res.Fleet.ByeSeen == 0 {
				t.Error("no fleet CP saw the device bye")
			}
		})
	}
}

// TestSimSideDeterministic: the simulator half of a case — schedule
// extraction included — is a pure function of the seed.
func TestSimSideDeterministic(t *testing.T) {
	spec, err := scenario.Resolve("conf-bursty-loss")
	if err != nil {
		t.Fatal(err)
	}
	s1, m1, err := runSim(spec, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	s2, m2, err := runSim(spec, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.joinAt) != len(s2.joinAt) {
		t.Fatalf("schedules differ in size: %d vs %d", len(s1.joinAt), len(s2.joinAt))
	}
	for i := range s1.joinAt {
		if s1.joinAt[i] != s2.joinAt[i] || s1.leaveAt[i] != s2.leaveAt[i] {
			t.Fatalf("cp %d schedule differs: (%v,%v) vs (%v,%v)",
				i, s1.joinAt[i], s1.leaveAt[i], s2.joinAt[i], s2.leaveAt[i])
		}
	}
	if math.Float64bits(m1.DetectMean) != math.Float64bits(m2.DetectMean) ||
		math.Float64bits(m1.LoadMean) != math.Float64bits(m2.LoadMean) ||
		m1 != m2 {
		t.Fatalf("sim metrics not reproducible: %+v vs %+v", m1, m2)
	}
}

// TestCaseValidation: specs without exactly one device event (or with
// layers the fleet cannot host) are rejected up front.
func TestCaseValidation(t *testing.T) {
	if _, err := Run(Case{Scenario: "fig5-uniform-churn"}, 1); err == nil {
		t.Error("scenario without a device event accepted")
	}
	if _, err := Run(Case{Scenario: "no-such-scenario"}, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestScheduleEventInsideHorizon guards the conf-* registrations: the
// battery only works when the device event leaves a detection tail.
func TestScheduleEventInsideHorizon(t *testing.T) {
	for _, c := range DefaultCases() {
		spec, err := scenario.Resolve(c.Scenario)
		if err != nil {
			t.Fatalf("%s: %v", c.Scenario, err)
		}
		var at time.Duration
		if len(spec.ByeAt) == 1 {
			at = spec.ByeAt[0].Std()
		} else if len(spec.CrashAt) == 1 {
			at = spec.CrashAt[0].Std()
		} else {
			t.Fatalf("%s: no single device event", c.Scenario)
		}
		if tail := spec.Horizon.Std() - at; tail < time.Second {
			t.Errorf("%s: only %v between device event and horizon — not enough detection tail", c.Scenario, tail)
		}
	}
}
