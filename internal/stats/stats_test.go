package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestTimeWeightedConstantSignal(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 5)
	tw.Finish(sec(10))
	if tw.Mean() != 5 {
		t.Fatalf("mean = %g, want 5", tw.Mean())
	}
	if tw.Variance() != 0 {
		t.Fatalf("variance = %g, want 0", tw.Variance())
	}
	if tw.Span() != 10 {
		t.Fatalf("span = %g, want 10", tw.Span())
	}
}

func TestTimeWeightedStepFunction(t *testing.T) {
	// Value 0 for 9 s, value 10 for 1 s: mean 1, population variance
	// E[x²]−mean² = (0²·0.9 + 10²·0.1) − 1 = 9.
	var tw TimeWeighted
	tw.Observe(0, 0)
	tw.Observe(sec(9), 10)
	tw.Finish(sec(10))
	if !almostEqual(tw.Mean(), 1, 1e-12) {
		t.Fatalf("mean = %g, want 1", tw.Mean())
	}
	if !almostEqual(tw.Variance(), 9, 1e-9) {
		t.Fatalf("variance = %g, want 9", tw.Variance())
	}
	if tw.Min() != 0 || tw.Max() != 10 {
		t.Fatalf("min/max = %g/%g", tw.Min(), tw.Max())
	}
}

func TestTimeWeightedWeightsByDuration(t *testing.T) {
	// Same values, different dwell times, different means.
	var a, b TimeWeighted
	a.Observe(0, 1)
	a.Observe(sec(1), 3)
	a.Finish(sec(2)) // 1 for 1s, 3 for 1s -> 2
	b.Observe(0, 1)
	b.Observe(sec(3), 3)
	b.Finish(sec(4)) // 1 for 3s, 3 for 1s -> 1.5
	if !almostEqual(a.Mean(), 2, 1e-12) || !almostEqual(b.Mean(), 1.5, 1e-12) {
		t.Fatalf("means = %g, %g; want 2, 1.5", a.Mean(), b.Mean())
	}
}

func TestTimeWeightedOutOfOrderPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(sec(5), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Observe must panic")
		}
	}()
	tw.Observe(sec(4), 2)
}

func TestTimeWeightedEmptyFinish(t *testing.T) {
	var tw TimeWeighted
	tw.Finish(sec(1)) // no-op, no panic
	if tw.Mean() != 0 || tw.Span() != 0 {
		t.Fatal("empty accumulator must stay empty")
	}
}

func TestBatchMeansConfigValidation(t *testing.T) {
	bad := []BatchMeansConfig{
		{BatchSize: 0, Level: 0.95, RelWidth: 0.1},
		{BatchSize: 10, Level: 0, RelWidth: 0.1},
		{BatchSize: 10, Level: 1, RelWidth: 0.1},
		{BatchSize: 10, Level: 0.95, RelWidth: 0},
		{BatchSize: 10, Level: 0.95, RelWidth: 0.1, MinBatches: 1},
	}
	for i, cfg := range bad {
		if _, err := NewBatchMeans(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := NewBatchMeans(BatchMeansConfig{BatchSize: 10, Level: 0.95, RelWidth: 0.1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBatchMeansConvergesOnIIDData(t *testing.T) {
	bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 50, Level: 0.95, RelWidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic pseudo-noise around mean 10.
	x := uint64(1)
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return 10 + float64(x>>40)/float64(1<<24) - 0.5
	}
	for i := 0; i < 100000 && !bm.Converged(); i++ {
		bm.Add(next())
	}
	if !bm.Converged() {
		t.Fatal("batch means did not converge on IID data")
	}
	r := bm.Result()
	if math.Abs(r.Mean-10) > 0.1 {
		t.Fatalf("mean = %g, want ≈10", r.Mean)
	}
	if r.HalfWidth/r.Mean >= 0.1 {
		t.Fatalf("relative half-width %g not below target", r.HalfWidth/r.Mean)
	}
}

func TestBatchMeansCICoversTrueMean(t *testing.T) {
	// Repeat small experiments; the 95% CI must cover the true mean in
	// roughly 95% of them. With 40 repetitions allow down to 33 hits.
	x := uint64(7)
	next := func() float64 {
		x = x*6364136223846793005 + 1442695040888963407
		return float64(x>>40) / float64(1<<24) // uniform [0,1), mean 0.5
	}
	covered := 0
	const reps = 40
	for rep := 0; rep < reps; rep++ {
		bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 25, Level: 0.95, RelWidth: 1e-9, MinBatches: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			bm.Add(next())
		}
		r := bm.Result()
		if math.Abs(r.Mean-0.5) <= r.HalfWidth {
			covered++
		}
	}
	if covered < 33 {
		t.Fatalf("95%% CI covered the true mean in only %d/%d runs", covered, reps)
	}
}

func TestBatchMeansNotConvergedEarly(t *testing.T) {
	bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 10, Level: 0.95, RelWidth: 0.1, MinBatches: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ { // only 5 batches
		bm.Add(1.0)
	}
	if bm.Converged() {
		t.Fatal("converged before MinBatches")
	}
}

func TestBatchMeansLag1OnCorrelatedData(t *testing.T) {
	// A slow sawtooth is strongly positively correlated across small
	// batches.
	bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 10, Level: 0.95, RelWidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		bm.Add(float64(i % 1000))
	}
	if lag1 := bm.Lag1Autocorrelation(); lag1 < 0.5 {
		t.Fatalf("sawtooth lag-1 autocorrelation = %g, expected strongly positive", lag1)
	}
}

func TestBatchMeansRebatch(t *testing.T) {
	bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 10, Level: 0.95, RelWidth: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		bm.Add(float64(i % 7))
	}
	before := bm.Mean()
	nb := bm.Batches()
	bm.Rebatch()
	if bm.Batches() != nb/2 {
		t.Fatalf("batches after rebatch = %d, want %d", bm.Batches(), nb/2)
	}
	if !almostEqual(bm.Mean(), before, 1e-9) {
		t.Fatalf("rebatch changed grand mean: %g -> %g", before, bm.Mean())
	}
}

func TestTimeSeriesBasics(t *testing.T) {
	s := NewTimeSeries("load")
	if s.Name() != "load" {
		t.Fatalf("Name() = %q", s.Name())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last point")
	}
	s.Add(sec(1), 10)
	s.Add(sec(2), 20)
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.V != 20 {
		t.Fatalf("Last() = %v, %v", last, ok)
	}
	sum := s.Summary()
	if sum.Mean() != 15 {
		t.Fatalf("summary mean = %g, want 15", sum.Mean())
	}
}

func TestTimeSeriesWindow(t *testing.T) {
	s := NewTimeSeries("zoom").Window(sec(10), sec(20))
	for i := 0; i < 30; i++ {
		s.Add(sec(float64(i)), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("windowed series recorded %d points, want 10", s.Len())
	}
	for _, p := range s.Points() {
		if p.T < sec(10) || p.T >= sec(20) {
			t.Fatalf("point %v outside window", p)
		}
	}
}

func TestTimeSeriesDecimate(t *testing.T) {
	s := NewTimeSeries("dec").Decimate(3)
	for i := 0; i < 9; i++ {
		s.Add(sec(float64(i)), float64(i))
	}
	if s.Len() != 3 {
		t.Fatalf("decimated series recorded %d points, want 3", s.Len())
	}
}

func TestTimeSeriesMeanAfter(t *testing.T) {
	s := NewTimeSeries("m")
	s.Add(sec(1), 100)
	s.Add(sec(5), 2)
	s.Add(sec(6), 4)
	if got := s.MeanAfter(sec(5)); got != 3 {
		t.Fatalf("MeanAfter = %g, want 3", got)
	}
	if !math.IsNaN(s.MeanAfter(sec(100))) {
		t.Fatal("MeanAfter past the series end must be NaN")
	}
}

func TestTimeSeriesWriteDAT(t *testing.T) {
	s := NewTimeSeries("cp_01_freq")
	s.Add(sec(1.5), 0.5)
	s.Add(sec(2), 1.25)
	var buf strings.Builder
	if err := s.WriteDAT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# t(sec) cp_01_freq\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.500000 0.5\n") || !strings.Contains(out, "2.000000 1.25\n") {
		t.Fatalf("missing data rows: %q", out)
	}
}

func TestWriteMultiDAT(t *testing.T) {
	a := NewTimeSeries("a")
	a.Add(sec(1), 1)
	b := NewTimeSeries("b")
	b.Add(sec(2), 2)
	var buf strings.Builder
	if err := WriteMultiDAT(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# a\n") || !strings.Contains(out, "# b\n") {
		t.Fatalf("missing block headers: %q", out)
	}
	if !strings.Contains(out, "\n\n\n# b") {
		t.Fatalf("blocks not separated by blank lines: %q", out)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)   // underflow
	h.Add(0)    // bin 0
	h.Add(5)    // bin 5
	h.Add(9.99) // bin 9
	h.Add(10)   // overflow
	h.Add(42)   // overflow
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	for i, want := range map[int]uint64{0: 1, 5: 1, 9: 1} {
		if h.Bin(i) != want {
			t.Fatalf("bin %d = %d, want %d", i, h.Bin(i), want)
		}
	}
	lo, hi := h.BinBounds(5)
	if lo != 5 || hi != 6 {
		t.Fatalf("BinBounds(5) = [%g,%g), want [5,6)", lo, hi)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestQuantiles(t *testing.T) {
	data := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	qs, err := Quantiles(data, 0.1, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[1] != 5 || qs[2] != 10 {
		t.Fatalf("quantiles = %v, want [1 5 10]", qs)
	}
	// Input must not be reordered.
	if data[0] != 9 {
		t.Fatal("Quantiles modified its input")
	}
	if _, err := Quantiles(nil, 0.5); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Quantiles(data, 0); err == nil {
		t.Error("probability 0 accepted")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("equal allocations: J = %g, want 1", got)
	}
	// One CP takes everything: J = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("monopolised allocations: J = %g, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("J(nil) = %g, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("J(zeros) = %g, want 0", got)
	}
	// The paper's SAPP pattern: 18 CPs at freq 0.1, 2 CPs at 2.5 — badly
	// unfair; DCPP gives everyone 0.5 — perfectly fair.
	sapp := make([]float64, 20)
	for i := range sapp {
		sapp[i] = 0.1
	}
	sapp[0], sapp[1] = 2.5, 2.5
	if j := JainIndex(sapp); j > 0.5 {
		t.Fatalf("SAPP-like allocation should be unfair, J = %g", j)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i & 1023))
	}
}

func BenchmarkBatchMeansAdd(b *testing.B) {
	bm, err := NewBatchMeans(BatchMeansConfig{BatchSize: 100, Level: 0.95, RelWidth: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Add(float64(i & 1023))
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TQuantile(0.975, float64(10+i%100))
	}
}
