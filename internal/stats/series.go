package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// TimeSeries records (time, value) samples for transient analysis — the
// per-CP probe-frequency traces of Figs. 2–4 and the load trace of
// Fig. 5. An optional window restricts recording, and an optional
// decimation stride bounds memory on long runs.
type TimeSeries struct {
	name    string
	points  []Point
	from    time.Duration
	to      time.Duration
	bounded bool
	stride  int
	skip    int
}

// NewTimeSeries returns an empty series with the given name (used as the
// data-file column header).
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{name: name}
}

// Window restricts recording to samples with from <= t < to, matching the
// zoomed figures (Fig. 3 records 12300 s–12360 s only). Returns the series
// for chaining.
func (s *TimeSeries) Window(from, to time.Duration) *TimeSeries {
	s.from, s.to, s.bounded = from, to, true
	return s
}

// Decimate keeps only every n-th accepted sample (n >= 1). Returns the
// series for chaining.
func (s *TimeSeries) Decimate(n int) *TimeSeries {
	if n < 1 {
		n = 1
	}
	s.stride = n
	return s
}

// Name returns the series name.
func (s *TimeSeries) Name() string { return s.name }

// Rename changes the series name (used when one report collects
// same-named series from several worlds). Returns the series for
// chaining.
func (s *TimeSeries) Rename(name string) *TimeSeries {
	s.name = name
	return s
}

// Add records a sample, subject to the window and decimation filters.
func (s *TimeSeries) Add(t time.Duration, v float64) {
	if s.bounded && (t < s.from || t >= s.to) {
		return
	}
	if s.stride > 1 {
		if s.skip > 0 {
			s.skip--
			return
		}
		s.skip = s.stride - 1
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of recorded samples.
func (s *TimeSeries) Len() int { return len(s.points) }

// Points returns the recorded samples. The returned slice is owned by the
// series; callers must not modify it.
func (s *TimeSeries) Points() []Point { return s.points }

// Last returns the most recent sample and true, or a zero Point and false
// if the series is empty.
func (s *TimeSeries) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Summary returns Welford statistics over the recorded values.
func (s *TimeSeries) Summary() Welford {
	var w Welford
	for _, p := range s.points {
		w.Add(p.V)
	}
	return w
}

// MeanAfter returns the mean of samples with t >= from, or NaN if there
// are none — used to summarise "final" behaviour of a transient run.
func (s *TimeSeries) MeanAfter(from time.Duration) float64 {
	var w Welford
	for _, p := range s.points {
		if p.T >= from {
			w.Add(p.V)
		}
	}
	if w.Count() == 0 {
		return math.NaN()
	}
	return w.Mean()
}

// WriteDAT writes the series in gnuplot-ready two-column form:
// "# t(sec) <name>" header, then "t v" rows.
func (s *TimeSeries) WriteDAT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# t(sec) %s\n", s.name); err != nil {
		return fmt.Errorf("stats: write header: %w", err)
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(bw, "%.6f %.6g\n", p.T.Seconds(), p.V); err != nil {
			return fmt.Errorf("stats: write point: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stats: flush: %w", err)
	}
	return nil
}

// WriteMultiDAT writes several series sharing no common time base as
// repeated (t, v) column pairs padded per row, in the gnuplot "index"
// style: one block per series separated by two blank lines, each with a
// "# name" header. Grep-friendly and directly plottable with
// `plot for [i=0:N] 'f.dat' index i`.
func WriteMultiDAT(w io.Writer, series ...*TimeSeries) error {
	bw := bufio.NewWriter(w)
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprint(bw, "\n\n"); err != nil {
				return fmt.Errorf("stats: write separator: %w", err)
			}
		}
		if _, err := fmt.Fprintf(bw, "# %s\n", s.name); err != nil {
			return fmt.Errorf("stats: write header: %w", err)
		}
		for _, p := range s.points {
			if _, err := fmt.Fprintf(bw, "%.6f %.6g\n", p.T.Seconds(), p.V); err != nil {
				return fmt.Errorf("stats: write point: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stats: flush: %w", err)
	}
	return nil
}
