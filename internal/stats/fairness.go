package stats

// JainIndex returns Jain's fairness index of the given allocations:
//
//	J = (Σxᵢ)² / (n · Σxᵢ²)
//
// J is 1 when all allocations are equal and approaches 1/n when one node
// takes everything. The paper's central finding is that SAPP's probe
// frequencies are unfair (some CPs starve at δ_max while others probe
// fast); DCPP's are fair by construction. JainIndex quantifies that
// comparison in the extension experiments.
//
// It returns 0 for an empty slice or when all allocations are zero.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
