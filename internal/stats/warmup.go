package stats

import "math"

// Warmup (initial-transient) detection for steady-state output
// analysis. The paper's batch-means estimates presuppose that the
// initial transient has been discarded; MSER gives a principled,
// data-driven truncation point to validate the fixed warmups used by
// the experiments.

// MSER returns the truncation index d minimising the marginal standard
// error rule statistic
//
//	MSER(d) = Var(x[d:]) / (n − d)
//
// over 0 ≤ d ≤ n/2 (the classic half-sample guard against degenerate
// truncation at the very end). It returns 0 for fewer than 4
// observations.
func MSER(values []float64) int {
	n := len(values)
	if n < 4 {
		return 0
	}
	// Suffix sums let each candidate evaluate in O(1).
	suffixSum := make([]float64, n+1)
	suffixSq := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixSum[i] = suffixSum[i+1] + values[i]
		suffixSq[i] = suffixSq[i+1] + values[i]*values[i]
	}
	best, bestStat := 0, 0.0
	for d := 0; d <= n/2; d++ {
		m := float64(n - d)
		mean := suffixSum[d] / m
		variance := suffixSq[d]/m - mean*mean
		if variance < 0 {
			variance = 0
		}
		stat := variance / m
		if d == 0 || stat < bestStat {
			best, bestStat = d, stat
		}
	}
	return best
}

// MSER5 applies MSER to non-overlapping batches of five observations
// (the standard "MSER-5" variant, which smooths oscillatory series) and
// returns the truncation index in raw observations.
func MSER5(values []float64) int {
	return MSERBatched(values, 5)
}

// MSERBatched applies MSER to non-overlapping batch means of size m and
// returns the truncation index scaled back to raw observations. m < 2
// falls back to plain MSER.
func MSERBatched(values []float64, m int) int {
	if m < 2 {
		return MSER(values)
	}
	nb := len(values) / m
	if nb < 4 {
		return MSER(values)
	}
	batches := make([]float64, nb)
	for i := 0; i < nb; i++ {
		var sum float64
		for j := 0; j < m; j++ {
			sum += values[i*m+j]
		}
		batches[i] = sum / float64(m)
	}
	return MSER(batches) * m
}

// MovingAverage returns the centred moving average of the series with
// the given half-window w (Welch's plot); endpoints use the available
// shorter windows, as in Welch's original procedure.
func MovingAverage(values []float64, w int) []float64 {
	n := len(values)
	if w < 0 {
		w = 0
	}
	out := make([]float64, n)
	for i := range values {
		half := w
		if i < half {
			half = i
		}
		if n-1-i < half {
			half = n - 1 - i
		}
		var sum float64
		for j := i - half; j <= i+half; j++ {
			sum += values[j]
		}
		out[i] = sum / float64(2*half+1)
	}
	return out
}

// Autocorrelation returns the sample autocorrelation of the series at
// the given lags (biased estimator, the standard choice for output
// analysis). Lag 0 yields 1 by definition. Invalid lags (negative or
// ≥ n) yield NaN entries.
func Autocorrelation(values []float64, lags ...int) []float64 {
	n := len(values)
	out := make([]float64, len(lags))
	var w Welford
	for _, v := range values {
		w.Add(v)
	}
	mean := w.Mean()
	var c0 float64
	for _, v := range values {
		d := v - mean
		c0 += d * d
	}
	for i, lag := range lags {
		switch {
		case lag < 0 || lag >= n || c0 == 0:
			out[i] = math.NaN()
		case lag == 0:
			out[i] = 1
		default:
			var ck float64
			for j := 0; j+lag < n; j++ {
				ck += (values[j] - mean) * (values[j+lag] - mean)
			}
			out[i] = ck / c0
		}
	}
	return out
}
