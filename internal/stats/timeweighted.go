package stats

import (
	"fmt"
	"math"
	"time"
)

// TimeWeighted accumulates the time-weighted mean and variance of a
// piecewise-constant signal, such as a queue length or the number of
// active control points. The paper reports the mean network buffer
// occupancy (≈0.004) this way.
//
// Call Observe(t, v) whenever the signal changes to value v at time t;
// observations must be fed in non-decreasing time order. Statistics cover
// the span from the first observation to the last Observe/Finish time.
type TimeWeighted struct {
	started bool
	start   time.Duration
	last    time.Duration
	value   float64
	weight  float64 // accumulated seconds
	mean    float64
	m2      float64
	min     float64
	max     float64
}

// Observe records that the signal takes value v from time t onward.
func (tw *TimeWeighted) Observe(t time.Duration, v float64) {
	if !tw.started {
		tw.started = true
		tw.start, tw.last, tw.value = t, t, v
		tw.min, tw.max = v, v
		return
	}
	if t < tw.last {
		panic(fmt.Sprintf("stats: TimeWeighted.Observe out of order: %v < %v", t, tw.last))
	}
	tw.accumulate(t)
	tw.value = v
	if v < tw.min {
		tw.min = v
	}
	if v > tw.max {
		tw.max = v
	}
}

// Finish extends the current value up to time t, closing the measurement
// window. Further Observe calls may still follow (with t' >= t).
func (tw *TimeWeighted) Finish(t time.Duration) {
	if !tw.started {
		return
	}
	if t < tw.last {
		panic(fmt.Sprintf("stats: TimeWeighted.Finish out of order: %v < %v", t, tw.last))
	}
	tw.accumulate(t)
}

// accumulate folds the segment [last, t) at the current value into the
// weighted moments (West's incremental algorithm for weighted variance).
func (tw *TimeWeighted) accumulate(t time.Duration) {
	dt := (t - tw.last).Seconds()
	tw.last = t
	if dt <= 0 {
		return
	}
	tw.weight += dt
	d := tw.value - tw.mean
	r := d * dt / tw.weight
	tw.mean += r
	tw.m2 += dt * d * (tw.value - tw.mean)
}

// Reset empties the accumulator.
func (tw *TimeWeighted) Reset() { *tw = TimeWeighted{} }

// Mean returns the time-weighted mean over the observed span.
func (tw *TimeWeighted) Mean() float64 { return tw.mean }

// Variance returns the time-weighted population variance.
func (tw *TimeWeighted) Variance() float64 {
	if tw.weight <= 0 {
		return 0
	}
	return tw.m2 / tw.weight
}

// StdDev returns the square root of Variance.
func (tw *TimeWeighted) StdDev() float64 { return math.Sqrt(tw.Variance()) }

// Min returns the smallest observed value.
func (tw *TimeWeighted) Min() float64 { return tw.min }

// Max returns the largest observed value.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Span returns the observed time span in seconds.
func (tw *TimeWeighted) Span() float64 { return tw.weight }

// String summarises the accumulator.
func (tw *TimeWeighted) String() string {
	return fmt.Sprintf("mean=%.4g var=%.4g span=%.4gs min=%.4g max=%.4g",
		tw.Mean(), tw.Variance(), tw.Span(), tw.Min(), tw.Max())
}
